package structura

import (
	"bytes"
	"strings"
	"testing"
)

func TestFacade(t *testing.T) {
	es := Experiments()
	if len(es) != 21 {
		t.Fatalf("experiments = %d, want 21", len(es))
	}
	e, err := LookupExperiment("fig9")
	if err != nil || e.ID != "fig9" {
		t.Fatalf("LookupExperiment: %v, %v", e.ID, err)
	}
	if _, err := LookupExperiment("zzz"); err == nil {
		t.Error("unknown experiment should error")
	}
	if Trimming.String() != "trimming" || Labeling.String() != "labeling" {
		t.Error("strategy aliases broken")
	}
}

func TestRunAllFacade(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAll(&buf, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "=== fig1") {
		t.Error("RunAll output incomplete")
	}
}
