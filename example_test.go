package structura_test

import (
	"fmt"
	"os"

	"structura"
)

// Regenerate one figure of the paper programmatically: Fig. 2's
// time-evolving-graph walkthrough (fully deterministic).
func ExampleLookupExperiment() {
	e, err := structura.LookupExperiment("fig2")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(e.PaperRef)
	tables, err := e.Run(42)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	_ = tables[0].Render(os.Stdout)
	// Output:
	// Fig. 2, §II-B
	// ## A -> C connectivity and optimal journeys by start time
	//   start  connected  earliest completion  min hops  fastest span
	//   -----  ---------  -------------------  --------  ------------
	//   0      yes        2                    2         1
	//   1      yes        2                    2         1
	//   2      yes        5                    2         1
	//   3      yes        5                    2         1
	//   4      yes        5                    2         1
	//   5      no         -                    -         -
	//   6      no         -                    -         -
}
