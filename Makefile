# Verification entry points. `make verify` is the tier-1 gate plus the
# race-detector pass over the parallel kernel and its heaviest consumer,
# so the sharded round execution is permanently exercised under -race.

GO ?= go

.PHONY: build test race bench bench-json bench-smoke fuzz-smoke heal-smoke verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel kernel must stay race-clean: the sharded stepping in
# internal/runtime, the labeling schemes that drive it hardest, the
# fault-injection harness plus the algorithm packages it perturbs, and
# the self-healing supervision layer built on top of them.
race:
	$(GO) test -race ./internal/runtime/... ./internal/labeling/... \
		./internal/sim/... ./internal/reversal/... ./internal/distvec/... \
		./internal/heal/...

# Sequential vs. sharded kernel on 100k-node ER and 20k-node UDG graphs.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 3x ./internal/runtime/bench

# Machine-readable benchmark record: op -> ns/op, B/op, allocs/op. The
# committed BENCH_kernel.json is regenerated with this target.
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 3x ./internal/runtime/bench \
		| $(GO) run ./cmd/benchjson -o BENCH_kernel.json

# One-iteration smoke run of the benchmark battery through the JSON
# pipeline: catches benchmark or parser rot without the full cost.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x ./internal/runtime/bench \
		| $(GO) run ./cmd/benchjson -o /dev/null

# Short native-fuzz pass over the serialization boundaries: Graph/CSR
# snapshot agreement and the temporal-trace JSON decoder. 10s per target
# keeps the gate cheap; longer campaigns run the same targets by hand.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzFreezeRoundTrip -fuzztime 10s ./internal/graph/
	$(GO) test -run '^$$' -fuzz FuzzEGJSONRoundTrip -fuzztime 10s ./internal/temporal/

# Supervised MIS must survive 200 rounds of add/remove churn with zero
# standing violations; the heal subcommand exits nonzero otherwise.
heal-smoke:
	$(GO) run ./cmd/structura heal -engine mis -seed 1 -rounds 200 \
		-churn-add 1 -churn-remove 1 -max-touched 12

verify: build test race bench-smoke fuzz-smoke heal-smoke
