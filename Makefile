# Verification entry points. `make verify` is the tier-1 gate plus the
# race-detector pass over the parallel kernel and its heaviest consumer,
# so the sharded round execution is permanently exercised under -race.

GO ?= go

.PHONY: build test race bench bench-json bench-diff bench-smoke fuzz-smoke heal-smoke async-smoke partition-smoke serve-smoke wal-smoke replica-smoke verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel kernel must stay race-clean: the sharded stepping in
# internal/runtime (full-sweep and delta-frontier paths — the cross-engine
# delta equivalence tests run sharded), the partitioned executor with its
# two-phase ghost exchange, the labeling schemes that drive it hardest, the
# fault-injection harness plus the algorithm packages it perturbs, the
# remaining engines that ride the delta frontier (centrality, layering,
# hypercube), the self-healing supervision layer, the event-driven async
# executor with its pooled event-queue/arena hot path, and the RCU-epoch
# structure server whose lock-free read path only -race can vouch for, and
# the WAL whose atomic metric mirrors are read concurrently by /metrics
# while the single writer appends, and the replication layer whose mirror,
# applier, and session state are shared between the Run loop, the stream
# handler, and Promote.
race:
	$(GO) test -race ./internal/runtime/... ./internal/partition/... \
		./internal/labeling/... \
		./internal/sim/... ./internal/reversal/... ./internal/distvec/... \
		./internal/centrality/... ./internal/layering/... \
		./internal/hypercube/... ./internal/heal/... ./internal/async/... \
		./internal/server/... ./internal/wal/... ./internal/replica/...

# Sequential vs. sharded kernel on 100k-node ER and 20k-node UDG graphs,
# the delta-frontier steady-state sweep on the same ER instance (full vs
# delta round cost under scripted churn), the partitioned (edge-cut shard)
# legs of both, the async executor priced on one full quiescence, and the
# structure server's query throughput under churn. The async, 10M-node
# partitioned and serve legs run one complete workload per op, so they get
# -benchtime 1x while the other legs average over 3.
bench:
	$(GO) test -run '^$$' -bench 'Kernel|Freeze' -benchtime 3x ./internal/runtime/bench
	$(GO) test -run '^$$' -bench DeltaSteady -benchtime 3x ./internal/runtime/bench
	$(GO) test -run '^$$' -bench 'Partitioned.*100k' -benchtime 3x ./internal/runtime/bench
	$(GO) test -run '^$$' -bench Async -benchtime 1x ./internal/runtime/bench
	$(GO) test -run '^$$' -bench PartitionedER10M -benchtime 1x -timeout 30m ./internal/runtime/bench
	$(GO) test -run '^$$' -bench ServeQPS -benchtime 1x ./internal/server
	$(GO) test -run '^$$' -bench WALIngest -benchtime 200x ./internal/wal
	$(GO) test -run '^$$' -bench RecoveryReady -benchtime 3x ./internal/server
	$(GO) test -run '^$$' -bench ReplicaCatchup -benchtime 3x ./internal/replica

# Machine-readable benchmark record: one history entry per invocation, each
# mapping op -> ns/op, B/op, allocs/op (plus ReportMetric extras such as the
# async retry overhead, the delta kernel's steady-ns/round, and the
# partitioned legs' bytes/round exchange traffic). All legs feed a single
# benchjson call so they land in the same history entry of the committed
# BENCH_kernel.json.
bench-json:
	{ $(GO) test -run '^$$' -bench 'Kernel|Freeze' -benchmem -benchtime 3x ./internal/runtime/bench ; \
	  $(GO) test -run '^$$' -bench DeltaSteady -benchmem -benchtime 3x ./internal/runtime/bench ; \
	  $(GO) test -run '^$$' -bench 'Partitioned.*100k' -benchmem -benchtime 3x ./internal/runtime/bench ; \
	  $(GO) test -run '^$$' -bench Async -benchmem -benchtime 1x ./internal/runtime/bench ; \
	  $(GO) test -run '^$$' -bench PartitionedER10M -benchmem -benchtime 1x -timeout 30m ./internal/runtime/bench ; \
	  $(GO) test -run '^$$' -bench ServeQPS -benchmem -benchtime 1x ./internal/server ; \
	  $(GO) test -run '^$$' -bench WALIngest -benchmem -benchtime 200x ./internal/wal ; \
	  $(GO) test -run '^$$' -bench RecoveryReady -benchmem -benchtime 3x ./internal/server ; \
	  $(GO) test -run '^$$' -bench ReplicaCatchup -benchmem -benchtime 3x ./internal/replica ; } \
		| $(GO) run ./cmd/benchjson -o BENCH_kernel.json

# Latest-vs-previous movement of the committed trajectory, per benchmark and
# dimension — the first thing to read after a bench-json run.
bench-diff:
	$(GO) run ./cmd/benchjson -diff -o BENCH_kernel.json

# One-iteration smoke run of the kernel benchmark battery through the JSON
# pipeline: catches benchmark or parser rot without the full cost. The async
# benchmark is excluded here — a single op is a full 100k-node quiescence —
# and covered by async-smoke at CLI scale instead; the 10M partitioned leg is
# excluded for the same reason and smoke-covered by partition-smoke.
bench-smoke:
	$(GO) test -run '^$$' -bench 'Kernel|Freeze|Partitioned.*100k' -benchmem -benchtime 1x ./internal/runtime/bench \
		| $(GO) run ./cmd/benchjson -o /dev/null

# Short native-fuzz pass over the serialization boundaries, the async
# delivery pipeline's FIFO-per-link ordering, and the edge-cut partitioner
# (structural invariants plus sharded==unsharded behavior on arbitrary
# graphs). 10s per target keeps the gate cheap; longer campaigns run the
# same targets by hand.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzFreezeRoundTrip -fuzztime 10s ./internal/graph/
	$(GO) test -run '^$$' -fuzz FuzzEGJSONRoundTrip -fuzztime 10s ./internal/temporal/
	$(GO) test -run '^$$' -fuzz FuzzLinkFIFO -fuzztime 10s ./internal/async/
	$(GO) test -run '^$$' -fuzz FuzzPartition -fuzztime 10s ./internal/partition/
	$(GO) test -run '^$$' -fuzz FuzzWALRecord -fuzztime 10s ./internal/wal/
	$(GO) test -run '^$$' -fuzz FuzzRecover -fuzztime 10s ./internal/wal/
	$(GO) test -run '^$$' -fuzz FuzzLabelDelta -fuzztime 10s ./internal/wal/

# Supervised MIS must survive 200 rounds of add/remove churn with zero
# standing violations; the heal subcommand exits nonzero otherwise.
heal-smoke:
	$(GO) run ./cmd/structura heal -engine mis -seed 1 -rounds 200 \
		-churn-add 1 -churn-remove 1 -max-touched 12

# The async executor must reproduce the synchronous outcome on a confluent
# scenario under churn (exit nonzero on divergence or invariant violation),
# and survive a lossy adversarial schedule on its own.
async-smoke:
	$(GO) run ./cmd/structura async -scenario distvec -seed 3 -compare \
		-churn-add 1 -churn-remove 1 -churn-every 2 -horizon 8
	$(GO) run ./cmd/structura async -scenario mis -seeds 1..4 -loss 0.2 -horizon 6

# The sharded kernel must reproduce the unsharded results exactly on a small
# graph, for both boundary strategies and both kernel modes; the partition
# subcommand exits nonzero on any divergence.
partition-smoke:
	$(GO) run ./cmd/structura partition -nodes 20000 -shards 4 -check
	$(GO) run ./cmd/structura partition -nodes 20000 -shards 8 \
		-strategy degree-balanced -delta -check

# The structure server's RCU read path must stay race-clean under live epoch
# swaps (the hammer test re-run under -race on its own, so the gate survives
# package-list edits), and the end-to-end serving stack must come up and
# answer a loadgen burst through the CLI.
serve-smoke:
	$(GO) test -race -run TestServeConcurrentReadsDuringEpochSwap ./internal/server
	$(GO) run ./cmd/structura serve -nodes 2000 -avg-degree 8 -loadgen 20000

# End-to-end durability: build the real binary under -race, run it with a
# -data-dir, stream mutations, SIGKILL it mid-churn, restart, and require
# the recovered topology to hash-match the journaled committed prefix
# exactly (plus a -load/-save boot-image round trip).
wal-smoke:
	$(GO) test -race -run 'TestWALSmokeKillRecover|TestServeLoadSaveRoundTrip' ./cmd/structura

# End-to-end failover: real primary and replica processes (-race binary),
# loadgen churn, SIGKILL the primary mid-burst, promote the replica, and
# require its routes to agree with BFS on the recovered committed prefix
# with zero standing heal violations.
replica-smoke:
	$(GO) test -race -run TestReplicaSmokeFailover ./cmd/structura

verify: build test race bench-smoke fuzz-smoke heal-smoke async-smoke partition-smoke serve-smoke wal-smoke replica-smoke bench-diff
