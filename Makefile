# Verification entry points. `make verify` is the tier-1 gate plus the
# race-detector pass over the parallel kernel and its heaviest consumer,
# so the sharded round execution is permanently exercised under -race.

GO ?= go

.PHONY: build test race bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel kernel must stay race-clean: the sharded stepping in
# internal/runtime and the labeling schemes that drive it hardest.
race:
	$(GO) test -race ./internal/runtime/... ./internal/labeling/...

# Sequential vs. sharded kernel on 100k-node ER and 20k-node UDG graphs.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 3x ./internal/runtime/bench

verify: build test race
