// Pub-sub over a nested scale-free overlay: the embedded layering of
// §III-B [11]. We generate a Gnutella-like overlay, verify the NSF
// property (power-law exponents stay put while low-degree peers peel
// away), build the level hierarchy, and estimate push/pull costs.
package main

import (
	"fmt"
	"log"

	"structura/internal/gen"
	"structura/internal/layering"
	"structura/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pubsub: ")

	r := stats.NewRand(42)
	cfg := gen.DefaultGnutella()
	cfg.N = 3000
	overlay, err := gen.Gnutella(r, cfg)
	if err != nil {
		log.Fatal(err)
	}
	scc, _ := overlay.LargestSCC()
	g := scc.Undirected()
	fmt.Printf("overlay: %d peers, %d links; largest SCC %d peers\n",
		overlay.N(), overlay.M(), scc.N())

	// NSF verification: Fig. 3's property.
	rep, err := layering.CheckNSF(g, 0.5, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npeeling the local lowest-degree peers (Fig. 3):")
	for i, lvl := range rep.Levels {
		fmt.Printf("  round %d: %5d peers, %6d links, power-law alpha %.2f\n",
			i, lvl.N, lvl.M, lvl.Fit.Alpha)
	}
	fmt.Printf("exponent spread %.3f -> NSF: %v\n", rep.AlphaStdDev, rep.IsNSF(0.5))

	// Level hierarchy for pub/sub (Fig. 7b labeling).
	levels := layering.NestedLevels(g)
	depth := layering.Depth(levels)
	top := layering.TopLevelNodes(levels)
	fmt.Printf("\nnested-degree hierarchy: depth %d, %d top-level node(s)\n", depth, len(top))

	// Publish from a few random peers to a few random subscribers: a
	// publication is pushed up the hierarchy to the rendezvous and pulled
	// down — over real overlay links.
	ps, err := layering.NewPubSub(g, levels)
	if err != nil {
		log.Fatal(err)
	}
	var totalHops int
	const pairs = 200
	for i := 0; i < pairs; i++ {
		pub, sub := r.Intn(g.N()), r.Intn(g.N())
		_, hops, err := ps.Deliver(pub, sub)
		if err != nil {
			log.Fatal(err)
		}
		totalHops += hops
	}
	fmt.Printf("rendezvous node: %d (level %d)\n", ps.Rendezvous(), levels[ps.Rendezvous()])
	fmt.Printf("push+pull delivery: %.1f hops average over %d publisher/subscriber pairs\n",
		float64(totalHops)/pairs, pairs)
	fmt.Printf("(flooding the overlay instead would touch all %d links per publication)\n", g.M())
}
