// Social-feature routing: the domain remapping of §III-C (Fig. 6). A
// population with gender/occupation/nationality profiles produces a
// contact trace where meeting frequency decays with feature distance; we
// route messages by climbing the generalized hypercube of communities
// instead of chasing the unstructured contact space.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"structura/internal/forwarding"
	"structura/internal/fspace"
	"structura/internal/mobility"
	"structura/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("socialrouting: ")

	space := fspace.Fig6Space()
	hyper := space.Graph()
	fmt.Printf("F-space: %d communities, %d strong links (2x2x3 generalized hypercube)\n",
		space.N(), hyper.M())

	// Show the multipath structure the hypercube provides.
	a, _ := space.ID([]int{0, 0, 0})
	b, _ := space.ID([]int{1, 1, 2})
	routes, err := space.DisjointRoutes(a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node-disjoint shortest paths (0,0,0) -> (1,1,2):\n")
	for _, route := range routes {
		fmt.Printf("  %v\n", route)
	}

	// Population: 4 individuals per community.
	var profiles []mobility.FeatureProfile
	for g := 0; g < 2; g++ {
		for o := 0; o < 2; o++ {
			for c := 0; c < 3; c++ {
				for k := 0; k < 4; k++ {
					profiles = append(profiles, mobility.FeatureProfile{g, o, c})
				}
			}
		}
	}
	r := stats.NewRand(42)
	eg, err := mobility.FeatureContacts(r, mobility.FeatureContactConfig{
		Profiles: profiles, BaseProb: 0.2, Decay: 0.35, Steps: 250,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nM-space trace: %d individuals, %d contacts over %d units\n",
		eg.N(), eg.ContactCount(), eg.Horizon())
	freq := mobility.ContactFrequencies(eg, profiles)
	fmt.Println("mean contact count by feature distance (the [21] property):")
	for d := 0; d <= 3; d++ {
		fmt.Printf("  distance %d: %.1f\n", d, stats.Mean(freq[d]))
	}

	type agg struct {
		delivered, delay, copies int
	}
	results := map[string]*agg{}
	var order []string
	const trials = 80
	for trial := 0; trial < trials; trial++ {
		src, dst := r.Intn(len(profiles)), r.Intn(len(profiles))
		if src == dst {
			continue
		}
		grad, err := fspace.NewGradientPolicy(space, profiles, profiles[dst])
		if err != nil {
			log.Fatal(err)
		}
		multi, err := fspace.NewMultipathPolicy(space, profiles, profiles[dst])
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range []forwarding.Policy{
			forwarding.DirectDelivery{}, forwarding.Epidemic{}, grad, multi,
		} {
			m, err := forwarding.Simulate(eg, forwarding.Message{Src: src, Dst: dst}, p, 0)
			if err != nil {
				log.Fatal(err)
			}
			ag := results[p.Name()]
			if ag == nil {
				ag = &agg{}
				results[p.Name()] = ag
				order = append(order, p.Name())
			}
			ag.copies += m.Copies
			if m.Delivered {
				ag.delivered++
				ag.delay += m.DeliveryTime
			}
		}
	}
	fmt.Println()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "policy\tdelivered\tavg delay\tavg peak copies")
	for _, name := range order {
		ag := results[name]
		delay := "-"
		if ag.delivered > 0 {
			delay = fmt.Sprintf("%.1f", float64(ag.delay)/float64(ag.delivered))
		}
		fmt.Fprintf(w, "%s\t%d/%d\t%s\t%.1f\n", name, ag.delivered, trials, delay,
			float64(ag.copies)/float64(trials))
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
}
