// Fault-tolerant hypercube routing with safety levels: the hybrid
// distributed-and-localized labeling of §IV-C (Fig. 9). We injure a 6-D
// cube, compute safety levels in at most n-1 rounds, and show optimal
// self-guided routing and broadcast from safe nodes. The second half
// demonstrates the runtime robustness layer: a supervised self-healing
// engine that keeps the levels valid under live churn, and
// checkpoint/cancel/resume of a kernel run.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"structura/internal/gen"
	"structura/internal/heal"
	"structura/internal/hypercube"
	"structura/internal/runtime"
	"structura/internal/sim"
	"structura/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("faulttolerant: ")

	// The paper's Fig. 9 walkthrough first.
	c9, res9 := hypercube.Fig9Cube()
	path, err := c9.Route(res9, 0b1101, 0b0001)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fig. 9: 4-D cube, %d faults; route 1101 -> 0001: %04b\n", c9.FaultCount(), path)
	fmt.Printf("        levels: l(0101)=%d, l(1001)=%d -> 0101 is selected\n\n",
		res9.Levels[0b0101], res9.Levels[0b1001])

	// Now a 6-D cube with random faults.
	r := stats.NewRand(42)
	const dim = 6
	faults := map[int]bool{}
	for len(faults) < 6 {
		faults[r.Intn(1<<dim)] = true
	}
	var fl []int
	for f := range faults {
		fl = append(fl, f)
	}
	cube, err := hypercube.New(dim, fl)
	if err != nil {
		log.Fatal(err)
	}
	res := cube.SafetyLevels()
	hist := make([]int, dim+1)
	safe := 0
	for v := 0; v < cube.N(); v++ {
		hist[res.Levels[v]]++
		if cube.Safe(res, v) {
			safe++
		}
	}
	fmt.Printf("6-D cube with %d faults: levels computed in %d rounds (<= n-1 = %d)\n",
		cube.FaultCount(), res.Rounds, dim-1)
	fmt.Printf("level histogram (0..%d): %v; %d safe nodes\n", dim, hist, safe)

	// Routing: guaranteed cases are always optimal; measure overall too.
	var gOK, gAll, allOK, all int
	for trial := 0; trial < 2000; trial++ {
		u, d := r.Intn(cube.N()), r.Intn(cube.N())
		if u == d || cube.Faulty(u) || cube.Faulty(d) {
			continue
		}
		h := hypercube.Distance(u, d)
		p, err := cube.Route(res, u, d)
		optimal := err == nil && len(p)-1 == h
		all++
		if optimal {
			allOK++
		}
		if res.Levels[u] >= h {
			gAll++
			if optimal {
				gOK++
			}
		}
	}
	fmt.Printf("\nself-guided routing: guaranteed cases optimal %d/%d; all pairs optimal %d/%d\n",
		gOK, gAll, allOK, all)

	// Broadcast from a safe node reaches every non-faulty node.
	for v := 0; v < cube.N(); v++ {
		if cube.Safe(res, v) {
			rounds, reached, err := cube.Broadcast(v)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("broadcast from safe node %06b: reached %d/%d non-faulty nodes in %d rounds\n",
				v, reached, cube.NonFaultyCount(), rounds)
			break
		}
	}

	// The binary safety-vector extension is finer-grained.
	vec := cube.SafetyVectors()
	var vOK, vAll int
	for trial := 0; trial < 2000; trial++ {
		u, d := r.Intn(cube.N()), r.Intn(cube.N())
		if u == d || cube.Faulty(u) || cube.Faulty(d) {
			continue
		}
		vAll++
		if p, err := cube.RouteByVector(vec, u, d); err == nil && len(p)-1 == hypercube.Distance(u, d) {
			vOK++
		}
	}
	fmt.Printf("safety-vector routing: optimal %d/%d\n", vOK, vAll)

	superviseDemo()
	checkpointDemo()
}

// superviseDemo keeps the safety levels valid while the cube's links churn:
// the supervisor detects each fault at its endpoints the round it lands,
// relaxes levels around them under a bounded number of sweeps, and
// escalates to a full level recompute only when the budget does not
// suffice.
func superviseDemo() {
	eng, err := heal.NewEngine("hypercube", 42)
	if err != nil {
		log.Fatal(err)
	}
	sup := &heal.Supervisor{Engine: eng, Budget: heal.Budget{MaxRounds: 4}}
	rep, err := sup.Run(42, sim.Schedule{Horizon: 30, ChurnAdd: 1, ChurnRemove: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nself-healing levels under churn: %d events over %d rounds, %d detections (max latency %d)\n",
		rep.Events, rep.Rounds, len(rep.Detections), rep.MaxLatency)
	fmt.Printf("  %d localized repairs (worst touched %.0f%% of nodes), %d escalations to full recompute, standing violations: %d\n",
		rep.Repairs, 100*rep.MaxTouchedFrac, rep.Escalations, len(rep.Standing))
}

// checkpointDemo cancels a kernel run mid-flight, persists the last
// checkpoint to disk through the versioned codec, then resumes from the
// loaded copy and confirms the result matches an uninterrupted run — the
// crash-recovery path a long labeling computation relies on, surviving not
// just cancellation but a full process restart.
func checkpointDemo() {
	g := gen.SparseErdosRenyi(stats.NewRand(9), 256, 0.03).Freeze()
	const inf = 1 << 20
	init := func(v int) int {
		if v == 0 {
			return 0
		}
		return inf
	}
	step := func(v, self int, nbrs []int) (int, bool) {
		if v == 0 {
			return 0, false
		}
		best := inf
		for _, d := range nbrs {
			if d+1 < best {
				best = d + 1
			}
		}
		return best, best != self
	}
	run := func(opts ...runtime.Option) ([]int, runtime.Stats, error) {
		return runtime.RunCSR(g, init, step, append(opts, runtime.WithMaxRounds(64))...)
	}

	want, wantStats, err := run()
	if err != nil {
		log.Fatal(err)
	}

	var cps []runtime.Checkpoint[int]
	ctx, cancel := context.WithCancel(context.Background())
	_, half, err := run(
		runtime.WithContext(ctx),
		runtime.WithCheckpoints(2, func(cp runtime.Checkpoint[int]) { cps = append(cps, cp) }),
		runtime.WithObserver(func(rs runtime.RoundStats) {
			if rs.Round == 3 {
				cancel()
			}
		}),
	)
	cancel()
	fmt.Printf("\ncheckpointed hop-count run: cancelled after round %d (%v)\n", half.Rounds, err)

	// Persist through the on-disk codec (magic + version + checksum) and
	// load it back, as a restarted process would.
	path := filepath.Join(os.TempDir(), fmt.Sprintf("faulttolerant-%d.ckpt", os.Getpid()))
	defer os.Remove(path)
	if err := runtime.SaveCheckpoint(path, cps[len(cps)-1]); err != nil {
		log.Fatal(err)
	}
	cp, err := runtime.LoadCheckpoint[int](path)
	if err != nil {
		log.Fatal(err)
	}

	got, gotStats, err := run(runtime.WithResume(cp))
	if err != nil {
		log.Fatal(err)
	}
	same := gotStats.Rounds == wantStats.Rounds
	for v := range want {
		same = same && got[v] == want[v]
	}
	fmt.Printf("resumed from on-disk round-%d checkpoint: %d total rounds, matches uninterrupted run: %v\n",
		cp.Round, gotStats.Rounds, same)
}
