// Fault-tolerant hypercube routing with safety levels: the hybrid
// distributed-and-localized labeling of §IV-C (Fig. 9). We injure a 6-D
// cube, compute safety levels in at most n-1 rounds, and show optimal
// self-guided routing and broadcast from safe nodes.
package main

import (
	"fmt"
	"log"

	"structura/internal/hypercube"
	"structura/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("faulttolerant: ")

	// The paper's Fig. 9 walkthrough first.
	c9, res9 := hypercube.Fig9Cube()
	path, err := c9.Route(res9, 0b1101, 0b0001)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fig. 9: 4-D cube, %d faults; route 1101 -> 0001: %04b\n", c9.FaultCount(), path)
	fmt.Printf("        levels: l(0101)=%d, l(1001)=%d -> 0101 is selected\n\n",
		res9.Levels[0b0101], res9.Levels[0b1001])

	// Now a 6-D cube with random faults.
	r := stats.NewRand(42)
	const dim = 6
	faults := map[int]bool{}
	for len(faults) < 6 {
		faults[r.Intn(1<<dim)] = true
	}
	var fl []int
	for f := range faults {
		fl = append(fl, f)
	}
	cube, err := hypercube.New(dim, fl)
	if err != nil {
		log.Fatal(err)
	}
	res := cube.SafetyLevels()
	hist := make([]int, dim+1)
	safe := 0
	for v := 0; v < cube.N(); v++ {
		hist[res.Levels[v]]++
		if cube.Safe(res, v) {
			safe++
		}
	}
	fmt.Printf("6-D cube with %d faults: levels computed in %d rounds (<= n-1 = %d)\n",
		cube.FaultCount(), res.Rounds, dim-1)
	fmt.Printf("level histogram (0..%d): %v; %d safe nodes\n", dim, hist, safe)

	// Routing: guaranteed cases are always optimal; measure overall too.
	var gOK, gAll, allOK, all int
	for trial := 0; trial < 2000; trial++ {
		u, d := r.Intn(cube.N()), r.Intn(cube.N())
		if u == d || cube.Faulty(u) || cube.Faulty(d) {
			continue
		}
		h := hypercube.Distance(u, d)
		p, err := cube.Route(res, u, d)
		optimal := err == nil && len(p)-1 == h
		all++
		if optimal {
			allOK++
		}
		if res.Levels[u] >= h {
			gAll++
			if optimal {
				gOK++
			}
		}
	}
	fmt.Printf("\nself-guided routing: guaranteed cases optimal %d/%d; all pairs optimal %d/%d\n",
		gOK, gAll, allOK, all)

	// Broadcast from a safe node reaches every non-faulty node.
	for v := 0; v < cube.N(); v++ {
		if cube.Safe(res, v) {
			rounds, reached, err := cube.Broadcast(v)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("broadcast from safe node %06b: reached %d/%d non-faulty nodes in %d rounds\n",
				v, reached, cube.NonFaultyCount(), rounds)
			break
		}
	}

	// The binary safety-vector extension is finer-grained.
	vec := cube.SafetyVectors()
	var vOK, vAll int
	for trial := 0; trial < 2000; trial++ {
		u, d := r.Intn(cube.N()), r.Intn(cube.N())
		if u == d || cube.Faulty(u) || cube.Faulty(d) {
			continue
		}
		vAll++
		if p, err := cube.RouteByVector(vec, u, d); err == nil && len(p)-1 == hypercube.Distance(u, d) {
			vOK++
		}
	}
	fmt.Printf("safety-vector routing: optimal %d/%d\n", vOK, vAll)
}
