// Central control over distributed routing: the §IV-C hybrid
// centralized-and-distributed front, following [31]. A controller computes
// routes centrally and makes plain distance-vector converge to them —
// first by reassigning link weights, then by inserting fake nodes and
// links into an augmented topology without touching any real weight.
package main

import (
	"fmt"
	"log"

	"structura/internal/distvec"
	"structura/internal/gen"
	"structura/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("centralcontrol: ")

	// Scenario 1: weight reassignment on a ring. The controller wants all
	// traffic to flow clockwise to node 0, even though half the nodes have
	// a shorter counterclockwise path.
	const n = 10
	ring := gen.Ring(n)
	parent := make([]int, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		parent[v] = v - 1
	}
	steered, err := distvec.SteerByWeights(ring, 0, parent)
	if err != nil {
		log.Fatal(err)
	}
	tab, err := distvec.Compute(steered, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ring n=%d, all traffic forced clockwise to 0 (rounds: %d)\n", n, tab.Rounds)
	for _, v := range []int{3, 9} {
		path, err := tab.Route(v)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  route from %d: %v\n", v, path)
	}

	// Scenario 2: Fibbing-style fake nodes on a random graph. Real link
	// weights stay untouched; three nodes are detoured onto non-default
	// next hops purely by augmenting the topology the protocol sees.
	r := stats.NewRand(42)
	g := gen.ErdosRenyi(r, 25, 0.2)
	base, err := distvec.Compute(g, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	forced := map[int]int{}
	for v := 1; v < g.N() && len(forced) < 3; v++ {
		g.EachNeighbor(v, func(u int, _ float64) {
			if _, done := forced[v]; done {
				return
			}
			if u != base.NextHop[v] && u != 0 {
				forced[v] = u
			}
		})
	}
	aug, err := distvec.SteerByFakeNodes(g, 0, forced)
	if err != nil {
		log.Fatal(err)
	}
	tab2, err := distvec.Compute(aug.Graph, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrandom graph n=%d: %d fake nodes inserted (topology %d -> %d nodes)\n",
		g.N(), len(forced), g.N(), aug.Graph.N())
	for v, u := range forced {
		fmt.Printf("  node %d: default hop %d -> forced hop %d (converged: %v)\n",
			v, base.NextHop[v], u, tab2.NextHop[v] == aug.FakeOf[v] || tab2.NextHop[v] == u)
	}
	if err := aug.NextHopsRealized(tab2, forced); err != nil {
		log.Fatal(err)
	}
	fmt.Println("all centrally chosen routes realized by the distributed protocol")
}
