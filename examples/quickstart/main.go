// Quickstart: build a time-evolving graph, ask the three §II-B path
// questions, and apply the §III-A trimming rule — the paper's Fig. 2
// worked end to end.
package main

import (
	"fmt"
	"log"

	"structura/internal/temporal"
	"structura/internal/trimming"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// The paper's Fig. 2 VANET: A=0, B=1, C=2, D=3.
	eg := temporal.Fig2EG()
	fmt.Printf("time-evolving graph: %d nodes, %d contacts, horizon %d\n",
		eg.N(), eg.ContactCount(), eg.Horizon())

	const a, c = 0, 2
	// Earliest completion time path (A to C, start at time 2).
	ec, err := eg.EarliestCompletionJourney(a, c, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("earliest completion A->C from t=2: %v (arrives %d)\n", ec, ec.Completion())

	// Minimum hop path.
	mh, err := eg.MinHopJourney(a, c, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("min-hop A->C: %d hops via %v\n", mh.Hops(), mh)

	// Fastest (minimum span) path.
	fs, err := eg.FastestJourney(a, c, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fastest A->C: span %d via %v\n", fs.Span(), fs)

	// Structural trimming: can A ignore neighbor D (the paper's example)?
	prio := trimming.PriorityByID(eg.N())
	ok, err := trimming.CanIgnoreNeighbor(eg, 0, 3, prio, trimming.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("A can ignore neighbor D: %v (every A->D->v relay has a replacement)\n", ok)

	// And the preservation guarantee behind it: trimming whole nodes with
	// the rule never changes earliest arrivals between survivors.
	res, err := trimming.TrimNodes(eg, prio, trimming.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full node trim removed %v; preservation: %v\n",
		res.RemovedNodes, trimming.VerifyPreservation(eg, res.Trimmed, res.RemovedNodes) == nil)
}
