// DTN routing over a random-waypoint mobility trace: the dynamic trimming
// of §III-A in action. A fleet of mobile nodes produces a contact trace;
// we race epidemic, direct-delivery, spray-and-wait, fixed-point
// forwarding sets [12], and the TOUR utility policy [13] on the same
// messages and report delivery, delay, and cost.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"structura/internal/forwarding"
	"structura/internal/mobility"
	"structura/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dtnrouting: ")

	r := stats.NewRand(42)
	tr, err := mobility.RandomWaypoint(r, mobility.WaypointConfig{
		N: 30, Width: 120, Height: 120,
		MinSpeed: 1, MaxSpeed: 6, Pause: 2,
		Steps: 400, Range: 12,
	})
	if err != nil {
		log.Fatal(err)
	}
	eg, err := tr.EG()
	if err != nil {
		log.Fatal(err)
	}
	cs := mobility.ExtractContacts(eg)
	durStats, _ := stats.Summarize(cs.Durations)
	icStats, _ := stats.Summarize(cs.InterContacts)
	fmt.Printf("trace: %d nodes, %d contacts over %d units\n", eg.N(), eg.ContactCount(), eg.Horizon())
	fmt.Printf("contact duration: mean %.1f  median %.0f; inter-contact: mean %.1f  median %.0f\n\n",
		durStats.Mean, durStats.Median, icStats.Mean, icStats.Median)

	// Forwarding sets toward each destination from contact-rate estimates.
	rates := forwarding.ContactRates(eg)

	type agg struct {
		delivered, delay, forwards, copies int
	}
	results := map[string]*agg{}
	var order []string
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		src, dst := r.Intn(eg.N()), r.Intn(eg.N())
		if src == dst {
			continue
		}
		sets, _, err := forwarding.OptimalForwardingSets(rates, dst)
		if err != nil {
			log.Fatal(err)
		}
		lambda := make([]float64, eg.N())
		for i := range lambda {
			lambda[i] = rates[i][dst]
		}
		tour, err := forwarding.NewTOUR(lambda, 1, eg.Horizon(), 0.5)
		if err != nil {
			log.Fatal(err)
		}
		policies := []struct {
			p      forwarding.Policy
			tokens int
		}{
			{forwarding.Epidemic{}, 0},
			{forwarding.DirectDelivery{}, 0},
			{forwarding.SprayAndWait{}, 8},
			{forwarding.SetPolicy{Sets: sets}, 0},
			{tour, 0},
		}
		for _, pc := range policies {
			m, err := forwarding.Simulate(eg, forwarding.Message{Src: src, Dst: dst}, pc.p, pc.tokens)
			if err != nil {
				log.Fatal(err)
			}
			name := pc.p.Name()
			a := results[name]
			if a == nil {
				a = &agg{}
				results[name] = a
				order = append(order, name)
			}
			a.forwards += m.Forwards
			a.copies += m.Copies
			if m.Delivered {
				a.delivered++
				a.delay += m.DeliveryTime
			}
		}
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "policy\tdelivered\tavg delay\tavg forwards\tpeak copies")
	for _, name := range order {
		a := results[name]
		delay := "-"
		if a.delivered > 0 {
			delay = fmt.Sprintf("%.1f", float64(a.delay)/float64(a.delivered))
		}
		fmt.Fprintf(w, "%s\t%d/%d\t%s\t%.1f\t%.1f\n",
			name, a.delivered, trials, delay,
			float64(a.forwards)/float64(trials), float64(a.copies)/float64(trials))
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
}
