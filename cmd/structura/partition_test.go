package main

import (
	"bytes"
	"os"
	"reflect"
	"strings"
	"testing"
)

// statFile returns the file's size, for asserting a profile was written.
func statFile(path string) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func TestRunPartitionReport(t *testing.T) {
	var out bytes.Buffer
	err := runPartition([]string{
		"-nodes", "2000", "-degree", "8", "-shards", "4",
		"-strategy", "degree-balanced", "-delta", "-check"}, &out)
	if err != nil {
		t.Fatalf("runPartition: %v\n%s", err, out.String())
	}
	for _, want := range []string{
		"4 degree-balanced shards", "cut edges", "ghost replicas",
		"edge imbalance", "rounds/sec", "values/round",
		"check: sharded == unsharded",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunPartitionRejects(t *testing.T) {
	var out bytes.Buffer
	if err := runPartition([]string{"-strategy", "metis"}, &out); err == nil {
		t.Error("unknown strategy must fail")
	}
	if err := runPartition([]string{"-nodes", "100", "-shards", "101"}, &out); err == nil {
		t.Error("k > n must fail")
	}
}

func TestExtractProfileFlags(t *testing.T) {
	for _, tc := range []struct {
		in       []string
		rest     []string
		cpu, mem string
		wantErr  bool
	}{
		{in: []string{"fig3"}, rest: []string{"fig3"}},
		{in: []string{"-cpuprofile", "c.out", "partition", "-shards", "2"},
			rest: []string{"partition", "-shards", "2"}, cpu: "c.out"},
		{in: []string{"-memprofile=m.out", "-cpuprofile=c.out", "all"},
			rest: []string{"all"}, cpu: "c.out", mem: "m.out"},
		// Flags after the subcommand belong to the subcommand.
		{in: []string{"chaos", "-cpuprofile", "c.out"},
			rest: []string{"chaos", "-cpuprofile", "c.out"}},
		// Other leading flags stop the scan (they belong to the default set).
		{in: []string{"-seed", "7", "fig5"}, rest: []string{"-seed", "7", "fig5"}},
		{in: []string{"-cpuprofile"}, wantErr: true},
		{in: []string{"-cpuprofile="}, wantErr: true},
	} {
		rest, pc, err := extractProfileFlags(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("extractProfileFlags(%v): want error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("extractProfileFlags(%v): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(rest, tc.rest) || pc.cpu != tc.cpu || pc.mem != tc.mem {
			t.Errorf("extractProfileFlags(%v) = %v cpu=%q mem=%q, want %v cpu=%q mem=%q",
				tc.in, rest, pc.cpu, pc.mem, tc.rest, tc.cpu, tc.mem)
		}
	}
}

func TestProfileStartStop(t *testing.T) {
	dir := t.TempDir()
	pc := &profileConfig{cpu: dir + "/cpu.out", mem: dir + "/mem.out"}
	if err := pc.start(); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := runPartition([]string{"-nodes", "500", "-shards", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if err := pc.stop(); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{pc.cpu, pc.mem} {
		if fi, err := statFile(f); err != nil || fi == 0 {
			t.Errorf("profile %s missing or empty (size=%d err=%v)", f, fi, err)
		}
	}
}
