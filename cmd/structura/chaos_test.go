package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"structura/internal/sim"
)

func TestChaosList(t *testing.T) {
	var buf bytes.Buffer
	if err := runChaos([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"scenarios:", "invariants:", "mis", "reversal-full", "mis-independence"} {
		if !strings.Contains(out, want) {
			t.Errorf("chaos -list output missing %q:\n%s", want, out)
		}
	}
}

func TestChaosCleanRun(t *testing.T) {
	var buf bytes.Buffer
	err := runChaos([]string{"-scenario", "mis", "-seed", "5", "-loss", "0.1", "-horizon", "6"}, &buf)
	if err != nil {
		t.Fatalf("lossy-but-recoverable run should pass: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "OK") {
		t.Errorf("clean run did not report OK:\n%s", buf.String())
	}
}

// TestChaosMinimalRepro drives the full loop: a schedule file that partitions
// the reversal ring must surface violations, print a minimal concrete
// schedule, and exit non-zero; the printed schedule must itself be a valid
// replayable document reproducing the failure.
func TestChaosMinimalRepro(t *testing.T) {
	sch := sim.Schedule{
		Horizon: 6,
		Events: []sim.Event{
			{Round: 1, Op: sim.OpRemoveEdge, U: 1, V: 0},
			{Round: 1, Op: sim.OpRemoveEdge, U: 1, V: 6},
			{Round: 1, Op: sim.OpRemoveEdge, U: 2, V: 3},
		},
	}
	raw, err := json.Marshal(sch)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "partition.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = runChaos([]string{"-scenario", "reversal-full", "-seed", "7", "-schedule", path}, &buf)
	if err == nil {
		t.Fatalf("violating run must exit with an error:\n%s", buf.String())
	}
	if !strings.Contains(err.Error(), "violation") {
		t.Fatalf("error %q does not mention violations", err)
	}
	out := buf.String()
	marker := "minimal failing schedule"
	idx := strings.Index(out, marker)
	if idx < 0 {
		t.Fatalf("output lacks the minimal schedule:\n%s", out)
	}
	// The JSON document starts at the first '{' after the marker line.
	rest := out[idx:]
	brace := strings.Index(rest, "{")
	if brace < 0 {
		t.Fatalf("no JSON after marker:\n%s", out)
	}
	dec := json.NewDecoder(strings.NewReader(rest[brace:]))
	var min sim.Schedule
	if err := dec.Decode(&min); err != nil {
		t.Fatalf("printed schedule does not parse: %v\n%s", err, out)
	}
	if len(min.Events) == 0 || len(min.Events) > len(sch.Events) {
		t.Fatalf("minimal schedule has %d events, original had %d", len(min.Events), len(sch.Events))
	}
	r, err := sim.Explore("reversal-full", 7, min)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Violations) == 0 {
		t.Fatal("printed minimal schedule does not reproduce the violation")
	}
}

func TestChaosBadInputs(t *testing.T) {
	var buf bytes.Buffer
	if err := runChaos([]string{"-scenario", "nope"}, &buf); err == nil {
		t.Error("unknown scenario should error")
	}
	if err := runChaos([]string{"-invariants", "bogus"}, &buf); err == nil {
		t.Error("unknown invariant should error")
	}
	if err := runChaos([]string{"-schedule", "/does/not/exist.json"}, &buf); err == nil {
		t.Error("missing schedule file should error")
	}
}
