package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"structura/internal/sim"
)

// runChaos is the `structura chaos` subcommand: run a fault-injection
// scenario under a schedule, check every registered invariant, and — when a
// run violates one — shrink it with delta debugging and print the minimal
// failing schedule as a copy-pasteable reproducer.
func runChaos(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("structura chaos", flag.ContinueOnError)
	var (
		scenario   = fs.String("scenario", "mis", "scenario to perturb (see -list)")
		seed       = fs.Uint64("seed", 42, "deterministic fault seed")
		file       = fs.String("schedule", "", "JSON schedule file (overrides the probability flags)")
		horizon    = fs.Int("horizon", 10, "rounds during which faults may fire")
		budget     = fs.Int("budget", 0, "round budget after the fault window (0 = scenario default)")
		loss       = fs.Float64("loss", 0, "per-edge message loss probability")
		crash      = fs.Float64("crash", 0, "per-node per-round crash probability")
		downtime   = fs.Int("downtime", 1, "rounds a crashed node stays down")
		skew       = fs.Float64("skew", 0, "per-node per-round skew (step skip) probability")
		maxSkew    = fs.Int("max-skew", 1, "max rounds a skewed node lags")
		churnAdd   = fs.Int("churn-add", 0, "edges added per churn tick")
		churnRm    = fs.Int("churn-remove", 0, "edges removed per churn tick")
		churnEvery = fs.Int("churn-every", 1, "rounds between churn ticks")
		workers    = fs.Int("workers", 0, "kernel worker count (0 = auto); results are identical for all values")
		invNames   = fs.String("invariants", "", "comma-separated invariant subset (default: all)")
		seeds      = fs.String("seeds", "", "inclusive seed range N..M; overrides -seed and skips minimization")
		list       = fs.Bool("list", false, "list scenarios and invariants, then exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Fprintln(out, "scenarios:")
		for _, sc := range sim.BuiltinScenarios() {
			fmt.Fprintf(out, "  %-17s %s\n", sc.Name, sc.Desc)
		}
		fmt.Fprintln(out, "invariants:")
		for _, inv := range sim.Invariants() {
			fmt.Fprintf(out, "  %-30s %s\n", inv.Name, inv.Desc)
		}
		return nil
	}
	var sch sim.Schedule
	if *file != "" {
		raw, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		sch, err = sim.DecodeSchedule(raw)
		if err != nil {
			return fmt.Errorf("schedule %s: %w", *file, err)
		}
	} else {
		sch = sim.Schedule{
			Horizon: *horizon, Budget: *budget,
			MsgLoss:   *loss,
			CrashProb: *crash, Downtime: *downtime,
			SkewProb: *skew, MaxSkew: *maxSkew,
			ChurnAdd: *churnAdd, ChurnRemove: *churnRm, ChurnEvery: *churnEvery,
		}
	}
	var invs []sim.Invariant
	if *invNames != "" {
		for _, name := range strings.Split(*invNames, ",") {
			inv, err := sim.Lookup(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			invs = append(invs, inv)
		}
	}
	if *seeds != "" {
		lo, hi, err := parseSeedRange(*seeds)
		if err != nil {
			return err
		}
		failed := 0
		for s := lo; s <= hi; s++ {
			res, err := sim.ExploreWith(*scenario, s, sch, *workers, invs...)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "seed %d: %s\n", s, res)
			for _, v := range res.Violations {
				fmt.Fprintf(out, "  %s\n", v)
			}
			if len(res.Violations) > 0 {
				failed++
			}
		}
		if failed > 0 {
			return fmt.Errorf("%d of %d seed(s) violated an invariant in scenario %s",
				failed, hi-lo+1, *scenario)
		}
		return nil
	}
	res, err := sim.ExploreWith(*scenario, *seed, sch, *workers, invs...)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, res)
	if len(res.Violations) == 0 {
		return nil
	}
	for _, v := range res.Violations {
		fmt.Fprintf(out, "  %s\n", v)
	}
	min, minRes, err := sim.Minimize(*scenario, *seed, sch, invs...)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "minimal failing schedule (%d event(s), replay with -schedule):\n", len(min.Events))
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(min); err != nil {
		return err
	}
	for _, v := range minRes.Violations {
		fmt.Fprintf(out, "  %s\n", v)
	}
	return fmt.Errorf("%d invariant violation(s) in scenario %s (seed %d)",
		len(res.Violations), *scenario, *seed)
}

// parseSeedRange parses an inclusive "N..M" seed range.
func parseSeedRange(s string) (lo, hi uint64, err error) {
	lohi := strings.SplitN(s, "..", 2)
	if len(lohi) != 2 {
		return 0, 0, fmt.Errorf("seed range %q: want N..M", s)
	}
	if lo, err = strconv.ParseUint(strings.TrimSpace(lohi[0]), 10, 64); err != nil {
		return 0, 0, fmt.Errorf("seed range %q: %w", s, err)
	}
	if hi, err = strconv.ParseUint(strings.TrimSpace(lohi[1]), 10, 64); err != nil {
		return 0, 0, fmt.Errorf("seed range %q: %w", s, err)
	}
	if hi < lo {
		return 0, 0, fmt.Errorf("seed range %q: %d > %d", s, lo, hi)
	}
	return lo, hi, nil
}
