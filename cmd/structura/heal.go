package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"structura/internal/heal"
	"structura/internal/sim"
)

// runHeal is the `structura heal` subcommand: drive a supervised
// self-healing engine through a churn schedule and report detection
// latency, repair locality, and localized-repair versus full-recompute
// round work. It exits nonzero when a run ends with standing violations.
func runHeal(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("structura heal", flag.ContinueOnError)
	var (
		engine     = fs.String("engine", "mis", "supervised engine: "+strings.Join(heal.EngineNames(), ", "))
		seed       = fs.Uint64("seed", 1, "deterministic churn seed (also picks the topology)")
		seeds      = fs.String("seeds", "", "inclusive seed range N..M; overrides -seed")
		file       = fs.String("schedule", "", "JSON schedule file (overrides the churn flags)")
		rounds     = fs.Int("rounds", 200, "supervision rounds (the schedule horizon)")
		churnAdd   = fs.Int("churn-add", 1, "edges added per churn tick")
		churnRm    = fs.Int("churn-remove", 1, "edges removed per churn tick")
		churnEvery = fs.Int("churn-every", 1, "rounds between churn ticks")
		sweepEvery = fs.Int("sweep-every", 0, "full invariant sweep period (0 = dirty-tracking only)")
		maxRounds  = fs.Int("max-rounds", 0, "repair budget: max localized repair sweeps (0 = unbounded)")
		maxTouched = fs.Int("max-touched", 0, "repair budget: max nodes one repair may touch (0 = unbounded)")
		compare    = fs.Bool("compare", false, "also run the force-recompute baseline and report both")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var sch sim.Schedule
	if *file != "" {
		raw, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		sch, err = sim.DecodeSchedule(raw)
		if err != nil {
			return fmt.Errorf("schedule %s: %w", *file, err)
		}
	} else {
		sch = sim.Schedule{
			Horizon:  *rounds,
			ChurnAdd: *churnAdd, ChurnRemove: *churnRm, ChurnEvery: *churnEvery,
		}
	}
	lo, hi := *seed, *seed
	if *seeds != "" {
		var err error
		if lo, hi, err = parseSeedRange(*seeds); err != nil {
			return err
		}
	}
	failed := 0
	for s := lo; s <= hi; s++ {
		rep, err := superviseOnce(*engine, s, sch, heal.Budget{MaxRounds: *maxRounds, MaxTouched: *maxTouched}, *sweepEvery, false)
		if err != nil {
			return err
		}
		printHealReport(out, s, rep)
		if *compare {
			base, err := superviseOnce(*engine, s, sch, heal.Budget{}, *sweepEvery, true)
			if err != nil {
				return err
			}
			localized := rep.RepairRounds + rep.RecomputeRounds
			fmt.Fprintf(out, "  repair-vs-recompute: localized %d round(s) (%d repairs + %d escalations), force-recompute %d round(s) (%d recomputes)\n",
				localized, rep.Repairs, rep.Escalations, base.RecomputeRounds, base.Escalations)
		}
		if len(rep.Standing) > 0 {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d supervised run(s) ended with standing violations (engine %s)",
			failed, hi-lo+1, *engine)
	}
	return nil
}

func superviseOnce(engine string, seed uint64, sch sim.Schedule, b heal.Budget, sweepEvery int, force bool) (*heal.Report, error) {
	eng, err := heal.NewEngine(engine, seed)
	if err != nil {
		return nil, err
	}
	sup := &heal.Supervisor{Engine: eng, Budget: b, SweepEvery: sweepEvery, ForceRecompute: force}
	return sup.Run(seed, sch)
}

func printHealReport(out io.Writer, seed uint64, rep *heal.Report) {
	fmt.Fprintf(out, "engine %s seed %d: %d nodes, %d rounds, %d churn events\n",
		rep.Engine, seed, rep.Nodes, rep.Rounds, rep.Events)
	fmt.Fprintf(out, "  detections %d (max latency %d), repairs %d (%d sweeps, worst locality %.1f%%), escalations %d (%d recompute rounds), full sweeps %d\n",
		len(rep.Detections), rep.MaxLatency, rep.Repairs, rep.RepairRounds,
		100*rep.MaxTouchedFrac, rep.Escalations, rep.RecomputeRounds, rep.Sweeps)
	if len(rep.Standing) == 0 {
		fmt.Fprintln(out, "  standing violations: none")
		return
	}
	fmt.Fprintf(out, "  standing violations: %d\n", len(rep.Standing))
	for _, v := range rep.Standing {
		fmt.Fprintf(out, "    %s\n", v)
	}
}
