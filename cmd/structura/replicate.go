package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"structura/internal/replica"
	"structura/internal/wal"
)

// runReplicaServe is `structura serve -replicate-from`: follow a primary's
// replication stream, mirror it durably into the store directory, and serve
// degraded stale-ok reads (plus POST /promote for failover) on addr. The
// process keeps serving its mirrored state even when the primary dies or
// turns out to be deposed — that is exactly when an operator promotes it.
func runReplicaServe(addr, dir, from string, opts replica.Options, out io.Writer) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "listening on %s\n", ln.Addr())

	r, err := replica.New(dir, from, opts)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: r.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.Serve(ln) }()

	fmt.Fprintf(out, "replica: mirroring %s into %s, stale-ok reads ready\n", from, dir)
	runErr := make(chan error, 1)
	go func() { runErr <- r.Run() }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	for {
		select {
		case err := <-httpErr:
			return err
		case err := <-runErr:
			runErr = nil // keep serving; a nil channel never fires again
			switch {
			case errors.Is(err, replica.ErrDeposed):
				fmt.Fprintln(out, "configured primary is deposed (lower fence); serving mirrored state, promotable")
			case err != nil:
				fmt.Fprintf(out, "follow loop stopped: %v; serving mirrored state\n", err)
			default:
				// Stop or promotion via POST /promote.
			}
			continue
		case <-ctx.Done():
		}
		break
	}

	fmt.Fprintln(out, "shutting down")
	r.Stop()
	sdCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if srv := r.PromotedServer(); srv != nil {
		if err := srv.Shutdown(sdCtx); err != nil {
			return fmt.Errorf("promoted server shutdown: %w", err)
		}
		if err := r.PromotedLog().Close(); err != nil {
			return fmt.Errorf("promoted wal close: %w", err)
		}
	}
	if err := httpSrv.Shutdown(sdCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("http shutdown: %w", err)
	}
	return nil
}

// runReplicate is the `structura replicate` status subcommand: describe a
// store or mirror directory without mutating it — generation, fencing token,
// committed batch, label epoch, and what a recovery would reconstruct.
func runReplicate(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("structura replicate", flag.ContinueOnError)
	store := fs.String("store", "", "store or mirror directory to describe")
	asJSON := fs.Bool("json", false, "emit the description as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *store == "" {
		return fmt.Errorf("-store is required")
	}
	info, err := wal.Inspect(nil, *store)
	if err != nil {
		return fmt.Errorf("inspect %s: %w", *store, err)
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", " ")
		return enc.Encode(info)
	}
	fmt.Fprintf(out, "store:       %s\n", info.Dir)
	fmt.Fprintf(out, "generation:  %d (fence %d)\n", info.Gen, info.Fence)
	fmt.Fprintf(out, "snapshot:    %s (batch %d)\n", info.SnapName, info.SnapSeq)
	fmt.Fprintf(out, "log:         %s (%d byte(s))\n", info.LogName, info.LogBytes)
	fmt.Fprintf(out, "recoverable: batch %d, %d record(s), %d node(s)\n", info.Seq, info.Records, info.Nodes)
	if info.HasLabels {
		fmt.Fprintf(out, "label epoch: batch %d (warm start covers batches ≤ %d; later batches heal dirty)\n",
			info.LabelSeq, info.LabelSeq)
	} else {
		fmt.Fprintln(out, "label epoch: none (recovery recomputes labels)")
	}
	if info.Truncated {
		fmt.Fprintf(out, "torn tail:   %s\n", info.TruncateNote)
	}
	return nil
}
