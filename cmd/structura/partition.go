package main

import (
	"flag"
	"fmt"
	"io"
	"reflect"
	"time"

	"structura/internal/gen"
	"structura/internal/partition"
	"structura/internal/runtime"
	"structura/internal/stats"
)

// runPartition is the `structura partition` subcommand: generate a sparse ER
// graph, split it into edge-cut shards, report the partition quality (cut
// fraction, ghost fraction, imbalance), and run the distributed-max workload
// on the sharded kernel to measure rounds/sec and the measured ghost-exchange
// traffic. With -check the same workload also runs unsharded and the two
// results are compared; any divergence is an error (nonzero exit).
func runPartition(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("structura partition", flag.ContinueOnError)
	var (
		nodes    = fs.Int("nodes", 100_000, "graph size (sparse Erdős–Rényi)")
		degree   = fs.Float64("degree", 10, "expected degree")
		shards   = fs.Int("shards", 8, "shard count")
		strategy = fs.String("strategy", "contiguous", "boundary placement: contiguous | degree-balanced")
		rounds   = fs.Int("rounds", 15, "round budget for the workload")
		delta    = fs.Bool("delta", false, "run the workload on the delta-frontier path")
		workers  = fs.Int("workers", 0, "kernel worker count (0 = one per shard)")
		seed     = fs.Int64("seed", 1, "graph generation seed")
		check    = fs.Bool("check", false, "also run unsharded and require bit-identical results")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var strat partition.Strategy
	switch *strategy {
	case "contiguous":
		strat = partition.Contiguous
	case "degree-balanced":
		strat = partition.DegreeBalanced
	default:
		return fmt.Errorf("unknown strategy %q (want contiguous | degree-balanced)", *strategy)
	}
	if *nodes < 2 {
		return fmt.Errorf("need at least 2 nodes, got %d", *nodes)
	}

	g := gen.SparseErdosRenyi(stats.NewRand(*seed), *nodes, *degree/float64(*nodes-1))
	csr, err := g.FreezeChecked()
	if err != nil {
		return err
	}
	var es partition.ExchangeStats
	plan, err := partition.New(csr, *shards,
		partition.WithStrategy(strat), partition.WithExchangeStats(&es))
	if err != nil {
		return err
	}
	ps := plan.Stats()
	fmt.Fprintf(out, "partition: %d nodes, %d edges -> %d %s shards\n",
		ps.Nodes, ps.Edges, ps.Shards, strat)
	fmt.Fprintf(out, "  cut edges      %10d  (%.2f%% of edges)\n", ps.CutEdges, 100*ps.CutFraction)
	fmt.Fprintf(out, "  ghost replicas %10d  (%.2f%% of nodes)\n", ps.Ghosts, 100*ps.GhostFraction)
	fmt.Fprintf(out, "  owned range    %10d .. %d nodes/shard\n", ps.MinOwned, ps.MaxOwned)
	fmt.Fprintf(out, "  edge imbalance %13.3f  (max shard half-edges / mean)\n", ps.Imbalance)

	w := *workers
	if w <= 0 {
		w = *shards
	}
	init := func(v int) int { return v * 2654435761 % 1_000_003 }
	maxStep := func(v int, self int, nbrs []int) (int, bool) {
		best := self
		for _, nb := range nbrs {
			if nb > best {
				best = nb
			}
		}
		return best, best != self
	}
	opts := []runtime.Option{runtime.WithMaxRounds(*rounds), runtime.WithParallelism(w)}
	if *delta {
		opts = append(opts, runtime.WithDelta())
	}
	start := time.Now()
	states, st, err := partition.Run(csr, plan, init, maxStep, opts...)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	mode := "full"
	if *delta {
		mode = "delta"
	}
	fmt.Fprintf(out, "workload: distributed-max, %s mode, %d workers\n", mode, w)
	fmt.Fprintf(out, "  rounds         %10d  in %v  (%.2f rounds/sec)\n",
		st.Rounds, elapsed.Round(time.Millisecond), float64(st.Rounds)/elapsed.Seconds())
	fmt.Fprintf(out, "  exchange       %12.0f values/round  %.0f bytes/round  (max round %d values)\n",
		es.ValuesPerRound(), es.BytesPerRound(), es.MaxRoundValues)

	if *check {
		want, wantStats, err := runtime.RunCSR(csr, init, maxStep, opts...)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(states, want) {
			return fmt.Errorf("check failed: sharded states diverge from unsharded")
		}
		if st.Rounds != wantStats.Rounds || st.Messages != wantStats.Messages {
			return fmt.Errorf("check failed: sharded stats (rounds=%d msgs=%d) diverge from unsharded (rounds=%d msgs=%d)",
				st.Rounds, st.Messages, wantStats.Rounds, wantStats.Messages)
		}
		fmt.Fprintf(out, "check: sharded == unsharded (states, %d rounds, %d messages)\n",
			st.Rounds, st.Messages)
	}
	return nil
}
