package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunServeLoadgen(t *testing.T) {
	var out bytes.Buffer
	err := runServe([]string{
		"-nodes", "500", "-avg-degree", "6", "-seed", "3",
		"-loadgen", "5000", "-loadgen-workers", "2"}, &out)
	if err != nil {
		t.Fatalf("runServe: %v\n%s", err, out.String())
	}
	for _, want := range []string{
		"serving 500 node(s)", "dest 0", "epoch 1",
		"loadgen: 5000 queries", "queries/sec", "p99",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunServeWithCDS(t *testing.T) {
	// Small and dense enough to be connected, so the backbone builds and the
	// loadgen mix exercises /cds/member.
	var out bytes.Buffer
	err := runServe([]string{
		"-nodes", "100", "-avg-degree", "10", "-seed", "1", "-cds",
		"-loadgen", "500", "-loadgen-workers", "1"}, &out)
	if err != nil {
		t.Fatalf("runServe -cds: %v\n%s", err, out.String())
	}
}

func TestRunServeRejects(t *testing.T) {
	for _, args := range [][]string{
		{"-nodes", "1"},                        // too small
		{"-nodes", "100", "-dest", "100"},      // dest out of range
		{"-nodes", "100", "-bogus-flag", "17"}, // unknown flag
	} {
		if err := runServe(args, &bytes.Buffer{}); err == nil {
			t.Errorf("runServe(%v) succeeded, want error", args)
		}
	}
}
