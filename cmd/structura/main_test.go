package main

import (
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSelected(t *testing.T) {
	if err := run([]string{"-seed", "7", "fig2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no experiments should error")
	}
	if err := run([]string{"nope"}); err == nil {
		t.Error("unknown experiment should error")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag should error")
	}
}

func TestRunJSON(t *testing.T) {
	if err := run([]string{"-format", "json", "fig2"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-format", "nope", "fig2"}); err == nil {
		t.Error("unknown format should error")
	}
}
