// Command structura regenerates the paper's figures and quantitative
// claims as text tables.
//
// Usage:
//
//	structura list                 # list available experiments
//	structura all                  # run everything
//	structura fig3 fig4 tour       # run selected experiments
//	structura trace                # per-round kernel convergence traces
//	structura -seed 7 fig5         # override the deterministic seed
//	structura chaos -list          # fault-injection scenarios and invariants
//	structura chaos -scenario mis -loss 0.2 -seed 11   # chaos run + minimal repro
//	structura chaos -scenario mis -churn-add 1 -churn-remove 1 -seeds 1..8
//	structura heal -engine mis -seed 1 -rounds 200     # supervised self-healing run
//	structura heal -engine distvec -seeds 1..8 -compare
//	structura async -list                              # message-driven executor scenarios
//	structura async -scenario distvec -seed 3 -loss 0.1 -delay bimodal
//	structura async -scenario mis -seeds 1..8 -compare # sync-vs-async equivalence check
//	structura partition -nodes 1000000 -shards 8 -strategy degree-balanced
//	structura partition -shards 4 -delta -check        # sharded == unsharded gate
//	structura serve -nodes 100000 -addr :8372          # resident structure server
//	structura serve -nodes 10000 -loadgen 200000       # in-process throughput smoke
//	structura serve -data-dir p -repl-listen :9372     # primary serving the replication stream
//	structura serve -data-dir m -replicate-from host:9372  # follower: stale-ok reads + POST /promote
//	structura serve -data-dir m -promote               # failover takeover (fence bump)
//	structura replicate -store m                       # describe a store/mirror directory
//
// The global -cpuprofile/-memprofile flags work with every subcommand when
// placed before it:
//
//	structura -cpuprofile cpu.out partition -nodes 1000000 -shards 8
//	structura -memprofile mem.out fig3
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"structura"
)

func main() {
	args, prof, err := extractProfileFlags(os.Args[1:])
	if err == nil {
		if err = prof.start(); err == nil {
			err = run(args)
			if perr := prof.stop(); err == nil {
				err = perr
			}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "structura:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) > 0 && args[0] == "chaos" {
		return runChaos(args[1:], os.Stdout)
	}
	if len(args) > 0 && args[0] == "heal" {
		return runHeal(args[1:], os.Stdout)
	}
	if len(args) > 0 && args[0] == "async" {
		return runAsync(args[1:], os.Stdout)
	}
	if len(args) > 0 && args[0] == "partition" {
		return runPartition(args[1:], os.Stdout)
	}
	if len(args) > 0 && args[0] == "serve" {
		return runServe(args[1:], os.Stdout)
	}
	if len(args) > 0 && args[0] == "replicate" {
		return runReplicate(args[1:], os.Stdout)
	}
	fs := flag.NewFlagSet("structura", flag.ContinueOnError)
	seed := fs.Int64("seed", 42, "deterministic experiment seed")
	format := fs.String("format", "text", "output format: text | json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "text" && *format != "json" {
		return fmt.Errorf("unknown format %q", *format)
	}
	ids := fs.Args()
	if len(ids) == 0 {
		fs.Usage()
		fmt.Fprintln(os.Stderr, "\nrun 'structura list' to see experiments")
		return fmt.Errorf("no experiments requested")
	}
	if len(ids) == 1 && ids[0] == "list" {
		for _, e := range structura.Experiments() {
			fmt.Printf("%-11s %-9s %-22s %s\n", e.ID, e.Strategy, e.PaperRef, e.Title)
		}
		return nil
	}
	if len(ids) == 1 && ids[0] == "all" {
		if *format == "json" {
			ids = nil
			for _, e := range structura.Experiments() {
				ids = append(ids, e.ID)
			}
		} else {
			return structura.RunAll(os.Stdout, *seed)
		}
	}
	type jsonExperiment struct {
		ID       string            `json:"id"`
		Title    string            `json:"title"`
		PaperRef string            `json:"paper_ref"`
		Tables   []structura.Table `json:"tables"`
	}
	var jsonOut []jsonExperiment
	for _, id := range ids {
		e, err := structura.LookupExperiment(id)
		if err != nil {
			return err
		}
		tables, err := e.Run(*seed)
		if err != nil {
			return err
		}
		if *format == "json" {
			jsonOut = append(jsonOut, jsonExperiment{
				ID: e.ID, Title: e.Title, PaperRef: e.PaperRef, Tables: tables,
			})
			continue
		}
		fmt.Printf("=== %s — %s (%s)\n", e.ID, e.Title, e.PaperRef)
		for _, t := range tables {
			if err := t.Render(os.Stdout); err != nil {
				return err
			}
		}
		fmt.Println()
	}
	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		return enc.Encode(jsonOut)
	}
	return nil
}
