package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestAsyncList(t *testing.T) {
	var buf bytes.Buffer
	if err := runAsync([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"async scenarios:", "mis", "distvec", "hypercube", "reversal-full",
		"delay models: fixed | uniform | bimodal", "invariants:"} {
		if !strings.Contains(out, want) {
			t.Errorf("async -list output missing %q:\n%s", want, out)
		}
	}
}

func TestAsyncCleanRun(t *testing.T) {
	var buf bytes.Buffer
	err := runAsync([]string{"-scenario", "distvec", "-seed", "3", "-loss", "0.1", "-horizon", "6",
		"-delay", "uniform", "-delay-base", "2", "-delay-spread", "10"}, &buf)
	if err != nil {
		t.Fatalf("lossy-but-recoverable run should pass: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "OK") {
		t.Errorf("clean run did not report OK:\n%s", out)
	}
	if !strings.Contains(out, "quiesced=true") {
		t.Errorf("clean run did not report quiescence:\n%s", out)
	}
}

// TestAsyncCompareAgrees pins the -compare happy path on a confluent
// scenario: identical final labelings, exit zero, and a report carrying both
// the sync round count and the async virtual-time figures.
func TestAsyncCompareAgrees(t *testing.T) {
	var buf bytes.Buffer
	err := runAsync([]string{"-scenario", "distvec", "-seed", "3", "-compare",
		"-churn-add", "1", "-churn-remove", "1", "-churn-every", "2", "-horizon", "8"}, &buf)
	if err != nil {
		t.Fatalf("confluent compare should agree: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"sync rounds=", "async vrounds=", "final labelings identical", "transport:"} {
		if !strings.Contains(out, want) {
			t.Errorf("compare report missing %q:\n%s", want, out)
		}
	}
}

// TestAsyncCompareDivergenceExitsNonzero is the acceptance criterion for
// the -compare exit contract: a schedule-dependent scenario whose async
// replay lands on a different orientation must report DIVERGED and return
// an error.
func TestAsyncCompareDivergenceExitsNonzero(t *testing.T) {
	var buf bytes.Buffer
	err := runAsync([]string{"-scenario", "reversal-full", "-seed", "2", "-compare",
		"-churn-remove", "2", "-horizon", "8",
		"-delay", "bimodal", "-delay-base", "2", "-delay-spread", "24", "-slow-one-in", "4"}, &buf)
	if err == nil {
		t.Fatalf("diverging compare must exit nonzero:\n%s", buf.String())
	}
	if !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("error %q does not mention divergence", err)
	}
	if !strings.Contains(buf.String(), "DIVERGED") {
		t.Fatalf("report does not flag the divergence:\n%s", buf.String())
	}
}

func TestAsyncBadInputs(t *testing.T) {
	var buf bytes.Buffer
	if err := runAsync([]string{"-scenario", "nope"}, &buf); err == nil {
		t.Error("unknown scenario should error")
	}
	if err := runAsync([]string{"-delay", "warp"}, &buf); err == nil {
		t.Error("unknown delay model should error")
	}
	if err := runAsync([]string{"-policy", "panic"}, &buf); err == nil {
		t.Error("unknown policy should error")
	}
	if err := runAsync([]string{"-invariants", "bogus"}, &buf); err == nil {
		t.Error("unknown invariant should error")
	}
	if err := runAsync([]string{"-schedule", "/does/not/exist.json"}, &buf); err == nil {
		t.Error("missing schedule file should error")
	}
}
