package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"structura/internal/async"
	"structura/internal/sim"
)

// runAsync is the `structura async` subcommand: run a scenario on the
// event-driven message-passing executor under a fault schedule and a
// per-link delay model, check every registered invariant against the final
// world, and — with -compare — run the synchronous kernel on the same
// concrete fault timeline and exit nonzero on any divergence between the
// two final labelings.
func runAsync(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("structura async", flag.ContinueOnError)
	var (
		scenario   = fs.String("scenario", "mis", "async scenario (see -list)")
		seed       = fs.Uint64("seed", 42, "deterministic seed for faults and delays")
		file       = fs.String("schedule", "", "JSON schedule file (overrides the probability flags)")
		horizon    = fs.Int("horizon", 10, "round windows during which faults may fire")
		budget     = fs.Int("budget", 0, "round-window budget (0 = scenario default)")
		loss       = fs.Float64("loss", 0, "per-transmission loss probability inside the horizon")
		crash      = fs.Float64("crash", 0, "per-node per-window crash probability")
		downtime   = fs.Int("downtime", 1, "windows a crashed node stays down")
		skew       = fs.Float64("skew", 0, "per-node per-window pause probability")
		maxSkew    = fs.Int("max-skew", 1, "max windows a paused node lags")
		churnAdd   = fs.Int("churn-add", 0, "edges added per churn tick")
		churnRm    = fs.Int("churn-remove", 0, "edges removed per churn tick")
		churnEvery = fs.Int("churn-every", 1, "windows between churn ticks")
		delayKind  = fs.String("delay", "uniform", "per-link delay distribution: fixed | uniform | bimodal")
		delayBase  = fs.Int64("delay-base", 4, "minimum one-way delay in ticks")
		delaySpr   = fs.Int64("delay-spread", 8, "uniform jitter width / bimodal slow-path penalty, ticks")
		slowOneIn  = fs.Int("slow-one-in", 8, "bimodal: one in this many messages takes the slow path")
		mailbox    = fs.Int("mailbox", 8, "per-node mailbox capacity")
		policy     = fs.String("policy", "block", "full-mailbox policy: block | shed")
		rto        = fs.Int64("rto", 0, "initial retransmission timeout in ticks (0 = 4 round windows)")
		roundTicks = fs.Int64("round-ticks", 16, "ticks per round window (the sync-comparability unit)")
		invNames   = fs.String("invariants", "", "comma-separated invariant subset (default: all)")
		seeds      = fs.String("seeds", "", "inclusive seed range N..M; overrides -seed")
		compare    = fs.Bool("compare", false, "run the synchronous kernel on the same fault timeline and diff outcomes")
		list       = fs.Bool("list", false, "list async scenarios and delay models, then exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Fprintln(out, "async scenarios:")
		for _, sc := range async.Scenarios() {
			fmt.Fprintf(out, "  %-15s %s\n", sc.Name, sc.Desc)
		}
		fmt.Fprintln(out, "delay models: fixed | uniform | bimodal")
		fmt.Fprintln(out, "invariants:")
		for _, inv := range sim.Invariants() {
			fmt.Fprintf(out, "  %-30s %s\n", inv.Name, inv.Desc)
		}
		return nil
	}

	var sch sim.Schedule
	if *file != "" {
		raw, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		sch, err = sim.DecodeSchedule(raw)
		if err != nil {
			return fmt.Errorf("schedule %s: %w", *file, err)
		}
	} else {
		sch = sim.Schedule{
			Horizon: *horizon, Budget: *budget,
			MsgLoss:   *loss,
			CrashProb: *crash, Downtime: *downtime,
			SkewProb: *skew, MaxSkew: *maxSkew,
			ChurnAdd: *churnAdd, ChurnRemove: *churnRm, ChurnEvery: *churnEvery,
		}
	}

	var kind async.DelayKind
	switch *delayKind {
	case "fixed":
		kind = async.Fixed
	case "uniform":
		kind = async.Uniform
	case "bimodal":
		kind = async.Bimodal
	default:
		return fmt.Errorf("unknown delay model %q (want fixed, uniform, or bimodal)", *delayKind)
	}
	var pol async.Policy
	switch *policy {
	case "block":
		pol = async.Block
	case "shed":
		pol = async.Shed
	default:
		return fmt.Errorf("unknown policy %q (want block or shed)", *policy)
	}
	cfg := async.Config{
		Delay:      async.Delay{Kind: kind, Base: *delayBase, Spread: *delaySpr, SlowOneIn: *slowOneIn},
		RoundTicks: *roundTicks,
		MailboxCap: *mailbox,
		Policy:     pol,
		RTO:        *rto,
	}

	var invs []sim.Invariant
	if *invNames != "" {
		for _, name := range strings.Split(*invNames, ",") {
			inv, err := sim.Lookup(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			invs = append(invs, inv)
		}
	}

	lo, hi := *seed, *seed
	if *seeds != "" {
		var err error
		lo, hi, err = parseSeedRange(*seeds)
		if err != nil {
			return err
		}
	}

	failed := 0
	for s := lo; s <= hi; s++ {
		if *compare {
			cmp, err := async.Compare(*scenario, s, sch, cfg)
			if err != nil {
				return err
			}
			printComparison(out, cmp)
			if cmp.Diverged() || len(cmp.Async.Violations) > 0 {
				failed++
			}
			continue
		}
		res, err := async.Explore(*scenario, s, sch, cfg, invs...)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "seed %d: %s\n", s, res)
		for _, v := range res.Violations {
			fmt.Fprintf(out, "  %s\n", v)
		}
		if len(res.Violations) > 0 || !res.Quiesced {
			failed++
		}
	}
	if failed > 0 {
		if *compare {
			return fmt.Errorf("%d of %d seed(s) diverged or violated an invariant in scenario %s",
				failed, hi-lo+1, *scenario)
		}
		return fmt.Errorf("%d of %d seed(s) violated an invariant or missed quiescence in scenario %s",
			failed, hi-lo+1, *scenario)
	}
	return nil
}

// printComparison renders the sync-vs-async report: the rounds-to-quiesce
// comparison the tentpole asks for, the retry overhead, both invariant
// verdicts, and every divergence.
func printComparison(out io.Writer, c *async.Comparison) {
	st := c.Async.Async
	fmt.Fprintf(out, "%s seed %d: sync rounds=%d quiesced=%v | async vrounds=%d (last activity t=%d, detected t=%d) quiesced=%v\n",
		c.Scenario, c.Seed,
		c.Sync.World.Stats.Rounds, c.Sync.Quiesced,
		st.VRounds, st.LastActivity, st.DetectedAt, c.Async.Quiesced)
	fmt.Fprintf(out, "  transport: sent=%d retries=%d (overhead %.3f) delivered=%d dups=%d shed=%d blocked=%d lost=%d\n",
		st.Sent, st.Retries, st.RetryOverhead(), st.Delivered, st.Dups, st.Shed, st.Blocked, st.Lost)
	fmt.Fprintf(out, "  invariants: sync=%s async=%s\n",
		verdict(len(c.Sync.Violations)), verdict(len(c.Async.Violations)))
	for _, v := range c.Sync.Violations {
		fmt.Fprintf(out, "    sync:  %s\n", v)
	}
	for _, v := range c.Async.Violations {
		fmt.Fprintf(out, "    async: %s\n", v)
	}
	if c.Diverged() {
		fmt.Fprintf(out, "  DIVERGED (%d):\n", len(c.Divergences))
		for _, d := range c.Divergences {
			fmt.Fprintf(out, "    %s\n", d)
		}
	} else {
		fmt.Fprintln(out, "  final labelings identical")
	}
}

func verdict(n int) string {
	if n == 0 {
		return "clean"
	}
	return fmt.Sprintf("%d violation(s)", n)
}
