package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"structura/internal/gen"
	"structura/internal/stats"
	"structura/internal/wal"
)

// The wal-smoke parameters must match between the child process flags and
// the parent's mirror of the topology and mutation stream.
const (
	smokeNodes  = 60
	smokeAvgDeg = 6.0
	smokeSeed   = 7
)

type smokeMut struct {
	Op string `json:"op"`
	U  int    `json:"u"`
	V  int    `json:"v"`
}

// smokeStream is the deterministic mutation stream: mixed adds and removes,
// no self-loops, biased toward adds so the graph stays connected enough.
func smokeStream(n, count int) []smokeMut {
	r := stats.NewRand(99)
	muts := make([]smokeMut, 0, count)
	for len(muts) < count {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		op := "add"
		if r.Float64() < 0.3 {
			op = "remove"
		}
		muts = append(muts, smokeMut{Op: op, U: u, V: v})
	}
	return muts
}

// prefixHashes applies the stream to a mirror of the server's boot topology
// under the WAL's acceptance rule and returns the graph hash after every
// mutation prefix: prefixHashes[i] is the topology after the first i
// journaled records. The WAL journals every record (cum counts them all)
// but applies only topologically valid ones, exactly like this mirror.
func prefixHashes(muts []smokeMut) []uint64 {
	p := smokeAvgDeg / float64(smokeNodes-1)
	g := gen.SparseErdosRenyi(stats.NewRand(smokeSeed), smokeNodes, p)
	out := make([]uint64, 0, len(muts)+1)
	out = append(out, wal.GraphHash(g))
	for _, m := range muts {
		if m.Op == "add" {
			if !g.HasEdge(m.U, m.V) {
				_ = g.AddEdge(m.U, m.V)
			}
		} else {
			g.RemoveEdge(m.U, m.V)
		}
		out = append(out, wal.GraphHash(g))
	}
	return out
}

// smokeProc is one `structura serve` child process.
type smokeProc struct {
	cmd  *exec.Cmd
	addr string
	out  *bytes.Buffer
	mu   sync.Mutex
}

func startServe(t *testing.T, bin, dataDir string) *smokeProc {
	t.Helper()
	cmd := exec.Command(bin, "serve",
		"-nodes", fmt.Sprint(smokeNodes),
		"-avg-degree", fmt.Sprint(smokeAvgDeg),
		"-seed", fmt.Sprint(smokeSeed),
		"-addr", "127.0.0.1:0",
		"-data-dir", dataDir,
		"-batch-max", "4",
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start serve: %v", err)
	}
	p := &smokeProc{cmd: cmd, out: &bytes.Buffer{}}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		re := regexp.MustCompile(`^listening on (\S+)$`)
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			p.out.WriteString(line + "\n")
			p.mu.Unlock()
			if m := re.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case p.addr = <-addrCh:
	case <-time.After(20 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatalf("serve never printed its address; output:\n%s", p.output())
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	return p
}

func (p *smokeProc) output() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.out.String()
}

func (p *smokeProc) url(path string) string { return "http://" + p.addr + path }

// waitReady polls /healthz until the recovery gate opens (200).
func (p *smokeProc) waitReady(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(p.url("/healthz"))
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
			if resp.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("/healthz: unexpected status %d", resp.StatusCode)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("server never became ready; output:\n%s", p.output())
}

func (p *smokeProc) mutate(t *testing.T, muts []smokeMut) {
	t.Helper()
	body, _ := json.Marshal(struct {
		Ops []smokeMut `json:"ops"`
	}{muts})
	resp, err := http.Post(p.url("/mutate"), "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("mutate: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var b bytes.Buffer
		_, _ = b.ReadFrom(resp.Body)
		t.Fatalf("mutate: status %d: %s", resp.StatusCode, b.String())
	}
}

type smokeMetrics struct {
	Epoch    uint64 `json:"epoch"`
	Accepted uint64 `json:"accepted"`
	Applied  uint64 `json:"applied"`
	WAL      *struct {
		Records          uint64 `json:"records"`
		Syncs            uint64 `json:"syncs"`
		RecoveredSeq     uint64 `json:"recovered_seq"`
		RecoveryStanding uint64 `json:"recovery_standing"`
	} `json:"wal"`
}

func (p *smokeProc) metrics(t *testing.T) smokeMetrics {
	t.Helper()
	resp, err := http.Get(p.url("/metrics"))
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer resp.Body.Close()
	var m smokeMetrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("metrics decode: %v", err)
	}
	return m
}

func (p *smokeProc) quiesce(t *testing.T) smokeMetrics {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		m := p.metrics(t)
		if m.Accepted == m.Applied {
			return m
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("server never quiesced")
	return smokeMetrics{}
}

func (p *smokeProc) graphHash(t *testing.T) string {
	t.Helper()
	resp, err := http.Get(p.url("/labels?hash=1"))
	if err != nil {
		t.Fatalf("labels: %v", err)
	}
	defer resp.Body.Close()
	var sum struct {
		GraphHash string `json:"graph_hash"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatalf("labels decode: %v", err)
	}
	return sum.GraphHash
}

// TestWALSmokeKillRecover is the end-to-end durability proof through the
// real binary: start `structura serve -data-dir`, mutate under churn, kill
// the process with SIGKILL mid-ingest, restart on the same store, and
// verify the recovered topology is exactly the mutation prefix the WAL
// committed — matching a parent-side replay hash — with a clean invariant
// sweep and a server that accepts writes again.
func TestWALSmokeKillRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives the real binary; skipped with -short")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "structura")
	build := exec.Command("go", "build", "-race", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build -race: %v\n%s", err, out)
	}
	dataDir := filepath.Join(tmp, "store")

	// One spare mutation beyond the ingest stream: the post-recovery write
	// continues the stream wherever the committed prefix ended, even if the
	// entire churn burst landed before the kill.
	const tracked, churn = 40, 200
	muts := smokeStream(smokeNodes, tracked+churn+1)
	hashes := prefixHashes(muts)

	// ---- First life: tracked ingest, then churn, then SIGKILL. ----
	p1 := startServe(t, bin, dataDir)
	p1.waitReady(t)

	for i := 0; i < tracked; i++ {
		p1.mutate(t, muts[i:i+1])
	}
	m := p1.quiesce(t)
	if m.WAL == nil || m.WAL.Records != tracked {
		t.Fatalf("after tracked ingest: wal metrics %+v, want %d records", m.WAL, tracked)
	}
	if m.WAL.Syncs == 0 {
		t.Fatal("no fsyncs recorded under the per-batch policy")
	}
	if got, want := p1.graphHash(t), fmt.Sprintf("%016x", hashes[tracked]); got != want {
		t.Fatalf("live hash after %d mutation(s): %s, want %s", tracked, got, want)
	}

	// Churn: fire the rest without waiting, then kill -9 mid-ingest.
	for i := tracked; i < tracked+churn; i += 5 {
		p1.mutate(t, muts[i:i+5])
	}
	time.Sleep(20 * time.Millisecond) // let some batches land mid-flight
	if err := p1.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	_, _ = p1.cmd.Process.Wait()

	// ---- Second life: recover from the same store. ----
	p2 := startServe(t, bin, dataDir)
	p2.waitReady(t)
	m2 := p2.metrics(t)
	if m2.WAL == nil {
		t.Fatal("restarted server has no WAL metrics")
	}
	rec := m2.WAL.Records
	if rec < tracked || rec > tracked+churn {
		t.Fatalf("recovered %d record(s), want within [%d,%d]", rec, tracked, tracked+churn)
	}
	if m2.WAL.RecoveryStanding != 0 {
		t.Fatalf("post-recovery invariant sweep found %d violation(s)", m2.WAL.RecoveryStanding)
	}
	if got, want := p2.graphHash(t), fmt.Sprintf("%016x", hashes[rec]); got != want {
		t.Fatalf("recovered topology is not the committed prefix: hash %s at %d record(s), want %s\noutput:\n%s",
			got, rec, want, p2.output())
	}
	if !strings.Contains(p2.output(), "recovered "+dataDir) {
		t.Fatalf("restart did not report recovery; output:\n%s", p2.output())
	}

	// The recovered server keeps accepting writes, still in lockstep.
	next := muts[rec : rec+1]
	p2.mutate(t, next)
	p2.quiesce(t)
	if got, want := p2.graphHash(t), fmt.Sprintf("%016x", hashes[rec+1]); got != want {
		t.Fatalf("post-recovery mutation: hash %s, want %s", got, want)
	}

	// ---- Third life: clean restart must be a no-op recovery. ----
	if err := p2.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	_, _ = p2.cmd.Process.Wait()
	p3 := startServe(t, bin, dataDir)
	p3.waitReady(t)
	m3 := p3.metrics(t)
	if m3.WAL == nil || m3.WAL.Records < rec {
		t.Fatalf("third life lost records: %+v, had %d", m3.WAL, rec)
	}
	if got, want := p3.graphHash(t), fmt.Sprintf("%016x", hashes[m3.WAL.Records]); got != want {
		t.Fatalf("third-life topology hash %s at %d record(s), want %s", got, m3.WAL.Records, want)
	}
}

// TestServeLoadSaveRoundTrip covers the -load/-save satellites in-process:
// save a topology through the snapshot codec, boot from it, and confirm the
// served graph is identical.
func TestServeLoadSaveRoundTrip(t *testing.T) {
	tmp := t.TempDir()
	file := filepath.Join(tmp, "boot.snap")
	g := gen.SparseErdosRenyi(stats.NewRand(5), 30, 0.2)
	if err := wal.SaveGraph(file, g); err != nil {
		t.Fatalf("save: %v", err)
	}
	loaded, err := wal.LoadGraph(file)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if wal.GraphHash(loaded) != wal.GraphHash(g) {
		t.Fatal("snapshot-codec round trip changed the topology")
	}

	var out bytes.Buffer
	err = runServe([]string{
		"-load", file, "-save", filepath.Join(tmp, "final.snap"),
		"-loadgen", "50", "-loadgen-seed", "1",
	}, &out)
	if err != nil {
		t.Fatalf("serve -load -loadgen: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), fmt.Sprintf("loaded %d node(s)", g.N())) {
		t.Fatalf("serve did not report loading the boot file:\n%s", out.String())
	}
	final, err := wal.LoadGraph(filepath.Join(tmp, "final.snap"))
	if err != nil {
		t.Fatalf("load final: %v", err)
	}
	if wal.GraphHash(final) != wal.GraphHash(g) {
		t.Fatal("-save after a query-only run changed the topology")
	}
}
