package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
)

// profileConfig holds the global -cpuprofile/-memprofile settings, usable
// with every subcommand: `structura -cpuprofile cpu.out partition -nodes 1e6`.
type profileConfig struct {
	cpu string
	mem string

	cpuFile *os.File
}

// extractProfileFlags peels the global profiling flags off the front of the
// argument list, before subcommand dispatch. Only leading flags are
// considered — flags after the subcommand name belong to the subcommand.
// Both "-flag value" and "-flag=value" spellings are accepted.
func extractProfileFlags(args []string) ([]string, *profileConfig, error) {
	pc := &profileConfig{}
	for len(args) > 0 {
		arg := args[0]
		name := strings.TrimLeft(arg, "-")
		if len(name) == len(arg) { // not a flag: subcommand or experiment ID
			break
		}
		var dst *string
		switch {
		case name == "cpuprofile" || strings.HasPrefix(name, "cpuprofile="):
			dst = &pc.cpu
		case name == "memprofile" || strings.HasPrefix(name, "memprofile="):
			dst = &pc.mem
		default:
			break
		}
		if dst == nil {
			break
		}
		if eq := strings.IndexByte(name, '='); eq >= 0 {
			*dst = name[eq+1:]
			args = args[1:]
		} else {
			if len(args) < 2 {
				return nil, nil, fmt.Errorf("flag -%s needs a file argument", name)
			}
			*dst = args[1]
			args = args[2:]
		}
		if *dst == "" {
			return nil, nil, fmt.Errorf("flag -%s needs a non-empty file argument", name)
		}
	}
	return args, pc, nil
}

// start begins CPU profiling if requested.
func (pc *profileConfig) start() error {
	if pc.cpu == "" {
		return nil
	}
	f, err := os.Create(pc.cpu)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	pc.cpuFile = f
	return nil
}

// stop finishes the CPU profile and writes the heap profile, if requested.
// Called after the subcommand returns, whatever its outcome.
func (pc *profileConfig) stop() error {
	var first error
	if pc.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := pc.cpuFile.Close(); err != nil {
			first = err
		}
		pc.cpuFile = nil
	}
	if pc.mem != "" {
		f, err := os.Create(pc.mem)
		if err != nil {
			if first == nil {
				first = err
			}
		} else {
			runtime.GC() // materialize final live-heap numbers
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = err
			}
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
