package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"structura/internal/gen"
	"structura/internal/graph"
	"structura/internal/stats"
)

// startServeArgs launches `structura serve` with explicit extra flags on the
// shared smoke topology and captures its address.
func startServeArgs(t *testing.T, bin string, extra ...string) *smokeProc {
	t.Helper()
	args := append([]string{"serve",
		"-nodes", fmt.Sprint(smokeNodes),
		"-avg-degree", fmt.Sprint(smokeAvgDeg),
		"-seed", fmt.Sprint(smokeSeed),
		"-addr", "127.0.0.1:0",
	}, extra...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start serve: %v", err)
	}
	p := &smokeProc{cmd: cmd, out: &bytes.Buffer{}}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		re := regexp.MustCompile(`^listening on (\S+)$`)
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			p.out.WriteString(line + "\n")
			p.mu.Unlock()
			if m := re.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case p.addr = <-addrCh:
	case <-time.After(20 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatalf("serve never printed its address; output:\n%s", p.output())
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	return p
}

// extractLine polls the process output for a regex capture group.
func (p *smokeProc) extractLine(t *testing.T, pattern string) string {
	t.Helper()
	re := regexp.MustCompile(pattern)
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if m := re.FindStringSubmatch(p.output()); m != nil {
			return m[1]
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("output never matched %q:\n%s", pattern, p.output())
	return ""
}

// prefixGraph replays the first k journaled records onto the smoke boot
// topology under the WAL acceptance rule — the parent-side twin of the
// recovered graph.
func prefixGraph(muts []smokeMut, k int) *graph.Graph {
	p := smokeAvgDeg / float64(smokeNodes-1)
	g := gen.SparseErdosRenyi(stats.NewRand(smokeSeed), smokeNodes, p)
	for _, m := range muts[:k] {
		if m.Op == "add" {
			if !g.HasEdge(m.U, m.V) {
				_ = g.AddEdge(m.U, m.V)
			}
		} else {
			g.RemoveEdge(m.U, m.V)
		}
	}
	return g
}

// bfsDist returns hop distances to dest on g (-1 when unreachable) — the
// ground truth the promoted replica's routes must reproduce.
func bfsDist(g *graph.Graph, dest int) []float64 {
	dist := make([]float64, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[dest] = 0
	queue := []int{dest}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// TestReplicaSmokeFailover is the end-to-end failover proof through the real
// binary: primary with a replication listener, replica following it over
// TCP, churn via the HTTP ingest path, SIGKILL the primary mid-batch,
// promote the replica via POST /promote, and require the promoted node to
// (a) hold exactly a committed prefix of the journaled stream, (b) answer
// every route in agreement with BFS on that graph, (c) report zero standing
// heal violations, and (d) accept writes as the new primary.
func TestReplicaSmokeFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives the real binary; skipped with -short")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "structura")
	build := exec.Command("go", "build", "-race", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build -race: %v\n%s", err, out)
	}

	const tracked, churn = 30, 150
	muts := smokeStream(smokeNodes, tracked+churn+1)
	hashes := prefixHashes(muts)

	// ---- Primary with replication listener; replica following it. ----
	prim := startServeArgs(t, bin, "-data-dir", filepath.Join(tmp, "prim"), "-batch-max", "4",
		"-repl-listen", "127.0.0.1:0")
	prim.waitReady(t)
	replAddr := prim.extractLine(t, `replication listener on (\S+)`)

	rep := startServeArgs(t, bin, "-data-dir", filepath.Join(tmp, "mir"),
		"-replicate-from", replAddr)
	rep.waitReady(t)

	// Tracked ingest, then confirm the replica converges to the same bytes.
	for i := 0; i < tracked; i++ {
		prim.mutate(t, muts[i:i+1])
	}
	prim.quiesce(t)
	wantLive := prim.graphHash(t)
	deadline := time.Now().Add(30 * time.Second)
	for rep.graphHash(t) != wantLive {
		if time.Now().After(deadline) {
			t.Fatalf("replica never caught up: primary %s, replica %s\nreplica output:\n%s",
				wantLive, rep.graphHash(t), rep.output())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Degraded reads are labeled as such.
	resp, err := http.Get(rep.url("/route?from=1"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.Contains(resp.Header.Get("Warning"), "110") {
		t.Fatalf("replica read missing stale-ok Warning header, got %q", resp.Header.Get("Warning"))
	}

	// ---- Churn burst, then SIGKILL the primary mid-batch. ----
	for i := tracked; i < tracked+churn; i += 5 {
		prim.mutate(t, muts[i:i+5])
	}
	time.Sleep(20 * time.Millisecond)
	if err := prim.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	_, _ = prim.cmd.Process.Wait()

	// ---- Promote the replica. ----
	resp, err = http.Post(rep.url("/promote"), "", nil)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	var pro struct {
		Promoted bool   `json:"promoted"`
		Seq      uint64 `json:"seq"`
		Fence    uint64 `json:"fence"`
	}
	if derr := json.NewDecoder(resp.Body).Decode(&pro); derr != nil {
		t.Fatalf("promote decode: %v", derr)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !pro.Promoted {
		t.Fatalf("promote: status %d, body %+v\nreplica output:\n%s", resp.StatusCode, pro, rep.output())
	}
	if pro.Fence < 2 {
		t.Fatalf("promotion did not bump the fencing token: fence %d", pro.Fence)
	}

	// (a) The promoted state is exactly a committed prefix of the stream.
	got := rep.graphHash(t)
	recovered := -1
	for i, h := range hashes {
		if fmt.Sprintf("%016x", h) == got {
			recovered = i
			break
		}
	}
	if recovered < tracked {
		t.Fatalf("promoted hash %s is not a committed prefix ≥ %d of the journaled stream", got, tracked)
	}

	// (b) Every route answer agrees with BFS on the recovered graph.
	g := prefixGraph(muts, recovered)
	want := bfsDist(g, 0)
	for from := 0; from < smokeNodes; from++ {
		resp, err := http.Get(rep.url(fmt.Sprintf("/route?from=%d", from)))
		if err != nil {
			t.Fatalf("route %d: %v", from, err)
		}
		var rr struct {
			Dist float64 `json:"dist"`
		}
		if derr := json.NewDecoder(resp.Body).Decode(&rr); derr != nil {
			t.Fatalf("route %d decode: %v", from, derr)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("route %d: status %d", from, resp.StatusCode)
		}
		if resp.Header.Get("Warning") != "" {
			t.Fatalf("promoted route still carries the stale Warning header")
		}
		if rr.Dist != want[from] {
			t.Fatalf("route from %d: promoted dist %v, BFS %v (recovered prefix %d)", from, rr.Dist, want[from], recovered)
		}
	}

	// (c) Zero standing heal violations after promotion.
	m := rep.metrics(t)
	if m.WAL == nil || m.WAL.RecoveryStanding != 0 {
		t.Fatalf("promotion left standing violations: %+v", m.WAL)
	}

	// (d) The promoted node is a real primary: it accepts and applies writes.
	rep.mutate(t, muts[recovered:recovered+1])
	rep.quiesce(t)
	if got, wantH := rep.graphHash(t), fmt.Sprintf("%016x", hashes[recovered+1]); got != wantH {
		t.Fatalf("post-promotion write: hash %s, want %s", got, wantH)
	}

	// The CLI's replicate subcommand can describe the old primary's store.
	var out bytes.Buffer
	if err := runReplicate([]string{"-store", filepath.Join(tmp, "prim")}, &out); err != nil {
		t.Fatalf("replicate -store: %v", err)
	}
	if !strings.Contains(out.String(), "recoverable: batch") {
		t.Fatalf("replicate output missing recovery line:\n%s", out.String())
	}
}
