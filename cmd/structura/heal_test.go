package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestHealCleanRun(t *testing.T) {
	var buf bytes.Buffer
	err := runHeal([]string{"-engine", "mis", "-seed", "1", "-rounds", "20", "-max-touched", "12"}, &buf)
	if err != nil {
		t.Fatalf("supervised mis run failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"engine mis seed 1", "churn events", "standing violations: none"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestHealSeedRange(t *testing.T) {
	var buf bytes.Buffer
	err := runHeal([]string{"-engine", "distvec", "-seeds", "1..3", "-rounds", "10"}, &buf)
	if err != nil {
		t.Fatalf("supervised distvec range failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"seed 1", "seed 2", "seed 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing report for %q:\n%s", want, out)
		}
	}
}

func TestHealCompare(t *testing.T) {
	var buf bytes.Buffer
	err := runHeal([]string{"-engine", "mis", "-seed", "3", "-rounds", "10", "-max-touched", "12", "-compare"}, &buf)
	if err != nil {
		t.Fatalf("compare run failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "repair-vs-recompute") {
		t.Errorf("compare output missing baseline line:\n%s", buf.String())
	}
}

// TestHealStandingViolations isolates grid node 0 (its only neighbors are 1
// and 8), which no CDS repair or recompute can dominate — the run must end
// with standing violations and a nonzero exit.
func TestHealStandingViolations(t *testing.T) {
	file := filepath.Join(t.TempDir(), "isolate.json")
	sch := `{"horizon": 4, "events": [
		{"round": 1, "op": "remove-edge", "u": 0, "v": 1},
		{"round": 1, "op": "remove-edge", "u": 0, "v": 8}
	]}`
	if err := os.WriteFile(file, []byte(sch), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := runHeal([]string{"-engine", "cds", "-seed", "1", "-schedule", file}, &buf)
	if err == nil {
		t.Fatalf("isolating a grid node reported success:\n%s", buf.String())
	}
	if !strings.Contains(err.Error(), "standing violations") {
		t.Errorf("error = %v, want a standing-violations failure", err)
	}
	if !strings.Contains(buf.String(), "cds-connectivity") {
		t.Errorf("report does not show the severed backbone:\n%s", buf.String())
	}
}

func TestHealBadInputs(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown engine", []string{"-engine", "nope"}, "unknown engine"},
		{"inverted seed range", []string{"-seeds", "5..2"}, "seed range"},
		{"malformed seed range", []string{"-seeds", "abc"}, "seed range"},
		{"missing schedule file", []string{"-schedule", "no-such-file.json"}, "no-such-file"},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		err := runHeal(c.args, &buf)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want %q", c.name, err, c.want)
		}
	}
	// A schedule file with a typo'd field must fail with the field named.
	file := filepath.Join(t.TempDir(), "typo.json")
	if err := os.WriteFile(file, []byte(`{"horizn": 5}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := runHeal([]string{"-schedule", file}, &buf); err == nil || !strings.Contains(err.Error(), "horizn") {
		t.Errorf("typo'd schedule field: err = %v", err)
	}
}

func TestChaosSeedRange(t *testing.T) {
	// A quiet schedule passes across the whole range.
	var buf bytes.Buffer
	err := runChaos([]string{"-scenario", "mis", "-seeds", "1..3", "-horizon", "4"}, &buf)
	if err != nil {
		t.Fatalf("quiet seed range failed: %v\n%s", err, buf.String())
	}
	for _, want := range []string{"seed 1:", "seed 2:", "seed 3:"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("output missing %q:\n%s", want, buf.String())
		}
	}
	// Unsupervised MIS under churn violates on most seeds: the range run
	// must report the tally and exit nonzero (the self-healing baseline).
	buf.Reset()
	err = runChaos([]string{"-scenario", "mis", "-seeds", "1..8", "-horizon", "10",
		"-churn-add", "1", "-churn-remove", "1"}, &buf)
	if err == nil {
		t.Fatalf("churned mis seed range reported success:\n%s", buf.String())
	}
	if !strings.Contains(err.Error(), "of 8 seed(s) violated") {
		t.Errorf("error = %v, want a violation tally", err)
	}
}
