package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"structura/internal/gen"
	"structura/internal/heal"
	"structura/internal/server"
	"structura/internal/stats"
)

// runServe is the `structura serve` subcommand: stand up the resident
// structure server over a generated topology and either listen on -addr or,
// with -loadgen N, drive N in-process queries through the full serving stack
// and report throughput — the self-contained smoke mode the Makefile gates
// on.
func runServe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("structura serve", flag.ContinueOnError)
	var (
		nodes      = fs.Int("nodes", 10000, "nodes in the generated ER topology")
		avgDeg     = fs.Float64("avg-degree", 8, "average degree of the topology")
		seed       = fs.Int64("seed", 1, "deterministic topology seed")
		dest       = fs.Int("dest", 0, "destination node the route labels point toward")
		addr       = fs.String("addr", ":8372", "listen address (ignored with -loadgen)")
		cds        = fs.Bool("cds", false, "maintain the CDS backbone (needs a connected graph; slow to build on large ones)")
		inflight   = fs.Int("max-inflight", 0, "concurrent query cap before 429 shed (0 = default)")
		queue      = fs.Int("queue", 0, "mutation queue depth (0 = default)")
		batchMax   = fs.Int("batch-max", 0, "max mutations folded into one epoch (0 = default)")
		maxK       = fs.Int("max-k", 0, "largest k accepted by /khop (0 = default)")
		maxRounds  = fs.Int("max-rounds", 0, "repair budget: max localized repair sweeps (0 = unbounded)")
		maxTouched = fs.Int("max-touched", 0, "repair budget: max nodes one repair may touch (0 = unbounded)")
		load       = fs.Int("loadgen", 0, "run N in-process queries instead of listening, then exit")
		loadSeed   = fs.Uint64("loadgen-seed", 42, "deterministic loadgen query-stream seed")
		workers    = fs.Int("loadgen-workers", 0, "loadgen worker goroutines (0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *nodes < 2 {
		return fmt.Errorf("need at least 2 nodes, got %d", *nodes)
	}
	g := gen.SparseErdosRenyi(stats.NewRand(*seed), *nodes, *avgDeg/float64(*nodes-1))
	srv, err := server.New(g, server.Config{
		Dest: *dest, SkipCDS: !*cds,
		MaxInFlight: *inflight, QueueDepth: *queue, BatchMax: *batchMax, MaxK: *maxK,
		RepairBudget: heal.Budget{MaxRounds: *maxRounds, MaxTouched: *maxTouched},
	})
	if err != nil {
		return err
	}
	ep := srv.Epoch()
	fmt.Fprintf(out, "serving %d node(s), %d edge(s), dest %d, epoch %d\n",
		ep.CSR.N(), ep.CSR.M(), ep.Dest, ep.Seq)

	if *load > 0 {
		lg := &server.LoadGen{
			Handler: srv.Handler(), N: *nodes, Seed: *loadSeed,
			Workers: *workers, CDS: *cds,
		}
		st, err := lg.Run(*load)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "loadgen: %d queries in %v: %.0f queries/sec, p50 %v, p99 %v, max %v, shed %d\n",
			st.Queries, st.Elapsed.Round(time.Millisecond), st.QPS, st.P50, st.P99, st.Max, st.Shed)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if st.Errors > 0 {
			return fmt.Errorf("loadgen saw %d error response(s)", st.Errors)
		}
		return nil
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(out, "listening on %s\n", *addr)
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "shutting down")
	sdCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(sdCtx); err != nil {
		return fmt.Errorf("server shutdown: %w", err)
	}
	if err := httpSrv.Shutdown(sdCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("http shutdown: %w", err)
	}
	return nil
}
