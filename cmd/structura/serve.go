package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"structura/internal/gen"
	"structura/internal/graph"
	"structura/internal/heal"
	"structura/internal/replica"
	"structura/internal/server"
	"structura/internal/stats"
	"structura/internal/wal"
)

// runServe is the `structura serve` subcommand: stand up the resident
// structure server over a generated or loaded topology and either listen on
// -addr or, with -loadgen N, drive N in-process queries through the full
// serving stack and report throughput — the self-contained smoke mode the
// Makefile gates on. With -data-dir every mutation batch is journaled to a
// write-ahead log before it is applied, and a restart recovers the last
// committed state; the listener binds before recovery starts, answering 503
// on every path until replay completes.
func runServe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("structura serve", flag.ContinueOnError)
	var (
		nodes      = fs.Int("nodes", 10000, "nodes in the generated ER topology")
		avgDeg     = fs.Float64("avg-degree", 8, "average degree of the topology")
		seed       = fs.Int64("seed", 1, "deterministic topology seed")
		dest       = fs.Int("dest", 0, "destination node the route labels point toward")
		addr       = fs.String("addr", ":8372", "listen address (ignored with -loadgen)")
		cds        = fs.Bool("cds", false, "maintain the CDS backbone (needs a connected graph; slow to build on large ones)")
		inflight   = fs.Int("max-inflight", 0, "concurrent query cap before 429 shed (0 = default)")
		queue      = fs.Int("queue", 0, "mutation queue depth (0 = default)")
		batchMax   = fs.Int("batch-max", 0, "max mutations folded into one epoch (0 = default)")
		maxK       = fs.Int("max-k", 0, "largest k accepted by /khop (0 = default)")
		maxRounds  = fs.Int("max-rounds", 0, "repair budget: max localized repair sweeps (0 = unbounded)")
		maxTouched = fs.Int("max-touched", 0, "repair budget: max nodes one repair may touch (0 = unbounded)")
		loadN      = fs.Int("loadgen", 0, "run N in-process queries instead of listening, then exit")
		loadSeed   = fs.Uint64("loadgen-seed", 42, "deterministic loadgen query-stream seed")
		workers    = fs.Int("loadgen-workers", 0, "loadgen worker goroutines (0 = GOMAXPROCS)")

		dataDir  = fs.String("data-dir", "", "WAL store directory: journal mutations and recover on restart")
		fsyncPol = fs.String("fsync", "batch", "WAL fsync policy: batch | interval | none")
		syncEvr  = fs.Int("sync-every", 0, "batches per fsync with -fsync=interval (0 = default)")
		compact  = fs.Int("compact-every", 0, "batches between snapshot compactions (0 = default, <0 disables)")
		loadFile = fs.String("load", "", "boot topology from a snapshot-codec graph file instead of generating")
		saveFile = fs.String("save", "", "write the final topology to a snapshot-codec graph file on shutdown")

		replListen = fs.String("repl-listen", "", "serve the replication stream to replicas on this address (requires -data-dir)")
		replFrom   = fs.String("replicate-from", "", "follow the primary at this address as a replica: mirror into -data-dir, serve stale-ok reads on -addr")
		promote    = fs.Bool("promote", false, "recover -data-dir under a bumped fencing token and serve as the new primary (failover takeover)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*replFrom != "" || *replListen != "" || *promote) && *dataDir == "" {
		return fmt.Errorf("-replicate-from, -repl-listen, and -promote all require -data-dir")
	}
	if *replFrom != "" && (*promote || *replListen != "") {
		return fmt.Errorf("-replicate-from runs a follower; it cannot combine with -promote or -repl-listen (promote a running replica via POST /promote)")
	}

	var syncPolicy wal.SyncPolicy
	switch *fsyncPol {
	case "batch":
		syncPolicy = wal.SyncEachBatch
	case "interval":
		syncPolicy = wal.SyncInterval
	case "none":
		syncPolicy = wal.SyncNone
	default:
		return fmt.Errorf("-fsync must be batch, interval, or none, got %q", *fsyncPol)
	}
	walOpts := wal.Options{Sync: syncPolicy, SyncEvery: *syncEvr, CompactEvery: *compact}

	if *replFrom != "" {
		return runReplicaServe(*addr, *dataDir, *replFrom, replica.Options{
			WAL: walOpts, Dest: *dest, SkipCDS: !*cds,
		}, out)
	}

	// In listen mode, bind before the (possibly slow) recovery so the port
	// is reachable immediately; the gate answers 503 until the server is up.
	gate := server.NewGate()
	var httpSrv *http.Server
	errCh := make(chan error, 1)
	if *loadN == 0 {
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "listening on %s\n", ln.Addr())
		httpSrv = &http.Server{Handler: gate}
		go func() { errCh <- httpSrv.Serve(ln) }()
	}

	// Boot topology: snapshot file, else generated ER.
	var g *graph.Graph
	if *loadFile != "" {
		var err error
		if g, err = wal.LoadGraph(*loadFile); err != nil {
			return fmt.Errorf("-load %s: %w", *loadFile, err)
		}
		fmt.Fprintf(out, "loaded %d node(s), %d edge(s) from %s\n", g.N(), g.M(), *loadFile)
	} else {
		if *nodes < 2 {
			return fmt.Errorf("need at least 2 nodes, got %d", *nodes)
		}
		g = gen.SparseErdosRenyi(stats.NewRand(*seed), *nodes, *avgDeg/float64(*nodes-1))
	}

	// Durability: open (recover) or create the WAL store. An existing store
	// wins over both -load and the generated topology — the journal is the
	// truth about what this service has acknowledged.
	cfg := server.Config{
		Dest: *dest, SkipCDS: !*cds,
		MaxInFlight: *inflight, QueueDepth: *queue, BatchMax: *batchMax, MaxK: *maxK,
		RepairBudget: heal.Budget{MaxRounds: *maxRounds, MaxTouched: *maxTouched},
	}
	var wlog *wal.Log
	if *dataDir != "" && *promote {
		l, rec, err := wal.Promote(*dataDir, walOpts)
		if err != nil {
			return fmt.Errorf("-promote %s: %w", *dataDir, err)
		}
		wlog = l
		g = l.Graph()
		cfg.WAL = l
		cfg.Recovered = &rec
		fmt.Fprintf(out, "promoted %s: batch %d, fence %d — a deposed primary's stream is now rejected\n",
			*dataDir, rec.Seq, l.Metrics().Fence)
	} else if *dataDir != "" {
		l, rec, created, err := wal.OpenOrCreate(*dataDir, g, walOpts)
		if err != nil {
			return fmt.Errorf("-data-dir %s: %w", *dataDir, err)
		}
		wlog = l
		cfg.WAL = l
		if created {
			fmt.Fprintf(out, "created store in %s at batch 0\n", *dataDir)
		} else {
			g = l.Graph()
			cfg.Recovered = &rec
			fmt.Fprintf(out, "recovered %s: batch %d (%d batch(es), %d record(s) replayed from the log)\n",
				*dataDir, rec.Seq, rec.Batches, rec.Replayed)
			if rec.Truncated() {
				fmt.Fprintf(out, "recovery truncated the log at offset %d: %s\n", rec.TruncatedAt, rec.Reason)
			}
		}
	}

	srv, err := server.New(g, cfg)
	if err != nil {
		return err
	}
	if cfg.Recovered != nil {
		// One-line recovery summary: how the process got back to ready.
		readyNs, labelNs, warm, healed := srv.ReadySummary()
		rec := cfg.Recovered
		labelSeq := uint64(0)
		if rec.Labels != nil {
			labelSeq = rec.Labels.Seq
		}
		fmt.Fprintf(out, "recovery summary: gen %d, %d record(s) replayed, label epoch %d, warm-start=%v (%d dirty healed), recovery %s, labels %s, ready %s\n",
			rec.Gen, rec.Replayed, labelSeq, warm, healed,
			time.Duration(rec.RecoveryNs).Round(time.Microsecond),
			time.Duration(labelNs).Round(time.Microsecond),
			time.Duration(readyNs).Round(time.Microsecond))
	}

	var repl *replica.Primary
	if *replListen != "" {
		repl, err = replica.NewPrimary(wlog, *replListen, replica.PrimaryOptions{})
		if err != nil {
			return fmt.Errorf("-repl-listen %s: %w", *replListen, err)
		}
		fmt.Fprintf(out, "replication listener on %s\n", repl.Addr())
	}
	ep := srv.Epoch()
	fmt.Fprintf(out, "serving %d node(s), %d edge(s), dest %d, epoch %d\n",
		ep.CSR.N(), ep.CSR.M(), ep.Dest, ep.Seq)

	shutdown := func() error {
		if repl != nil {
			repl.Close()
		}
		sdCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(sdCtx); err != nil {
			return fmt.Errorf("server shutdown: %w", err)
		}
		if wlog != nil {
			if err := wlog.Close(); err != nil {
				return fmt.Errorf("wal close: %w", err)
			}
		}
		if *saveFile != "" {
			final := csrToGraph(srv.Epoch().CSR)
			if err := wal.SaveGraph(*saveFile, final); err != nil {
				return fmt.Errorf("-save %s: %w", *saveFile, err)
			}
			fmt.Fprintf(out, "saved %d node(s), %d edge(s) to %s\n", final.N(), final.M(), *saveFile)
		}
		return nil
	}

	if *loadN > 0 {
		lg := &server.LoadGen{
			Handler: srv.Handler(), N: g.N(), Seed: *loadSeed,
			Workers: *workers, CDS: *cds,
		}
		st, err := lg.Run(*loadN)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "loadgen: %d queries in %v: %.0f queries/sec, p50 %v, p99 %v, max %v, shed %d\n",
			st.Queries, st.Elapsed.Round(time.Millisecond), st.QPS, st.P50, st.P99, st.Max, st.Shed)
		if err := shutdown(); err != nil {
			return err
		}
		if st.Errors > 0 {
			return fmt.Errorf("loadgen saw %d error response(s)", st.Errors)
		}
		return nil
	}

	gate.SetReady(srv.Handler())
	fmt.Fprintln(out, "ready")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "shutting down")
	if err := shutdown(); err != nil {
		return err
	}
	sdCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(sdCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("http shutdown: %w", err)
	}
	return nil
}

// csrToGraph materializes a mutable graph from a frozen epoch snapshot —
// what -save persists when the process exits.
func csrToGraph(c *graph.CSR) *graph.Graph {
	n := c.N()
	var g *graph.Graph
	if c.Directed() {
		g = graph.NewDirected(n)
	} else {
		g = graph.New(n)
	}
	for u := 0; u < n; u++ {
		ws := c.NeighborWeights(u)
		for i, v := range c.Neighbors(u) {
			if c.Directed() || u < int(v) {
				_ = g.AddWeightedEdge(u, int(v), ws[i])
			}
		}
	}
	return g
}
