package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: structura/internal/runtime/bench
BenchmarkKernelER100k/workers=1-8         	       3	  44715339 ns/op	 1606528 B/op	       9 allocs/op
BenchmarkKernelER100k/workers=8-8         	       3	  45098107 ns/op	 1612345 B/op	     114 allocs/op
BenchmarkFreezeER100k-8                   	      10	   2500000 ns/op
PASS
ok  	structura/internal/runtime/bench	2.5s
`

func TestParse(t *testing.T) {
	got, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	r, ok := got["BenchmarkKernelER100k/workers=1"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: keys %v", got)
	}
	if r.NsPerOp != 44715339 || r.BytesPerOp != 1606528 || r.AllocsPerOp != 9 {
		t.Fatalf("wrong measurements: %+v", r)
	}
	// -benchmem columns are optional.
	if f := got["BenchmarkFreezeER100k"]; f.NsPerOp != 2500000 || f.BytesPerOp != 0 || f.AllocsPerOp != 0 {
		t.Fatalf("wrong freeze measurements: %+v", f)
	}
}

func TestParseRejectsNothing(t *testing.T) {
	got, err := parse(strings.NewReader("no benchmarks here\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("parsed %d benchmarks from noise", len(got))
	}
}

func TestEncodeStable(t *testing.T) {
	res := map[string]Result{
		"B/workers=2": {NsPerOp: 2},
		"A/workers=1": {NsPerOp: 1},
	}
	var sb1, sb2 strings.Builder
	if err := encode(&sb1, res); err != nil {
		t.Fatal(err)
	}
	if err := encode(&sb2, res); err != nil {
		t.Fatal(err)
	}
	if sb1.String() != sb2.String() {
		t.Fatal("encoding not deterministic")
	}
	if !strings.Contains(sb1.String(), "ns_per_op") {
		t.Fatalf("unexpected JSON: %s", sb1.String())
	}
}
