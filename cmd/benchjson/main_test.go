package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const sample = `goos: linux
goarch: amd64
pkg: structura/internal/runtime/bench
BenchmarkKernelER100k/workers=1-8         	       3	  44715339 ns/op	 1606528 B/op	       9 allocs/op
BenchmarkKernelER100k/workers=8-8         	       3	  45098107 ns/op	 1612345 B/op	     114 allocs/op
BenchmarkFreezeER100k-8                   	      10	   2500000 ns/op
PASS
ok  	structura/internal/runtime/bench	2.5s
`

func TestParse(t *testing.T) {
	got, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	r, ok := got["BenchmarkKernelER100k/workers=1"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: keys %v", got)
	}
	if r.NsPerOp != 44715339 || r.BytesPerOp != 1606528 || r.AllocsPerOp != 9 {
		t.Fatalf("wrong measurements: %+v", r)
	}
	// -benchmem columns are optional.
	if f := got["BenchmarkFreezeER100k"]; f.NsPerOp != 2500000 || f.BytesPerOp != 0 || f.AllocsPerOp != 0 {
		t.Fatalf("wrong freeze measurements: %+v", f)
	}
}

func TestParseCustomMetrics(t *testing.T) {
	// The testing package prints ReportMetric units BETWEEN ns/op and the
	// -benchmem columns; B/op must survive the interleaving.
	line := "BenchmarkAsyncER100k-8  1  2500000000 ns/op  123456 quiesce-vticks  0.021 retry-frac  52428800 B/op  42 allocs/op\n"
	got, err := parse(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	r, ok := got["BenchmarkAsyncER100k"]
	if !ok {
		t.Fatalf("benchmark not parsed: %v", got)
	}
	if r.NsPerOp != 2500000000 || r.BytesPerOp != 52428800 || r.AllocsPerOp != 42 {
		t.Fatalf("standard columns wrong: %+v", r)
	}
	if r.Extra["retry-frac"] != 0.021 || r.Extra["quiesce-vticks"] != 123456 {
		t.Fatalf("custom metrics wrong: %+v", r.Extra)
	}
}

func TestParseRejectsNothing(t *testing.T) {
	got, err := parse(strings.NewReader("no benchmarks here\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("parsed %d benchmarks from noise", len(got))
	}
}

func TestEncodeStable(t *testing.T) {
	history := []Entry{{Label: "x", Results: map[string]Result{
		"B/workers=2": {NsPerOp: 2},
		"A/workers=1": {NsPerOp: 1},
	}}}
	var sb1, sb2 strings.Builder
	if err := encode(&sb1, history); err != nil {
		t.Fatal(err)
	}
	if err := encode(&sb2, history); err != nil {
		t.Fatal(err)
	}
	if sb1.String() != sb2.String() {
		t.Fatal("encoding not deterministic")
	}
	if !strings.Contains(sb1.String(), "ns_per_op") {
		t.Fatalf("unexpected JSON: %s", sb1.String())
	}
}

// fixedNow pins the entry timestamp so history files compare exactly.
func fixedNow() time.Time { return time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC) }

func TestRunAppendsHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	for i := 0; i < 3; i++ {
		if err := run(strings.NewReader(sample), path, "", fixedNow); err != nil {
			t.Fatal(err)
		}
	}
	history := loadHistory(path)
	if len(history) != 3 {
		t.Fatalf("history has %d entries after 3 runs, want 3", len(history))
	}
	for i, e := range history {
		if len(e.Results) != 3 {
			t.Fatalf("entry %d has %d results, want 3", i, len(e.Results))
		}
		if r := e.Results["BenchmarkKernelER100k/workers=1"]; r.NsPerOp != 44715339 {
			t.Fatalf("entry %d lost measurements: %+v", i, r)
		}
		if e.Time == "" {
			t.Fatalf("entry %d missing timestamp", i)
		}
	}
}

func TestRunMigratesLegacySnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	legacy := `{"BenchmarkOld/workers=1": {"ns_per_op": 7, "bytes_per_op": 8, "allocs_per_op": 9}}`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(strings.NewReader(sample), path, "new-run", fixedNow); err != nil {
		t.Fatal(err)
	}
	history := loadHistory(path)
	if len(history) != 2 {
		t.Fatalf("history has %d entries, want 2 (legacy + new)", len(history))
	}
	if history[0].Label != "legacy-snapshot" {
		t.Fatalf("first entry label %q, want legacy-snapshot", history[0].Label)
	}
	if r := history[0].Results["BenchmarkOld/workers=1"]; r.NsPerOp != 7 || r.AllocsPerOp != 9 {
		t.Fatalf("legacy measurements lost: %+v", r)
	}
	if history[1].Label != "new-run" || len(history[1].Results) != 3 {
		t.Fatalf("new entry malformed: %+v", history[1])
	}
	// Regression: the migrated legacy entry must not stay timeless — the
	// written document carries a uniform schema, with the legacy entry
	// backfilled strictly before the new run's timestamp.
	if history[0].Time == "" {
		t.Fatal("legacy entry written without a backfilled timestamp (mixed-schema history)")
	}
	lt, err := time.Parse(time.RFC3339, history[0].Time)
	if err != nil {
		t.Fatalf("backfilled timestamp unparseable: %v", err)
	}
	if !lt.Before(fixedNow()) {
		t.Fatalf("backfilled time %v not before the real run time %v", lt, fixedNow())
	}
}

func TestNormalizeBackfillsTimeless(t *testing.T) {
	now := fixedNow()
	history := []Entry{
		{Label: "zeta"}, // timeless, label-sorted after "alpha"
		{Label: "run-1", Time: "2026-01-01T00:00:00Z"}, // earliest real timestamp
		{Label: "alpha"}, // timeless
		{Label: "run-2", Time: "2026-01-02T00:00:00Z"},
	}
	got := normalize(history, now)
	wantOrder := []string{"alpha", "zeta", "run-1", "run-2"}
	for i, label := range wantOrder {
		if got[i].Label != label {
			t.Fatalf("entry %d label %q, want %q (order %v)", i, got[i].Label, label, got)
		}
	}
	prev := time.Time{}
	for i, e := range got {
		if e.Time == "" {
			t.Fatalf("entry %d (%s) still timeless after normalize", i, e.Label)
		}
		ts, err := time.Parse(time.RFC3339, e.Time)
		if err != nil {
			t.Fatalf("entry %d time unparseable: %v", i, err)
		}
		if ts.Before(prev) {
			t.Fatalf("timestamps not non-decreasing at entry %d: %v < %v", i, ts, prev)
		}
		prev = ts
	}
	// Backfilled entries land strictly before the earliest real run.
	anchor, _ := time.Parse(time.RFC3339, "2026-01-01T00:00:00Z")
	for _, e := range got[:2] {
		ts, _ := time.Parse(time.RFC3339, e.Time)
		if !ts.Before(anchor) {
			t.Fatalf("backfilled %s at %v, want before %v", e.Label, ts, anchor)
		}
	}
}

func TestNormalizeAllTimelessUsesNow(t *testing.T) {
	got := normalize([]Entry{{Label: "b"}, {Label: "a"}}, fixedNow())
	if got[0].Label != "a" || got[1].Label != "b" {
		t.Fatalf("timeless entries not label-ordered: %v", got)
	}
	for _, e := range got {
		ts, err := time.Parse(time.RFC3339, e.Time)
		if err != nil {
			t.Fatalf("time unparseable: %v", err)
		}
		if !ts.Before(fixedNow()) {
			t.Fatalf("backfill %v not before now", ts)
		}
	}
}

func TestNormalizeTimestampedUntouched(t *testing.T) {
	in := []Entry{
		{Label: "b", Time: "2026-01-02T00:00:00Z"},
		{Label: "a", Time: "2026-01-01T00:00:00Z"},
	}
	got := normalize(in, fixedNow())
	// Already-uniform history passes through unreordered and unmodified.
	if got[0].Label != "b" || got[1].Label != "a" ||
		got[0].Time != "2026-01-02T00:00:00Z" || got[1].Time != "2026-01-01T00:00:00Z" {
		t.Fatalf("fully-timestamped history was modified: %v", got)
	}
}

func TestLoadHistoryMissingOrEmpty(t *testing.T) {
	if h := loadHistory(filepath.Join(t.TempDir(), "nope.json")); h != nil {
		t.Fatalf("missing file produced history %v", h)
	}
	path := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if h := loadHistory(path); h != nil {
		t.Fatalf("empty file produced history %v", h)
	}
}
