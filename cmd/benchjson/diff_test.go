package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeHistory(t *testing.T, entries []Entry) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.json")
	raw, err := json.Marshal(entries)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffLatestVsPrevious(t *testing.T) {
	path := writeHistory(t, []Entry{
		{Label: "before", Results: map[string]Result{
			"BenchmarkA": {NsPerOp: 1000, BytesPerOp: 256, AllocsPerOp: 4,
				Extra: map[string]float64{"steady-ns/round": 50}},
			"BenchmarkGone": {NsPerOp: 7},
		}},
		{Label: "after", Results: map[string]Result{
			"BenchmarkA": {NsPerOp: 800, BytesPerOp: 256, AllocsPerOp: 6,
				Extra: map[string]float64{"steady-ns/round": 40, "bytes/round": 9}},
			"BenchmarkNew": {NsPerOp: 5},
		}},
	})
	var out bytes.Buffer
	if err := diff(&out, path); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"before -> after",
		"BenchmarkA:",
		"ns/op",
		"1000 -> 800",
		"(-20.0%)",
		"allocs/op",
		"4 -> 6",
		"(+50.0%)",
		"steady-ns/round 50 -> 40",
		"bytes/round",
		"BenchmarkNew: new",
		"BenchmarkGone: removed",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("diff output missing %q:\n%s", want, got)
		}
	}
	// Unchanged dimensions carry no percentage-change suffix surprises:
	// B/op stayed at 256 and must render without a delta of +0.0% being
	// misattributed elsewhere. Just pin the rendered line.
	if !strings.Contains(got, "256 -> 256") {
		t.Errorf("unchanged B/op line missing:\n%s", got)
	}
}

func TestDiffErrors(t *testing.T) {
	var out bytes.Buffer
	if err := diff(&out, ""); err == nil {
		t.Error("diff without -o must fail")
	}
	one := writeHistory(t, []Entry{{Label: "only", Results: map[string]Result{
		"BenchmarkA": {NsPerOp: 1},
	}}})
	if err := diff(&out, one); err == nil {
		t.Error("diff with a single entry must fail")
	}
	if err := diff(&out, filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("diff with a missing file must fail")
	}
}

// TestDiffAfterRun: the end-to-end loop — two appends, then a diff — works
// on a file produced by run itself.
func TestDiffAfterRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	sampleA := "BenchmarkX 3 100 ns/op 64 B/op 2 allocs/op\n"
	sampleB := "BenchmarkX 3 90 ns/op 64 B/op 2 allocs/op\n"
	if err := run(strings.NewReader(sampleA), path, "a", fixedNow); err != nil {
		t.Fatal(err)
	}
	if err := run(strings.NewReader(sampleB), path, "b", fixedNow); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := diff(&out, path); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "100 -> 90") || !strings.Contains(out.String(), "-10.0%") {
		t.Errorf("diff after run wrong:\n%s", out.String())
	}
}

// TestDiffServeQPSLeg: the serving-throughput leg flows through the same
// pipeline — its ReportMetric extras (queries/sec, p99-ns, epochs) must
// survive the append and render in the diff alongside the standard
// dimensions.
func TestDiffServeQPSLeg(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	sampleA := "BenchmarkServeQPS 	       1	2800439797 ns/op	        17.00 epochs	     16384 p99-ns	     89272 queries/sec	  123456 B/op	    2345 allocs/op\n"
	sampleB := "BenchmarkServeQPS 	       1	 982020070 ns/op	         5.000 epochs	      8192 p99-ns	    254578 queries/sec	  120000 B/op	    2300 allocs/op\n"
	if err := run(strings.NewReader(sampleA), path, "a", fixedNow); err != nil {
		t.Fatal(err)
	}
	if err := run(strings.NewReader(sampleB), path, "b", fixedNow); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var entries []Entry
	if err := json.Unmarshal(raw, &entries); err != nil {
		t.Fatal(err)
	}
	last := entries[len(entries)-1].Results["BenchmarkServeQPS"]
	if got := last.Extra["queries/sec"]; got != 254578 {
		t.Fatalf("queries/sec = %v, want 254578", got)
	}
	if got := last.Extra["p99-ns"]; got != 8192 {
		t.Fatalf("p99-ns = %v, want 8192", got)
	}
	var out bytes.Buffer
	if err := diff(&out, path); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"BenchmarkServeQPS:",
		"queries/sec", "89272 -> 254578", "(+185.2%)",
		"p99-ns", "16384 -> 8192", "(-50.0%)",
		"epochs", "17 -> 5",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("diff output missing %q:\n%s", want, got)
		}
	}
}
