// Command benchjson converts `go test -bench -benchmem` output into a
// committed benchmark trajectory: a JSON array of runs, each mapping
// benchmark name to ns/op, B/op and allocs/op. Repeated invocations APPEND
// to the output file, so the committed document records how the numbers
// moved across changes instead of only the latest snapshot:
//
//	go test -bench . -benchmem -benchtime 3x ./internal/runtime/bench | benchjson -o BENCH_kernel.json
//
// A legacy output file holding a single plain name->result object (the
// pre-history format) is migrated in place as the trajectory's first entry.
// With no -o the run is written to stdout as a one-entry history.
// Non-benchmark lines are ignored, so the full `go test` output can be
// piped in unfiltered.
//
// -diff reads an existing trajectory instead of stdin and prints the
// latest-vs-previous deltas per benchmark (ns/op, B/op, allocs/op, and every
// custom metric), flagging benchmarks that appeared or disappeared:
//
//	benchjson -diff -o BENCH_kernel.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark's measurements. Extra holds custom
// b.ReportMetric units (e.g. the async executor's retry-frac) keyed by
// unit name.
type Result struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Entry is one recorded benchmark run in the history array.
type Entry struct {
	Label   string            `json:"label,omitempty"`
	Time    string            `json:"time,omitempty"` // RFC 3339, UTC
	Results map[string]Result `json:"results"`
}

// benchLine matches the name/iteration prefix of a benchmark result, e.g.
//
//	BenchmarkKernelER100k/workers=1-8  3  44715339 ns/op  1606528 B/op  9 allocs/op
//
// The measurement tail is parsed as (value, unit) pairs so custom
// b.ReportMetric units — which the testing package prints BETWEEN ns/op
// and the -benchmem columns — are captured instead of breaking the parse.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(\S.*)$`)

// gomaxprocsSuffix is the trailing -N the testing package appends to the
// benchmark name; stripping it keeps keys stable across machines.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parse reads benchmark lines from r and returns name -> Result, with the
// GOMAXPROCS suffix stripped from names. Lines without an ns/op pair are
// ignored (headers, PASS, package summaries).
func parse(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		fields := strings.Fields(m[2])
		var res Result
		sawNs := false
		for i := 0; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in %q: %w", fields[i], sc.Text(), err)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp, sawNs = val, true
			case "B/op":
				res.BytesPerOp = val
			case "allocs/op":
				res.AllocsPerOp = val
			default:
				if res.Extra == nil {
					res.Extra = map[string]float64{}
				}
				res.Extra[unit] = val
			}
		}
		if !sawNs {
			continue
		}
		out[gomaxprocsSuffix.ReplaceAllString(m[1], "")] = res
	}
	return out, sc.Err()
}

// encode writes the history as indented JSON; within each entry the result
// keys are emitted sorted (json.Marshal sorts map keys), so the document is
// diff-stable.
func encode(w io.Writer, history []Entry) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(history)
}

// normalize repairs mixed-schema history in place: entries that carry no
// timestamp (the legacy-snapshot migration, or files hand-edited before the
// history format) are moved to the front — they predate every timestamped
// run — ordered stably among themselves by label, and backfilled with
// synthetic RFC 3339 times strictly before the earliest real timestamp
// (one second apart, preserving their relative order). When no entry has a
// real timestamp, the backfill counts back from now. The result is a
// uniform-schema document: every entry timestamped, timestamps
// non-decreasing.
func normalize(history []Entry, now time.Time) []Entry {
	timeless := make([]Entry, 0, len(history))
	timed := make([]Entry, 0, len(history))
	for _, e := range history {
		if e.Time == "" {
			timeless = append(timeless, e)
		} else {
			timed = append(timed, e)
		}
	}
	if len(timeless) == 0 {
		return history
	}
	sort.SliceStable(timeless, func(i, j int) bool { return timeless[i].Label < timeless[j].Label })
	anchor := now.UTC()
	if len(timed) > 0 {
		if t, err := time.Parse(time.RFC3339, timed[0].Time); err == nil {
			anchor = t.UTC()
		}
	}
	for i := range timeless {
		timeless[i].Time = anchor.Add(-time.Duration(len(timeless)-i) * time.Second).Format(time.RFC3339)
	}
	return append(timeless, timed...)
}

// loadHistory reads the existing output file, accepting either the history
// array format or the legacy single-object format (migrated as the first
// entry). A missing, empty, or unreadable-as-JSON file yields an empty
// history.
func loadHistory(path string) []Entry {
	raw, err := os.ReadFile(path)
	if err != nil || len(strings.TrimSpace(string(raw))) == 0 {
		return nil
	}
	var history []Entry
	if err := json.Unmarshal(raw, &history); err == nil {
		return history
	}
	var legacy map[string]Result
	if err := json.Unmarshal(raw, &legacy); err == nil && len(legacy) > 0 {
		return []Entry{{Label: "legacy-snapshot", Results: legacy}}
	}
	return nil
}

func main() {
	out := flag.String("o", "", "output file to append to (default: print a one-entry history to stdout)")
	label := flag.String("label", "", "optional label recorded on this history entry")
	diffMode := flag.Bool("diff", false, "print latest-vs-previous deltas from the -o trajectory instead of reading stdin")
	flag.Parse()
	var err error
	if *diffMode {
		err = diff(os.Stdout, *out)
	} else {
		err = run(os.Stdin, *out, *label, time.Now)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// diff prints how every benchmark moved between the last two entries of the
// trajectory at path: each measured dimension as "old -> new (±pct)", plus
// benchmarks present in only one of the two runs.
func diff(w io.Writer, path string) error {
	if path == "" {
		return fmt.Errorf("benchjson: -diff needs -o pointing at a trajectory file")
	}
	history := loadHistory(path)
	if len(history) < 2 {
		return fmt.Errorf("benchjson: %s has %d entr(y/ies); -diff needs at least 2", path, len(history))
	}
	prev, last := history[len(history)-2], history[len(history)-1]
	ident := func(e Entry, fallback string) string {
		if e.Label != "" {
			return e.Label
		}
		if e.Time != "" {
			return e.Time
		}
		return fallback
	}
	fmt.Fprintf(w, "%s -> %s\n", ident(prev, "previous"), ident(last, "latest"))
	names := make([]string, 0, len(last.Results))
	for name := range last.Results {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cur := last.Results[name]
		old, ok := prev.Results[name]
		if !ok {
			fmt.Fprintf(w, "%s: new (%.6g ns/op)\n", name, cur.NsPerOp)
			continue
		}
		fmt.Fprintf(w, "%s:\n", name)
		dim := func(unit string, o, n float64) {
			if o == 0 && n == 0 {
				return
			}
			line := fmt.Sprintf("  %-14s %.6g -> %.6g", unit, o, n)
			if o != 0 {
				line += fmt.Sprintf("  (%+.1f%%)", 100*(n-o)/o)
			}
			fmt.Fprintln(w, line)
		}
		dim("ns/op", old.NsPerOp, cur.NsPerOp)
		dim("B/op", old.BytesPerOp, cur.BytesPerOp)
		dim("allocs/op", old.AllocsPerOp, cur.AllocsPerOp)
		units := make([]string, 0, len(cur.Extra)+len(old.Extra))
		seen := map[string]bool{}
		for u := range cur.Extra {
			units = append(units, u)
			seen[u] = true
		}
		for u := range old.Extra {
			if !seen[u] {
				units = append(units, u)
			}
		}
		sort.Strings(units)
		for _, u := range units {
			dim(u, old.Extra[u], cur.Extra[u])
		}
	}
	removed := make([]string, 0)
	for name := range prev.Results {
		if _, ok := last.Results[name]; !ok {
			removed = append(removed, name)
		}
	}
	sort.Strings(removed)
	for _, name := range removed {
		fmt.Fprintf(w, "%s: removed\n", name)
	}
	return nil
}

func run(in io.Reader, outPath, label string, now func() time.Time) error {
	results, err := parse(in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines found on stdin")
	}
	entry := Entry{Label: label, Results: results}
	if now != nil {
		entry.Time = now().UTC().Format(time.RFC3339)
	}
	if outPath == "" {
		return encode(os.Stdout, []Entry{entry})
	}
	history := append(loadHistory(outPath), entry)
	if now != nil {
		history = normalize(history, now())
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	return encode(f, history)
}
