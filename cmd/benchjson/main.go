// Command benchjson converts `go test -bench -benchmem` output into a
// committed benchmark trajectory: a JSON array of runs, each mapping
// benchmark name to ns/op, B/op and allocs/op. Repeated invocations APPEND
// to the output file, so the committed document records how the numbers
// moved across changes instead of only the latest snapshot:
//
//	go test -bench . -benchmem -benchtime 3x ./internal/runtime/bench | benchjson -o BENCH_kernel.json
//
// A legacy output file holding a single plain name->result object (the
// pre-history format) is migrated in place as the trajectory's first entry.
// With no -o the run is written to stdout as a one-entry history.
// Non-benchmark lines are ignored, so the full `go test` output can be
// piped in unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark's measurements. Extra holds custom
// b.ReportMetric units (e.g. the async executor's retry-frac) keyed by
// unit name.
type Result struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Entry is one recorded benchmark run in the history array.
type Entry struct {
	Label   string            `json:"label,omitempty"`
	Time    string            `json:"time,omitempty"` // RFC 3339, UTC
	Results map[string]Result `json:"results"`
}

// benchLine matches the name/iteration prefix of a benchmark result, e.g.
//
//	BenchmarkKernelER100k/workers=1-8  3  44715339 ns/op  1606528 B/op  9 allocs/op
//
// The measurement tail is parsed as (value, unit) pairs so custom
// b.ReportMetric units — which the testing package prints BETWEEN ns/op
// and the -benchmem columns — are captured instead of breaking the parse.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(\S.*)$`)

// gomaxprocsSuffix is the trailing -N the testing package appends to the
// benchmark name; stripping it keeps keys stable across machines.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parse reads benchmark lines from r and returns name -> Result, with the
// GOMAXPROCS suffix stripped from names. Lines without an ns/op pair are
// ignored (headers, PASS, package summaries).
func parse(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		fields := strings.Fields(m[2])
		var res Result
		sawNs := false
		for i := 0; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in %q: %w", fields[i], sc.Text(), err)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp, sawNs = val, true
			case "B/op":
				res.BytesPerOp = val
			case "allocs/op":
				res.AllocsPerOp = val
			default:
				if res.Extra == nil {
					res.Extra = map[string]float64{}
				}
				res.Extra[unit] = val
			}
		}
		if !sawNs {
			continue
		}
		out[gomaxprocsSuffix.ReplaceAllString(m[1], "")] = res
	}
	return out, sc.Err()
}

// encode writes the history as indented JSON; within each entry the result
// keys are emitted sorted (json.Marshal sorts map keys), so the document is
// diff-stable.
func encode(w io.Writer, history []Entry) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(history)
}

// normalize repairs mixed-schema history in place: entries that carry no
// timestamp (the legacy-snapshot migration, or files hand-edited before the
// history format) are moved to the front — they predate every timestamped
// run — ordered stably among themselves by label, and backfilled with
// synthetic RFC 3339 times strictly before the earliest real timestamp
// (one second apart, preserving their relative order). When no entry has a
// real timestamp, the backfill counts back from now. The result is a
// uniform-schema document: every entry timestamped, timestamps
// non-decreasing.
func normalize(history []Entry, now time.Time) []Entry {
	timeless := make([]Entry, 0, len(history))
	timed := make([]Entry, 0, len(history))
	for _, e := range history {
		if e.Time == "" {
			timeless = append(timeless, e)
		} else {
			timed = append(timed, e)
		}
	}
	if len(timeless) == 0 {
		return history
	}
	sort.SliceStable(timeless, func(i, j int) bool { return timeless[i].Label < timeless[j].Label })
	anchor := now.UTC()
	if len(timed) > 0 {
		if t, err := time.Parse(time.RFC3339, timed[0].Time); err == nil {
			anchor = t.UTC()
		}
	}
	for i := range timeless {
		timeless[i].Time = anchor.Add(-time.Duration(len(timeless)-i) * time.Second).Format(time.RFC3339)
	}
	return append(timeless, timed...)
}

// loadHistory reads the existing output file, accepting either the history
// array format or the legacy single-object format (migrated as the first
// entry). A missing, empty, or unreadable-as-JSON file yields an empty
// history.
func loadHistory(path string) []Entry {
	raw, err := os.ReadFile(path)
	if err != nil || len(strings.TrimSpace(string(raw))) == 0 {
		return nil
	}
	var history []Entry
	if err := json.Unmarshal(raw, &history); err == nil {
		return history
	}
	var legacy map[string]Result
	if err := json.Unmarshal(raw, &legacy); err == nil && len(legacy) > 0 {
		return []Entry{{Label: "legacy-snapshot", Results: legacy}}
	}
	return nil
}

func main() {
	out := flag.String("o", "", "output file to append to (default: print a one-entry history to stdout)")
	label := flag.String("label", "", "optional label recorded on this history entry")
	flag.Parse()
	if err := run(os.Stdin, *out, *label, time.Now); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(in io.Reader, outPath, label string, now func() time.Time) error {
	results, err := parse(in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines found on stdin")
	}
	entry := Entry{Label: label, Results: results}
	if now != nil {
		entry.Time = now().UTC().Format(time.RFC3339)
	}
	if outPath == "" {
		return encode(os.Stdout, []Entry{entry})
	}
	history := append(loadHistory(outPath), entry)
	if now != nil {
		history = normalize(history, now())
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	return encode(f, history)
}
