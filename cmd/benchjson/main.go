// Command benchjson converts `go test -bench -benchmem` output into a
// stable JSON document mapping each benchmark to its ns/op, B/op and
// allocs/op, so benchmark runs can be committed and diffed:
//
//	go test -bench . -benchmem -benchtime 3x ./internal/runtime/bench | benchjson -o BENCH_kernel.json
//
// With no -o it writes to stdout. Non-benchmark lines are ignored, so the
// full `go test` output can be piped in unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measurements.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchLine matches e.g.
//
//	BenchmarkKernelER100k/workers=1-8  3  44715339 ns/op  1606528 B/op  9 allocs/op
//
// B/op and allocs/op are optional (present only with -benchmem).
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?(?:\s+([0-9.]+) allocs/op)?`)

// gomaxprocsSuffix is the trailing -N the testing package appends to the
// benchmark name; stripping it keeps keys stable across machines.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parse reads benchmark lines from r and returns name -> Result, with the
// GOMAXPROCS suffix stripped from names.
func parse(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(m[1], "")
		var res Result
		var err error
		if res.NsPerOp, err = strconv.ParseFloat(m[2], 64); err != nil {
			return nil, fmt.Errorf("benchjson: bad ns/op in %q: %w", sc.Text(), err)
		}
		if m[3] != "" {
			if res.BytesPerOp, err = strconv.ParseFloat(m[3], 64); err != nil {
				return nil, fmt.Errorf("benchjson: bad B/op in %q: %w", sc.Text(), err)
			}
		}
		if m[4] != "" {
			if res.AllocsPerOp, err = strconv.ParseFloat(m[4], 64); err != nil {
				return nil, fmt.Errorf("benchjson: bad allocs/op in %q: %w", sc.Text(), err)
			}
		}
		out[name] = res
	}
	return out, sc.Err()
}

// encode writes the results as indented JSON with sorted keys (json.Marshal
// already sorts map keys; the wrapper fixes the trailing newline).
func encode(w io.Writer, results map[string]Result) error {
	// Emit sorted keys explicitly so the document is diff-stable.
	keys := make([]string, 0, len(results))
	for k := range results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ordered := make(map[string]Result, len(results))
	for _, k := range keys {
		ordered[k] = results[k]
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ordered)
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	if err := run(os.Stdin, *out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(in io.Reader, outPath string) error {
	results, err := parse(in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines found on stdin")
	}
	w := io.Writer(os.Stdout)
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return encode(w, results)
}
