// Command graphgen generates the static graph families of §II-§III and
// emits them as Graphviz DOT (default) or summary statistics.
//
// Usage:
//
//	graphgen -family ba -n 200 -m 2 > ba.dot
//	graphgen -family gnutella -stats
//	graphgen -family udg -n 300 -radius 1.5 -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"structura/internal/gen"
	"structura/internal/geo"
	"structura/internal/graph"
	"structura/internal/layering"
	"structura/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("graphgen", flag.ContinueOnError)
	var (
		family    = fs.String("family", "ba", "er | ba | ws | grid | ring | star | gnutella | udg")
		n         = fs.Int("n", 100, "nodes")
		m         = fs.Int("m", 2, "ba: links per new node / ws: k")
		p         = fs.Float64("p", 0.05, "er: edge probability / ws: rewire beta")
		radius    = fs.Float64("radius", 1.5, "udg: connection radius")
		side      = fs.Float64("side", 10, "udg: field side length")
		seed      = fs.Int64("seed", 42, "PRNG seed")
		statsOnly = fs.Bool("stats", false, "print summary statistics instead of DOT")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	r := stats.NewRand(*seed)
	var (
		g   *graph.Graph
		err error
	)
	switch *family {
	case "er":
		g = gen.ErdosRenyi(r, *n, *p)
	case "ba":
		g, err = gen.BarabasiAlbert(r, *n, *m)
	case "ws":
		g, err = gen.WattsStrogatz(r, *n, *m, *p)
	case "grid":
		g = gen.Grid(*n, *n)
	case "ring":
		g = gen.Ring(*n)
	case "star":
		g = gen.Star(*n)
	case "gnutella":
		cfg := gen.DefaultGnutella()
		cfg.N = *n
		if *n == 100 { // default flag value: use the calibrated size
			cfg.N = gen.DefaultGnutella().N
		}
		g, err = gen.Gnutella(r, cfg)
	case "udg":
		pts := geo.RandomPoints(r, *n, *side, *side)
		g = geo.UnitDiskGraph(pts, *radius)
	default:
		return fmt.Errorf("unknown family %q", *family)
	}
	if err != nil {
		return err
	}
	if !*statsOnly {
		fmt.Print(g.DOT(*family, nil))
		return nil
	}
	fmt.Printf("family     %s\n", *family)
	fmt.Printf("graph      %s\n", g)
	comps := g.Components()
	fmt.Printf("components %d (largest %d)\n", len(comps), len(comps[0]))
	degs := stats.Ints(g.Degrees())
	sum, err2 := stats.Summarize(degs)
	if err2 == nil {
		fmt.Printf("degree     mean %.2f  min %.0f  median %.0f  max %.0f\n",
			sum.Mean, sum.Min, sum.Median, sum.Max)
	}
	if fit, err := layering.CheckSF(g.Undirected(), 6); err == nil {
		fmt.Printf("power law  alpha %.2f (xmin %d, KS %.3f)\n", fit.Fit.Alpha, fit.Fit.Xmin, fit.Fit.KS)
	}
	return nil
}
