package main

import "testing"

func TestRunFamilies(t *testing.T) {
	for _, fam := range []string{"er", "ba", "ws", "ring", "star", "udg"} {
		args := []string{"-family", fam, "-n", "20", "-m", "2", "-stats"}
		if fam == "ws" {
			args = append(args, "-p", "0.1")
		}
		if err := run(args); err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
	}
	// DOT output path.
	if err := run([]string{"-family", "ring", "-n", "5"}); err != nil {
		t.Fatal(err)
	}
	// Grid uses n as side length.
	if err := run([]string{"-family", "grid", "-n", "4", "-stats"}); err != nil {
		t.Fatal(err)
	}
	// Gnutella with explicit small n.
	if err := run([]string{"-family", "gnutella", "-n", "300", "-stats"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-family", "nope"}); err == nil {
		t.Error("unknown family should error")
	}
	if err := run([]string{"-family", "ba", "-n", "1"}); err == nil {
		t.Error("invalid BA config should error")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag should error")
	}
}
