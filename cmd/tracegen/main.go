// Command tracegen generates synthetic contact traces — the documented
// substitutions for the paper's offline-unavailable datasets — as JSON on
// stdout.
//
// Usage:
//
//	tracegen -model waypoint -n 30 -steps 200 -range 12
//	tracegen -model markov -n 50 -steps 100 -p 0.5 -q 0.1
//	tracegen -model feature -per-community 3 -steps 300 -base 0.25 -decay 0.4
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"structura/internal/mobility"
	"structura/internal/stats"
	"structura/internal/temporal"
)

// Contact is one serialized contact event.
type Contact struct {
	U, V, T int
}

// Trace is the JSON output document.
type Trace struct {
	Model    string    `json:"model"`
	Nodes    int       `json:"nodes"`
	Horizon  int       `json:"horizon"`
	Seed     int64     `json:"seed"`
	Profiles [][]int   `json:"profiles,omitempty"`
	Contacts []Contact `json:"contacts"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		model   = fs.String("model", "waypoint", "waypoint | markov | feature")
		n       = fs.Int("n", 30, "nodes (waypoint/markov)")
		steps   = fs.Int("steps", 200, "time units")
		seed    = fs.Int64("seed", 42, "PRNG seed")
		rng     = fs.Float64("range", 12, "waypoint: communication range")
		width   = fs.Float64("width", 100, "waypoint: field width")
		height  = fs.Float64("height", 100, "waypoint: field height")
		p       = fs.Float64("p", 0.5, "markov: edge death probability")
		q       = fs.Float64("q", 0.05, "markov: edge birth probability")
		perComm = fs.Int("per-community", 3, "feature: individuals per community")
		base    = fs.Float64("base", 0.25, "feature: contact probability at distance 0")
		decay   = fs.Float64("decay", 0.4, "feature: decay per feature distance")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	r := stats.NewRand(*seed)
	var (
		eg       *temporal.EG
		err      error
		profiles [][]int
	)
	switch *model {
	case "waypoint":
		tr, werr := mobility.RandomWaypoint(r, mobility.WaypointConfig{
			N: *n, Width: *width, Height: *height,
			MinSpeed: 1, MaxSpeed: 5, Pause: 2, Steps: *steps, Range: *rng,
		})
		if werr != nil {
			return werr
		}
		eg, err = tr.EG()
	case "markov":
		eg, err = mobility.EdgeMarkovian(r, mobility.EdgeMarkovianConfig{
			N: *n, P: *p, Q: *q, Steps: *steps, StartDensity: -1,
		})
	case "feature":
		var profs []mobility.FeatureProfile
		for g := 0; g < 2; g++ {
			for o := 0; o < 2; o++ {
				for c := 0; c < 3; c++ {
					for k := 0; k < *perComm; k++ {
						profs = append(profs, mobility.FeatureProfile{g, o, c})
						profiles = append(profiles, []int{g, o, c})
					}
				}
			}
		}
		eg, err = mobility.FeatureContacts(r, mobility.FeatureContactConfig{
			Profiles: profs, BaseProb: *base, Decay: *decay, Steps: *steps,
		})
	default:
		return fmt.Errorf("unknown model %q", *model)
	}
	if err != nil {
		return err
	}
	out := Trace{Model: *model, Nodes: eg.N(), Horizon: eg.Horizon(), Seed: *seed, Profiles: profiles}
	for u := 0; u < eg.N(); u++ {
		eg.EachNeighbor(u, func(v int) bool {
			if v < u {
				return true
			}
			for _, t := range eg.Labels(u, v) {
				out.Contacts = append(out.Contacts, Contact{U: u, V: v, T: t})
			}
			return true
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}
