package main

import "testing"

func TestRunModels(t *testing.T) {
	for _, model := range []string{"waypoint", "markov", "feature"} {
		if err := run([]string{"-model", model, "-steps", "20", "-n", "8"}); err != nil {
			t.Fatalf("%s: %v", model, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-model", "nope"}); err == nil {
		t.Error("unknown model should error")
	}
	if err := run([]string{"-model", "waypoint", "-steps", "0"}); err == nil {
		t.Error("invalid config should error")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag should error")
	}
}
