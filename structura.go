// Package structura is a Go reproduction of "Uncovering the Useful
// Structures of Complex Networks in Socially-Rich and Dynamic
// Environments" (Jie Wu, ICDCS 2017).
//
// The library implements the paper's full stack: the graph models of §II
// (intersection graphs, unit disk graphs, interval graphs and hypergraphs,
// time-evolving graphs, edge-Markovian dynamics, mobility-driven contact
// traces), the three structure-uncovering strategies of §III (structural
// trimming, layering, and remapping), and the distributed/localized
// labeling machinery of §IV (CDS/MIS/DS labelings, link reversal,
// distance-vector labels, hypercube safety levels).
//
// This root package is the facade: it exposes the experiment registry that
// regenerates every figure and quantitative claim of the paper. The
// subsystems live under internal/ (one package per substrate; see
// DESIGN.md for the inventory) and are exercised by the example programs
// under examples/.
package structura

import (
	"io"

	"structura/internal/core"
)

// Strategy is one of the paper's structure-uncovering approaches.
type Strategy = core.Strategy

// The strategies of §III and the labeling machinery of §IV.
const (
	Trimming  = core.Trimming
	Layering  = core.Layering
	Remapping = core.Remapping
	Labeling  = core.Labeling
)

// Table is a rendered experiment result.
type Table = core.Table

// Experiment regenerates one figure or claim of the paper.
type Experiment = core.Experiment

// Experiments lists every registered experiment, sorted by ID.
func Experiments() []Experiment { return core.Registry() }

// LookupExperiment finds an experiment by ID (e.g. "fig3", "tour").
func LookupExperiment(id string) (Experiment, error) { return core.Lookup(id) }

// RunAll executes every experiment with the seed, rendering to w.
func RunAll(w io.Writer, seed int64) error { return core.RunAll(w, seed) }
