module structura

go 1.22
