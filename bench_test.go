package structura

// One benchmark per paper figure and per quantitative text claim — the
// bench targets of DESIGN.md's per-experiment index. Each benchmark runs
// the full regeneration of its artifact; granular per-operation benchmarks
// live in the substrate packages' own files.

import (
	"testing"

	"structura/internal/distvec"
	"structura/internal/embedding"
	"structura/internal/forwarding"
	"structura/internal/gen"
	"structura/internal/geo"
	"structura/internal/hypercube"
	"structura/internal/labeling"
	"structura/internal/layering"
	"structura/internal/maxflow"
	"structura/internal/mobility"
	"structura/internal/reversal"
	"structura/internal/smallworld"
	"structura/internal/stats"
	"structura/internal/temporal"
	"structura/internal/trimming"
	"structura/internal/udg"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := LookupExperiment(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(42); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1IntervalGraph regenerates Fig. 1 (interval graphs and
// hypergraphs of online social networks).
func BenchmarkFig1IntervalGraph(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkFig2TemporalPaths regenerates Fig. 2 (time-evolving graph paths
// and connectivity).
func BenchmarkFig2TemporalPaths(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig3NSF regenerates Fig. 3 (nested scale-free Gnutella overlay).
func BenchmarkFig3NSF(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4LinkReversal regenerates Fig. 4 (link reversal cascades).
func BenchmarkFig4LinkReversal(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5GreedyRemap regenerates Fig. 5 (greedy routing with holes vs
// remapped coordinates).
func BenchmarkFig5GreedyRemap(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6FSpaceRouting regenerates Fig. 6 (F-space hypercube routing).
func BenchmarkFig6FSpaceRouting(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7NestedLabeling regenerates Fig. 7 (degree vs nested-degree
// levels).
func BenchmarkFig7NestedLabeling(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8StaticLabels regenerates Fig. 8 (DS/CDS/MIS labelings).
func BenchmarkFig8StaticLabels(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9SafetyLevels regenerates Fig. 9 (hypercube safety levels).
func BenchmarkFig9SafetyLevels(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkSmallWorldGreedy regenerates the §I small-world claim.
func BenchmarkSmallWorldGreedy(b *testing.B) { benchExperiment(b, "smallworld") }

// BenchmarkEdgeMarkovianFlooding regenerates the §II-B dynamic-diameter
// claim.
func BenchmarkEdgeMarkovianFlooding(b *testing.B) { benchExperiment(b, "markov") }

// BenchmarkTemporalTrimming regenerates the §III-A preservation claim.
func BenchmarkTemporalTrimming(b *testing.B) { benchExperiment(b, "trim") }

// BenchmarkTOURForwardingSet regenerates the §III-A [13] shrinkage claim.
func BenchmarkTOURForwardingSet(b *testing.B) { benchExperiment(b, "tour") }

// BenchmarkDynamicMIS regenerates the §IV-C [30] O(1)-adjustment claim.
func BenchmarkDynamicMIS(b *testing.B) { benchExperiment(b, "dynmis") }

// BenchmarkMaxFlowHeights regenerates the §III-B height-based max-flow.
func BenchmarkMaxFlowHeights(b *testing.B) { benchExperiment(b, "maxflow") }

// BenchmarkDistanceVector regenerates the §IV-B slow-convergence claim.
func BenchmarkDistanceVector(b *testing.B) { benchExperiment(b, "distvec") }

// BenchmarkUDGTSP regenerates the §II-A constant-approximation claim.
func BenchmarkUDGTSP(b *testing.B) { benchExperiment(b, "udgtsp") }

// BenchmarkCentrality regenerates the §III centrality baselines.
func BenchmarkCentrality(b *testing.B) { benchExperiment(b, "centrality") }

// BenchmarkHybridSteering regenerates the §IV-C [31] hybrid
// centralized-and-distributed routing demonstration.
func BenchmarkHybridSteering(b *testing.B) { benchExperiment(b, "hybrid") }

// --- micro-benchmarks of the hot substrate operations -------------------

func BenchmarkEarliestArrival(b *testing.B) {
	r := stats.NewRand(1)
	eg, err := temporal.New(200, 100)
	if err != nil {
		b.Fatal(err)
	}
	for k := 0; k < 4000; k++ {
		u, v := r.Intn(200), r.Intn(200)
		if u != v {
			_ = eg.AddContact(u, v, r.Intn(100))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eg.EarliestArrival(i%200, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSafetyLevels10Cube(b *testing.B) {
	r := stats.NewRand(2)
	var faults []int
	for len(faults) < 64 {
		faults = append(faults, r.Intn(1024))
	}
	c, err := hypercube.New(10, faults)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := c.SafetyLevels()
		if len(res.Levels) != 1024 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkDistributedMIS(b *testing.B) {
	r := stats.NewRand(3)
	g := gen.ErdosRenyi(r, 1000, 0.004)
	prio := make(labeling.Priority, 1000)
	for i, p := range r.Perm(1000) {
		prio[i] = float64(p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := labeling.DistributedMIS(g, prio); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDynamicMISUpdate(b *testing.B) {
	r := stats.NewRand(4)
	g := gen.ErdosRenyi(r, 1000, 0.004)
	d, err := labeling.NewDynamicMIS(g, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, v := r.Intn(1000), r.Intn(1000)
		if u == v {
			continue
		}
		if d.Graph().HasEdge(u, v) {
			_, err = d.RemoveEdge(u, v)
		} else {
			_, err = d.AddEdge(u, v)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLinkReversalRing64(b *testing.B) {
	alphas := make([]int, 64)
	for i := 1; i < 64; i++ {
		alphas[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, err := reversal.NewNetwork(gen.Ring(64), alphas, 0, reversal.Full)
		if err != nil {
			b.Fatal(err)
		}
		net.RemoveLink(0, 1)
		if st := net.Stabilize(1000000); !st.Converged {
			b.Fatal("diverged")
		}
	}
}

func BenchmarkNSFPeel(b *testing.B) {
	r := stats.NewRand(5)
	g, err := gen.BarabasiAlbert(r, 2000, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := layering.PeelToFraction(g, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreeEmbeddingRoute(b *testing.B) {
	r := stats.NewRand(6)
	pts := geo.RandomPoints(r, 500, 20, 20)
	g := geo.UnitDiskGraph(pts, 2)
	comps := g.Components()
	keep := map[int]bool{}
	for _, v := range comps[0] {
		keep[v] = true
	}
	sub, _ := g.Subgraph(keep)
	emb, err := embedding.NewTreeEmbedding(sub, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, dst := r.Intn(sub.N()), r.Intn(sub.N())
		if _, err := emb.GreedyRoute(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEpidemicSimulation(b *testing.B) {
	r := stats.NewRand(7)
	tr, err := mobility.RandomWaypoint(r, mobility.WaypointConfig{
		N: 40, Width: 100, Height: 100, MinSpeed: 1, MaxSpeed: 5,
		Pause: 2, Steps: 200, Range: 12,
	})
	if err != nil {
		b.Fatal(err)
	}
	eg, err := tr.EG()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := forwarding.Simulate(eg, forwarding.Message{Src: 0, Dst: 39}, forwarding.Epidemic{}, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPushRelabel(b *testing.B) {
	r := stats.NewRand(8)
	nw, err := maxflow.NewNetwork(200)
	if err != nil {
		b.Fatal(err)
	}
	for k := 0; k < 1200; k++ {
		u, v := r.Intn(200), r.Intn(200)
		if u != v {
			_ = nw.AddArc(u, v, int64(r.Intn(100)))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nw.PushRelabel(0, 199); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistanceVectorPath256(b *testing.B) {
	g := gen.Path(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := distvec.Compute(g, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKleinbergGrid(b *testing.B) {
	rng := stats.NewRand(9)
	g, err := smallworld.New(rng, 32, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.AverageGreedySteps(rng, 100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrimFig2(b *testing.B) {
	eg := temporal.Fig2EG()
	prio := trimming.PriorityByID(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trimming.CanIgnoreNeighbor(eg, 0, 3, prio, trimming.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApproxTSP(b *testing.B) {
	r := stats.NewRand(10)
	pts := geo.RandomPoints(r, 400, 100, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := udg.ApproxTSP(pts); err != nil {
			b.Fatal(err)
		}
	}
}
