package structura

// Integration tests: each test chains several subsystems end to end, the
// way the example applications do, and checks a cross-cutting invariant.

import (
	"testing"

	"structura/internal/embedding"
	"structura/internal/forwarding"
	"structura/internal/fspace"
	"structura/internal/gen"
	"structura/internal/geo"
	"structura/internal/layering"
	"structura/internal/mobility"
	"structura/internal/stats"
	"structura/internal/trimming"
)

// Mobility trace -> time-evolving graph -> structural trimming -> DTN
// forwarding: epidemic delivery times on the trimmed EG must equal those on
// the original for all surviving nodes (trimming's §III-A guarantee carried
// through the full pipeline).
func TestIntegrationTraceTrimForward(t *testing.T) {
	r := stats.NewRand(1)
	tr, err := mobility.RandomWaypoint(r, mobility.WaypointConfig{
		N: 12, Width: 60, Height: 60,
		MinSpeed: 1, MaxSpeed: 4, Pause: 1,
		Steps: 60, Range: 18,
	})
	if err != nil {
		t.Fatal(err)
	}
	eg, err := tr.EG()
	if err != nil {
		t.Fatal(err)
	}
	prio := trimming.PriorityByID(eg.N())
	res, err := trimming.TrimNodes(eg, prio, trimming.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gone := map[int]bool{}
	for _, v := range res.RemovedNodes {
		gone[v] = true
	}
	pairs := 0
	for src := 0; src < eg.N() && pairs < 30; src++ {
		if gone[src] {
			continue
		}
		for dst := 0; dst < eg.N() && pairs < 30; dst++ {
			if dst == src || gone[dst] {
				continue
			}
			pairs++
			m1, err := forwarding.Simulate(eg, forwarding.Message{Src: src, Dst: dst}, forwarding.Epidemic{}, 0)
			if err != nil {
				t.Fatal(err)
			}
			m2, err := forwarding.Simulate(res.Trimmed, forwarding.Message{Src: src, Dst: dst}, forwarding.Epidemic{}, 0)
			if err != nil {
				t.Fatal(err)
			}
			if m1.Delivered != m2.Delivered {
				t.Fatalf("%d->%d: delivery changed by trimming", src, dst)
			}
			if m1.Delivered && m1.DeliveryTime != m2.DeliveryTime {
				t.Fatalf("%d->%d: delivery time %d -> %d after trimming",
					src, dst, m1.DeliveryTime, m2.DeliveryTime)
			}
		}
	}
	if pairs == 0 {
		t.Fatal("no surviving pairs to compare")
	}
}

// Overlay generator -> layering -> pub/sub: the nested hierarchy of a
// scale-free overlay must put its highest-degree peer in the top level and
// hand pub/sub a shallower tree than plain degree labeling.
func TestIntegrationOverlayLayering(t *testing.T) {
	r := stats.NewRand(2)
	cfg := gen.DefaultGnutella()
	cfg.N = 1200
	overlay, err := gen.Gnutella(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	scc, _ := overlay.LargestSCC()
	g := scc.Undirected()
	rep, err := layering.CheckNSF(g, 0.5, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.IsNSF(0.6) {
		t.Errorf("overlay should be (approximately) NSF; spread %v", rep.AlphaStdDev)
	}
	nested := layering.NestedLevels(g)
	top := layering.TopLevelNodes(nested)
	if len(top) == 0 {
		t.Fatal("no top-level node")
	}
	// The top of the hierarchy must be a high-degree peer: within the top
	// decile of degrees.
	degs := g.Degrees()
	var hi int
	for _, d := range degs {
		if d > hi {
			hi = d
		}
	}
	for _, v := range top {
		if degs[v] < hi/4 {
			t.Errorf("top-level node %d has degree %d (max %d); hierarchy inverted?", v, degs[v], hi)
		}
	}
}

// Geometry -> topology control -> embedding: Gabriel-trimming a UDG keeps
// it connected, and tree-metric greedy routing still delivers 100% on the
// sparser graph.
func TestIntegrationTopologyControlRouting(t *testing.T) {
	r := stats.NewRand(3)
	pts := geo.RandomPoints(r, 250, 15, 15)
	udgG := geo.UnitDiskGraph(pts, 2.2)
	comps := udgG.Components()
	keep := map[int]bool{}
	for _, v := range comps[0] {
		keep[v] = true
	}
	sub, oldIDs := udgG.Subgraph(keep)
	subPts := make([]geo.Point, sub.N())
	for i, old := range oldIDs {
		subPts[i] = pts[old]
	}
	gabriel := trimming.GabrielGraph(sub, subPts)
	if !gabriel.Connected() {
		t.Fatal("Gabriel trimming must preserve connectivity")
	}
	if gabriel.M() >= sub.M() {
		t.Fatalf("Gabriel did not sparsify: %d >= %d", gabriel.M(), sub.M())
	}
	emb, err := embedding.NewTreeEmbedding(gabriel, 0)
	if err != nil {
		t.Fatal(err)
	}
	st := geo.Evaluate(stats.NewRand(4), gabriel.N(), 300, emb.GreedyRoute)
	if st.Ratio() != 1 {
		t.Errorf("tree-metric greedy on the trimmed topology delivered %v, want 1.0", st.Ratio())
	}
}

// Feature model -> F-space -> forwarding + TOUR: estimate contact rates
// from the trace itself and verify the two structure-guided policies beat
// direct delivery in delay while staying far below epidemic's copy count.
func TestIntegrationSocialPipeline(t *testing.T) {
	space := fspace.Fig6Space()
	var profiles []mobility.FeatureProfile
	for g := 0; g < 2; g++ {
		for o := 0; o < 2; o++ {
			for c := 0; c < 3; c++ {
				for k := 0; k < 3; k++ {
					profiles = append(profiles, mobility.FeatureProfile{g, o, c})
				}
			}
		}
	}
	r := stats.NewRand(5)
	eg, err := mobility.FeatureContacts(r, mobility.FeatureContactConfig{
		Profiles: profiles, BaseProb: 0.25, Decay: 0.35, Steps: 250,
	})
	if err != nil {
		t.Fatal(err)
	}
	src, dst := 0, len(profiles)-1
	rates := forwarding.ContactRates(eg)
	lambda := make([]float64, eg.N())
	for i := range lambda {
		lambda[i] = rates[i][dst]
	}
	tour, err := forwarding.NewTOUR(lambda, 1, 200, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	grad, err := fspace.NewGradientPolicy(space, profiles, profiles[dst])
	if err != nil {
		t.Fatal(err)
	}
	msg := forwarding.Message{Src: src, Dst: dst}
	direct, err := forwarding.Simulate(eg, msg, forwarding.DirectDelivery{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	epidemic, err := forwarding.Simulate(eg, msg, forwarding.Epidemic{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []forwarding.Policy{tour, grad} {
		m, err := forwarding.Simulate(eg, msg, p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !m.Delivered {
			t.Fatalf("%s failed to deliver", p.Name())
		}
		if direct.Delivered && m.DeliveryTime > direct.DeliveryTime {
			t.Errorf("%s delay %d worse than direct %d", p.Name(), m.DeliveryTime, direct.DeliveryTime)
		}
		if m.Copies != 1 {
			t.Errorf("%s is single-copy but peaked at %d copies", p.Name(), m.Copies)
		}
		if epidemic.Delivered && m.DeliveryTime < epidemic.DeliveryTime {
			t.Errorf("%s (%d) cannot beat epidemic (%d)", p.Name(), m.DeliveryTime, epidemic.DeliveryTime)
		}
	}
}
