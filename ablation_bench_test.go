package structura

// Ablation benchmarks for the design choices DESIGN.md §5 calls out: each
// b.Run variant isolates one policy/mechanism choice so the alternatives
// can be compared directly with `go test -bench=Ablation`.

import (
	"testing"

	"structura/internal/centrality"
	"structura/internal/forwarding"
	"structura/internal/fspace"
	"structura/internal/gen"
	"structura/internal/labeling"
	"structura/internal/mobility"
	"structura/internal/reversal"
	"structura/internal/stats"
	"structura/internal/temporal"
	"structura/internal/trimming"
)

// BenchmarkAblationTrimPriority compares the trimming priority schemes of
// §III-A (node ID vs degree vs betweenness).
func BenchmarkAblationTrimPriority(b *testing.B) {
	r := stats.NewRand(1)
	eg, err := temporal.New(10, 10)
	if err != nil {
		b.Fatal(err)
	}
	for k := 0; k < 70; k++ {
		u, v := r.Intn(10), r.Intn(10)
		if u != v {
			_ = eg.AddContact(u, v, r.Intn(10))
		}
	}
	schemes := map[string]trimming.Priorities{
		"id": trimming.PriorityByID(10),
		"degree": trimming.PriorityByScore(func() []float64 {
			deg := make([]float64, 10)
			for v := 0; v < 10; v++ {
				deg[v] = float64(len(eg.Neighbors(v)))
			}
			return deg
		}()),
		"betweenness": trimming.PriorityByScore(centrality.Betweenness(eg.Footprint())),
	}
	for name, prio := range schemes {
		prio := prio
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := trimming.TrimNodes(eg, prio, trimming.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationReversalVariant compares full, partial, and both binary
// label initializations on the quadratic ring scenario.
func BenchmarkAblationReversalVariant(b *testing.B) {
	const n = 32
	alphas := make([]int, n)
	for i := 1; i < n; i++ {
		alphas[i] = i
	}
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			net, _ := reversal.NewNetwork(gen.Ring(n), alphas, 0, reversal.Full)
			net.RemoveLink(0, 1)
			if st := net.Stabilize(1000000); !st.Converged {
				b.Fatal("diverged")
			}
		}
	})
	b.Run("partial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			net, _ := reversal.NewNetwork(gen.Ring(n), alphas, 0, reversal.Partial)
			net.RemoveLink(0, 1)
			if st := net.Stabilize(1000000); !st.Converged {
				b.Fatal("diverged")
			}
		}
	})
	for _, label := range []int{0, 1} {
		label := label
		name := "binary-all0"
		if label == 1 {
			name = "binary-all1"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lr, _ := reversal.NewBinaryLR(gen.Ring(n), alphas, 0, label)
				lr.RemoveLink(0, 1)
				if st := lr.Stabilize(1000000); !st.Converged {
					b.Fatal("diverged")
				}
			}
		})
	}
}

// BenchmarkAblationForwardingPolicy compares first-contact, static optimal
// sets, TOUR time-varying sets, and copy-varying multi-copy sets.
func BenchmarkAblationForwardingPolicy(b *testing.B) {
	r := stats.NewRand(2)
	eg, err := temporal.New(30, 300)
	if err != nil {
		b.Fatal(err)
	}
	for k := 0; k < 4000; k++ {
		u, v := r.Intn(30), r.Intn(30)
		if u != v {
			_ = eg.AddContact(u, v, r.Intn(300))
		}
	}
	rates := forwarding.ContactRates(eg)
	sets, _, err := forwarding.OptimalForwardingSets(rates, 29)
	if err != nil {
		b.Fatal(err)
	}
	lambda := make([]float64, 30)
	for i := range lambda {
		lambda[i] = rates[i][29]
	}
	tour, err := forwarding.NewTOUR(lambda, 1, 250, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	cv, err := forwarding.NewCopyVarying(rates, 29)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name   string
		policy forwarding.Policy
		tokens int
	}{
		{"first-contact", forwarding.FirstContact{}, 0},
		{"static-set", forwarding.SetPolicy{Sets: sets}, 0},
		{"tour", tour, 0},
		{"copy-varying", cv, 4},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := forwarding.Simulate(eg, forwarding.Message{Src: 0, Dst: 29}, c.policy, c.tokens); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationFSpacePaths compares single-path vs multipath F-space
// routing over the same feature trace.
func BenchmarkAblationFSpacePaths(b *testing.B) {
	space := fspace.Fig6Space()
	var profiles []mobility.FeatureProfile
	for g := 0; g < 2; g++ {
		for o := 0; o < 2; o++ {
			for c := 0; c < 3; c++ {
				for k := 0; k < 3; k++ {
					profiles = append(profiles, mobility.FeatureProfile{g, o, c})
				}
			}
		}
	}
	r := stats.NewRand(3)
	eg, err := mobility.FeatureContacts(r, mobility.FeatureContactConfig{
		Profiles: profiles, BaseProb: 0.2, Decay: 0.35, Steps: 200,
	})
	if err != nil {
		b.Fatal(err)
	}
	dst := len(profiles) - 1
	grad, err := fspace.NewGradientPolicy(space, profiles, profiles[dst])
	if err != nil {
		b.Fatal(err)
	}
	multi, err := fspace.NewMultipathPolicy(space, profiles, profiles[dst])
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range []struct {
		name   string
		policy forwarding.Policy
	}{{"single", grad}, {"multipath", multi}} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := forwarding.Simulate(eg, forwarding.Message{Src: 0, Dst: dst}, c.policy, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMISMaintenance compares incremental dynamic-MIS repair
// against a full distributed re-election per update.
func BenchmarkAblationMISMaintenance(b *testing.B) {
	r := stats.NewRand(4)
	g := gen.ErdosRenyi(r, 400, 0.01)
	b.Run("incremental", func(b *testing.B) {
		d, err := labeling.NewDynamicMIS(g, stats.NewRand(5))
		if err != nil {
			b.Fatal(err)
		}
		rr := stats.NewRand(6)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			u, v := rr.Intn(400), rr.Intn(400)
			if u == v {
				continue
			}
			if d.Graph().HasEdge(u, v) {
				_, err = d.RemoveEdge(u, v)
			} else {
				_, err = d.AddEdge(u, v)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		prio := make(labeling.Priority, 400)
		for i, p := range stats.NewRand(7).Perm(400) {
			prio[i] = float64(p)
		}
		work := g.Clone()
		rr := stats.NewRand(8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			u, v := rr.Intn(400), rr.Intn(400)
			if u == v {
				continue
			}
			if work.HasEdge(u, v) {
				work.RemoveEdge(u, v)
			} else {
				_ = work.AddEdge(u, v)
			}
			if _, err := labeling.DistributedMIS(work, prio); err != nil {
				b.Fatal(err)
			}
		}
	})
}
