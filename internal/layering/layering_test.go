package layering

import (
	"testing"

	"structura/internal/gen"
	"structura/internal/graph"
	"structura/internal/stats"
)

func TestDegreeLevels(t *testing.T) {
	// Star: leaves (degree 1) level 1, center (degree 4) level 2.
	g := gen.Star(5)
	levels := DegreeLevels(g)
	if levels[0] != 2 {
		t.Errorf("center level = %d, want 2", levels[0])
	}
	for v := 1; v < 5; v++ {
		if levels[v] != 1 {
			t.Errorf("leaf level = %d, want 1", levels[v])
		}
	}
	if Depth(levels) != 2 {
		t.Errorf("depth = %d", Depth(levels))
	}
	if len(DegreeLevels(graph.New(0))) != 0 {
		t.Error("empty graph should have no levels")
	}
}

func TestNestedLevelsStar(t *testing.T) {
	g := gen.Star(5)
	levels := NestedLevels(g)
	// Round 1: leaves have adjusted degree 1, center 4 -> leaves assigned.
	// Round 2: center has adjusted degree 0 -> assigned level 2.
	if levels[0] != 2 {
		t.Errorf("center = %d, want 2", levels[0])
	}
	top := TopLevelNodes(levels)
	if len(top) != 1 || top[0] != 0 {
		t.Errorf("top nodes = %v, want [0] — the aim is one node at the top", top)
	}
}

func TestNestedLevelsPath(t *testing.T) {
	// Path 0-1-2-3-4: endpoints are local minima (degree 1) in round 1;
	// remaining path 1-2-3: endpoints 1,3 now have adjusted degree 1 ->
	// round 2; node 2 -> round 3.
	g := gen.Path(5)
	levels := NestedLevels(g)
	want := []int{1, 2, 3, 2, 1}
	for v, w := range want {
		if levels[v] != w {
			t.Errorf("levels = %v, want %v", levels, want)
			break
		}
	}
}

func TestNestedLevelsCompleteGraph(t *testing.T) {
	// All adjusted degrees tie; distinct IDs break the symmetry (§IV), so
	// the clique peels one node per round: an onion 1..n.
	levels := NestedLevels(gen.Complete(4))
	want := []int{1, 2, 3, 4}
	for v, l := range levels {
		if l != want[v] {
			t.Errorf("levels = %v, want %v", levels, want)
			break
		}
	}
}

func TestNestedVsDegreeDiffer(t *testing.T) {
	// A "barbell" where nesting matters: two hubs joined by a path of
	// low-degree nodes. Plain degree gives the path nodes one level;
	// nesting peels them in waves from the ends.
	g := graph.New(8)
	// Hub 0 with leaves 1,2; hub 7 with leaves 5,6; path 0-3-4-7.
	for _, e := range [][2]int{{0, 1}, {0, 2}, {0, 3}, {3, 4}, {4, 7}, {7, 5}, {7, 6}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	deg := DegreeLevels(g)
	nested := NestedLevels(g)
	same := true
	for v := range deg {
		if deg[v] != nested[v] {
			same = false
		}
	}
	if same {
		t.Error("expected degree and nested labelings to differ (Fig. 7a vs 7b)")
	}
}

func TestPeelOnce(t *testing.T) {
	g := gen.Star(6)
	sub, ids := PeelOnce(g)
	// Leaves are the local minima; only the center survives.
	if sub.N() != 1 || ids[0] != 0 {
		t.Errorf("peel star: n=%d ids=%v, want center only", sub.N(), ids)
	}
	// Regular graph: degree ties broken by ID, so exactly the ID-minimal
	// local nodes peel — the ring loses node 0 only.
	ring := gen.Ring(6)
	sub2, ids2 := PeelOnce(ring)
	if sub2.N() != 5 {
		t.Errorf("ring peel should remove exactly node 0, got n=%d", sub2.N())
	}
	for _, old := range ids2 {
		if old == 0 {
			t.Error("node 0 should have been peeled")
		}
	}
}

func TestPeelToFraction(t *testing.T) {
	r := stats.NewRand(1)
	g, err := gen.BarabasiAlbert(r, 600, 2)
	if err != nil {
		t.Fatal(err)
	}
	sub, ids, rounds, err := PeelToFraction(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() > g.N() || float64(sub.N()) > 0.75*float64(g.N()) {
		t.Errorf("peeled to %d of %d nodes; want <= ~50%% modulo one round of overshoot", sub.N(), g.N())
	}
	if rounds < 1 {
		t.Error("at least one peeling round expected")
	}
	if len(ids) != sub.N() {
		t.Fatalf("ids length %d != n %d", len(ids), sub.N())
	}
	// Mapping must reference original IDs.
	for _, old := range ids {
		if old < 0 || old >= g.N() {
			t.Fatalf("id %d out of original range", old)
		}
	}
	if _, _, _, err := PeelToFraction(g, 0); err == nil {
		t.Error("frac 0 should error")
	}
	if _, _, _, err := PeelToFraction(g, 1.5); err == nil {
		t.Error("frac > 1 should error")
	}
}

func TestPeelKeepsHighDegreeNodes(t *testing.T) {
	// The survivors of Fig. 3b are the high-degree core: verify the peak
	// degree node survives peeling to 50%.
	r := stats.NewRand(2)
	g, err := gen.BarabasiAlbert(r, 400, 2)
	if err != nil {
		t.Fatal(err)
	}
	best, bestDeg := -1, -1
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) > bestDeg {
			best, bestDeg = v, g.Degree(v)
		}
	}
	_, ids, _, err := PeelToFraction(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, old := range ids {
		if old == best {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("highest-degree node %d (deg %d) was peeled away", best, bestDeg)
	}
}

func TestCheckSF(t *testing.T) {
	r := stats.NewRand(3)
	g, err := gen.BarabasiAlbert(r, 3000, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CheckSF(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fit.Alpha < 2 || rep.Fit.Alpha > 4 {
		t.Errorf("BA alpha = %v, want in [2,4]", rep.Fit.Alpha)
	}
	if rep.N != 3000 {
		t.Errorf("report N = %d", rep.N)
	}
	if _, err := CheckSF(graph.New(3), 5); err == nil {
		t.Error("edgeless graph cannot be SF-fit")
	}
}

func TestCheckNSFOnScaleFree(t *testing.T) {
	// The NSF property of [11]: a Gnutella-like overlay stays power-law
	// under peeling with small exponent spread.
	r := stats.NewRand(4)
	cfg := gen.DefaultGnutella()
	cfg.N = 3000
	g, err := gen.Gnutella(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	und := g.Undirected()
	rep, err := CheckNSF(und, 0.5, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Levels) < 2 {
		t.Fatalf("want at least two levels in the family, got %d", len(rep.Levels))
	}
	if !rep.IsNSF(0.5) {
		t.Errorf("alpha spread = %v; Gnutella-like overlay should be NSF within 0.5", rep.AlphaStdDev)
	}
}

func TestCheckNSFValidation(t *testing.T) {
	if _, err := CheckNSF(gen.Star(4), 0, 5); err == nil {
		t.Error("bad fraction should error")
	}
}

func TestIsNSFThreshold(t *testing.T) {
	rep := NSFReport{Levels: make([]SFReport, 3), AlphaStdDev: 0.3}
	if !rep.IsNSF(0.5) {
		t.Error("0.3 <= 0.5 should pass")
	}
	if rep.IsNSF(0.1) {
		t.Error("0.3 > 0.1 should fail")
	}
	single := NSFReport{Levels: make([]SFReport, 1)}
	if single.IsNSF(1) {
		t.Error("a single level is not a nested hierarchy")
	}
}

func TestPushPullCost(t *testing.T) {
	levels := []int{2, 1, 1, 1, 1} // star nested levels: center 0 at top
	cost, err := PushPullCost(levels, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Publisher level 1 -> top 2: 1 step up; subscriber: 1 step down.
	if cost != 2 {
		t.Errorf("cost = %d, want 2", cost)
	}
	cost2, _ := PushPullCost(levels, 0, 0)
	if cost2 != 0 {
		t.Errorf("top-to-top cost = %d, want 0", cost2)
	}
	if _, err := PushPullCost(levels, -1, 0); err == nil {
		t.Error("bad node should error")
	}
}

func TestLevelsCoverAllNodes(t *testing.T) {
	r := stats.NewRand(5)
	for trial := 0; trial < 10; trial++ {
		g := gen.ErdosRenyi(r, 60, 0.1)
		levels := NestedLevels(g)
		for v, l := range levels {
			if l < 1 {
				t.Fatalf("node %d unassigned (level %d)", v, l)
			}
		}
	}
}
