package layering

import (
	"errors"

	"structura/internal/graph"
)

// The paper (§III-B): "The hierarchical structure can facilitate efficient
// implementations of the pub-sub systems through push (moving up through
// the layered structure) and pull (coming down through the layered
// structure)." PubSub realizes that over actual graph paths: a publication
// climbs from the publisher to a top-level rendezvous node, and each
// subscriber's pull descends from the rendezvous — both along edges of the
// overlay, preferring level-increasing (resp. decreasing) hops.

// PubSub routes publications over a level hierarchy of a connected overlay.
type PubSub struct {
	g      *graph.Graph
	levels []int
	top    int   // rendezvous: the top-level node (lowest ID among them)
	up     []int // next hop toward the rendezvous, per node
	dist   []int // hops to the rendezvous
}

// NewPubSub builds the pub-sub structure from an overlay and its level
// labeling (e.g. NestedLevels). The overlay must be connected and levels
// must cover every node.
func NewPubSub(g *graph.Graph, levels []int) (*PubSub, error) {
	if g.N() == 0 {
		return nil, errors.New("layering: empty overlay")
	}
	if len(levels) != g.N() {
		return nil, errors.New("layering: levels length mismatch")
	}
	if !g.Connected() {
		return nil, errors.New("layering: overlay must be connected")
	}
	tops := TopLevelNodes(levels)
	if len(tops) == 0 {
		return nil, errors.New("layering: no top-level node")
	}
	// The paper: multiple top-level nodes are assumed to be connected by
	// an external server; we pick the lowest-ID top node as the rendezvous
	// (the "server" role).
	top := tops[0]
	dist, parent, err := g.BFS(top)
	if err != nil {
		return nil, err
	}
	for v, d := range dist {
		if d < 0 {
			return nil, errors.New("layering: overlay must be connected")
		}
		_ = v
	}
	return &PubSub{g: g, levels: levels, top: top, up: parent, dist: dist}, nil
}

// Rendezvous returns the top-level meeting node.
func (ps *PubSub) Rendezvous() int { return ps.top }

// PushPath returns the path a publication takes from the publisher up to
// the rendezvous: it greedily prefers neighbors with strictly higher
// levels ("moving up through the layered structure") and falls back to the
// BFS-parent toward the rendezvous when no higher neighbor makes progress.
func (ps *PubSub) PushPath(publisher int) ([]int, error) {
	if publisher < 0 || publisher >= ps.g.N() {
		return nil, errors.New("layering: publisher out of range")
	}
	path := []int{publisher}
	cur := publisher
	for cur != ps.top {
		// Prefer the highest-level neighbor that is also closer to the
		// rendezvous; fall back to the BFS parent.
		next := ps.up[cur]
		best := -1
		ps.g.EachNeighbor(cur, func(w int, _ float64) {
			if ps.dist[w] < ps.dist[cur] && ps.levels[w] > ps.levels[cur] {
				if best == -1 || ps.levels[w] > ps.levels[best] {
					best = w
				}
			}
		})
		if best != -1 {
			next = best
		}
		cur = next
		path = append(path, cur)
		if len(path) > ps.g.N() {
			return path, errors.New("layering: push path looped")
		}
	}
	return path, nil
}

// PullPath returns the path a subscriber's pull takes from the rendezvous
// down to the subscriber ("coming down through the layered structure") —
// the reverse of the subscriber's own ascent.
func (ps *PubSub) PullPath(subscriber int) ([]int, error) {
	upPath, err := ps.PushPath(subscriber)
	if err != nil {
		return nil, err
	}
	down := make([]int, len(upPath))
	for i, v := range upPath {
		down[len(upPath)-1-i] = v
	}
	return down, nil
}

// Deliver returns the full publication route from publisher to subscriber
// through the rendezvous and its total hop count.
func (ps *PubSub) Deliver(publisher, subscriber int) ([]int, int, error) {
	push, err := ps.PushPath(publisher)
	if err != nil {
		return nil, 0, err
	}
	pull, err := ps.PullPath(subscriber)
	if err != nil {
		return nil, 0, err
	}
	route := append(append([]int(nil), push...), pull[1:]...)
	return route, len(route) - 1, nil
}
