package layering

import (
	"testing"

	"structura/internal/gen"
	"structura/internal/graph"
	"structura/internal/stats"
)

func TestDistributedNestedLevelsMatchesCentralized(t *testing.T) {
	r := stats.NewRand(1)
	graphs := []*graph.Graph{
		gen.Path(7),
		gen.Star(6),
		gen.Ring(8),
		gen.Complete(5),
		gen.ErdosRenyi(r, 40, 0.1),
		gen.ErdosRenyi(r, 60, 0.05),
	}
	if g, err := gen.BarabasiAlbert(r, 80, 2); err == nil {
		graphs = append(graphs, g)
	}
	for gi, g := range graphs {
		want := NestedLevels(g)
		got, err := DistributedNestedLevels(g)
		if err != nil {
			t.Fatalf("graph %d: %v", gi, err)
		}
		for v := range want {
			if got.Levels[v] != want[v] {
				t.Fatalf("graph %d node %d: distributed %d vs centralized %d",
					gi, v, got.Levels[v], want[v])
			}
		}
		if !got.Stats.Stable {
			t.Fatalf("graph %d: did not stabilize", gi)
		}
		// Two kernel rounds per level plus the quiet round.
		depth := Depth(want)
		if got.Stats.Rounds > 2*depth+2 {
			t.Errorf("graph %d: %d rounds for depth %d", gi, got.Stats.Rounds, depth)
		}
	}
}

func TestDistributedNestedLevelsEmpty(t *testing.T) {
	res, err := DistributedNestedLevels(graph.New(0))
	if err != nil || len(res.Levels) != 0 {
		t.Errorf("empty graph: %v, %v", res, err)
	}
}

func TestDistributedNestedLevelsIsolated(t *testing.T) {
	res, err := DistributedNestedLevels(graph.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for v, l := range res.Levels {
		if l != 1 {
			t.Errorf("isolated node %d level %d, want 1", v, l)
		}
	}
}
