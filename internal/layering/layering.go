// Package layering implements structural layering (§III-B): the embedded
// nested scale-free (NSF) hierarchy of [11] used by Fig. 3 and Fig. 7.
//
// A graph G satisfies SF when its degree distribution follows a power law;
// it satisfies NSF when G and every subgraph obtained by iteratively
// removing the local lowest-degree nodes also satisfy SF, with the standard
// deviation of the power-law exponents being o(1) ("similar in structure").
// Hierarchical levels are assigned by the adjusted-node-degree labeling of
// §IV-A: in each round, nodes that are local minima in terms of the number
// of *unassigned* neighbors receive the current level.
package layering

import (
	"errors"
	"math"

	"structura/internal/graph"
	"structura/internal/stats"
)

// DegreeLevels labels nodes by plain node degree (Fig. 7a): level 1 holds
// the globally smallest degree, and each distinct degree value above it
// gets the next level.
func DegreeLevels(g *graph.Graph) []int {
	n := g.N()
	levels := make([]int, n)
	if n == 0 {
		return levels
	}
	distinct := map[int]bool{}
	for v := 0; v < n; v++ {
		distinct[g.Degree(v)] = true
	}
	var vals []int
	for d := range distinct {
		vals = append(vals, d)
	}
	sortInts(vals)
	rank := make(map[int]int, len(vals))
	for i, d := range vals {
		rank[d] = i + 1
	}
	for v := 0; v < n; v++ {
		levels[v] = rank[g.Degree(v)]
	}
	return levels
}

// NestedLevels labels nodes by the NSF adjusted-degree process (Fig. 7b and
// §IV-A): the adjusted degree is the number of still-unassigned neighbors;
// per round, every node that is a local minimum of adjusted degree among
// its unassigned neighbors is assigned the current level.
func NestedLevels(g *graph.Graph) []int {
	n := g.N()
	levels := make([]int, n)
	assigned := make([]bool, n)
	remaining := n
	for level := 1; remaining > 0; level++ {
		adj := make([]int, n)
		for v := 0; v < n; v++ {
			if assigned[v] {
				continue
			}
			g.EachNeighbor(v, func(w int, _ float64) {
				if !assigned[w] {
					adj[v]++
				}
			})
		}
		var roundPicks []int
		for v := 0; v < n; v++ {
			if assigned[v] {
				continue
			}
			// Local minimum under lexicographic (adjusted degree, ID):
			// distinct IDs break ties, the paper's §IV symmetry-breaking
			// convention, and guarantee progress on regular graphs.
			isMin := true
			g.EachNeighbor(v, func(w int, _ float64) {
				if assigned[w] {
					return
				}
				if adj[w] < adj[v] || (adj[w] == adj[v] && w < v) {
					isMin = false
				}
			})
			if isMin {
				roundPicks = append(roundPicks, v)
			}
		}
		for _, v := range roundPicks {
			assigned[v] = true
			levels[v] = level
			remaining--
		}
	}
	return levels
}

// TopLevelNodes returns the nodes holding the maximum level.
func TopLevelNodes(levels []int) []int {
	maxL := 0
	for _, l := range levels {
		if l > maxL {
			maxL = l
		}
	}
	var out []int
	for v, l := range levels {
		if l == maxL && maxL > 0 {
			out = append(out, v)
		}
	}
	return out
}

// Depth returns the number of levels.
func Depth(levels []int) int {
	maxL := 0
	for _, l := range levels {
		if l > maxL {
			maxL = l
		}
	}
	return maxL
}

// PeelOnce removes the local lowest-degree nodes (one NSF peeling round)
// and returns the induced subgraph plus the mapping newID -> oldID.
func PeelOnce(g *graph.Graph) (*graph.Graph, []int) {
	n := g.N()
	keep := make(map[int]bool, n)
	for v := 0; v < n; v++ {
		keep[v] = true
	}
	for v := 0; v < n; v++ {
		isMin := true
		g.EachNeighbor(v, func(w int, _ float64) {
			if g.Degree(w) < g.Degree(v) || (g.Degree(w) == g.Degree(v) && w < v) {
				isMin = false
			}
		})
		if isMin {
			delete(keep, v)
		}
	}
	if len(keep) == 0 { // nothing but isolated local minima left
		return g.Clone(), identity(n)
	}
	return g.Subgraph(keep)
}

func identity(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// PeelToFraction iteratively peels local lowest-degree nodes until at most
// frac of the original nodes remain (Fig. 3b keeps the top 50% of peers),
// returning the subgraph, the mapping to original IDs, and the number of
// peeling rounds performed.
func PeelToFraction(g *graph.Graph, frac float64) (*graph.Graph, []int, int, error) {
	if frac <= 0 || frac > 1 {
		return nil, nil, 0, errors.New("layering: frac must be in (0,1]")
	}
	target := int(math.Ceil(frac * float64(g.N())))
	cur := g.Clone()
	ids := identity(g.N())
	rounds := 0
	for cur.N() > target {
		next, sub := PeelOnce(cur)
		if next.N() == cur.N() {
			break // peeling stalled (regular graph)
		}
		remap := make([]int, next.N())
		for i, old := range sub {
			remap[i] = ids[old]
		}
		cur, ids = next, remap
		rounds++
	}
	return cur, ids, rounds, nil
}

// SFReport is the scale-free assessment of one graph.
type SFReport struct {
	Fit stats.PowerLawFit
	N   int
	M   int
}

// CheckSF fits a power law to the graph's degree distribution.
func CheckSF(g *graph.Graph, xminMax int) (SFReport, error) {
	fit, err := stats.FitPowerLawAuto(g.Degrees(), xminMax)
	if err != nil {
		return SFReport{}, err
	}
	return SFReport{Fit: fit, N: g.N(), M: g.M()}, nil
}

// NSFReport aggregates the nested scale-free verification of a graph: the
// power-law fits of the original graph and every peeled subgraph down to
// minFraction, and the standard deviation of their exponents.
type NSFReport struct {
	Levels      []SFReport
	AlphaStdDev float64
	Rounds      int
}

// IsNSF applies the paper's two conditions with the given exponent-spread
// tolerance standing in for "o(1)".
func (r NSFReport) IsNSF(tol float64) bool {
	return len(r.Levels) > 1 && r.AlphaStdDev <= tol
}

// CheckNSF peels the graph round by round down to minFraction of its nodes,
// fitting a power law at each stage.
func CheckNSF(g *graph.Graph, minFraction float64, xminMax int) (NSFReport, error) {
	if minFraction <= 0 || minFraction > 1 {
		return NSFReport{}, errors.New("layering: minFraction must be in (0,1]")
	}
	var rep NSFReport
	target := int(math.Ceil(minFraction * float64(g.N())))
	cur := g.Clone()
	for {
		sf, err := CheckSF(cur, xminMax)
		if err != nil {
			return NSFReport{}, err
		}
		rep.Levels = append(rep.Levels, sf)
		if cur.N() <= target {
			break
		}
		next, _ := PeelOnce(cur)
		if next.N() == cur.N() {
			break
		}
		cur = next
		rep.Rounds++
	}
	alphas := make([]float64, len(rep.Levels))
	for i, l := range rep.Levels {
		alphas[i] = l.Fit.Alpha
	}
	rep.AlphaStdDev = stats.StdDev(alphas)
	return rep, nil
}

// PushPullCost models pub-sub over the level hierarchy: a publication is
// pushed from the publisher up through increasing levels to the top, and a
// subscriber pulls it down. The returned cost is the number of level steps
// travelled: (top-level - level(pub)) + (top-level - level(sub)); the paper
// notes push moves up and pull comes down the layered structure.
func PushPullCost(levels []int, publisher, subscriber int) (int, error) {
	if publisher < 0 || publisher >= len(levels) || subscriber < 0 || subscriber >= len(levels) {
		return 0, errors.New("layering: node out of range")
	}
	top := Depth(levels)
	return (top - levels[publisher]) + (top - levels[subscriber]), nil
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
