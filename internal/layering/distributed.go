package layering

import (
	"errors"

	"structura/internal/graph"
	"structura/internal/runtime"
)

// The paper (§III-B): "The hierarchical levels can be maintained by a
// labeling scheme ... that assigns each node a level called height." This
// file runs the nested (adjusted-degree) labeling of §IV-A as an actual
// distributed labeling process on the synchronous kernel. Each level takes
// two kernel rounds: in the first, every unassigned node recomputes its
// adjusted degree from its neighbors' assignment flags; in the second, the
// local (adjusted degree, ID) minima self-assign the current level — the
// NSF process with its cost measured in kernel rounds and messages.

// DistributedLevelsResult carries the converged levels and the kernel cost.
type DistributedLevelsResult struct {
	Levels []int
	Stats  runtime.Stats
}

// DistributedNestedLevels computes NestedLevels on the round-synchronous
// kernel. The result equals the centralized NestedLevels; Stats.Rounds is
// roughly twice the hierarchy depth (two phases per level). Extra kernel
// options (observers, parallelism) are passed through to runtime.Run.
func DistributedNestedLevels(g *graph.Graph, opts ...runtime.Option) (DistributedLevelsResult, error) {
	n := g.N()
	type state struct {
		level   int  // 0 = unassigned
		adj     int  // adjusted degree, refreshed in phase A
		current int  // level being competed for
		assign  bool // true in phase B (assignment), false in phase A
	}
	// Freeze once: neighbor IDs come from zero-copy CSR views in the same
	// adjacency order as the kernel's neighbor-state slice.
	csr := g.Freeze()
	states, stats, err := runtime.RunCSR(csr,
		func(v int) state {
			// Start in phase B with adj = plain degree: the first
			// assignment round matches the centralized round 1.
			return state{adj: csr.Degree(v), current: 1, assign: true}
		},
		func(v int, self state, nbrs []state) (state, bool) {
			if self.level != 0 {
				return self, false
			}
			if self.assign {
				// Phase B: compare snapshot (adj, ID) with unassigned
				// neighbors; minima take the current level.
				ids := csr.Neighbors(v)
				isMin := true
				for i, nb := range nbrs {
					if nb.level != 0 {
						continue
					}
					if nb.adj < self.adj || (nb.adj == self.adj && int(ids[i]) < v) {
						isMin = false
						break
					}
				}
				if isMin {
					self.level = self.current
					return self, true
				}
				self.assign = false
				self.current++
				return self, true
			}
			// Phase A: refresh the adjusted degree from the snapshot taken
			// right after the previous assignment phase.
			adj := 0
			for _, nb := range nbrs {
				if nb.level == 0 {
					adj++
				}
			}
			self.adj = adj
			self.assign = true
			return self, true
		}, append([]runtime.Option{runtime.WithMaxRounds(4*n + 8)}, opts...)...)
	if err != nil {
		return DistributedLevelsResult{}, err
	}
	if !stats.Stable {
		return DistributedLevelsResult{}, errors.New("layering: distributed labeling did not stabilize")
	}
	res := DistributedLevelsResult{Levels: make([]int, n), Stats: stats}
	for v, s := range states {
		res.Levels[v] = s.level
	}
	return res, nil
}
