package layering

import (
	"testing"

	"structura/internal/gen"
	"structura/internal/graph"
	"structura/internal/stats"
)

func TestPubSubOnStar(t *testing.T) {
	g := gen.Star(6)
	levels := NestedLevels(g) // center at the top
	ps, err := NewPubSub(g, levels)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Rendezvous() != 0 {
		t.Fatalf("rendezvous = %d, want the center", ps.Rendezvous())
	}
	push, err := ps.PushPath(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(push) != 2 || push[0] != 3 || push[1] != 0 {
		t.Errorf("push = %v, want [3 0]", push)
	}
	pull, err := ps.PullPath(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pull) != 2 || pull[0] != 0 || pull[1] != 5 {
		t.Errorf("pull = %v, want [0 5]", pull)
	}
	route, hops, err := ps.Deliver(3, 5)
	if err != nil || hops != 2 {
		t.Errorf("deliver = %v (%d hops), %v; want 2 hops via center", route, hops, err)
	}
	// Publisher == rendezvous: push is trivial.
	own, err := ps.PushPath(0)
	if err != nil || len(own) != 1 {
		t.Errorf("push from rendezvous = %v, %v", own, err)
	}
}

func TestPubSubValidation(t *testing.T) {
	g := gen.Star(4)
	levels := NestedLevels(g)
	if _, err := NewPubSub(graph.New(0), nil); err == nil {
		t.Error("empty overlay should error")
	}
	if _, err := NewPubSub(g, []int{1}); err == nil {
		t.Error("levels mismatch should error")
	}
	if _, err := NewPubSub(graph.New(3), []int{1, 1, 1}); err == nil {
		t.Error("disconnected overlay should error")
	}
	ps, err := NewPubSub(g, levels)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ps.PushPath(-1); err == nil {
		t.Error("bad publisher should error")
	}
}

func TestPubSubOnScaleFreeOverlay(t *testing.T) {
	r := stats.NewRand(1)
	g, err := gen.BarabasiAlbert(r, 600, 2)
	if err != nil {
		t.Fatal(err)
	}
	levels := NestedLevels(g)
	ps, err := NewPubSub(g, levels)
	if err != nil {
		t.Fatal(err)
	}
	// Every publication must reach the rendezvous and every subscriber.
	var totalHops, pairs int
	for trial := 0; trial < 200; trial++ {
		pub, sub := r.Intn(g.N()), r.Intn(g.N())
		route, hops, err := ps.Deliver(pub, sub)
		if err != nil {
			t.Fatalf("deliver %d->%d: %v", pub, sub, err)
		}
		if route[0] != pub || route[len(route)-1] != sub {
			t.Fatalf("route endpoints wrong: %v", route)
		}
		// Every step must be a real overlay edge.
		for i := 1; i < len(route); i++ {
			if !g.HasEdge(route[i-1], route[i]) {
				t.Fatalf("route step %d-%d is not an edge", route[i-1], route[i])
			}
		}
		totalHops += hops
		pairs++
	}
	avg := float64(totalHops) / float64(pairs)
	// Rendezvous routing should stay near the diameter scale, far below
	// flooding the whole overlay.
	diam, _ := g.Diameter()
	if avg > 3*float64(diam) {
		t.Errorf("average delivery hops %.1f vs diameter %d; hierarchy not helping", avg, diam)
	}
}

func TestPushPrefersClimbing(t *testing.T) {
	// Path 0-1-2-3-4: nested levels peak at node 2. A push from 0 must
	// strictly climb levels on its way to the rendezvous.
	g := gen.Path(5)
	levels := NestedLevels(g)
	ps, err := NewPubSub(g, levels)
	if err != nil {
		t.Fatal(err)
	}
	push, err := ps.PushPath(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(push); i++ {
		if levels[push[i]] <= levels[push[i-1]] {
			t.Fatalf("push did not climb at step %d of %v (levels %v)", i, push, levels)
		}
	}
}
