package reversal

import (
	"errors"
	"fmt"

	"structura/internal/graph"
)

// BinaryLR implements the binary-link-label link reversal of [24]
// (Charron-Bost et al.): every link carries a label in {0,1}; a
// non-destination sink i applies
//
//	Rule 1: if at least one incident link is labeled 0, reverse exactly the
//	        0-labeled incident links and flip the labels of ALL incident
//	        links;
//	Rule 2: if all incident links are labeled 1, reverse all incident links
//	        and leave labels unchanged.
//
// Initializing all labels to 1 makes the system execute full reversal
// (Rule 2 only); initializing to 0 yields partial reversal — the
// unification the paper highlights.
type BinaryLR struct {
	n      int
	dest   int
	nbrs   [][]int
	toward map[[2]int]int // link {min,max} -> endpoint the link points TO
	label  map[[2]int]int // link label in {0,1}
}

func linkKey(u, v int) [2]int {
	if u < v {
		return [2]int{u, v}
	}
	return [2]int{v, u}
}

// NewBinaryLR builds the labeled digraph from a support graph, an initial
// orientation given by alpha heights (higher points to lower, ties by ID,
// destination strictly lowest), and a uniform initial label.
func NewBinaryLR(support *graph.Graph, alphas []int, dest int, initialLabel int) (*BinaryLR, error) {
	if support.Directed() {
		return nil, errors.New("reversal: support graph must be undirected")
	}
	n := support.N()
	if len(alphas) != n {
		return nil, fmt.Errorf("reversal: %d heights for %d nodes", len(alphas), n)
	}
	if dest < 0 || dest >= n {
		return nil, errors.New("reversal: destination out of range")
	}
	if initialLabel != 0 && initialLabel != 1 {
		return nil, errors.New("reversal: label must be 0 or 1")
	}
	b := &BinaryLR{
		n:      n,
		dest:   dest,
		nbrs:   make([][]int, n),
		toward: make(map[[2]int]int),
		label:  make(map[[2]int]int),
	}
	higher := func(u, v int) bool {
		if alphas[u] != alphas[v] {
			return alphas[u] > alphas[v]
		}
		return u > v
	}
	for _, e := range support.Edges() {
		b.nbrs[e.From] = append(b.nbrs[e.From], e.To)
		b.nbrs[e.To] = append(b.nbrs[e.To], e.From)
		k := linkKey(e.From, e.To)
		if higher(e.From, e.To) {
			b.toward[k] = e.To
		} else {
			b.toward[k] = e.From
		}
		b.label[k] = initialLabel
	}
	return b, nil
}

// PointsTo reports whether the link between u and v is oriented u -> v.
func (b *BinaryLR) PointsTo(u, v int) bool {
	to, ok := b.toward[linkKey(u, v)]
	return ok && to == v
}

// Label returns the label of link (u,v), or -1 if absent.
func (b *BinaryLR) Label(u, v int) int {
	l, ok := b.label[linkKey(u, v)]
	if !ok {
		return -1
	}
	return l
}

// RemoveLink deletes the link, reporting whether it existed.
func (b *BinaryLR) RemoveLink(u, v int) bool {
	k := linkKey(u, v)
	if _, ok := b.toward[k]; !ok {
		return false
	}
	delete(b.toward, k)
	delete(b.label, k)
	b.nbrs[u] = removeFrom(b.nbrs[u], v)
	b.nbrs[v] = removeFrom(b.nbrs[v], u)
	return true
}

func removeFrom(xs []int, v int) []int {
	out := xs[:0]
	for _, x := range xs {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

// IsSink reports whether v is a non-destination node with incident links,
// all incoming.
func (b *BinaryLR) IsSink(v int) bool {
	if v == b.dest || len(b.nbrs[v]) == 0 {
		return false
	}
	for _, w := range b.nbrs[v] {
		if b.PointsTo(v, w) {
			return false
		}
	}
	return true
}

// Sinks lists all current sinks.
func (b *BinaryLR) Sinks() []int {
	var out []int
	for v := 0; v < b.n; v++ {
		if b.IsSink(v) {
			out = append(out, v)
		}
	}
	return out
}

// Step performs one synchronous round of Rule 1 / Rule 2 at every sink,
// returning the sinks that acted. Adjacent nodes cannot both be sinks, so
// per-round link updates never conflict.
func (b *BinaryLR) Step() []int {
	sinks := b.Sinks()
	for _, i := range sinks {
		hasZero := false
		for _, w := range b.nbrs[i] {
			if b.label[linkKey(i, w)] == 0 {
				hasZero = true
				break
			}
		}
		for _, w := range b.nbrs[i] {
			k := linkKey(i, w)
			if hasZero {
				// Rule 1: reverse 0-links, flip all labels.
				if b.label[k] == 0 {
					b.toward[k] = w // was pointing to i; now away
				}
				b.label[k] = 1 - b.label[k]
			} else {
				// Rule 2: reverse everything, labels unchanged.
				b.toward[k] = w
			}
		}
	}
	return sinks
}

// Stabilize runs Step until no sinks remain or maxRounds elapses.
func (b *BinaryLR) Stabilize(maxRounds int) Stats {
	st := Stats{PerNode: make(map[int]int)}
	for r := 0; r < maxRounds; r++ {
		acted := b.Step()
		if len(acted) == 0 {
			st.Converged = true
			return st
		}
		st.Rounds++
		st.NodeReversals += len(acted)
		for _, v := range acted {
			st.PerNode[v]++
		}
	}
	st.Converged = len(b.Sinks()) == 0
	return st
}

// IsDestinationOriented reports whether every node with links reaches the
// destination along the current orientation and no sinks remain. Because
// orientations here are explicit, it also guards against cycles.
func (b *BinaryLR) IsDestinationOriented() bool {
	if len(b.Sinks()) > 0 {
		return false
	}
	reach := make([]bool, b.n)
	reach[b.dest] = true
	queue := []int{b.dest}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range b.nbrs[v] {
			if !reach[w] && b.PointsTo(w, v) {
				reach[w] = true
				queue = append(queue, w)
			}
		}
	}
	for v := 0; v < b.n; v++ {
		if len(b.nbrs[v]) > 0 && !reach[v] {
			return false
		}
	}
	return true
}
