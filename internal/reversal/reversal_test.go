package reversal

import (
	"testing"

	"structura/internal/gen"
	"structura/internal/graph"
)

const (
	nodeA = 0
	nodeB = 1
	nodeC = 2
	nodeD = 3 // destination in Fig. 4
)

func TestHeightLess(t *testing.T) {
	tests := []struct {
		a, b Height
		want bool
	}{
		{Height{1, 0, 0}, Height{2, 0, 0}, true},
		{Height{2, 0, 0}, Height{1, 0, 0}, false},
		{Height{1, -1, 0}, Height{1, 0, 0}, true},
		{Height{1, 0, 0}, Height{1, 0, 1}, true},
		{Height{1, 0, 1}, Height{1, 0, 1}, false},
	}
	for _, tc := range tests {
		if got := tc.a.Less(tc.b); got != tc.want {
			t.Errorf("%v.Less(%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestNewNetworkValidation(t *testing.T) {
	g := gen.Path(3)
	if _, err := NewNetwork(g, []int{1, 2}, 0, Full); err == nil {
		t.Error("wrong-length heights should error")
	}
	if _, err := NewNetwork(g, []int{1, 2, 3}, 9, Full); err == nil {
		t.Error("bad destination should error")
	}
	if _, err := NewNetwork(g, []int{0, 2, 0}, 0, Full); err == nil {
		t.Error("non-unique minimum should error")
	}
	if _, err := NewNetwork(g, []int{0, 1, 2}, 0, Mode(9)); err == nil {
		t.Error("bad mode should error")
	}
	if _, err := NewNetwork(graph.NewDirected(3), []int{0, 1, 2}, 0, Full); err == nil {
		t.Error("directed support should error")
	}
}

func TestFig4InitialDAG(t *testing.T) {
	net, err := Fig4Network(Full)
	if err != nil {
		t.Fatal(err)
	}
	if !net.IsDestinationOriented() {
		t.Fatal("Fig. 4(a) must start destination-oriented")
	}
	// Orientation: A->D, B->A, C->B... wait heights A=1,B=2,C=3: C->B? No:
	// links are A-D, A-B, B-C, C-D; so B(2)->A(1), C(3)->B(2), C(3)->D(0).
	if !net.PointsTo(nodeA, nodeD) || !net.PointsTo(nodeB, nodeA) || !net.PointsTo(nodeC, nodeD) {
		t.Error("initial orientation wrong")
	}
	// Any-path routing works without a routing table.
	for src := 0; src < 4; src++ {
		path, err := net.Route(src)
		if err != nil {
			t.Fatalf("route from %d: %v", src, err)
		}
		if path[len(path)-1] != nodeD {
			t.Fatalf("route from %d ends at %d", src, path[len(path)-1])
		}
	}
}

func TestFig4FullReversalCascade(t *testing.T) {
	// The paper's scenario: break (A, D); A becomes a sink and a full
	// reversal cascade follows in which A reverses more than once
	// ("each node may be involved in multiple rounds of reversals, like
	// node A in Fig. 4").
	net, err := Fig4Network(Full)
	if err != nil {
		t.Fatal(err)
	}
	if !net.RemoveLink(nodeA, nodeD) {
		t.Fatal("link (A,D) should exist")
	}
	if !net.IsSink(nodeA) {
		t.Fatal("A must become a sink after the break")
	}
	st := net.Stabilize(100)
	if !st.Converged {
		t.Fatal("full reversal must converge")
	}
	if !net.IsDestinationOriented() {
		t.Fatal("result must be destination-oriented (Fig. 4e)")
	}
	if st.PerNode[nodeA] < 2 {
		t.Errorf("A reversed %d times, want >= 2 as in the paper", st.PerNode[nodeA])
	}
	if st.NodeReversals != 3 || st.Rounds != 3 {
		t.Errorf("cascade: %d reversals in %d rounds (A,B,A expected)", st.NodeReversals, st.Rounds)
	}
	// Final orientation must route A -> B -> C -> D.
	path, err := net.Route(nodeA)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{nodeA, nodeB, nodeC, nodeD}
	for i := range want {
		if i >= len(path) || path[i] != want[i] {
			t.Fatalf("route = %v, want %v", path, want)
		}
	}
}

func TestFig4PartialReversal(t *testing.T) {
	net, err := Fig4Network(Partial)
	if err != nil {
		t.Fatal(err)
	}
	net.RemoveLink(nodeA, nodeD)
	st := net.Stabilize(100)
	if !st.Converged || !net.IsDestinationOriented() {
		t.Fatal("partial reversal must also converge to a destination-oriented DAG")
	}
}

func TestReversalQuadraticOnRing(t *testing.T) {
	// O(n^2) total reversals (§IV-B): on a ring with the heights increasing
	// away from the destination, breaking the short link triggers a
	// quadratic cascade. Verify super-linear growth.
	counts := map[int]int{}
	for _, n := range []int{8, 16, 32} {
		g := gen.Ring(n)
		alphas := make([]int, n)
		for i := 1; i < n; i++ {
			alphas[i] = i
		}
		net, err := NewNetwork(g, alphas, 0, Full)
		if err != nil {
			t.Fatal(err)
		}
		if !net.IsDestinationOriented() {
			t.Fatal("ring must start destination-oriented")
		}
		net.RemoveLink(0, 1)
		st := net.Stabilize(100000)
		if !st.Converged {
			t.Fatalf("n=%d did not converge", n)
		}
		counts[n] = st.NodeReversals
	}
	// Quadratic growth: doubling n should roughly quadruple reversals.
	if r := float64(counts[16]) / float64(counts[8]); r < 2.5 {
		t.Errorf("growth 8->16 = %v, want near 4 (quadratic)", r)
	}
	if r := float64(counts[32]) / float64(counts[16]); r < 2.5 {
		t.Errorf("growth 16->32 = %v, want near 4 (quadratic)", r)
	}
}

func TestPartialBeatsFullOnRing(t *testing.T) {
	// "Partial link reversal improves performance by reversing a subset of
	// links at each reversal" — compare work on the same topology.
	n := 24
	build := func(mode Mode) *Network {
		g := gen.Ring(n)
		alphas := make([]int, n)
		for i := 1; i < n; i++ {
			alphas[i] = i
		}
		net, err := NewNetwork(g, alphas, 0, mode)
		if err != nil {
			t.Fatal(err)
		}
		net.RemoveLink(0, 1)
		return net
	}
	full := build(Full).Stabilize(100000)
	partial := build(Partial).Stabilize(100000)
	if !full.Converged || !partial.Converged {
		t.Fatal("both must converge")
	}
	if partial.NodeReversals > full.NodeReversals {
		t.Errorf("partial (%d reversals) should not exceed full (%d) here",
			partial.NodeReversals, full.NodeReversals)
	}
}

func TestDisconnectedComponentNeverStabilizes(t *testing.T) {
	// Known behavior: a component cut off from the destination keeps
	// reversing forever; Stabilize must report non-convergence.
	g := gen.Path(3) // 0-1-2, dest 0
	net, err := NewNetwork(g, []int{0, 1, 2}, 0, Full)
	if err != nil {
		t.Fatal(err)
	}
	net.RemoveLink(0, 1) // 1-2 now isolated from dest
	st := net.Stabilize(50)
	if st.Converged {
		t.Error("disconnected component must not converge")
	}
	if st.Rounds != 50 {
		t.Errorf("should have run all %d rounds, ran %d", 50, st.Rounds)
	}
}

func TestRouteErrors(t *testing.T) {
	net, _ := Fig4Network(Full)
	if _, err := net.Route(-1); err == nil {
		t.Error("bad src should error")
	}
	net.RemoveLink(nodeA, nodeD)
	if _, err := net.Route(nodeA); err == nil {
		t.Error("routing from a sink should error before repair")
	}
}

// --- binary-labeled link reversal ---------------------------------------

func fig4Binary(t *testing.T, label int) *BinaryLR {
	t.Helper()
	g := graph.New(4)
	for _, e := range [][2]int{{0, 3}, {0, 1}, {1, 2}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	b, err := NewBinaryLR(g, []int{1, 2, 3, 0}, 3, label)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewBinaryLRValidation(t *testing.T) {
	g := gen.Path(3)
	if _, err := NewBinaryLR(g, []int{0, 1}, 0, 1); err == nil {
		t.Error("wrong-length heights should error")
	}
	if _, err := NewBinaryLR(g, []int{0, 1, 2}, 9, 1); err == nil {
		t.Error("bad dest should error")
	}
	if _, err := NewBinaryLR(g, []int{0, 1, 2}, 0, 2); err == nil {
		t.Error("bad label should error")
	}
	if _, err := NewBinaryLR(graph.NewDirected(2), []int{0, 1}, 0, 1); err == nil {
		t.Error("directed support should error")
	}
}

func TestBinaryAllOnesEqualsFullReversal(t *testing.T) {
	// [24]: all labels 1 + Rule 2 only = full link reversal. The cascade
	// on the Fig. 4 scenario must match the height-based run: A, B, A.
	b := fig4Binary(t, 1)
	b.RemoveLink(nodeA, nodeD)
	st := b.Stabilize(100)
	if !st.Converged || !b.IsDestinationOriented() {
		t.Fatal("binary full reversal must converge to destination-oriented")
	}
	if st.NodeReversals != 3 || st.PerNode[nodeA] != 2 || st.PerNode[nodeB] != 1 {
		t.Errorf("cascade = %+v, want A twice and B once", st.PerNode)
	}
	for _, tu := range [][2]int{{nodeA, nodeB}, {nodeB, nodeC}, {nodeC, nodeD}} {
		if b.Label(tu[0], tu[1]) != 1 {
			t.Errorf("Rule 2 must leave labels at 1, link %v is %d", tu, b.Label(tu[0], tu[1]))
		}
	}
}

func TestBinaryAllZerosIsPartialReversal(t *testing.T) {
	b := fig4Binary(t, 0)
	b.RemoveLink(nodeA, nodeD)
	st := b.Stabilize(100)
	if !st.Converged || !b.IsDestinationOriented() {
		t.Fatal("binary partial reversal must converge")
	}
	if st.NodeReversals == 0 {
		t.Error("some reversals must have occurred")
	}
}

func TestBinaryRule1FlipsLabels(t *testing.T) {
	// Mixed labels at a sink: only 0-links reverse, all labels flip.
	g := gen.Path(3) // 1 is between 0 and 2; make 1 the sink
	b, err := NewBinaryLR(g, []int{1, 0, 2}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Orientation: 0(1) -> 1(0); 2(2) -> 1(0): node 1 is dest; no sinks...
	// instead make dest = 2 so node 1 with links to 0 and 2 can sink.
	b2, err := NewBinaryLR(g, []int{2, 1, 0}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 0(2)->1(1)->2(0): no sinks initially.
	if len(b2.Sinks()) != 0 {
		t.Fatalf("unexpected sinks %v", b2.Sinks())
	}
	b2.RemoveLink(1, 2)
	// Now 1 has only the incoming link from 0, labeled 0: Rule 1 reverses
	// it and flips its label to 1.
	if !b2.IsSink(1) {
		t.Fatal("1 must be a sink")
	}
	b2.Step()
	if !b2.PointsTo(1, 0) {
		t.Error("0-labeled link must have reversed")
	}
	if b2.Label(0, 1) != 1 {
		t.Errorf("label must flip to 1, got %d", b2.Label(0, 1))
	}
	_ = b
}

func TestBinaryOnRingMatchesQuadratic(t *testing.T) {
	for _, n := range []int{8, 16} {
		g := gen.Ring(n)
		alphas := make([]int, n)
		for i := 1; i < n; i++ {
			alphas[i] = i
		}
		b, err := NewBinaryLR(g, alphas, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		b.RemoveLink(0, 1)
		st := b.Stabilize(100000)
		if !st.Converged || !b.IsDestinationOriented() {
			t.Fatalf("n=%d binary full reversal failed", n)
		}
		// Must match the height-based full reversal count.
		g2 := gen.Ring(n)
		net, err := NewNetwork(g2, alphas, 0, Full)
		if err != nil {
			t.Fatal(err)
		}
		net.RemoveLink(0, 1)
		st2 := net.Stabilize(100000)
		if st.NodeReversals != st2.NodeReversals {
			t.Errorf("n=%d: binary %d reversals vs height-based %d",
				n, st.NodeReversals, st2.NodeReversals)
		}
	}
}

func TestBinaryRemoveLink(t *testing.T) {
	b := fig4Binary(t, 1)
	if !b.RemoveLink(nodeA, nodeD) {
		t.Error("existing link should remove")
	}
	if b.RemoveLink(nodeA, nodeD) {
		t.Error("second removal should report false")
	}
	if b.Label(nodeA, nodeD) != -1 {
		t.Error("label of removed link should be -1")
	}
}

func TestStepNoSinksNoop(t *testing.T) {
	net, _ := Fig4Network(Full)
	if acted := net.Step(); acted != nil {
		t.Errorf("no sinks: Step should act on nobody, got %v", acted)
	}
	b := fig4Binary(t, 1)
	if acted := b.Step(); len(acted) != 0 {
		t.Errorf("no sinks: binary Step acted on %v", acted)
	}
}
