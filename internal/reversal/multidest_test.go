package reversal

import (
	"testing"

	"structura/internal/gen"
	"structura/internal/graph"
	"structura/internal/stats"
)

func TestMultiNetworkBasics(t *testing.T) {
	g := gen.Grid(4, 4)
	m, err := NewMultiNetwork(g, []int{0, 15, 5}, Full)
	if err != nil {
		t.Fatal(err)
	}
	dests := m.Destinations()
	if len(dests) != 3 || dests[0] != 0 || dests[2] != 15 {
		t.Fatalf("destinations = %v", dests)
	}
	if !m.AllDestinationOriented() {
		t.Fatal("fresh multi-network must be destination-oriented everywhere")
	}
	// Routing works toward every destination.
	for _, d := range dests {
		net, err := m.Network(d)
		if err != nil {
			t.Fatal(err)
		}
		for src := 0; src < g.N(); src++ {
			path, err := net.Route(src)
			if err != nil {
				t.Fatalf("dest %d src %d: %v", d, src, err)
			}
			if path[len(path)-1] != d {
				t.Fatalf("dest %d src %d: route ends at %d", d, src, path[len(path)-1])
			}
		}
	}
	if _, err := m.Network(7); err == nil {
		t.Error("unmaintained destination should error")
	}
}

func TestMultiNetworkValidation(t *testing.T) {
	g := gen.Grid(3, 3)
	if _, err := NewMultiNetwork(g, nil, Full); err == nil {
		t.Error("no destinations should error")
	}
	if _, err := NewMultiNetwork(g, []int{0, 0}, Full); err == nil {
		t.Error("duplicate destinations should error")
	}
	if _, err := NewMultiNetwork(g, []int{99}, Full); err == nil {
		t.Error("out-of-range destination should error")
	}
	if _, err := NewMultiNetwork(graph.NewDirected(4), []int{0}, Full); err == nil {
		t.Error("directed support should error")
	}
	if _, err := NewMultiNetwork(graph.New(4), []int{0}, Full); err == nil {
		t.Error("disconnected support should error")
	}
}

func TestMultiNetworkFailLink(t *testing.T) {
	r := stats.NewRand(1)
	g := gen.Grid(5, 5)
	dests := []int{0, 24, 12}
	m, err := NewMultiNetwork(g, dests, Full)
	if err != nil {
		t.Fatal(err)
	}
	// Fail a few random links that keep the grid connected.
	failures := 0
	for trial := 0; trial < 10 && failures < 4; trial++ {
		es := m.support.Edges()
		e := es[r.Intn(len(es))]
		work := m.support.Clone()
		work.RemoveEdge(e.From, e.To)
		if !work.Connected() {
			continue
		}
		stats, err := m.FailLink(e.From, e.To, 0)
		if err != nil {
			t.Fatal(err)
		}
		failures++
		if len(stats) != len(dests) {
			t.Fatalf("stats for %d destinations, want %d", len(stats), len(dests))
		}
		if !m.AllDestinationOriented() {
			t.Fatal("repair incomplete")
		}
		// Repair cost is per-destination: a failure far from one
		// destination's DAG flow may cost that DAG zero reversals.
		for d, st := range stats {
			if !st.Converged {
				t.Fatalf("destination %d did not converge", d)
			}
		}
	}
	if failures == 0 {
		t.Fatal("no usable link failures drawn")
	}
	if _, err := m.FailLink(0, 24, 0); err == nil {
		t.Error("failing a non-link should error")
	}
}

func TestMultiNetworkIndependentRepairCosts(t *testing.T) {
	// The §III-B challenge in numbers: k destinations means k repairs per
	// failure; total work is the sum over DAGs.
	g := gen.Ring(16)
	m, err := NewMultiNetwork(g, []int{0, 8}, Full)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := m.FailLink(3, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for _, st := range stats {
		total += st.NodeReversals
	}
	if total == 0 {
		t.Error("a ring link failure must trigger repairs in at least one DAG")
	}
	if !m.AllDestinationOriented() {
		t.Error("both DAGs must be repaired")
	}
}
