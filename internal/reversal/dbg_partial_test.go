package reversal

import (
	"fmt"
	"testing"

	"structura/internal/gen"
)

func TestDebugPartialRing(t *testing.T) {
	n := 8
	alphas := make([]int, n)
	for i := 1; i < n; i++ {
		alphas[i] = i
	}
	net, _ := NewNetwork(gen.Ring(n), alphas, 0, Partial)
	net.RemoveLink(0, 1)
	for r := 0; r < 12; r++ {
		acted := net.Step()
		if len(acted) == 0 {
			break
		}
		hs := net.Heights()
		fmt.Printf("round %d acted=%v heights=", r, acted)
		for _, h := range hs {
			fmt.Printf("(%d,%d)", h.Alpha, h.Beta)
		}
		fmt.Println()
	}
}
