// Package reversal implements the man-made layering of §III-B and §IV-B:
// destination-oriented DAGs maintained by node heights, repaired after link
// failures by link reversal — full reversal and partial reversal
// (Gafni–Bertsekas [16]), plus the binary-link-label unification of
// Charron-Bost et al. [24] whose Rule 1/Rule 2 subsume both.
//
// Heights order nodes totally (ties broken by node ID, giving the paper's
// "distinct level" requirement); every link points from the higher endpoint
// to the lower one, and the destination holds the globally lowest height, 0.
package reversal

import (
	"errors"
	"fmt"
	"sort"

	"structura/internal/graph"
)

// Height is a node's level: compared lexicographically (Alpha, Beta, ID).
// Full reversal uses Alpha only; partial reversal adjusts Beta as well.
type Height struct {
	Alpha int
	Beta  int
	ID    int
}

// Less orders heights lexicographically.
func (h Height) Less(o Height) bool {
	if h.Alpha != o.Alpha {
		return h.Alpha < o.Alpha
	}
	if h.Beta != o.Beta {
		return h.Beta < o.Beta
	}
	return h.ID < o.ID
}

// Mode selects the reversal discipline.
type Mode int

// Reversal modes.
const (
	Full Mode = iota + 1
	Partial
)

// Network is an undirected support graph with per-node heights and a fixed
// destination; link orientation is derived from heights.
type Network struct {
	g    *graph.Graph
	h    []Height
	dest int
	mode Mode
}

// NewNetwork builds a height-oriented network over support (undirected),
// with the given initial Alpha heights (Beta starts 0) and destination.
// The destination's height must be the unique minimum.
func NewNetwork(support *graph.Graph, alphas []int, dest int, mode Mode) (*Network, error) {
	if support.Directed() {
		return nil, errors.New("reversal: support graph must be undirected")
	}
	n := support.N()
	if len(alphas) != n {
		return nil, fmt.Errorf("reversal: %d heights for %d nodes", len(alphas), n)
	}
	if dest < 0 || dest >= n {
		return nil, errors.New("reversal: destination out of range")
	}
	if mode != Full && mode != Partial {
		return nil, errors.New("reversal: unknown mode")
	}
	net := &Network{g: support.Clone(), h: make([]Height, n), dest: dest, mode: mode}
	for v := 0; v < n; v++ {
		net.h[v] = Height{Alpha: alphas[v], ID: v}
	}
	for v := 0; v < n; v++ {
		if v != dest && alphas[v] <= alphas[dest] {
			return nil, fmt.Errorf("reversal: destination level must be the strict minimum (node %d)", v)
		}
	}
	return net, nil
}

// Heights returns a copy of the node heights.
func (net *Network) Heights() []Height {
	return append([]Height(nil), net.h...)
}

// Destination returns the destination node.
func (net *Network) Destination() int { return net.dest }

// PointsTo reports whether the (existing) link between u and v is oriented
// u -> v, i.e. u is higher.
func (net *Network) PointsTo(u, v int) bool {
	return net.g.HasEdge(u, v) && net.h[v].Less(net.h[u])
}

// OutDegree counts v's outgoing links under the height orientation.
func (net *Network) OutDegree(v int) int {
	var d int
	net.g.EachNeighbor(v, func(w int, _ float64) {
		if net.h[w].Less(net.h[v]) {
			d++
		}
	})
	return d
}

// IsSink reports whether v is a non-destination node with no outgoing link
// and at least one incident link.
func (net *Network) IsSink(v int) bool {
	return v != net.dest && net.g.Degree(v) > 0 && net.OutDegree(v) == 0
}

// Sinks lists all current sinks.
func (net *Network) Sinks() []int {
	var out []int
	for v := 0; v < net.g.N(); v++ {
		if net.IsSink(v) {
			out = append(out, v)
		}
	}
	return out
}

// IsDestinationOriented reports whether every node with any incident link
// can reach the destination along oriented links (equivalently: no sinks,
// plus reachability — acyclicity is automatic from heights).
func (net *Network) IsDestinationOriented() bool {
	if len(net.Sinks()) > 0 {
		return false
	}
	// Follow orientation: BFS on reversed edges from dest.
	n := net.g.N()
	reach := make([]bool, n)
	reach[net.dest] = true
	queue := []int{net.dest}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		net.g.EachNeighbor(v, func(w int, _ float64) {
			if !reach[w] && net.h[v].Less(net.h[w]) { // w -> v
				reach[w] = true
				queue = append(queue, w)
			}
		})
	}
	for v := 0; v < n; v++ {
		if net.g.Degree(v) > 0 && !reach[v] {
			return false
		}
	}
	return true
}

// RemoveLink deletes the link (u,v), reporting whether it existed.
func (net *Network) RemoveLink(u, v int) bool {
	return net.g.RemoveEdge(u, v)
}

// AddLink inserts the support link (u,v). Heights orient it immediately
// (from the higher endpoint to the lower), so no height adjustment is
// needed: a new link can cure a sink but never create one.
func (net *Network) AddLink(u, v int) error {
	return net.g.AddEdge(u, v)
}

// Step performs one synchronous round: every current sink reverses its
// links (full or partial discipline). It returns the sinks that acted.
// Adjacent nodes can never both be sinks, so simultaneous action is safe.
func (net *Network) Step() []int {
	sinks := net.Sinks()
	if len(sinks) == 0 {
		return nil
	}
	updates := make([]Height, len(sinks))
	for i, u := range sinks {
		switch net.mode {
		case Full:
			// Raise above the highest neighbor by 1 (the paper's rule).
			maxA := net.h[u].Alpha
			net.g.EachNeighbor(u, func(w int, _ float64) {
				if net.h[w].Alpha > maxA {
					maxA = net.h[w].Alpha
				}
			})
			updates[i] = Height{Alpha: maxA + 1, Beta: net.h[u].Beta, ID: u}
		case Partial:
			// Gafni–Bertsekas partial reversal: rise just above the lowest
			// neighbor level; the Beta component breaks ties so that links
			// to neighbors at the new Alpha are NOT reversed.
			first := true
			minA := 0
			net.g.EachNeighbor(u, func(w int, _ float64) {
				if first || net.h[w].Alpha < minA {
					minA = net.h[w].Alpha
					first = false
				}
			})
			newAlpha := minA + 1
			newBeta := net.h[u].Beta
			haveTie := false
			tieMin := 0
			net.g.EachNeighbor(u, func(w int, _ float64) {
				if net.h[w].Alpha == newAlpha {
					if !haveTie || net.h[w].Beta < tieMin {
						tieMin = net.h[w].Beta
						haveTie = true
					}
				}
			})
			if haveTie {
				newBeta = tieMin - 1
			}
			updates[i] = Height{Alpha: newAlpha, Beta: newBeta, ID: u}
		}
	}
	for i, u := range sinks {
		net.h[u] = updates[i]
	}
	return sinks
}

// Stats summarizes a stabilization run.
type Stats struct {
	Rounds        int
	NodeReversals int         // total sink activations
	PerNode       map[int]int // activations per node
	Converged     bool
}

// Stabilize runs Step until no sinks remain or maxRounds elapses.
func (net *Network) Stabilize(maxRounds int) Stats {
	st := Stats{PerNode: make(map[int]int)}
	for r := 0; r < maxRounds; r++ {
		acted := net.Step()
		if len(acted) == 0 {
			st.Converged = true
			return st
		}
		st.Rounds++
		st.NodeReversals += len(acted)
		for _, v := range acted {
			st.PerNode[v]++
		}
	}
	st.Converged = len(net.Sinks()) == 0
	return st
}

// StabilizeBudget runs Step under an explicit repair budget: it stops as
// soon as no sinks remain (Converged true), or once the run would exceed
// maxRounds rounds or maxTouched distinct acting nodes (Converged false —
// the caller escalates). Either bound <= 0 means unbounded. The returned
// stats carry the per-node activation counts for the reversal-count-bound
// invariant; touched lists the distinct nodes that acted, sorted.
func (net *Network) StabilizeBudget(maxRounds, maxTouched int) (Stats, []int) {
	st := Stats{PerNode: make(map[int]int)}
	for {
		if len(net.Sinks()) == 0 {
			st.Converged = true
			break
		}
		if maxRounds > 0 && st.Rounds >= maxRounds {
			break
		}
		acted := net.Step()
		st.Rounds++
		st.NodeReversals += len(acted)
		for _, v := range acted {
			st.PerNode[v]++
		}
		if maxTouched > 0 && len(st.PerNode) > maxTouched {
			break
		}
	}
	touched := make([]int, 0, len(st.PerNode))
	for v := range st.PerNode {
		touched = append(touched, v)
	}
	sort.Ints(touched)
	return st, touched
}

// Route follows oriented links greedily (any outgoing link, lowest-height
// first) from src to the destination, returning the node path. It works on
// any destination-oriented DAG — the paper's point that "a given source
// node can take any route without using a routing table".
func (net *Network) Route(src int) ([]int, error) {
	if src < 0 || src >= net.g.N() {
		return nil, errors.New("reversal: src out of range")
	}
	path := []int{src}
	cur := src
	for cur != net.dest {
		next := -1
		net.g.EachNeighbor(cur, func(w int, _ float64) {
			if net.h[w].Less(net.h[cur]) && (next == -1 || net.h[w].Less(net.h[next])) {
				next = w
			}
		})
		if next == -1 {
			return path, fmt.Errorf("reversal: stuck at sink %d", cur)
		}
		cur = next
		path = append(path, cur)
		if len(path) > net.g.N()+1 {
			return path, errors.New("reversal: routing loop (heights not a DAG?)")
		}
	}
	return path, nil
}

// Fig4Network reproduces the paper's Fig. 4 scenario: a destination-oriented
// DAG (destination D) in which breaking link (A, D) triggers a full link
// reversal cascade where node A reverses more than once. Nodes: A=0, B=1,
// C=2, D=3 (destination); support edges A-D, A-B, B-C, C-D; initial heights
// A=1, B=2, C=3, D=0.
func Fig4Network(mode Mode) (*Network, error) {
	g := graph.New(4)
	for _, e := range [][2]int{{0, 3}, {0, 1}, {1, 2}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return NewNetwork(g, []int{1, 2, 3, 0}, 3, mode)
}
