package reversal_test

import (
	"fmt"

	"structura/internal/reversal"
)

// The paper's Fig. 4: breaking link (A, D) triggers a full link reversal
// cascade in which node A reverses twice before the DAG is repaired.
func ExampleNetwork_Stabilize() {
	net, err := reversal.Fig4Network(reversal.Full)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	net.RemoveLink(0, 3) // break (A, D)
	st := net.Stabilize(100)
	fmt.Println("reversals:", st.NodeReversals)
	fmt.Println("A reversed:", st.PerNode[0])
	fmt.Println("repaired:", net.IsDestinationOriented())
	path, _ := net.Route(0)
	fmt.Println("route from A:", path)
	// Output:
	// reversals: 3
	// A reversed: 2
	// repaired: true
	// route from A: [0 1 2 3]
}
