package reversal

import (
	"math/rand"
	"testing"
	"testing/quick"

	"structura/internal/graph"
)

// randomConnected builds a random connected support graph with strictly
// increasing heights away from the destination 0.
func randomConnected(seed int64, nRaw uint8) (*graph.Graph, []int) {
	n := int(nRaw%12) + 3
	r := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for v := 1; v < n; v++ {
		_ = g.AddEdge(v, r.Intn(v)) // random tree
	}
	extra := r.Intn(n)
	for k := 0; k < extra; k++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			_ = g.AddEdge(u, v)
		}
	}
	alphas := make([]int, n)
	dist, _, _ := g.BFS(0)
	for v := 1; v < n; v++ {
		alphas[v] = dist[v]*n + v // distinct, increasing away from 0
	}
	return g, alphas
}

// Property: after any single link failure that keeps the graph connected,
// both height modes and both binary labelings converge to a
// destination-oriented DAG.
func TestQuickReversalConvergesAfterFailure(t *testing.T) {
	f := func(seed int64, nRaw, eRaw uint8) bool {
		g, alphas := randomConnected(seed, nRaw)
		edges := g.Edges()
		if len(edges) == 0 {
			return true
		}
		e := edges[int(eRaw)%len(edges)]
		work := g.Clone()
		work.RemoveEdge(e.From, e.To)
		if !work.Connected() {
			return true // disconnection: divergence is expected behavior
		}
		for _, mode := range []Mode{Full, Partial} {
			net, err := NewNetwork(g, alphas, 0, mode)
			if err != nil {
				return false
			}
			net.RemoveLink(e.From, e.To)
			st := net.Stabilize(200000)
			if !st.Converged || !net.IsDestinationOriented() {
				return false
			}
		}
		for _, label := range []int{0, 1} {
			b, err := NewBinaryLR(g, alphas, 0, label)
			if err != nil {
				return false
			}
			b.RemoveLink(e.From, e.To)
			st := b.Stabilize(200000)
			if !st.Converged || !b.IsDestinationOriented() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: binary all-1 replays height-based full reversal: identical
// total reversal counts on any instance.
func TestQuickBinaryAllOnesEqualsFull(t *testing.T) {
	f := func(seed int64, nRaw, eRaw uint8) bool {
		g, alphas := randomConnected(seed, nRaw)
		edges := g.Edges()
		if len(edges) == 0 {
			return true
		}
		e := edges[int(eRaw)%len(edges)]
		work := g.Clone()
		work.RemoveEdge(e.From, e.To)
		if !work.Connected() {
			return true
		}
		net, err := NewNetwork(g, alphas, 0, Full)
		if err != nil {
			return false
		}
		net.RemoveLink(e.From, e.To)
		st1 := net.Stabilize(200000)
		b, err := NewBinaryLR(g, alphas, 0, 1)
		if err != nil {
			return false
		}
		b.RemoveLink(e.From, e.To)
		st2 := b.Stabilize(200000)
		return st1.Converged && st2.Converged && st1.NodeReversals == st2.NodeReversals
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: routing on a stabilized network always reaches the destination
// without loops.
func TestQuickRouteAfterRepair(t *testing.T) {
	f := func(seed int64, nRaw, eRaw, srcRaw uint8) bool {
		g, alphas := randomConnected(seed, nRaw)
		edges := g.Edges()
		if len(edges) == 0 {
			return true
		}
		e := edges[int(eRaw)%len(edges)]
		work := g.Clone()
		work.RemoveEdge(e.From, e.To)
		if !work.Connected() {
			return true
		}
		net, err := NewNetwork(g, alphas, 0, Full)
		if err != nil {
			return false
		}
		net.RemoveLink(e.From, e.To)
		if st := net.Stabilize(200000); !st.Converged {
			return false
		}
		src := int(srcRaw) % g.N()
		path, err := net.Route(src)
		return err == nil && path[len(path)-1] == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
