package reversal

import (
	"errors"
	"fmt"

	"structura/internal/graph"
)

// The paper (§III-B): "A related challenge is finding an efficient way of
// maintaining DAGs simultaneously for multiple destinations." MultiNetwork
// maintains one height-oriented destination DAG per destination over a
// shared support topology: a link failure is applied once to the shared
// topology and repaired in every per-destination DAG, with the aggregate
// work reported per destination — the direct (non-shared) baseline the
// challenge asks to improve upon.
type MultiNetwork struct {
	support *graph.Graph
	nets    map[int]*Network
}

// NewMultiNetwork builds a destination-oriented DAG for every destination
// in dests over the support graph. Heights for destination d are the BFS
// distances from d (scaled to keep IDs as tie-breakers), which orient every
// link downhill toward d.
func NewMultiNetwork(support *graph.Graph, dests []int, mode Mode) (*MultiNetwork, error) {
	if support.Directed() {
		return nil, errors.New("reversal: support graph must be undirected")
	}
	if len(dests) == 0 {
		return nil, errors.New("reversal: need at least one destination")
	}
	if !support.Connected() {
		return nil, errors.New("reversal: support graph must be connected")
	}
	m := &MultiNetwork{support: support.Clone(), nets: make(map[int]*Network, len(dests))}
	for _, d := range dests {
		if d < 0 || d >= support.N() {
			return nil, fmt.Errorf("reversal: destination %d out of range", d)
		}
		if _, dup := m.nets[d]; dup {
			return nil, fmt.Errorf("reversal: duplicate destination %d", d)
		}
		dist, _, err := support.BFS(d)
		if err != nil {
			return nil, err
		}
		alphas := make([]int, support.N())
		for v, dv := range dist {
			alphas[v] = dv
		}
		net, err := NewNetwork(support, alphas, d, mode)
		if err != nil {
			return nil, err
		}
		m.nets[d] = net
	}
	return m, nil
}

// Destinations returns the maintained destinations.
func (m *MultiNetwork) Destinations() []int {
	out := make([]int, 0, len(m.nets))
	for d := range m.nets {
		out = append(out, d)
	}
	sortInts2(out)
	return out
}

func sortInts2(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Network returns the DAG maintained for destination d.
func (m *MultiNetwork) Network(d int) (*Network, error) {
	net, ok := m.nets[d]
	if !ok {
		return nil, fmt.Errorf("reversal: no DAG for destination %d", d)
	}
	return net, nil
}

// FailLink removes (u,v) from the shared topology and repairs every
// per-destination DAG, returning per-destination repair statistics.
// It errors if any DAG fails to re-stabilize (e.g. disconnection).
func (m *MultiNetwork) FailLink(u, v, maxRounds int) (map[int]Stats, error) {
	if !m.support.RemoveEdge(u, v) {
		return nil, fmt.Errorf("reversal: link (%d,%d) does not exist", u, v)
	}
	if maxRounds <= 0 {
		maxRounds = 1000000
	}
	out := make(map[int]Stats, len(m.nets))
	for d, net := range m.nets {
		net.RemoveLink(u, v)
		st := net.Stabilize(maxRounds)
		if !st.Converged {
			return out, fmt.Errorf("reversal: DAG for destination %d did not converge", d)
		}
		out[d] = st
	}
	return out, nil
}

// AllDestinationOriented reports whether every maintained DAG is currently
// destination-oriented.
func (m *MultiNetwork) AllDestinationOriented() bool {
	for _, net := range m.nets {
		if !net.IsDestinationOriented() {
			return false
		}
	}
	return true
}
