package replica

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"structura/internal/gen"
	"structura/internal/server"
	"structura/internal/stats"
	"structura/internal/wal"
)

// fastPrimaryOpts keeps test turnaround tight.
func fastPrimaryOpts() PrimaryOptions {
	return PrimaryOptions{Poll: time.Millisecond, Heartbeat: 20 * time.Millisecond, IOTimeout: 2 * time.Second}
}

func fastReplicaOpts(fs wal.FS) Options {
	return Options{
		WAL:         wal.Options{FS: fs},
		SkipCDS:     true,
		DialTimeout: time.Second, IOTimeout: 2 * time.Second,
		BackoffBase: 5 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
		Seed: 42,
	}
}

// primaryStack is a full primary: WAL-journaled server plus replication
// listener, over MemFS.
type primaryStack struct {
	fs  *wal.MemFS
	log *wal.Log
	srv *server.Server
	rep *Primary
}

func newPrimaryStack(t *testing.T, seed int64, n int) *primaryStack {
	return newPrimaryStackWith(t, seed, n, -1, fastPrimaryOpts())
}

func newPrimaryStackWith(t *testing.T, seed int64, n, compactEvery int, popts PrimaryOptions) *primaryStack {
	t.Helper()
	fs := wal.NewMemFS()
	g := gen.SparseErdosRenyi(stats.NewRand(seed), n, 4.0/float64(n))
	for i := 0; i < n; i++ {
		if !g.HasEdge(i, (i+1)%n) {
			_ = g.AddEdge(i, (i+1)%n)
		}
	}
	l, err := wal.Create("prim", g, wal.Options{FS: fs, CompactEvery: compactEvery})
	if err != nil {
		t.Fatalf("wal create: %v", err)
	}
	srv, err := server.New(g, server.Config{Dest: 0, SkipCDS: true, WAL: l})
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	rep, err := NewPrimary(l, "127.0.0.1:0", popts)
	if err != nil {
		t.Fatalf("primary listener: %v", err)
	}
	return &primaryStack{fs: fs, log: l, srv: srv, rep: rep}
}

func (p *primaryStack) close() {
	p.rep.Close()
	_ = p.srv.Shutdown(context.Background())
	p.log.Close()
}

func (p *primaryStack) mutate(t *testing.T, ops string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/mutate", strings.NewReader(ops))
	rw := httptest.NewRecorder()
	p.srv.Handler().ServeHTTP(rw, req)
	if rw.Code != http.StatusAccepted {
		t.Fatalf("mutate: status %d: %s", rw.Code, rw.Body.String())
	}
	deadline := time.Now().Add(5 * time.Second)
	for !p.srv.Quiesced() {
		if time.Now().After(deadline) {
			t.Fatal("primary never quiesced")
		}
		time.Sleep(time.Millisecond)
	}
}

func waitCaughtUp(t *testing.T, r *Replica, wantSeq uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		seq, _ := r.Applied()
		if seq >= wantSeq {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at seq %d, want %d (stats %+v)", seq, wantSeq, r.SnapshotStats())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func getJSON(t *testing.T, h http.Handler, path string, v any) *httptest.ResponseRecorder {
	t.Helper()
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, path, nil))
	if v != nil {
		if err := json.NewDecoder(rw.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: decode: %v (body %q)", path, err, rw.Body.String())
		}
	}
	return rw
}

// TestReplicationCatchUp covers the happy path: a cold replica full-syncs
// (snapshot + tail), applies live batches as the primary commits them, and
// serves stale-ok reads that agree with the primary.
func TestReplicationCatchUp(t *testing.T) {
	p := newPrimaryStack(t, 11, 48)
	defer p.close()

	p.mutate(t, `{"ops":[{"op":"add","u":1,"v":9},{"op":"add","u":2,"v":17}]}`)

	fsR := wal.NewMemFS()
	r, err := New("mir", p.rep.Addr(), fastReplicaOpts(fsR))
	if err != nil {
		t.Fatalf("replica: %v", err)
	}
	go r.Run()
	waitCaughtUp(t, r, p.log.Seq())

	// More traffic while the stream is live.
	p.mutate(t, `{"ops":[{"op":"add","u":3,"v":30},{"op":"remove","u":1,"v":9}]}`)
	p.mutate(t, `{"ops":[{"op":"add","u":5,"v":40}]}`)
	waitCaughtUp(t, r, p.log.Seq())

	// The applied view is byte-equivalent to the primary's durable replica.
	var sum labelsSummary
	rw := getJSON(t, r.Handler(), "/labels?hash=1", &sum)
	if rw.Code != http.StatusOK {
		t.Fatalf("/labels: %d", rw.Code)
	}
	if want := fmt.Sprintf("%016x", wal.GraphHash(p.log.Graph())); sum.GraphHash != want {
		t.Fatalf("replica hash %s, primary %s", sum.GraphHash, want)
	}
	if got := rw.Result().Header.Get("Warning"); !strings.Contains(got, "110") {
		t.Fatalf("degraded read missing Warning header, got %q", got)
	}
	if rw.Result().Header.Get("X-Staleness-Ns") == "" {
		t.Fatal("degraded read missing X-Staleness-Ns")
	}

	// Route answers agree with the primary's.
	for _, from := range []int{5, 17, 40} {
		var pr, rr routeResponse
		prw := httptest.NewRecorder()
		p.srv.Handler().ServeHTTP(prw, httptest.NewRequest(http.MethodGet, fmt.Sprintf("/route?from=%d", from), nil))
		if prw.Code != http.StatusOK {
			t.Fatalf("primary /route?from=%d: %d", from, prw.Code)
		}
		if err := json.NewDecoder(prw.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		rrw := getJSON(t, r.Handler(), fmt.Sprintf("/route?from=%d", from), &rr)
		if rrw.Code != http.StatusOK {
			t.Fatalf("replica /route?from=%d: %d (%s)", from, rrw.Code, rrw.Body.String())
		}
		if pr.Dist != rr.Dist {
			t.Fatalf("route dist from %d: primary %v, replica %v", from, pr.Dist, rr.Dist)
		}
	}

	// Replica metrics carry the replication cursor.
	st := r.SnapshotStats()
	if !st.Connected || st.Resyncs != 1 || st.MirroredOff == 0 || st.AckedOff != st.MirroredOff {
		t.Fatalf("unexpected stats: %+v", st)
	}
	if st.StalenessNs < 0 {
		t.Fatal("staleness unset after commits")
	}
	r.Stop()
}

// TestReplicaResumesOffset covers the resumable cursor: a stopped replica
// reopened over the same directory resumes from its durable offset without
// a snapshot resync.
func TestReplicaResumesOffset(t *testing.T) {
	p := newPrimaryStack(t, 13, 40)
	defer p.close()
	p.mutate(t, `{"ops":[{"op":"add","u":1,"v":9}]}`)

	fsR := wal.NewMemFS()
	r1, err := New("mir", p.rep.Addr(), fastReplicaOpts(fsR))
	if err != nil {
		t.Fatal(err)
	}
	go r1.Run()
	waitCaughtUp(t, r1, p.log.Seq())
	if st := r1.SnapshotStats(); st.Resyncs != 1 {
		t.Fatalf("cold replica resyncs = %d, want 1", st.Resyncs)
	}
	r1.Stop()

	// Primary keeps committing while the replica is down.
	p.mutate(t, `{"ops":[{"op":"add","u":2,"v":17},{"op":"add","u":3,"v":21}]}`)

	r2, err := New("mir", p.rep.Addr(), fastReplicaOpts(fsR))
	if err != nil {
		t.Fatal(err)
	}
	go r2.Run()
	defer r2.Stop()
	waitCaughtUp(t, r2, p.log.Seq())
	st := r2.SnapshotStats()
	if st.Resyncs != 0 {
		t.Fatalf("warm replica resynced %d time(s); the offset cursor should have resumed", st.Resyncs)
	}
	var sum labelsSummary
	getJSON(t, r2.Handler(), "/labels?hash=1", &sum)
	if want := fmt.Sprintf("%016x", wal.GraphHash(p.log.Graph())); sum.GraphHash != want {
		t.Fatalf("resumed replica hash %s, primary %s", sum.GraphHash, want)
	}
}

// TestPromoteFencesOldPrimary covers failover end to end: the replica is
// promoted (fence bump), serves authoritatively with zero standing
// violations, and the deposed primary is fenced on first contact with any
// follower of the new lineage.
func TestPromoteFencesOldPrimary(t *testing.T) {
	p := newPrimaryStack(t, 17, 44)
	defer p.close()
	p.mutate(t, `{"ops":[{"op":"add","u":1,"v":9},{"op":"add","u":4,"v":31}]}`)

	fsR := wal.NewMemFS()
	r, err := New("mir", p.rep.Addr(), fastReplicaOpts(fsR))
	if err != nil {
		t.Fatal(err)
	}
	go r.Run()
	waitCaughtUp(t, r, p.log.Seq())

	oldFence := p.log.FenceToken()

	// Promote via the HTTP surface, as the operator would.
	rw := httptest.NewRecorder()
	r.Handler().ServeHTTP(rw, httptest.NewRequest(http.MethodPost, "/promote", nil))
	if rw.Code != http.StatusOK {
		t.Fatalf("/promote: %d: %s", rw.Code, rw.Body.String())
	}
	var pro struct {
		Promoted bool   `json:"promoted"`
		Seq      uint64 `json:"seq"`
		Fence    uint64 `json:"fence"`
	}
	if err := json.NewDecoder(rw.Body).Decode(&pro); err != nil {
		t.Fatal(err)
	}
	if !pro.Promoted || pro.Fence != oldFence+1 {
		t.Fatalf("promotion fence %d, want %d", pro.Fence, oldFence+1)
	}
	if pro.Seq != p.log.Seq() {
		t.Fatalf("promoted at seq %d, primary committed %d", pro.Seq, p.log.Seq())
	}
	defer func() {
		srv := r.promotedSrv.Load()
		_ = srv.Shutdown(context.Background())
		r.PromotedLog().Close()
	}()

	// The promoted surface is the full server: zero standing violations
	// from the warm-start heal, and authoritative (non-stale) reads.
	var snap server.MetricsSnapshot
	getJSON(t, r.Handler(), "/metrics", &snap)
	if snap.WAL == nil || snap.WAL.RecoveryStanding != 0 {
		t.Fatalf("promotion left standing violations: %+v", snap.WAL)
	}
	if !snap.WAL.WarmStart {
		t.Fatal("promotion did not warm-start from the replicated label epoch")
	}
	rw = getJSON(t, r.Handler(), "/route?from=9", nil)
	if rw.Code != http.StatusOK {
		t.Fatalf("promoted /route: %d", rw.Code)
	}
	if rw.Result().Header.Get("Warning") != "" {
		t.Fatal("promoted read still carries the stale Warning header")
	}

	// New lineage's replication listener; a follower of it carries fence+1.
	newRep, err := NewPrimary(r.PromotedLog(), "127.0.0.1:0", fastPrimaryOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer newRep.Close()
	fsR2 := wal.NewMemFS()
	r2, err := New("mir2", newRep.Addr(), fastReplicaOpts(fsR2))
	if err != nil {
		t.Fatal(err)
	}
	go r2.Run()
	waitCaughtUp(t, r2, pro.Seq)
	r2.Stop()

	// Point that follower at the DEPOSED primary: its hello carries the
	// higher fence, so the old primary must fence itself and refuse.
	r3, err := New("mir2", p.rep.Addr(), fastReplicaOpts(fsR2))
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- r3.Run() }()
	select {
	case err := <-errCh:
		if err != ErrDeposed {
			t.Fatalf("follower of deposed primary returned %v, want ErrDeposed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower never detected the deposed primary")
	}
	r3.Stop()

	if !p.log.Fenced() {
		t.Fatal("deposed primary did not fence itself")
	}
	if _, err := p.log.Append([]wal.Record{{Type: wal.TAddEdge, U: 0, V: 2, Weight: 1}}); err != wal.ErrFenced {
		t.Fatalf("deposed primary write returned %v, want ErrFenced", err)
	}
}
