package replica

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"structura/internal/graph"
	"structura/internal/server"
	"structura/internal/wal"
)

// Options tunes a Replica. Zero values get serving defaults.
type Options struct {
	// WAL configures the mirror store (FS for tests, sync policy).
	WAL wal.Options
	// Dest and SkipCDS configure the server a promotion builds.
	Dest    int
	SkipCDS bool

	// DialTimeout bounds each connection attempt. Default 2s.
	DialTimeout time.Duration
	// IOTimeout bounds each network read/write; it must exceed the
	// primary's heartbeat interval. Default 5s.
	IOTimeout time.Duration
	// BackoffBase/BackoffMax shape the reconnect schedule: the delay
	// doubles from Base to Max with multiplicative jitter. Defaults
	// 50ms / 5s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed drives the deterministic backoff jitter.
	Seed uint64
}

func (o *Options) setDefaults() {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.IOTimeout <= 0 {
		o.IOTimeout = 5 * time.Second
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 5 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// ErrDeposed reports that the configured primary carries a lower fence than
// the replica's own store: it was deposed by an earlier failover, and
// following it would resurrect overwritten history. The replica keeps
// serving its mirrored state and stays promotable.
var ErrDeposed = errors.New("replica: configured primary is deposed (lower fence)")

// ErrPromoted reports an operation on a replica that has already been
// promoted to primary.
var ErrPromoted = errors.New("replica: already promoted")

// Replica follows a primary's replication stream: it mirrors the durable
// bytes into a crash-recoverable store directory, applies committed batches
// live to serve degraded stale-ok reads, and can be promoted into a full
// primary (wal.Promote bumps the fencing token) when the old one dies.
type Replica struct {
	dir  string
	addr string
	opts Options

	mu      sync.RWMutex // guards mirror, applier, and all view state
	mirror  *wal.Mirror
	applier *wal.Applier
	hdrBuf  []byte // accumulating log header of the live generation

	primarySeq     atomic.Uint64
	primaryDurable atomic.Int64
	lastContactNs  atomic.Int64 // unix ns of the last primary message
	lastCommitNs   atomic.Int64 // unix ns of the last applied commit
	connected      atomic.Bool
	deposed        atomic.Bool
	promoted       atomic.Bool
	forceResync    atomic.Bool

	connects atomic.Uint64
	resyncs  atomic.Uint64
	chunksIn atomic.Uint64
	bytesIn  atomic.Uint64
	ackedOff atomic.Int64

	closed    atomic.Bool
	closeOnce sync.Once
	closeCh   chan struct{} // closed by Stop/Promote; interrupts backoff sleeps
	curConn   atomic.Pointer[net.Conn]
	runDone   chan struct{}
	runOnce   sync.Once

	promotedSrv atomic.Pointer[server.Server]
	promotedLog *wal.Log

	seed uint64

	// testHookMsg, when set, observes every incoming stream message before
	// it is processed; a non-nil return aborts the session — the crash
	// sweeps cut connections here.
	testHookMsg func(m msg) error
}

// New opens (or resumes) the mirror at dir and prepares to follow the
// primary at addr. A resumed mirror rebuilds its in-memory view from the
// mirrored snapshot and verified log prefix before any reconnect, so
// degraded reads are available immediately.
func New(dir, addr string, opts Options) (*Replica, error) {
	opts.setDefaults()
	m, err := wal.OpenMirror(dir, opts.WAL)
	if err != nil {
		return nil, err
	}
	r := &Replica{
		dir: dir, addr: addr, opts: opts, mirror: m,
		closeCh: make(chan struct{}),
		runDone: make(chan struct{}), seed: opts.Seed,
	}
	if err := r.bootstrap(); err != nil {
		m.Close()
		return nil, err
	}
	return r, nil
}

// bootstrap rebuilds the applier from the mirrored store (no-op for an
// empty mirror).
func (r *Replica) bootstrap() error {
	snap, err := r.mirror.SnapshotData()
	if err != nil || snap == nil {
		return err
	}
	g, seq, _, ls, err := wal.DecodeSnapshotLabels(snap)
	if err != nil {
		return fmt.Errorf("replica: mirrored snapshot: %w", err)
	}
	a := wal.NewApplier(g, ls, seq)
	a.OnCommit = func(uint64) { r.lastCommitNs.Store(time.Now().UnixNano()) }
	logData, err := r.mirror.LogData()
	if err != nil {
		return err
	}
	r.hdrBuf = r.hdrBuf[:0]
	if len(logData) >= wal.LogHeaderLen {
		r.hdrBuf = append(r.hdrBuf, logData[:wal.LogHeaderLen]...)
		if err := a.Feed(logData[wal.LogHeaderLen:]); err != nil {
			return fmt.Errorf("replica: mirrored log replay: %w", err)
		}
	} else {
		r.hdrBuf = append(r.hdrBuf, logData...)
	}
	r.applier = a
	return nil
}

// Run follows the primary until Stop or promotion: dial, handshake, stream,
// and on any failure reconnect under exponential backoff with jitter. It
// returns ErrDeposed when the primary's fence proves it was deposed, nil on
// Stop/promotion.
func (r *Replica) Run() error {
	defer r.runOnce.Do(func() { close(r.runDone) })
	backoff := r.opts.BackoffBase
	for !r.closed.Load() {
		err := r.session()
		r.connected.Store(false)
		if r.closed.Load() {
			return nil
		}
		if errors.Is(err, ErrDeposed) {
			r.deposed.Store(true)
			return err
		}
		// Interruptible backoff: a Stop or Promote must not wait out the
		// reconnect schedule — failover happens exactly when the primary is
		// unreachable and the loop is deep in backoff.
		select {
		case <-time.After(r.jitter(backoff)):
		case <-r.closeCh:
			return nil
		}
		backoff *= 2
		if backoff > r.opts.BackoffMax {
			backoff = r.opts.BackoffMax
		}
		if err == nil {
			backoff = r.opts.BackoffBase
		}
	}
	return nil
}

// jitter scales d by a deterministic factor in [0.5, 1.5).
func (r *Replica) jitter(d time.Duration) time.Duration {
	r.seed += 0x9e3779b97f4a7c15
	z := r.seed
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	frac := float64(z>>40) / float64(1<<24) // [0,1)
	return time.Duration(float64(d) * (0.5 + frac))
}

// session runs one connection to completion: dial, hello, stream.
func (r *Replica) session() error {
	conn, err := net.DialTimeout("tcp", r.addr, r.opts.DialTimeout)
	if err != nil {
		return err
	}
	r.curConn.Store(&conn)
	defer func() {
		r.curConn.Store(nil)
		conn.Close()
	}()
	r.connects.Add(1)

	gen, fence, off := r.mirror.State()
	if r.forceResync.Swap(false) {
		gen, off = 0, 0 // corrupt stream detected: demand a snapshot
	}
	_ = conn.SetWriteDeadline(time.Now().Add(r.opts.IOTimeout))
	if err := writeMsg(conn, msg{Kind: mHello, Gen: gen, Off: off, Fence: fence}); err != nil {
		return err
	}

	for {
		_ = conn.SetReadDeadline(time.Now().Add(r.opts.IOTimeout))
		m, err := readMsg(conn)
		if err != nil {
			return err
		}
		if r.testHookMsg != nil {
			if herr := r.testHookMsg(m); herr != nil {
				return herr
			}
		}
		r.lastContactNs.Store(time.Now().UnixNano())
		switch m.Kind {
		case mReject:
			// Our fence is higher: the node we dialed is the deposed one.
			return ErrDeposed
		case mState, mHeartbeat:
			if m.Fence < fence {
				return ErrDeposed
			}
			r.connected.Store(true)
			r.primarySeq.Store(m.Seq)
			r.primaryDurable.Store(m.Off)
		case mSnapshot:
			if err := r.installSnapshot(m); err != nil {
				return err
			}
			if err := r.sendAck(conn, m.Gen, 0); err != nil {
				return err
			}
		case mChunk:
			if err := r.applyChunk(conn, m); err != nil {
				return err
			}
		}
	}
}

func (r *Replica) installSnapshot(m msg) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.mirror.InstallSnapshot(m.Gen, m.Fence, m.Data); err != nil {
		return err
	}
	r.hdrBuf = r.hdrBuf[:0]
	r.applier = nil
	r.resyncs.Add(1)
	if err := r.bootstrapLocked(); err != nil {
		return err
	}
	return nil
}

// bootstrapLocked rebuilds the applier from the freshly installed snapshot.
func (r *Replica) bootstrapLocked() error {
	snap, err := r.mirror.SnapshotData()
	if err != nil || snap == nil {
		return err
	}
	g, seq, _, ls, err := wal.DecodeSnapshotLabels(snap)
	if err != nil {
		return fmt.Errorf("replica: snapshot payload: %w", err)
	}
	a := wal.NewApplier(g, ls, seq)
	a.OnCommit = func(uint64) { r.lastCommitNs.Store(time.Now().UnixNano()) }
	r.applier = a
	return nil
}

// applyChunk mirrors one chunk durably, feeds the live applier, and acks
// the new durable offset.
func (r *Replica) applyChunk(conn net.Conn, m msg) error {
	r.mu.Lock()
	gen, _, _ := r.mirror.State()
	if m.Gen != gen {
		r.mu.Unlock()
		return nil // chunk from a superseded generation: drop
	}
	before := r.mirror.Durable()
	if err := r.mirror.Append(m.Off, m.Data); err != nil {
		r.mu.Unlock()
		if errors.Is(err, wal.ErrStaleChunk) {
			// The stream skipped ahead (e.g. acks raced a reconnect):
			// re-anchor by re-sending our true position.
			_ = conn.SetWriteDeadline(time.Now().Add(r.opts.IOTimeout))
			g2, f2, o2 := r.mirror.State()
			return writeMsg(conn, msg{Kind: mHello, Gen: g2, Off: o2, Fence: f2})
		}
		return err
	}
	after := r.mirror.Durable()
	grew := after - before
	if grew > 0 {
		fresh := m.Data[int64(len(m.Data))-grew:]
		// Split the fresh bytes around the generation header: header bytes
		// accumulate for validation, the rest feeds the live applier.
		if before < int64(wal.LogHeaderLen) {
			take := int64(wal.LogHeaderLen) - before
			if take > int64(len(fresh)) {
				take = int64(len(fresh))
			}
			r.hdrBuf = append(r.hdrBuf, fresh[:take]...)
			fresh = fresh[take:]
			if len(r.hdrBuf) == wal.LogHeaderLen {
				if _, _, _, err := wal.CheckLogHeader(r.hdrBuf); err != nil {
					r.mu.Unlock()
					r.forceResync.Store(true)
					return fmt.Errorf("replica: mirrored header: %w", err)
				}
			}
		}
		if len(fresh) > 0 && r.applier != nil {
			if err := r.applier.Feed(fresh); err != nil {
				// The mirrored bytes are corrupt beyond what framing allows:
				// drop the stream and demand a snapshot on reconnect.
				r.mu.Unlock()
				r.forceResync.Store(true)
				return err
			}
		}
		r.chunksIn.Add(1)
		r.bytesIn.Add(uint64(grew))
	}
	// Ack the verified prefix, not the raw mirrored length: a reopened
	// mirror truncates to whole checksummed frames, so a trailing partial
	// frame — synced or not — must never be claimed. This keeps the sweep
	// invariant acked ≤ recovered exact even for a crash mid-frame.
	verified := r.mirror.Durable()
	if verified < int64(wal.LogHeaderLen) {
		verified = 0
	} else if r.applier != nil {
		verified -= int64(r.applier.Buffered())
	}
	r.mu.Unlock()
	return r.sendAck(conn, m.Gen, verified)
}

func (r *Replica) sendAck(conn net.Conn, gen uint64, off int64) error {
	_ = conn.SetWriteDeadline(time.Now().Add(r.opts.IOTimeout))
	if err := writeMsg(conn, msg{Kind: mAck, Gen: gen, Off: off}); err != nil {
		return err
	}
	r.ackedOff.Store(off)
	return nil
}

// Stop ends the follow loop and closes the mirror. The store directory
// remains recoverable.
func (r *Replica) Stop() {
	if r.closed.Swap(true) {
		return
	}
	r.closeOnce.Do(func() { close(r.closeCh) })
	if cp := r.curConn.Load(); cp != nil {
		(*cp).Close()
	}
	r.runOnce.Do(func() { close(r.runDone) }) // Run may never have started
	r.mu.Lock()
	r.mirror.Close()
	r.mu.Unlock()
}

// Promote turns the replica into a primary: the follow loop stops, the
// mirrored store is recovered under a bumped fencing token (wal.Promote),
// and a full serving layer is warm-started from the recovered label epoch.
// After Promote the replica's HTTP handler transparently serves the
// promoted server's endpoints; the returned Log is owned by the caller
// (close it after the server shuts down). The old primary, if it ever
// returns, is fenced on its first contact with any replica following the
// new one.
func (r *Replica) Promote() (*server.Server, *wal.Log, *wal.Recovery, error) {
	if r.promoted.Swap(true) {
		return nil, nil, nil, ErrPromoted
	}
	r.closed.Store(true)
	r.closeOnce.Do(func() { close(r.closeCh) })
	if cp := r.curConn.Load(); cp != nil {
		(*cp).Close()
	}
	select {
	case <-r.runDone:
	case <-time.After(r.opts.IOTimeout + time.Second):
		return nil, nil, nil, errors.New("replica: follow loop did not stop")
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	r.mirror.Close()

	l, rec, err := wal.Promote(r.dir, r.opts.WAL)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("replica: promote store: %w", err)
	}
	srv, err := server.New(l.Graph(), server.Config{
		Dest:    r.opts.Dest,
		SkipCDS: r.opts.SkipCDS,
		WAL:     l,
		// Recovered carries the label epoch and dirty set: the promoted
		// server warm-starts and heals only what the epoch missed.
		Recovered: &rec,
	})
	if err != nil {
		l.Close()
		return nil, nil, nil, fmt.Errorf("replica: promoted server: %w", err)
	}
	r.promotedSrv.Store(srv)
	r.promotedLog = l
	return srv, l, &rec, nil
}

// PromotedLog returns the log a Promote produced (nil before promotion).
func (r *Replica) PromotedLog() *wal.Log { return r.promotedLog }

// PromotedServer returns the server a Promote installed (nil before
// promotion) — the handle a host process needs to shut the promoted
// primary down cleanly.
func (r *Replica) PromotedServer() *server.Server { return r.promotedSrv.Load() }

// Applied returns the replica's applied view cursor: last committed batch
// seq applied to the in-memory graph, and the mirrored durable byte offset.
func (r *Replica) Applied() (seq uint64, durable int64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.applier != nil {
		seq = r.applier.Seq
	}
	return seq, r.mirror.Durable()
}

// viewGraph returns the live applied graph (nil before the first
// snapshot). Callers must hold r.mu.
func (r *Replica) viewGraph() *graph.Graph {
	if r.applier == nil {
		return nil
	}
	return r.applier.G
}
