package replica

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"structura/internal/server"
	"structura/internal/wal"
)

// sweepPrimaryOpts shapes the stream for crash sweeps: tiny chunks so the
// history spans many messages (and frames split mid-chunk), no heartbeats so
// the message count is deterministic.
func sweepPrimaryOpts() PrimaryOptions {
	return PrimaryOptions{Chunk: 64, Poll: time.Millisecond, Heartbeat: time.Hour, IOTimeout: 2 * time.Second}
}

// TestGenSwapResync covers compaction racing the stream: the primary swaps
// log generations under the replica (CompactEvery 2), the sender detects
// wal.ErrGenGone / generation drift and full-resyncs, and the replica
// converges anyway.
func TestGenSwapResync(t *testing.T) {
	p := newPrimaryStackWith(t, 19, 40, 2, fastPrimaryOpts())
	defer p.close()

	fsR := wal.NewMemFS()
	r, err := New("mir", p.rep.Addr(), fastReplicaOpts(fsR))
	if err != nil {
		t.Fatal(err)
	}
	go r.Run()
	defer r.Stop()

	for i := 0; i < 6; i++ {
		p.mutate(t, fmt.Sprintf(`{"ops":[{"op":"add","u":%d,"v":%d}]}`, i, 20+i))
		waitCaughtUp(t, r, p.log.Seq())
	}
	if gen := p.log.Metrics().Gen; gen < 3 {
		t.Fatalf("compaction never swapped generations (gen %d)", gen)
	}
	st := r.SnapshotStats()
	if st.Resyncs < 2 {
		t.Fatalf("replica survived %d generation swap(s) with %d resync(s); want ≥2", p.log.Metrics().Gen-1, st.Resyncs)
	}
	if st.Gen != p.log.Metrics().Gen {
		t.Fatalf("replica on gen %d, primary on %d", st.Gen, p.log.Metrics().Gen)
	}
	var sum labelsSummary
	getJSON(t, r.Handler(), "/labels?hash=1", &sum)
	if want := fmt.Sprintf("%016x", wal.GraphHash(p.log.Graph())); sum.GraphHash != want {
		t.Fatalf("post-resync hash %s, primary %s", sum.GraphHash, want)
	}
}

var errInjectedCrash = errors.New("injected crash")

// countStreamMessages runs a throwaway replica to completion and returns how
// many stream messages a full cold sync takes.
func countStreamMessages(t *testing.T, p *primaryStack) int {
	t.Helper()
	var n atomic.Int32
	r, err := New("probe", p.rep.Addr(), fastReplicaOpts(wal.NewMemFS()))
	if err != nil {
		t.Fatal(err)
	}
	r.testHookMsg = func(msg) error { n.Add(1); return nil }
	go r.Run()
	waitCaughtUp(t, r, p.log.Seq())
	r.Stop()
	return int(n.Load())
}

// seqWithinPrefix returns the last batch seq whose commit frame lies wholly
// inside the first `prefix` bytes of the primary's live-generation stream —
// the floor any recovery from an acked-prefix mirror must reach.
func seqWithinPrefix(t *testing.T, p *primaryStack, prefix int64) uint64 {
	t.Helper()
	gen, durable, _ := p.log.ReplState()
	_, snap, err := p.log.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	g, baseSeq, _, ls, err := wal.DecodeSnapshotLabels(snap)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := p.log.LogChunk(gen, 0, int(durable))
	if err != nil {
		t.Fatal(err)
	}
	if prefix > int64(len(stream)) {
		prefix = int64(len(stream))
	}
	a := wal.NewApplier(g, ls, baseSeq)
	if prefix > int64(wal.LogHeaderLen) {
		if err := a.Feed(stream[wal.LogHeaderLen:prefix]); err != nil {
			t.Fatalf("acked prefix did not replay: %v", err)
		}
	}
	return a.Seq
}

// crashReplicaAt runs a fresh replica against p and injects a crash just
// before it processes stream message k: the replica's durable state at that
// instant is captured as a crash image (unsynced bytes dropped) along with
// the last offset it acked. BackoffBase is an hour so the session never
// reconnects behind the sweep's back.
func crashReplicaAt(t *testing.T, p *primaryStack, k int) (img *wal.MemFS, acked int64, r *Replica) {
	t.Helper()
	fs := wal.NewMemFS()
	opts := fastReplicaOpts(fs)
	opts.BackoffBase, opts.BackoffMax = time.Hour, time.Hour
	r, err := New("mir", p.rep.Addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	type cut struct {
		img   *wal.MemFS
		acked int64
	}
	cutCh := make(chan cut, 1)
	seen := 0 // session loop is single-goroutine; no atomics needed
	r.testHookMsg = func(msg) error {
		seen++
		if seen == k {
			cutCh <- cut{fs.CrashImage(uint64(k)), r.ackedOff.Load()}
			return errInjectedCrash
		}
		return nil
	}
	go r.Run()
	select {
	case c := <-cutCh:
		return c.img, c.acked, r
	case <-time.After(10 * time.Second):
		t.Fatalf("crash point %d never reached", k)
		return nil, 0, nil
	}
}

// TestCrashSweepReplica crashes the replica process at every message of a
// cold sync and recovers it from its durable image each time, asserting the
// replication invariant acked ≤ recovered ≤ committed: the recovered mirror
// never holds less than it acked (fsync-before-ack) and never more than the
// primary committed, and resuming from the crash image converges to the
// primary's exact state.
func TestCrashSweepReplica(t *testing.T) {
	p := newPrimaryStackWith(t, 23, 32, -1, sweepPrimaryOpts())
	defer p.close()
	p.mutate(t, `{"ops":[{"op":"add","u":1,"v":9},{"op":"add","u":2,"v":17}]}`)
	p.mutate(t, `{"ops":[{"op":"remove","u":1,"v":9},{"op":"add","u":3,"v":21}]}`)
	p.mutate(t, `{"ops":[{"op":"add","u":5,"v":29}]}`)

	total := countStreamMessages(t, p)
	if total < 10 {
		t.Fatalf("stream too short for a meaningful sweep: %d message(s)", total)
	}
	wantHash := fmt.Sprintf("%016x", wal.GraphHash(p.log.Graph()))
	_, committed, _ := p.log.ReplState()

	for k := 1; k <= total; k++ {
		img, acked, dead := crashReplicaAt(t, p, k)
		dead.Stop()

		r2, err := New("mir", p.rep.Addr(), fastReplicaOpts(img))
		if err != nil {
			t.Fatalf("k=%d: reopen after crash: %v", k, err)
		}
		_, recovered := r2.Applied()
		if recovered < acked {
			t.Fatalf("k=%d: recovered %d byte(s) < acked %d — ack claimed bytes the crash lost", k, recovered, acked)
		}
		if recovered > committed {
			t.Fatalf("k=%d: recovered %d byte(s) > committed %d", k, recovered, committed)
		}
		go r2.Run()
		waitCaughtUp(t, r2, p.log.Seq())
		var sum labelsSummary
		getJSON(t, r2.Handler(), "/labels?hash=1", &sum)
		if sum.GraphHash != wantHash {
			t.Fatalf("k=%d: resumed replica hash %s, primary %s", k, sum.GraphHash, wantHash)
		}
		r2.Stop()
	}
}

// TestCrashSweepFailover kills the primary connection at every message of a
// cold sync and promotes the replica from whatever it holds, asserting
// acked ≤ recovered ≤ committed at the batch level — the promoted lineage
// contains every batch whose commit the replica acked, and nothing beyond
// what the primary committed — and that promotion leaves zero standing heal
// violations.
func TestCrashSweepFailover(t *testing.T) {
	p := newPrimaryStackWith(t, 29, 32, -1, sweepPrimaryOpts())
	defer p.close()
	p.mutate(t, `{"ops":[{"op":"add","u":1,"v":9},{"op":"add","u":2,"v":17}]}`)
	p.mutate(t, `{"ops":[{"op":"remove","u":1,"v":9},{"op":"add","u":3,"v":21}]}`)
	p.mutate(t, `{"ops":[{"op":"add","u":5,"v":29}]}`)

	total := countStreamMessages(t, p)
	committedSeq := p.log.Seq()
	_, committedBytes, _ := p.log.ReplState()

	for k := 1; k <= total; k++ {
		img, acked, r := crashReplicaAt(t, p, k)
		_ = img // the replica process survives; only the primary "died"

		gen, _, durable := func() (uint64, uint64, int64) {
			g, f, o := r.mirror.State()
			return g, f, o
		}()
		if durable < acked {
			t.Fatalf("k=%d: mirror holds %d byte(s) < acked %d", k, durable, acked)
		}

		srv, l, rec, err := r.Promote()
		if gen == 0 {
			// Crashed before any snapshot installed: there is nothing to
			// promote, and the failure must be explicit, not a bogus store.
			if err == nil {
				t.Fatalf("k=%d: promotion of an empty mirror succeeded", k)
			}
			r.Stop()
			continue
		}
		if err != nil {
			t.Fatalf("k=%d: promote: %v", k, err)
		}
		if floor := seqWithinPrefix(t, p, acked); rec.Seq < floor {
			t.Fatalf("k=%d: promoted at seq %d, but acked bytes cover seq %d", k, rec.Seq, floor)
		}
		if rec.Seq > committedSeq {
			t.Fatalf("k=%d: promoted at seq %d beyond primary committed %d", k, rec.Seq, committedSeq)
		}
		if durable > committedBytes {
			t.Fatalf("k=%d: mirror outran the primary: %d > %d", k, durable, committedBytes)
		}

		var snap server.MetricsSnapshot
		rw := getJSON(t, r.Handler(), "/metrics", &snap)
		if rw.Code != http.StatusOK {
			t.Fatalf("k=%d: promoted /metrics: %d", k, rw.Code)
		}
		if snap.WAL == nil || snap.WAL.RecoveryStanding != 0 {
			t.Fatalf("k=%d: promotion left standing violations: %+v", k, snap.WAL)
		}
		_ = srv.Shutdown(context.Background())
		l.Close()
	}
}
