package replica

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"structura/internal/wal"
)

// staleWarning is attached to every degraded read, per RFC 7234 §5.5.1:
// the response is served from a replica's applied view, which may lag the
// primary by the replication delay.
const staleWarning = `110 structura-replica "stale-ok: served from replica, may lag primary"`

// Stats is the replica's /metrics block.
type Stats struct {
	Connected bool `json:"connected"`
	Deposed   bool `json:"deposed"`
	Promoted  bool `json:"promoted"`

	Gen          uint64 `json:"gen"`
	Fence        uint64 `json:"fence"`
	MirroredOff  int64  `json:"mirrored_bytes"` // durable mirrored byte offset
	AckedOff     int64  `json:"acked_bytes"`    // last ack sent
	AppliedSeq   uint64 `json:"applied_seq"`    // last committed batch in the view
	PrimarySeq   uint64 `json:"primary_seq"`    // last seq the primary reported
	SeqLag       uint64 `json:"seq_lag"`
	DirtyPending int    `json:"dirty_pending"` // nodes a promotion would heal

	Connects uint64 `json:"connects"`
	Resyncs  uint64 `json:"resyncs"`
	ChunksIn uint64 `json:"chunks_in"`
	BytesIn  uint64 `json:"bytes_in"`

	// StalenessNs is the age of the applied view: time since the last
	// applied commit, or since the last primary contact when no commit has
	// been applied yet. -1 when the replica has never heard from a primary.
	StalenessNs      int64 `json:"staleness_ns"`
	LastContactAgeNs int64 `json:"last_contact_age_ns"` // -1 before first contact
}

// Snapshot assembles the current Stats.
func (r *Replica) SnapshotStats() Stats {
	r.mu.RLock()
	gen, fence, off := r.mirror.State()
	var appliedSeq uint64
	dirty := 0
	if r.applier != nil {
		appliedSeq = r.applier.Seq
		dirty = len(r.applier.Dirty())
	}
	r.mu.RUnlock()

	st := Stats{
		Connected: r.connected.Load(),
		Deposed:   r.deposed.Load(),
		Promoted:  r.promoted.Load(),
		Gen:       gen, Fence: fence, MirroredOff: off,
		AckedOff:     r.ackedOff.Load(),
		AppliedSeq:   appliedSeq,
		PrimarySeq:   r.primarySeq.Load(),
		DirtyPending: dirty,
		Connects:     r.connects.Load(),
		Resyncs:      r.resyncs.Load(),
		ChunksIn:     r.chunksIn.Load(),
		BytesIn:      r.bytesIn.Load(),
	}
	if st.PrimarySeq > st.AppliedSeq {
		st.SeqLag = st.PrimarySeq - st.AppliedSeq
	}
	now := time.Now().UnixNano()
	st.StalenessNs, st.LastContactAgeNs = -1, -1
	if t := r.lastContactNs.Load(); t > 0 {
		st.LastContactAgeNs = now - t
		st.StalenessNs = now - t
	}
	if t := r.lastCommitNs.Load(); t > 0 {
		st.StalenessNs = now - t
	}
	return st
}

// Handler returns the replica's HTTP surface. Before promotion it serves
// degraded stale-ok reads (every data response carries a Warning header and
// X-Staleness-Ns); after promotion it transparently delegates to the
// promoted server's full endpoint set.
func (r *Replica) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/route", r.degraded(r.handleRoute))
	mux.HandleFunc("/labels", r.degraded(r.handleLabels))
	mux.HandleFunc("/metrics", r.handleMetrics)
	mux.HandleFunc("/healthz", r.handleHealthz)
	mux.HandleFunc("/promote", r.handlePromote)
	// Everything else (e.g. /mutate, /khop) only exists after promotion, when
	// the full server surface takes over.
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if srv := r.promotedSrv.Load(); srv != nil {
			srv.Handler().ServeHTTP(w, req)
			return
		}
		writeError(w, http.StatusNotFound,
			"replica serves /route /labels /metrics /healthz /promote; promote it to unlock the full surface")
	})
	return mux
}

// degraded wraps a stale-ok read: after promotion the promoted server
// answers authoritatively; before it, the wrapper stamps the staleness
// headers and rejects reads when no view exists yet.
func (r *Replica) degraded(fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if srv := r.promotedSrv.Load(); srv != nil {
			srv.Handler().ServeHTTP(w, req)
			return
		}
		st := r.SnapshotStats()
		w.Header().Set("Warning", staleWarning)
		w.Header().Set("X-Staleness-Ns", strconv.FormatInt(st.StalenessNs, 10))
		fn(w, req)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{msg})
}

type routeResponse struct {
	AppliedSeq uint64  `json:"applied_seq"`
	From       int     `json:"from"`
	Dest       int     `json:"dest"`
	Dist       float64 `json:"dist"` // hop count, -1 when unreachable
	Path       []int   `json:"path,omitempty"`
	Stale      bool    `json:"stale"`
}

// handleRoute walks the replicated next-hop labels. The labels may lag the
// replicated topology (they are journaled after each batch), so every step
// is validated against the applied graph; a chain the lag has broken is a
// 503 — the honest degraded answer — rather than a wrong path.
func (r *Replica) handleRoute(w http.ResponseWriter, req *http.Request) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a := r.applier
	if a == nil || !a.UsableLabels() {
		writeError(w, http.StatusServiceUnavailable, "no replicated label view yet")
		return
	}
	raw := req.URL.Query().Get("from")
	from, err := strconv.Atoi(raw)
	if err != nil || from < 0 || from >= a.G.N() {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("from %q out of range [0,%d)", raw, a.G.N()))
		return
	}
	ls := a.Labels
	resp := routeResponse{AppliedSeq: a.Seq, From: from, Dest: ls.Dest, Dist: -1, Stale: true}
	if d := ls.Dist[from]; !math.IsInf(d, 1) {
		resp.Dist = d
		path := []int{from}
		for v := from; v != ls.Dest; {
			nx := int(ls.Next[v])
			if nx < 0 || nx >= a.G.N() || !a.G.HasEdge(v, nx) || len(path) > a.G.N() {
				writeError(w, http.StatusServiceUnavailable,
					"replicated next-hop chain broken by label lag, retry or promote")
				return
			}
			path = append(path, nx)
			v = nx
		}
		resp.Path = path
	}
	writeJSON(w, http.StatusOK, resp)
}

type labelsSummary struct {
	AppliedSeq uint64 `json:"applied_seq"`
	Nodes      int    `json:"nodes"`
	Edges      int    `json:"edges"`
	LabelSeq   uint64 `json:"label_seq"`
	Stale      bool   `json:"stale"`
	GraphHash  string `json:"graph_hash,omitempty"` // only with ?hash=1
}

func (r *Replica) handleLabels(w http.ResponseWriter, req *http.Request) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a := r.applier
	if a == nil {
		writeError(w, http.StatusServiceUnavailable, "no replicated view yet")
		return
	}
	sum := labelsSummary{AppliedSeq: a.Seq, Nodes: a.G.N(), Edges: a.G.M(), Stale: true}
	if a.Labels != nil {
		sum.LabelSeq = a.Labels.Seq
	}
	if req.URL.Query().Get("hash") != "" {
		sum.GraphHash = fmt.Sprintf("%016x", wal.GraphHash(a.G))
	}
	writeJSON(w, http.StatusOK, sum)
}

func (r *Replica) handleMetrics(w http.ResponseWriter, req *http.Request) {
	if srv := r.promotedSrv.Load(); srv != nil {
		srv.Handler().ServeHTTP(w, req)
		return
	}
	writeJSON(w, http.StatusOK, r.SnapshotStats())
}

func (r *Replica) handleHealthz(w http.ResponseWriter, req *http.Request) {
	if srv := r.promotedSrv.Load(); srv != nil {
		srv.Handler().ServeHTTP(w, req)
		return
	}
	role := "replica"
	if r.deposed.Load() {
		role = "replica-orphaned"
	}
	seq, _ := r.Applied()
	writeJSON(w, http.StatusOK, struct {
		Status     string `json:"status"`
		Role       string `json:"role"`
		AppliedSeq uint64 `json:"applied_seq"`
	}{"ok", role, seq})
}

var promoteMu sync.Mutex

// handlePromote (POST) performs failover in-process: the follow loop stops,
// the mirrored store is recovered under a bumped fence, and all subsequent
// requests are served by the promoted primary.
func (r *Replica) handlePromote(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "promote requires POST")
		return
	}
	promoteMu.Lock()
	defer promoteMu.Unlock()
	if r.promoted.Load() {
		writeError(w, http.StatusConflict, ErrPromoted.Error())
		return
	}
	srv, l, rec, err := r.Promote()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	_ = srv
	m := l.Metrics()
	writeJSON(w, http.StatusOK, struct {
		Promoted bool   `json:"promoted"`
		Seq      uint64 `json:"seq"`
		Gen      uint64 `json:"gen"`
		Fence    uint64 `json:"fence"`
		Dirty    int    `json:"dirty_healed"`
	}{true, rec.Seq, m.Gen, m.Fence, len(rec.Dirty)})
}
