package replica

import (
	"testing"
	"time"

	"structura/internal/gen"
	"structura/internal/stats"
	"structura/internal/wal"
)

// BenchmarkReplicaCatchup prices a full cold sync over localhost TCP: one op
// is a fresh replica joining a 20k-node primary with a 200-batch log tail
// and mirroring it to the durable, applied state. b.SetBytes reports the
// stream volume, so the result reads as catch-up throughput.
func BenchmarkReplicaCatchup(b *testing.B) {
	const n = 20_000
	fs := wal.NewMemFS()
	g := gen.SparseErdosRenyi(stats.NewRand(3), n, 8.0/float64(n-1))
	l, err := wal.Create("prim", g, wal.Options{FS: fs, CompactEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		recs := make([]wal.Record, 0, 5)
		for j := 0; j < 5; j++ {
			u := int32((i*5 + j) % n)
			recs = append(recs, wal.Record{Type: wal.TAddEdge, U: u, V: (u + int32(n/2)) % int32(n), Weight: 1})
		}
		if _, err := l.Append(recs); err != nil {
			b.Fatal(err)
		}
	}
	p, err := NewPrimary(l, "127.0.0.1:0", PrimaryOptions{Poll: time.Millisecond, Heartbeat: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	defer l.Close()
	wantSeq := l.Seq()
	_, durable, _ := l.ReplState()
	b.SetBytes(durable)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := New("mir", p.Addr(), Options{WAL: wal.Options{FS: wal.NewMemFS()}, SkipCDS: true})
		if err != nil {
			b.Fatal(err)
		}
		go r.Run()
		deadline := time.Now().Add(60 * time.Second)
		for {
			seq, _ := r.Applied()
			if seq >= wantSeq {
				break
			}
			if time.Now().After(deadline) {
				b.Fatalf("replica stuck below seq %d", wantSeq)
			}
			time.Sleep(200 * time.Microsecond)
		}
		b.StopTimer()
		r.Stop()
		b.StartTimer()
	}
}
