// Package replica implements primary/replica replication for the WAL-backed
// serving layer. The primary streams its durable log — snapshot on connect
// or generation divergence, then raw log bytes by offset — over a
// length-prefixed TCP protocol; the replica mirrors the bytes into a
// crash-recoverable store directory (wal.Mirror), applies them live
// (wal.Applier) to serve degraded stale-ok reads, and can be promoted into
// a full primary with a bumped fencing token when the old one dies.
//
// The protocol is pull-anchored and idempotent: the replica opens with what
// it has (generation, durable offset, fence), the primary answers with
// state and then pushes only durable bytes, and every ack names the byte
// offset the replica has fsynced — so across any crash or reconnect,
// acked ≤ recovered ≤ committed holds on both ends.
package replica

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Message types. The wire format of every message is
//
//	u32 length | u8 type | payload
//
// with the length covering type byte + payload. Integers are
// little-endian; offsets are int64 values carried as two's-complement u64.
const (
	// mHello (replica → primary) opens a session: the replica's mirrored
	// generation, durable byte offset, and recorded fence.
	mHello = byte(1)
	// mState (primary → replica) answers a hello: the primary's live
	// generation, durable byte length, committed batch seq, and fence.
	mState = byte(2)
	// mSnapshot (primary → replica) carries a full-resync payload: the
	// snapshot file of generation Gen under fence Fence. Log bytes restart
	// at offset 0 after a snapshot.
	mSnapshot = byte(3)
	// mChunk (primary → replica) carries durable log bytes of generation
	// Gen starting at byte offset Off.
	mChunk = byte(4)
	// mAck (replica → primary) acknowledges durable (fsynced) mirroring
	// through byte offset Off of generation Gen.
	mAck = byte(5)
	// mReject (primary → replica) refuses a session because the hello's
	// fence proves the primary is deposed; Fence echoes the winning token.
	mReject = byte(6)
	// mHeartbeat (primary → replica) is mState re-sent on an idle stream:
	// liveness plus the replica's staleness reference.
	mHeartbeat = byte(7)
)

// maxMsg bounds any single message (the snapshot payload dominates).
const maxMsg = 1 << 28

// msg is the decoded union of every message type.
type msg struct {
	Kind  byte
	Gen   uint64
	Off   int64  // hello/chunk/ack: byte offset; state/heartbeat: durable length
	Seq   uint64 // state/heartbeat: committed batch seq
	Fence uint64
	Data  []byte // snapshot / chunk payload
}

var errFrame = errors.New("replica: malformed protocol frame")

// header sizes per kind: the fixed-width fields preceding Data.
func fixedLen(kind byte) (int, error) {
	switch kind {
	case mHello:
		return 8 + 8 + 8, nil // gen, off, fence
	case mState, mHeartbeat:
		return 8 + 8 + 8 + 8, nil // gen, durable, seq, fence
	case mSnapshot:
		return 8 + 8, nil // gen, fence; data follows
	case mChunk:
		return 8 + 8, nil // gen, off; data follows
	case mAck:
		return 8 + 8, nil // gen, off
	case mReject:
		return 8, nil // fence
	default:
		return 0, fmt.Errorf("%w: unknown type %d", errFrame, kind)
	}
}

// encode appends m's wire form to buf.
func (m msg) encode(buf []byte) []byte {
	fixed, err := fixedLen(m.Kind)
	if err != nil {
		panic("replica: encoding unknown message type")
	}
	total := 1 + fixed + len(m.Data)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(total))
	buf = append(buf, m.Kind)
	switch m.Kind {
	case mHello:
		buf = binary.LittleEndian.AppendUint64(buf, m.Gen)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Off))
		buf = binary.LittleEndian.AppendUint64(buf, m.Fence)
	case mState, mHeartbeat:
		buf = binary.LittleEndian.AppendUint64(buf, m.Gen)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Off))
		buf = binary.LittleEndian.AppendUint64(buf, m.Seq)
		buf = binary.LittleEndian.AppendUint64(buf, m.Fence)
	case mSnapshot:
		buf = binary.LittleEndian.AppendUint64(buf, m.Gen)
		buf = binary.LittleEndian.AppendUint64(buf, m.Fence)
	case mChunk:
		buf = binary.LittleEndian.AppendUint64(buf, m.Gen)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Off))
	case mAck:
		buf = binary.LittleEndian.AppendUint64(buf, m.Gen)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Off))
	case mReject:
		buf = binary.LittleEndian.AppendUint64(buf, m.Fence)
	}
	return append(buf, m.Data...)
}

// decodeMsg parses one message body (everything after the u32 length).
func decodeMsg(body []byte) (msg, error) {
	if len(body) < 1 {
		return msg{}, fmt.Errorf("%w: empty body", errFrame)
	}
	m := msg{Kind: body[0]}
	fixed, err := fixedLen(m.Kind)
	if err != nil {
		return msg{}, err
	}
	p := body[1:]
	if len(p) < fixed {
		return msg{}, fmt.Errorf("%w: type %d body %d < %d", errFrame, m.Kind, len(p), fixed)
	}
	switch m.Kind {
	case mHello:
		m.Gen = binary.LittleEndian.Uint64(p)
		m.Off = int64(binary.LittleEndian.Uint64(p[8:]))
		m.Fence = binary.LittleEndian.Uint64(p[16:])
	case mState, mHeartbeat:
		m.Gen = binary.LittleEndian.Uint64(p)
		m.Off = int64(binary.LittleEndian.Uint64(p[8:]))
		m.Seq = binary.LittleEndian.Uint64(p[16:])
		m.Fence = binary.LittleEndian.Uint64(p[24:])
	case mSnapshot:
		m.Gen = binary.LittleEndian.Uint64(p)
		m.Fence = binary.LittleEndian.Uint64(p[8:])
	case mChunk:
		m.Gen = binary.LittleEndian.Uint64(p)
		m.Off = int64(binary.LittleEndian.Uint64(p[8:]))
	case mAck:
		m.Gen = binary.LittleEndian.Uint64(p)
		m.Off = int64(binary.LittleEndian.Uint64(p[8:]))
	case mReject:
		m.Fence = binary.LittleEndian.Uint64(p)
	}
	if fixed < len(p) {
		if m.Kind != mSnapshot && m.Kind != mChunk {
			return msg{}, fmt.Errorf("%w: type %d carries unexpected payload", errFrame, m.Kind)
		}
		m.Data = append([]byte(nil), p[fixed:]...)
	}
	return m, nil
}

// writeMsg frames and writes one message.
func writeMsg(w io.Writer, m msg) error {
	_, err := w.Write(m.encode(nil))
	return err
}

// readMsg reads one length-prefixed message.
func readMsg(r io.Reader) (msg, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return msg{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxMsg {
		return msg{}, fmt.Errorf("%w: implausible length %d", errFrame, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return msg{}, err
	}
	return decodeMsg(body)
}
