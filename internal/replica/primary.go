package replica

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"structura/internal/wal"
)

// PrimaryOptions tunes the primary's replication listener. The zero value
// gets serving defaults.
type PrimaryOptions struct {
	// Window caps unacked in-flight log bytes per session before the
	// sender waits for acks. Default 1 MiB.
	Window int64
	// Chunk is the per-message log payload cap. Default 64 KiB.
	Chunk int
	// Poll is how often the sender re-reads the durable frontier when the
	// replica is caught up. Default 2ms.
	Poll time.Duration
	// Heartbeat is the idle-stream liveness interval. Default 250ms.
	Heartbeat time.Duration
	// IOTimeout bounds each network read/write. Default 10s.
	IOTimeout time.Duration
}

func (o *PrimaryOptions) setDefaults() {
	if o.Window <= 0 {
		o.Window = 1 << 20
	}
	if o.Chunk <= 0 {
		o.Chunk = 64 << 10
	}
	if o.Poll <= 0 {
		o.Poll = 2 * time.Millisecond
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = 250 * time.Millisecond
	}
	if o.IOTimeout <= 0 {
		o.IOTimeout = 10 * time.Second
	}
}

// PrimaryStats is the primary-side replication counter block.
type PrimaryStats struct {
	Sessions      uint64 `json:"sessions"`       // replication sessions accepted
	Rejects       uint64 `json:"rejects"`        // sessions refused by fencing
	SnapshotsSent uint64 `json:"snapshots_sent"` // full-resync payloads shipped
	ChunksSent    uint64 `json:"chunks_sent"`
	BytesSent     uint64 `json:"bytes_sent"`    // log bytes shipped (excl. snapshots)
	AckedBytes    uint64 `json:"acked_bytes"`   // highest ack seen this process
	LastAckUnixNs int64  `json:"last_ack_unix"` // wall clock of the last ack, 0 when none
}

// Primary serves the replication stream for one wal.Log. Sessions are
// independent: each connected replica gets its own sender goroutine pushing
// durable bytes under a bounded in-flight window, with heartbeats when the
// stream idles. A hello carrying a higher fence than the log's own proves
// this primary was deposed while it was away — the log is fenced on the
// spot (all further writes fail wal.ErrFenced) and the session is refused.
type Primary struct {
	log  *wal.Log
	opts PrimaryOptions
	ln   net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed atomic.Bool
	wg     sync.WaitGroup

	sessions  atomic.Uint64
	rejects   atomic.Uint64
	snapsSent atomic.Uint64
	chunks    atomic.Uint64
	bytesSent atomic.Uint64
	ackedMax  atomic.Uint64
	lastAckNs atomic.Int64
}

// NewPrimary starts a replication listener on addr (e.g. "127.0.0.1:0")
// serving l's durable stream.
func NewPrimary(l *wal.Log, addr string, opts PrimaryOptions) (*Primary, error) {
	opts.setDefaults()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &Primary{log: l, opts: opts, ln: ln, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the bound listen address.
func (p *Primary) Addr() string { return p.ln.Addr().String() }

// Stats snapshots the replication counters.
func (p *Primary) Stats() PrimaryStats {
	return PrimaryStats{
		Sessions:      p.sessions.Load(),
		Rejects:       p.rejects.Load(),
		SnapshotsSent: p.snapsSent.Load(),
		ChunksSent:    p.chunks.Load(),
		BytesSent:     p.bytesSent.Load(),
		AckedBytes:    p.ackedMax.Load(),
		LastAckUnixNs: p.lastAckNs.Load(),
	}
}

// Close stops the listener and tears down every session.
func (p *Primary) Close() {
	if p.closed.Swap(true) {
		return
	}
	p.ln.Close()
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *Primary) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if p.closed.Load() {
			c.Close()
			return
		}
		p.mu.Lock()
		p.conns[c] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			defer func() {
				p.mu.Lock()
				delete(p.conns, c)
				p.mu.Unlock()
				c.Close()
			}()
			p.serveConn(c)
		}()
	}
}

// session tracks the per-connection cursor shared between the sender loop
// and the ack reader.
type session struct {
	mu     sync.Mutex
	gen    uint64 // generation of acked
	acked  int64  // durable offset the replica confirmed
	rehalo bool   // replica asked to re-anchor (mid-stream hello)
	hello  msg
	dead   bool
}

func (s *session) ack(gen uint64, off int64) {
	s.mu.Lock()
	if gen == s.gen && off > s.acked {
		s.acked = off
	}
	s.mu.Unlock()
}

// serveConn runs one replication session to completion.
func (p *Primary) serveConn(c net.Conn) {
	_ = c.SetReadDeadline(time.Now().Add(p.opts.IOTimeout))
	hello, err := readMsg(c)
	if err != nil || hello.Kind != mHello {
		return
	}
	p.sessions.Add(1)

	myGen, myDurable, mySeq := p.log.ReplState()
	myFence := p.log.FenceToken()
	if hello.Fence > myFence {
		// A higher fence exists: this primary was deposed. Fence the log so
		// no further local write can land, and refuse the session.
		p.log.MarkFenced()
		p.rejects.Add(1)
		_ = c.SetWriteDeadline(time.Now().Add(p.opts.IOTimeout))
		_ = writeMsg(c, msg{Kind: mReject, Fence: hello.Fence})
		return
	}
	_ = c.SetWriteDeadline(time.Now().Add(p.opts.IOTimeout))
	if err := writeMsg(c, msg{Kind: mState, Gen: myGen, Off: myDurable, Seq: mySeq, Fence: myFence}); err != nil {
		return
	}

	sess := &session{hello: hello}

	// Ack reader: consumes acks (and mid-stream hellos after a replica-side
	// gap) until the connection dies.
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			_ = c.SetReadDeadline(time.Now().Add(p.opts.IOTimeout))
			m, rerr := readMsg(c)
			if rerr != nil {
				sess.mu.Lock()
				sess.dead = true
				sess.mu.Unlock()
				return
			}
			switch m.Kind {
			case mAck:
				sess.ack(m.Gen, m.Off)
				if off := uint64(m.Off); off > p.ackedMax.Load() {
					p.ackedMax.Store(off)
				}
				p.lastAckNs.Store(time.Now().UnixNano())
			case mHello:
				sess.mu.Lock()
				sess.rehalo, sess.hello = true, m
				sess.mu.Unlock()
			}
		}
	}()

	p.sendLoop(c, sess, hello)
	c.Close() // unblocks the reader
	<-readerDone
}

// sendLoop pushes the durable stream: snapshot when generations diverge,
// then chunks under the in-flight window, heartbeats when idle.
func (p *Primary) sendLoop(c net.Conn, sess *session, hello msg) {
	var sendGen uint64
	var sendOff int64
	synced := false // sendGen/sendOff anchored to the replica's state

	myGen, myDurable, _ := p.log.ReplState()
	if hello.Gen == myGen && hello.Off <= myDurable {
		sendGen, sendOff, synced = myGen, hello.Off, true
		sess.mu.Lock()
		sess.gen, sess.acked = sendGen, sendOff
		sess.mu.Unlock()
	}

	lastSend := time.Now()
	for !p.closed.Load() {
		sess.mu.Lock()
		dead, rehalo, h := sess.dead, sess.rehalo, sess.hello
		sess.rehalo = false
		sess.mu.Unlock()
		if dead {
			return
		}
		if rehalo {
			myGen, myDurable, _ = p.log.ReplState()
			synced = h.Gen == myGen && h.Off <= myDurable
			if synced {
				sendGen, sendOff = myGen, h.Off
				sess.mu.Lock()
				sess.gen, sess.acked = sendGen, sendOff
				sess.mu.Unlock()
			}
		}

		if !synced {
			gen, snap, err := p.log.SnapshotBytes()
			if err != nil {
				return
			}
			_ = c.SetWriteDeadline(time.Now().Add(p.opts.IOTimeout))
			if err := writeMsg(c, msg{Kind: mSnapshot, Gen: gen, Fence: p.log.FenceToken(), Data: snap}); err != nil {
				return
			}
			p.snapsSent.Add(1)
			sendGen, sendOff, synced = gen, 0, true
			sess.mu.Lock()
			sess.gen, sess.acked = sendGen, 0
			sess.mu.Unlock()
			lastSend = time.Now()
		}

		gen, durable, seq := p.log.ReplState()
		if gen != sendGen {
			synced = false // compaction swapped generations: full resync
			continue
		}

		sent := false
		for sendOff < durable {
			sess.mu.Lock()
			acked := sess.acked
			sess.mu.Unlock()
			if sendOff-acked >= p.opts.Window {
				break // window full: wait for acks
			}
			max := p.opts.Chunk
			if rem := durable - sendOff; int64(max) > rem {
				max = int(rem)
			}
			chunk, err := p.log.LogChunk(sendGen, sendOff, max)
			if err != nil {
				if errors.Is(err, wal.ErrGenGone) {
					synced = false
					break
				}
				return
			}
			if len(chunk) == 0 {
				break
			}
			_ = c.SetWriteDeadline(time.Now().Add(p.opts.IOTimeout))
			if err := writeMsg(c, msg{Kind: mChunk, Gen: sendGen, Off: sendOff, Data: chunk}); err != nil {
				return
			}
			sendOff += int64(len(chunk))
			p.chunks.Add(1)
			p.bytesSent.Add(uint64(len(chunk)))
			lastSend = time.Now()
			sent = true
		}
		if !synced {
			continue
		}
		if !sent {
			if time.Since(lastSend) >= p.opts.Heartbeat {
				_ = c.SetWriteDeadline(time.Now().Add(p.opts.IOTimeout))
				if err := writeMsg(c, msg{Kind: mHeartbeat, Gen: gen, Off: durable, Seq: seq, Fence: p.log.FenceToken()}); err != nil {
					return
				}
				lastSend = time.Now()
			}
			time.Sleep(p.opts.Poll)
		}
	}
}
