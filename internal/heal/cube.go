package heal

import (
	"structura/internal/graph"
	"structura/internal/hypercube"
	"structura/internal/runtime"
	"structura/internal/sim"
)

// cubeEngine maintains hypercube safety levels on a churned cube support.
// The invariant is the footnote-3 fixed point on the live neighborhood;
// localized repair is the budgeted RelaxLevels frontier (levels can move in
// both directions under churn, so the budget — not monotonicity — bounds
// the attempt), and escalation is the from-the-top RecomputeLevels whose
// convergence monotonicity does guarantee.
type cubeEngine struct {
	g      *graph.Graph
	faulty []bool
	levels []int
	dim    int
}

func newCubeEngine(seed uint64) (*cubeEngine, error) {
	cube := sim.FaultyCube(seed)
	g := cube.Graph()
	n := g.N()
	faulty := make([]bool, n)
	for v := 0; v < n; v++ {
		faulty[v] = cube.Faulty(v)
	}
	levels := make([]int, n)
	hypercube.RecomputeLevels(g, levels, faulty, cube.Dim())
	return &cubeEngine{g: g, faulty: faulty, levels: levels, dim: cube.Dim()}, nil
}

func (e *cubeEngine) Name() string       { return "hypercube" }
func (e *cubeEngine) Live() *graph.Graph { return e.g }

func (e *cubeEngine) Apply(ev sim.Event) ([]int, bool) {
	return applyEdgeEvent(e.g, ev)
}

func (e *cubeEngine) CheckLocal(dirty []int) []sim.Violation {
	if len(dirty) == 0 {
		return nil
	}
	bad := hypercube.InconsistentLevels(e.g, e.levels, e.faulty, e.dim, expandNeighbors(e.g, dirty))
	out := make([]sim.Violation, 0, len(bad))
	for _, v := range bad {
		out = append(out, sim.Violation{
			Invariant: "hypercube-level-consistent", Node: v, Edge: [2]int{-1, -1},
			Detail: "level disagrees with the footnote-3 rule on the live neighborhood",
		})
	}
	return out
}

func (e *cubeEngine) Repair(viols []sim.Violation, b Budget) RepairOutcome {
	touched, rounds, ok := hypercube.RelaxLevels(e.g, e.levels, e.faulty, e.dim,
		violationNodes(viols), b.MaxRounds, b.MaxTouched)
	return RepairOutcome{Touched: touched, Rounds: rounds, OK: ok}
}

func (e *cubeEngine) Recompute() (int, error) {
	return hypercube.RecomputeLevels(e.g, e.levels, e.faulty, e.dim), nil
}

func (e *cubeEngine) Snapshot() *sim.World {
	levels := append([]int(nil), e.levels...)
	return &sim.World{
		Scenario: "heal-hypercube",
		Graph:    e.g.Clone(),
		Stats:    runtime.Stats{Stable: true},
		Cube: &sim.CubeWorld{
			Dim:    e.dim,
			Faulty: append([]bool(nil), e.faulty...),
			Levels: levels,
			// Supervised maintenance legitimately moves levels both ways, so
			// the one-shot monotonicity ledger is vacuous here: MinLevels
			// mirrors Levels and no peaks are recorded.
			MinLevels: append([]int(nil), levels...),
			Peaks:     make([]int, len(levels)),
		},
	}
}
