// Package heal is the supervision layer that turns the one-shot labeling
// engines (MIS, CDS, distance vector, hypercube safety levels, link
// reversal) into long-running, self-healing ones. The paper's premise is
// uncovering structure in *dynamic* environments, and the chaos harness
// showed what happens without maintenance: under sustained churn the MIS
// election provably fails to self-stabilize and distance vectors count to
// infinity. Following the maintenance-protocol view of dynamic-network
// theory (Casteigts et al.), a Supervisor runs the detect → repair →
// escalate state machine against a sim fault timeline:
//
//	detect   — cheap local checks on the nodes each churn event dirtied
//	           (complete for edge churn: an edge flip can only invalidate
//	           its endpoints' local rules), plus periodic full sweeps of
//	           the sim invariant registry as a safety net;
//	repair   — an engine-specific localized fix confined to the violated
//	           neighborhood, under an explicit Budget (max repair rounds,
//	           max touched nodes);
//	escalate — when the budget is exhausted or the repair fails to verify,
//	           a full recompute from the live topology.
//
// The Report quantifies what the paper's maintenance story needs: detection
// latency, repair locality (fraction of nodes touched), and localized
// repair rounds versus full-recompute rounds.
package heal

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"structura/internal/graph"
	"structura/internal/sim"
)

// Budget bounds one localized repair: at most MaxRounds repair sweeps and
// MaxTouched distinct touched nodes. A bound <= 0 is unbounded. A repair
// that would exceed either bound stops and reports !OK, which the
// Supervisor converts into an escalation to full recompute.
//
// Ctx, when non-nil, threads cancellation through the repair itself
// (mirroring runtime.WithContext): engines check it between repair sweeps
// and stop mid-cascade when it fires, reporting !OK. Cancellation is NOT a
// budget exhaustion — the Supervisor re-checks its own context after every
// repair and surfaces ctx.Err() instead of escalating, so a shutdown during
// an active repair aborts cleanly rather than triggering the full recompute
// it would also have to abandon. The Supervisor fills this field from its
// own Ctx; callers invoking Engine.Repair directly may set it themselves.
type Budget struct {
	MaxRounds  int
	MaxTouched int
	Ctx        context.Context
}

// Err reports the budget context's error if the context is done, nil
// otherwise (including for the nil context). Engines whose repair loops
// live in this package poll it between repair moves.
func (b Budget) Err() error {
	if b.Ctx == nil {
		return nil
	}
	select {
	case <-b.Ctx.Done():
		return b.Ctx.Err()
	default:
		return nil
	}
}

// RepairOutcome is what an engine's localized repair reports back.
type RepairOutcome struct {
	Touched []int // distinct nodes examined or moved, sorted
	Rounds  int   // repair sweeps (the localized analogue of kernel rounds)
	OK      bool  // false: budget exhausted mid-repair, caller must escalate
}

// Engine is a supervised labeling engine: a live structure over a churning
// support graph with local detection, localized repair, and full recompute.
// Implementations live in this package, one per labeling scheme.
type Engine interface {
	Name() string

	// Live returns the current support topology. The caller must treat it
	// as read-only; all mutation goes through Apply.
	Live() *graph.Graph

	// Apply executes one churn event against the live structure and
	// returns the nodes whose local rules the event may have invalidated,
	// plus whether the event applied at all.
	Apply(e sim.Event) (dirty []int, applied bool)

	// CheckLocal runs the engine's local detector over the dirtied nodes
	// (expanding to neighbors as the engine's rule requires) and returns
	// the violations found. For edge churn these detectors are complete:
	// no violation exists unless one is rooted at a dirtied node.
	CheckLocal(dirty []int) []sim.Violation

	// Repair attempts a localized fix for the violations under the budget.
	Repair(viols []sim.Violation, b Budget) RepairOutcome

	// Recompute rebuilds the structure from the live topology, returning
	// the equivalent round cost. An error means even a full rebuild cannot
	// restore the invariant (e.g. the support was partitioned).
	Recompute() (rounds int, err error)

	// Snapshot assembles the sim.World the invariant registry checks —
	// the ground truth the supervisor's final sweep is judged by.
	Snapshot() *sim.World
}

// NewEngine constructs a supervised engine by scenario name over the
// seed's topology — the same topology the sim scenario of that name uses,
// so chaos findings replay under supervision.
func NewEngine(name string, seed uint64) (Engine, error) {
	switch name {
	case "mis":
		return newMISEngine(seed)
	case "cds":
		return newCDSEngine(seed)
	case "distvec":
		return newDistVecEngine(seed)
	case "hypercube":
		return newCubeEngine(seed)
	case "reversal":
		return newReversalEngine(seed)
	}
	return nil, fmt.Errorf("heal: unknown engine %q (want mis, cds, distvec, hypercube or reversal)", name)
}

// EngineNames lists the supervised engines.
func EngineNames() []string {
	return []string{"cds", "distvec", "hypercube", "mis", "reversal"}
}

// Detection records one transition of the state machine from monitoring to
// repairing.
type Detection struct {
	Round      int    // round the violation was detected
	FaultRound int    // most recent round a fault applied
	Latency    int    // Round - FaultRound: 0 for dirty-tracking, up to SweepEvery for sweeps
	Violations int    // violations in the batch
	First      string // first violation, for reporting
}

// Report is a supervised run, quantified.
type Report struct {
	Engine string
	Nodes  int
	Rounds int // supervision rounds executed
	Events int // churn events applied

	Detections []Detection
	MaxLatency int // max detection latency over all detections

	Repairs        int     // localized repairs attempted
	RepairRounds   int     // total localized repair sweeps
	RepairTouched  int     // total distinct nodes touched by successful repairs
	MaxTouchedFrac float64 // worst repair locality among successful repairs

	Escalations     int // budget exhaustions or failed verifications
	RecomputeRounds int // total full-recompute round cost

	Sweeps   int             // periodic full invariant sweeps run
	Standing []sim.Violation // violations left after the final sweep
}

// Supervisor drives one engine through a fault timeline. The zero value of
// the tuning fields is usable: an unbounded budget and no periodic sweeps
// (local detection is complete for edge churn, and a final sweep always
// runs).
type Supervisor struct {
	Engine Engine
	Budget Budget

	// SweepEvery > 0 runs a full invariant-registry sweep every that many
	// rounds even when local detection stayed quiet — the safety net that
	// bounds detection latency if a local detector misses.
	SweepEvery int

	// ForceRecompute disables localized repair: every detection escalates
	// straight to full recompute. The comparison baseline for the
	// repair-vs-recompute experiment.
	ForceRecompute bool

	// Ctx, when non-nil, cancels the supervision (mirroring
	// runtime.WithContext): Run checks it between rounds, ApplyBatch
	// between events, and both thread it into each repair's Budget so an
	// active repair stops mid-cascade. A cancelled run returns the report
	// accumulated so far together with ctx.Err(); no escalation happens on
	// cancellation, so the engine's labels are simply left where the repair
	// stopped — callers must not publish them.
	Ctx context.Context
}

// cancelled reports the supervisor context's error, if any.
func (s *Supervisor) cancelled() error {
	if s.Ctx == nil {
		return nil
	}
	select {
	case <-s.Ctx.Done():
		return s.Ctx.Err()
	default:
		return nil
	}
}

// ErrNoEngine reports a Supervisor run without an engine.
var ErrNoEngine = errors.New("heal: supervisor has no engine")

// Run supervises the engine through the (seed, schedule) fault timeline:
// sch's scripted edge events and churn draws stream in round by round (the
// same FaultStream discipline the CDS and reversal scenarios use), and
// every round executes one detect → repair → escalate cycle. The final
// report includes a full invariant sweep; a healthy supervised engine ends
// with Standing empty.
func (s *Supervisor) Run(seed uint64, sch sim.Schedule) (*Report, error) {
	if s.Engine == nil {
		return nil, ErrNoEngine
	}
	if err := sch.Validate(); err != nil {
		return nil, err
	}
	eng := s.Engine
	rep := &Report{Engine: eng.Name(), Nodes: eng.Live().N()}
	fs := sim.NewFaultStream(seed, sch)
	lastFault := 0
	inIncident := false
	var pending []int // nodes of an unresolved incident, retried every round
	for round := 1; round <= fs.MaxRound(); round++ {
		if cerr := s.cancelled(); cerr != nil {
			return rep, cerr
		}
		rep.Rounds = round
		dirty := append([]int(nil), pending...)
		for _, e := range fs.RoundEvents(round, eng.Live()) {
			d, applied := eng.Apply(e)
			if applied {
				rep.Events++
				lastFault = round
				dirty = append(dirty, d...)
			}
		}
		viols := eng.CheckLocal(dirty)
		if len(viols) == 0 && s.SweepEvery > 0 && round%s.SweepEvery == 0 {
			rep.Sweeps++
			viols = s.sweep()
		}
		if len(viols) == 0 {
			pending, inIncident = nil, false
			continue
		}
		if !inIncident {
			det := Detection{
				Round:      round,
				FaultRound: lastFault,
				Latency:    round - lastFault,
				Violations: len(viols),
				First:      viols[0].String(),
			}
			rep.Detections = append(rep.Detections, det)
			if det.Latency > rep.MaxLatency {
				rep.MaxLatency = det.Latency
			}
			inIncident = true
		}
		// An incident that survives repair AND recompute (a partitioned
		// support) stays pending: it is retried every following round, so a
		// reconnecting edge heals it without waiting for a sweep.
		left, rerr := s.resolve(rep, viols, dirty)
		if rerr != nil {
			return rep, rerr
		}
		pending = violationNodes(left)
		inIncident = len(pending) > 0
	}
	rep.Standing = s.sweep()
	return rep, nil
}

// ApplyBatch drives one detect → repair → escalate cycle for an ad-hoc
// batch of edge events outside any fault timeline — the ingest path of a
// serving layer, where mutation batches arrive from clients instead of a
// sim.Schedule. Events' Round fields are ignored. The returned report
// covers just this batch (Rounds is 1; Standing lists violations that
// survived repair AND recompute, e.g. a disconnected support). On
// cancellation via s.Ctx the batch is abandoned where it stands and
// ctx.Err() is returned: the engine's labels may be mid-repair, so the
// caller must not publish them.
func (s *Supervisor) ApplyBatch(events []sim.Event) (*Report, error) {
	if s.Engine == nil {
		return nil, ErrNoEngine
	}
	eng := s.Engine
	rep := &Report{Engine: eng.Name(), Nodes: eng.Live().N(), Rounds: 1}
	var dirty []int
	for _, e := range events {
		if cerr := s.cancelled(); cerr != nil {
			return rep, cerr
		}
		if d, applied := eng.Apply(e); applied {
			rep.Events++
			dirty = append(dirty, d...)
		}
	}
	viols := eng.CheckLocal(dirty)
	if len(viols) == 0 {
		return rep, nil
	}
	rep.Detections = append(rep.Detections, Detection{
		Round: 1, FaultRound: 1, Violations: len(viols), First: viols[0].String(),
	})
	left, err := s.resolve(rep, viols, dirty)
	if err != nil {
		return rep, err
	}
	rep.Standing = left
	return rep, nil
}

// resolve runs the repair → verify → escalate arm of the state machine for
// one detection batch, returning the violations still standing afterwards.
// A non-nil error means the supervisor's context fired mid-resolution: the
// engine's labels are wherever the repair stopped, and no escalation has
// happened.
func (s *Supervisor) resolve(rep *Report, viols []sim.Violation, dirty []int) ([]sim.Violation, error) {
	eng := s.Engine
	if !s.ForceRecompute {
		b := s.Budget
		if b.Ctx == nil {
			b.Ctx = s.Ctx
		}
		out := eng.Repair(viols, b)
		rep.Repairs++
		rep.RepairRounds += out.Rounds
		// A cancelled repair aborts the whole resolution: escalating would
		// start a full recompute the caller is about to abandon anyway.
		if cerr := s.cancelled(); cerr != nil {
			return viols, cerr
		}
		// A repair must verify before it counts: the engine's detector is
		// re-run over everything the repair moved plus the original dirty
		// set. Anything left standing escalates.
		if out.OK {
			left := eng.CheckLocal(append(append([]int(nil), out.Touched...), dirty...))
			if len(left) == 0 {
				rep.RepairTouched += len(out.Touched)
				if n := eng.Live().N(); n > 0 {
					if frac := float64(len(out.Touched)) / float64(n); frac > rep.MaxTouchedFrac {
						rep.MaxTouchedFrac = frac
					}
				}
				return nil, nil
			}
		}
	}
	if cerr := s.cancelled(); cerr != nil {
		return viols, cerr
	}
	rep.Escalations++
	if rounds, err := eng.Recompute(); err == nil {
		rep.RecomputeRounds += rounds
		return nil, nil
	}
	// A failed recompute (partitioned support): the incident stays open.
	return viols, nil
}

// Sweep checks every registered invariant against the engine's current
// snapshot — the audit a caller runs after rebuilding an engine from
// durable state, where the labels were constructed rather than healed.
func (s *Supervisor) Sweep() []sim.Violation { return s.sweep() }

// sweep checks every registered invariant against the engine's snapshot.
func (s *Supervisor) sweep() []sim.Violation {
	w := s.Engine.Snapshot()
	var out []sim.Violation
	for _, inv := range sim.Invariants() {
		out = append(out, inv.Check(w)...)
	}
	return out
}

// expandNeighbors returns the distinct valid nodes of `nodes` plus all their
// neighbors, sorted — the candidate set for detectors whose rule reads the
// neighbors' labels (distvec, hypercube), where a label change at v can make
// v's neighbors inconsistent too.
func expandNeighbors(g *graph.Graph, nodes []int) []int {
	set := map[int]bool{}
	for _, v := range nodes {
		if v < 0 || v >= g.N() {
			continue
		}
		set[v] = true
		g.EachNeighbor(v, func(w int, _ float64) { set[w] = true })
	}
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// applyEdgeEvent mutates g per an add-edge / remove-edge event, reporting
// the dirtied endpoints and whether the event applied (scripted events can
// target edges that no longer exist, or duplicates).
func applyEdgeEvent(g *graph.Graph, e sim.Event) ([]int, bool) {
	switch e.Op {
	case sim.OpAddEdge:
		if e.U == e.V || g.HasEdge(e.U, e.V) {
			return nil, false
		}
		if err := g.AddEdge(e.U, e.V); err != nil {
			return nil, false
		}
	case sim.OpRemoveEdge:
		if !g.RemoveEdge(e.U, e.V) {
			return nil, false
		}
	default:
		return nil, false
	}
	return []int{e.U, e.V}, true
}

// violationNodes extracts the distinct node seeds of a violation batch
// (edge violations contribute both endpoints), sorted — the seed set
// engine repairs cascade from.
func violationNodes(viols []sim.Violation) []int {
	set := map[int]bool{}
	for _, v := range viols {
		if v.Node >= 0 {
			set[v.Node] = true
			continue
		}
		for _, e := range v.Edge {
			if e >= 0 {
				set[e] = true
			}
		}
	}
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
