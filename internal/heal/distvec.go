package heal

import (
	"structura/internal/distvec"
	"structura/internal/graph"
	"structura/internal/runtime"
	"structura/internal/sim"
)

// distvecEngine supervises the distance-vector labels toward destination 0
// via the distvec.Maintainer: split-horizon/poisoned-reverse advertisements
// with a hop ceiling. Local consistency is a complete detector (the global
// fixed point equals BFS hop counts), and the candidate set must include
// the dirtied nodes' neighbors: poisoning an endpoint changes the offers
// its neighbors see.
type distvecEngine struct {
	g *graph.Graph // live mirror, kept in lockstep with the maintainer's clone
	m *distvec.Maintainer
}

func newDistVecEngine(seed uint64) (*distvecEngine, error) {
	g := sim.DistVecRing(seed)
	m, err := distvec.NewMaintainer(g, 0)
	if err != nil {
		return nil, err
	}
	return &distvecEngine{g: g, m: m}, nil
}

func (e *distvecEngine) Name() string       { return "distvec" }
func (e *distvecEngine) Live() *graph.Graph { return e.g }

func (e *distvecEngine) Apply(ev sim.Event) ([]int, bool) {
	dirty, applied := applyEdgeEvent(e.g, ev)
	if !applied {
		return nil, false
	}
	var err error
	if ev.Op == sim.OpAddEdge {
		_, err = e.m.AddEdge(ev.U, ev.V)
	} else {
		_, err = e.m.RemoveEdge(ev.U, ev.V)
	}
	if err != nil {
		// The mirror accepted the event, so the maintainer must have too.
		panic("heal: distvec maintainer diverged from live mirror: " + err.Error())
	}
	return dirty, true
}

func (e *distvecEngine) CheckLocal(dirty []int) []sim.Violation {
	if len(dirty) == 0 {
		return nil
	}
	bad := e.m.Inconsistent(expandNeighbors(e.g, dirty))
	out := make([]sim.Violation, 0, len(bad))
	for _, v := range bad {
		out = append(out, sim.Violation{
			Invariant: "distvec-local-consistency", Node: v, Edge: [2]int{-1, -1},
			Detail: "label disagrees with neighbors' poisoned advertisements",
		})
	}
	return out
}

func (e *distvecEngine) Repair(viols []sim.Violation, b Budget) RepairOutcome {
	touched, rounds, ok := e.m.Repair(violationNodes(viols), b.MaxRounds, b.MaxTouched)
	return RepairOutcome{Touched: touched, Rounds: rounds, OK: ok}
}

func (e *distvecEngine) Recompute() (int, error) {
	return e.m.Recompute(), nil
}

func (e *distvecEngine) Snapshot() *sim.World {
	return &sim.World{
		Scenario: "heal-distvec",
		Graph:    e.g.Clone(),
		Stats:    runtime.Stats{Stable: true},
		Dist:     &sim.DistWorld{Dest: e.m.Dest(), Dist: e.m.Dist(), Stable: true},
	}
}
