package heal

import (
	"structura/internal/distvec"
	"structura/internal/graph"
	"structura/internal/runtime"
	"structura/internal/sim"
)

// distvecEngine supervises the distance-vector labels toward destination 0
// via the distvec.Maintainer: split-horizon/poisoned-reverse advertisements
// with a hop ceiling. Local consistency is a complete detector (the global
// fixed point equals BFS hop counts), and the candidate set must include
// the dirtied nodes' neighbors: poisoning an endpoint changes the offers
// its neighbors see.
type distvecEngine struct {
	g *graph.Graph // live mirror, kept in lockstep with the maintainer's clone
	m *distvec.Maintainer
}

func newDistVecEngine(seed uint64) (*distvecEngine, error) {
	return newDistVecEngineOver(sim.DistVecRing(seed), 0)
}

func newDistVecEngineOver(g *graph.Graph, dest int) (*distvecEngine, error) {
	m, err := distvec.NewMaintainer(g, dest)
	if err != nil {
		return nil, err
	}
	return &distvecEngine{g: g, m: m}, nil
}

// NewDistVecEngineOver builds a supervised distance-vector engine over the
// caller's topology (retained and mutated through Apply — pass a clone to
// keep the original) toward dest, for callers that maintain route labels on
// their own graph rather than a sim scenario: the serving layer's ingest
// path. RouteLabels exposes the labels an epoch publishes.
func NewDistVecEngineOver(g *graph.Graph, dest int) (Engine, error) {
	return newDistVecEngineOver(g, dest)
}

// RouteLabels returns copies of the current route labels: hop distances
// toward the destination (+Inf unreachable) and next hops (-1 at the
// destination and when unreachable).
func (e *distvecEngine) RouteLabels() (dist []float64, next []int) {
	return e.m.Dist(), e.m.NextHops()
}

func (e *distvecEngine) Name() string       { return "distvec" }
func (e *distvecEngine) Live() *graph.Graph { return e.g }

func (e *distvecEngine) Apply(ev sim.Event) ([]int, bool) {
	dirty, applied := applyEdgeEvent(e.g, ev)
	if !applied {
		return nil, false
	}
	var err error
	if ev.Op == sim.OpAddEdge {
		_, err = e.m.AddEdge(ev.U, ev.V)
	} else {
		_, err = e.m.RemoveEdge(ev.U, ev.V)
	}
	if err != nil {
		// The mirror accepted the event, so the maintainer must have too.
		panic("heal: distvec maintainer diverged from live mirror: " + err.Error())
	}
	return dirty, true
}

func (e *distvecEngine) CheckLocal(dirty []int) []sim.Violation {
	if len(dirty) == 0 {
		return nil
	}
	bad := e.m.Inconsistent(expandNeighbors(e.g, dirty))
	out := make([]sim.Violation, 0, len(bad))
	for _, v := range bad {
		out = append(out, sim.Violation{
			Invariant: "distvec-local-consistency", Node: v, Edge: [2]int{-1, -1},
			Detail: "label disagrees with neighbors' poisoned advertisements",
		})
	}
	return out
}

func (e *distvecEngine) Repair(viols []sim.Violation, b Budget) RepairOutcome {
	// A ctx error surfaces as !OK; the Supervisor re-checks its own context
	// after Repair and aborts instead of escalating.
	touched, rounds, ok, _ := e.m.RepairContext(b.Ctx, violationNodes(viols), b.MaxRounds, b.MaxTouched)
	return RepairOutcome{Touched: touched, Rounds: rounds, OK: ok}
}

func (e *distvecEngine) Recompute() (int, error) {
	return e.m.Recompute(), nil
}

func (e *distvecEngine) Snapshot() *sim.World {
	return &sim.World{
		Scenario: "heal-distvec",
		Graph:    e.g.Clone(),
		Stats:    runtime.Stats{Stable: true},
		Dist:     &sim.DistWorld{Dest: e.m.Dest(), Dist: e.m.Dist(), Stable: true},
	}
}
