package heal

import (
	"math"
	"math/rand"
	"testing"

	"structura/internal/gen"
	"structura/internal/graph"
	"structura/internal/sim"
)

// warmGraph is a seeded connected-ish test topology.
func warmGraph(seed int64, n int) *graph.Graph {
	g := gen.SparseErdosRenyi(rand.New(rand.NewSource(seed)), n, 4.0/float64(n))
	// Ring underlay keeps it connected so CDS construction succeeds.
	for i := 0; i < n; i++ {
		if !g.HasEdge(i, (i+1)%n) {
			_ = g.AddEdge(i, (i+1)%n)
		}
	}
	return g
}

// TestWarmStartMatchesCold: engines rebuilt from exported labels (the
// durable-epoch path) answer identically to the engines that computed them,
// with zero violations on a full-audit CheckLocal.
func TestWarmStartMatchesCold(t *testing.T) {
	g := warmGraph(3, 80)

	cold, err := newDistVecEngineOver(g.Clone(), 0)
	if err != nil {
		t.Fatal(err)
	}
	dist, next := cold.RouteLabels()
	warm, err := NewDistVecEngineFromLabels(g.Clone(), 0, dist, next)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, g.N())
	for i := range all {
		all[i] = i
	}
	if v := warm.CheckLocal(all); len(v) != 0 {
		t.Fatalf("warm distvec engine has %d violation(s) on clean labels: %v", len(v), v[0])
	}
	wdist, wnext := warm.(*distvecEngine).RouteLabels()
	for v := range dist {
		if dist[v] != wdist[v] || next[v] != wnext[v] {
			t.Fatalf("route label %d diverged: (%v,%d) vs (%v,%d)", v, dist[v], next[v], wdist[v], wnext[v])
		}
	}

	coldMIS, err := newMISEngineOver(g.Clone())
	if err != nil {
		t.Fatal(err)
	}
	warmMIS, err := NewMISEngineFromLabels(g.Clone(), coldMIS.MISLabels())
	if err != nil {
		t.Fatal(err)
	}
	if v := warmMIS.CheckLocal(all); len(v) != 0 {
		t.Fatalf("warm MIS engine has %d violation(s) on clean labels", len(v))
	}

	coldCDS, err := newCDSEngineOver(g.Clone())
	if err != nil {
		t.Fatal(err)
	}
	members := make([]bool, g.N())
	for _, v := range coldCDS.CDSMembers() {
		members[v] = true
	}
	warmCDS, err := NewCDSEngineFromLabels(g.Clone(), members)
	if err != nil {
		t.Fatal(err)
	}
	if v := warmCDS.CheckLocal(all); len(v) != 0 {
		t.Fatalf("warm CDS engine has %d violation(s) on clean labels", len(v))
	}
}

// TestHealDirtyWarmStart simulates recovery with a label lag: the durable
// labels predate a handful of committed edge flips. Warm-started engines
// fed exactly the flips' dirty set through HealDirty must converge to the
// same fixed point a cold rebuild reaches.
func TestHealDirtyWarmStart(t *testing.T) {
	g := warmGraph(9, 60)

	cold, err := newDistVecEngineOver(g.Clone(), 0)
	if err != nil {
		t.Fatal(err)
	}
	dist, next := cold.RouteLabels()

	// Three topology changes the labels never saw.
	changed := g.Clone()
	flips := []sim.Event{
		{Op: sim.OpAddEdge, U: 5, V: 40},
		{Op: sim.OpRemoveEdge, U: 5, V: 6},
		{Op: sim.OpAddEdge, U: 12, V: 33},
	}
	var dirty []int
	for _, e := range flips {
		if e.Op == sim.OpAddEdge {
			if changed.HasEdge(e.U, e.V) {
				continue
			}
			_ = changed.AddEdge(e.U, e.V)
		} else {
			if !changed.RemoveEdge(e.U, e.V) {
				continue
			}
		}
		dirty = append(dirty, e.U, e.V)
	}

	warm, err := NewDistVecEngineFromLabels(changed.Clone(), 0, dist, next)
	if err != nil {
		t.Fatal(err)
	}
	sup := &Supervisor{Engine: warm, Budget: Budget{MaxRounds: 200, MaxTouched: changed.N()}}
	rep, err := sup.HealDirty(dirty)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Standing) != 0 {
		t.Fatalf("%d standing violation(s) after warm heal", len(rep.Standing))
	}

	// The healed labels must equal a cold rebuild over the new topology.
	truth, err := newDistVecEngineOver(changed.Clone(), 0)
	if err != nil {
		t.Fatal(err)
	}
	tdist, tnext := truth.RouteLabels()
	hdist, hnext := warm.(*distvecEngine).RouteLabels()
	for v := range tdist {
		same := hdist[v] == tdist[v] || (math.IsInf(hdist[v], 1) && math.IsInf(tdist[v], 1))
		if !same {
			t.Fatalf("healed dist[%d] = %v, cold = %v", v, hdist[v], tdist[v])
		}
		_ = tnext
		_ = hnext
	}

	// Full-audit detector agrees nothing is left.
	all := make([]int, changed.N())
	for i := range all {
		all[i] = i
	}
	if v := warm.CheckLocal(all); len(v) != 0 {
		t.Fatalf("full audit found %d violation(s) after warm heal", len(v))
	}
}
