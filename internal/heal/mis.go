package heal

import (
	"structura/internal/graph"
	"structura/internal/labeling"
	"structura/internal/runtime"
	"structura/internal/sim"
)

// misEngine keeps the priority-greedy MIS membership at its fixed point
// under churn. Detection is exact and purely local: an edge flip can change
// only its endpoints' election rule, so the endpoints are the complete
// candidate set. Repair is the MaintainMIS priority-descending cascade;
// escalation re-runs the distributed three-color election, whose stable
// outcome is the same fixed point.
type misEngine struct {
	g    *graph.Graph
	prio labeling.Priority
	in   []bool
}

func newMISEngine(seed uint64) (*misEngine, error) {
	return newMISEngineOver(sim.MISGraph(seed))
}

func newMISEngineOver(g *graph.Graph) (*misEngine, error) {
	prio := labeling.PriorityByID(g.N())
	in, err := labeling.GreedyMIS(g, prio)
	if err != nil {
		return nil, err
	}
	return &misEngine{g: g, prio: prio, in: in}, nil
}

// NewMISEngineOver builds a supervised MIS engine over the caller's
// topology (retained and mutated through Apply — pass a clone to keep the
// original) under ID priorities, for callers maintaining the election on
// their own graph: the serving layer's ingest path. MISLabels exposes the
// membership an epoch publishes.
func NewMISEngineOver(g *graph.Graph) (Engine, error) {
	return newMISEngineOver(g)
}

// MISLabels returns a copy of the current MIS membership.
func (e *misEngine) MISLabels() []bool {
	return append([]bool(nil), e.in...)
}

func (e *misEngine) Name() string       { return "mis" }
func (e *misEngine) Live() *graph.Graph { return e.g }

func (e *misEngine) Apply(ev sim.Event) ([]int, bool) {
	return applyEdgeEvent(e.g, ev)
}

func (e *misEngine) CheckLocal(dirty []int) []sim.Violation {
	bad := labeling.MISFixedPointViolations(e.g, e.in, e.prio, dirty)
	out := make([]sim.Violation, 0, len(bad))
	for _, v := range bad {
		out = append(out, sim.Violation{
			Invariant: "mis-fixed-point", Node: v, Edge: [2]int{-1, -1},
			Detail: "membership disagrees with the priority-greedy rule",
		})
	}
	return out
}

// Repair cascades re-elections from the violated nodes. The cascade has no
// sweep structure, so the flip count stands in for repair rounds and the
// MaxTouched bound is the budget that matters.
func (e *misEngine) Repair(viols []sim.Violation, b Budget) RepairOutcome {
	// A ctx error surfaces as !OK; the Supervisor re-checks its own context
	// after Repair and aborts instead of escalating.
	touched, flips, ok, _ := labeling.MaintainMISContext(b.Ctx, e.g, e.in, e.prio, violationNodes(viols), b.MaxTouched)
	return RepairOutcome{Touched: touched, Rounds: flips, OK: ok}
}

func (e *misEngine) Recompute() (int, error) {
	// Escalation re-runs the full election under delta-frontier stepping:
	// the outcome is bit-identical to the full kernel, and a supervised
	// recompute is exactly the steady-state regime (most of the graph is
	// already at the fixed point) where frontier rounds are O(changes).
	res, err := labeling.DistributedMIS(e.g, e.prio, runtime.WithDelta())
	if err != nil {
		return 0, err
	}
	for v := range e.in {
		e.in[v] = res.Colors[v] == labeling.Black
	}
	return res.Rounds, nil
}

func (e *misEngine) Snapshot() *sim.World {
	colors := make([]labeling.Color, len(e.in))
	for v, in := range e.in {
		if in {
			colors[v] = labeling.Black
		} else {
			colors[v] = labeling.Gray
		}
	}
	return &sim.World{
		Scenario: "heal-mis",
		Graph:    e.g.Clone(),
		Stats:    runtime.Stats{Stable: true},
		MIS:      &sim.MISWorld{Colors: colors, Stable: true},
	}
}
