package heal

import (
	"errors"
	"strings"
	"testing"

	"structura/internal/graph"
	"structura/internal/labeling"
	"structura/internal/runtime"
	"structura/internal/sim"
)

// churnSchedule is the PR-3 chaos finding this package exists to fix: under
// one add + one remove per round for ten rounds, the one-shot MIS election
// ends with standing violations on 6 of 8 seeds.
func churnSchedule() sim.Schedule {
	return sim.Schedule{Horizon: 10, ChurnAdd: 1, ChurnRemove: 1}
}

// TestSupervisedMISUnderChurn is the headline acceptance criterion: the
// supervised MIS engine ends every churn run of seeds 1..8 with zero
// standing violations, and successful localized repairs touch under 20% of
// the nodes.
func TestSupervisedMISUnderChurn(t *testing.T) {
	detections := 0
	for seed := uint64(1); seed <= 8; seed++ {
		eng, err := NewEngine("mis", seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sup := &Supervisor{Engine: eng, Budget: Budget{MaxTouched: eng.Live().N() / 5}}
		rep, err := sup.Run(seed, churnSchedule())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(rep.Standing) != 0 {
			t.Errorf("seed %d: %d standing violations, first: %s", seed, len(rep.Standing), rep.Standing[0])
		}
		if rep.MaxTouchedFrac >= 0.2 {
			t.Errorf("seed %d: repair touched %.0f%% of nodes, want < 20%%", seed, 100*rep.MaxTouchedFrac)
		}
		if rep.Events == 0 {
			t.Errorf("seed %d: schedule applied no churn", seed)
		}
		if err := labeling.VerifyMIS(eng.Live(), eng.(*misEngine).in); err != nil {
			t.Errorf("seed %d: final membership: %v", seed, err)
		}
		detections += len(rep.Detections)
		for _, d := range rep.Detections {
			if d.Latency != 0 {
				t.Errorf("seed %d: local MIS detection has latency %d, want 0", seed, d.Latency)
			}
		}
	}
	if detections == 0 {
		t.Fatal("no seed produced a single violation to heal; the schedule is too tame to test anything")
	}
}

// TestRepairVsRecompute checks the economics the supervisor exists for:
// across the churn seeds, localized repair does strictly less round work
// than escalating every detection to a full re-election.
func TestRepairVsRecompute(t *testing.T) {
	localized, forced := 0, 0
	for seed := uint64(1); seed <= 8; seed++ {
		for _, force := range []bool{false, true} {
			eng, err := NewEngine("mis", seed)
			if err != nil {
				t.Fatal(err)
			}
			sup := &Supervisor{Engine: eng, ForceRecompute: force}
			rep, err := sup.Run(seed, churnSchedule())
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Standing) != 0 {
				t.Fatalf("seed %d force=%v: standing: %s", seed, force, rep.Standing[0])
			}
			if force {
				forced += rep.RecomputeRounds
			} else {
				localized += rep.RepairRounds + rep.RecomputeRounds
			}
		}
	}
	if localized >= forced {
		t.Errorf("localized repair cost %d rounds >= forced recompute cost %d", localized, forced)
	}
	t.Logf("repair-vs-recompute rounds across 8 seeds: localized %d, forced %d", localized, forced)
}

// TestSupervisedEnginesUnderChurn drives every engine through churn and
// requires a clean final sweep whenever the support stayed whole enough for
// the structure to exist at all.
func TestSupervisedEnginesUnderChurn(t *testing.T) {
	for _, name := range EngineNames() {
		for seed := uint64(1); seed <= 4; seed++ {
			eng, err := NewEngine(name, seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			sup := &Supervisor{Engine: eng, Budget: Budget{MaxRounds: 256, MaxTouched: 0}}
			rep, err := sup.Run(seed, churnSchedule())
			if err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			if len(rep.Standing) != 0 {
				// The one legitimate excuse: churn severed the support, so no
				// repair or recompute can restore the structure.
				if (name == "cds" && !eng.Live().Connected()) ||
					(name == "reversal" && destPartitioned(eng.Live(), 0)) {
					t.Logf("%s seed %d: support disconnected, %d violations stand (unwinnable)", name, seed, len(rep.Standing))
					continue
				}
				t.Errorf("%s seed %d: %d standing violations, first: %s", name, seed, len(rep.Standing), rep.Standing[0])
			}
		}
	}
}

// destPartitioned reports whether any linked node cannot reach dest — the
// condition under which no reversal discipline can restore orientation.
func destPartitioned(g *graph.Graph, dest int) bool {
	dist, _, err := g.BFS(dest)
	if err != nil {
		return true
	}
	for v, d := range dist {
		if d < 0 && g.Degree(v) > 0 {
			return true
		}
	}
	return false
}

// fakeEngine exercises supervisor control flow in isolation.
type fakeEngine struct {
	g           *graph.Graph
	broken      bool
	localSees   bool // local detector reports the breakage
	repairOK    bool // repair claims success
	repairFixes bool // repair actually clears the breakage
	recomputeOK bool
	repairs     int
	recomputes  int
}

func newFakeEngine() *fakeEngine {
	g := graph.New(3)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(1, 2)
	return &fakeEngine{g: g}
}

func (f *fakeEngine) Name() string       { return "fake" }
func (f *fakeEngine) Live() *graph.Graph { return f.g }

func (f *fakeEngine) Apply(e sim.Event) ([]int, bool) {
	dirty, applied := applyEdgeEvent(f.g, e)
	if applied {
		f.broken = true
	}
	return dirty, applied
}

func (f *fakeEngine) CheckLocal(dirty []int) []sim.Violation {
	if f.broken && f.localSees {
		return []sim.Violation{{Invariant: "fake", Node: 0, Edge: [2]int{-1, -1}, Detail: "broken"}}
	}
	return nil
}

func (f *fakeEngine) Repair(_ []sim.Violation, _ Budget) RepairOutcome {
	f.repairs++
	if f.repairFixes {
		f.broken = false
	}
	return RepairOutcome{Touched: []int{0}, Rounds: 1, OK: f.repairOK}
}

func (f *fakeEngine) Recompute() (int, error) {
	f.recomputes++
	if !f.recomputeOK {
		return 0, errors.New("fake: cannot recompute")
	}
	f.broken = false
	return 5, nil
}

// Snapshot reports the breakage through the MIS independence checker: two
// adjacent Black nodes while broken, a legal coloring otherwise.
func (f *fakeEngine) Snapshot() *sim.World {
	g := graph.New(2)
	_ = g.AddEdge(0, 1)
	colors := []labeling.Color{labeling.Black, labeling.Gray}
	if f.broken {
		colors[1] = labeling.Black
	}
	return &sim.World{
		Scenario: "fake",
		Graph:    g,
		Stats:    runtime.Stats{Stable: true},
		MIS:      &sim.MISWorld{Colors: colors, Stable: true},
	}
}

func breakAt(round int) sim.Schedule {
	return sim.Schedule{Events: []sim.Event{{Round: round, Op: sim.OpRemoveEdge, U: 0, V: 1}}}
}

func TestSweepDetectionLatency(t *testing.T) {
	f := newFakeEngine()
	f.repairOK, f.repairFixes, f.recomputeOK = true, true, true
	// The local detector is blind, so only the every-3-rounds sweep can see
	// the round-1 fault: detection at round 3 with latency 2.
	sup := &Supervisor{Engine: f, SweepEvery: 3}
	sch := breakAt(1)
	sch.Horizon = 6
	rep, err := sup.Run(1, sch)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Detections) != 1 {
		t.Fatalf("detections = %+v, want exactly one", rep.Detections)
	}
	if d := rep.Detections[0]; d.Round != 3 || d.Latency != 2 {
		t.Errorf("detection at round %d latency %d, want round 3 latency 2", d.Round, d.Latency)
	}
	if rep.MaxLatency != 2 || rep.Repairs != 1 || rep.Escalations != 0 || len(rep.Standing) != 0 {
		t.Errorf("report = %+v, want latency 2, one repair, no escalation, no standing", rep)
	}
	if !strings.Contains(rep.Detections[0].First, "mis-independence") {
		t.Errorf("detection cause %q, want the registry's independence violation", rep.Detections[0].First)
	}
}

func TestBudgetExhaustionEscalates(t *testing.T) {
	f := newFakeEngine()
	f.localSees, f.recomputeOK = true, true
	f.repairOK = false // budget exhausted mid-repair
	sup := &Supervisor{Engine: f}
	rep, err := sup.Run(1, breakAt(1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repairs != 1 || rep.Escalations != 1 || f.recomputes != 1 {
		t.Errorf("repairs=%d escalations=%d recomputes=%d, want 1/1/1", rep.Repairs, rep.Escalations, f.recomputes)
	}
	if rep.RecomputeRounds != 5 || len(rep.Standing) != 0 {
		t.Errorf("recompute rounds %d standing %d, want 5 and none", rep.RecomputeRounds, len(rep.Standing))
	}
	if rep.RepairTouched != 0 {
		t.Errorf("failed repair credited %d touched nodes", rep.RepairTouched)
	}
}

func TestFailedVerificationEscalates(t *testing.T) {
	f := newFakeEngine()
	f.localSees, f.recomputeOK = true, true
	f.repairOK = true // claims success...
	f.repairFixes = false
	sup := &Supervisor{Engine: f}
	rep, err := sup.Run(1, breakAt(1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Escalations != 1 || f.recomputes != 1 || len(rep.Standing) != 0 {
		t.Errorf("escalations=%d recomputes=%d standing=%d, want 1/1/0", rep.Escalations, f.recomputes, len(rep.Standing))
	}
}

func TestFailedRecomputeLeavesStanding(t *testing.T) {
	f := newFakeEngine()
	f.localSees = true // repair fails, recompute fails: nothing can fix it
	sup := &Supervisor{Engine: f}
	rep, err := sup.Run(1, breakAt(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Standing) == 0 {
		t.Fatal("unfixable breakage reported no standing violations")
	}
	if rep.RecomputeRounds != 0 {
		t.Errorf("failed recompute charged %d rounds", rep.RecomputeRounds)
	}
}

func TestSupervisorGuards(t *testing.T) {
	if _, err := (&Supervisor{}).Run(1, sim.Schedule{}); !errors.Is(err, ErrNoEngine) {
		t.Errorf("no-engine run: %v, want ErrNoEngine", err)
	}
	sup := &Supervisor{Engine: newFakeEngine()}
	if _, err := sup.Run(1, sim.Schedule{Horizon: -1}); err == nil || !strings.Contains(err.Error(), "horizon") {
		t.Errorf("invalid schedule: %v, want a named-field error", err)
	}
	if _, err := NewEngine("nope", 1); err == nil {
		t.Error("unknown engine name accepted")
	}
	for _, name := range EngineNames() {
		eng, err := NewEngine(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if eng.Name() != name {
			t.Errorf("NewEngine(%q).Name() = %q", name, eng.Name())
		}
	}
}

// TestQuietRunIsUntouched: no faults, no detections, no repairs.
func TestQuietRunIsUntouched(t *testing.T) {
	for _, name := range EngineNames() {
		eng, err := NewEngine(name, 2)
		if err != nil {
			t.Fatal(err)
		}
		sup := &Supervisor{Engine: eng, SweepEvery: 2}
		rep, err := sup.Run(2, sim.Schedule{Horizon: 6})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Events != 0 || rep.Repairs != 0 || rep.Escalations != 0 || len(rep.Standing) != 0 {
			t.Errorf("%s: quiet run produced %+v", name, rep)
		}
		if rep.Sweeps != 3 {
			t.Errorf("%s: %d sweeps over 6 rounds with SweepEvery=2, want 3", name, rep.Sweeps)
		}
	}
}
