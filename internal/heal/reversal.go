package heal

import (
	"errors"
	"fmt"

	"structura/internal/graph"
	"structura/internal/reversal"
	"structura/internal/runtime"
	"structura/internal/sim"
)

// reversalEngine supervises a full-reversal destination-oriented DAG. Sinks
// are the complete local symptom: a link removal can only un-orient its own
// endpoints (each lost one outgoing candidate), a link addition never
// creates a sink (heights orient it on arrival), and "no sinks" implies
// destination orientation outright — every maximal height-decreasing path
// must end at a node without outgoing links, which can only be the
// destination. Repair is the budgeted reversal cascade; escalation rebuilds
// heights from a BFS, which fails exactly when churn partitioned the
// support away from the destination.
type reversalEngine struct {
	g       *graph.Graph // live support mirror
	net     *reversal.Network
	dest    int
	fails   int // link failures injected, for the count-bound invariant
	total   int // sink activations across all repairs
	perNode map[int]int
}

func newReversalEngine(seed uint64) (*reversalEngine, error) {
	g := sim.ReversalRing(seed)
	e := &reversalEngine{g: g, dest: 0, perNode: map[int]int{}}
	if err := e.rebuild(); err != nil {
		return nil, err
	}
	return e, nil
}

// rebuild re-derives heights from BFS hop counts on the live support.
func (e *reversalEngine) rebuild() error {
	dist, _, err := e.g.BFS(e.dest)
	if err != nil {
		return err
	}
	alphas := make([]int, e.g.N())
	for v, d := range dist {
		if d < 0 {
			if e.g.Degree(v) > 0 {
				return fmt.Errorf("heal: node %d partitioned from destination %d", v, e.dest)
			}
			d = 1 // isolated node: any positive height keeps dest the minimum
		}
		alphas[v] = d
	}
	net, err := reversal.NewNetwork(e.g, alphas, e.dest, reversal.Full)
	if err != nil {
		return err
	}
	e.net = net
	return nil
}

func (e *reversalEngine) Name() string       { return "reversal" }
func (e *reversalEngine) Live() *graph.Graph { return e.g }

func (e *reversalEngine) Apply(ev sim.Event) ([]int, bool) {
	dirty, applied := applyEdgeEvent(e.g, ev)
	if !applied {
		return nil, false
	}
	if ev.Op == sim.OpAddEdge {
		if err := e.net.AddLink(ev.U, ev.V); err != nil {
			panic("heal: reversal network diverged from live mirror: " + err.Error())
		}
	} else {
		e.net.RemoveLink(ev.U, ev.V)
		e.fails++
	}
	return dirty, true
}

func (e *reversalEngine) CheckLocal(dirty []int) []sim.Violation {
	var out []sim.Violation
	seen := map[int]bool{}
	for _, v := range dirty {
		if v < 0 || v >= e.g.N() || seen[v] {
			continue
		}
		seen[v] = true
		if e.net.IsSink(v) {
			out = append(out, sim.Violation{
				Invariant: "reversal-destination-oriented", Node: v, Edge: [2]int{-1, -1},
				Detail: "sink: every incident link points in",
			})
		}
	}
	return out
}

func (e *reversalEngine) Repair(viols []sim.Violation, b Budget) RepairOutcome {
	// A sink cut off from the destination reverses forever; spinning the
	// cascade would only burn the reversal-count budget. Escalate straight
	// away — the rebuild names the partition precisely.
	dist, _, err := e.g.BFS(e.dest)
	if err != nil {
		return RepairOutcome{OK: false}
	}
	for _, v := range violationNodes(viols) {
		if v < len(dist) && dist[v] < 0 {
			return RepairOutcome{OK: false}
		}
	}
	// Full reversal settles a local disturbance within n rounds when the
	// destination is reachable; a tighter caller budget wins, but anything
	// looser is clamped so one repair can never exceed the per-failure
	// reversal-count bound of n per node.
	maxRounds := e.g.N()
	if b.MaxRounds > 0 && b.MaxRounds < maxRounds {
		maxRounds = b.MaxRounds
	}
	st, touched := e.net.StabilizeBudget(maxRounds, b.MaxTouched)
	e.total += st.NodeReversals
	for v, c := range st.PerNode {
		e.perNode[v] += c
	}
	return RepairOutcome{Touched: touched, Rounds: st.Rounds, OK: st.Converged}
}

func (e *reversalEngine) Recompute() (int, error) {
	if err := e.rebuild(); err != nil {
		return 0, errors.Join(errors.New("heal: reversal recompute failed"), err)
	}
	depth := 0
	dist, _, _ := e.g.BFS(e.dest)
	for _, d := range dist {
		if d > depth {
			depth = d
		}
	}
	return depth + 1, nil
}

func (e *reversalEngine) Snapshot() *sim.World {
	perNode := make(map[int]int, len(e.perNode))
	for v, c := range e.perNode {
		perNode[v] = c
	}
	sinks := e.net.Sinks()
	return &sim.World{
		Scenario: "heal-reversal",
		Graph:    e.g.Clone(),
		Stats:    runtime.Stats{Stable: true},
		Rev: &sim.RevWorld{
			N:        e.g.N(),
			Dest:     e.dest,
			Mode:     "full",
			Support:  e.g.Clone(),
			PointsTo: e.net.PointsTo,
			Sinks:    sinks,
			Fails:    e.fails,
			Total:    e.total,
			PerNode:  perNode,
			Stable:   len(sinks) == 0,
		},
	}
}
