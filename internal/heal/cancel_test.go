package heal

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"structura/internal/graph"
	"structura/internal/sim"
)

// countdownCtx is a deterministic cancellation source for single-goroutine
// tests: every Done() poll decrements the counter, and the context becomes
// done when it reaches zero. Repair loops poll the context once per sweep,
// so "cancel after k polls" lands the cancellation mid-repair without any
// timing dependence.
type countdownCtx struct {
	left int
	done chan struct{}
}

func newCountdownCtx(polls int) *countdownCtx {
	return &countdownCtx{left: polls, done: make(chan struct{})}
}

func (c *countdownCtx) Done() <-chan struct{} {
	if c.left > 0 {
		c.left--
		if c.left == 0 {
			close(c.done)
		}
	}
	return c.done
}

func (c *countdownCtx) Err() error {
	select {
	case <-c.done:
		return context.Canceled
	default:
		return nil
	}
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }

func (c *countdownCtx) Value(any) any { return nil }

func pathGraph(n int) *graph.Graph {
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		if err := g.AddEdge(v, v+1); err != nil {
			panic(err)
		}
	}
	return g
}

// TestApplyBatchHealsMutations drives the server-shaped ingest path: an
// ad-hoc batch of edge events against an engine over the caller's own
// topology, healed without a fault timeline.
func TestApplyBatchHealsMutations(t *testing.T) {
	g := pathGraph(16)
	eng, err := NewDistVecEngineOver(g.Clone(), 0)
	if err != nil {
		t.Fatal(err)
	}
	sup := &Supervisor{Engine: eng}
	rep, err := sup.ApplyBatch([]sim.Event{
		{Op: sim.OpAddEdge, U: 3, V: 9},
		{Op: sim.OpRemoveEdge, U: 5, V: 6},
		{Op: sim.OpAddEdge, U: 3, V: 9}, // duplicate: must not apply
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events != 2 {
		t.Fatalf("applied %d events, want 2", rep.Events)
	}
	if len(rep.Standing) != 0 {
		t.Fatalf("standing violations after batch: %v", rep.Standing)
	}
	// Labels must equal BFS hop counts on the mutated topology.
	want, _, err := eng.Live().BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	dist, next := eng.(interface {
		RouteLabels() ([]float64, []int)
	}).RouteLabels()
	for v, d := range want {
		got := dist[v]
		if d < 0 {
			if !math.IsInf(got, 1) {
				t.Fatalf("node %d: dist %v, want +Inf", v, got)
			}
			continue
		}
		if got != float64(d) {
			t.Fatalf("node %d: dist %v, want %d", v, got, d)
		}
		if v != 0 && next[v] < 0 {
			t.Fatalf("node %d reachable but has no next hop", v)
		}
	}
}

// TestApplyBatchCancelledMidRepair pins the shutdown contract of satellite
// concern: a context firing during an active repair stops the cascade where
// it is, surfaces ctx.Err() and does NOT escalate to a full recompute — the
// caller is shutting down and must simply not publish the half-repaired
// labels.
func TestApplyBatchCancelledMidRepair(t *testing.T) {
	g := pathGraph(64)
	eng, err := NewDistVecEngineOver(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Removing a mid-path edge detaches a long tail whose labels count to
	// the hop ceiling one repair sweep at a time — dozens of sweeps, so a
	// countdown of 3 polls lands squarely mid-repair.
	ctx := newCountdownCtx(3)
	sup := &Supervisor{Engine: eng, Ctx: ctx}
	rep, err := sup.ApplyBatch([]sim.Event{{Op: sim.OpRemoveEdge, U: 31, V: 32}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ApplyBatch error = %v, want context.Canceled", err)
	}
	if rep.Repairs != 1 {
		t.Fatalf("repairs = %d, want 1 (the interrupted one)", rep.Repairs)
	}
	if rep.Escalations != 0 {
		t.Fatalf("escalations = %d, want 0: cancellation must not trigger recompute", rep.Escalations)
	}
}

// TestRunCancelledBetweenRounds: a fault-timeline run observes a cancelled
// context between rounds and returns the report so far with ctx.Err().
func TestRunCancelledBetweenRounds(t *testing.T) {
	eng, err := NewEngine("mis", 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sup := &Supervisor{Engine: eng, Ctx: ctx}
	rep, err := sup.Run(1, sim.Schedule{Horizon: 50, ChurnAdd: 1, ChurnRemove: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	if rep == nil || rep.Rounds != 0 {
		t.Fatalf("cancelled-before-start run executed %v rounds", rep)
	}
}
