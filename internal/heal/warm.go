package heal

import (
	"structura/internal/distvec"
	"structura/internal/graph"
	"structura/internal/labeling"
)

// Warm-start constructors: build supervised engines from recovered label
// epochs instead of recomputing from the topology. The labels are trusted
// only up to the dirty set recovery reports — the owner must run HealDirty
// over it (and ideally a Sweep audit) before publishing. This is what makes
// recovery-to-ready O(changes since last epoch) instead of O(graph).

// NewDistVecEngineFromLabels is NewDistVecEngineOver seeded with recovered
// route labels: hop distances and next hops toward dest, as persisted by
// the WAL's label epochs. g is retained and mutated through Apply.
func NewDistVecEngineFromLabels(g *graph.Graph, dest int, dist []float64, next []int) (Engine, error) {
	m, err := distvec.NewMaintainerFromLabels(g, dest, dist, next)
	if err != nil {
		return nil, err
	}
	return &distvecEngine{g: g, m: m}, nil
}

// NewMISEngineFromLabels is NewMISEngineOver seeded with a recovered
// membership array under ID priorities. g is retained and mutated through
// Apply.
func NewMISEngineFromLabels(g *graph.Graph, in []bool) (Engine, error) {
	if len(in) != g.N() {
		return nil, errLabelMismatch("mis", g.N(), len(in))
	}
	return &misEngine{
		g:    g,
		prio: labeling.PriorityByID(g.N()),
		in:   append([]bool(nil), in...),
	}, nil
}

// NewCDSEngineFromLabels is NewCDSEngineOver seeded with a recovered
// backbone membership array. g is retained and mutated through Apply.
// Unlike NewCDSEngineOver this cannot fail on a disconnected support — the
// recovered membership simply stands until a heal pass rules on it.
func NewCDSEngineFromLabels(g *graph.Graph, members []bool) (Engine, error) {
	if len(members) != g.N() {
		return nil, errLabelMismatch("cds", g.N(), len(members))
	}
	set := make(map[int]bool)
	for v, in := range members {
		if in {
			set[v] = true
		}
	}
	return &cdsEngine{g: g, prio: labeling.PriorityByID(g.N()), members: set}, nil
}

type labelMismatchError struct {
	engine string
	n, got int
}

func errLabelMismatch(engine string, n, got int) error {
	return &labelMismatchError{engine: engine, n: n, got: got}
}

func (e *labelMismatchError) Error() string {
	return "heal: " + e.engine + " label array does not match the graph"
}

// HealDirty runs one detect → repair → escalate cycle over an
// externally-derived dirty set without applying any events — the
// warm-start path, where recovery already replayed the topology and
// reports exactly which nodes the durable label epoch may not cover. The
// returned report covers just this pass; Standing lists violations that
// survived both repair and recompute.
func (s *Supervisor) HealDirty(dirty []int) (*Report, error) {
	if s.Engine == nil {
		return nil, ErrNoEngine
	}
	eng := s.Engine
	rep := &Report{Engine: eng.Name(), Nodes: eng.Live().N(), Rounds: 1}
	if cerr := s.cancelled(); cerr != nil {
		return rep, cerr
	}
	viols := eng.CheckLocal(dirty)
	if len(viols) == 0 {
		return rep, nil
	}
	rep.Detections = append(rep.Detections, Detection{
		Round: 1, FaultRound: 1, Violations: len(viols), First: viols[0].String(),
	})
	left, err := s.resolve(rep, viols, dirty)
	if err != nil {
		return rep, err
	}
	rep.Standing = left
	return rep, nil
}
