package heal

import (
	"sort"

	"structura/internal/graph"
	"structura/internal/labeling"
	"structura/internal/runtime"
	"structura/internal/sim"
)

// cdsEngine maintains a connected dominating set (the paper's virtual
// backbone) under churn. Edge removals are the only threat: losing an edge
// can strand a node's last dominator or split the backbone's induced
// subgraph. Localized repair works in three moves — add a dominator for
// each stranded node, stitch detached backbone components back together
// with gateway nodes along shortest connecting paths, then re-prune the
// touched region (a member is dropped whenever the set stays a CDS without
// it, mirroring the pruning pass of the MIS→CDS construction). When churn
// disconnects the support itself, no CDS exists; repair and recompute both
// fail and the violation stands, by design.
type cdsEngine struct {
	g       *graph.Graph
	prio    labeling.Priority
	members map[int]bool
}

func newCDSEngine(seed uint64) (*cdsEngine, error) {
	_ = seed // one fixed grid, matching the sim cds scenario
	return newCDSEngineOver(sim.CDSGrid())
}

func newCDSEngineOver(g *graph.Graph) (*cdsEngine, error) {
	prio := labeling.PriorityByID(g.N())
	cds, _, err := labeling.CDSFromMIS(g, prio)
	if err != nil {
		return nil, err
	}
	return &cdsEngine{g: g, prio: prio, members: labeling.SetOf(cds)}, nil
}

// NewCDSEngineOver builds a supervised CDS engine over the caller's
// topology (retained and mutated through Apply — pass a clone to keep the
// original), for callers maintaining the backbone on their own graph: the
// serving layer's ingest path. Construction fails on a disconnected graph
// (no CDS exists), so serving layers treat the backbone as optional.
// CDSMembers exposes the membership an epoch publishes.
func NewCDSEngineOver(g *graph.Graph) (Engine, error) {
	return newCDSEngineOver(g)
}

// CDSMembers returns the current backbone members, sorted.
func (e *cdsEngine) CDSMembers() []int {
	return sortedSet(e.members)
}

func (e *cdsEngine) Name() string       { return "cds" }
func (e *cdsEngine) Live() *graph.Graph { return e.g }

func (e *cdsEngine) Apply(ev sim.Event) ([]int, bool) {
	return applyEdgeEvent(e.g, ev)
}

func (e *cdsEngine) dominated(v int) bool {
	if e.members[v] {
		return true
	}
	ok := false
	e.g.EachNeighbor(v, func(u int, _ float64) {
		if e.members[u] {
			ok = true
		}
	})
	return ok
}

// components partitions the members into connected components of the
// member-induced subgraph, each sorted, ordered by smallest member.
func (e *cdsEngine) components() [][]int {
	visited := map[int]bool{}
	var comps [][]int
	ids := sortedSet(e.members)
	for _, start := range ids {
		if visited[start] {
			continue
		}
		comp := []int{start}
		visited[start] = true
		for head := 0; head < len(comp); head++ {
			e.g.EachNeighbor(comp[head], func(u int, _ float64) {
				if e.members[u] && !visited[u] {
					visited[u] = true
					comp = append(comp, u)
				}
			})
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

func (e *cdsEngine) CheckLocal(dirty []int) []sim.Violation {
	if len(dirty) == 0 {
		return nil
	}
	var out []sim.Violation
	seen := map[int]bool{}
	for _, v := range dirty {
		if v < 0 || v >= e.g.N() || seen[v] {
			continue
		}
		seen[v] = true
		if !e.dominated(v) {
			out = append(out, sim.Violation{
				Invariant: "cds-domination", Node: v, Edge: [2]int{-1, -1},
				Detail: "no CDS neighbor",
			})
		}
	}
	// An edge removal between two members is the only local event that can
	// split the backbone; membership did not change, so checking once per
	// dirtied batch suffices.
	if comps := e.components(); len(comps) > 1 {
		for _, comp := range comps[1:] {
			out = append(out, sim.Violation{
				Invariant: "cds-connectivity", Node: comp[0], Edge: [2]int{-1, -1},
				Detail: "backbone component detached",
			})
		}
	}
	return out
}

func (e *cdsEngine) Repair(viols []sim.Violation, b Budget) RepairOutcome {
	touched := map[int]bool{}
	mods := 0
	overBudget := func() bool { return b.MaxTouched > 0 && len(touched) > b.MaxTouched }

	// Move 1: every stranded node gets its highest-priority neighbor
	// promoted into the set (re-checked live — an earlier promotion may
	// already cover it). Each move polls the budget context so a shutdown
	// interrupts the repair mid-cascade (the Supervisor re-checks its own
	// context and aborts instead of escalating).
	for _, viol := range viols {
		if b.Err() != nil {
			return RepairOutcome{Touched: sortedSet(touched), Rounds: mods, OK: false}
		}
		if viol.Invariant != "cds-domination" || viol.Node < 0 {
			continue
		}
		v := viol.Node
		if e.dominated(v) {
			continue
		}
		best := -1
		e.g.EachNeighbor(v, func(u int, _ float64) {
			if best == -1 || e.prio[u] > e.prio[best] {
				best = u
			}
		})
		if best == -1 {
			// Isolated non-member: no CDS over this topology exists.
			return RepairOutcome{Touched: sortedSet(touched), Rounds: mods, OK: false}
		}
		e.members[best] = true
		touched[best] = true
		touched[v] = true
		mods++
		if overBudget() {
			return RepairOutcome{Touched: sortedSet(touched), Rounds: mods, OK: false}
		}
	}

	// Move 2: stitch detached backbone components to the primary one with
	// gateway nodes along a shortest connecting path.
	for {
		if b.Err() != nil {
			return RepairOutcome{Touched: sortedSet(touched), Rounds: mods, OK: false}
		}
		comps := e.components()
		if len(comps) <= 1 {
			break
		}
		path := e.connectingPath(comps[0])
		if path == nil {
			return RepairOutcome{Touched: sortedSet(touched), Rounds: mods, OK: false}
		}
		for _, w := range path {
			if !e.members[w] {
				e.members[w] = true
				mods++
			}
			touched[w] = true
		}
		if overBudget() {
			return RepairOutcome{Touched: sortedSet(touched), Rounds: mods, OK: false}
		}
	}

	// Move 3: re-prune the affected region, lowest priority first — each
	// removal is verified against the full CDS property before it sticks.
	for _, v := range sortedByPriorityAsc(touched, e.prio) {
		if b.Err() != nil {
			return RepairOutcome{Touched: sortedSet(touched), Rounds: mods, OK: false}
		}
		if !e.members[v] {
			continue
		}
		delete(e.members, v)
		if labeling.IsCDS(e.g, e.members) {
			mods++
		} else {
			e.members[v] = true
		}
	}
	return RepairOutcome{Touched: sortedSet(touched), Rounds: mods, OK: true}
}

// connectingPath BFSes outward from the base backbone component through the
// whole support and returns the intermediate nodes of a shortest path to
// any other member, nil when no other member is reachable.
func (e *cdsEngine) connectingPath(base []int) []int {
	inBase := map[int]bool{}
	parent := make([]int, e.g.N())
	for i := range parent {
		parent[i] = -1
	}
	queue := []int{}
	for _, v := range base {
		inBase[v] = true
		parent[v] = v
		queue = append(queue, v)
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		hit := -1
		e.g.EachNeighbor(v, func(u int, _ float64) {
			if parent[u] != -1 {
				return
			}
			if e.members[u] && !inBase[u] && hit == -1 {
				parent[u] = v
				hit = u
				return
			}
			if !e.members[u] {
				parent[u] = v
				queue = append(queue, u)
			}
		})
		if hit == -1 {
			continue
		}
		var path []int
		for w := parent[hit]; !inBase[w]; w = parent[w] {
			path = append(path, w)
		}
		sort.Ints(path)
		return path
	}
	return nil
}

// Recompute rebuilds the backbone with the MIS→CDS construction; its cost
// is charged as n rounds, the distributed construction's bound.
func (e *cdsEngine) Recompute() (int, error) {
	cds, _, err := labeling.CDSFromMIS(e.g, e.prio)
	if err != nil {
		return 0, err
	}
	e.members = labeling.SetOf(cds)
	return e.g.N(), nil
}

func (e *cdsEngine) Snapshot() *sim.World {
	return &sim.World{
		Scenario: "heal-cds",
		Graph:    e.g.Clone(),
		Stats:    runtime.Stats{Stable: true},
		CDS:      &sim.CDSWorld{Members: sortedSet(e.members)},
	}
}

func sortedSet(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func sortedByPriorityAsc(set map[int]bool, prio labeling.Priority) []int {
	out := sortedSet(set)
	sort.SliceStable(out, func(i, j int) bool { return prio[out[i]] < prio[out[j]] })
	return out
}
