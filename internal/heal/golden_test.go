package heal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"structura/internal/sim"
)

// healGoldenCase is the supervised-engine corpus schema: an engine driven
// through one schedule across a seed set, with tolerance bands on detection
// latency, repair locality, and escalation count. The files live alongside
// the sim seed-replay corpus under internal/sim/testdata/schedules/ with a
// heal- prefix (which the sim golden test skips).
type healGoldenCase struct {
	Name     string       `json:"name"`
	Engine   string       `json:"engine"`
	Seeds    []uint64     `json:"seeds"`
	Schedule sim.Schedule `json:"schedule"`
	Budget   struct {
		MaxRounds  int `json:"max_rounds"`
		MaxTouched int `json:"max_touched"`
	} `json:"budget"`
	SweepEvery       int     `json:"sweep_every"`
	MaxDetectLatency int     `json:"max_detect_latency"`
	MaxTouchedFrac   float64 `json:"max_touched_frac"`
	MaxEscalations   int     `json:"max_escalations"`
	ExpectStanding   bool    `json:"expect_standing"`
}

func TestGoldenHealSchedules(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "sim", "testdata", "schedules", "heal-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 2 {
		t.Fatalf("supervised-engine corpus too small: %v", files)
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			raw, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			var gc healGoldenCase
			if err := json.Unmarshal(raw, &gc); err != nil {
				t.Fatalf("corpus file does not parse: %v", err)
			}
			if len(gc.Seeds) == 0 {
				t.Fatal("corpus case lists no seeds")
			}
			for _, seed := range gc.Seeds {
				eng, err := NewEngine(gc.Engine, seed)
				if err != nil {
					t.Fatal(err)
				}
				sup := &Supervisor{
					Engine:     eng,
					Budget:     Budget{MaxRounds: gc.Budget.MaxRounds, MaxTouched: gc.Budget.MaxTouched},
					SweepEvery: gc.SweepEvery,
				}
				rep, err := sup.Run(seed, gc.Schedule)
				if err != nil {
					t.Fatal(err)
				}
				if got := len(rep.Standing) > 0; got != gc.ExpectStanding {
					t.Errorf("seed %d: standing violations present = %v, corpus expects %v (%v)",
						seed, got, gc.ExpectStanding, rep.Standing)
				}
				if rep.MaxLatency > gc.MaxDetectLatency {
					t.Errorf("seed %d: detection latency %d outside tolerance band [0, %d]",
						seed, rep.MaxLatency, gc.MaxDetectLatency)
				}
				if rep.MaxTouchedFrac > gc.MaxTouchedFrac {
					t.Errorf("seed %d: repair locality %.3f outside tolerance band [0, %.3f]",
						seed, rep.MaxTouchedFrac, gc.MaxTouchedFrac)
				}
				if rep.Escalations > gc.MaxEscalations {
					t.Errorf("seed %d: %d escalations outside tolerance band [0, %d]",
						seed, rep.Escalations, gc.MaxEscalations)
				}
				// The corpus doubles as a replay regression: a second run of
				// the same (engine, seed, schedule) must be identical.
				eng2, err := NewEngine(gc.Engine, seed)
				if err != nil {
					t.Fatal(err)
				}
				sup2 := &Supervisor{Engine: eng2, Budget: sup.Budget, SweepEvery: sup.SweepEvery}
				rep2, err := sup2.Run(seed, gc.Schedule)
				if err != nil {
					t.Fatal(err)
				}
				if rep.Events != rep2.Events || rep.Repairs != rep2.Repairs ||
					rep.Escalations != rep2.Escalations || rep.RepairRounds != rep2.RepairRounds ||
					len(rep.Standing) != len(rep2.Standing) {
					t.Errorf("seed %d: corpus replay diverged between two runs:\n%+v\n%+v", seed, rep, rep2)
				}
			}
		})
	}
}
