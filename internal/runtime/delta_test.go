package runtime

import (
	"encoding/json"
	"strings"
	"testing"

	"structura/internal/gen"
	"structura/internal/graph"
	"structura/internal/stats"
)

// assertDeltaEquivalence runs the same process with and without WithDelta
// and requires bit-identical final states, round counts, stability verdicts,
// and per-round Changed counts. Messages intentionally differ between the
// kernels (the delta kernel bills actual sends), so they are not compared
// here; dedicated tests pin the delta accounting below.
func assertDeltaEquivalence[S comparable](
	t *testing.T, name string,
	g *graph.CSR,
	init func(v int) S,
	step func(v int, self S, nbrs []S) (S, bool),
	opts ...Option,
) {
	t.Helper()
	want, wantStats, err := RunCSR(g, init, step, opts...)
	if err != nil {
		t.Fatalf("%s full: %v", name, err)
	}
	got, gotStats, err := RunCSR(g, init, step, append([]Option{WithDelta()}, opts...)...)
	if err != nil {
		t.Fatalf("%s delta: %v", name, err)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: state lengths differ: %d vs %d", name, len(got), len(want))
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("%s: state of node %d differs: delta %v, full %v", name, v, got[v], want[v])
		}
	}
	if gotStats.Rounds != wantStats.Rounds || gotStats.Stable != wantStats.Stable {
		t.Fatalf("%s: rounds/stable differ: delta (%d,%v), full (%d,%v)",
			name, gotStats.Rounds, gotStats.Stable, wantStats.Rounds, wantStats.Stable)
	}
	if len(gotStats.History) != len(wantStats.History) {
		t.Fatalf("%s: history lengths differ: %d vs %d", name, len(gotStats.History), len(wantStats.History))
	}
	for i := range wantStats.History {
		if gotStats.History[i].Changed != wantStats.History[i].Changed {
			t.Fatalf("%s: round %d changed count differs: delta %d, full %d",
				name, i+1, gotStats.History[i].Changed, wantStats.History[i].Changed)
		}
		if gotStats.History[i].Round != wantStats.History[i].Round {
			t.Fatalf("%s: round index differs at %d", name, i)
		}
	}
}

func TestDeltaMatchesFullClean(t *testing.T) {
	g := gen.SparseErdosRenyi(stats.NewRand(11), 300, 0.02).Freeze()
	for _, w := range []int{1, 2, 4} {
		assertDeltaEquivalence(t, "hop", g, hopInit, hopStep, WithParallelism(w))
	}
}

func TestDeltaMatchesFullDirected(t *testing.T) {
	// Directed cycle with chords: the push direction must use the reverse
	// CSR (readers of u), which only directed graphs materialize separately.
	n := 200
	g := graph.NewDirected(n)
	for v := 0; v < n; v++ {
		if err := g.AddEdge(v, (v+1)%n); err != nil {
			t.Fatal(err)
		}
	}
	for v := 0; v < n; v += 7 {
		if err := g.AddEdge(v, (v+n/2)%n); err != nil {
			t.Fatal(err)
		}
	}
	c := g.Freeze()
	for _, w := range []int{1, 3} {
		assertDeltaEquivalence(t, "directed-hop", c, hopInit, hopStep, WithParallelism(w))
	}
}

func TestDeltaMatchesFullPerturbed(t *testing.T) {
	g, alt := testGraphPair(t)
	for _, w := range []int{1, 2, 4} {
		// Fresh perturbers per run: they are single-use, but fully
		// deterministic, so both kernels see the same fault timeline.
		want, wantStats, err := RunCSR(g, hopInit, hopStep,
			WithMaxRounds(12), WithParallelism(w), WithPerturber(&churnPerturber{alt: alt}))
		if err != nil {
			t.Fatalf("full w%d: %v", w, err)
		}
		got, gotStats, err := RunCSR(g, hopInit, hopStep,
			WithMaxRounds(12), WithParallelism(w), WithPerturber(&churnPerturber{alt: alt}), WithDelta())
		if err != nil {
			t.Fatalf("delta w%d: %v", w, err)
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("w%d: node %d differs: delta %v, full %v", w, v, got[v], want[v])
			}
		}
		if gotStats.Rounds != wantStats.Rounds || gotStats.Stable != wantStats.Stable {
			t.Fatalf("w%d: rounds/stable differ: delta (%d,%v), full (%d,%v)",
				w, gotStats.Rounds, gotStats.Stable, wantStats.Rounds, wantStats.Stable)
		}
		for i := range wantStats.History {
			if gotStats.History[i].Changed != wantStats.History[i].Changed {
				t.Fatalf("w%d round %d: changed differs: delta %d, full %d",
					w, i+1, gotStats.History[i].Changed, wantStats.History[i].Changed)
			}
		}
	}
}

// quietPerturber injects nothing but keeps the run open through a window —
// the regime where the full kernel still bills a whole sweep per round while
// the delta kernel's frontier is empty.
type quietPerturber struct{ until int }

func (p *quietPerturber) BeforeRound(round int, g *graph.CSR) Perturbation { return Perturbation{} }
func (p *quietPerturber) Active(round int) bool                            { return round <= p.until }

// TestDeltaEmptyFrontierZeroMessages pins the accounting bugfix: a round in
// which nothing is dirty must report 0 messages, not an O(n)-scan's worth,
// and the clean and perturbed delta paths must agree round-by-round while no
// fault fires.
func TestDeltaEmptyFrontierZeroMessages(t *testing.T) {
	g := gen.SparseErdosRenyi(stats.NewRand(3), 120, 0.05).Freeze()
	clean, cleanStats, err := RunCSR(g, hopInit, hopStep, WithDelta())
	if err != nil {
		t.Fatal(err)
	}
	const window = 15
	pert, pertStats, err := RunCSR(g, hopInit, hopStep,
		WithDelta(), WithPerturber(&quietPerturber{until: window}))
	if err != nil {
		t.Fatal(err)
	}
	for v := range clean {
		if pert[v] != clean[v] {
			t.Fatalf("node %d: perturbed %v, clean %v", v, pert[v], clean[v])
		}
	}
	if pertStats.Rounds <= cleanStats.Rounds {
		t.Fatalf("window did not extend the run: %d vs %d rounds", pertStats.Rounds, cleanStats.Rounds)
	}
	// While both runs are converging, the two delta paths bill identically:
	// a fault-free perturbed round delivers exactly the messages the clean
	// path charges.
	for i := range cleanStats.History {
		c, p := cleanStats.History[i], pertStats.History[i]
		if c.Changed != p.Changed || c.Messages != p.Messages {
			t.Fatalf("round %d: clean (changed=%d msgs=%d), perturbed (changed=%d msgs=%d)",
				i+1, c.Changed, c.Messages, p.Changed, p.Messages)
		}
	}
	// Past quiescence the frontier is empty: zero messages, zero changes.
	for i := cleanStats.Rounds; i < pertStats.Rounds; i++ {
		rs := pertStats.History[i]
		if rs.Changed != 0 || rs.Messages != 0 {
			t.Fatalf("empty-frontier round %d billed changed=%d msgs=%d, want 0/0",
				rs.Round, rs.Changed, rs.Messages)
		}
	}
	if !pertStats.Stable {
		t.Fatal("perturbed delta run did not stabilize")
	}
}

// TestDeltaFirstRoundMessageParity: round 1 is a full broadcast, so the delta
// kernel's bill must equal the full kernel's per-round charge (2M undirected,
// M directed).
func TestDeltaFirstRoundMessageParity(t *testing.T) {
	und := gen.SparseErdosRenyi(stats.NewRand(5), 64, 0.1).Freeze()
	_, undStats, err := RunCSR(und, hopInit, hopStep, WithDelta())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := undStats.History[0].Messages, 2*und.M(); got != want {
		t.Fatalf("undirected round 1: %d messages, want %d", got, want)
	}
	dir := graph.NewDirected(5)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 2}} {
		if err := dir.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	dc := dir.Freeze()
	_, dirStats, err := RunCSR(dc, hopInit, hopStep, WithDelta())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := dirStats.History[0].Messages, dc.M(); got != want {
		t.Fatalf("directed round 1: %d messages, want %d", got, want)
	}
}

// TestDeltaCheckpointResume: a delta run resumed from a mid-run checkpoint
// must replay the uninterrupted delta run exactly — states, rounds, changed
// counts and message bills — on the clean and perturbed paths, including
// with a different worker count on the resume leg.
func TestDeltaCheckpointResume(t *testing.T) {
	g, alt := testGraphPair(t)
	for _, perturbed := range []bool{false, true} {
		name := map[bool]string{false: "clean", true: "perturbed"}[perturbed]
		opts := func(extra ...Option) []Option {
			out := []Option{WithMaxRounds(12), WithDelta()}
			if perturbed {
				out = append(out, WithPerturber(&churnPerturber{alt: alt}))
			}
			return append(out, extra...)
		}
		want, wantStats, err := RunCSR(g, hopInit, hopStep, opts(WithParallelism(2))...)
		if err != nil {
			t.Fatalf("%s baseline: %v", name, err)
		}
		var cps []Checkpoint[int]
		_, _, err = RunCSR(g, hopInit, hopStep,
			opts(WithParallelism(2), WithCheckpoints(1, func(cp Checkpoint[int]) { cps = append(cps, cp) }))...)
		if err != nil {
			t.Fatalf("%s checkpointing run: %v", name, err)
		}
		if len(cps) < 3 {
			t.Fatalf("%s: expected several checkpoints, got %d", name, len(cps))
		}
		// Resume only from mid-run checkpoints: resuming from the final
		// (stable) round re-probes stability with one extra quiet round in
		// both kernels, which is correct but not history-identical.
		mid := cps[:len(cps)-1]
		for _, cp := range []Checkpoint[int]{mid[0], mid[len(mid)/2], mid[len(mid)-1]} {
			// Frontier state must survive serialization like the rest of
			// the checkpoint.
			raw, err := json.Marshal(cp)
			if err != nil {
				t.Fatal(err)
			}
			cp = Checkpoint[int]{}
			if err := json.Unmarshal(raw, &cp); err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{1, 3} {
				got, gotStats, err := RunCSR(g, hopInit, hopStep,
					opts(WithParallelism(w), WithResume(cp))...)
				if err != nil {
					t.Fatalf("%s resume@%d w%d: %v", name, cp.Round, w, err)
				}
				for v := range want {
					if got[v] != want[v] {
						t.Fatalf("%s resume@%d w%d: node %d differs: %v vs %v",
							name, cp.Round, w, v, got[v], want[v])
					}
				}
				if gotStats.Rounds != wantStats.Rounds || gotStats.Stable != wantStats.Stable {
					t.Fatalf("%s resume@%d w%d: rounds/stable (%d,%v) vs (%d,%v)",
						name, cp.Round, w, gotStats.Rounds, gotStats.Stable, wantStats.Rounds, wantStats.Stable)
				}
				gh, wh := stripElapsed(gotStats.History), stripElapsed(wantStats.History)
				for i := range wh {
					if gh[i] != wh[i] {
						t.Fatalf("%s resume@%d w%d: history[%d] = %+v, want %+v",
							name, cp.Round, w, i, gh[i], wh[i])
					}
				}
			}
		}
	}
}

// TestDeltaResumeModeMismatch: frontier state does not cross kernel modes.
func TestDeltaResumeModeMismatch(t *testing.T) {
	g, _ := testGraphPair(t)
	var full, delta []Checkpoint[int]
	if _, _, err := RunCSR(g, hopInit, hopStep,
		WithMaxRounds(6), WithCheckpoints(1, func(cp Checkpoint[int]) { full = append(full, cp) })); err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunCSR(g, hopInit, hopStep, WithDelta(),
		WithMaxRounds(6), WithCheckpoints(1, func(cp Checkpoint[int]) { delta = append(delta, cp) })); err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunCSR(g, hopInit, hopStep, WithDelta(), WithResume(full[0])); err == nil ||
		!strings.Contains(err.Error(), "WithDelta") {
		t.Fatalf("resuming a full checkpoint into a delta run: got %v, want mode-mismatch error", err)
	}
	if _, _, err := RunCSR(g, hopInit, hopStep, WithResume(delta[0])); err == nil ||
		!strings.Contains(err.Error(), "WithDelta") {
		t.Fatalf("resuming a delta checkpoint into a full run: got %v, want mode-mismatch error", err)
	}
}

// TestDeltaStepPanicReported mirrors the full kernel's panic contract.
func TestDeltaStepPanicReported(t *testing.T) {
	g := gen.Ring(128).Freeze()
	boom := func(v int, self int, nbrs []int) (int, bool) {
		if v == 77 {
			panic("boom")
		}
		return hopStep(v, self, nbrs)
	}
	for _, w := range []int{1, 4} {
		_, _, err := RunCSR(g, hopInit, boom, WithDelta(), WithParallelism(w))
		if err == nil || !strings.Contains(err.Error(), "node 77") {
			t.Fatalf("w%d: got %v, want panic error naming node 77", w, err)
		}
	}
}

// TestDeltaEdgeCaseGraphs: empty, single-node, and edgeless graphs behave
// exactly like the full kernel.
func TestDeltaEdgeCaseGraphs(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"empty", graph.New(0)},
		{"single", graph.New(1)},
		{"isolated", graph.New(5)},
	} {
		assertDeltaEquivalence(t, tc.name, tc.g.Freeze(), hopInit, hopStep)
	}
}
