package runtime

import (
	"errors"
	"fmt"
	"math/bits"
	"time"
	"unsafe"

	"structura/internal/graph"
)

// valueBytes is the in-memory size of one state value, the unit of the
// exchange's bytes accounting (an approximation for states holding pointers:
// referenced storage is shared, not shipped).
func valueBytes[S any]() int {
	var z S
	return int(unsafe.Sizeof(z))
}

// runSharded executes a partitioned run: the WithPartition dispatch target.
// Every mode combination (full/delta × clean/perturbed) mirrors its
// unsharded twin round for round — same states, same Stats, same checkpoint
// contents, same error strings — with per-shard locality and a
// changed-values-only ghost exchange between rounds.
func runSharded[S any](
	g *graph.CSR,
	init func(v int) S,
	step func(v int, self S, neighbors []S) (S, bool),
	cfg config,
	workers int,
) ([]S, Stats, error) {
	if cfg.perturber != nil {
		return runShardedPerturbed(g, init, step, cfg, workers)
	}
	return runShardedClean(g, init, step, cfg, workers)
}

// runShardedClean is the clean-path sharded kernel, covering both the full
// sweep (every owned node steps every round, messages billed at M per round)
// and WithDelta (frontier-only stepping with delta message accounting).
func runShardedClean[S any](
	g *graph.CSR,
	init func(v int) S,
	step func(v int, self S, neighbors []S) (S, bool),
	cfg config,
	workers int,
) ([]S, Stats, error) {
	part := cfg.partition
	bounds, lays, verr := validatePartition(g, part)
	if verr != nil {
		return nil, Stats{}, verr
	}
	sink, resume, err := checkpointPlumbing[S](&cfg)
	if err != nil {
		return nil, Stats{}, err
	}
	n := g.N()
	k := len(lays)
	delta := cfg.delta
	runs := newShardRuns(bounds, lays, init, delta, false)

	msgsPerRound := g.M()
	if !g.Directed() {
		msgsPerRound *= 2
	}

	var st Stats
	startRound := 0
	roundMsgs := msgsPerRound // round 1: every node broadcasts its init state
	if resume != nil {
		if err := validateResume(resume, n, false, delta); err != nil {
			return nil, Stats{}, err
		}
		scatterStates(runs, resume.States)
		st = snapshotStats(resume.Stats)
		startRound = resume.Round
	}
	if delta {
		if resume != nil && startRound > 0 {
			if err := checkFrontierIDs(resume.Changed, n, "Changed"); err != nil {
				return nil, Stats{}, err
			}
			if err := checkFrontierIDs(resume.Frontier, n, "Frontier"); err != nil {
				return nil, Stats{}, err
			}
			roundMsgs = 0
			for _, v := range resume.Changed {
				roundMsgs += g.InDegree(v)
			}
			scatterOwnedBits(runs, bounds, resume.Frontier, func(r *shardRun[S]) bitset { return r.frontier })
		} else {
			for _, sr := range runs {
				sr.frontier.setFirst(sr.lay.Own)
			}
		}
	}

	flows := make([]int32, k*k)
	vb := valueBytes[S]()

	for r := startRound; r < cfg.maxRounds; r++ {
		if cerr := cfg.cancelled(); cerr != nil {
			return gatherStates(runs, n), st, cerr
		}
		begin := time.Now()
		if delta {
			forShards(runs, workers, func(_ int, sr *shardRun[S]) { shardStepDelta(sr, step) })
		} else {
			forShards(runs, workers, func(_ int, sr *shardRun[S]) { shardStepFull(sr, step) })
		}
		if serr := shardErr(runs); serr != nil {
			return gatherStates(runs, n), st, serr
		}
		// Commit after the barrier; shards own disjoint state.
		forShards(runs, workers, func(_ int, sr *shardRun[S]) {
			if delta {
				for _, v := range sr.ws.ids {
					sr.cur[v] = sr.next[v]
				}
			} else {
				sr.cur, sr.next = sr.next, sr.cur
				// The swap moved the valid ghost values into next; bring
				// them back before the exchange refreshes the changed ones.
				copy(sr.cur[sr.lay.Own:], sr.next[sr.lay.Own:])
			}
		})
		changedTotal := 0
		for _, sr := range runs {
			changedTotal += sr.changed
		}
		st.Rounds++
		st.Messages += roundMsgs

		// Ghost exchange: push this round's changed boundary values to
		// their replicas. In delta mode the apply marks arriving ghosts
		// dirty so the local frontier rebuild sees remote changes.
		for i := range flows {
			flows[i] = 0
		}
		forShards(runs, workers, func(_ int, sr *shardRun[S]) { sr.stageChanged() })
		applyExchange(runs, workers, delta, flows)
		part.OnExchange(st.Rounds, flows, vb)

		rs := RoundStats{Round: st.Rounds, Changed: changedTotal, Messages: roundMsgs, Elapsed: time.Since(begin)}
		st.History = append(st.History, rs)

		if delta {
			// Next round's message bill derives from the global changed
			// set: ghost replicas are excluded so each changed node is
			// billed exactly once, as in the unsharded kernel.
			pushCost := ownedPushCost(g, runs, func(r *shardRun[S]) bitset { return r.dirty })
			forShards(runs, workers, func(_ int, sr *shardRun[S]) { rebuildLocalFrontier(sr, sr.dirty) })
			roundMsgs = pushCost
		}
		if sink != nil && st.Rounds%cfg.ckptEvery == 0 {
			cp := Checkpoint[S]{Round: st.Rounds, States: gatherStates(runs, n), Stats: snapshotStats(st)}
			if delta {
				cp.Delta = true
				cp.Changed = gatherOwnedBits(runs, func(r *shardRun[S]) bitset { return r.dirty })
				cp.Frontier = gatherOwnedBits(runs, func(r *shardRun[S]) bitset { return r.frontier })
			}
			sink(cp)
		}
		forShards(runs, workers, func(_ int, sr *shardRun[S]) { sr.dirty.reset() })
		if cfg.observer != nil {
			if oerr := observe(cfg.observer, rs); oerr != nil {
				return gatherStates(runs, n), st, oerr
			}
		}
		if changedTotal == 0 {
			st.Stable = true
			return gatherStates(runs, n), st, nil
		}
	}
	st.Stable = false
	return gatherStates(runs, n), st, nil
}

// runShardedPerturbed is the fault-injected sharded kernel (full and delta).
// Restarted boundary values are pushed to replicas before the step so every
// shard sees the same start-of-round states the unsharded kernel would, and
// topology churn rebuilds the partition in place (ownership preserved) with
// the same seen/pending carry rules as remapSeen/remapPending.
func runShardedPerturbed[S any](
	g *graph.CSR,
	init func(v int) S,
	step func(v int, self S, neighbors []S) (S, bool),
	cfg config,
	workers int,
) ([]S, Stats, error) {
	part := cfg.partition
	bounds, lays, verr := validatePartition(g, part)
	if verr != nil {
		return nil, Stats{}, verr
	}
	sink, resume, err := checkpointPlumbing[S](&cfg)
	if err != nil {
		return nil, Stats{}, err
	}
	n := g.N()
	delta := cfg.delta

	var st Stats
	startRound := 0
	if resume != nil {
		if err := validateResume(resume, n, true, delta); err != nil {
			return nil, Stats{}, err
		}
		// Fast-forward the perturber exactly like the unsharded paths, then
		// rebuild the partition for the churned topology before any shard
		// state is allocated.
		churned := false
		for r := 1; r <= resume.Round; r++ {
			p := cfg.perturber.BeforeRound(r, g)
			if p.Topology != nil {
				if p.Topology.N() != n {
					return nil, Stats{}, errors.New("runtime: perturbed topology changed the node count")
				}
				g = p.Topology
				churned = true
			}
		}
		if churned {
			np, rerr := part.Rebuild(g)
			if rerr != nil {
				return nil, Stats{}, rerr
			}
			part = np
			if bounds, lays, verr = validatePartition(g, part); verr != nil {
				return nil, Stats{}, verr
			}
		}
	}
	k := len(lays)
	runs := newShardRuns(bounds, lays, init, delta, true)
	if resume != nil {
		scatterStates(runs, resume.States)
		st = snapshotStats(resume.Stats)
		startRound = resume.Round
	}
	seenReady := false
	if resume != nil && resume.Seen != nil {
		for _, sr := range runs {
			sr.seen = make([][]S, sr.lay.Own)
			for v := 0; v < sr.lay.Own; v++ {
				sr.seen[v] = append([]S(nil), resume.Seen[sr.base+v]...)
			}
		}
		seenReady = true
	}
	pendingReady := false
	if delta && resume != nil && startRound > 0 {
		if resume.Pending == nil {
			return nil, Stats{}, errors.New("runtime: resume into a perturbed delta run needs a checkpoint with Pending link state")
		}
		if len(resume.Pending) != n {
			return nil, Stats{}, fmt.Errorf("runtime: resume checkpoint has %d pending rows for %d nodes", len(resume.Pending), n)
		}
		for v := 0; v < n; v++ {
			if len(resume.Pending[v]) != len(g.Neighbors(v)) {
				return nil, Stats{}, fmt.Errorf("runtime: resume checkpoint pending row %d has %d links, topology has %d",
					v, len(resume.Pending[v]), len(g.Neighbors(v)))
			}
		}
		for _, sr := range runs {
			sr.pending = make([][]bool, sr.lay.Own)
			sr.pc = make([]int32, sr.lay.Own)
			for v := 0; v < sr.lay.Own; v++ {
				row := resume.Pending[sr.base+v]
				pv := make([]bool, len(row))
				copy(pv, row)
				sr.pending[v] = pv
				cnt := int32(0)
				for _, b := range pv {
					if b {
						cnt++
					}
				}
				sr.pc[v] = cnt
			}
		}
		if err := checkFrontierIDs(resume.Changed, n, "Changed"); err != nil {
			return nil, Stats{}, err
		}
		if err := checkFrontierIDs(resume.Frontier, n, "Frontier"); err != nil {
			return nil, Stats{}, err
		}
		gch := newBitset(n)
		for _, v := range resume.Changed {
			gch.set(v)
		}
		scatterOwnedBits(runs, bounds, resume.Changed, func(r *shardRun[S]) bitset { return r.senders })
		scatterGhostBits(runs, gch, func(r *shardRun[S]) bitset { return r.senders })
		scatterOwnedBits(runs, bounds, resume.Frontier, func(r *shardRun[S]) bitset { return r.frontier })
		pendingReady = true
	}
	if !seenReady {
		for _, sr := range runs {
			sr.seen = make([][]S, sr.lay.Own)
			for v := 0; v < sr.lay.Own; v++ {
				row := sr.lay.Local.Neighbors(v)
				sv := make([]S, len(row))
				for i, w := range row {
					sv[i] = sr.cur[w]
				}
				sr.seen[v] = sv
			}
		}
	}
	if delta && !pendingReady {
		for _, sr := range runs {
			sr.pending = make([][]bool, sr.lay.Own)
			sr.pc = make([]int32, sr.lay.Own)
			for v := 0; v < sr.lay.Own; v++ {
				sr.pending[v] = make([]bool, len(sr.lay.Local.Neighbors(v)))
			}
			// Round 1: every node broadcasts its init state, so every local
			// ID that can appear as a sender — owned or ghost — is one.
			sr.frontier.setFirst(sr.lay.Own)
			sr.senders.setFirst(sr.lay.Own)
			for l := sr.lay.GhostBase; l < sr.lay.NLocal(); l++ {
				sr.senders.set(l)
			}
		}
	}

	flows := make([]int32, k*k)
	vb := valueBytes[S]()

	for r := startRound; r < cfg.maxRounds; r++ {
		if cerr := cfg.cancelled(); cerr != nil {
			return gatherStates(runs, n), st, cerr
		}
		round := r + 1
		p := cfg.perturber.BeforeRound(round, g)
		handshakes := 0
		for i := range flows {
			flows[i] = 0
		}
		if p.Topology != nil {
			if p.Topology.N() != n {
				return gatherStates(runs, n), st, errors.New("runtime: perturbed topology changed the node count")
			}
			np, rerr := part.Rebuild(p.Topology)
			if rerr != nil {
				return gatherStates(runs, n), st, rerr
			}
			nb, nl, verr := validatePartition(p.Topology, np)
			if verr != nil {
				return gatherStates(runs, n), st, verr
			}
			for i := range bounds {
				if nb[i] != bounds[i] {
					return gatherStates(runs, n), st, errors.New("runtime: partition rebuild changed shard ownership")
				}
			}
			handshakes = remapShardRuns(runs, g, p.Topology, nl, bounds, delta)
			part = np
			g = p.Topology
		}
		if p.Restart != nil {
			applyShardRestarts(runs, bounds, p.Restart, init, delta, flows, k)
		}
		begin := time.Now()
		if delta {
			forShards(runs, workers, func(_ int, sr *shardRun[S]) { shardStepDeltaPerturbed(sr, step, &p) })
		} else {
			forShards(runs, workers, func(_ int, sr *shardRun[S]) { shardStepFullPerturbed(sr, step, &p) })
		}
		if serr := shardErr(runs); serr != nil {
			return gatherStates(runs, n), st, serr
		}
		forShards(runs, workers, func(_ int, sr *shardRun[S]) {
			if delta {
				for _, v := range sr.ws.ids {
					sr.cur[v] = sr.next[v]
				}
			} else {
				sr.cur, sr.next = sr.next, sr.cur
				copy(sr.cur[sr.lay.Own:], sr.next[sr.lay.Own:])
			}
		})
		changedTotal, delivered := 0, 0
		if delta {
			delivered = handshakes
		}
		for _, sr := range runs {
			changedTotal += sr.changed
			delivered += sr.delivered
		}
		st.Rounds++
		st.Messages += delivered

		forShards(runs, workers, func(_ int, sr *shardRun[S]) { sr.stageChanged() })
		applyExchange(runs, workers, delta, flows)
		part.OnExchange(st.Rounds, flows, vb)

		rs := RoundStats{Round: st.Rounds, Changed: changedTotal, Messages: delivered, Elapsed: time.Since(begin)}
		st.History = append(st.History, rs)

		if delta {
			// This round's changed set (owned + exchanged ghost marks)
			// becomes next round's sender set; the frontier is its readers
			// plus every carried node.
			forShards(runs, workers, func(_ int, sr *shardRun[S]) {
				sr.senders, sr.dirty = sr.dirty, sr.senders
				sr.dirty.reset()
				rebuildLocalFrontier(sr, sr.senders)
				for _, v := range sr.ws.carry {
					sr.frontier.set(int(v))
				}
				sr.ws.carry = sr.ws.carry[:0]
			})
		} else {
			forShards(runs, workers, func(_ int, sr *shardRun[S]) { sr.dirty.reset() })
		}
		if sink != nil && st.Rounds%cfg.ckptEvery == 0 {
			cp := Checkpoint[S]{
				Round:  st.Rounds,
				States: gatherStates(runs, n),
				Seen:   gatherSeen(runs, n),
				Stats:  snapshotStats(st),
			}
			if delta {
				cp.Delta = true
				cp.Changed = gatherOwnedBits(runs, func(r *shardRun[S]) bitset { return r.senders })
				cp.Frontier = gatherOwnedBits(runs, func(r *shardRun[S]) bitset { return r.frontier })
				cp.Pending = gatherPending(runs, n)
			}
			sink(cp)
		}
		if cfg.observer != nil {
			if oerr := observe(cfg.observer, rs); oerr != nil {
				return gatherStates(runs, n), st, oerr
			}
		}
		if changedTotal == 0 && !cfg.perturber.Active(round+1) {
			st.Stable = true
			return gatherStates(runs, n), st, nil
		}
	}
	st.Stable = false
	return gatherStates(runs, n), st, nil
}

// shardStepFull steps every owned node against the local CSR — the sharded
// twin of stepRange, with step and panic reports carrying global IDs.
func shardStepFull[S any](r *shardRun[S], step func(v int, self S, neighbors []S) (S, bool)) {
	r.changed = 0
	r.err = nil
	buf := r.scratch[:0]
	lay := r.lay
	gv := r.base
	defer func() {
		r.scratch = buf
		if rec := recover(); rec != nil {
			r.err = fmt.Errorf("runtime: step panicked at node %d: %v", gv, rec)
		}
	}()
	for v := 0; v < lay.Own; v++ {
		gv = r.base + v
		buf = buf[:0]
		for _, w := range lay.Local.Neighbors(v) {
			buf = append(buf, r.cur[w])
		}
		s, ch := step(gv, r.cur[v], buf)
		r.next[v] = s
		if ch {
			r.dirty.set(v)
			r.changed++
		}
	}
}

// shardStepDelta steps the owned frontier nodes — the sharded twin of
// deltaStepRange. Ghost frontier bits live past the word-aligned GhostBase,
// so the owned-word iteration never sees them.
func shardStepDelta[S any](r *shardRun[S], step func(v int, self S, neighbors []S) (S, bool)) {
	ws := &r.ws
	ws.ids = ws.ids[:0]
	r.changed = 0
	r.err = nil
	buf := ws.scratch[:0]
	lay := r.lay
	own := lay.Own
	gv := r.base
	defer func() {
		ws.scratch = buf
		if rec := recover(); rec != nil {
			r.err = fmt.Errorf("runtime: step panicked at node %d: %v", gv, rec)
		}
	}()
	for wi := 0; wi <= (own-1)>>6; wi++ {
		word := r.frontier[wi]
		if word == 0 {
			continue
		}
		base := wi << 6
		for word != 0 {
			v := base + bits.TrailingZeros64(word)
			word &= word - 1
			gv = r.base + v
			buf = buf[:0]
			for _, w := range lay.Local.Neighbors(v) {
				buf = append(buf, r.cur[w])
			}
			s, ch := step(gv, r.cur[v], buf)
			r.next[v] = s
			ws.ids = append(ws.ids, int32(v))
			if ch {
				r.dirty.set(v)
				r.changed++
			}
		}
	}
}

// shardStepFullPerturbed is the sharded twin of stepRangePerturbed: owned
// nodes step against their persistent view buffers, deliveries read local
// state (ghosts mirror their owners), and fault predicates are evaluated on
// global IDs.
func shardStepFullPerturbed[S any](r *shardRun[S], step func(v int, self S, neighbors []S) (S, bool), p *Perturbation) {
	r.changed = 0
	r.delivered = 0
	r.err = nil
	lay := r.lay
	gv := r.base
	defer func() {
		if rec := recover(); rec != nil {
			r.err = fmt.Errorf("runtime: step panicked at node %d: %v", gv, rec)
		}
	}()
	for v := 0; v < lay.Own; v++ {
		gv = r.base + v
		if p.Inactive != nil && p.Inactive[gv] {
			r.next[v] = r.cur[v]
			continue
		}
		sv := r.seen[v]
		for i, w := range lay.Local.Neighbors(v) {
			gw := int(lay.Global[w])
			if p.Silence != nil && p.Silence[gw] {
				continue
			}
			if p.Drop != nil && p.Drop(gw, gv) {
				continue
			}
			sv[i] = r.cur[w]
			r.delivered++
		}
		s, ch := step(gv, r.cur[v], sv)
		r.next[v] = s
		if ch {
			r.dirty.set(v)
			r.changed++
		}
	}
}

// shardStepDeltaPerturbed is the sharded twin of deltaStepRangePerturbed.
// The senders bitset spans owned and ghost IDs, so "did this neighbor change
// last round" resolves locally for remote senders too.
func shardStepDeltaPerturbed[S any](r *shardRun[S], step func(v int, self S, neighbors []S) (S, bool), p *Perturbation) {
	ws := &r.ws
	ws.ids = ws.ids[:0]
	r.changed = 0
	r.delivered = 0
	r.err = nil
	lay := r.lay
	own := lay.Own
	gv := r.base
	defer func() {
		if rec := recover(); rec != nil {
			r.err = fmt.Errorf("runtime: step panicked at node %d: %v", gv, rec)
		}
	}()
	for wi := 0; wi <= (own-1)>>6; wi++ {
		word := r.frontier[wi]
		if word == 0 {
			continue
		}
		base := wi << 6
		for word != 0 {
			v := base + bits.TrailingZeros64(word)
			word &= word - 1
			gv = r.base + v
			if p.Inactive != nil && p.Inactive[gv] {
				pv := r.pending[v]
				for i, w := range lay.Local.Neighbors(v) {
					if !pv[i] && r.senders.get(int(w)) {
						pv[i] = true
						r.pc[v]++
					}
				}
				ws.carry = append(ws.carry, int32(v))
				continue
			}
			sv := r.seen[v]
			pv := r.pending[v]
			for i, w := range lay.Local.Neighbors(v) {
				if !pv[i] && !r.senders.get(int(w)) {
					continue
				}
				gw := int(lay.Global[w])
				if (p.Silence != nil && p.Silence[gw]) || (p.Drop != nil && p.Drop(gw, gv)) {
					if !pv[i] {
						pv[i] = true
						r.pc[v]++
					}
					continue
				}
				sv[i] = r.cur[w]
				if pv[i] {
					pv[i] = false
					r.pc[v]--
				}
				r.delivered++
			}
			s, ch := step(gv, r.cur[v], sv)
			r.next[v] = s
			ws.ids = append(ws.ids, int32(v))
			if ch {
				r.dirty.set(v)
				r.changed++
			}
			if r.pc[v] > 0 {
				ws.carry = append(ws.carry, int32(v))
			}
		}
	}
}

// applyShardRestarts resets restarted nodes to their init state and pushes
// the reset value to every ghost replica before the round's step — the
// restart broadcast the unsharded kernel gets for free from shared memory.
// In delta mode the restarted node and all its readers (local and remote,
// via the replicas' in-neighbors) re-enter the frontier, and the restarted
// node becomes a sender, exactly mirroring runDeltaPerturbed.
func applyShardRestarts[S any](
	runs []*shardRun[S],
	bounds []int32,
	restart []bool,
	init func(v int) S,
	delta bool,
	flows []int32,
	k int,
) {
	for gv, rs := range restart {
		if !rs {
			continue
		}
		s := locateOwner(bounds, int32(gv))
		sr := runs[s]
		lv := gv - sr.base
		val := init(gv)
		sr.cur[lv] = val
		if delta {
			sr.senders.set(lv)
			sr.frontier.set(lv)
			for _, w := range sr.lay.Local.InNeighbors(lv) {
				sr.frontier.set(int(w))
			}
		}
		lay := sr.lay
		for _, rep := range lay.Replicas[lay.ReplicaOff[lv]:lay.ReplicaOff[lv+1]] {
			rd := runs[rep.Shard]
			rd.cur[rep.Slot] = val
			if delta {
				rd.senders.set(int(rep.Slot))
				for _, w := range rd.lay.Local.InNeighbors(int(rep.Slot)) {
					rd.frontier.set(int(w))
				}
			}
			flows[s*k+int(rep.Shard)]++
		}
	}
}

// shardRemap stages one shard's post-churn state so every shard can read its
// peers' pre-churn state while building; install happens after all builds.
type shardRemap[S any] struct {
	cur, next                []S
	seen                     [][]S
	pending                  [][]bool
	pc                       []int32
	frontier, dirty, senders bitset
}

// remapShardRuns rebuilds all shard state for a churned topology with
// preserved ownership: owned states and owned bitset words carry over, ghost
// values and ghost sender bits are re-fetched from their owners, and the
// seen/pending rows follow the unsharded carry rules (remapSeen/remapPending)
// against the global adjacency — including the handshake count and the
// rewritten-row frontier marks. Returns the number of handshake deliveries
// (delta mode; the full path bills none, like remapSeen).
func remapShardRuns[S any](
	runs []*shardRun[S],
	oldG, fresh *graph.CSR,
	newLays []*ShardLayout,
	bounds []int32,
	delta bool,
) int {
	handshakes := 0
	k := len(runs)
	staged := make([]shardRemap[S], k)
	for s, sr := range runs {
		lay := newLays[s]
		nl := lay.NLocal()
		rm := shardRemap[S]{cur: make([]S, nl), next: make([]S, nl)}
		copy(rm.cur[:lay.Own], sr.cur[:lay.Own])
		for l := lay.GhostBase; l < nl; l++ {
			gid := lay.Global[l]
			t := locateOwner(bounds, gid)
			rm.cur[l] = runs[t].cur[int(gid)-runs[t].base]
		}
		rm.dirty = newBitset(nl)
		ownedWords := (lay.Own + 63) >> 6
		if delta {
			rm.frontier = newBitset(nl)
			copy(rm.frontier[:ownedWords], sr.frontier[:ownedWords])
			rm.senders = newBitset(nl)
			copy(rm.senders[:ownedWords], sr.senders[:ownedWords])
			for l := lay.GhostBase; l < nl; l++ {
				gid := lay.Global[l]
				t := locateOwner(bounds, gid)
				if runs[t].senders.get(int(gid) - runs[t].base) {
					rm.senders.set(l)
				}
			}
			rm.pending = make([][]bool, lay.Own)
			rm.pc = make([]int32, lay.Own)
		}
		rm.seen = make([][]S, lay.Own)
		for v := 0; v < lay.Own; v++ {
			gid := sr.base + v
			oldRow := oldG.Neighbors(gid)
			newRow := fresh.Neighbors(gid)
			sv := make([]S, len(newRow))
			var pv []bool
			var cnt int32
			if delta {
				pv = make([]bool, len(newRow))
			}
			for i, w := range newRow {
				carried := false
				for j, ow := range oldRow {
					if ow == w {
						sv[i] = sr.seen[v][j]
						if delta {
							pv[i] = sr.pending[v][j]
							if pv[i] {
								cnt++
							}
						}
						carried = true
						break
					}
				}
				if !carried {
					t := locateOwner(bounds, w)
					sv[i] = runs[t].cur[int(w)-runs[t].base]
					if delta {
						handshakes++
					}
				}
			}
			rm.seen[v] = sv
			if delta {
				rm.pending[v] = pv
				rm.pc[v] = cnt
				rowChanged := len(oldRow) != len(newRow)
				if !rowChanged {
					for i := range newRow {
						if newRow[i] != oldRow[i] {
							rowChanged = true
							break
						}
					}
				}
				if rowChanged {
					rm.frontier.set(v)
				}
			}
		}
		staged[s] = rm
	}
	for s, sr := range runs {
		rm := &staged[s]
		sr.lay = newLays[s]
		sr.cur, sr.next = rm.cur, rm.next
		sr.seen = rm.seen
		sr.dirty = rm.dirty
		if delta {
			sr.frontier = rm.frontier
			sr.senders = rm.senders
			sr.pending = rm.pending
			sr.pc = rm.pc
		}
	}
	return handshakes
}
