package runtime

import "math/bits"

// bitset is a dense bit vector over node IDs, the frontier representation of
// the delta kernel: set/clear/test are O(1), iteration skips empty words, and
// the word layout lets word-aligned shards write disjoint ranges without
// synchronization.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(v int)   { b[v>>6] |= 1 << (uint(v) & 63) }
func (b bitset) clear(v int) { b[v>>6] &^= 1 << (uint(v) & 63) }

func (b bitset) get(v int) bool { return b[v>>6]&(1<<(uint(v)&63)) != 0 }

// reset zeroes the whole set (compiles to a memclr; at one bit per node this
// is n/8 bytes — noise next to even a single node's step).
func (b bitset) reset() {
	for i := range b {
		b[i] = 0
	}
}

// setAll sets bits [0, n) and leaves the tail of the last word clear, so
// iteration and count never see ghost nodes.
func (b bitset) setAll(n int) {
	for i := range b {
		b[i] = ^uint64(0)
	}
	if r := uint(n) & 63; r != 0 && len(b) > 0 {
		b[len(b)-1] = ^uint64(0) >> (64 - r)
	}
}

// setFirst sets bits [0, n) and leaves every later bit clear — the setAll
// variant for bitsets whose backing array extends past n, such as shard-local
// sets whose tail words belong to ghost replicas.
func (b bitset) setFirst(n int) {
	full := n >> 6
	for i := 0; i < full; i++ {
		b[i] = ^uint64(0)
	}
	if r := uint(n) & 63; r != 0 {
		b[full] = ^uint64(0) >> (64 - r)
	}
}

// count returns the number of set bits.
func (b bitset) count() int {
	total := 0
	for _, w := range b {
		total += bits.OnesCount64(w)
	}
	return total
}

// any reports whether any bit is set.
func (b bitset) any() bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}

// copyFrom overwrites b with src (same length).
func (b bitset) copyFrom(src bitset) { copy(b, src) }

// forEachIn calls fn for every set bit in [lo, hi) in ascending order. lo and
// hi need not be word-aligned.
func (b bitset) forEachIn(lo, hi int, fn func(v int)) {
	if lo >= hi {
		return
	}
	for wi := lo >> 6; wi <= (hi-1)>>6; wi++ {
		w := b[wi]
		if w == 0 {
			continue
		}
		base := wi << 6
		// Mask off bits below lo and at/above hi within boundary words.
		if base < lo {
			w &= ^uint64(0) << (uint(lo) & 63)
		}
		if base+64 > hi {
			w &= ^uint64(0) >> (64 - (uint(hi-1)&63 + 1))
		}
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// appendBits appends every set bit of b to out in ascending order.
func (b bitset) appendBits(out []int) []int {
	for wi, w := range b {
		base := wi << 6
		for w != 0 {
			out = append(out, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return out
}
