// Package runtime_test holds the cross-engine delta-equivalence property
// test: it lives outside package runtime so it can drive the real engines
// (labeling, distvec, centrality, layering, hypercube) and sim.Schedule
// churn through the public kernel API without an import cycle.
package runtime_test

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"structura/internal/centrality"
	"structura/internal/distvec"
	"structura/internal/gen"
	"structura/internal/graph"
	"structura/internal/hypercube"
	"structura/internal/labeling"
	"structura/internal/layering"
	"structura/internal/runtime"
	"structura/internal/sim"
	"structura/internal/stats"
)

// engineRun executes one engine end to end and reduces its outcome to a
// comparable fingerprint: final labels, round count, per-round changed
// counts, and the error (engines surface budget exhaustion as ErrUnstable).
type engineOutcome struct {
	labels  string
	rounds  int
	history []int
	err     string
}

func fingerprint(labels fmt.Stringer, st runtime.Stats, err error) engineOutcome {
	out := engineOutcome{rounds: st.Rounds}
	if labels != nil {
		out.labels = labels.String()
	}
	for _, rs := range st.History {
		out.history = append(out.history, rs.Changed)
	}
	if err != nil {
		out.err = err.Error()
	}
	return out
}

type intLabels []int

func (l intLabels) String() string { return fmt.Sprint([]int(l)) }

type floatLabels []float64

func (l floatLabels) String() string {
	// Exact bit pattern: delta equivalence is bit-identity, not tolerance.
	out := make([]uint64, len(l))
	for i, f := range l {
		out[i] = math.Float64bits(f)
	}
	return fmt.Sprint(out)
}

func colorLabels(c []labeling.Color) intLabels {
	out := make(intLabels, len(c))
	for i, v := range c {
		out[i] = int(v)
	}
	return out
}

// engines enumerates the five engines as closures over shared inputs. Each
// closure runs its engine with the given kernel options and returns the
// outcome fingerprint.
func engines(g *graph.Graph, prio labeling.Priority) map[string]func(opts ...runtime.Option) engineOutcome {
	return map[string]func(opts ...runtime.Option) engineOutcome{
		"labeling/mis": func(opts ...runtime.Option) engineOutcome {
			res, err := labeling.DistributedMIS(g, prio, opts...)
			if err != nil && !errors.Is(err, labeling.ErrUnstable) {
				return engineOutcome{err: err.Error()}
			}
			return fingerprint(colorLabels(res.Colors), runtime.Stats{Rounds: res.Rounds}, err)
		},
		"distvec": func(opts ...runtime.Option) engineOutcome {
			tbl, err := distvec.Compute(g, 0, 4*g.N(), opts...)
			if err != nil && !errors.Is(err, distvec.ErrUnstable) {
				return engineOutcome{err: err.Error()}
			}
			labels := make(intLabels, 0, 2*g.N())
			for v := range tbl.Dist {
				d := tbl.Dist[v]
				if math.IsInf(d, 1) {
					d = -1
				}
				labels = append(labels, int(d*1e6), tbl.NextHop[v])
			}
			return fingerprint(labels, runtime.Stats{Rounds: tbl.Rounds}, err)
		},
		"centrality/pagerank": func(opts ...runtime.Option) engineOutcome {
			res, err := centrality.DistributedPageRank(g, 0.85, 300, 1e-10, opts...)
			if err != nil {
				return engineOutcome{err: err.Error()}
			}
			return fingerprint(floatLabels(res.Scores), res.Stats, nil)
		},
		"layering": func(opts ...runtime.Option) engineOutcome {
			res, err := layering.DistributedNestedLevels(g, opts...)
			if err != nil {
				return engineOutcome{err: err.Error()}
			}
			return fingerprint(intLabels(res.Levels), res.Stats, nil)
		},
	}
}

func outcomesEqual(a, b engineOutcome) bool {
	if a.labels != b.labels || a.rounds != b.rounds || a.err != b.err || len(a.history) != len(b.history) {
		return false
	}
	for i := range a.history {
		if a.history[i] != b.history[i] {
			return false
		}
	}
	return true
}

// TestDeltaEngineEquivalence: for every engine, worker count, and churn
// seed, WithDelta must reproduce the full kernel bit for bit — labels,
// rounds, per-round changed counts, and even the failure mode.
func TestDeltaEngineEquivalence(t *testing.T) {
	g := gen.SparseErdosRenyi(stats.NewRand(42), 160, 0.03)
	prio := labeling.PriorityByID(g.N())

	schedules := map[string]*sim.Schedule{
		"clean": nil,
		"churn": {Horizon: 8, ChurnAdd: 2, ChurnRemove: 2, MsgLoss: 0.05},
		"chaos": {Horizon: 10, ChurnAdd: 1, ChurnRemove: 1, MsgLoss: 0.08,
			CrashProb: 0.01, Downtime: 2, SkewProb: 0.03, MaxSkew: 2},
	}
	for engName, run := range engines(g, prio) {
		for schedName, sch := range schedules {
			for _, seed := range []uint64{1, 7} {
				for _, workers := range []int{1, 4} {
					name := fmt.Sprintf("%s/%s/seed%d/w%d", engName, schedName, seed, workers)
					opts := func(delta bool) []runtime.Option {
						out := []runtime.Option{runtime.WithParallelism(workers)}
						if sch != nil {
							// Perturbers are single-run; identical (seed,
							// schedule) pairs replay identical fault
							// timelines for the two kernels.
							out = append(out, runtime.WithPerturber(sim.NewPerturber(g, seed, *sch)))
						}
						if delta {
							out = append(out, runtime.WithDelta())
						}
						return out
					}
					full := run(opts(false)...)
					delta := run(opts(true)...)
					if !outcomesEqual(full, delta) {
						t.Errorf("%s diverged:\n full: rounds=%d err=%q history=%v\ndelta: rounds=%d err=%q history=%v\nlabels equal: %v",
							name, full.rounds, full.err, full.history,
							delta.rounds, delta.err, delta.history, full.labels == delta.labels)
					}
				}
				if sch == nil {
					break // seeds only matter under a schedule
				}
			}
		}
	}
}

// TestDeltaHypercubeEquivalence runs the fifth engine, whose topology and
// init differ structurally (faulty nodes, dim-regular graph).
func TestDeltaHypercubeEquivalence(t *testing.T) {
	cube, err := hypercube.New(6, []int{3, 17, 40, 41})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		res, st, err := cube.SafetyLevelsDistributed(runtime.WithParallelism(workers))
		if err != nil {
			t.Fatal(err)
		}
		dres, dst, err := cube.SafetyLevelsDistributed(runtime.WithParallelism(workers), runtime.WithDelta())
		if err != nil {
			t.Fatal(err)
		}
		if !outcomesEqual(fingerprint(intLabels(res.Levels), st, nil), fingerprint(intLabels(dres.Levels), dst, nil)) {
			t.Fatalf("w%d: hypercube safety levels diverged under delta", workers)
		}
	}
}
