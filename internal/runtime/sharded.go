package runtime

import (
	"fmt"
	"sort"
	"sync"

	"structura/internal/graph"
)

// Replica locates one ghost copy of an owned node: shard Shard holds the
// node's value at local slot Slot. The owner pushes its changed value there
// during the inter-round exchange.
type Replica struct {
	Shard int32
	Slot  int32
}

// ShardLayout is one shard's view of an edge-cut partition. The shard owns
// the contiguous global range [bounds[s], bounds[s+1]); local IDs [0, Own)
// map onto it in order. Ghost nodes — remote nodes some owned node reads —
// occupy local IDs [GhostBase, NLocal), where GhostBase is rounded up to a
// multiple of 64 whenever ghosts exist so that owned and ghost bits never
// share a bitset word (the delta kernel's word-at-a-time frontier iteration
// depends on that separation). Local IDs in [Own, GhostBase) are padding:
// empty adjacency rows, Global ID -1, never stepped and never referenced.
//
// Local.Neighbors(v) for owned v lists exactly the global row of the owned
// node with remote targets renamed to ghost IDs, in the same order — order
// preservation is what keeps order-sensitive step functions bit-identical.
// Ghost rows exist only so Local.InNeighbors(ghost) yields the owned readers
// of that ghost (undirected: the reader list is the row; directed: the
// reverse CSR provides it); ghosts are never stepped.
type ShardLayout struct {
	Local     *graph.CSR
	Own       int
	GhostBase int
	Global    []int32 // local ID -> global ID; -1 for padding slots

	// Replicas[ReplicaOff[v]:ReplicaOff[v+1]] lists the ghost copies of
	// owned local node v, ordered by ascending destination shard.
	ReplicaOff []int32
	Replicas   []Replica
}

// NLocal returns the shard's local ID space size (owned + padding + ghosts).
func (l *ShardLayout) NLocal() int { return len(l.Global) }

// Ghosts returns the number of ghost slots.
func (l *ShardLayout) Ghosts() int { return len(l.Global) - l.GhostBase }

// Partition describes an edge-cut sharding of a frozen CSR to the kernel.
// Implementations live outside this package (internal/partition provides the
// standard one); the kernel only needs the bounds, the per-shard layouts, a
// way to rebuild the layouts after topology churn, and a sink for per-round
// exchange accounting.
type Partition interface {
	// Bounds returns the k+1 ascending ownership boundaries: shard s owns
	// global IDs [Bounds()[s], Bounds()[s+1]). Bounds must start at 0, end
	// at n, and be strictly increasing (no empty shards).
	Bounds() []int32

	// Layouts returns one ShardLayout per shard, consistent with Bounds.
	Layouts() []*ShardLayout

	// Rebuild derives a new Partition for a churned topology with the same
	// node count. Ownership (Bounds) must be preserved — only the local
	// CSRs, ghost sets, and replica lists change — so shard-resident state
	// survives churn without migration.
	Rebuild(fresh *graph.CSR) (Partition, error)

	// OnExchange reports one round's ghost traffic: flows[s*k+t] is the
	// number of boundary values shard s pushed to shard t this round, and
	// valueBytes the in-memory size of one state value. flows is reused by
	// the kernel and only valid during the call. Implementations that do
	// not collect exchange statistics can ignore it.
	OnExchange(round int, flows []int32, valueBytes int)
}

// WithPartition runs the round kernel sharded over an edge-cut partition:
// each shard steps only its owned nodes against a local CSR whose boundary
// reads hit ghost replicas, and shards exchange only the boundary values
// that changed between rounds. Results — states, rounds, per-round Changed
// and Messages, checkpoints, error strings — are bit-identical to the
// unsharded kernel on every path (full, WithDelta, WithPerturber, and their
// combinations), and checkpoints remain in the global format, so a sharded
// run can resume an unsharded checkpoint and vice versa.
//
// The changed-values-only exchange leans on the same step-honesty contract
// as WithDelta: step must report ch == true whenever the returned state
// differs from self, or ghost replicas go stale. WithParallelism controls
// how many shards step concurrently (parallelism is across shards).
func WithPartition(p Partition) Option {
	return func(c *config) { c.partition = p }
}

// shardRun is one shard's mutable execution state: local state arrays, the
// delta-kernel bitsets over the local ID space, the perturbed path's view and
// pending-link buffers for owned nodes, and the per-destination staging
// buffers of the ghost exchange.
type shardRun[S any] struct {
	lay  *ShardLayout
	base int // bounds[s]: owned local v is global base+v

	cur, next []S

	// dirty marks owned nodes whose step reported a change this round (the
	// staging source); the exchange apply phase also marks changed ghosts
	// here so the local frontier rebuild sees remote changes. frontier and
	// senders serve the delta paths exactly as in the unsharded kernel.
	dirty    bitset
	frontier bitset
	senders  bitset

	seen    [][]S    // perturbed: per owned node, row-aligned views
	pending [][]bool // perturbed delta: per owned node, row-aligned retry bits
	pc      []int32  // perturbed delta: per owned node pending count

	ws      deltaWorkerState[S] // delta paths: commit/carry lists + scratch
	scratch []S                 // full paths: neighbor gather buffer

	changed   int
	delivered int
	err       error

	// Ghost-exchange staging, one pair of parallel slices per destination
	// shard: outSlots[t][i] is a ghost slot in shard t, outVals[t][i] the
	// value to store there.
	outSlots [][]int32
	outVals  [][]S
}

// validatePartition shape-checks a Partition against the run's CSR: bounds
// cover [0, n) with no empty shards, layouts agree with the bounds, ghost
// regions are word-separated from owned bits, and every replica points at a
// ghost slot of the right node on the right shard. Deep adjacency
// equivalence is the partition builder's contract, not re-verified here.
func validatePartition(g *graph.CSR, p Partition) ([]int32, []*ShardLayout, error) {
	n := g.N()
	bounds := p.Bounds()
	if len(bounds) < 2 {
		return nil, nil, fmt.Errorf("runtime: partition has %d bounds, need at least 2", len(bounds))
	}
	k := len(bounds) - 1
	if bounds[0] != 0 || int(bounds[k]) != n {
		return nil, nil, fmt.Errorf("runtime: partition bounds [%d, %d] do not cover [0, %d]", bounds[0], bounds[k], n)
	}
	for s := 0; s < k; s++ {
		if bounds[s+1] <= bounds[s] {
			return nil, nil, fmt.Errorf("runtime: partition shard %d is empty (bounds %d..%d)", s, bounds[s], bounds[s+1])
		}
	}
	lays := p.Layouts()
	if len(lays) != k {
		return nil, nil, fmt.Errorf("runtime: partition has %d layouts for %d shards", len(lays), k)
	}
	for s, lay := range lays {
		if lay == nil || lay.Local == nil {
			return nil, nil, fmt.Errorf("runtime: partition shard %d has no layout", s)
		}
		own := int(bounds[s+1] - bounds[s])
		if lay.Own != own {
			return nil, nil, fmt.Errorf("runtime: partition shard %d owns %d nodes, bounds say %d", s, lay.Own, own)
		}
		if lay.Local.N() != len(lay.Global) {
			return nil, nil, fmt.Errorf("runtime: partition shard %d local CSR has %d nodes for %d local IDs", s, lay.Local.N(), len(lay.Global))
		}
		if lay.GhostBase < lay.Own || lay.GhostBase > len(lay.Global) {
			return nil, nil, fmt.Errorf("runtime: partition shard %d ghost base %d outside [%d, %d]", s, lay.GhostBase, lay.Own, len(lay.Global))
		}
		if lay.GhostBase != lay.Own && lay.GhostBase%64 != 0 {
			return nil, nil, fmt.Errorf("runtime: partition shard %d ghost base %d is not word-aligned", s, lay.GhostBase)
		}
		if lay.Ghosts() > 0 && lay.GhostBase%64 != 0 {
			return nil, nil, fmt.Errorf("runtime: partition shard %d has ghosts but ghost base %d is not word-aligned", s, lay.GhostBase)
		}
		for v := 0; v < lay.Own; v++ {
			if lay.Global[v] != bounds[s]+int32(v) {
				return nil, nil, fmt.Errorf("runtime: partition shard %d local %d maps to global %d, want %d", s, v, lay.Global[v], bounds[s]+int32(v))
			}
		}
		if len(lay.ReplicaOff) != lay.Own+1 {
			return nil, nil, fmt.Errorf("runtime: partition shard %d has %d replica offsets for %d owned nodes", s, len(lay.ReplicaOff), lay.Own)
		}
		if int(lay.ReplicaOff[lay.Own]) != len(lay.Replicas) {
			return nil, nil, fmt.Errorf("runtime: partition shard %d replica offsets end at %d, have %d replicas", s, lay.ReplicaOff[lay.Own], len(lay.Replicas))
		}
	}
	// Replica cross-check: every replica must name a ghost slot of the same
	// global node on another shard.
	for s, lay := range lays {
		for v := 0; v < lay.Own; v++ {
			if lay.ReplicaOff[v+1] < lay.ReplicaOff[v] {
				return nil, nil, fmt.Errorf("runtime: partition shard %d replica offsets decrease at node %d", s, v)
			}
			for _, rep := range lay.Replicas[lay.ReplicaOff[v]:lay.ReplicaOff[v+1]] {
				if int(rep.Shard) == s || rep.Shard < 0 || int(rep.Shard) >= k {
					return nil, nil, fmt.Errorf("runtime: partition shard %d node %d has replica on invalid shard %d", s, v, rep.Shard)
				}
				dst := lays[rep.Shard]
				if int(rep.Slot) < dst.GhostBase || int(rep.Slot) >= dst.NLocal() {
					return nil, nil, fmt.Errorf("runtime: partition shard %d node %d replica slot %d outside shard %d ghost range", s, v, rep.Slot, rep.Shard)
				}
				if dst.Global[rep.Slot] != bounds[s]+int32(v) {
					return nil, nil, fmt.Errorf("runtime: partition shard %d node %d replica on shard %d holds global %d", s, v, rep.Shard, dst.Global[rep.Slot])
				}
			}
		}
	}
	return bounds, lays, nil
}

// newShardRuns allocates per-shard execution state and initializes owned
// states via init (with global IDs); ghost values are then fetched from
// their owners so init is invoked exactly once per node, like the unsharded
// kernel. delta/perturbed select which auxiliary structures exist.
func newShardRuns[S any](
	bounds []int32, lays []*ShardLayout,
	init func(v int) S,
	delta, perturbed bool,
) []*shardRun[S] {
	k := len(lays)
	runs := make([]*shardRun[S], k)
	for s, lay := range lays {
		nl := lay.NLocal()
		r := &shardRun[S]{
			lay:      lay,
			base:     int(bounds[s]),
			cur:      make([]S, nl),
			next:     make([]S, nl),
			dirty:    newBitset(nl),
			outSlots: make([][]int32, k),
			outVals:  make([][]S, k),
		}
		for v := 0; v < lay.Own; v++ {
			r.cur[v] = init(r.base + v)
		}
		if delta {
			r.frontier = newBitset(nl)
			r.ws.scratch = make([]S, 0, 16)
		} else {
			r.scratch = make([]S, 0, 16)
		}
		if perturbed && delta {
			r.senders = newBitset(nl)
		}
		runs[s] = r
	}
	fillGhosts(runs, bounds)
	return runs
}

// fillGhosts copies every ghost slot's value from its owner's current state.
func fillGhosts[S any](runs []*shardRun[S], bounds []int32) {
	for _, r := range runs {
		lay := r.lay
		for l := lay.GhostBase; l < lay.NLocal(); l++ {
			gid := lay.Global[l]
			t := locateOwner(bounds, gid)
			r.cur[l] = runs[t].cur[int(gid)-int(bounds[t])]
		}
	}
}

// locateOwner returns the shard owning global node gid.
func locateOwner(bounds []int32, gid int32) int {
	// bounds is ascending; find the first bound strictly greater than gid.
	return sort.Search(len(bounds)-1, func(s int) bool { return bounds[s+1] > gid })
}

// forShards runs f over every shard, fanning out across up to `workers`
// goroutines with a static assignment. f must confine its writes to the
// shard it is handed (plus, for the exchange apply phase, data the phase
// contract makes disjoint).
func forShards[S any](runs []*shardRun[S], workers int, f func(s int, r *shardRun[S])) {
	if workers <= 1 || len(runs) == 1 {
		for s, r := range runs {
			f(s, r)
		}
		return
	}
	w := workers
	if w > len(runs) {
		w = len(runs)
	}
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for s := i; s < len(runs); s += w {
				f(s, runs[s])
			}
		}(i)
	}
	wg.Wait()
}

// shardErr returns the lowest-shard error, mirroring stepShards' rule so the
// reported node is deterministic.
func shardErr[S any](runs []*shardRun[S]) error {
	for _, r := range runs {
		if r.err != nil {
			return r.err
		}
	}
	return nil
}

// stageChanged fills each shard's per-destination staging buffers with the
// committed values of owned nodes marked dirty this round that have ghost
// replicas elsewhere. Runs per shard (parallel-safe: reads own state only).
func (r *shardRun[S]) stageChanged() {
	for t := range r.outSlots {
		r.outSlots[t] = r.outSlots[t][:0]
		r.outVals[t] = r.outVals[t][:0]
	}
	lay := r.lay
	if len(lay.Replicas) == 0 {
		return
	}
	r.dirty.forEachIn(0, lay.Own, func(v int) {
		lo, hi := lay.ReplicaOff[v], lay.ReplicaOff[v+1]
		for _, rep := range lay.Replicas[lo:hi] {
			r.outSlots[rep.Shard] = append(r.outSlots[rep.Shard], rep.Slot)
			r.outVals[rep.Shard] = append(r.outVals[rep.Shard], r.cur[v])
		}
	})
}

// applyExchange drains every staging buffer destined for each shard into
// that shard's ghost slots, optionally marking the ghost dirty so the delta
// frontier rebuild sees the remote change, and accumulates per-(src,dst)
// flow counts. Parallel over destination shards: each destination writes
// only its own state and its own column of flows.
func applyExchange[S any](runs []*shardRun[S], workers int, markGhosts bool, flows []int32) {
	k := len(runs)
	forShards(runs, workers, func(d int, rd *shardRun[S]) {
		for s := 0; s < k; s++ {
			if s == d {
				continue
			}
			slots := runs[s].outSlots[d]
			vals := runs[s].outVals[d]
			for i, slot := range slots {
				rd.cur[slot] = vals[i]
				if markGhosts {
					rd.dirty.set(int(slot))
				}
			}
			flows[s*k+d] += int32(len(slots))
		}
	})
}

// gatherStates assembles the global state array from the shards' owned
// ranges — the kernel's return value and checkpoint States format.
func gatherStates[S any](runs []*shardRun[S], n int) []S {
	out := make([]S, n)
	for _, r := range runs {
		copy(out[r.base:r.base+r.lay.Own], r.cur[:r.lay.Own])
	}
	return out
}

// gatherOwnedBits lists, in ascending global order, the owned set bits of
// the selected per-shard bitset — the global equivalent of appendBits, with
// ghost replicas excluded so each node appears exactly once.
func gatherOwnedBits[S any](runs []*shardRun[S], sel func(*shardRun[S]) bitset) []int {
	var out []int
	for _, r := range runs {
		base := r.base
		sel(r).forEachIn(0, r.lay.Own, func(v int) {
			out = append(out, base+v)
		})
	}
	return out
}

// ownedPushCost sums the global in-degrees of the selected owned bits — the
// messages those nodes will send next round, identical to the unsharded
// frontierMessages over the corresponding global set.
func ownedPushCost[S any](g *graph.CSR, runs []*shardRun[S], sel func(*shardRun[S]) bitset) int {
	total := 0
	for _, r := range runs {
		base := r.base
		sel(r).forEachIn(0, r.lay.Own, func(v int) {
			total += g.InDegree(base + v)
		})
	}
	return total
}

// rebuildLocalFrontier recomputes the shard's frontier = dirty ∪
// readers(dirty) over the local CSR. Ghost dirty bits contribute their owned
// readers; frontier bits that land on ghost slots are harmless (ghosts are
// never stepped). The push/pull direction choice is shard-local — both
// directions produce the same set, so it cannot affect bit-identity.
func rebuildLocalFrontier[S any](r *shardRun[S], dirty bitset) {
	lp := frontierMessages(r.lay.Local, dirty)
	rebuildFrontier(r.lay.Local, r.frontier, dirty, lp, r.lay.NLocal(), nil)
}

// gatherSeen assembles the global per-node view buffers (checkpoint Seen
// format): owned rows are row-aligned to the global adjacency already.
func gatherSeen[S any](runs []*shardRun[S], n int) [][]S {
	out := make([][]S, n)
	for _, r := range runs {
		for v := 0; v < r.lay.Own; v++ {
			out[r.base+v] = append([]S(nil), r.seen[v]...)
		}
	}
	return out
}

// gatherPending assembles the global per-link retry bits (checkpoint Pending
// format).
func gatherPending[S any](runs []*shardRun[S], n int) [][]bool {
	out := make([][]bool, n)
	for _, r := range runs {
		for v := 0; v < r.lay.Own; v++ {
			row := make([]bool, len(r.pending[v]))
			copy(row, r.pending[v])
			out[r.base+v] = row
		}
	}
	return out
}

// scatterStates distributes a global state array onto the shards: owned
// ranges directly, ghost slots from the same array.
func scatterStates[S any](runs []*shardRun[S], states []S) {
	for _, r := range runs {
		copy(r.cur[:r.lay.Own], states[r.base:r.base+r.lay.Own])
		lay := r.lay
		for l := lay.GhostBase; l < lay.NLocal(); l++ {
			r.cur[l] = states[lay.Global[l]]
		}
	}
}

// scatterOwnedBits sets, on each owning shard, the local bits named by the
// global ID list.
func scatterOwnedBits[S any](runs []*shardRun[S], bounds []int32, ids []int, sel func(*shardRun[S]) bitset) {
	for _, gid := range ids {
		s := locateOwner(bounds, int32(gid))
		sel(runs[s]).set(gid - runs[s].base)
	}
}

// scatterGhostBits sets each shard's ghost bit for every ghost whose global
// ID is in the set — used on resume to restore remote sender knowledge.
func scatterGhostBits[S any](runs []*shardRun[S], global bitset, sel func(*shardRun[S]) bitset) {
	for _, r := range runs {
		lay := r.lay
		for l := lay.GhostBase; l < lay.NLocal(); l++ {
			if global.get(int(lay.Global[l])) {
				sel(r).set(l)
			}
		}
	}
}
