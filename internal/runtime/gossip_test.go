package runtime

import (
	"testing"

	"structura/internal/gen"
	"structura/internal/stats"
)

// The kernel must support arbitrary state types: a gossip aggregation with
// struct states (sum + count averaging) converging to the global average.
func TestKernelGossipAveraging(t *testing.T) {
	r := stats.NewRand(1)
	g := gen.ErdosRenyi(r, 40, 0.2)
	if !g.Connected() {
		t.Skip("disconnected draw")
	}
	type state struct {
		min, max float64
	}
	values := make([]float64, 40)
	var trueMin, trueMax float64
	for i := range values {
		values[i] = r.Float64() * 100
		if i == 0 || values[i] < trueMin {
			trueMin = values[i]
		}
		if i == 0 || values[i] > trueMax {
			trueMax = values[i]
		}
	}
	states, stats2, err := Run(g,
		func(v int) state { return state{min: values[v], max: values[v]} },
		func(v int, self state, nbrs []state) (state, bool) {
			out := self
			for _, nb := range nbrs {
				if nb.min < out.min {
					out.min = nb.min
				}
				if nb.max > out.max {
					out.max = nb.max
				}
			}
			return out, out != self
		}, WithMaxRounds(200))
	if err != nil {
		t.Fatal(err)
	}
	if !stats2.Stable {
		t.Fatal("gossip must stabilize")
	}
	for v, s := range states {
		if s.min != trueMin || s.max != trueMax {
			t.Fatalf("node %d converged to (%v,%v), want (%v,%v)", v, s.min, s.max, trueMin, trueMax)
		}
	}
	// Convergence takes about diameter rounds, not n.
	diam, _ := g.Diameter()
	if stats2.Rounds > diam+2 {
		t.Errorf("rounds = %d for diameter %d", stats2.Rounds, diam)
	}
}

// Pointer-free states: the kernel must not let one node's update bleed into
// another's view within the same round (snapshot semantics).
func TestKernelSnapshotSemantics(t *testing.T) {
	// Chain 0-1-2: node 0 starts with 1, others 0. With snapshot semantics
	// node 2 must see the token only after TWO rounds, not one.
	g := gen.Path(3)
	states, _, err := Run(g,
		func(v int) int {
			if v == 0 {
				return 1
			}
			return 0
		},
		func(v int, self int, nbrs []int) (int, bool) {
			for _, nb := range nbrs {
				if nb == 1 && self == 0 {
					return 1, true
				}
			}
			return self, false
		}, WithMaxRounds(1)) // ONE round only
	if err != nil {
		t.Fatal(err)
	}
	if states[1] != 1 {
		t.Error("direct neighbor must receive the token in round 1")
	}
	if states[2] != 0 {
		t.Error("two-hop node must NOT receive the token in round 1 (snapshot semantics violated)")
	}
}
