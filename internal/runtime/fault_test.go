package runtime

import (
	"strings"
	"testing"

	"structura/internal/gen"
	"structura/internal/graph"
)

// testPerturber drives the perturbed kernel path from tests without pulling
// in the sim package: a fixed perturbation for rounds <= until.
type testPerturber struct {
	until int
	per   Perturbation
}

func (p *testPerturber) BeforeRound(round int, g *graph.CSR) Perturbation {
	if round <= p.until {
		return p.per
	}
	return Perturbation{}
}

func (p *testPerturber) Active(round int) bool { return round <= p.until }

// TestStepPanicReported: a panicking step must abort the run with an error
// naming the offending node — on the sequential path, the sharded path, and
// the perturbed path — instead of deadlocking the barrier or killing the
// process from a worker goroutine.
func TestStepPanicReported(t *testing.T) {
	g := gen.Path(12)
	init := func(v int) int { return v }
	boom := func(v int, self int, nbrs []int) (int, bool) {
		if v == 7 {
			panic("kaboom")
		}
		return self, false
	}
	cases := []struct {
		name string
		opts []Option
	}{
		{"sequential", []Option{WithParallelism(1)}},
		{"sharded", []Option{WithParallelism(4)}},
		{"perturbed", []Option{WithParallelism(1), WithPerturber(&testPerturber{until: 1})}},
		{"perturbed-sharded", []Option{WithParallelism(4), WithPerturber(&testPerturber{until: 1})}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			states, _, err := Run(g, init, boom, append([]Option{WithMaxRounds(5)}, c.opts...)...)
			if err == nil {
				t.Fatal("panicking step did not surface an error")
			}
			if !strings.Contains(err.Error(), "node 7") {
				t.Fatalf("error %q does not name the panicking node", err)
			}
			if len(states) != g.N() {
				t.Fatalf("partial states have length %d, want %d", len(states), g.N())
			}
		})
	}
}

// TestStepPanicDeterministicNode: when several shards panic in the same
// round, the reported node comes from the lowest shard, so the error is
// stable across executions.
func TestStepPanicDeterministicNode(t *testing.T) {
	g := gen.Path(16)
	boom := func(v int, self int, nbrs []int) (int, bool) {
		if v == 2 || v == 13 {
			panic("both shards")
		}
		return self, false
	}
	for i := 0; i < 10; i++ {
		_, _, err := Run(g, func(v int) int { return v }, boom, WithParallelism(4), WithMaxRounds(3))
		if err == nil || !strings.Contains(err.Error(), "node 2") {
			t.Fatalf("run %d: error %v, want the lowest panicking node (2)", i, err)
		}
	}
}

// TestObserverPanicReported: a panicking observer aborts the run with a
// descriptive error; states from the completed round are preserved.
func TestObserverPanicReported(t *testing.T) {
	g := gen.Path(6)
	for _, perturbed := range []bool{false, true} {
		opts := []Option{
			WithMaxRounds(10),
			WithObserver(func(rs RoundStats) { panic("bad hook") }),
		}
		if perturbed {
			opts = append(opts, WithPerturber(&testPerturber{until: 1}))
		}
		states, stats, err := Run(g,
			func(v int) int { return v },
			func(v int, self int, nbrs []int) (int, bool) { return self, false },
			opts...)
		if err == nil {
			t.Fatal("panicking observer did not surface an error")
		}
		if !strings.Contains(err.Error(), "observer panicked at round 1") {
			t.Fatalf("error %q does not name the round", err)
		}
		if stats.Rounds != 1 {
			t.Fatalf("stats counted %d rounds, want 1", stats.Rounds)
		}
		if len(states) != g.N() {
			t.Fatalf("states have length %d, want %d", len(states), g.N())
		}
	}
}

// TestPerturberNodeCountGuard: a perturber that swaps in a topology with a
// different node count is a programming error the kernel must reject.
func TestPerturberNodeCountGuard(t *testing.T) {
	g := gen.Path(5)
	wrong := gen.Path(6).Freeze()
	p := &testPerturber{until: 3, per: Perturbation{Topology: wrong}}
	_, _, err := Run(g,
		func(v int) int { return v },
		func(v int, self int, nbrs []int) (int, bool) { return self, false },
		WithPerturber(p), WithMaxRounds(5))
	if err == nil || !strings.Contains(err.Error(), "node count") {
		t.Fatalf("node-count mismatch not rejected: %v", err)
	}
}

// TestKHopZeroEdgeCases pins the k=0 contract across degenerate graphs: the
// zero-hop horizon of every node is empty, never nil-vs-empty inconsistent
// with the graph's size.
func TestKHopZeroEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"empty", graph.New(0)},
		{"single", graph.New(1)},
		{"isolated", graph.New(4)},
		{"path", gen.Path(6)},
		{"ring", gen.Ring(5)},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			hoods, err := KHopNeighborhoods(c.g, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(hoods) != c.g.N() {
				t.Fatalf("got %d neighborhoods for %d nodes", len(hoods), c.g.N())
			}
			for v, h := range hoods {
				if len(h) != 0 {
					t.Errorf("node %d: k=0 horizon %v, want empty", v, h)
				}
			}
		})
	}
	// k beyond the diameter must equal the connected component, still
	// excluding the node itself.
	hoods, err := KHopNeighborhoods(gen.Path(4), 100)
	if err != nil {
		t.Fatal(err)
	}
	for v, h := range hoods {
		if len(h) != 3 {
			t.Errorf("node %d: k=100 horizon %v, want the other 3 nodes", v, h)
		}
	}
}
