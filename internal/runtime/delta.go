package runtime

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"time"

	"structura/internal/graph"
)

// WithDelta switches the kernel to delta-frontier ("dirty") stepping: a node
// is stepped in round r only if its inputs could have changed — it changed
// itself in round r-1, one of the neighbors it observes changed, it was
// restarted, its adjacency row was rewritten by churn, or a delivery to it is
// still pending after suppression. Because step functions are pure, skipping
// a node whose inputs are unchanged and whose last step reported no change
// cannot alter the outcome: final states, Stats.Rounds, and per-round
// Changed counts are bit-identical to the full kernel, on both the clean and
// the perturbed path, across worker counts, and through checkpoint/resume.
//
// Message accounting is where the two kernels intentionally differ: the full
// clean kernel charges one message per directed link per round, while the
// delta kernel counts messages actually sent — a node broadcasts to the
// nodes observing it only in the round after it changed (plus restart
// broadcasts and suppressed-delivery retries). In particular a round with an
// empty frontier reports 0 messages. This makes the clean and perturbed
// paths consistent with each other: under a fault-free perturber both count
// exactly the deliveries triggered by state changes.
//
// Correctness requires the step contract to be honest: step must report
// ch == true if and only if the returned state differs from self. A step
// that mutates state while reporting "unchanged" already breaks the full
// kernel's stability detection; under WithDelta it would also leave
// downstream nodes unstepped.
func WithDelta() Option {
	return func(c *config) { c.delta = true }
}

// deltaWorkerState is one worker's per-round scratch for the delta paths:
// the commit list of stepped nodes, the carry list of nodes that must stay
// in the frontier beyond the changed∪readers rule (pending retries, deferred
// inactive steps), and the reusable neighbor-gather buffer.
type deltaWorkerState[S any] struct {
	ids       []int32 // nodes stepped this round, in ascending order
	carry     []int32 // perturbed path: extra next-frontier members
	scratch   []S
	changed   int
	delivered int
	err       error
}

// deltaShards partitions [0, n) into word-aligned ranges (multiples of 64)
// so that concurrent workers write disjoint bitset words without
// synchronization. The final shard absorbs the partial word at n.
func deltaShards(n, workers int) []shard {
	if workers <= 1 || n <= 64 {
		return []shard{{0, n}}
	}
	words := (n + 63) / 64
	if workers > words {
		workers = words
	}
	out := make([]shard, 0, workers)
	for w := 0; w < workers; w++ {
		lo := (w * words / workers) * 64
		hi := ((w + 1) * words / workers) * 64
		if hi > n {
			hi = n
		}
		if lo < hi {
			out = append(out, shard{lo: lo, hi: hi})
		}
	}
	return out
}

// frontierMessages is the messages the nodes of set will send next round:
// each changed node broadcasts to the nodes that observe it, i.e. its
// in-neighbors under the "v reads Neighbors(v)" convention.
func frontierMessages(g *graph.CSR, set bitset) int {
	total := 0
	for wi, w := range set {
		base := wi << 6
		for w != 0 {
			total += g.InDegree(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return total
}

// rebuildFrontier recomputes frontier = dirty ∪ readers(dirty), choosing
// direction by cost: when the changed set's total in-degree is small the
// sweep pushes bits along reverse rows; when it is dense every node pulls
// over its forward row (parallelized across the word-aligned shards, with
// early exit on the first changed neighbor). pushCost must be
// frontierMessages(g, dirty).
func rebuildFrontier(g *graph.CSR, frontier, dirty bitset, pushCost, n int, shards []shard) {
	frontier.reset()
	if pushCost <= n/4 {
		for wi, w := range dirty {
			base := wi << 6
			for w != 0 {
				u := base + bits.TrailingZeros64(w)
				w &= w - 1
				frontier.set(u)
				for _, r := range g.InNeighbors(u) {
					frontier.set(int(r))
				}
			}
		}
		return
	}
	if len(shards) > 1 {
		var wg sync.WaitGroup
		for _, sh := range shards {
			wg.Add(1)
			go func(sh shard) {
				defer wg.Done()
				pullRange(g, frontier, dirty, sh.lo, sh.hi)
			}(sh)
		}
		wg.Wait()
		return
	}
	pullRange(g, frontier, dirty, 0, n)
}

// pullRange marks v ∈ [lo, hi) dirty if v changed or any neighbor v observes
// changed. Writes stay inside [lo, hi)'s bitset words (shards word-aligned).
func pullRange(g *graph.CSR, frontier, dirty bitset, lo, hi int) {
	for v := lo; v < hi; v++ {
		if dirty.get(v) {
			frontier.set(v)
			continue
		}
		for _, w := range g.Neighbors(v) {
			if dirty.get(int(w)) {
				frontier.set(v)
				break
			}
		}
	}
}

// checkFrontierIDs validates checkpointed node lists against the run size.
func checkFrontierIDs(ids []int, n int, field string) error {
	for _, v := range ids {
		if v < 0 || v >= n {
			return fmt.Errorf("runtime: resume checkpoint %s contains node %d (n=%d)", field, v, n)
		}
	}
	return nil
}

// runDelta is the clean-path delta kernel: bit-identical states and history
// to RunCSR's full sweep, with per-round work proportional to the frontier.
func runDelta[S any](
	g *graph.CSR,
	init func(v int) S,
	step func(v int, self S, neighbors []S) (S, bool),
	cfg config,
	workers int,
) ([]S, Stats, error) {
	n := g.N()
	sink, resume, err := checkpointPlumbing[S](&cfg)
	if err != nil {
		return nil, Stats{}, err
	}
	cur := make([]S, n)
	for v := 0; v < n; v++ {
		cur[v] = init(v)
	}
	next := make([]S, n)
	msgsPerRound := g.M()
	if !g.Directed() {
		msgsPerRound *= 2
	}

	frontier := newBitset(n)
	changed := newBitset(n)

	var st Stats
	startRound := 0
	roundMsgs := msgsPerRound // round 1: every node broadcasts its init state
	if resume != nil {
		if err := validateResume(resume, n, false, true); err != nil {
			return nil, Stats{}, err
		}
		copy(cur, resume.States)
		st = snapshotStats(resume.Stats)
		startRound = resume.Round
	}
	if resume != nil && startRound > 0 {
		if err := checkFrontierIDs(resume.Changed, n, "Changed"); err != nil {
			return nil, Stats{}, err
		}
		if err := checkFrontierIDs(resume.Frontier, n, "Frontier"); err != nil {
			return nil, Stats{}, err
		}
		roundMsgs = 0
		for _, v := range resume.Changed {
			roundMsgs += g.InDegree(v)
		}
		for _, v := range resume.Frontier {
			frontier.set(v)
		}
	} else {
		frontier.setAll(n)
	}

	shards := deltaShards(n, workers)
	states := make([]deltaWorkerState[S], len(shards))
	for i := range states {
		states[i].scratch = make([]S, 0, 16)
	}

	for r := startRound; r < cfg.maxRounds; r++ {
		if cerr := cfg.cancelled(); cerr != nil {
			return cur, st, cerr
		}
		begin := time.Now()
		if len(shards) > 1 {
			var wg sync.WaitGroup
			for i, sh := range shards {
				wg.Add(1)
				go func(i int, sh shard) {
					defer wg.Done()
					deltaStepRange(g, cur, next, step, frontier, changed, sh.lo, sh.hi, &states[i])
				}(i, sh)
			}
			wg.Wait()
		} else {
			deltaStepRange(g, cur, next, step, frontier, changed, 0, n, &states[0])
		}
		for i := range states {
			if states[i].err != nil {
				return cur, st, states[i].err
			}
		}
		// Commit after the barrier: workers own disjoint node ranges, so
		// parallel commit is race-free and order-independent.
		if len(shards) > 1 {
			var wg sync.WaitGroup
			for i := range states {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					for _, v := range states[i].ids {
						cur[v] = next[v]
					}
				}(i)
			}
			wg.Wait()
		} else {
			for _, v := range states[0].ids {
				cur[v] = next[v]
			}
		}
		changedTotal := 0
		for i := range states {
			changedTotal += states[i].changed
		}
		st.Rounds++
		st.Messages += roundMsgs
		rs := RoundStats{Round: st.Rounds, Changed: changedTotal, Messages: roundMsgs, Elapsed: time.Since(begin)}
		st.History = append(st.History, rs)

		// Next round's frontier and message bill both derive from this
		// round's changed set.
		pushCost := frontierMessages(g, changed)
		rebuildFrontier(g, frontier, changed, pushCost, n, shards)
		roundMsgs = pushCost

		if sink != nil && st.Rounds%cfg.ckptEvery == 0 {
			sink(Checkpoint[S]{
				Round:    st.Rounds,
				States:   snapshotStates(cur),
				Stats:    snapshotStats(st),
				Delta:    true,
				Changed:  changed.appendBits(nil),
				Frontier: frontier.appendBits(nil),
			})
		}
		changed.reset()
		if cfg.observer != nil {
			if oerr := observe(cfg.observer, rs); oerr != nil {
				return cur, st, oerr
			}
		}
		if changedTotal == 0 {
			st.Stable = true
			return cur, st, nil
		}
	}
	st.Stable = false
	return cur, st, nil
}

// deltaStepRange steps the frontier nodes of [lo, hi) against cur, writing
// results into next (keyed by node, committed after the barrier) and
// recording stepped nodes in the worker's commit list. Shards are
// word-aligned, so changedBits writes stay within the worker's words.
func deltaStepRange[S any](
	g *graph.CSR,
	cur, next []S,
	step func(v int, self S, neighbors []S) (S, bool),
	frontier, changedBits bitset,
	lo, hi int,
	ws *deltaWorkerState[S],
) {
	ws.ids = ws.ids[:0]
	ws.changed = 0
	ws.err = nil
	buf := ws.scratch[:0]
	v := lo
	defer func() {
		ws.scratch = buf
		if rec := recover(); rec != nil {
			ws.err = fmt.Errorf("runtime: step panicked at node %d: %v", v, rec)
		}
	}()
	if lo >= hi {
		return
	}
	for wi := lo >> 6; wi <= (hi-1)>>6; wi++ {
		word := frontier[wi]
		if word == 0 {
			continue
		}
		base := wi << 6
		for word != 0 {
			v = base + bits.TrailingZeros64(word)
			word &= word - 1
			buf = buf[:0]
			for _, w := range g.Neighbors(v) {
				buf = append(buf, cur[w])
			}
			s, ch := step(v, cur[v], buf)
			next[v] = s
			ws.ids = append(ws.ids, int32(v))
			if ch {
				changedBits.set(v)
				ws.changed++
			}
		}
	}
}

// runDeltaPerturbed is the fault-injected delta kernel. On top of the clean
// frontier rule it tracks, per directed link, whether a delivery was
// suppressed (drop, sender silence, or receiver inactivity) and must be
// retried: pending links keep their receiver in the frontier until the
// delivery lands, which is exactly when the full kernel's view buffer would
// first be refreshed — so the two kernels step every node with identical
// views, rounds and change counts.
func runDeltaPerturbed[S any](
	g *graph.CSR,
	init func(v int) S,
	step func(v int, self S, neighbors []S) (S, bool),
	cfg config,
	workers int,
) ([]S, Stats, error) {
	n := g.N()
	sink, resume, err := checkpointPlumbing[S](&cfg)
	if err != nil {
		return nil, Stats{}, err
	}
	cur := make([]S, n)
	for v := 0; v < n; v++ {
		cur[v] = init(v)
	}
	next := make([]S, n)
	frontier := newBitset(n)
	senders := newBitset(n)
	changed := newBitset(n)
	pc := make([]int32, n) // per-node count of set pending bits
	var seen [][]S
	var pending [][]bool

	var st Stats
	startRound := 0
	if resume != nil {
		if err := validateResume(resume, n, true, true); err != nil {
			return nil, Stats{}, err
		}
		// Fast-forward the perturber exactly like the full perturbed path:
		// replaying BeforeRound restores its RNG position, churned live
		// graph, and crash/skew timers.
		for r := 1; r <= resume.Round; r++ {
			p := cfg.perturber.BeforeRound(r, g)
			if p.Topology != nil {
				if p.Topology.N() != n {
					return nil, Stats{}, errors.New("runtime: perturbed topology changed the node count")
				}
				g = p.Topology
			}
		}
		copy(cur, resume.States)
		seen = snapshotSeen(resume.Seen)
		st = snapshotStats(resume.Stats)
		startRound = resume.Round
		if startRound > 0 {
			if resume.Pending == nil {
				return nil, Stats{}, errors.New("runtime: resume into a perturbed delta run needs a checkpoint with Pending link state")
			}
			if len(resume.Pending) != n {
				return nil, Stats{}, fmt.Errorf("runtime: resume checkpoint has %d pending rows for %d nodes", len(resume.Pending), n)
			}
			pending = snapshotPending(resume.Pending)
			for v := 0; v < n; v++ {
				if len(pending[v]) != len(g.Neighbors(v)) {
					return nil, Stats{}, fmt.Errorf("runtime: resume checkpoint pending row %d has %d links, topology has %d",
						v, len(pending[v]), len(g.Neighbors(v)))
				}
				cnt := int32(0)
				for _, b := range pending[v] {
					if b {
						cnt++
					}
				}
				pc[v] = cnt
			}
			if err := checkFrontierIDs(resume.Changed, n, "Changed"); err != nil {
				return nil, Stats{}, err
			}
			if err := checkFrontierIDs(resume.Frontier, n, "Frontier"); err != nil {
				return nil, Stats{}, err
			}
			for _, v := range resume.Changed {
				senders.set(v)
			}
			for _, v := range resume.Frontier {
				frontier.set(v)
			}
		}
	}
	if seen == nil {
		seen = buildSeen(g, cur)
	}
	if pending == nil {
		pending = make([][]bool, n)
		for v := 0; v < n; v++ {
			pending[v] = make([]bool, len(g.Neighbors(v)))
		}
		// Round 1: every node broadcasts its init state to every observer.
		frontier.setAll(n)
		senders.setAll(n)
	}

	shards := deltaShards(n, workers)
	states := make([]deltaWorkerState[S], len(shards))
	for i := range states {
		states[i].scratch = make([]S, 0, 16)
	}

	for r := startRound; r < cfg.maxRounds; r++ {
		if cerr := cfg.cancelled(); cerr != nil {
			return cur, st, cerr
		}
		round := r + 1
		p := cfg.perturber.BeforeRound(round, g)
		handshakes := 0
		if p.Topology != nil {
			if p.Topology.N() != n {
				return cur, st, errors.New("runtime: perturbed topology changed the node count")
			}
			seen = remapSeen(g, p.Topology, seen, cur)
			pending, handshakes = remapPending(g, p.Topology, pending, pc, frontier)
			g = p.Topology
		}
		if p.Restart != nil {
			for v, rs := range p.Restart {
				if !rs {
					continue
				}
				// The rejoining node broadcasts its reset state this round
				// and re-steps; its observers must re-step with the fresh
				// view, exactly as the full kernel delivers it.
				cur[v] = init(v)
				senders.set(v)
				frontier.set(v)
				for _, w := range g.InNeighbors(v) {
					frontier.set(int(w))
				}
			}
		}
		begin := time.Now()
		if len(shards) > 1 {
			var wg sync.WaitGroup
			for i, sh := range shards {
				wg.Add(1)
				go func(i int, sh shard) {
					defer wg.Done()
					deltaStepRangePerturbed(g, cur, next, seen, pending, pc, step, frontier, senders, changed, &p, sh.lo, sh.hi, &states[i])
				}(i, sh)
			}
			wg.Wait()
		} else {
			deltaStepRangePerturbed(g, cur, next, seen, pending, pc, step, frontier, senders, changed, &p, 0, n, &states[0])
		}
		for i := range states {
			if states[i].err != nil {
				return cur, st, states[i].err
			}
		}
		if len(shards) > 1 {
			var wg sync.WaitGroup
			for i := range states {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					for _, v := range states[i].ids {
						cur[v] = next[v]
					}
				}(i)
			}
			wg.Wait()
		} else {
			for _, v := range states[0].ids {
				cur[v] = next[v]
			}
		}
		changedTotal, delivered := 0, handshakes
		for i := range states {
			changedTotal += states[i].changed
			delivered += states[i].delivered
		}
		st.Rounds++
		st.Messages += delivered
		rs := RoundStats{Round: st.Rounds, Changed: changedTotal, Messages: delivered, Elapsed: time.Since(begin)}
		st.History = append(st.History, rs)

		// This round's changed set becomes next round's sender set; the
		// frontier is its readers plus every carried node (pending retries
		// and deferred inactive steps).
		senders, changed = changed, senders
		changed.reset()
		pushCost := frontierMessages(g, senders)
		rebuildFrontier(g, frontier, senders, pushCost, n, shards)
		for i := range states {
			for _, v := range states[i].carry {
				frontier.set(int(v))
			}
			states[i].carry = states[i].carry[:0]
		}

		if sink != nil && st.Rounds%cfg.ckptEvery == 0 {
			sink(Checkpoint[S]{
				Round:    st.Rounds,
				States:   snapshotStates(cur),
				Seen:     snapshotSeen(seen),
				Stats:    snapshotStats(st),
				Delta:    true,
				Changed:  senders.appendBits(nil),
				Frontier: frontier.appendBits(nil),
				Pending:  snapshotPending(pending),
			})
		}
		if cfg.observer != nil {
			if oerr := observe(cfg.observer, rs); oerr != nil {
				return cur, st, oerr
			}
		}
		if changedTotal == 0 && !cfg.perturber.Active(round+1) {
			st.Stable = true
			return cur, st, nil
		}
	}
	st.Stable = false
	return cur, st, nil
}

// deltaStepRangePerturbed processes the frontier nodes of [lo, hi) under the
// round's perturbation. For each frontier node it attempts delivery on every
// link that is pending or whose sender changed: successes refresh the view
// buffer and clear the pending bit, suppressions set it. An inactive node
// defers its step entirely (and absorbs attempted deliveries as pending), so
// nothing is lost while it is down. Nodes left with pending links — or
// deferred — go on the carry list, keeping them in the next frontier.
func deltaStepRangePerturbed[S any](
	g *graph.CSR,
	cur, next []S,
	seen [][]S,
	pending [][]bool,
	pc []int32,
	step func(v int, self S, neighbors []S) (S, bool),
	frontier, senders, changedBits bitset,
	p *Perturbation,
	lo, hi int,
	ws *deltaWorkerState[S],
) {
	ws.ids = ws.ids[:0]
	ws.changed = 0
	ws.delivered = 0
	ws.err = nil
	v := lo
	defer func() {
		if rec := recover(); rec != nil {
			ws.err = fmt.Errorf("runtime: step panicked at node %d: %v", v, rec)
		}
	}()
	if lo >= hi {
		return
	}
	for wi := lo >> 6; wi <= (hi-1)>>6; wi++ {
		word := frontier[wi]
		if word == 0 {
			continue
		}
		base := wi << 6
		for word != 0 {
			v = base + bits.TrailingZeros64(word)
			word &= word - 1
			if p.Inactive != nil && p.Inactive[v] {
				// The node receives nothing and does not step; record the
				// attempts so they are retried, and defer the step itself.
				pv := pending[v]
				for i, w := range g.Neighbors(v) {
					if !pv[i] && senders.get(int(w)) {
						pv[i] = true
						pc[v]++
					}
				}
				ws.carry = append(ws.carry, int32(v))
				continue
			}
			sv := seen[v]
			pv := pending[v]
			for i, w := range g.Neighbors(v) {
				if !pv[i] && !senders.get(int(w)) {
					continue
				}
				if (p.Silence != nil && p.Silence[w]) || (p.Drop != nil && p.Drop(int(w), v)) {
					if !pv[i] {
						pv[i] = true
						pc[v]++
					}
					continue
				}
				sv[i] = cur[w]
				if pv[i] {
					pv[i] = false
					pc[v]--
				}
				ws.delivered++
			}
			s, ch := step(v, cur[v], sv)
			next[v] = s
			ws.ids = append(ws.ids, int32(v))
			if ch {
				changedBits.set(v)
				ws.changed++
			}
			if pc[v] > 0 {
				ws.carry = append(ws.carry, int32(v))
			}
		}
	}
}

// remapPending rebuilds the per-link pending bits after edge churn,
// mirroring remapSeen's carry rule: surviving links keep their retry state,
// new links are satisfied by the edge-creation handshake (remapSeen already
// wrote the neighbor's current state into the view), removed links drop
// their retries with the link. Any node whose observed row changed — length,
// membership, or order — is marked dirty in the current round's frontier: a
// rewritten row changes the step's input vector even if no state moved.
// Returns the new pending rows and the number of handshake deliveries.
func remapPending(old, fresh *graph.CSR, pending [][]bool, pc []int32, frontier bitset) ([][]bool, int) {
	n := fresh.N()
	out := make([][]bool, n)
	handshakes := 0
	for v := 0; v < n; v++ {
		oldRow := old.Neighbors(v)
		newRow := fresh.Neighbors(v)
		pv := make([]bool, len(newRow))
		cnt := int32(0)
		for i, w := range newRow {
			carried := false
			for j, ow := range oldRow {
				if ow == w {
					pv[i] = pending[v][j]
					if pv[i] {
						cnt++
					}
					carried = true
					break
				}
			}
			if !carried {
				handshakes++
			}
		}
		rowChanged := len(oldRow) != len(newRow)
		if !rowChanged {
			for i := range newRow {
				if newRow[i] != oldRow[i] {
					rowChanged = true
					break
				}
			}
		}
		if rowChanged {
			frontier.set(v)
		}
		out[v] = pv
		pc[v] = cnt
	}
	return out, handshakes
}
