package runtime

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"structura/internal/graph"
)

// Perturbation describes the faults injected into one synchronous round.
// The zero value perturbs nothing. All slices are indexed by node ID and may
// be nil (meaning "no node affected"); Drop may be nil (no message loss).
type Perturbation struct {
	// Topology, when non-nil, replaces the round's CSR snapshot before any
	// message is exchanged — edge churn applied between rounds. The node
	// count must not change.
	Topology *graph.CSR

	// Restart[v] resets v's state to init(v) before the round — a crashed
	// node rejoining with amnesia. The fresh state is visible to neighbors
	// this same round (subject to loss).
	Restart []bool

	// Inactive[v] makes v skip its step this round: its state carries over
	// unchanged and it receives no messages (its neighbor views stay
	// stale). Models both a crashed node and bounded asynchrony (a node
	// whose round is skewed behind its shard).
	Inactive []bool

	// Silence[v] drops every message v sends this round; each neighbor
	// keeps its last delivered view of v. A crashed node is typically both
	// Inactive and Silenced.
	Silence []bool

	// Drop reports whether the single message from -> to is lost this
	// round. It is called concurrently from worker goroutines and must be a
	// pure function of its arguments (derive decisions from a per-round
	// seed, not from mutable state), or the run loses determinism.
	Drop func(from, to int) bool
}

// Perturber injects faults into a run. BeforeRound is called once per round
// (1-based), from the coordinating goroutine, before the round's messages
// are exchanged; the returned Perturbation applies to that round only.
// Active(round) reports whether faults may still occur at or after the
// given round — while true, a no-change round does not end the run, so
// self-stabilization is measured against the full fault window.
type Perturber interface {
	BeforeRound(round int, g *graph.CSR) Perturbation
	Active(round int) bool
}

// WithPerturber threads a fault injector through the run. The kernel
// switches to a buffered message-delivery path: every node keeps the last
// delivered state of each neighbor, so lost or delayed messages leave stale
// views rather than zero values. Stats.Messages then counts messages
// actually delivered (not M per round), and a round with no state change
// only ends the run once the perturber reports itself inactive.
//
// Step functions must not mutate the neighbor-state slice they are handed:
// under a perturber it is the node's persistent view buffer, not a
// per-round copy.
func WithPerturber(p Perturber) Option {
	return func(c *config) { c.perturber = p }
}

// runPerturbed is the fault-injected twin of the RunCSR round loop. It
// trades the zero-allocation gather of the clean path for per-node view
// buffers (seen[v][i] = last delivered state of v's i-th neighbor), which
// is what gives message loss its "stale view" semantics.
func runPerturbed[S any](
	g *graph.CSR,
	init func(v int) S,
	step func(v int, self S, neighbors []S) (S, bool),
	cfg config,
	workers int,
) ([]S, Stats, error) {
	n := g.N()
	sink, resume, err := checkpointPlumbing[S](&cfg)
	if err != nil {
		return nil, Stats{}, err
	}
	cur := make([]S, n)
	for v := 0; v < n; v++ {
		cur[v] = init(v)
	}
	next := make([]S, n)
	var seen [][]S

	var st Stats
	startRound := 0
	if resume != nil {
		if err := validateResume(resume, n, true, false); err != nil {
			return nil, Stats{}, err
		}
		// Fast-forward the perturber through the already-executed rounds:
		// every fault decision is drawn inside BeforeRound, so replaying the
		// calls (and threading topology swaps) restores its internal state —
		// churned live graph, crash/skew timers, RNG position — exactly.
		for r := 1; r <= resume.Round; r++ {
			p := cfg.perturber.BeforeRound(r, g)
			if p.Topology != nil {
				if p.Topology.N() != n {
					return nil, Stats{}, errors.New("runtime: perturbed topology changed the node count")
				}
				g = p.Topology
			}
		}
		copy(cur, resume.States)
		seen = snapshotSeen(resume.Seen)
		st = snapshotStats(resume.Stats)
		startRound = resume.Round
	}
	if seen == nil {
		seen = buildSeen(g, cur)
	}
	var shards []shard
	if workers > 1 {
		shards = makeShards(n, workers)
	}
	for r := startRound; r < cfg.maxRounds; r++ {
		if cerr := cfg.cancelled(); cerr != nil {
			return cur, st, cerr
		}
		round := r + 1
		p := cfg.perturber.BeforeRound(round, g)
		if p.Topology != nil {
			if p.Topology.N() != n {
				return cur, st, errors.New("runtime: perturbed topology changed the node count")
			}
			seen = remapSeen(g, p.Topology, seen, cur)
			g = p.Topology
		}
		if p.Restart != nil {
			for v, rs := range p.Restart {
				if rs {
					cur[v] = init(v)
				}
			}
		}
		begin := time.Now()
		var changed, delivered int
		var err error
		if workers > 1 {
			changed, delivered, err = stepShardsPerturbed(g, cur, next, seen, step, shards, &p)
		} else {
			changed, delivered, err = stepRangePerturbed(g, cur, next, seen, step, 0, n, &p)
		}
		if err != nil {
			return cur, st, err
		}
		st.Rounds++
		st.Messages += delivered
		cur, next = next, cur
		rs := RoundStats{Round: st.Rounds, Changed: changed, Messages: delivered, Elapsed: time.Since(begin)}
		st.History = append(st.History, rs)
		if sink != nil && st.Rounds%cfg.ckptEvery == 0 {
			sink(Checkpoint[S]{
				Round:  st.Rounds,
				States: snapshotStates(cur),
				Seen:   snapshotSeen(seen),
				Stats:  snapshotStats(st),
			})
		}
		if cfg.observer != nil {
			if oerr := observe(cfg.observer, rs); oerr != nil {
				return cur, st, oerr
			}
		}
		if changed == 0 && !cfg.perturber.Active(round+1) {
			st.Stable = true
			return cur, st, nil
		}
	}
	st.Stable = false
	return cur, st, nil
}

// buildSeen initializes every node's neighbor-view buffer to the neighbors'
// init states (the round-0 knowledge the synchronous model assumes).
func buildSeen[S any](g *graph.CSR, cur []S) [][]S {
	n := g.N()
	out := make([][]S, n)
	for v := 0; v < n; v++ {
		row := g.Neighbors(v)
		sv := make([]S, len(row))
		for i, w := range row {
			sv[i] = cur[w]
		}
		out[v] = sv
	}
	return out
}

// remapSeen rebuilds the view buffers after edge churn: views across
// surviving edges are carried over (staleness preserved), views across
// new edges start from the neighbor's current state (the edge-creation
// handshake delivers it).
func remapSeen[S any](old, fresh *graph.CSR, seen [][]S, cur []S) [][]S {
	n := fresh.N()
	out := make([][]S, n)
	for v := 0; v < n; v++ {
		oldRow := old.Neighbors(v)
		newRow := fresh.Neighbors(v)
		sv := make([]S, len(newRow))
		for i, w := range newRow {
			carried := false
			for j, ow := range oldRow {
				if ow == w {
					sv[i] = seen[v][j]
					carried = true
					break
				}
			}
			if !carried {
				sv[i] = cur[w]
			}
		}
		out[v] = sv
	}
	return out
}

// stepRangePerturbed steps nodes [lo, hi) under the round's perturbation:
// deliverable messages refresh the view buffer, everything else stays
// stale, inactive nodes carry their state over. Returns the change and
// delivered-message counts; a panicking step is recovered and reported
// with the offending node.
func stepRangePerturbed[S any](
	g *graph.CSR,
	cur, next []S,
	seen [][]S,
	step func(v int, self S, neighbors []S) (S, bool),
	lo, hi int,
	p *Perturbation,
) (changed, delivered int, err error) {
	v := lo
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("runtime: step panicked at node %d: %v", v, rec)
		}
	}()
	for ; v < hi; v++ {
		if p.Inactive != nil && p.Inactive[v] {
			next[v] = cur[v]
			continue
		}
		sv := seen[v]
		for i, w := range g.Neighbors(v) {
			if p.Silence != nil && p.Silence[w] {
				continue
			}
			if p.Drop != nil && p.Drop(int(w), v) {
				continue
			}
			sv[i] = cur[w]
			delivered++
		}
		s, ch := step(v, cur[v], sv)
		next[v] = s
		if ch {
			changed++
		}
	}
	return changed, delivered, nil
}

// stepShardsPerturbed fans a perturbed round out across the shards. Workers
// write disjoint ranges of next and disjoint rows of seen, and Drop is a
// pure function, so the result is identical to the sequential schedule.
func stepShardsPerturbed[S any](
	g *graph.CSR,
	cur, next []S,
	seen [][]S,
	step func(v int, self S, neighbors []S) (S, bool),
	shards []shard,
	p *Perturbation,
) (int, int, error) {
	var wg sync.WaitGroup
	counts := make([]int, len(shards))
	delivered := make([]int, len(shards))
	errs := make([]error, len(shards))
	for w, sh := range shards {
		wg.Add(1)
		go func(w int, sh shard) {
			defer wg.Done()
			counts[w], delivered[w], errs[w] = stepRangePerturbed(g, cur, next, seen, step, sh.lo, sh.hi, p)
		}(w, sh)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return 0, 0, e
		}
	}
	totalC, totalD := 0, 0
	for i := range counts {
		totalC += counts[i]
		totalD += delivered[i]
	}
	return totalC, totalD, nil
}

// observe invokes the observer with panic recovery, so a faulty hook aborts
// the run with an error instead of crashing the process.
func observe(obs RoundObserver, rs RoundStats) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("runtime: observer panicked at round %d: %v", rs.Round, rec)
		}
	}()
	obs(rs)
	return nil
}
