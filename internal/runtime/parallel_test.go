package runtime

import (
	"testing"

	"structura/internal/gen"
	"structura/internal/graph"
	"structura/internal/stats"
)

// maxStep is the distributed-max step used across the equivalence tests.
func maxStep(v int, self int, nbrs []int) (int, bool) {
	best := self
	for _, nb := range nbrs {
		if nb > best {
			best = nb
		}
	}
	return best, best != self
}

// Property: the sharded schedule is indistinguishable from the sequential
// one — identical final states, round counts, message totals, and
// per-round changed counts — on randomized graphs, for worker counts that
// divide the node set evenly and ones that do not.
func TestParallelMatchesSequential(t *testing.T) {
	r := stats.NewRand(7)
	for trial := 0; trial < 8; trial++ {
		n := 50 + r.Intn(200)
		g := gen.ErdosRenyi(r, n, 3/float64(n))
		init := func(v int) int { return (v*2654435761 + trial) % 1000 }
		seq, seqStats, err := Run(g, init, maxStep, WithMaxRounds(4*n), WithParallelism(1))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8} {
			par, parStats, err := Run(g, init, maxStep, WithMaxRounds(4*n), WithParallelism(workers))
			if err != nil {
				t.Fatal(err)
			}
			if parStats.Rounds != seqStats.Rounds || parStats.Messages != seqStats.Messages ||
				parStats.Stable != seqStats.Stable {
				t.Fatalf("trial %d workers %d: stats %+v vs sequential %+v",
					trial, workers, parStats, seqStats)
			}
			for v := range seq {
				if par[v] != seq[v] {
					t.Fatalf("trial %d workers %d: state[%d] = %d vs sequential %d",
						trial, workers, v, par[v], seq[v])
				}
			}
			for i := range seqStats.History {
				if parStats.History[i].Changed != seqStats.History[i].Changed {
					t.Fatalf("trial %d workers %d round %d: %d changed vs sequential %d",
						trial, workers, i+1,
						parStats.History[i].Changed, seqStats.History[i].Changed)
				}
			}
		}
		// The prebuilt-CSR entry point must be the same computation: Run is
		// RunCSR over a fresh freeze, and a CSR frozen once and reused across
		// worker counts must still match.
		csr := g.Freeze()
		for _, workers := range []int{1, 3} {
			cs, csStats, err := RunCSR(csr, init, maxStep, WithMaxRounds(4*n), WithParallelism(workers))
			if err != nil {
				t.Fatal(err)
			}
			if csStats.Rounds != seqStats.Rounds || csStats.Messages != seqStats.Messages ||
				csStats.Stable != seqStats.Stable {
				t.Fatalf("trial %d RunCSR workers %d: stats %+v vs sequential %+v",
					trial, workers, csStats, seqStats)
			}
			for v := range seq {
				if cs[v] != seq[v] {
					t.Fatalf("trial %d RunCSR workers %d: state[%d] = %d vs sequential %d",
						trial, workers, v, cs[v], seq[v])
				}
			}
		}
	}
}

// Struct-valued states must survive the sharded path too (the gossip
// min/max aggregation), including on directed graphs where the message
// accounting differs.
func TestParallelStructStatesAndDirected(t *testing.T) {
	r := stats.NewRand(11)
	type state struct{ min, max float64 }
	gossip := func(v int, self state, nbrs []state) (state, bool) {
		out := self
		for _, nb := range nbrs {
			if nb.min < out.min {
				out.min = nb.min
			}
			if nb.max > out.max {
				out.max = nb.max
			}
		}
		return out, out != self
	}
	for trial := 0; trial < 4; trial++ {
		n := 60 + r.Intn(60)
		g := graph.NewDirected(n)
		for i := 0; i < 3*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				_ = g.AddEdge(u, v)
			}
		}
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.Float64()
		}
		init := func(v int) state { return state{min: vals[v], max: vals[v]} }
		seq, seqStats, err := Run(g, init, gossip, WithMaxRounds(4*n), WithParallelism(1))
		if err != nil {
			t.Fatal(err)
		}
		if seqStats.Messages != seqStats.Rounds*g.M() {
			t.Fatalf("directed run charged %d messages over %d rounds with M=%d",
				seqStats.Messages, seqStats.Rounds, g.M())
		}
		par, parStats, err := Run(g, init, gossip, WithMaxRounds(4*n), WithParallelism(5))
		if err != nil {
			t.Fatal(err)
		}
		if parStats.Rounds != seqStats.Rounds || parStats.Messages != seqStats.Messages {
			t.Fatalf("trial %d: parallel stats %+v vs %+v", trial, parStats, seqStats)
		}
		for v := range seq {
			if par[v] != seq[v] {
				t.Fatalf("trial %d: state[%d] differs", trial, v)
			}
		}
	}
}

// Forced parallelism beyond the node count must not break sharding (empty
// shards are fine), and tiny graphs must work under every worker count.
func TestParallelMoreWorkersThanNodes(t *testing.T) {
	g := gen.Path(3)
	states, st, err := Run(g,
		func(v int) int { return v },
		maxStep, WithMaxRounds(20), WithParallelism(64))
	if err != nil {
		t.Fatal(err)
	}
	if !st.Stable {
		t.Fatal("must stabilize")
	}
	for v, s := range states {
		if s != 2 {
			t.Errorf("state[%d] = %d, want 2", v, s)
		}
	}
}
