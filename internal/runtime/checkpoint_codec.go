package runtime

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
)

// On-disk checkpoint format: a fixed binary envelope around the JSON
// payload, so a supervised run can resume from disk across process
// restarts and a damaged file is detected before a single state is
// deserialized.
//
//	[4]  magic "STCK"
//	[2]  format version (little-endian)
//	[8]  payload length
//	[N]  JSON-encoded Checkpoint[S]
//	[4]  CRC32C over everything before it
const (
	ckptMagic   = "STCK"
	ckptVersion = 1
	ckptHeader  = 4 + 2 + 8
)

// Named decode failures, distinguishable with errors.Is so callers can tell
// "not a checkpoint file" from "written by a future version" from "damaged".
var (
	// ErrBadMagic: the data does not start with the checkpoint magic — it
	// is not a checkpoint file at all (or the header itself is truncated).
	ErrBadMagic = errors.New("runtime: not a checkpoint file")
	// ErrVersion: the envelope is valid but written by an unknown format
	// version; the payload is not decoded.
	ErrVersion = errors.New("runtime: unsupported checkpoint format version")
	// ErrChecksum: the envelope or payload is damaged — truncated short of
	// the declared length, or failing the CRC.
	ErrChecksum = errors.New("runtime: checkpoint checksum mismatch")
)

var ckptCRC = crc32.MakeTable(crc32.Castagnoli)

// EncodeCheckpoint serializes cp into the versioned on-disk envelope.
func EncodeCheckpoint[S any](cp Checkpoint[S]) ([]byte, error) {
	payload, err := json.Marshal(cp)
	if err != nil {
		return nil, fmt.Errorf("runtime: encode checkpoint: %w", err)
	}
	buf := make([]byte, 0, ckptHeader+len(payload)+4)
	buf = append(buf, ckptMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, ckptVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, ckptCRC)), nil
}

// DecodeCheckpoint is EncodeCheckpoint's inverse. It validates the envelope
// before touching the payload and never panics on arbitrary input; failures
// wrap ErrBadMagic, ErrVersion, or ErrChecksum.
func DecodeCheckpoint[S any](data []byte) (Checkpoint[S], error) {
	var cp Checkpoint[S]
	if len(data) < ckptHeader || string(data[:4]) != ckptMagic {
		return cp, fmt.Errorf("%w: %d byte(s)", ErrBadMagic, len(data))
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != ckptVersion {
		return cp, fmt.Errorf("%w: version %d (this build reads %d)", ErrVersion, v, ckptVersion)
	}
	n := binary.LittleEndian.Uint64(data[6:])
	if n > uint64(len(data)) || uint64(len(data)) != ckptHeader+n+4 {
		return cp, fmt.Errorf("%w: payload of %d byte(s) in a %d-byte file", ErrChecksum, n, len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, ckptCRC) != binary.LittleEndian.Uint32(tail) {
		return cp, fmt.Errorf("%w: CRC32C", ErrChecksum)
	}
	if err := json.Unmarshal(body[ckptHeader:], &cp); err != nil {
		return cp, fmt.Errorf("%w: payload: %v", ErrChecksum, err)
	}
	return cp, nil
}

// SaveCheckpoint writes cp to path atomically: a temp file is written,
// fsynced, and renamed over the target, so a crash mid-save leaves either
// the previous checkpoint or the new one, never a torn mix.
func SaveCheckpoint[S any](path string, cp Checkpoint[S]) error {
	data, err := EncodeCheckpoint(cp)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint.
func LoadCheckpoint[S any](path string) (Checkpoint[S], error) {
	data, err := os.ReadFile(path)
	if err != nil {
		var cp Checkpoint[S]
		return cp, err
	}
	return DecodeCheckpoint[S](data)
}
