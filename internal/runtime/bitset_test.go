package runtime

import (
	"testing"
)

func TestBitsetBasics(t *testing.T) {
	const n = 130 // spans three words with a partial tail
	b := newBitset(n)
	if b.any() || b.count() != 0 {
		t.Fatal("fresh bitset not empty")
	}
	for _, v := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		b.set(v)
		if !b.get(v) {
			t.Fatalf("bit %d not set", v)
		}
	}
	if got := b.count(); got != 8 {
		t.Fatalf("count = %d, want 8", got)
	}
	got := b.appendBits(nil)
	want := []int{0, 1, 63, 64, 65, 127, 128, 129}
	if len(got) != len(want) {
		t.Fatalf("appendBits = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("appendBits = %v, want %v", got, want)
		}
	}
	b.clear(64)
	if b.get(64) || b.count() != 7 {
		t.Fatal("clear(64) failed")
	}
	b.setAll(n)
	if b.count() != n {
		t.Fatalf("setAll count = %d, want %d", b.count(), n)
	}
	// The tail bits beyond n must stay clear so iteration never emits a
	// ghost node.
	b.forEachIn(0, n, func(v int) {
		if v < 0 || v >= n {
			t.Fatalf("forEachIn emitted out-of-range node %d", v)
		}
	})
	b.reset()
	if b.any() {
		t.Fatal("reset left bits set")
	}
}

func TestBitsetForEachInBoundaries(t *testing.T) {
	b := newBitset(256)
	for v := 0; v < 256; v += 3 {
		b.set(v)
	}
	for _, tc := range [][2]int{{0, 256}, {0, 0}, {5, 5}, {1, 64}, {63, 65}, {64, 128}, {100, 101}, {200, 256}, {255, 256}} {
		lo, hi := tc[0], tc[1]
		var got []int
		b.forEachIn(lo, hi, func(v int) { got = append(got, v) })
		var want []int
		for v := lo; v < hi; v++ {
			if v%3 == 0 {
				want = append(want, v)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("[%d,%d): got %v, want %v", lo, hi, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("[%d,%d): got %v, want %v", lo, hi, got, want)
			}
		}
	}
}

// FuzzBitset drives the bitset with an arbitrary op tape and cross-checks
// every observation against a map-based reference model.
func FuzzBitset(f *testing.F) {
	f.Add([]byte{0, 5, 1, 5, 0, 64, 2, 0, 3, 0})
	f.Add([]byte{0, 0, 0, 63, 0, 64, 0, 127, 1, 64, 4, 0})
	f.Fuzz(func(t *testing.T, tape []byte) {
		const n = 150
		b := newBitset(n)
		ref := make(map[int]bool)
		for i := 0; i+1 < len(tape); i += 2 {
			op, arg := tape[i]%5, int(tape[i+1])%n
			switch op {
			case 0:
				b.set(arg)
				ref[arg] = true
			case 1:
				b.clear(arg)
				delete(ref, arg)
			case 2:
				b.reset()
				ref = make(map[int]bool)
			case 3:
				b.setAll(n)
				for v := 0; v < n; v++ {
					ref[v] = true
				}
			case 4:
				if b.get(arg) != ref[arg] {
					t.Fatalf("get(%d) = %v, model %v", arg, b.get(arg), ref[arg])
				}
			}
		}
		if b.count() != len(ref) {
			t.Fatalf("count = %d, model %d", b.count(), len(ref))
		}
		seen := 0
		prev := -1
		for _, v := range b.appendBits(nil) {
			if v <= prev || v >= n {
				t.Fatalf("appendBits not ascending in range: %d after %d", v, prev)
			}
			if !ref[v] {
				t.Fatalf("appendBits emitted %d, not in model", v)
			}
			prev = v
			seen++
		}
		if seen != len(ref) {
			t.Fatalf("appendBits emitted %d bits, model %d", seen, len(ref))
		}
		lo, hi := 0, n
		if len(tape) >= 2 {
			lo = int(tape[0]) % n
			hi = lo + int(tape[1])%(n-lo+1)
		}
		var iter []int
		b.forEachIn(lo, hi, func(v int) { iter = append(iter, v) })
		var wantIter []int
		for v := lo; v < hi; v++ {
			if ref[v] {
				wantIter = append(wantIter, v)
			}
		}
		if len(iter) != len(wantIter) {
			t.Fatalf("forEachIn[%d,%d) = %v, model %v", lo, hi, iter, wantIter)
		}
		for i := range wantIter {
			if iter[i] != wantIter[i] {
				t.Fatalf("forEachIn[%d,%d) = %v, model %v", lo, hi, iter, wantIter)
			}
		}
	})
}
