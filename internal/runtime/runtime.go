// Package runtime provides the synchronous round-based execution kernel of
// §IV: nodes interact only with their restricted vicinity, exchanging state
// with neighbors once per round. Distributed labeling algorithms (MIS, CDS,
// distance-vector, safety levels) run on this kernel, and its round/message
// accounting backs the paper's complexity claims.
package runtime

import (
	"errors"

	"structura/internal/graph"
)

// Stats reports the cost of a run in the standard synchronous measures.
type Stats struct {
	Rounds   int
	Messages int // one message per directed edge per round (state exchange)
	Stable   bool
}

// Run executes a synchronous distributed algorithm: every round, each node
// observes its own state and its neighbors' states from the end of the
// previous round and produces a new state. The run stops when a round
// leaves every state unchanged, or after maxRounds.
//
// step must be a pure function of its inputs for the simulation to be
// faithful; the neighbor slice is ordered by adjacency and reused across
// calls, so implementations must not retain it.
func Run[S any](
	g *graph.Graph,
	init func(v int) S,
	step func(v int, self S, neighbors []S) (S, bool),
	maxRounds int,
) ([]S, Stats, error) {
	if init == nil || step == nil {
		return nil, Stats{}, errors.New("runtime: nil init or step")
	}
	if maxRounds < 0 {
		return nil, Stats{}, errors.New("runtime: negative maxRounds")
	}
	n := g.N()
	cur := make([]S, n)
	for v := 0; v < n; v++ {
		cur[v] = init(v)
	}
	next := make([]S, n)
	var st Stats
	scratch := make([]S, 0, 16)
	for r := 0; r < maxRounds; r++ {
		changed := false
		for v := 0; v < n; v++ {
			scratch = scratch[:0]
			g.EachNeighbor(v, func(w int, _ float64) {
				scratch = append(scratch, cur[w])
			})
			s, ch := step(v, cur[v], scratch)
			next[v] = s
			if ch {
				changed = true
			}
		}
		st.Rounds++
		st.Messages += 2 * g.M() // every node sends its state over each link
		cur, next = next, cur
		if !changed {
			st.Stable = true
			return cur, st, nil
		}
	}
	st.Stable = false
	return cur, st, nil
}

// KHopNeighborhoods returns, for each node, the sorted set of nodes within
// k hops (excluding the node itself) — the "local horizon" each node is
// assumed to know in localized solutions.
func KHopNeighborhoods(g *graph.Graph, k int) ([][]int, error) {
	if k < 0 {
		return nil, errors.New("runtime: negative k")
	}
	n := g.N()
	out := make([][]int, n)
	for v := 0; v < n; v++ {
		dist, _ := g.BFS(v)
		for u, d := range dist {
			if u != v && d >= 0 && d <= k {
				out[v] = append(out[v], u)
			}
		}
	}
	return out, nil
}
