// Package runtime provides the synchronous round-based execution kernel of
// §IV: nodes interact only with their restricted vicinity, exchanging state
// with neighbors once per round. Distributed labeling algorithms (MIS, CDS,
// distance-vector, safety levels) run on this kernel, and its round/message
// accounting backs the paper's complexity claims.
//
// Within a round every node's step is a pure function of the previous
// round's states, so the kernel is free to evaluate nodes in any order —
// including concurrently. Run shards the node set across workers when the
// graph is large enough (or when WithParallelism asks for it) and produces
// results bit-for-bit identical to the sequential schedule.
package runtime

import (
	"context"
	"errors"
	"fmt"
	stdruntime "runtime"
	"sort"
	"sync"
	"time"

	"structura/internal/graph"
)

// RoundStats describes one synchronous round, as delivered to a
// RoundObserver and recorded in Stats.History.
type RoundStats struct {
	Round    int           // 1-based round index
	Changed  int           // nodes whose step reported a state change
	Messages int           // messages exchanged this round
	Elapsed  time.Duration // wall time spent stepping the round
}

// RoundObserver receives per-round statistics as the run progresses. It is
// called from the coordinating goroutine between rounds (never
// concurrently), after the round's states are committed.
type RoundObserver func(RoundStats)

// Stats reports the cost of a run in the standard synchronous measures.
type Stats struct {
	Rounds   int
	Messages int // one message per directed edge per round (state exchange)
	Stable   bool
	History  []RoundStats // per-round trace, one entry per executed round
}

type config struct {
	maxRounds    int
	maxRoundsSet bool
	parallelism  int // 0 = auto (GOMAXPROCS, sequential below cutoff)
	observer     RoundObserver
	perturber    Perturber
	delta        bool
	partition    Partition
	ctx          context.Context
	ckptEvery    int
	ckptSink     any // func(Checkpoint[S]); asserted back in RunCSR
	resume       any // Checkpoint[S]; asserted back in RunCSR
}

// Option configures a Run.
type Option func(*config)

// WithMaxRounds bounds the run at r rounds. Zero means "execute no rounds":
// the init states are returned without a stability probe. Without this
// option the kernel defaults to 4n+8 rounds, enough for every labeling
// scheme in the repository to stabilize.
func WithMaxRounds(r int) Option {
	return func(c *config) { c.maxRounds = r; c.maxRoundsSet = true }
}

// WithParallelism fixes the number of worker goroutines stepping nodes
// within a round. p <= 0 restores the automatic choice (GOMAXPROCS, with a
// sequential fallback for small graphs); p == 1 forces the sequential
// path; p > 1 forces sharded execution even on graphs below the automatic
// cutoff, which is how tests exercise the parallel path deterministically.
func WithParallelism(p int) Option {
	return func(c *config) { c.parallelism = p }
}

// WithObserver registers a per-round statistics hook (convergence traces,
// progress reporting). The observer must not call back into the run.
func WithObserver(obs RoundObserver) Option {
	return func(c *config) { c.observer = obs }
}

// parallelCutoff is the node count below which the automatic mode stays
// sequential: under ~2k nodes a round's work is comparable to the cost of
// the fork/join barrier itself.
const parallelCutoff = 2048

// Run executes a synchronous distributed algorithm: every round, each node
// observes its own state and its neighbors' states from the end of the
// previous round and produces a new state. The run stops when a round
// leaves every state unchanged, or after the round budget (WithMaxRounds).
//
// step must be a pure function of its inputs for the simulation to be
// faithful — and, because the kernel may step nodes concurrently, it must
// not write shared state. The neighbor slice is ordered by adjacency and
// reused across calls, so implementations must not retain it.
//
// Run freezes the graph to an immutable CSR snapshot before the first
// round, so every round walks flat int32 adjacency arrays; mutating g while
// a run is in flight does not affect the run. Callers that execute many
// runs over one topology should freeze once and use RunCSR directly.
func Run[S any](
	g *graph.Graph,
	init func(v int) S,
	step func(v int, self S, neighbors []S) (S, bool),
	opts ...Option,
) ([]S, Stats, error) {
	return RunCSR(g.Freeze(), init, step, opts...)
}

// RunCSR is Run on a pre-built CSR snapshot: the steady-state round path
// with the freeze cost amortized away. Neighbor states are gathered through
// zero-copy CSR views, so a round allocates nothing beyond the one-time
// state and scratch arrays.
func RunCSR[S any](
	g *graph.CSR,
	init func(v int) S,
	step func(v int, self S, neighbors []S) (S, bool),
	opts ...Option,
) ([]S, Stats, error) {
	if init == nil || step == nil {
		return nil, Stats{}, errors.New("runtime: nil init or step")
	}
	n := g.N()
	cfg := config{maxRounds: 4*n + 8}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.maxRoundsSet && cfg.maxRounds < 0 {
		return nil, Stats{}, errors.New("runtime: negative maxRounds")
	}
	workers := cfg.parallelism
	forced := workers > 0
	if workers <= 0 {
		workers = stdruntime.GOMAXPROCS(0)
	}
	if !forced && n < parallelCutoff {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if cfg.partition != nil {
		return runSharded(g, init, step, cfg, workers)
	}
	if cfg.delta {
		if cfg.perturber != nil {
			return runDeltaPerturbed(g, init, step, cfg, workers)
		}
		return runDelta(g, init, step, cfg, workers)
	}
	if cfg.perturber != nil {
		return runPerturbed(g, init, step, cfg, workers)
	}
	sink, resume, err := checkpointPlumbing[S](&cfg)
	if err != nil {
		return nil, Stats{}, err
	}

	cur := make([]S, n)
	for v := 0; v < n; v++ {
		cur[v] = init(v)
	}
	next := make([]S, n)
	// One message per directed edge per round: a directed edge carries one
	// state transfer, an undirected edge is two directed links (one each way).
	msgsPerRound := g.M()
	if !g.Directed() {
		msgsPerRound *= 2
	}

	var st Stats
	startRound := 0
	if resume != nil {
		if err := validateResume(resume, n, false, false); err != nil {
			return nil, Stats{}, err
		}
		copy(cur, resume.States)
		st = snapshotStats(resume.Stats)
		startRound = resume.Round
	}
	var shards []shard
	var scratches [][]S
	if workers > 1 {
		shards = makeShards(n, workers)
		scratches = make([][]S, len(shards))
	}
	scratch := make([]S, 0, 16)
	for r := startRound; r < cfg.maxRounds; r++ {
		if cerr := cfg.cancelled(); cerr != nil {
			return cur, st, cerr
		}
		begin := time.Now()
		var changed int
		var err error
		if workers > 1 {
			changed, err = stepShards(g, cur, next, step, shards, scratches)
		} else {
			changed, err = stepRange(g, cur, next, step, 0, n, &scratch)
		}
		if err != nil {
			// A panicking step aborts the run cleanly: the barrier has
			// already joined every shard, and the states committed by
			// previous rounds are returned with the error.
			return cur, st, err
		}
		st.Rounds++
		st.Messages += msgsPerRound
		cur, next = next, cur
		rs := RoundStats{Round: st.Rounds, Changed: changed, Messages: msgsPerRound, Elapsed: time.Since(begin)}
		st.History = append(st.History, rs)
		if sink != nil && st.Rounds%cfg.ckptEvery == 0 {
			sink(Checkpoint[S]{Round: st.Rounds, States: snapshotStates(cur), Stats: snapshotStats(st)})
		}
		if cfg.observer != nil {
			if oerr := observe(cfg.observer, rs); oerr != nil {
				return cur, st, oerr
			}
		}
		if changed == 0 {
			st.Stable = true
			return cur, st, nil
		}
	}
	st.Stable = false
	return cur, st, nil
}

type shard struct{ lo, hi int }

// makeShards partitions [0, n) into contiguous, near-equal ranges — one per
// worker, keeping each worker's reads of cur clustered for cache locality.
func makeShards(n, workers int) []shard {
	out := make([]shard, workers)
	for w := 0; w < workers; w++ {
		out[w] = shard{lo: w * n / workers, hi: (w + 1) * n / workers}
	}
	return out
}

// stepRange steps nodes [lo, hi) against the cur snapshot, writing into
// next, and returns how many reported a change. scratch is the caller's
// reusable neighbor-state buffer (returned grown in place). A panicking
// step is recovered and reported as an error naming the offending node, so
// a buggy algorithm aborts the run instead of killing the process from a
// worker goroutine.
func stepRange[S any](
	g *graph.CSR,
	cur, next []S,
	step func(v int, self S, neighbors []S) (S, bool),
	lo, hi int,
	scratch *[]S,
) (changed int, err error) {
	buf := (*scratch)[:0]
	v := lo
	defer func() {
		*scratch = buf
		if rec := recover(); rec != nil {
			err = fmt.Errorf("runtime: step panicked at node %d: %v", v, rec)
		}
	}()
	for ; v < hi; v++ {
		buf = buf[:0]
		for _, w := range g.Neighbors(v) {
			buf = append(buf, cur[w])
		}
		s, ch := step(v, cur[v], buf)
		next[v] = s
		if ch {
			changed++
		}
	}
	return changed, nil
}

// stepShards fans one round out across the shards and merges the per-worker
// changed counts. Workers only read cur and write disjoint ranges of next,
// so the result is identical to the sequential schedule; the WaitGroup
// barrier publishes every write before the coordinator resumes.
func stepShards[S any](
	g *graph.CSR,
	cur, next []S,
	step func(v int, self S, neighbors []S) (S, bool),
	shards []shard,
	scratches [][]S,
) (int, error) {
	var wg sync.WaitGroup
	counts := make([]int, len(shards))
	errs := make([]error, len(shards))
	for w, sh := range shards {
		wg.Add(1)
		go func(w int, sh shard) {
			defer wg.Done()
			counts[w], errs[w] = stepRange(g, cur, next, step, sh.lo, sh.hi, &scratches[w])
		}(w, sh)
	}
	wg.Wait()
	// Lowest shard's error wins so the reported node is deterministic.
	for _, e := range errs {
		if e != nil {
			return 0, e
		}
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	return total, nil
}

// KHopNeighborhoods returns, for each node, the sorted set of nodes within
// k hops (excluding the node itself) — the "local horizon" each node is
// assumed to know in localized solutions. The all-sources sweep runs
// depth-bounded BFS on a CSR snapshot with one shared scratch queue and
// distance array, resetting only the entries each source touched.
func KHopNeighborhoods(g *graph.Graph, k int) ([][]int, error) {
	if k < 0 {
		return nil, errors.New("runtime: negative k")
	}
	n := g.N()
	c := g.Freeze()
	out := make([][]int, n)
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int32, 0, n)
	for v := 0; v < n; v++ {
		queue = append(queue[:0], int32(v))
		dist[v] = 0
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			du := dist[u]
			if int(du) == k {
				continue // horizon reached; do not expand further
			}
			for _, w := range c.Neighbors(int(u)) {
				if dist[w] == -1 {
					dist[w] = du + 1
					queue = append(queue, w)
				}
			}
		}
		if len(queue) > 1 {
			hood := make([]int, len(queue)-1)
			for i, u := range queue[1:] {
				hood[i] = int(u)
			}
			sort.Ints(hood)
			out[v] = hood
		}
		for _, u := range queue {
			dist[u] = -1
		}
	}
	return out, nil
}
