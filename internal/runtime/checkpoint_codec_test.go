package runtime

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleCheckpoint() Checkpoint[int] {
	return Checkpoint[int]{
		Round:  4,
		States: []int{0, 3, 1 << 20, 2},
		Stats: Stats{Rounds: 4, Messages: 17, History: []RoundStats{
			{Round: 1, Messages: 5}, {Round: 2, Messages: 12},
		}},
		Delta:    true,
		Changed:  []int{1, 3},
		Frontier: []int{0, 2},
	}
}

func TestCheckpointCodecRoundTrip(t *testing.T) {
	cp := sampleCheckpoint()
	data, err := EncodeCheckpoint(cp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCheckpoint[int](data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cp) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, cp)
	}
}

// TestCheckpointCodecErrors feeds the decoder truncated, damaged, and
// garbage input and pins the named error each yields. No input may panic.
func TestCheckpointCodecErrors(t *testing.T) {
	valid, err := EncodeCheckpoint(sampleCheckpoint())
	if err != nil {
		t.Fatal(err)
	}

	wrongVer := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint16(wrongVer[4:], 2)
	// The version probe happens before the CRC, so a future-version file is
	// reported as ErrVersion even though its checksum (over the old version
	// byte) no longer matches.

	flipped := append([]byte(nil), valid...)
	flipped[ckptHeader+3] ^= 0x40 // payload bit

	lied := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(lied[6:], uint64(len(valid))) // absurd length

	badJSON, err := EncodeCheckpoint(sampleCheckpoint())
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the payload but fix up the CRC: only the JSON decode catches it.
	badJSON[ckptHeader] = '!'
	body := badJSON[:len(badJSON)-4]
	binary.LittleEndian.PutUint32(badJSON[len(badJSON)-4:], crc32.Checksum(body, ckptCRC))

	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, ErrBadMagic},
		{"short header", valid[:5], ErrBadMagic},
		{"wrong magic", bytes.Replace(valid, []byte("STCK"), []byte("NOPE"), 1), ErrBadMagic},
		{"future version", wrongVer, ErrVersion},
		{"truncated payload", valid[:len(valid)-9], ErrChecksum},
		{"truncated crc", valid[:len(valid)-2], ErrChecksum},
		{"payload bit flip", flipped, ErrChecksum},
		{"lying length", lied, ErrChecksum},
		{"garbage json behind valid crc", badJSON, ErrChecksum},
		{"pure garbage", []byte("definitely not a checkpoint"), ErrBadMagic},
	}
	for _, tc := range cases {
		if _, err := DecodeCheckpoint[int](tc.in); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}

	// Every prefix of a valid file decodes to a named error, never a panic.
	for cut := 0; cut < len(valid); cut++ {
		if _, err := DecodeCheckpoint[int](valid[:cut]); err == nil {
			t.Fatalf("prefix of %d byte(s) decoded successfully", cut)
		} else if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) && !errors.Is(err, ErrChecksum) {
			t.Fatalf("prefix of %d byte(s): unnamed error %v", cut, err)
		}
	}
}

// TestCheckpointResumeFromDisk is the cross-process resume claim: cancel a
// run mid-flight, persist its last checkpoint through the on-disk codec,
// load it back (as a restarted process would), and require the resumed run
// to finish bit-identical to an uninterrupted one.
func TestCheckpointResumeFromDisk(t *testing.T) {
	g, alt := testGraphPair(t)
	const maxRounds = 12
	path := filepath.Join(t.TempDir(), "run.ckpt")

	opts := func() []Option {
		return []Option{
			WithMaxRounds(maxRounds), WithParallelism(2),
			WithPerturber(&churnPerturber{alt: alt}),
		}
	}
	want, wantStats, err := RunCSR(g, hopInit, hopStep, opts()...)
	if err != nil {
		t.Fatal(err)
	}

	// "First process": checkpoint to disk every 2 rounds, die after round 5.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runOpts := append(opts(),
		WithContext(ctx),
		WithCheckpoints(2, func(cp Checkpoint[int]) {
			if err := SaveCheckpoint(path, cp); err != nil {
				t.Errorf("save checkpoint: %v", err)
			}
		}),
		WithObserver(func(rs RoundStats) {
			if rs.Round == 5 {
				cancel()
			}
		}),
	)
	if _, _, err := RunCSR(g, hopInit, hopStep, runOpts...); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v", err)
	}

	// "Second process": load from disk and resume.
	cp, err := LoadCheckpoint[int](path)
	if err != nil {
		t.Fatalf("load checkpoint: %v", err)
	}
	if cp.Round != 4 {
		t.Fatalf("loaded checkpoint at round %d, want 4", cp.Round)
	}
	got, gotStats, err := RunCSR(g, hopInit, hopStep, append(opts(), WithResume(cp))...)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resume-from-disk final states diverged:\n got %v\nwant %v", got, want)
	}
	if !reflect.DeepEqual(stripElapsed(gotStats.History), stripElapsed(wantStats.History)) {
		t.Fatal("resume-from-disk history diverged")
	}

	// A loaded checkpoint for the wrong state type fails by name: the JSON
	// payload refuses to decode, surfaced as a payload-layer failure.
	if _, err := LoadCheckpoint[string](path); err == nil {
		t.Fatal("loading with the wrong state type succeeded")
	} else if !errors.Is(err, ErrChecksum) {
		t.Fatalf("wrong-type load: %v, want ErrChecksum", err)
	}
}
