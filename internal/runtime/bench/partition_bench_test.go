package bench

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"structura/internal/gen"
	"structura/internal/graph"
	"structura/internal/partition"
	"structura/internal/runtime"
	"structura/internal/sim"
	"structura/internal/stats"
)

// benchPlan builds a partition or fails the benchmark.
func benchPlan(b *testing.B, c *graph.CSR, k int, opts ...partition.Option) *partition.Plan {
	b.Helper()
	plan, err := partition.New(c, k, opts...)
	if err != nil {
		b.Fatal(err)
	}
	return plan
}

// BenchmarkPartitionedCSRER100k is the sharded leg of the 100k CSR kernel
// bench: identical workload (15 rounds of distributed-max), executed over
// k edge-cut shards with changed-values-only ghost exchange. ns/round is the
// per-round cost to compare against the unsharded leg; values/round and
// bytes/round are the measured exchange traffic (the numbers that would
// cross the network on a real cluster).
func BenchmarkPartitionedCSRER100k(b *testing.B) {
	csr := erGraph().Freeze()
	init := func(v int) int { return v * 2654435761 % 1_000_003 }
	var want int
	for _, k := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			var es partition.ExchangeStats
			plan := benchPlan(b, csr, k, partition.WithExchangeStats(&es))
			st := plan.Stats()
			b.ResetTimer()
			var nsPerRound float64
			for i := 0; i < b.N; i++ {
				start := time.Now()
				states, rst, err := runtime.RunCSR(csr, init, maxStep,
					runtime.WithMaxRounds(15), runtime.WithParallelism(k),
					runtime.WithPartition(plan))
				if err != nil {
					b.Fatal(err)
				}
				if rst.Rounds == 0 {
					b.Fatal("no rounds executed")
				}
				nsPerRound = float64(time.Since(start).Nanoseconds()) / float64(rst.Rounds)
				if want == 0 {
					want = states[0]
				} else if states[0] != want {
					b.Fatalf("sharded run disagrees: state[0] = %d, want %d", states[0], want)
				}
			}
			b.ReportMetric(nsPerRound, "ns/round")
			b.ReportMetric(es.ValuesPerRound(), "values/round")
			b.ReportMetric(es.BytesPerRound(), "bytes/round")
			b.ReportMetric(st.CutFraction, "cut-frac")
			b.ReportMetric(st.GhostFraction, "ghost-frac")
		})
	}
}

// BenchmarkPartitionedDeltaSteadyER100k is the sharded leg of the delta
// steady-state bench at 1% churn: the delta frontier bounds the per-round
// work AND the per-round exchange to the dirty boundary, so bytes/round here
// is the steady-state network cost of keeping k shards coherent.
func BenchmarkPartitionedDeltaSteadyER100k(b *testing.B) {
	csr := erGraph().Freeze()
	init := func(v int) int { return v * 2654435761 % 1_000_003 }
	const rounds, warmup, crashes = 60, 15, 45 // ~1% churn, as in the unsharded leg
	events := make([]sim.Event, 0, rounds*crashes)
	for r := 1; r <= rounds; r++ {
		for i := 0; i < crashes; i++ {
			v := ((r*crashes + i) * 9973) % erNodes
			events = append(events, sim.Event{Round: r, Op: sim.OpCrash, U: v, For: 1})
		}
	}
	sch := sim.Schedule{Horizon: rounds, Events: events}
	for _, k := range []int{4, 8} {
		b.Run(fmt.Sprintf("churn=1%%/delta/shards=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			var es partition.ExchangeStats
			plan := benchPlan(b, csr, k, partition.WithExchangeStats(&es))
			b.ResetTimer()
			var steadyNs, steadyMsgs float64
			for i := 0; i < b.N; i++ {
				_, st, err := runtime.RunCSR(csr, init, maxStep,
					runtime.WithMaxRounds(rounds),
					runtime.WithPerturber(sim.NewPerturber(erGraph(), 3, sch)),
					runtime.WithDelta(),
					runtime.WithParallelism(k),
					runtime.WithPartition(plan))
				if err != nil {
					b.Fatal(err)
				}
				var sum time.Duration
				msgs, cnt := 0, 0
				for _, rs := range st.History {
					if rs.Round > warmup {
						sum += rs.Elapsed
						msgs += rs.Messages
						cnt++
					}
				}
				if cnt == 0 {
					b.Fatal("run ended before the steady-state window")
				}
				steadyNs = float64(sum.Nanoseconds()) / float64(cnt)
				steadyMsgs = float64(msgs) / float64(cnt)
			}
			b.ReportMetric(steadyNs, "steady-ns/round")
			b.ReportMetric(steadyMsgs, "steady-msgs/round")
			b.ReportMetric(es.ValuesPerRound(), "values/round")
			b.ReportMetric(es.BytesPerRound(), "bytes/round")
		})
	}
}

const (
	er10mNodes  = 10_000_000
	er10mDegree = 6
)

var (
	er10mOnce sync.Once
	er10mCSR  *graph.CSR
)

// er10m builds the 10M-node sparse ER snapshot once per process (the
// Batagelj–Brandes generator is O(n+m), so this is seconds, not hours).
func er10m() *graph.CSR {
	er10mOnce.Do(func() {
		g := gen.SparseErdosRenyi(stats.NewRand(4), er10mNodes, er10mDegree/float64(er10mNodes-1))
		er10mCSR = g.Freeze()
	})
	return er10mCSR
}

// BenchmarkPartitionedER10M is the scale target: a 10M-node / ~30M-edge
// sparse ER graph, partitioned into 8 degree-balanced shards and run to a
// 12-round distributed-max horizon in delta mode. One op is plan build plus
// the full run — the end-to-end cost of standing up and executing a sharded
// computation at the paper's "millions of nodes" regime. Run with
// -benchtime 1x; rounds/sec is the steady throughput, the cut/ghost metrics
// record the partition quality at this scale.
func BenchmarkPartitionedER10M(b *testing.B) {
	csr := er10m()
	init := func(v int) int { return v * 2654435761 % 1_000_003 }
	b.ReportAllocs()
	b.ResetTimer()
	var roundsPerSec, cutFrac, ghostFrac, bytesPerRound float64
	for i := 0; i < b.N; i++ {
		var es partition.ExchangeStats
		plan, err := partition.New(csr, 8,
			partition.WithStrategy(partition.DegreeBalanced),
			partition.WithExchangeStats(&es))
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		_, st, err := runtime.RunCSR(csr, init, maxStep,
			runtime.WithMaxRounds(12), runtime.WithDelta(),
			runtime.WithParallelism(8), runtime.WithPartition(plan))
		if err != nil {
			b.Fatal(err)
		}
		if st.Rounds == 0 {
			b.Fatal("no rounds executed")
		}
		roundsPerSec = float64(st.Rounds) / time.Since(start).Seconds()
		ps := plan.Stats()
		cutFrac, ghostFrac = ps.CutFraction, ps.GhostFraction
		bytesPerRound = es.BytesPerRound()
	}
	b.ReportMetric(roundsPerSec, "rounds/sec")
	b.ReportMetric(cutFrac, "cut-frac")
	b.ReportMetric(ghostFrac, "ghost-frac")
	b.ReportMetric(bytesPerRound, "bytes/round")
}
