// Package bench benchmarks the synchronous round kernel, comparing the
// sequential schedule against the sharded parallel one on the two graph
// families the paper's experiments lean on: sparse Erdős–Rényi and unit
// disk graphs. Run with:
//
//	go test -bench . -benchtime 3x ./internal/runtime/bench
package bench

import (
	"fmt"
	stdruntime "runtime"
	"sync"
	"testing"
	"time"

	"structura/internal/async"
	"structura/internal/gen"
	"structura/internal/geo"
	"structura/internal/graph"
	"structura/internal/runtime"
	"structura/internal/sim"
	"structura/internal/stats"
)

const (
	erNodes  = 100_000
	erDegree = 10
	udgNodes = 20_000
	udgDeg   = 10
)

var (
	erOnce, udgOnce sync.Once
	erG, udgG       *graph.Graph
)

func erGraph() *graph.Graph {
	erOnce.Do(func() {
		erG = gen.SparseErdosRenyi(stats.NewRand(1), erNodes, erDegree/float64(erNodes-1))
	})
	return erG
}

func udgGraph() *graph.Graph {
	udgOnce.Do(func() {
		// Radius for an expected degree of ~udgDeg in the unit square:
		// n * pi * r^2 = udgDeg.
		pts := geo.RandomPoints(stats.NewRand(2), udgNodes, 1, 1)
		udgG = geo.UnitDiskGraph(pts, 0.0126)
	})
	return udgG
}

// maxStep is the distributed-max labeling: one comparison per neighbor per
// round, the lightest realistic per-node work, which makes the benchmark a
// worst case for parallel overhead.
func maxStep(v int, self int, nbrs []int) (int, bool) {
	best := self
	for _, nb := range nbrs {
		if nb > best {
			best = nb
		}
	}
	return best, best != self
}

func benchKernel(b *testing.B, g *graph.Graph) {
	init := func(v int) int { return v * 2654435761 % 1_000_003 }
	workerCounts := []int{1, stdruntime.GOMAXPROCS(0)}
	if workerCounts[1] == 1 {
		workerCounts[1] = 4 // still exercise the sharded path on 1-core hosts
	}
	var want int
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				states, st, err := runtime.Run(g, init, maxStep,
					runtime.WithMaxRounds(15), runtime.WithParallelism(workers))
				if err != nil {
					b.Fatal(err)
				}
				if st.Rounds == 0 {
					b.Fatal("no rounds executed")
				}
				if want == 0 {
					want = states[0]
				} else if states[0] != want {
					b.Fatalf("schedules disagree: state[0] = %d, want %d", states[0], want)
				}
			}
		})
	}
}

// benchKernelCSR measures the steady-state round path: the graph is frozen
// to CSR once outside the timed loop, so the numbers isolate what repeated
// rounds cost once the snapshot exists (the regime of every iterative
// algorithm in this repo — label propagation, PageRank, Bellman-Ford).
func benchKernelCSR(b *testing.B, g *graph.Graph) {
	csr := g.Freeze()
	init := func(v int) int { return v * 2654435761 % 1_000_003 }
	workerCounts := []int{1, stdruntime.GOMAXPROCS(0)}
	if workerCounts[1] == 1 {
		workerCounts[1] = 4
	}
	var want int
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				states, st, err := runtime.RunCSR(csr, init, maxStep,
					runtime.WithMaxRounds(15), runtime.WithParallelism(workers))
				if err != nil {
					b.Fatal(err)
				}
				if st.Rounds == 0 {
					b.Fatal("no rounds executed")
				}
				if want == 0 {
					want = states[0]
				} else if states[0] != want {
					b.Fatalf("schedules disagree: state[0] = %d, want %d", states[0], want)
				}
			}
		})
	}
}

func BenchmarkKernelER100k(b *testing.B) { benchKernel(b, erGraph()) }

func BenchmarkKernelUDG20k(b *testing.B) { benchKernel(b, udgGraph()) }

func BenchmarkKernelCSRER100k(b *testing.B) { benchKernelCSR(b, erGraph()) }

func BenchmarkKernelCSRUDG20k(b *testing.B) { benchKernelCSR(b, udgGraph()) }

// BenchmarkAsyncER100k prices the event-driven executor against the same
// 100k-node ER graph and labeling the kernel benchmarks use: one op is a
// full run to detector-declared quiescence under 1% message loss inside an
// 8-window fault horizon. ns/op is the quiescence wall-time; the custom
// metrics record the retry overhead (retransmissions / transmissions) and
// the virtual time at which quiescence was detected.
func BenchmarkAsyncER100k(b *testing.B) {
	g := erGraph()
	init := func(v int) int { return v * 2654435761 % 1_000_003 }
	sch := sim.Schedule{Horizon: 8, MsgLoss: 0.01}
	b.ReportAllocs()
	// The one-time ER generation (sync.Once, ~400k allocations) must not
	// be billed to the first executor run.
	b.ResetTimer()
	var retry, vticks float64
	for i := 0; i < b.N; i++ {
		x, err := async.NewExecutor(g, init, maxStep, sch, async.Config{Seed: 9})
		if err != nil {
			b.Fatal(err)
		}
		_, st, err := x.Run()
		if err != nil {
			b.Fatal(err)
		}
		if !st.Quiesced {
			b.Fatal("run did not quiesce within budget")
		}
		retry = st.RetryOverhead()
		vticks = float64(st.DetectedAt)
	}
	b.ReportMetric(retry, "retry-frac")
	b.ReportMetric(vticks, "quiesce-vticks")
}

// BenchmarkDeltaSteadyER100k prices the steady-state regime the delta
// frontier targets: the 100k-node ER graph where almost every label sits
// at its fixed point while a scripted stream of crash/restart faults keeps
// a bounded fraction of the network churning. Churn is quoted as the
// fraction of nodes disturbed per steady-state round — each restart dirties
// itself plus the neighbors that must re-observe it across two rounds, so a
// crash touches ~2(deg+1) ≈ 22 node-steps and the crashes-per-round count
// is the quoted fraction times n/22. Faults are scripted (no per-node
// probability draw) and topology is untouched, so the numbers isolate
// kernel stepping — no O(n) rng scans or refreeze/remap costs on either
// leg. One op is a 60-round perturbed run replaying the identical fault
// timeline on both legs; steady-ns/round is the mean cost of the rounds
// after the convergence window (the number the <10%-of-a-full-sweep
// acceptance bound reads at churn=1%), and steady-msgs/round the matching
// delivered-message volume.
func BenchmarkDeltaSteadyER100k(b *testing.B) {
	g := erGraph()
	init := func(v int) int { return v * 2654435761 % 1_000_003 }
	const rounds, warmup = 60, 15
	churns := []struct {
		name    string
		crashes int // per round ≈ fraction·n / 22 disturbed nodes per crash
	}{
		{"0.1%", 4},
		{"1%", 45},
		{"10%", 450},
	}
	for _, churn := range churns {
		events := make([]sim.Event, 0, rounds*churn.crashes)
		for r := 1; r <= rounds; r++ {
			for i := 0; i < churn.crashes; i++ {
				// Deterministic victim spread; the index never wraps n
				// within a run, so no victim repeats while still down.
				v := ((r*churn.crashes + i) * 9973) % erNodes
				events = append(events, sim.Event{Round: r, Op: sim.OpCrash, U: v, For: 1})
			}
		}
		sch := sim.Schedule{Horizon: rounds, Events: events}
		for _, mode := range []string{"full", "delta"} {
			b.Run(fmt.Sprintf("churn=%s/%s", churn.name, mode), func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				var steadyNs, steadyMsgs float64
				for i := 0; i < b.N; i++ {
					opts := []runtime.Option{
						runtime.WithMaxRounds(rounds),
						runtime.WithPerturber(sim.NewPerturber(g, 3, sch)),
					}
					if mode == "delta" {
						opts = append(opts, runtime.WithDelta())
					}
					_, st, err := runtime.Run(g, init, maxStep, opts...)
					if err != nil {
						b.Fatal(err)
					}
					var sum time.Duration
					msgs, cnt := 0, 0
					for _, rs := range st.History {
						if rs.Round > warmup {
							sum += rs.Elapsed
							msgs += rs.Messages
							cnt++
						}
					}
					if cnt == 0 {
						b.Fatal("run ended before the steady-state window")
					}
					steadyNs = float64(sum.Nanoseconds()) / float64(cnt)
					steadyMsgs = float64(msgs) / float64(cnt)
				}
				b.ReportMetric(steadyNs, "steady-ns/round")
				b.ReportMetric(steadyMsgs, "steady-msgs/round")
			})
		}
	}
}

// BenchmarkFreezeER100k prices the snapshot itself, so the amortization
// argument (freeze once, run many rounds) can be checked against numbers.
func BenchmarkFreezeER100k(b *testing.B) {
	g := erGraph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if c := g.Freeze(); c.N() != erNodes {
			b.Fatal("bad freeze")
		}
	}
}
