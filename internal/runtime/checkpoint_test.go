package runtime

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"structura/internal/gen"
	"structura/internal/graph"
	"structura/internal/stats"
)

// hopInit/hopStep is a distance-vector-style process whose state depends on
// every earlier round, so any divergence between an uninterrupted run and a
// checkpoint-resumed one shows up in the final states. States are ints (with
// a large unreachable sentinel) so checkpoints survive a JSON round trip.
const hopInf = 1 << 20

func hopInit(v int) int {
	if v == 0 {
		return 0
	}
	return hopInf
}

func hopStep(v int, self int, nbrs []int) (int, bool) {
	if v == 0 {
		return 0, false
	}
	best := hopInf
	for _, d := range nbrs {
		if d+1 < best {
			best = d + 1
		}
	}
	return best, best != self
}

// stripElapsed zeroes the wall-clock field so history comparisons check only
// the deterministic parts of the trace.
func stripElapsed(h []RoundStats) []RoundStats {
	out := append([]RoundStats(nil), h...)
	for i := range out {
		out[i].Elapsed = 0
	}
	return out
}

// churnPerturber is a deterministic, replayable fault timeline for the
// perturbed path: round-keyed message drops plus a topology swap and a
// restart at fixed rounds. All state is derived from the round number, so a
// fresh instance fast-forwards identically.
type churnPerturber struct {
	alt *graph.CSR // swapped in at round 3
}

func (p *churnPerturber) BeforeRound(round int, g *graph.CSR) Perturbation {
	var per Perturbation
	if round == 3 && p.alt != nil {
		per.Topology = p.alt
	}
	if round == 4 {
		restart := make([]bool, g.N())
		restart[2] = true
		per.Restart = restart
	}
	if round <= 6 {
		per.Drop = func(from, to int) bool { return (from*31+to*17+round)%5 == 0 }
	}
	return per
}

func (p *churnPerturber) Active(round int) bool { return round <= 6 }

func testGraphPair(t *testing.T) (*graph.CSR, *graph.CSR) {
	t.Helper()
	g := gen.SparseErdosRenyi(stats.NewRand(7), 48, 0.1)
	alt := g.Clone()
	alt.RemoveEdge(0, alt.Neighbors(0)[0])
	if err := alt.AddEdge(5, 40); err != nil && !alt.HasEdge(5, 40) {
		t.Fatal(err)
	}
	return g.Freeze(), alt.Freeze()
}

// TestCheckpointResumeEquivalence: cancel a run mid-flight via context,
// resume from the last checkpoint, and require the resumed run to be
// bit-identical to the uninterrupted one — per-round history and final
// states — on the clean and perturbed paths, across worker counts, and with
// resume worker counts different from the checkpointing run's.
func TestCheckpointResumeEquivalence(t *testing.T) {
	g, alt := testGraphPair(t)
	const maxRounds = 12
	for _, perturbed := range []bool{false, true} {
		for _, w := range []int{1, 2, 4} {
			name := map[bool]string{false: "clean", true: "perturbed"}[perturbed]
			baseOpts := func(workers int) []Option {
				opts := []Option{WithMaxRounds(maxRounds), WithParallelism(workers)}
				if perturbed {
					opts = append(opts, WithPerturber(&churnPerturber{alt: alt}))
				}
				return opts
			}
			// Uninterrupted baseline.
			want, wantStats, err := RunCSR(g, hopInit, hopStep, baseOpts(w)...)
			if err != nil {
				t.Fatalf("%s/w%d baseline: %v", name, w, err)
			}

			// Interrupted run: checkpoints every 2 rounds, cancelled after
			// round 5 commits.
			var cps []Checkpoint[int]
			ctx, cancel := context.WithCancel(context.Background())
			opts := append(baseOpts(w),
				WithContext(ctx),
				WithCheckpoints(2, func(cp Checkpoint[int]) { cps = append(cps, cp) }),
				WithObserver(func(rs RoundStats) {
					if rs.Round == 5 {
						cancel()
					}
				}),
			)
			_, half, err := RunCSR(g, hopInit, hopStep, opts...)
			cancel()
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("%s/w%d cancelled run returned err=%v", name, w, err)
			}
			if half.Rounds != 5 {
				t.Fatalf("%s/w%d cancelled run executed %d rounds, want 5", name, w, half.Rounds)
			}
			if len(cps) == 0 {
				t.Fatalf("%s/w%d no checkpoints captured", name, w)
			}
			cp := cps[len(cps)-1]
			if cp.Round != 4 {
				t.Fatalf("%s/w%d last checkpoint at round %d, want 4", name, w, cp.Round)
			}
			if perturbed && cp.Seen == nil {
				t.Fatalf("%s/w%d perturbed checkpoint lacks Seen views", name, w)
			}

			// A checkpoint must survive serialization: resume from the
			// decoded copy, under a different worker count.
			raw, err := json.Marshal(cp)
			if err != nil {
				t.Fatal(err)
			}
			var back Checkpoint[int]
			if err := json.Unmarshal(raw, &back); err != nil {
				t.Fatal(err)
			}
			for _, rw := range []int{w, w%4 + 1} {
				got, gotStats, err := RunCSR(g, hopInit, hopStep,
					append(baseOpts(rw), WithResume(back))...)
				if err != nil {
					t.Fatalf("%s/w%d resume(w=%d): %v", name, w, rw, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s/w%d resume(w=%d) final states diverged:\n got %v\nwant %v",
						name, w, rw, got, want)
				}
				if !reflect.DeepEqual(stripElapsed(gotStats.History), stripElapsed(wantStats.History)) {
					t.Fatalf("%s/w%d resume(w=%d) history diverged:\n got %+v\nwant %+v",
						name, w, rw, stripElapsed(gotStats.History), stripElapsed(wantStats.History))
				}
				if gotStats.Stable != wantStats.Stable || gotStats.Messages != wantStats.Messages {
					t.Fatalf("%s/w%d resume(w=%d) stats diverged: got %+v want %+v",
						name, w, rw, gotStats, wantStats)
				}
			}
		}
	}
}

// TestCheckpointGuards pins the error paths: sink/resume state-type
// mismatches, malformed checkpoints, and resuming a perturbed run from a
// clean-path checkpoint.
func TestCheckpointGuards(t *testing.T) {
	g, alt := testGraphPair(t)
	if _, _, err := RunCSR(g, hopInit, hopStep,
		WithCheckpoints(1, func(Checkpoint[int8]) {}), WithMaxRounds(2)); err == nil {
		t.Error("mismatched sink type must fail")
	}
	if _, _, err := RunCSR(g, hopInit, hopStep,
		WithResume(Checkpoint[int8]{}), WithMaxRounds(2)); err == nil {
		t.Error("mismatched resume type must fail")
	}
	if _, _, err := RunCSR(g, hopInit, hopStep,
		WithResume(Checkpoint[int]{Round: 1, States: []int{1}, Stats: Stats{Rounds: 1}}),
		WithMaxRounds(2)); err == nil {
		t.Error("wrong state count must fail")
	}
	if _, _, err := RunCSR(g, hopInit, hopStep,
		WithResume(Checkpoint[int]{Round: 2, States: make([]int, g.N()), Stats: Stats{Rounds: 1}}),
		WithMaxRounds(4)); err == nil {
		t.Error("round/stats disagreement must fail")
	}
	cleanCP := Checkpoint[int]{Round: 2, States: make([]int, g.N()), Stats: Stats{Rounds: 2}}
	if _, _, err := RunCSR(g, hopInit, hopStep,
		WithResume(cleanCP), WithPerturber(&churnPerturber{alt: alt}), WithMaxRounds(4)); err == nil {
		t.Error("perturbed resume from a Seen-less checkpoint must fail")
	}
}

// TestContextDeadline: a deadline in the past aborts before any round runs,
// returning the init states.
func TestContextDeadline(t *testing.T) {
	g, _ := testGraphPair(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	states, st, err := RunCSR(g, hopInit, hopStep, WithContext(ctx), WithMaxRounds(8))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st.Rounds != 0 {
		t.Errorf("executed %d rounds under a dead context", st.Rounds)
	}
	if len(states) != g.N() || states[0] != 0 || states[1] != hopInf {
		t.Errorf("states are not the init states: %v", states[:2])
	}
}
