package runtime

import (
	"testing"

	"structura/internal/gen"
	"structura/internal/graph"
)

func TestRunValidation(t *testing.T) {
	g := gen.Path(3)
	if _, _, err := Run[int](g, nil, nil, WithMaxRounds(5)); err == nil {
		t.Error("nil callbacks should error")
	}
	if _, _, err := Run(g, func(int) int { return 0 },
		func(v int, s int, ns []int) (int, bool) { return s, false },
		WithMaxRounds(-1)); err == nil {
		t.Error("negative maxRounds should error")
	}
}

func TestRunStabilizes(t *testing.T) {
	// Distributed max: every node adopts the largest value it has seen;
	// stabilizes in diameter rounds.
	g := gen.Path(5)
	states, stats, err := Run(g,
		func(v int) int { return v },
		func(v int, self int, nbrs []int) (int, bool) {
			best := self
			for _, nb := range nbrs {
				if nb > best {
					best = nb
				}
			}
			return best, best != self
		}, WithMaxRounds(100))
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Stable {
		t.Fatal("must stabilize")
	}
	for v, s := range states {
		if s != 4 {
			t.Errorf("node %d converged to %d, want 4", v, s)
		}
	}
	// Path 0..4: value 4 propagates 4 hops -> 4 working rounds + 1 quiet.
	if stats.Rounds != 5 {
		t.Errorf("rounds = %d, want 5", stats.Rounds)
	}
	if stats.Messages != stats.Rounds*2*g.M() {
		t.Errorf("messages = %d, want %d", stats.Messages, stats.Rounds*2*g.M())
	}
	if len(stats.History) != stats.Rounds {
		t.Fatalf("history has %d entries, want %d", len(stats.History), stats.Rounds)
	}
	if last := stats.History[len(stats.History)-1]; last.Changed != 0 {
		t.Errorf("final quiet round recorded %d changes", last.Changed)
	}
}

func TestRunDefaultMaxRounds(t *testing.T) {
	// Without WithMaxRounds the kernel still stabilizes (default 4n+8).
	g := gen.Path(5)
	_, stats, err := Run(g,
		func(v int) int { return v },
		func(v int, self int, nbrs []int) (int, bool) {
			best := self
			for _, nb := range nbrs {
				if nb > best {
					best = nb
				}
			}
			return best, best != self
		})
	if err != nil || !stats.Stable {
		t.Fatalf("default-budget run: stats=%+v err=%v", stats, err)
	}
}

// Regression for the directed message accounting: the contract is one
// message per directed edge per round, so a directed graph must charge
// g.M() per round, not 2*g.M() (the undirected two-way exchange).
func TestRunDirectedMessageAccounting(t *testing.T) {
	g := graph.NewDirected(3) // directed triangle 0->1->2->0
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	_, stats, err := Run(g,
		func(v int) int { return v },
		func(v int, self int, nbrs []int) (int, bool) {
			best := self
			for _, nb := range nbrs {
				if nb > best {
					best = nb
				}
			}
			return best, best != self
		}, WithMaxRounds(100))
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Stable {
		t.Fatal("directed triangle must stabilize")
	}
	if want := stats.Rounds * g.M(); stats.Messages != want {
		t.Errorf("directed messages = %d, want %d (one per directed edge per round)",
			stats.Messages, want)
	}
}

func TestRunZeroMaxRounds(t *testing.T) {
	// maxRounds == 0: no rounds execute, so there is no stability probe —
	// the init states come back unchanged and Stable stays false.
	g := gen.Path(3)
	states, stats, err := Run(g,
		func(v int) int { return v * 10 },
		func(v int, s int, ns []int) (int, bool) { return s + 1, true },
		WithMaxRounds(0))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 0 || stats.Stable || stats.Messages != 0 || len(stats.History) != 0 {
		t.Errorf("zero-round stats = %+v, want empty unstable", stats)
	}
	for v, s := range states {
		if s != v*10 {
			t.Errorf("state[%d] = %d, want untouched init %d", v, s, v*10)
		}
	}
}

func TestRunHitsRoundLimit(t *testing.T) {
	// A system that never stabilizes (parity flip).
	g := gen.Ring(4)
	_, stats, err := Run(g,
		func(v int) int { return 0 },
		func(v int, self int, nbrs []int) (int, bool) { return 1 - self, true },
		WithMaxRounds(10))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Stable || stats.Rounds != 10 {
		t.Errorf("stats = %+v, want 10 unstable rounds", stats)
	}
	for _, rs := range stats.History {
		if rs.Changed != 4 {
			t.Errorf("round %d recorded %d changes, want 4", rs.Round, rs.Changed)
		}
	}
}

func TestRunSingleNode(t *testing.T) {
	g := graph.New(1)
	states, stats, err := Run(g,
		func(v int) int { return 7 },
		func(v int, self int, nbrs []int) (int, bool) {
			if len(nbrs) != 0 {
				t.Errorf("single node saw %d neighbors", len(nbrs))
			}
			return self, false
		}, WithMaxRounds(5))
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Stable || stats.Rounds != 1 || stats.Messages != 0 {
		t.Errorf("single-node stats = %+v, want stable after 1 quiet round", stats)
	}
	if states[0] != 7 {
		t.Errorf("state = %d, want 7", states[0])
	}
}

func TestRunEmptyGraph(t *testing.T) {
	states, stats, err := Run(graph.New(0),
		func(v int) int { return 0 },
		func(v int, s int, ns []int) (int, bool) { return s, false },
		WithMaxRounds(5))
	if err != nil || len(states) != 0 || !stats.Stable {
		t.Errorf("empty run = %v, %+v, %v", states, stats, err)
	}
}

func TestRunObserver(t *testing.T) {
	g := gen.Path(5)
	var seen []RoundStats
	_, stats, err := Run(g,
		func(v int) int { return v },
		func(v int, self int, nbrs []int) (int, bool) {
			best := self
			for _, nb := range nbrs {
				if nb > best {
					best = nb
				}
			}
			return best, best != self
		}, WithMaxRounds(100), WithObserver(func(rs RoundStats) { seen = append(seen, rs) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != stats.Rounds {
		t.Fatalf("observer saw %d rounds, stats counted %d", len(seen), stats.Rounds)
	}
	for i, rs := range seen {
		if rs.Round != i+1 {
			t.Errorf("observer round %d numbered %d", i, rs.Round)
		}
		if rs.Messages != 2*g.M() {
			t.Errorf("round %d charged %d messages, want %d", rs.Round, rs.Messages, 2*g.M())
		}
		if rs != stats.History[i] {
			t.Errorf("observer round %d disagrees with history: %+v vs %+v", i, rs, stats.History[i])
		}
	}
}

func TestKHopNeighborhoods(t *testing.T) {
	g := gen.Path(5)
	hoods, err := KHopNeighborhoods(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{
		{1, 2},
		{0, 2, 3},
		{0, 1, 3, 4},
		{1, 2, 4},
		{2, 3},
	}
	for v := range want {
		if len(hoods[v]) != len(want[v]) {
			t.Fatalf("hood[%d] = %v, want %v", v, hoods[v], want[v])
		}
		for i := range want[v] {
			if hoods[v][i] != want[v][i] {
				t.Fatalf("hood[%d] = %v, want %v", v, hoods[v], want[v])
			}
		}
	}
	if _, err := KHopNeighborhoods(g, -1); err == nil {
		t.Error("negative k should error")
	}
	h0, _ := KHopNeighborhoods(g, 0)
	for v := range h0 {
		if len(h0[v]) != 0 {
			t.Error("k=0 neighborhoods must be empty")
		}
	}
}
