package runtime

import (
	"testing"

	"structura/internal/gen"
	"structura/internal/graph"
)

func TestRunValidation(t *testing.T) {
	g := gen.Path(3)
	if _, _, err := Run[int](g, nil, nil, 5); err == nil {
		t.Error("nil callbacks should error")
	}
	if _, _, err := Run(g, func(int) int { return 0 },
		func(v int, s int, ns []int) (int, bool) { return s, false }, -1); err == nil {
		t.Error("negative maxRounds should error")
	}
}

func TestRunStabilizes(t *testing.T) {
	// Distributed max: every node adopts the largest value it has seen;
	// stabilizes in diameter rounds.
	g := gen.Path(5)
	states, stats, err := Run(g,
		func(v int) int { return v },
		func(v int, self int, nbrs []int) (int, bool) {
			best := self
			for _, nb := range nbrs {
				if nb > best {
					best = nb
				}
			}
			return best, best != self
		}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Stable {
		t.Fatal("must stabilize")
	}
	for v, s := range states {
		if s != 4 {
			t.Errorf("node %d converged to %d, want 4", v, s)
		}
	}
	// Path 0..4: value 4 propagates 4 hops -> 4 working rounds + 1 quiet.
	if stats.Rounds != 5 {
		t.Errorf("rounds = %d, want 5", stats.Rounds)
	}
	if stats.Messages != stats.Rounds*2*g.M() {
		t.Errorf("messages = %d, want %d", stats.Messages, stats.Rounds*2*g.M())
	}
}

func TestRunHitsRoundLimit(t *testing.T) {
	// A system that never stabilizes (parity flip).
	g := gen.Ring(4)
	_, stats, err := Run(g,
		func(v int) int { return 0 },
		func(v int, self int, nbrs []int) (int, bool) { return 1 - self, true }, 10)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Stable || stats.Rounds != 10 {
		t.Errorf("stats = %+v, want 10 unstable rounds", stats)
	}
}

func TestRunEmptyGraph(t *testing.T) {
	states, stats, err := Run(graph.New(0),
		func(v int) int { return 0 },
		func(v int, s int, ns []int) (int, bool) { return s, false }, 5)
	if err != nil || len(states) != 0 || !stats.Stable {
		t.Errorf("empty run = %v, %+v, %v", states, stats, err)
	}
}

func TestKHopNeighborhoods(t *testing.T) {
	g := gen.Path(5)
	hoods, err := KHopNeighborhoods(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{
		{1, 2},
		{0, 2, 3},
		{0, 1, 3, 4},
		{1, 2, 4},
		{2, 3},
	}
	for v := range want {
		if len(hoods[v]) != len(want[v]) {
			t.Fatalf("hood[%d] = %v, want %v", v, hoods[v], want[v])
		}
		for i := range want[v] {
			if hoods[v][i] != want[v][i] {
				t.Fatalf("hood[%d] = %v, want %v", v, hoods[v], want[v])
			}
		}
	}
	if _, err := KHopNeighborhoods(g, -1); err == nil {
		t.Error("negative k should error")
	}
	h0, _ := KHopNeighborhoods(g, 0)
	for v := range h0 {
		if len(h0[v]) != 0 {
			t.Error("k=0 neighborhoods must be empty")
		}
	}
}
