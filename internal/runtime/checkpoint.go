package runtime

import (
	"context"
	"errors"
	"fmt"
)

// Checkpoint is a serializable snapshot of a run's kernel state after a
// committed round: resuming from it continues the run exactly where it
// stopped, producing per-round history and final states bit-identical to
// an uninterrupted run (RoundStats.Elapsed, a wall-clock measure, is the
// one field equality claims must ignore).
//
// Seen carries the per-node neighbor-view buffers of the perturbed path
// (WithPerturber) and is nil for checkpoints taken on the clean path.
// Checkpoints are JSON-serializable whenever S is.
//
// Delta, Changed, Frontier and Pending carry the frontier state of runs
// under WithDelta: Changed is the checkpoint round's changed set (the next
// round's senders), Frontier the already-built next-round frontier, and
// Pending the per-link suppressed-delivery retry bits of the perturbed
// path (row-aligned to the checkpoint round's adjacency, like Seen). A
// checkpoint resumes only into a run of the same mode: the frontier state
// is meaningless to the full kernel, and a full-kernel checkpoint lacks
// the state a delta run needs.
type Checkpoint[S any] struct {
	Round    int      `json:"round"`
	States   []S      `json:"states"`
	Seen     [][]S    `json:"seen,omitempty"`
	Stats    Stats    `json:"stats"`
	Delta    bool     `json:"delta,omitempty"`
	Changed  []int    `json:"changed,omitempty"`
	Frontier []int    `json:"frontier,omitempty"`
	Pending  [][]bool `json:"pending,omitempty"`
}

// WithCheckpoints registers a checkpoint sink: after every `every`-th
// committed round (every <= 0 means every round) the kernel hands the sink
// a deep-copied Checkpoint that remains valid after the run moves on. The
// sink is called from the coordinating goroutine between rounds and must
// not call back into the run. The type parameter must match the run's
// state type or the run fails with an error.
func WithCheckpoints[S any](every int, sink func(Checkpoint[S])) Option {
	if every <= 0 {
		every = 1
	}
	return func(c *config) {
		c.ckptEvery = every
		c.ckptSink = sink
	}
}

// WithResume restarts a run from a Checkpoint instead of round zero. The
// graph, init, step, perturber, and round budget must be the ones the
// checkpointed run used: the kernel replays the perturber's fault timeline
// up to the checkpoint round (perturbers draw all randomness in BeforeRound,
// so a fresh perturber built from the same seed and schedule fast-forwards
// deterministically) and then continues stepping from the checkpointed
// states. WithMaxRounds still counts from round zero, so a resumed run
// stops at the same round the uninterrupted run would.
func WithResume[S any](cp Checkpoint[S]) Option {
	return func(c *config) { c.resume = cp }
}

// WithContext threads a cancellation context through the run: the kernel
// checks it between rounds and aborts with ctx.Err(), returning the states
// committed so far. Combine with WithCheckpoints to resume a cancelled run
// from its last consistent round instead of round zero.
func WithContext(ctx context.Context) Option {
	return func(c *config) { c.ctx = ctx }
}

// cancelled reports the context error, if the run's context is done.
func (c *config) cancelled() error {
	if c.ctx == nil {
		return nil
	}
	select {
	case <-c.ctx.Done():
		return c.ctx.Err()
	default:
		return nil
	}
}

// checkpointPlumbing type-asserts the non-generic config fields back to the
// run's state type. A mismatch (checkpointing a []float64 run with a sink
// for []int states) is a caller bug reported as an error, not a panic.
func checkpointPlumbing[S any](cfg *config) (sink func(Checkpoint[S]), resume *Checkpoint[S], err error) {
	if cfg.ckptSink != nil {
		s, ok := cfg.ckptSink.(func(Checkpoint[S]))
		if !ok {
			return nil, nil, errors.New("runtime: checkpoint sink state type does not match the run")
		}
		sink = s
	}
	if cfg.resume != nil {
		cp, ok := cfg.resume.(Checkpoint[S])
		if !ok {
			return nil, nil, errors.New("runtime: resume checkpoint state type does not match the run")
		}
		resume = &cp
	}
	return sink, resume, nil
}

// validateResume sanity-checks a checkpoint against the run it is resumed
// into. delta is whether the resuming run steps under WithDelta; a mode
// mismatch past round zero is rejected rather than silently diverging.
func validateResume[S any](cp *Checkpoint[S], n int, needSeen, delta bool) error {
	if cp.Round < 0 {
		return errors.New("runtime: resume checkpoint has a negative round")
	}
	if len(cp.States) != n {
		return fmt.Errorf("runtime: resume checkpoint has %d states for %d nodes", len(cp.States), n)
	}
	if cp.Stats.Rounds != cp.Round {
		return fmt.Errorf("runtime: resume checkpoint stats (%d rounds) disagree with its round %d",
			cp.Stats.Rounds, cp.Round)
	}
	if needSeen && cp.Seen == nil && cp.Round > 0 {
		return errors.New("runtime: resume into a perturbed run needs a checkpoint taken under the perturber (Seen views missing)")
	}
	if cp.Round > 0 && cp.Delta != delta {
		if delta {
			return errors.New("runtime: resume into a WithDelta run needs a checkpoint taken under WithDelta (frontier state missing)")
		}
		return errors.New("runtime: checkpoint taken under WithDelta cannot resume a full-kernel run")
	}
	return nil
}

// snapshotStats deep-copies Stats so a checkpoint stays immutable while the
// run keeps appending history.
func snapshotStats(st Stats) Stats {
	out := st
	out.History = append([]RoundStats(nil), st.History...)
	return out
}

// snapshotStates deep-copies the state array (element values are copied;
// states holding pointers share referents, as they do between rounds).
func snapshotStates[S any](states []S) []S {
	return append([]S(nil), states...)
}

// snapshotSeen deep-copies the perturbed path's per-node view buffers.
func snapshotSeen[S any](seen [][]S) [][]S {
	if seen == nil {
		return nil
	}
	out := make([][]S, len(seen))
	for i, row := range seen {
		out[i] = append([]S(nil), row...)
	}
	return out
}

// snapshotPending deep-copies the perturbed delta path's per-link retry bits.
func snapshotPending(pending [][]bool) [][]bool {
	if pending == nil {
		return nil
	}
	out := make([][]bool, len(pending))
	for i, row := range pending {
		out[i] = make([]bool, len(row))
		copy(out[i], row)
	}
	return out
}
