// Package embedding implements the representation remapping of §III-C:
// assigning virtual coordinates so greedy routing cannot get stuck at a
// local minimum (Fig. 5).
//
// The construction follows R. Kleinberg's INFOCOM'07 result [19], whose
// core is that any connected graph contains a spanning tree, and tree
// metrics embed isometrically in the hyperbolic plane; greedy routing on
// the tree metric is therefore loop-free and always delivers. The package
// provides (1) the exact tree-metric greedy router with a delivery
// guarantee, and (2) Poincaré-disk coordinates realizing the tree in
// hyperbolic space, with greedy routing under the hyperbolic distance.
// (The paper's alternative remapping, Ricci-flow conformal mapping [20],
// achieves the same guarantee by rounding holes into circles; see
// DESIGN.md for the substitution rationale.)
package embedding

import (
	"errors"
	"math"

	"structura/internal/geo"
	"structura/internal/graph"
)

// TreeEmbedding equips a connected graph with a BFS spanning tree rooted at
// Root; greedy routing measures progress in the tree metric but may travel
// over every graph edge (shortcuts only ever help).
type TreeEmbedding struct {
	g      *graph.Graph
	root   int
	parent []int
	depth  []int
	// Euler intervals for O(1) ancestor tests.
	tin, tout []int
}

// NewTreeEmbedding builds the embedding; the graph must be undirected and
// connected.
func NewTreeEmbedding(g *graph.Graph, root int) (*TreeEmbedding, error) {
	if g.Directed() {
		return nil, errors.New("embedding: undirected graph required")
	}
	parent, err := g.SpanningTree(root)
	if err != nil {
		return nil, err
	}
	n := g.N()
	e := &TreeEmbedding{
		g:      g,
		root:   root,
		parent: parent,
		depth:  make([]int, n),
		tin:    make([]int, n),
		tout:   make([]int, n),
	}
	children := make([][]int, n)
	for v, p := range parent {
		if p >= 0 {
			children[p] = append(children[p], v)
		}
	}
	// Iterative DFS for depth + Euler intervals.
	timer := 0
	type frame struct{ v, idx int }
	stack := []frame{{v: root}}
	e.tin[root] = timer
	timer++
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.idx < len(children[f.v]) {
			c := children[f.v][f.idx]
			f.idx++
			e.depth[c] = e.depth[f.v] + 1
			e.tin[c] = timer
			timer++
			stack = append(stack, frame{v: c})
			continue
		}
		e.tout[f.v] = timer
		timer++
		stack = stack[:len(stack)-1]
	}
	return e, nil
}

// Root returns the tree root.
func (e *TreeEmbedding) Root() int { return e.root }

// Depth returns v's tree depth.
func (e *TreeEmbedding) Depth(v int) int { return e.depth[v] }

func (e *TreeEmbedding) isAncestor(a, b int) bool {
	return e.tin[a] <= e.tin[b] && e.tout[b] <= e.tout[a]
}

// LCA returns the lowest common ancestor of u and v in the spanning tree.
func (e *TreeEmbedding) LCA(u, v int) int {
	for !e.isAncestor(u, v) {
		u = e.parent[u]
	}
	return u
}

// TreeDistance returns the hop distance between u and v in the spanning
// tree — the 0-hyperbolic metric greedy routing descends.
func (e *TreeEmbedding) TreeDistance(u, v int) int {
	l := e.LCA(u, v)
	return e.depth[u] + e.depth[v] - 2*e.depth[l]
}

// GreedyRoute routes from src to dst, at each step moving to any graph
// neighbor strictly closer to dst in the tree metric. Delivery is
// guaranteed: the tree neighbor toward dst always decreases the distance.
func (e *TreeEmbedding) GreedyRoute(src, dst int) ([]int, error) {
	n := e.g.N()
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return nil, errors.New("embedding: src/dst out of range")
	}
	path := []int{src}
	cur := src
	for cur != dst {
		best, bestD := -1, e.TreeDistance(cur, dst)
		e.g.EachNeighbor(cur, func(w int, _ float64) {
			if d := e.TreeDistance(w, dst); d < bestD {
				best, bestD = w, d
			}
		})
		if best == -1 {
			// Provably unreachable: the parent or the child toward dst is
			// always strictly closer; report as an internal invariant
			// violation rather than a routing failure.
			return path, errors.New("embedding: greedy invariant violated")
		}
		cur = best
		path = append(path, cur)
		if len(path) > n*n {
			return path, errors.New("embedding: routing loop")
		}
	}
	return path, nil
}

// PoincareCoordinates realizes the spanning tree in the Poincaré disk:
// the root sits at the origin and each child occupies a sub-sector of its
// parent's angular sector at the next hyperbolic radius shell. The scale
// parameter controls shell spacing (hyperbolic radius per depth); larger
// scales exaggerate the tree's exponential volume and make greedy routing
// under HyperbolicDist behave like the tree metric.
func (e *TreeEmbedding) PoincareCoordinates(scale float64) []geo.Point {
	if scale <= 0 {
		scale = 4
	}
	n := e.g.N()
	pts := make([]geo.Point, n)
	children := make([][]int, n)
	for v, p := range e.parent {
		if p >= 0 {
			children[p] = append(children[p], v)
		}
	}
	type sector struct {
		v      int
		lo, hi float64
	}
	stack := []sector{{v: e.root, lo: 0, hi: 2 * math.Pi}}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		theta := (s.lo + s.hi) / 2
		rH := scale * float64(e.depth[s.v]) // hyperbolic radius
		rE := math.Tanh(rH / 2)             // Euclidean radius in the disk
		pts[s.v] = geo.Point{X: rE * math.Cos(theta), Y: rE * math.Sin(theta)}
		if len(children[s.v]) == 0 {
			continue
		}
		span := (s.hi - s.lo) / float64(len(children[s.v]))
		for i, c := range children[s.v] {
			stack = append(stack, sector{
				v:  c,
				lo: s.lo + float64(i)*span,
				hi: s.lo + float64(i+1)*span,
			})
		}
	}
	return pts
}

// Polar is a point of the hyperbolic plane in native polar coordinates
// (hyperbolic radius R, angle Theta + ThetaLo). The angle is carried in
// double-double precision (ThetaLo holds the rounding error of Theta), so
// angular separations far below one float64 ulp of the absolute angle —
// routine between deep sibling cones — survive the subtraction inside
// HyperbolicDistPolar. Unlike Poincaré-disk coordinates, polar form also
// keeps the radius stable at any depth.
type Polar struct {
	R       float64
	Theta   float64
	ThetaLo float64
}

// twoSum returns hi+lo = a+b exactly (Knuth's error-free transformation).
func twoSum(a, b float64) (hi, lo float64) {
	hi = a + b
	v := hi - a
	lo = (a - (hi - v)) + (b - v)
	return hi, lo
}

// ddAdd adds a float64 to a double-double value.
func ddAdd(hi, lo, x float64) (float64, float64) {
	s, e := twoSum(hi, x)
	e += lo
	s, e = twoSum(s, e)
	return s, e
}

// PolarCoordinates realizes the spanning tree in native hyperbolic polar
// coordinates with the cone-separation discipline of greedy hyperbolic
// embeddings. Each node owns an angular cone of width W and sits at radius
// ln(2/W) (times scale), so its whole subtree stays inside its unit
// angular horizon; a node with k >= 2 children splits its cone into k
// slots and gives each child a cone of width slot/(8k), which keeps
// sibling cones separated by much more than sqrt(W_parent * W_child) — the
// exact threshold below which a sibling would look closer than the parent
// hop. An only child inherits half the parent cone, so unary chains lose
// only one bit of width per level. Sector geometry is tracked as
// (center, width) pairs; widths shrink multiplicatively and stay exact,
// but sibling angular separations below ~1e-16 radians (cones deeper than
// roughly 25 high-degree levels) fall under float64 resolution, which
// bounds the usable depth.
func (e *TreeEmbedding) PolarCoordinates(scale float64) []Polar {
	if scale <= 0 {
		scale = 1
	}
	n := e.g.N()
	pts := make([]Polar, n)
	children := make([][]int, n)
	for v, p := range e.parent {
		if p >= 0 {
			children[p] = append(children[p], v)
		}
	}
	type cone struct {
		v                  int
		centerHi, centerLo float64
		width              float64
	}
	// The root cone is clamped to width 1/2 so every descendant width W
	// stays below 2 and radii ln(2/W) stay positive.
	stack := []cone{{v: e.root, centerHi: math.Pi, width: 0.5}}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		r := 0.0
		if c.v != e.root {
			r = scale * math.Log(2/c.width)
		}
		pts[c.v] = Polar{R: r, Theta: c.centerHi, ThetaLo: c.centerLo}
		k := len(children[c.v])
		switch {
		case k == 0:
		case k == 1:
			stack = append(stack, cone{
				v: children[c.v][0], centerHi: c.centerHi, centerLo: c.centerLo,
				width: c.width / 2,
			})
		default:
			slot := c.width / float64(k)
			childWidth := slot / (8 * float64(k))
			for i, ch := range children[c.v] {
				// offset of this child's slot center from the cone center;
				// accumulate in double-double to keep deep separations.
				offset := (float64(i)+0.5)*slot - c.width/2
				hi, lo := ddAdd(c.centerHi, c.centerLo, offset)
				stack = append(stack, cone{v: ch, centerHi: hi, centerLo: lo, width: childWidth})
			}
		}
	}
	return pts
}

// HyperbolicDistPolar returns the hyperbolic distance between two points in
// native polar coordinates via the stable form of the law of cosines:
//
//	cosh d = cosh(r1-r2) + sinh(r1)*sinh(r2)*(1 - cos(dTheta))
//
// with 1-cos computed as 2*sin^2(dTheta/2), which keeps the angular term
// accurate for angle differences far below the machine epsilon of 1 —
// essential because sibling subtrees deep in the embedding are separated
// by exponentially small angles.
func HyperbolicDistPolar(a, b Polar) float64 {
	// Double-double subtraction recovers angle differences that are far
	// smaller than one ulp of the absolute angles.
	dHi, dLo := twoSum(a.Theta, -b.Theta)
	dTheta := dHi + (dLo + (a.ThetaLo - b.ThetaLo))
	s := math.Sin(dTheta / 2)
	arg := math.Cosh(a.R-b.R) + math.Sinh(a.R)*math.Sinh(b.R)*2*s*s
	if arg < 1 {
		arg = 1
	}
	return math.Acosh(arg)
}

// HyperbolicDist returns the Poincaré-disk distance between two points
// strictly inside the unit disk.
func HyperbolicDist(a, b geo.Point) float64 {
	d2 := (a.X-b.X)*(a.X-b.X) + (a.Y-b.Y)*(a.Y-b.Y)
	na := 1 - (a.X*a.X + a.Y*a.Y)
	nb := 1 - (b.X*b.X + b.Y*b.Y)
	arg := 1 + 2*d2/(na*nb)
	if arg < 1 {
		arg = 1
	}
	return math.Acosh(arg)
}

// GreedyRouteMetric routes greedily under an arbitrary distance function,
// moving to any neighbor strictly closer to dst. It reports geo.ErrStuck on
// local minima, matching geo.GreedyRoute's contract.
func GreedyRouteMetric(g *graph.Graph, dist func(u, v int) float64, src, dst int) ([]int, error) {
	n := g.N()
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return nil, errors.New("embedding: src/dst out of range")
	}
	path := []int{src}
	cur := src
	for cur != dst {
		best, bestD := -1, dist(cur, dst)
		g.EachNeighbor(cur, func(w int, _ float64) {
			if d := dist(w, dst); d < bestD {
				best, bestD = w, d
			}
		})
		if best == -1 {
			return path, geo.ErrStuck
		}
		cur = best
		path = append(path, cur)
		if len(path) > n*n {
			return path, errors.New("embedding: routing loop")
		}
	}
	return path, nil
}
