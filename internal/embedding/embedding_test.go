package embedding

import (
	"errors"
	"math"
	"testing"

	"structura/internal/gen"
	"structura/internal/geo"
	"structura/internal/graph"
	"structura/internal/stats"
)

func TestNewTreeEmbeddingValidation(t *testing.T) {
	if _, err := NewTreeEmbedding(graph.NewDirected(3), 0); err == nil {
		t.Error("directed graph should error")
	}
	if _, err := NewTreeEmbedding(graph.New(3), 0); err == nil {
		t.Error("disconnected graph should error")
	}
	if _, err := NewTreeEmbedding(gen.Path(3), 9); err == nil {
		t.Error("bad root should error")
	}
}

func TestTreeDistanceOnPath(t *testing.T) {
	e, err := NewTreeEmbedding(gen.Path(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 5; u++ {
		for v := 0; v < 5; v++ {
			want := u - v
			if want < 0 {
				want = -want
			}
			if got := e.TreeDistance(u, v); got != want {
				t.Errorf("TreeDistance(%d,%d) = %d, want %d", u, v, got, want)
			}
		}
	}
	if e.Root() != 0 || e.Depth(4) != 4 {
		t.Error("root/depth wrong")
	}
}

func TestLCA(t *testing.T) {
	// Star rooted at center: LCA of two leaves is the center.
	e, err := NewTreeEmbedding(gen.Star(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.LCA(1, 2) != 0 {
		t.Errorf("LCA(1,2) = %d, want 0", e.LCA(1, 2))
	}
	if e.LCA(1, 1) != 1 {
		t.Errorf("LCA(1,1) = %d, want 1", e.LCA(1, 1))
	}
	if e.LCA(0, 3) != 0 {
		t.Errorf("LCA(0,3) = %d, want 0", e.LCA(0, 3))
	}
}

func TestGreedyRouteGuaranteedOnHoleyGraph(t *testing.T) {
	// The Fig. 5 scenario: Euclidean greedy gets stuck at non-convex
	// holes; tree-metric greedy must deliver 100%.
	r := stats.NewRand(1)
	pts := geo.RandomPoints(r, 300, 20, 20)
	holes := []geo.Hole{
		{Center: geo.Point{X: 6, Y: 6}, Radius: 3},
		{Center: geo.Point{X: 14, Y: 12}, Radius: 3.5},
		{Center: geo.Point{X: 6, Y: 15}, Radius: 2.5},
	}
	kept, _ := geo.CarveHoles(pts, holes)
	g := geo.UnitDiskGraph(kept, 2.2)
	comps := g.Components()
	// Use the giant component.
	keep := map[int]bool{}
	for _, v := range comps[0] {
		keep[v] = true
	}
	sub, subPts0 := g.Subgraph(keep)
	subPts := make([]geo.Point, sub.N())
	for i, old := range subPts0 {
		subPts[i] = kept[old]
	}
	e, err := NewTreeEmbedding(sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	euclid := geo.Evaluate(stats.NewRand(2), sub.N(), 400, func(s, d int) ([]int, error) {
		return geo.GreedyRoute(sub, subPts, s, d)
	})
	tree := geo.Evaluate(stats.NewRand(2), sub.N(), 400, func(s, d int) ([]int, error) {
		return e.GreedyRoute(s, d)
	})
	if tree.Ratio() != 1 {
		t.Fatalf("tree-metric greedy delivery = %v, want 1.0", tree.Ratio())
	}
	if euclid.Ratio() >= 1 {
		t.Logf("note: Euclidean greedy delivered everything on this draw (ratio %v)", euclid.Ratio())
	}
	if tree.Ratio() < euclid.Ratio() {
		t.Errorf("remapped greedy (%v) must not lose to Euclidean greedy (%v)", tree.Ratio(), euclid.Ratio())
	}
}

func TestGreedyRouteUsesShortcuts(t *testing.T) {
	// Ring + BFS tree from 0: the non-tree edge can shorten routes but
	// must never break delivery.
	g := gen.Ring(8)
	e, err := NewTreeEmbedding(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < 8; src++ {
		for dst := 0; dst < 8; dst++ {
			path, err := e.GreedyRoute(src, dst)
			if err != nil {
				t.Fatalf("route %d->%d: %v", src, dst, err)
			}
			if path[len(path)-1] != dst {
				t.Fatalf("route %d->%d ends at %v", src, dst, path)
			}
		}
	}
}

func TestGreedyRouteValidation(t *testing.T) {
	e, _ := NewTreeEmbedding(gen.Path(3), 0)
	if _, err := e.GreedyRoute(-1, 2); err == nil {
		t.Error("bad src should error")
	}
	if p, err := e.GreedyRoute(1, 1); err != nil || len(p) != 1 {
		t.Error("self route should be trivial")
	}
}

func TestPoincareCoordinatesInsideDisk(t *testing.T) {
	r := stats.NewRand(3)
	g, err := gen.BarabasiAlbert(r, 200, 2)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewTreeEmbedding(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	pts := e.PoincareCoordinates(0) // default scale
	for v, p := range pts {
		if n2 := p.X*p.X + p.Y*p.Y; n2 >= 1 {
			t.Fatalf("node %d outside the unit disk: %v", v, p)
		}
	}
	// Root at origin.
	if pts[0].X != 0 || pts[0].Y != 0 {
		t.Errorf("root = %v, want origin", pts[0])
	}
}

func TestHyperbolicDist(t *testing.T) {
	o := geo.Point{}
	if d := HyperbolicDist(o, o); d != 0 {
		t.Errorf("self distance = %v", d)
	}
	a := geo.Point{X: 0.5, Y: 0}
	if d := HyperbolicDist(o, a); math.Abs(d-2*math.Atanh(0.5)) > 1e-9 {
		t.Errorf("radial distance = %v, want %v", d, 2*math.Atanh(0.5))
	}
	b := geo.Point{X: -0.5, Y: 0}
	if HyperbolicDist(a, b) <= HyperbolicDist(o, a) {
		t.Error("opposite points must be farther than radius")
	}
	// Symmetry.
	if HyperbolicDist(a, b) != HyperbolicDist(b, a) {
		t.Error("distance must be symmetric")
	}
}

func TestHyperbolicGreedyOnTrees(t *testing.T) {
	// On the spanning tree itself (no shortcuts), hyperbolic greedy over
	// native polar coordinates with a generous scale should deliver
	// everything on moderate trees.
	r := stats.NewRand(4)
	g, err := gen.BarabasiAlbert(r, 60, 1) // m=1 gives a tree
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewTreeEmbedding(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	pts := e.PolarCoordinates(1)
	dist := func(u, v int) float64 { return HyperbolicDistPolar(pts[u], pts[v]) }
	var fails int
	for trial := 0; trial < 200; trial++ {
		s, d := r.Intn(60), r.Intn(60)
		path, err := GreedyRouteMetric(g, dist, s, d)
		if err != nil || path[len(path)-1] != d {
			fails++
		}
	}
	if fails > 0 {
		t.Errorf("hyperbolic greedy failed %d/200 routes on a tree", fails)
	}
}

func TestHyperbolicDistPolar(t *testing.T) {
	o := Polar{}
	if d := HyperbolicDistPolar(o, o); d != 0 {
		t.Errorf("self distance = %v", d)
	}
	// Radial pair: distance = |r1 - r2| regardless of one angle when the
	// other point is the origin.
	a := Polar{R: 3, Theta: 1}
	if d := HyperbolicDistPolar(o, a); math.Abs(d-3) > 1e-9 {
		t.Errorf("radial distance = %v, want 3", d)
	}
	// Same radius, opposite angles: farther than 0 and symmetric.
	b := Polar{R: 3, Theta: 1 + math.Pi}
	if HyperbolicDistPolar(a, b) <= 0 {
		t.Error("distinct points must be separated")
	}
	if HyperbolicDistPolar(a, b) != HyperbolicDistPolar(b, a) {
		t.Error("distance must be symmetric")
	}
	// Consistency with the Poincaré-disk formula at small radius.
	pa := geo.Point{X: math.Tanh(1.5/2) * math.Cos(0.3), Y: math.Tanh(1.5/2) * math.Sin(0.3)}
	pb := geo.Point{X: math.Tanh(0.7/2) * math.Cos(2.1), Y: math.Tanh(0.7/2) * math.Sin(2.1)}
	da := HyperbolicDist(pa, pb)
	dp := HyperbolicDistPolar(Polar{R: 1.5, Theta: 0.3}, Polar{R: 0.7, Theta: 2.1})
	if math.Abs(da-dp) > 1e-6 {
		t.Errorf("disk %v vs polar %v", da, dp)
	}
}

func TestGreedyRouteMetricStuck(t *testing.T) {
	// Bad metric (constant): no neighbor is ever closer -> ErrStuck.
	g := gen.Path(3)
	_, err := GreedyRouteMetric(g, func(u, v int) float64 { return 1 }, 0, 2)
	if !errors.Is(err, geo.ErrStuck) {
		t.Errorf("want ErrStuck, got %v", err)
	}
	if _, err := GreedyRouteMetric(g, nil, -1, 0); err == nil {
		t.Error("bad src should error")
	}
}

func TestTreeGreedyPathLengthReasonable(t *testing.T) {
	// Greedy tree routing never exceeds the tree distance.
	r := stats.NewRand(5)
	g := gen.ErdosRenyi(r, 80, 0.08)
	comps := g.Components()
	keep := map[int]bool{}
	for _, v := range comps[0] {
		keep[v] = true
	}
	sub, _ := g.Subgraph(keep)
	e, err := NewTreeEmbedding(sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		s, d := r.Intn(sub.N()), r.Intn(sub.N())
		path, err := e.GreedyRoute(s, d)
		if err != nil {
			t.Fatal(err)
		}
		if len(path)-1 > e.TreeDistance(s, d) {
			t.Fatalf("greedy path %d hops > tree distance %d", len(path)-1, e.TreeDistance(s, d))
		}
	}
}

func TestHyperbolicGreedyManySeeds(t *testing.T) {
	// Stress the polar embedding across tree shapes: BA trees (hubs),
	// paths (deep chains), and stars (max branching).
	for seed := int64(10); seed < 20; seed++ {
		r := stats.NewRand(seed)
		n := 40 + int(seed)
		g, err := gen.BarabasiAlbert(r, n, 1)
		if err != nil {
			t.Fatal(err)
		}
		for name, tree := range map[string]*graph.Graph{
			"ba":   g,
			"path": gen.Path(n),
			"star": gen.Star(n),
		} {
			e, err := NewTreeEmbedding(tree, 0)
			if err != nil {
				t.Fatal(err)
			}
			pts := e.PolarCoordinates(1)
			dist := func(u, v int) float64 { return HyperbolicDistPolar(pts[u], pts[v]) }
			for trial := 0; trial < 60; trial++ {
				s, d := r.Intn(n), r.Intn(n)
				path, err := GreedyRouteMetric(tree, dist, s, d)
				if err != nil || path[len(path)-1] != d {
					t.Fatalf("seed %d %s: route %d->%d failed: %v (path %v)", seed, name, s, d, err, path)
				}
			}
		}
	}
}

func TestPolarGreedyInvariantExhaustive(t *testing.T) {
	// The property that makes greedy-with-shortcuts safe on any graph
	// containing the tree (R. Kleinberg's argument): for every (node,
	// destination) pair, the tree neighbor toward the destination is
	// strictly closer under the polar metric. Verified exhaustively on a
	// 300-node UDG spanning tree (depth ~16) at scale 1.
	r := stats.NewRand(42)
	pts := geo.RandomPoints(r, 400, 20, 20)
	kept, _ := geo.CarveHoles(pts, []geo.Hole{{Center: geo.Point{X: 6, Y: 6}, Radius: 3}})
	g := geo.UnitDiskGraph(kept, 2.0)
	comps := g.Components()
	keep := map[int]bool{}
	for _, v := range comps[0] {
		keep[v] = true
	}
	sub, _ := g.Subgraph(keep)
	emb, err := NewTreeEmbedding(sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	polar := emb.PolarCoordinates(1)
	n := sub.N()
	children := make([][]int, n)
	for v := 0; v < n; v++ {
		if p := emb.parent[v]; p >= 0 {
			children[p] = append(children[p], v)
		}
	}
	viol := 0
	for u := 0; u < n; u++ {
		for dst := 0; dst < n; dst++ {
			if u == dst {
				continue
			}
			next := emb.parent[u]
			if emb.isAncestor(u, dst) {
				next = -1
				for _, c := range children[u] {
					if emb.isAncestor(c, dst) {
						next = c
						break
					}
				}
			}
			if next == -1 {
				t.Fatalf("no tree step from %d toward %d", u, dst)
			}
			if HyperbolicDistPolar(polar[next], polar[dst]) >= HyperbolicDistPolar(polar[u], polar[dst]) {
				viol++
			}
		}
	}
	if viol != 0 {
		t.Errorf("greedy invariant violated for %d of %d pairs", viol, n*(n-1))
	}
}
