package hypercube_test

import (
	"fmt"

	"structura/internal/hypercube"
)

// The paper's Fig. 9 routing decision: node 1101 routes to 0001 through
// the preferred neighbor with the higher safety level.
func ExampleCube_Route() {
	cube, levels := hypercube.Fig9Cube()
	path, err := cube.Route(levels, 0b1101, 0b0001)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, v := range path {
		fmt.Printf("%04b\n", v)
	}
	// Output:
	// 1101
	// 0101
	// 0001
}

func ExampleCube_SafeBroadcast() {
	cube, _ := hypercube.New(4, nil) // fault-free 4-cube
	levels := cube.SafetyLevels()
	st, err := cube.SafeBroadcast(levels, 0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("reached %d nodes with %d messages in %d rounds\n",
		st.Reached, st.Messages, st.Rounds)
	// Output:
	// reached 16 nodes with 15 messages in 4 rounds
}
