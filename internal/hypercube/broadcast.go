package hypercube

import (
	"errors"
	"sort"
)

// BroadcastStats reports the cost of a structured broadcast.
type BroadcastStats struct {
	Reached  int // non-faulty nodes holding the message (including source)
	Messages int // point-to-point transmissions
	Rounds   int // parallel time
}

// SafeBroadcast performs the safety-level-guided fault-tolerant broadcast
// the paper cites ("the application of safety level has been used in
// optimal fault-tolerant broadcast"): the message spreads over a spanning
// tree of the non-faulty subgraph in which every node attaches to the
// highest-safety-level neighbor one hop closer to the source. Each
// non-faulty node receives the message exactly once, so the broadcast is
// message-optimal (Reached-1 transmissions); when the source is safe,
// every non-faulty node is reached and the number of rounds equals the
// largest Hamming distance actually used (at most Dim), i.e. the
// broadcast is also time-optimal.
//
// Compare with Broadcast (plain flooding), which reaches the same nodes
// using one message per link direction.
func (c *Cube) SafeBroadcast(res SafetyResult, src int) (BroadcastStats, error) {
	if src < 0 || src >= c.N() {
		return BroadcastStats{}, errors.New("hypercube: src out of range")
	}
	if c.faulty[src] {
		return BroadcastStats{}, errors.New("hypercube: faulty source")
	}
	if len(res.Levels) != c.N() {
		return BroadcastStats{}, errors.New("hypercube: safety levels size mismatch")
	}
	// BFS layers of the non-faulty subgraph; each newly discovered node
	// picks its parent as the highest-level already-covered neighbor, so
	// it is counted as exactly one transmission.
	dist := make([]int, c.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	frontier := []int{src}
	st := BroadcastStats{Reached: 1}
	for len(frontier) > 0 {
		var next []int
		for _, v := range frontier {
			for i := 0; i < c.dim; i++ {
				w := v ^ (1 << i)
				if dist[w] == -1 && !c.faulty[w] {
					dist[w] = dist[v] + 1
					next = append(next, w)
				}
			}
		}
		if len(next) == 0 {
			break
		}
		st.Rounds++
		// Each node in the layer receives exactly once, from its best
		// covered neighbor (the safety-level guidance; which parent is
		// chosen does not change the message count, only robustness).
		sort.Ints(next)
		for _, w := range next {
			best := -1
			for i := 0; i < c.dim; i++ {
				u := w ^ (1 << i)
				if dist[u] == dist[w]-1 && !c.faulty[u] {
					if best == -1 || res.Levels[u] > res.Levels[best] {
						best = u
					}
				}
			}
			if best == -1 {
				return BroadcastStats{}, errors.New("hypercube: internal: layered node without parent")
			}
			st.Messages++
			st.Reached++
		}
		frontier = next
	}
	return st, nil
}

// FloodBroadcastMessages returns the number of transmissions plain
// flooding uses to cover the same component: every covered node forwards
// once over each of its non-faulty incident links (minus the one it
// received on, except the source) — the baseline SafeBroadcast beats.
func (c *Cube) FloodBroadcastMessages(src int) (int, error) {
	if src < 0 || src >= c.N() {
		return 0, errors.New("hypercube: src out of range")
	}
	if c.faulty[src] {
		return 0, errors.New("hypercube: faulty source")
	}
	covered := make([]bool, c.N())
	covered[src] = true
	queue := []int{src}
	var order []int
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for i := 0; i < c.dim; i++ {
			w := v ^ (1 << i)
			if !covered[w] && !c.faulty[w] {
				covered[w] = true
				queue = append(queue, w)
			}
		}
	}
	msgs := 0
	for _, v := range order {
		links := 0
		for i := 0; i < c.dim; i++ {
			if !c.faulty[v^(1<<i)] {
				links++
			}
		}
		if v == src {
			msgs += links
		} else if links > 0 {
			msgs += links - 1 // forwards on all links except the receiving one
		}
	}
	return msgs, nil
}
