package hypercube

import (
	"testing"

	"structura/internal/runtime"
	"structura/internal/stats"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, nil); err == nil {
		t.Error("dim 0 should error")
	}
	if _, err := New(25, nil); err == nil {
		t.Error("dim 25 should error")
	}
	if _, err := New(3, []int{9}); err == nil {
		t.Error("fault out of range should error")
	}
	c, err := New(4, []int{1, 2})
	if err != nil || c.N() != 16 || c.Dim() != 4 || c.FaultCount() != 2 {
		t.Fatalf("cube = %+v, %v", c, err)
	}
	if !c.Faulty(1) || c.Faulty(0) || c.Faulty(-1) {
		t.Error("Faulty wrong")
	}
	if c.NonFaultyCount() != 14 {
		t.Error("NonFaultyCount wrong")
	}
}

func TestDistanceAndNeighbors(t *testing.T) {
	if Distance(0b1101, 0b0001) != 2 {
		t.Error("Distance(1101,0001) must be 2")
	}
	if Distance(5, 5) != 0 {
		t.Error("self distance 0")
	}
	c, _ := New(3, nil)
	nbrs := c.Neighbors(0b000)
	want := []int{1, 2, 4}
	for i := range want {
		if nbrs[i] != want[i] {
			t.Fatalf("Neighbors(0) = %v, want %v", nbrs, want)
		}
	}
}

func TestPreferredNeighbors(t *testing.T) {
	c, _ := New(4, nil)
	// Paper: at node 1101 routing to 0001, the preferred neighbors are
	// 1001 and 0101.
	pref := c.PreferredNeighbors(0b1101, 0b0001)
	if len(pref) != 2 {
		t.Fatalf("preferred = %b", pref)
	}
	has := map[int]bool{pref[0]: true, pref[1]: true}
	if !has[0b1001] || !has[0b0101] {
		t.Errorf("preferred = %04b, want {1001, 0101}", pref)
	}
	if len(c.PreferredNeighbors(5, 5)) != 0 {
		t.Error("no preferred neighbors at the destination")
	}
}

func TestSafetyLevelsNoFaults(t *testing.T) {
	c, _ := New(4, nil)
	res := c.SafetyLevels()
	for v, l := range res.Levels {
		if l != 4 {
			t.Fatalf("fault-free cube: level(%04b) = %d, want 4", v, l)
		}
	}
	if res.Rounds != 0 {
		t.Errorf("fault-free rounds = %d, want 0", res.Rounds)
	}
}

func TestSafetyLevelsRoundsBound(t *testing.T) {
	// "As the diameter of an n-D cube is n, at most, n-1 rounds are needed."
	r := stats.NewRand(1)
	for trial := 0; trial < 30; trial++ {
		dim := 4 + r.Intn(4)
		nFaults := 1 + r.Intn(1<<(dim-1))
		faults := map[int]bool{}
		for len(faults) < nFaults {
			faults[r.Intn(1<<dim)] = true
		}
		var fl []int
		for f := range faults {
			fl = append(fl, f)
		}
		c, err := New(dim, fl)
		if err != nil {
			t.Fatal(err)
		}
		res := c.SafetyLevels()
		if res.Rounds > dim-1 {
			t.Fatalf("dim %d: rounds = %d > n-1", dim, res.Rounds)
		}
		for v, l := range res.Levels {
			if c.Faulty(v) && l != 0 {
				t.Fatalf("faulty node level %d", l)
			}
			if !c.Faulty(v) && (l < 1 || l > dim) {
				t.Fatalf("level(%d) = %d out of range", v, l)
			}
		}
	}
}

func TestSafetyLevelGuarantee(t *testing.T) {
	// Semantic check: if l(u) >= Distance(u,d), Route finds a shortest
	// path to every non-faulty destination d.
	r := stats.NewRand(2)
	for trial := 0; trial < 20; trial++ {
		dim := 4 + r.Intn(3)
		nFaults := 1 + r.Intn(dim)
		faults := map[int]bool{}
		for len(faults) < nFaults {
			faults[r.Intn(1<<dim)] = true
		}
		var fl []int
		for f := range faults {
			fl = append(fl, f)
		}
		c, _ := New(dim, fl)
		res := c.SafetyLevels()
		for u := 0; u < c.N(); u++ {
			if c.Faulty(u) {
				continue
			}
			for d := 0; d < c.N(); d++ {
				if c.Faulty(d) || u == d {
					continue
				}
				h := Distance(u, d)
				if res.Levels[u] < h {
					continue // no guarantee
				}
				path, err := c.Route(res, u, d)
				if err != nil {
					t.Fatalf("guaranteed route %0*b->%0*b failed: %v (level %d >= dist %d)",
						dim, u, dim, d, err, res.Levels[u], h)
				}
				if len(path)-1 != h {
					t.Fatalf("guaranteed route not shortest: %d hops for distance %d", len(path)-1, h)
				}
			}
		}
	}
}

func TestSafeNodeReachesEverything(t *testing.T) {
	// "When the safety level of a node is n..., this node can reach any
	// node through a shortest path."
	c, _ := New(5, []int{3, 17, 20})
	res := c.SafetyLevels()
	for u := 0; u < c.N(); u++ {
		if !c.Safe(res, u) {
			continue
		}
		for d := 0; d < c.N(); d++ {
			if c.Faulty(d) || d == u {
				continue
			}
			path, err := c.Route(res, u, d)
			if err != nil || len(path)-1 != Distance(u, d) {
				t.Fatalf("safe node %05b failed to optimally reach %05b: %v", u, d, err)
			}
		}
	}
}

func TestRouteValidation(t *testing.T) {
	c, _ := New(3, []int{1})
	res := c.SafetyLevels()
	if _, err := c.Route(res, -1, 0); err == nil {
		t.Error("bad src should error")
	}
	if _, err := c.Route(res, 0, 1); err == nil {
		t.Error("faulty dst should error")
	}
	if p, err := c.Route(res, 2, 2); err != nil || len(p) != 1 {
		t.Error("self route should be trivial")
	}
}

func TestBroadcastFromSafeNode(t *testing.T) {
	c, _ := New(5, []int{7, 12, 25})
	res := c.SafetyLevels()
	src := -1
	for v := 0; v < c.N(); v++ {
		if c.Safe(res, v) {
			src = v
			break
		}
	}
	if src == -1 {
		t.Skip("no safe node with this fault set")
	}
	rounds, reached, err := c.Broadcast(src)
	if err != nil {
		t.Fatal(err)
	}
	if reached != c.NonFaultyCount() {
		t.Errorf("broadcast reached %d of %d non-faulty nodes", reached, c.NonFaultyCount())
	}
	if rounds > c.Dim()+2 {
		t.Errorf("broadcast rounds = %d, want close to the diameter %d", rounds, c.Dim())
	}
}

func TestBroadcastErrors(t *testing.T) {
	c, _ := New(3, []int{0})
	if _, _, err := c.Broadcast(0); err == nil {
		t.Error("faulty source should error")
	}
	if _, _, err := c.Broadcast(-1); err == nil {
		t.Error("bad source should error")
	}
}

func TestSafetyVectorsDominateLevels(t *testing.T) {
	// The extension is strictly more informative: level l implies vector
	// bits 1..l are set.
	r := stats.NewRand(3)
	for trial := 0; trial < 20; trial++ {
		dim := 4 + r.Intn(3)
		nFaults := 1 + r.Intn(2*dim)
		faults := map[int]bool{}
		for len(faults) < nFaults {
			faults[r.Intn(1<<dim)] = true
		}
		var fl []int
		for f := range faults {
			fl = append(fl, f)
		}
		c, _ := New(dim, fl)
		res := c.SafetyLevels()
		vec := c.SafetyVectors()
		for v := 0; v < c.N(); v++ {
			if c.Faulty(v) {
				for k := 0; k <= dim; k++ {
					if vec[v][k] {
						t.Fatalf("faulty node has vector bit set")
					}
				}
				continue
			}
			for k := 1; k <= res.Levels[v]; k++ {
				if !vec[v][k] {
					t.Fatalf("dim %d node %d: level %d but vector bit %d unset",
						dim, v, res.Levels[v], k)
				}
			}
		}
	}
}

func TestSafetyVectorGuidedRouting(t *testing.T) {
	r := stats.NewRand(4)
	c, _ := New(5, []int{2, 9, 22})
	vec := c.SafetyVectors()
	ok, attempts := 0, 0
	for trial := 0; trial < 300; trial++ {
		u, d := r.Intn(32), r.Intn(32)
		if u == d || c.Faulty(u) || c.Faulty(d) {
			continue
		}
		attempts++
		h := Distance(u, d)
		path, err := c.RouteByVector(vec, u, d)
		if err == nil && len(path)-1 == h {
			ok++
		}
	}
	if attempts == 0 {
		t.Fatal("no attempts")
	}
	if float64(ok)/float64(attempts) < 0.9 {
		t.Errorf("vector routing optimal rate = %d/%d, want > 90%%", ok, attempts)
	}
}

func TestFig9Scenario(t *testing.T) {
	// Fig. 9: a 4-D cube with three faulty nodes in which node 1101,
	// routing to 0001, picks preferred neighbor 0101 over 1001 because
	// 0101 carries the higher safety level (see Fig9Cube for why the
	// figure's literal level annotation is unrealizable).
	c, res := Fig9Cube()
	if c.FaultCount() != 3 {
		t.Fatalf("Fig. 9 has three faulty nodes, got %d", c.FaultCount())
	}
	if res.Levels[0b0101] != 4 || res.Levels[0b1001] != 2 {
		t.Errorf("levels(0101, 1001) = (%d, %d), want (4, 2)",
			res.Levels[0b0101], res.Levels[0b1001])
	}
	if res.Levels[0b1001] >= res.Levels[0b0101] {
		t.Errorf("level(1001) = %d must be below level(0101) = %d",
			res.Levels[0b1001], res.Levels[0b0101])
	}
	path, err := c.Route(res, 0b1101, 0b0001)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 || path[1] != 0b0101 {
		t.Errorf("route = %04b, want 1101 -> 0101 -> 0001", path)
	}
	if res.Rounds > 3 {
		t.Errorf("rounds = %d, want <= n-1 = 3", res.Rounds)
	}
}

func TestSafetyLevelsDistributedMatchesCentralized(t *testing.T) {
	// The kernel-based labeling must reproduce the iterative computation
	// exactly — levels and round count — on random fault sets, sequential
	// and sharded alike.
	r := stats.NewRand(5)
	for trial := 0; trial < 6; trial++ {
		dim := 3 + trial%4
		nf := r.Intn(1 << (dim - 1))
		faults := map[int]bool{}
		for len(faults) < nf {
			faults[r.Intn(1<<dim)] = true
		}
		var fl []int
		for f := range faults {
			fl = append(fl, f)
		}
		c, err := New(dim, fl)
		if err != nil {
			t.Fatal(err)
		}
		want := c.SafetyLevels()
		for _, workers := range []int{1, 4} {
			got, st, err := c.SafetyLevelsDistributed(runtime.WithParallelism(workers))
			if err != nil {
				t.Fatal(err)
			}
			if got.Rounds != want.Rounds {
				t.Errorf("trial %d workers %d: rounds = %d, want %d",
					trial, workers, got.Rounds, want.Rounds)
			}
			for v := range want.Levels {
				if got.Levels[v] != want.Levels[v] {
					t.Fatalf("trial %d workers %d: level[%d] = %d, want %d",
						trial, workers, v, got.Levels[v], want.Levels[v])
				}
			}
			if st.Messages != st.Rounds*2*c.Graph().M() {
				t.Errorf("trial %d: kernel charged %d messages", trial, st.Messages)
			}
		}
	}
}

func TestCubeGraph(t *testing.T) {
	c, err := New(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := c.Graph()
	if g.N() != 8 || g.M() != 12 {
		t.Fatalf("3-cube graph has n=%d m=%d, want 8 and 12", g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Neighbors(v) {
			if Distance(v, w) != 1 {
				t.Fatalf("edge %d-%d is not a one-bit flip", v, w)
			}
		}
	}
}
