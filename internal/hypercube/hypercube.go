// Package hypercube implements the hybrid distributed-and-localized
// labeling of §IV-C: safety levels in an n-dimensional binary hypercube
// with faulty nodes [32]. A node's safety level l(u) means u can reach any
// node within l(u) hops through a shortest path; a node with level n is
// "safe" and can reach every node optimally. Levels are computed by at
// most n-1 rounds of neighbor exchanges, each node's level being decided
// at most once — the balance between quick structure building and utility
// the paper highlights. The package also provides safety-level-guided
// optimal routing (Fig. 9), fault-tolerant broadcast, and the binary
// safety-vector extension.
package hypercube

import (
	"errors"
	"fmt"
	"math/bits"

	"structura/internal/graph"
	"structura/internal/runtime"
)

// Cube is an n-dimensional binary hypercube with a set of faulty nodes.
type Cube struct {
	dim    int
	faulty []bool
}

// New returns an n-cube with the given faulty nodes. dim must be in
// [1, 20] (2^20 nodes) to keep dense arrays practical.
func New(dim int, faults []int) (*Cube, error) {
	if dim < 1 || dim > 20 {
		return nil, errors.New("hypercube: dim must be in [1,20]")
	}
	c := &Cube{dim: dim, faulty: make([]bool, 1<<dim)}
	for _, f := range faults {
		if f < 0 || f >= 1<<dim {
			return nil, fmt.Errorf("hypercube: fault %d out of range", f)
		}
		c.faulty[f] = true
	}
	return c, nil
}

// Dim returns the cube dimension.
func (c *Cube) Dim() int { return c.dim }

// N returns the node count, 2^dim.
func (c *Cube) N() int { return 1 << c.dim }

// Faulty reports whether node v is faulty.
func (c *Cube) Faulty(v int) bool { return v >= 0 && v < len(c.faulty) && c.faulty[v] }

// FaultCount returns the number of faulty nodes.
func (c *Cube) FaultCount() int {
	k := 0
	for _, f := range c.faulty {
		if f {
			k++
		}
	}
	return k
}

// Distance returns the Hamming distance between two node addresses.
func Distance(u, v int) int { return bits.OnesCount(uint(u ^ v)) }

// Neighbors returns v's dim neighbors (one per flipped bit).
func (c *Cube) Neighbors(v int) []int {
	out := make([]int, c.dim)
	for i := 0; i < c.dim; i++ {
		out[i] = v ^ (1 << i)
	}
	return out
}

// PreferredNeighbors returns the neighbors of u on shortest paths to d —
// "binary addresses closer to the destination by one bit".
func (c *Cube) PreferredNeighbors(u, d int) []int {
	var out []int
	diff := uint(u ^ d)
	for diff != 0 {
		bit := diff & (-diff)
		out = append(out, u^int(bit))
		diff &= diff - 1
	}
	return out
}

// SafetyResult carries computed safety levels.
type SafetyResult struct {
	Levels []int
	Rounds int // rounds until the levels stopped changing (<= dim-1)
}

// ErrUnstable reports a distributed safety-level run that exhausted its
// round budget before the levels stabilized.
//
// Unstable-return contract (shared with labeling.ErrUnstable and
// distvec.ErrUnstable): the accompanying result is non-nil and carries the
// partial labels as of the last executed round, so fault-injection
// harnesses can inspect the stale state instead of losing it. Rounds then
// reports the budget actually spent rather than rounds-to-converge.
var ErrUnstable = errors.New("hypercube: safety levels did not stabilize")

// maxDim bounds the histogram used by the safety-level update (New caps
// dim at 20).
const maxDim = 21

// levelFromHist evaluates the footnote-3 safety-level rule from a
// histogram of neighbor levels (hist[l] = neighbors at level l < dim):
// with the neighbor levels sorted ascending as l_0 <= ... <= l_{dim-1},
// the level is the first index i with l_i < i (else dim). l_i < i holds
// exactly when more than i neighbors have a level below i, so a prefix
// scan over the histogram replaces the per-node sort without allocating.
func levelFromHist(hist *[maxDim]int, dim int) int {
	below := 0 // neighbors with level < i
	for i := 0; i < dim; i++ {
		if i > 0 {
			below += hist[i-1]
		}
		if below >= i+1 {
			return i
		}
	}
	return dim
}

// LevelFromNeighborLevels evaluates the footnote-3 safety-level rule on a
// slice of neighbor levels (order-insensitive), exported for harnesses that
// re-run the update outside SafetyLevels — e.g. fault-injection scenarios
// tracking level monotonicity. dim must be in [1, 20], like New.
func LevelFromNeighborLevels(neighborLevels []int, dim int) int {
	if dim < 1 || dim > 20 {
		return 0
	}
	var hist [maxDim]int
	for _, l := range neighborLevels {
		if l >= 0 && l < dim {
			hist[l]++
		}
	}
	return levelFromHist(&hist, dim)
}

// SafetyLevels runs the iterative computation: faulty nodes have level 0,
// non-faulty nodes start at n, and each round every node recomputes its
// level from the non-decreasing sequence of its neighbors' levels
// (l_0 <= ... <= l_{n-1}): the level is the longest prefix satisfying
// l_i >= i, capped at n (footnote 3 of the paper). Levels only decrease,
// each node's final level is decided in round l(u), and at most n-1 rounds
// are needed.
func (c *Cube) SafetyLevels() SafetyResult {
	n := c.N()
	levels := make([]int, n)
	for v := 0; v < n; v++ {
		if c.faulty[v] {
			levels[v] = 0
		} else {
			levels[v] = c.dim
		}
	}
	rounds := 0
	for r := 0; r < c.dim; r++ {
		next := make([]int, n)
		changed := false
		for v := 0; v < n; v++ {
			if c.faulty[v] {
				continue
			}
			var hist [maxDim]int
			for i := 0; i < c.dim; i++ {
				if l := levels[v^(1<<i)]; l < c.dim {
					hist[l]++
				}
			}
			l := levelFromHist(&hist, c.dim)
			next[v] = l
			if l != levels[v] {
				changed = true
			}
		}
		if !changed {
			break
		}
		levels = next
		rounds++
	}
	return SafetyResult{Levels: levels, Rounds: rounds}
}

// Graph returns the cube's topology as an undirected graph.Graph (node v
// adjacent to v with each address bit flipped), the substrate for running
// cube labelings on the synchronous round kernel.
func (c *Cube) Graph() *graph.Graph {
	g := graph.New(c.N())
	for v := 0; v < c.N(); v++ {
		for i := 0; i < c.dim; i++ {
			if w := v ^ (1 << i); v < w {
				_ = g.AddEdge(v, w)
			}
		}
	}
	return g
}

// SafetyLevelsDistributed computes SafetyLevels as an actual distributed
// labeling process on the synchronous round kernel, so its cost is measured
// by the same round/message accounting as the other labeling schemes. The
// result always equals SafetyLevels; the returned kernel stats include the
// final quiet round (Rounds-1 matches SafetyResult.Rounds). Extra kernel
// options (observers, parallelism) are passed through to runtime.Run. A run
// that exhausts its budget (possible only under fault-injection options)
// returns the partial levels with ErrUnstable per the unstable-return
// contract.
func (c *Cube) SafetyLevelsDistributed(opts ...runtime.Option) (SafetyResult, runtime.Stats, error) {
	g := c.Graph()
	levels, stats, err := runtime.Run(g,
		func(v int) int {
			if c.faulty[v] {
				return 0
			}
			return c.dim
		},
		func(v int, self int, nbrs []int) (int, bool) {
			if c.faulty[v] {
				return 0, false
			}
			// Histogram instead of copy+sort: the step stays pure and
			// allocation-free under the kernel's parallel execution.
			var hist [maxDim]int
			for _, l := range nbrs {
				if l < c.dim {
					hist[l]++
				}
			}
			l := levelFromHist(&hist, c.dim)
			return l, l != self
		}, append([]runtime.Option{runtime.WithMaxRounds(c.dim + 2)}, opts...)...)
	if err != nil {
		return SafetyResult{}, stats, err
	}
	if !stats.Stable {
		// Partial-result contract: the stale levels travel with the error so
		// fault-injection harnesses can inspect them.
		return SafetyResult{Levels: levels, Rounds: stats.Rounds}, stats, ErrUnstable
	}
	return SafetyResult{Levels: levels, Rounds: stats.Rounds - 1}, stats, nil
}

// Safe reports whether node v is safe (level == dim) under res.
func (c *Cube) Safe(res SafetyResult, v int) bool {
	return v >= 0 && v < len(res.Levels) && res.Levels[v] == c.dim
}

// Route performs the self-guided optimal routing of §IV-C: at each
// intermediate node, the next hop is the highest-safety-level preferred
// neighbor (ties to the lower address). Delivery through a shortest path
// is guaranteed whenever l(src) >= Distance(src, dst); the attempt is made
// regardless and an error reports a dead end.
func (c *Cube) Route(res SafetyResult, src, dst int) ([]int, error) {
	if src < 0 || src >= c.N() || dst < 0 || dst >= c.N() {
		return nil, errors.New("hypercube: src/dst out of range")
	}
	if c.faulty[src] || c.faulty[dst] {
		return nil, errors.New("hypercube: routing between faulty nodes")
	}
	path := []int{src}
	cur := src
	for cur != dst {
		best := -1
		for _, w := range c.PreferredNeighbors(cur, dst) {
			if c.faulty[w] && w != dst {
				continue
			}
			if w == dst {
				best = w
				break
			}
			if best == -1 || res.Levels[w] > res.Levels[best] || (res.Levels[w] == res.Levels[best] && w < best) {
				best = w
			}
		}
		if best == -1 {
			return path, fmt.Errorf("hypercube: dead end at %0*b routing to %0*b", c.dim, cur, c.dim, dst)
		}
		cur = best
		path = append(path, cur)
	}
	return path, nil
}

// Broadcast floods a message from src through non-faulty nodes, returning
// the number of rounds until every reachable non-faulty node holds it and
// the count of reached nodes. The paper's claim verified in tests: from a
// safe node, every non-faulty node is reached (the faults cannot
// disconnect the healthy subcube around a safe source).
func (c *Cube) Broadcast(src int) (rounds, reached int, err error) {
	if src < 0 || src >= c.N() {
		return 0, 0, errors.New("hypercube: src out of range")
	}
	if c.faulty[src] {
		return 0, 0, errors.New("hypercube: faulty source")
	}
	have := make([]bool, c.N())
	have[src] = true
	frontier := []int{src}
	reached = 1
	for len(frontier) > 0 {
		var next []int
		for _, v := range frontier {
			for i := 0; i < c.dim; i++ {
				w := v ^ (1 << i)
				if !have[w] && !c.faulty[w] {
					have[w] = true
					reached++
					next = append(next, w)
				}
			}
		}
		if len(next) > 0 {
			rounds++
		}
		frontier = next
	}
	return rounds, reached, nil
}

// NonFaultyCount returns the number of non-faulty nodes.
func (c *Cube) NonFaultyCount() int { return c.N() - c.FaultCount() }

// SafetyVectors computes the binary safety-vector extension (§IV-C): bit k
// (1-based) of node u is 1 iff routing to every destination at distance
// exactly k can proceed through a neighbor whose (k-1) bit is set. Using
// only neighbor counts this is guaranteed when at least dim-k+1 neighbors
// have bit k-1 set (every k-subset of dimensions then contains one). Bit 0
// is 1 for every non-faulty node; faulty nodes have all-zero vectors.
// Safety vectors dominate safety levels: level l implies bits 1..l set.
func (c *Cube) SafetyVectors() [][]bool {
	n := c.N()
	vec := make([][]bool, n)
	for v := range vec {
		vec[v] = make([]bool, c.dim+1)
		vec[v][0] = !c.faulty[v]
	}
	for k := 1; k <= c.dim; k++ {
		for v := 0; v < n; v++ {
			if c.faulty[v] {
				continue
			}
			cnt := 0
			for i := 0; i < c.dim; i++ {
				if vec[v^(1<<i)][k-1] {
					cnt++
				}
			}
			if k == 1 {
				// Distance-1 destinations are neighbors themselves; a
				// non-faulty neighbor is always directly reachable.
				vec[v][1] = true
			} else {
				vec[v][k] = cnt >= c.dim-k+1
			}
		}
	}
	return vec
}

// RouteByVector routes with safety vectors: at distance h, prefer a
// non-faulty preferred neighbor with bit h-1 set.
func (c *Cube) RouteByVector(vec [][]bool, src, dst int) ([]int, error) {
	if src < 0 || src >= c.N() || dst < 0 || dst >= c.N() {
		return nil, errors.New("hypercube: src/dst out of range")
	}
	if c.faulty[src] || c.faulty[dst] {
		return nil, errors.New("hypercube: routing between faulty nodes")
	}
	path := []int{src}
	cur := src
	for cur != dst {
		h := Distance(cur, dst)
		best := -1
		for _, w := range c.PreferredNeighbors(cur, dst) {
			if w == dst {
				best = w
				break
			}
			if c.faulty[w] {
				continue
			}
			if vec[w][h-1] {
				best = w
				break
			}
			if best == -1 {
				best = w // fallback: any non-faulty preferred neighbor
			}
		}
		if best == -1 {
			return path, fmt.Errorf("hypercube: dead end at %0*b", c.dim, cur)
		}
		cur = best
		path = append(path, cur)
	}
	return path, nil
}

// Fig9Cube returns the Fig. 9 scenario: a 4-D cube with three faulty
// nodes in which node 1101, routing to 0001, selects preferred neighbor
// 0101 over 1001 — the figure's walkthrough decision.
//
// The paper does not list the fault addresses. An exhaustive search over
// all 3-fault configurations (with the four walkthrough nodes non-faulty)
// shows that under the footnote-3 definition the only achievable
// (l(0101), l(1001)) pairs are (4,2), (4,1), (2,4), (1,4) and (4,4); the
// figure's annotation "0101 with a safety level of 2" beating 1001 is not
// realizable exactly. This fault set {1010, 1100, 1111} yields l(0101)=4
// and l(1001)=2, reproducing the figure's routing decision — 0101 is the
// higher-level preferred neighbor — which is the property the figure
// illustrates. See EXPERIMENTS.md for the discrepancy note.
func Fig9Cube() (*Cube, SafetyResult) {
	c, err := New(4, fig9Faults)
	if err != nil {
		panic(err) // unreachable: constants are valid
	}
	return c, c.SafetyLevels()
}

var fig9Faults = []int{0b1010, 0b1100, 0b1111}
