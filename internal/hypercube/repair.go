package hypercube

import (
	"sort"

	"structura/internal/graph"
)

// This file generalizes the safety-level computation from the one-shot,
// monotone-from-the-top iteration of SafetyLevels to maintenance on a
// churned support: when edges appear or disappear, levels may legitimately
// rise as well as fall, and the invariant worth keeping is local
// consistency — every non-faulty node's level equals the footnote-3 rule
// evaluated on its current neighbors' levels. InconsistentLevels is the
// detector over a dirtied region, RelaxLevels the budgeted localized
// repair, and RecomputeLevels the from-the-top escalation whose
// convergence is guaranteed by monotonicity.

// levelOn evaluates the footnote-3 rule for node v on an arbitrary support.
func levelOn(g *graph.Graph, levels []int, dim, v int) int {
	var hist [maxDim]int
	g.EachNeighbor(v, func(w int, _ float64) {
		if l := levels[w]; l >= 0 && l < dim {
			hist[l]++
		}
	})
	return levelFromHist(&hist, dim)
}

// InconsistentLevels returns, among the candidate nodes, those whose level
// violates the rule: faulty nodes must sit at 0, non-faulty nodes at the
// footnote-3 value of their neighborhood. Pass an event's endpoints and
// their neighbors to cover every node whose histogram the event changed.
func InconsistentLevels(g *graph.Graph, levels []int, faulty []bool, dim int, candidates []int) []int {
	var out []int
	seen := make(map[int]bool, len(candidates))
	for _, v := range candidates {
		if v < 0 || v >= g.N() || seen[v] {
			continue
		}
		seen[v] = true
		want := 0
		if !faulty[v] {
			want = levelOn(g, levels, dim, v)
		}
		if levels[v] != want {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// RelaxLevels repairs levels in place by frontier relaxation from the seed
// nodes: each sweep re-evaluates the frontier synchronously and enqueues
// the neighbors of every node whose level changed. Unlike the from-the-top
// computation, levels move in both directions here, so convergence is not
// guaranteed by monotonicity — the maxRounds / maxTouched budget bounds the
// attempt and ok == false tells the caller to escalate to RecomputeLevels.
func RelaxLevels(g *graph.Graph, levels []int, faulty []bool, dim int, seeds []int, maxRounds, maxTouched int) (touched []int, rounds int, ok bool) {
	frontier := make([]int, 0, len(seeds))
	inFrontier := make(map[int]bool, len(seeds))
	push := func(v int) {
		if v >= 0 && v < g.N() && !inFrontier[v] {
			inFrontier[v] = true
			frontier = append(frontier, v)
		}
	}
	for _, s := range seeds {
		push(s)
	}
	touchedSet := make(map[int]bool)
	for len(frontier) > 0 {
		if maxRounds > 0 && rounds >= maxRounds {
			return sortedLevelKeys(touchedSet), rounds, false
		}
		rounds++
		cur := frontier
		frontier = nil
		inFrontier = make(map[int]bool)
		sort.Ints(cur)
		// Synchronous sweep: evaluate every frontier node against the
		// pre-sweep levels, then commit, mirroring the kernel's semantics.
		next := make([]int, len(cur))
		for i, v := range cur {
			if !touchedSet[v] {
				if maxTouched > 0 && len(touchedSet) >= maxTouched {
					return sortedLevelKeys(touchedSet), rounds, false
				}
				touchedSet[v] = true
			}
			if faulty[v] {
				next[i] = 0
			} else {
				next[i] = levelOn(g, levels, dim, v)
			}
		}
		for i, v := range cur {
			if next[i] == levels[v] {
				continue
			}
			levels[v] = next[i]
			push(v)
			g.EachNeighbor(v, func(w int, _ float64) { push(w) })
		}
	}
	return sortedLevelKeys(touchedSet), rounds, true
}

// RecomputeLevels rebuilds the levels from the top on the live support:
// every non-faulty node restarts at dim and the rule is iterated to its
// fixed point. From the all-dim start the sequence is monotone
// non-increasing (the rule is monotone in each neighbor level), so the
// iteration always converges; the sweep count is returned as the
// full-recompute cost localized repair is measured against.
func RecomputeLevels(g *graph.Graph, levels []int, faulty []bool, dim int) int {
	n := g.N()
	for v := 0; v < n; v++ {
		if faulty[v] {
			levels[v] = 0
		} else {
			levels[v] = dim
		}
	}
	next := make([]int, n)
	sweeps := 0
	for s := 0; s < dim*n+1; s++ {
		changed := false
		for v := 0; v < n; v++ {
			if faulty[v] {
				next[v] = 0
				continue
			}
			next[v] = levelOn(g, levels, dim, v)
			if next[v] != levels[v] {
				changed = true
			}
		}
		copy(levels, next)
		if !changed {
			break
		}
		sweeps++
	}
	return sweeps + 1
}

func sortedLevelKeys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
