package hypercube

import (
	"sort"
	"testing"
	"testing/quick"
)

func cubeFrom(dimRaw uint8, faultRaw []uint8) *Cube {
	dim := int(dimRaw%5) + 3 // 3..7
	seen := map[int]bool{}
	var faults []int
	for _, f := range faultRaw {
		x := int(f) % (1 << dim)
		if !seen[x] {
			seen[x] = true
			faults = append(faults, x)
		}
	}
	c, _ := New(dim, faults)
	return c
}

// Property: the fixed point of the safety-level computation satisfies the
// footnote-3 consistency condition at every non-faulty node — the level is
// exactly the longest prefix of sorted neighbor levels with seq[i] >= i.
func TestQuickSafetyLevelFixedPoint(t *testing.T) {
	f := func(dimRaw uint8, faultRaw []uint8) bool {
		c := cubeFrom(dimRaw, faultRaw)
		res := c.SafetyLevels()
		for v := 0; v < c.N(); v++ {
			if c.Faulty(v) {
				if res.Levels[v] != 0 {
					return false
				}
				continue
			}
			seq := make([]int, 0, c.Dim())
			for _, w := range c.Neighbors(v) {
				seq = append(seq, res.Levels[w])
			}
			sort.Ints(seq)
			want := c.Dim()
			for i, l := range seq {
				if l < i {
					want = i
					break
				}
			}
			if res.Levels[v] != want {
				return false
			}
		}
		return res.Rounds <= c.Dim()-1 || res.Rounds == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: the safety-level semantic guarantee — any node with level >=
// its distance to a non-faulty destination routes optimally.
func TestQuickSafetyLevelGuarantee(t *testing.T) {
	f := func(dimRaw uint8, faultRaw []uint8, uRaw, dRaw uint16) bool {
		c := cubeFrom(dimRaw, faultRaw)
		res := c.SafetyLevels()
		u := int(uRaw) % c.N()
		d := int(dRaw) % c.N()
		if u == d || c.Faulty(u) || c.Faulty(d) {
			return true
		}
		h := Distance(u, d)
		if res.Levels[u] < h {
			return true
		}
		path, err := c.Route(res, u, d)
		return err == nil && len(path)-1 == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: safety vectors dominate safety levels on every cube.
func TestQuickVectorsDominateLevels(t *testing.T) {
	f := func(dimRaw uint8, faultRaw []uint8) bool {
		c := cubeFrom(dimRaw, faultRaw)
		res := c.SafetyLevels()
		vec := c.SafetyVectors()
		for v := 0; v < c.N(); v++ {
			if c.Faulty(v) {
				continue
			}
			for k := 1; k <= res.Levels[v]; k++ {
				if !vec[v][k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: broadcast coverage equals the non-faulty component of the
// source, however the faults fall, and the structured broadcast is always
// message-optimal for what it covers.
func TestQuickBroadcastCoverage(t *testing.T) {
	f := func(dimRaw uint8, faultRaw []uint8, srcRaw uint16) bool {
		c := cubeFrom(dimRaw, faultRaw)
		src := int(srcRaw) % c.N()
		if c.Faulty(src) {
			return true
		}
		res := c.SafetyLevels()
		st, err := c.SafeBroadcast(res, src)
		if err != nil {
			return false
		}
		_, flood, err := c.Broadcast(src)
		if err != nil {
			return false
		}
		return st.Reached == flood && st.Messages == st.Reached-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
