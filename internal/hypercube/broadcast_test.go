package hypercube

import (
	"testing"

	"structura/internal/stats"
)

func TestSafeBroadcastMessageOptimal(t *testing.T) {
	r := stats.NewRand(1)
	for trial := 0; trial < 20; trial++ {
		dim := 5 + r.Intn(3)
		nFaults := 1 + r.Intn(dim)
		faults := map[int]bool{}
		for len(faults) < nFaults {
			faults[r.Intn(1<<dim)] = true
		}
		var fl []int
		for f := range faults {
			fl = append(fl, f)
		}
		c, err := New(dim, fl)
		if err != nil {
			t.Fatal(err)
		}
		res := c.SafetyLevels()
		src := -1
		for v := 0; v < c.N(); v++ {
			if c.Safe(res, v) {
				src = v
				break
			}
		}
		if src == -1 {
			continue
		}
		st, err := c.SafeBroadcast(res, src)
		if err != nil {
			t.Fatal(err)
		}
		// From a safe source: everyone reached, message-optimal, and time
		// bounded by the dimension.
		if st.Reached != c.NonFaultyCount() {
			t.Fatalf("reached %d of %d", st.Reached, c.NonFaultyCount())
		}
		if st.Messages != st.Reached-1 {
			t.Fatalf("messages = %d, want %d (one per non-source node)", st.Messages, st.Reached-1)
		}
		if st.Rounds > dim {
			t.Fatalf("rounds = %d > dim %d from a safe source", st.Rounds, dim)
		}
		flood, err := c.FloodBroadcastMessages(src)
		if err != nil {
			t.Fatal(err)
		}
		if flood <= st.Messages {
			t.Fatalf("flooding (%d msgs) should cost more than the tree (%d)", flood, st.Messages)
		}
	}
}

func TestSafeBroadcastFaultFree(t *testing.T) {
	c, _ := New(4, nil)
	res := c.SafetyLevels()
	st, err := c.SafeBroadcast(res, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Reached != 16 || st.Messages != 15 || st.Rounds != 4 {
		t.Errorf("fault-free broadcast = %+v, want 16 reached, 15 msgs, 4 rounds", st)
	}
}

func TestSafeBroadcastValidation(t *testing.T) {
	c, _ := New(3, []int{0})
	res := c.SafetyLevels()
	if _, err := c.SafeBroadcast(res, 0); err == nil {
		t.Error("faulty source should error")
	}
	if _, err := c.SafeBroadcast(res, -1); err == nil {
		t.Error("bad source should error")
	}
	if _, err := c.SafeBroadcast(SafetyResult{}, 1); err == nil {
		t.Error("missing levels should error")
	}
	if _, err := c.FloodBroadcastMessages(0); err == nil {
		t.Error("flooding from faulty source should error")
	}
	if _, err := c.FloodBroadcastMessages(-1); err == nil {
		t.Error("flooding from bad source should error")
	}
}

func TestSafeBroadcastMatchesFloodCoverage(t *testing.T) {
	// Even from a non-safe source, the tree reaches exactly the connected
	// non-faulty component (the same nodes flooding reaches).
	c, _ := New(5, []int{1, 2, 4, 8, 16}) // all of node 0's neighbors faulty
	res := c.SafetyLevels()
	st, err := c.SafeBroadcast(res, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Reached != 1 || st.Messages != 0 {
		t.Errorf("isolated source: %+v, want reached=1", st)
	}
	_, flReached, err := c.Broadcast(0)
	if err != nil {
		t.Fatal(err)
	}
	if flReached != st.Reached {
		t.Errorf("coverage mismatch: tree %d vs flood %d", st.Reached, flReached)
	}
}
