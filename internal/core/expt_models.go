package core

import (
	"sort"

	"structura/internal/centrality"
	"structura/internal/gen"
	"structura/internal/intervals"
	"structura/internal/mobility"
	"structura/internal/smallworld"
	"structura/internal/stats"
	"structura/internal/temporal"
	"structura/internal/udg"

	"structura/internal/geo"
)

func init() {
	register(Experiment{
		ID:       "fig1",
		Title:    "Interval graph / hypergraph of an online social network",
		PaperRef: "Fig. 1, §II-A",
		Strategy: Remapping,
		Run:      runFig1,
	})
	register(Experiment{
		ID:       "fig2",
		Title:    "Time-evolving graph of the VANET example",
		PaperRef: "Fig. 2, §II-B",
		Strategy: Trimming,
		Run:      runFig2,
	})
	register(Experiment{
		ID:       "markov",
		Title:    "Edge-Markovian dynamic graphs: flooding time",
		PaperRef: "§II-B",
		Strategy: Layering,
		Run:      runMarkov,
	})
	register(Experiment{
		ID:       "udgtsp",
		Title:    "Constant-approximation TSP on unit disk graphs",
		PaperRef: "§II-A",
		Strategy: Trimming,
		Run:      runUDGTSP,
	})
	register(Experiment{
		ID:       "centrality",
		Title:    "Centrality measures (single-node importance baselines)",
		PaperRef: "§III intro",
		Strategy: Labeling,
		Run:      runCentrality,
	})
	register(Experiment{
		ID:       "smallworld",
		Title:    "Kleinberg small-world greedy routing vs link exponent",
		PaperRef: "§I",
		Strategy: Remapping,
		Run:      runSmallWorld,
	})
}

func runFig1(seed int64) ([]Table, error) {
	fam := intervals.Fig1Family()
	g, err := fam.Graph()
	if err != nil {
		return nil, err
	}
	hes, err := fam.Hypergraph()
	if err != nil {
		return nil, err
	}
	paper := Table{
		Title:   "Fig. 1 example (users A-D)",
		Columns: []string{"quantity", "value"},
		Rows: [][]string{
			{"interval-graph edges", f("%d", g.M())},
			{"chordal", f("%v", intervals.IsChordal(g))},
			{"interval graph (chordal + AT-free)", f("%v", intervals.IsIntervalGraph(g))},
			{"hyperedges", f("%v", hes)},
		},
	}
	// Multiple-interval graphs (§II-A: "each user can be online multiple
	// times"): with several sessions per user the contact graph stops
	// being an interval graph in general.
	multi := Table{
		Title:   "Multiple-interval families (3 sessions per user)",
		Columns: []string{"n", "edges", "chordal", "interval graph"},
	}
	{
		r := stats.NewRand(seed + 1)
		for _, n := range []int{16, 48} {
			famM := intervals.Family{NumVertices: n}
			for v := 0; v < n; v++ {
				for sess := 0; sess < 3; sess++ {
					s := r.Float64() * 100
					famM.Intervals = append(famM.Intervals, intervals.Interval{Start: s, End: s + r.Float64()*6, Owner: v})
				}
			}
			gm, err := famM.Graph()
			if err != nil {
				return nil, err
			}
			multi.Rows = append(multi.Rows, []string{
				f("%d", n), f("%d", gm.M()),
				f("%v", intervals.IsChordal(gm)),
				f("%v", intervals.IsIntervalGraph(gm)),
			})
		}
	}
	r := stats.NewRand(seed)
	sweep := Table{
		Title:   "Random interval families: hyperedge cardinality",
		Columns: []string{"n", "edges", "chordal", "max |hyperedge|", "mean |hyperedge|"},
	}
	for _, n := range []int{64, 256, 1024} {
		famN := intervals.Family{NumVertices: n}
		for v := 0; v < n; v++ {
			s := r.Float64() * 100
			famN.Intervals = append(famN.Intervals, intervals.Interval{Start: s, End: s + r.Float64()*10, Owner: v})
		}
		gn, err := famN.Graph()
		if err != nil {
			return nil, err
		}
		hn, err := famN.Hypergraph()
		if err != nil {
			return nil, err
		}
		var maxCard int
		var sum float64
		for _, he := range hn {
			if len(he) > maxCard {
				maxCard = len(he)
			}
			sum += float64(len(he))
		}
		mean := 0.0
		if len(hn) > 0 {
			mean = sum / float64(len(hn))
		}
		sweep.Rows = append(sweep.Rows, []string{
			f("%d", n), f("%d", gn.M()), f("%v", intervals.IsChordal(gn)),
			f("%d", maxCard), f("%.2f", mean),
		})
	}
	return []Table{paper, multi, sweep}, nil
}

func runFig2(int64) ([]Table, error) {
	eg := temporal.Fig2EG()
	const a, c = 0, 2
	t1 := Table{
		Title:   "A -> C connectivity and optimal journeys by start time",
		Columns: []string{"start", "connected", "earliest completion", "min hops", "fastest span"},
	}
	for start := 0; start < eg.Horizon(); start++ {
		row := []string{f("%d", start)}
		if !eg.ConnectedAt(a, c, start) {
			row = append(row, "no", "-", "-", "-")
		} else {
			ec, err := eg.EarliestCompletionJourney(a, c, start)
			if err != nil {
				return nil, err
			}
			mh, err := eg.MinHopJourney(a, c, start)
			if err != nil {
				return nil, err
			}
			fs, err := eg.FastestJourney(a, c, start)
			if err != nil {
				return nil, err
			}
			row = append(row, "yes", f("%d", ec.Completion()), f("%d", mh.Hops()), f("%d", fs.Span()))
		}
		t1.Rows = append(t1.Rows, row)
	}
	t2 := Table{
		Title:   "Per-snapshot connectivity (the network is never connected)",
		Columns: []string{"time unit", "edges", "connected"},
	}
	for tu := 0; tu < eg.Horizon(); tu++ {
		snap := eg.Snapshot(tu)
		t2.Rows = append(t2.Rows, []string{f("%d", tu), f("%d", snap.M()), f("%v", snap.Connected())})
	}
	return []Table{t1, t2}, nil
}

func runMarkov(seed int64) ([]Table, error) {
	r := stats.NewRand(seed)
	t := Table{
		Title:   "Flooding completion time from node 0 (start of horizon)",
		Columns: []string{"n", "p (death)", "q (birth)", "stationary density", "flooding time"},
	}
	// Sparser birth rates slow flooding (higher dynamic diameter); larger
	// n speeds it up (more node pairs try edges each step) — the shape of
	// the [6] analysis.
	for _, n := range []int{32, 64, 128} {
		for _, pq := range [][2]float64{{0.9, 0.001}, {0.9, 0.005}, {0.9, 0.02}} {
			cfg := mobility.EdgeMarkovianConfig{
				N: n, P: pq[0], Q: pq[1], Steps: 2000, StartDensity: -1,
			}
			eg, err := mobility.EdgeMarkovian(r, cfg)
			if err != nil {
				return nil, err
			}
			ft, err := eg.FloodingTime(0, 0)
			ftStr := "unreached"
			if err == nil {
				ftStr = f("%d", ft)
			}
			t.Rows = append(t.Rows, []string{
				f("%d", n), f("%.2f", pq[0]), f("%.2f", pq[1]),
				f("%.3f", pq[1]/(pq[0]+pq[1])), ftStr,
			})
		}
	}
	return []Table{t}, nil
}

func runUDGTSP(seed int64) ([]Table, error) {
	r := stats.NewRand(seed)
	t := Table{
		Title:   "MST-doubling TSP tour vs MST lower bound (ratio <= 2 guaranteed)",
		Columns: []string{"points", "tour length", "MST lower bound", "ratio"},
	}
	for _, n := range []int{50, 200, 800} {
		pts := geo.RandomPoints(r, n, 100, 100)
		tour, err := udg.ApproxTSP(pts)
		if err != nil {
			return nil, err
		}
		lb := udg.MSTLowerBound(pts)
		t.Rows = append(t.Rows, []string{
			f("%d", n), f("%.1f", tour.Length), f("%.1f", lb), f("%.3f", tour.Length/lb),
		})
	}
	return []Table{t}, nil
}

func runCentrality(seed int64) ([]Table, error) {
	r := stats.NewRand(seed)
	g, err := gen.BarabasiAlbert(r, 500, 2)
	if err != nil {
		return nil, err
	}
	deg := centrality.Degree(g)
	clo := centrality.Closeness(g)
	bet := centrality.Betweenness(g)
	eig, err := centrality.Eigenvector(g, 200, 1e-10)
	if err != nil {
		return nil, err
	}
	pr, err := centrality.PageRank(g, 0.85, 200, 1e-12)
	if err != nil {
		return nil, err
	}
	t := Table{
		Title:   "Top-5 nodes of a 500-node Barabasi-Albert graph per measure",
		Columns: []string{"measure", "top-5 node IDs"},
	}
	for _, m := range []struct {
		name   string
		scores []float64
	}{
		{"degree", deg}, {"closeness", clo}, {"betweenness", bet},
		{"eigenvector", eig}, {"pagerank", pr},
	} {
		rank := centrality.Ranking(m.scores)[:5]
		t.Rows = append(t.Rows, []string{m.name, f("%v", rank)})
	}
	return []Table{t}, nil
}

func runSmallWorld(seed int64) ([]Table, error) {
	rng := stats.NewRand(seed)
	t := Table{
		Title:   "Mean greedy steps on a 32x32 grid vs long-range exponent r",
		Columns: []string{"r", "mean steps"},
	}
	type res struct {
		r, steps float64
	}
	var rows []res
	for _, r := range []float64{0, 0.5, 1, 1.5, 2, 2.5, 3, 4} {
		g, err := smallworld.New(rng, 32, r)
		if err != nil {
			return nil, err
		}
		avg, err := g.AverageGreedySteps(rng, 400)
		if err != nil {
			return nil, err
		}
		rows = append(rows, res{r, avg})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].r < rows[j].r })
	for _, row := range rows {
		t.Rows = append(t.Rows, []string{f("%.1f", row.r), f("%.1f", row.steps)})
	}
	return []Table{t}, nil
}
