// Package core ties the structura library together: it names the paper's
// three structure-uncovering strategies (trimming, layering, remapping)
// plus the distributed/localized labeling machinery, and hosts the
// experiment registry that regenerates every figure and quantitative claim
// of the paper (the per-experiment index of DESIGN.md).
package core

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Strategy is one of the paper's three approaches to uncovering useful
// structures (§III), plus the labeling machinery of §IV that represents
// them.
type Strategy int

// The strategies of §III and the labeling machinery of §IV.
const (
	Trimming Strategy = iota + 1
	Layering
	Remapping
	Labeling
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Trimming:
		return "trimming"
	case Layering:
		return "layering"
	case Remapping:
		return "remapping"
	case Labeling:
		return "labeling"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Table is a rendered experiment result: the rows a paper table or figure
// would show.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Render writes the table as aligned text.
func (t Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "## %s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		_, err := fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// Experiment regenerates one figure or quantitative claim of the paper.
type Experiment struct {
	ID       string
	Title    string
	PaperRef string   // which figure/section it reproduces
	Strategy Strategy // which strategy it exercises
	Run      func(seed int64) ([]Table, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("core: duplicate experiment id " + e.ID)
	}
	registry[e.ID] = e
}

// Registry lists all experiments sorted by ID.
func Registry() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, errors.New("core: unknown experiment " + id)
	}
	return e, nil
}

// RunAll runs every experiment with the seed and writes its tables to w.
func RunAll(w io.Writer, seed int64) error {
	for _, e := range Registry() {
		if _, err := fmt.Fprintf(w, "=== %s — %s (%s)\n", e.ID, e.Title, e.PaperRef); err != nil {
			return err
		}
		tables, err := e.Run(seed)
		if err != nil {
			return fmt.Errorf("core: experiment %s: %w", e.ID, err)
		}
		for _, t := range tables {
			if err := t.Render(w); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

func f(format string, args ...interface{}) string { return fmt.Sprintf(format, args...) }
