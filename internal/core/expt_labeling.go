package core

import (
	"structura/internal/distvec"
	"structura/internal/gen"
	"structura/internal/graph"
	"structura/internal/hypercube"
	"structura/internal/labeling"
	"structura/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "fig8",
		Title:    "Static labeling: CDS marking+pruning, MIS, neighbor-designated DS",
		PaperRef: "Fig. 8, §IV-A",
		Strategy: Labeling,
		Run:      runFig8,
	})
	register(Experiment{
		ID:       "fig9",
		Title:    "Safety levels in faulty hypercubes",
		PaperRef: "Fig. 9, §IV-C [32]",
		Strategy: Labeling,
		Run:      runFig9,
	})
	register(Experiment{
		ID:       "dynmis",
		Title:    "Dynamic MIS maintenance: O(1) expected adjustments",
		PaperRef: "§IV-C [30]",
		Strategy: Labeling,
		Run:      runDynMIS,
	})
	register(Experiment{
		ID:       "distvec",
		Title:    "Distance-vector labels: slow convergence and failure churn",
		PaperRef: "§IV-B",
		Strategy: Labeling,
		Run:      runDistVec,
	})
	register(Experiment{
		ID:       "views",
		Title:    "View inconsistency under mobility: stale Hello views in the MIS election",
		PaperRef: "§IV-C challenge",
		Strategy: Labeling,
		Run:      runViews,
	})
	register(Experiment{
		ID:       "hybrid",
		Title:    "Central control over distributed routing (augmented topology)",
		PaperRef: "§IV-C [31]",
		Strategy: Labeling,
		Run:      runHybrid,
	})
}

func runViews(seed int64) ([]Table, error) {
	r := stats.NewRand(seed)
	t := Table{
		Title:   "MIS election over 30 churning topologies (n=40, 4 densification rounds)",
		Columns: []string{"hello delay", "stale-view violations", "pure-churn violations", "avg repair changes"},
	}
	for _, maxLag := range []int{0, 1, 2, 4} {
		var stale, churn, repairs int
		const trials = 30
		for trial := 0; trial < trials; trial++ {
			n := 40
			g0 := gen.ErdosRenyi(r, n, 0.04)
			snapshots := []*graph.Graph{g0}
			cur := g0
			for k := 0; k < 4; k++ {
				next := cur.Clone()
				for j := 0; j < 8; j++ {
					u, v := r.Intn(n), r.Intn(n)
					if u != v && !next.HasEdge(u, v) {
						_ = next.AddEdge(u, v)
					}
				}
				snapshots = append(snapshots, next)
				cur = next
			}
			prio := make(labeling.Priority, n)
			for i, p := range r.Perm(n) {
				prio[i] = float64(p)
			}
			lag := make([]int, n)
			for i := range lag {
				if maxLag > 0 {
					lag[i] = r.Intn(maxLag + 1)
				}
			}
			res, err := labeling.ChurnMIS(snapshots, prio, lag, 0)
			if err != nil {
				return nil, err
			}
			// Attribute each violation: if the edge already existed in the
			// true topology when the later endpoint turned Black, a fresh
			// view would have prevented it (staleness); otherwise the edge
			// arrived after both were Black (pure churn, the dynamic-MIS
			// problem).
			edgeBorn := func(u, v int) int {
				for rd, snap := range snapshots {
					if snap.HasEdge(u, v) {
						return rd
					}
				}
				return len(snapshots)
			}
			for _, viol := range res.Violations {
				later := res.BlackRound[viol[0]]
				if res.BlackRound[viol[1]] > later {
					later = res.BlackRound[viol[1]]
				}
				// Decision in round `later` used snapshot index later-1
				// under lag 0.
				if edgeBorn(viol[0], viol[1]) <= later-1 {
					stale++
				} else {
					churn++
				}
			}
			_, changes, err := labeling.RepairMIS(cur, prio, res.Colors)
			if err != nil {
				return nil, err
			}
			repairs += changes
		}
		t.Rows = append(t.Rows, []string{
			f("0..%d rounds", maxLag),
			f("%d", stale),
			f("%d", churn),
			f("%.1f", float64(repairs)/float64(trials)),
		})
	}
	return []Table{t}, nil
}

func runHybrid(seed int64) ([]Table, error) {
	r := stats.NewRand(seed)
	t := Table{
		Title:   "Steering distributed distance-vector to central route choices",
		Columns: []string{"mechanism", "topology", "forced hops realized", "rounds"},
	}
	// Weight reassignment on a ring: force the long way around.
	ringN := 12
	ring := gen.Ring(ringN)
	parent := make([]int, ringN)
	parent[0] = -1
	for v := 1; v < ringN; v++ {
		parent[v] = v - 1
	}
	steered, err := distvec.SteerByWeights(ring, 0, parent)
	if err != nil {
		return nil, err
	}
	tab, err := distvec.Compute(steered, 0, 0)
	if err != nil {
		return nil, err
	}
	realized := 0
	for v := 1; v < ringN; v++ {
		if tab.NextHop[v] == parent[v] {
			realized++
		}
	}
	t.Rows = append(t.Rows, []string{
		"weight reassignment", f("ring n=%d", ringN),
		f("%d/%d", realized, ringN-1), f("%d", tab.Rounds),
	})
	// Fake-node insertion on random graphs: force a handful of detours.
	for _, n := range []int{20, 60} {
		g := gen.ErdosRenyi(r, n, 0.2)
		if !g.Connected() {
			continue
		}
		base, err := distvec.Compute(g, 0, 0)
		if err != nil {
			return nil, err
		}
		// Force three nodes onto a non-default neighbor.
		forced := map[int]int{}
		for v := 1; v < n && len(forced) < 3; v++ {
			g.EachNeighbor(v, func(u int, _ float64) {
				if _, done := forced[v]; done {
					return
				}
				if u != base.NextHop[v] && u != 0 {
					forced[v] = u
				}
			})
		}
		aug, err := distvec.SteerByFakeNodes(g, 0, forced)
		if err != nil {
			return nil, err
		}
		tab, err := distvec.Compute(aug.Graph, 0, 0)
		if err != nil {
			return nil, err
		}
		ok := 0
		if aug.NextHopsRealized(tab, forced) == nil {
			ok = len(forced)
		}
		t.Rows = append(t.Rows, []string{
			"fake-node insertion", f("ER n=%d", n),
			f("%d/%d", ok, len(forced)), f("%d", tab.Rounds),
		})
	}
	return []Table{t}, nil
}

func runFig8(seed int64) ([]Table, error) {
	g := labeling.Fig8Graph()
	prio := labeling.PriorityByID(6)
	marked := labeling.MarkCDS(g)
	pruned, err := labeling.PruneCDS(g, marked, prio)
	if err != nil {
		return nil, err
	}
	mis, err := labeling.DistributedMIS(g, prio)
	if err != nil {
		return nil, err
	}
	nds, err := labeling.NeighborDesignatedDS(g, prio)
	if err != nil {
		return nil, err
	}
	name := func(ids []int) string {
		letters := "ABCDEF"
		out := ""
		for _, v := range ids {
			out += string(letters[v])
		}
		return out
	}
	paper := Table{
		Title:   "Fig. 8 walkthrough (nodes A-F, priorities by ID)",
		Columns: []string{"labeling", "result", "paper"},
		Rows: [][]string{
			{"marking (black)", name(labeling.Members(marked, labeling.Black)), "all nodes except A"},
			{"after pruning", name(labeling.Members(pruned, labeling.Black)), "B, C, D"},
			{"MIS", name(labeling.Members(mis.Colors, labeling.Black)), "A, B, E"},
			{"neighbor-designated DS", name(labeling.Members(nds, labeling.Black)), "A, B, C (not CDS, not IS)"},
		},
	}
	// Random sweep: sizes and MIS rounds.
	r := stats.NewRand(seed)
	sweep := Table{
		Title:   "Random connected graphs: set sizes and MIS rounds",
		Columns: []string{"n", "marked CDS", "pruned CDS", "MIS size", "MIS rounds"},
	}
	for _, n := range []int{32, 128, 512} {
		var g2 = gen.ErdosRenyi(r, n, 4/float64(n)+0.02)
		prioN := make(labeling.Priority, n)
		for i, p := range r.Perm(n) {
			prioN[i] = float64(p)
		}
		marked := labeling.MarkCDS(g2)
		pruned, err := labeling.PruneCDS(g2, marked, prioN)
		if err != nil {
			return nil, err
		}
		mis, err := labeling.DistributedMIS(g2, prioN)
		if err != nil {
			return nil, err
		}
		sweep.Rows = append(sweep.Rows, []string{
			f("%d", n),
			f("%d", len(labeling.Members(marked, labeling.Black))),
			f("%d", len(labeling.Members(pruned, labeling.Black))),
			f("%d", len(labeling.Members(mis.Colors, labeling.Black))),
			f("%d", mis.Rounds),
		})
	}
	return []Table{paper, sweep}, nil
}

func runFig9(seed int64) ([]Table, error) {
	cube, res := hypercube.Fig9Cube()
	path, err := cube.Route(res, 0b1101, 0b0001)
	if err != nil {
		return nil, err
	}
	paper := Table{
		Title:   "Fig. 9 walkthrough (4-D cube, 3 faults; see Fig9Cube docs)",
		Columns: []string{"quantity", "value", "paper"},
		Rows: [][]string{
			{"route 1101 -> 0001", f("%04b", path), "selects 0101 over 1001"},
			{"level(0101)", f("%d", res.Levels[0b0101]), "annotated 2 (see discrepancy note)"},
			{"level(1001)", f("%d", res.Levels[0b1001]), "below 0101's"},
			{"rounds", f("%d", res.Rounds), "at most n-1 = 3"},
		},
	}
	// Sweep: guaranteed-routing success vs fault count and dimension.
	r := stats.NewRand(seed)
	sweep := Table{
		Title:   "Random faults: safety-level routing (guaranteed cases always optimal)",
		Columns: []string{"dim", "faults", "safe nodes", "rounds", "guaranteed routes optimal", "vector-guided optimal"},
	}
	for _, dim := range []int{4, 6, 8} {
		for _, faultFrac := range []float64{0.05, 0.15} {
			nf := int(faultFrac * float64(int(1)<<dim))
			if nf < 1 {
				nf = 1
			}
			faults := map[int]bool{}
			for len(faults) < nf {
				faults[r.Intn(1<<dim)] = true
			}
			var fl []int
			for x := range faults {
				fl = append(fl, x)
			}
			c, err := hypercube.New(dim, fl)
			if err != nil {
				return nil, err
			}
			sl := c.SafetyLevels()
			vec := c.SafetyVectors()
			safe := 0
			for v := 0; v < c.N(); v++ {
				if c.Safe(sl, v) {
					safe++
				}
			}
			var gOK, gAll, vOK, vAll int
			for trial := 0; trial < 400; trial++ {
				u, d := r.Intn(c.N()), r.Intn(c.N())
				if u == d || c.Faulty(u) || c.Faulty(d) {
					continue
				}
				h := hypercube.Distance(u, d)
				if sl.Levels[u] >= h {
					gAll++
					if p, err := c.Route(sl, u, d); err == nil && len(p)-1 == h {
						gOK++
					}
				}
				vAll++
				if p, err := c.RouteByVector(vec, u, d); err == nil && len(p)-1 == h {
					vOK++
				}
			}
			sweep.Rows = append(sweep.Rows, []string{
				f("%d", dim), f("%d", nf), f("%d/%d", safe, c.N()), f("%d", sl.Rounds),
				f("%d/%d", gOK, gAll), f("%d/%d", vOK, vAll),
			})
		}
	}
	return []Table{paper, sweep}, nil
}

func runDynMIS(seed int64) ([]Table, error) {
	r := stats.NewRand(seed)
	t := Table{
		Title:   "Adjustments per topology change vs full rebuild rounds",
		Columns: []string{"n", "updates", "avg adjustments/update", "max", "full-rebuild MIS rounds"},
	}
	for _, n := range []int{100, 400, 1600} {
		g := gen.ErdosRenyi(r, n, 4/float64(n))
		d, err := labeling.NewDynamicMIS(g, r)
		if err != nil {
			return nil, err
		}
		var total, maxF, updates int
		for step := 0; step < 400; step++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			var flips int
			if d.Graph().HasEdge(u, v) {
				flips, err = d.RemoveEdge(u, v)
			} else {
				flips, err = d.AddEdge(u, v)
			}
			if err != nil {
				return nil, err
			}
			total += flips
			if flips > maxF {
				maxF = flips
			}
			updates++
		}
		// Cost of the alternative: rebuild from scratch.
		prio := make(labeling.Priority, n)
		for i, p := range r.Perm(n) {
			prio[i] = float64(p)
		}
		mis, err := labeling.DistributedMIS(g, prio)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			f("%d", n), f("%d", updates),
			f("%.2f", float64(total)/float64(updates)), f("%d", maxF),
			f("%d", mis.Rounds),
		})
	}
	return []Table{t}, nil
}

func runDistVec(seed int64) ([]Table, error) {
	r := stats.NewRand(seed)
	conv := Table{
		Title:   "Convergence rounds grow with diameter (the slow dynamic label)",
		Columns: []string{"topology", "n", "diameter", "rounds"},
	}
	for _, n := range []int{16, 64, 256} {
		g := gen.Path(n)
		tab, err := distvec.Compute(g, 0, 0)
		if err != nil {
			return nil, err
		}
		conv.Rows = append(conv.Rows, []string{"path", f("%d", n), f("%d", n-1), f("%d", tab.Rounds)})
	}
	for _, n := range []int{64, 256} {
		g, err := gen.BarabasiAlbert(r, n, 2)
		if err != nil {
			return nil, err
		}
		diam, _ := g.Diameter()
		tab, err := distvec.Compute(g, 0, 0)
		if err != nil {
			return nil, err
		}
		conv.Rows = append(conv.Rows, []string{"scale-free", f("%d", n), f("%d", diam), f("%d", tab.Rounds)})
	}
	churn := Table{
		Title:   "Label churn after a link failure on an n-ring (dest 0, fail (0,1))",
		Columns: []string{"n", "labels changed", "new dist(1)"},
	}
	for _, n := range []int{8, 32, 128} {
		g := gen.Ring(n)
		tab, err := distvec.Compute(g, 0, 0)
		if err != nil {
			return nil, err
		}
		nt, changed, err := distvec.ReconvergeAfterFailure(g, tab, 0, 1, 0)
		if err != nil {
			return nil, err
		}
		churn.Rows = append(churn.Rows, []string{f("%d", n), f("%d", changed), f("%.0f", nt.Dist[1])})
	}
	return []Table{conv, churn}, nil
}
