package core

import (
	"structura/internal/centrality"
	"structura/internal/forwarding"
	"structura/internal/stats"
	"structura/internal/temporal"
	"structura/internal/trimming"
)

func init() {
	register(Experiment{
		ID:       "trim",
		Title:    "Static temporal trimming preserves earliest completion",
		PaperRef: "§III-A, Fig. 2(c)",
		Strategy: Trimming,
		Run:      runTrim,
	})
	register(Experiment{
		ID:       "tour",
		Title:    "TOUR time-varying forwarding sets (shrink over time)",
		PaperRef: "§III-A [13]",
		Strategy: Trimming,
		Run:      runTour,
	})
}

func runTrim(seed int64) ([]Table, error) {
	// Part 1: the paper's Fig. 2 walkthrough.
	eg := temporal.Fig2EG()
	prio := trimming.PriorityByID(4)
	okAD, err := trimming.CanIgnoreNeighbor(eg, 0, 3, prio, trimming.Options{})
	if err != nil {
		return nil, err
	}
	okD, err := trimming.CanTrimNode(eg, 3, prio, trimming.Options{})
	if err != nil {
		return nil, err
	}
	// Extension: the probabilistic rule on a 50%-reliable replacement path.
	probEG := eg.Clone()
	for _, e := range [][2]int{{0, 1}, {1, 2}} {
		for _, tm := range probEG.Labels(e[0], e[1]) {
			if err := probEG.AddWeightedContact(e[0], e[1], tm, 0.5); err != nil {
				return nil, err
			}
		}
	}
	probStrict, err := trimming.CanIgnoreNeighborProb(probEG, 0, 3, prio, trimming.ProbOptions{Confidence: 1})
	if err != nil {
		return nil, err
	}
	probLoose, err := trimming.CanIgnoreNeighborProb(probEG, 0, 3, prio, trimming.ProbOptions{Confidence: 0.2})
	if err != nil {
		return nil, err
	}
	paper := Table{
		Title:   "Fig. 2 walkthrough (A=0 ... D=3, priorities by ID)",
		Columns: []string{"decision", "result", "paper"},
		Rows: [][]string{
			{"A can ignore neighbor D", f("%v", okAD), "yes (§III-A)"},
			{"D fully trimmable", f("%v", okD), "not claimed (C-0->D-1->A has no replacement)"},
			{"probabilistic rule, 50%-reliable A-B-C, confidence 1.0", f("%v", probStrict), "open question of §III-A"},
			{"probabilistic rule, 50%-reliable A-B-C, confidence 0.2", f("%v", probLoose), "open question of §III-A"},
		},
	}
	// Part 2: random EGs, three priority schemes (the DESIGN.md ablation).
	r := stats.NewRand(seed)
	sweep := Table{
		Title:   "Random EGs (n=8, horizon=8, 40 contacts): nodes trimmed, preservation verified",
		Columns: []string{"priority scheme", "trials", "total trimmed", "preservation violations"},
	}
	schemes := []struct {
		name string
		make func(eg *temporal.EG) trimming.Priorities
	}{
		{"node ID", func(*temporal.EG) trimming.Priorities { return trimming.PriorityByID(8) }},
		{"degree", func(eg *temporal.EG) trimming.Priorities {
			deg := make([]float64, 8)
			for v := 0; v < 8; v++ {
				deg[v] = float64(eg.Degree(v))
			}
			return trimming.PriorityByScore(deg)
		}},
		{"contact count", func(eg *temporal.EG) trimming.Priorities {
			cc := make([]float64, 8)
			for v := 0; v < 8; v++ {
				eg.EachNeighbor(v, func(u int) bool {
					cc[v] += float64(len(eg.Labels(v, u)))
					return true
				})
			}
			return trimming.PriorityByScore(cc)
		}},
		{"betweenness", func(eg *temporal.EG) trimming.Priorities {
			// The paper's other suggested strategic priority.
			return trimming.PriorityByScore(centrality.Betweenness(eg.Footprint()))
		}},
	}
	const trials = 15
	egs := make([]*temporal.EG, trials)
	for i := range egs {
		e, err := temporal.New(8, 8)
		if err != nil {
			return nil, err
		}
		for k := 0; k < 40; k++ {
			u, v := r.Intn(8), r.Intn(8)
			if u != v {
				_ = e.AddContact(u, v, r.Intn(8))
			}
		}
		egs[i] = e
	}
	for _, sc := range schemes {
		var trimmed, violations int
		for _, e := range egs {
			res, err := trimming.TrimNodes(e, sc.make(e), trimming.Options{})
			if err != nil {
				return nil, err
			}
			trimmed += len(res.RemovedNodes)
			if err := trimming.VerifyPreservation(e, res.Trimmed, res.RemovedNodes); err != nil {
				violations++
			}
		}
		sweep.Rows = append(sweep.Rows, []string{
			sc.name, f("%d", trials), f("%d", trimmed), f("%d", violations),
		})
	}
	return []Table{paper, sweep}, nil
}

func runTour(seed int64) ([]Table, error) {
	// Forwarding-set shrinkage for a slow carrier.
	lambda := []float64{0.05, 0.2, 0.5, 1.0, 0.08, 0.3, 0}
	pol, err := forwarding.NewTOUR(lambda, 1, 40, 0.8)
	if err != nil {
		return nil, err
	}
	shrink := Table{
		Title:   "Forwarding set of carrier 0 (lambda=0.05) over time",
		Columns: []string{"t", "set size", "members"},
	}
	for _, tm := range []int{0, 10, 20, 30, 38, 40} {
		set := pol.ForwardingSet(0, tm)
		shrink.Rows = append(shrink.Rows, []string{f("%d", tm), f("%d", len(set)), f("%v", set)})
	}
	// Delivered utility comparison across policies on exponential traces.
	r := stats.NewRand(seed)
	const (
		n        = 12
		horizon  = 300
		deadline = 200
		trials   = 40
	)
	dst := n - 1
	rates := make([]float64, n)
	rates[0] = 0.01
	for i := 1; i < dst; i++ {
		rates[i] = 0.02 + 0.04*float64(i)
	}
	type agg struct {
		utility   float64
		delivered int
		forwards  int
	}
	results := map[string]*agg{}
	policies := []forwarding.Policy{forwarding.DirectDelivery{}, forwarding.Epidemic{}, forwarding.FirstContact{}}
	tourPol, err := forwarding.NewTOUR(rates, 1, deadline, 1)
	if err != nil {
		return nil, err
	}
	policies = append(policies, tourPol)
	// Extension (the paper's multi-copy question): copy-varying sets.
	rateMatrix := make([][]float64, n)
	for i := range rateMatrix {
		rateMatrix[i] = make([]float64, n)
	}
	for i := 0; i < dst; i++ {
		rateMatrix[i][dst], rateMatrix[dst][i] = rates[i], rates[i]
		for j := 0; j < dst; j++ {
			if i != j {
				rateMatrix[i][j] = 0.05
			}
		}
	}
	cvPol, err := forwarding.NewCopyVarying(rateMatrix, dst)
	if err != nil {
		return nil, err
	}
	policies = append(policies, cvPol)
	for trial := 0; trial < trials; trial++ {
		eg, err := temporal.New(n, horizon)
		if err != nil {
			return nil, err
		}
		for i := 0; i < dst; i++ {
			if rates[i] <= 0 {
				continue
			}
			tm := 0.0
			for {
				tm += stats.Exponential(r, rates[i])
				if int(tm) >= horizon {
					break
				}
				_ = eg.AddContact(i, dst, int(tm))
			}
		}
		for i := 0; i < dst; i++ {
			for j := i + 1; j < dst; j++ {
				tm := 0.0
				for {
					tm += stats.Exponential(r, 0.05)
					if int(tm) >= horizon {
						break
					}
					_ = eg.AddContact(i, j, int(tm))
				}
			}
		}
		for _, p := range policies {
			tokens := 0
			if p.Name() == "copy-varying" {
				tokens = 4
			}
			m, err := forwarding.Simulate(eg, forwarding.Message{Src: 0, Dst: dst}, p, tokens)
			if err != nil {
				return nil, err
			}
			a := results[p.Name()]
			if a == nil {
				a = &agg{}
				results[p.Name()] = a
			}
			a.forwards += m.Forwards
			if m.Delivered {
				a.delivered++
				a.utility += tourPol.DeliveredUtility(m.DeliveryTime) - float64(m.Forwards-1)*tourPol.Cost
			}
		}
	}
	comp := Table{
		Title:   "Net delivered utility over 40 messages (utility decays linearly; each relay costs 1)",
		Columns: []string{"policy", "delivered", "net utility", "total forwards"},
	}
	for _, p := range policies {
		a := results[p.Name()]
		comp.Rows = append(comp.Rows, []string{
			p.Name(), f("%d/%d", a.delivered, trials), f("%.0f", a.utility), f("%d", a.forwards),
		})
	}
	return []Table{shrink, comp}, nil
}
