package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"centrality", "distvec", "dynmis",
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"hybrid", "markov", "maxflow", "smallworld", "tour", "trace", "trim", "udgtsp", "views",
	}
	got := Registry()
	if len(got) != len(want) {
		ids := make([]string, len(got))
		for i, e := range got {
			ids[i] = e.ID
		}
		t.Fatalf("registry has %d experiments %v, want %d", len(got), ids, len(want))
	}
	for i, e := range got {
		if e.ID != want[i] {
			t.Errorf("registry[%d] = %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.PaperRef == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
		if e.Strategy < Trimming || e.Strategy > Labeling {
			t.Errorf("experiment %s has no strategy", e.ID)
		}
	}
}

func TestLookup(t *testing.T) {
	e, err := Lookup("fig2")
	if err != nil || e.ID != "fig2" {
		t.Errorf("Lookup(fig2) = %v, %v", e.ID, err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown ID should error")
	}
}

func TestStrategyString(t *testing.T) {
	tests := map[Strategy]string{
		Trimming:    "trimming",
		Layering:    "layering",
		Remapping:   "remapping",
		Labeling:    "labeling",
		Strategy(9): "Strategy(9)",
	}
	for s, want := range tests {
		if s.String() != want {
			t.Errorf("%d.String() = %s, want %s", s, s.String(), want)
		}
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{
		Title:   "demo",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"x", "1"}, {"yyyy", "2"}},
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"## demo", "a     long-column", "yyyy  2"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// Every experiment must run cleanly and yield at least one non-empty table.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tables, err := e.Run(42)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tab := range tables {
				if len(tab.Columns) == 0 || len(tab.Rows) == 0 {
					t.Errorf("%s: empty table %q", e.ID, tab.Title)
				}
				for _, row := range tab.Rows {
					if len(row) > len(tab.Columns) {
						t.Errorf("%s: row wider than header in %q", e.ID, tab.Title)
					}
				}
			}
		})
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	// Same seed, same tables, for EVERY experiment (the determinism
	// contract of DESIGN.md).
	for _, exp := range Registry() {
		e, err := Lookup(exp.ID)
		if err != nil {
			t.Fatal(err)
		}
		a, err := e.Run(7)
		if err != nil {
			t.Fatal(err)
		}
		b, err := e.Run(7)
		if err != nil {
			t.Fatal(err)
		}
		var ba, bb bytes.Buffer
		for _, tab := range a {
			_ = tab.Render(&ba)
		}
		for _, tab := range b {
			_ = tab.Render(&bb)
		}
		if ba.String() != bb.String() {
			t.Errorf("%s not deterministic", e.ID)
		}
	}
}

func TestRunAll(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAll(&buf, 42); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, e := range Registry() {
		if !strings.Contains(out, "=== "+e.ID) {
			t.Errorf("RunAll output missing %s", e.ID)
		}
	}
}
