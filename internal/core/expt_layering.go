package core

import (
	"structura/internal/gen"
	"structura/internal/layering"
	"structura/internal/maxflow"
	"structura/internal/reversal"
	"structura/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "fig3",
		Title:    "Nested scale-free structure of a Gnutella-like overlay",
		PaperRef: "Fig. 3, §III-B [11]",
		Strategy: Layering,
		Run:      runFig3,
	})
	register(Experiment{
		ID:       "fig4",
		Title:    "Link reversal after a broken link (full/partial/binary)",
		PaperRef: "Fig. 4, §III-B / §IV-B",
		Strategy: Layering,
		Run:      runFig4,
	})
	register(Experiment{
		ID:       "fig7",
		Title:    "Degree vs nested-degree level labeling",
		PaperRef: "Fig. 7, §IV-A",
		Strategy: Layering,
		Run:      runFig7,
	})
	register(Experiment{
		ID:       "maxflow",
		Title:    "Height-based max-flow vs Dinic baseline",
		PaperRef: "§III-B [17]",
		Strategy: Layering,
		Run:      runMaxflow,
	})
}

func runFig3(seed int64) ([]Table, error) {
	r := stats.NewRand(seed)
	cfg := gen.DefaultGnutella()
	g, err := gen.Gnutella(r, cfg)
	if err != nil {
		return nil, err
	}
	scc, _ := g.LargestSCC()
	und := scc.Undirected()
	shape := Table{
		Title:   "Overlay shape (substitute for the SNAP p2p-Gnutella08 snapshot)",
		Columns: []string{"quantity", "value"},
		Rows: [][]string{
			{"peers", f("%d", g.N())},
			{"links", f("%d", g.M())},
			{"largest SCC", f("%d", scc.N())},
		},
	}
	rep, err := layering.CheckNSF(und, 0.5, 6)
	if err != nil {
		return nil, err
	}
	nsf := Table{
		Title:   "Power-law fits while iteratively removing local lowest-degree peers (to 50%)",
		Columns: []string{"peel round", "nodes", "edges", "alpha", "KS"},
	}
	for i, lvl := range rep.Levels {
		nsf.Rows = append(nsf.Rows, []string{
			f("%d", i), f("%d", lvl.N), f("%d", lvl.M),
			f("%.2f", lvl.Fit.Alpha), f("%.3f", lvl.Fit.KS),
		})
	}
	nsf.Rows = append(nsf.Rows, []string{"", "", "", f("stddev %.3f", rep.AlphaStdDev), f("NSF(0.5): %v", rep.IsNSF(0.5))})
	return []Table{shape, nsf}, nil
}

func runFig4(int64) ([]Table, error) {
	// Part 1: the exact Fig. 4 cascade.
	net, err := reversal.Fig4Network(reversal.Full)
	if err != nil {
		return nil, err
	}
	net.RemoveLink(0, 3)
	st := net.Stabilize(100)
	paper := Table{
		Title:   "Fig. 4: full reversal after breaking (A, D)",
		Columns: []string{"quantity", "value", "paper"},
		Rows: [][]string{
			{"reversal events", f("%d", st.NodeReversals), "states (b)-(e): A, B, A"},
			{"A reversed", f("%dx", st.PerNode[0]), "multiple rounds, like node A"},
			{"destination-oriented", f("%v", net.IsDestinationOriented()), "yes (Fig. 4e)"},
		},
	}
	// Part 2: O(n^2) scaling on rings for all three variants.
	sweep := Table{
		Title:   "Total node reversals on an n-ring after breaking the short link",
		Columns: []string{"n", "full", "partial", "binary (all-1)", "binary (all-0)"},
	}
	for _, n := range []int{8, 16, 32, 64} {
		alphas := make([]int, n)
		for i := 1; i < n; i++ {
			alphas[i] = i
		}
		row := []string{f("%d", n)}
		for _, mode := range []reversal.Mode{reversal.Full, reversal.Partial} {
			net, err := reversal.NewNetwork(gen.Ring(n), alphas, 0, mode)
			if err != nil {
				return nil, err
			}
			net.RemoveLink(0, 1)
			s := net.Stabilize(1000000)
			if !s.Converged {
				row = append(row, "diverged")
				continue
			}
			row = append(row, f("%d", s.NodeReversals))
		}
		for _, label := range []int{1, 0} {
			b, err := reversal.NewBinaryLR(gen.Ring(n), alphas, 0, label)
			if err != nil {
				return nil, err
			}
			b.RemoveLink(0, 1)
			s := b.Stabilize(1000000)
			if !s.Converged {
				row = append(row, "diverged")
				continue
			}
			row = append(row, f("%d", s.NodeReversals))
		}
		sweep.Rows = append(sweep.Rows, row)
	}
	return []Table{paper, sweep}, nil
}

func runFig7(seed int64) ([]Table, error) {
	r := stats.NewRand(seed)
	g, err := gen.BarabasiAlbert(r, 400, 2)
	if err != nil {
		return nil, err
	}
	degL := layering.DegreeLevels(g)
	nstL := layering.NestedLevels(g)
	t := Table{
		Title:   "Level labelings of a 400-node Barabasi-Albert graph",
		Columns: []string{"labeling", "depth", "top-level nodes", "level steps (avg)", "delivery hops (avg)"},
	}
	for _, m := range []struct {
		name   string
		levels []int
	}{{"plain degree (Fig. 7a)", degL}, {"nested adjusted degree (Fig. 7b)", nstL}} {
		var costSum float64
		var count int
		for p := 0; p < 40; p++ {
			for s := 0; s < 40; s++ {
				c, err := layering.PushPullCost(m.levels, p, s)
				if err != nil {
					return nil, err
				}
				costSum += float64(c)
				count++
			}
		}
		ps, err := layering.NewPubSub(g, m.levels)
		if err != nil {
			return nil, err
		}
		var hopSum, pairs int
		for p := 0; p < 40; p++ {
			for s := 0; s < 40; s++ {
				_, hops, err := ps.Deliver(p, s)
				if err != nil {
					return nil, err
				}
				hopSum += hops
				pairs++
			}
		}
		t.Rows = append(t.Rows, []string{
			m.name,
			f("%d", layering.Depth(m.levels)),
			f("%d", len(layering.TopLevelNodes(m.levels))),
			f("%.1f", costSum/float64(count)),
			f("%.1f", float64(hopSum)/float64(pairs)),
		})
	}
	return []Table{t}, nil
}

func runMaxflow(seed int64) ([]Table, error) {
	r := stats.NewRand(seed)
	t := Table{
		Title:   "Push-relabel (heights) vs Dinic on random capacitated digraphs",
		Columns: []string{"n", "arcs", "push-relabel flow", "dinic flow", "equal", "height invariant"},
	}
	for _, n := range []int{16, 64, 128} {
		nw, err := maxflow.NewNetwork(n)
		if err != nil {
			return nil, err
		}
		arcs := n * 4
		for k := 0; k < arcs; k++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			_ = nw.AddArc(u, v, int64(r.Intn(50)))
		}
		pr, err := nw.PushRelabel(0, n-1)
		if err != nil {
			return nil, err
		}
		dn, err := nw.Dinic(0, n-1)
		if err != nil {
			return nil, err
		}
		inv := "ok"
		if err := nw.VerifyHeightOrientation(pr); err != nil {
			inv = err.Error()
		}
		t.Rows = append(t.Rows, []string{
			f("%d", n), f("%d", arcs), f("%d", pr.Value), f("%d", dn.Value),
			f("%v", pr.Value == dn.Value), inv,
		})
	}
	return []Table{t}, nil
}
