package core

import (
	"structura/internal/distvec"
	"structura/internal/gen"
	"structura/internal/labeling"
	"structura/internal/runtime"
	"structura/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "trace",
		Title:    "Kernel convergence traces: per-round observer on the labeling schemes",
		PaperRef: "§IV kernel accounting",
		Strategy: Labeling,
		Run:      runTrace,
	})
}

// runTrace demonstrates the kernel's RoundObserver hook: it re-runs the
// paper's canonical fast (MIS) and slow (distance-vector) dynamic labelings
// with an observer attached and renders the per-round convergence trace —
// changed nodes and message spend, round by round.
func runTrace(seed int64) ([]Table, error) {
	r := stats.NewRand(seed)

	traceTable := func(title string) (*Table, runtime.RoundObserver) {
		t := &Table{
			Title:   title,
			Columns: []string{"round", "changed nodes", "messages", "cumulative messages"},
		}
		total := 0
		return t, func(rs runtime.RoundStats) {
			total += rs.Messages
			t.Rows = append(t.Rows, []string{
				f("%d", rs.Round), f("%d", rs.Changed), f("%d", rs.Messages), f("%d", total),
			})
		}
	}

	// Fast labeling: the MIS election finishes in a handful of rounds, the
	// changed-node count collapsing geometrically.
	n := 300
	g := gen.ErdosRenyi(r, n, 4/float64(n)+0.02)
	prio := make(labeling.Priority, n)
	for i, p := range r.Perm(n) {
		prio[i] = float64(p)
	}
	misTab, misObs := traceTable(f("MIS election on ER n=%d (fast static labeling)", n))
	if _, err := labeling.DistributedMIS(g, prio, runtime.WithObserver(misObs)); err != nil {
		return nil, err
	}

	// Slow labeling: distance-vector on a path re-labels a wave of nodes
	// every round for diameter rounds — the paper's §IV-B contrast.
	pathN := 24
	dvTab, dvObs := traceTable(f("Distance-vector to node 0 on path n=%d (slow dynamic labeling)", pathN))
	if _, err := distvec.Compute(gen.Path(pathN), 0, 0, runtime.WithObserver(dvObs)); err != nil {
		return nil, err
	}

	return []Table{*misTab, *dvTab}, nil
}
