package core

import (
	"structura/internal/embedding"
	"structura/internal/forwarding"
	"structura/internal/fspace"
	"structura/internal/geo"
	"structura/internal/mobility"
	"structura/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "fig5",
		Title:    "Greedy routing with holes: Euclidean vs remapped coordinates",
		PaperRef: "Fig. 5, §III-C [19][20]",
		Strategy: Remapping,
		Run:      runFig5,
	})
	register(Experiment{
		ID:       "fig6",
		Title:    "F-space generalized-hypercube routing over contact traces",
		PaperRef: "Fig. 6, §III-C [21]",
		Strategy: Remapping,
		Run:      runFig6,
	})
}

func runFig5(seed int64) ([]Table, error) {
	r := stats.NewRand(seed)
	pts := geo.RandomPoints(r, 400, 20, 20)
	holes := []geo.Hole{
		{Center: geo.Point{X: 6, Y: 6}, Radius: 3},
		{Center: geo.Point{X: 14, Y: 12}, Radius: 3.5},
		{Center: geo.Point{X: 6, Y: 15}, Radius: 2.5},
	}
	kept, _ := geo.CarveHoles(pts, holes)
	g := geo.UnitDiskGraph(kept, 2.0)
	comps := g.Components()
	keep := map[int]bool{}
	for _, v := range comps[0] {
		keep[v] = true
	}
	sub, oldIDs := g.Subgraph(keep)
	subPts := make([]geo.Point, sub.N())
	for i, old := range oldIDs {
		subPts[i] = kept[old]
	}
	emb, err := embedding.NewTreeEmbedding(sub, 0)
	if err != nil {
		return nil, err
	}
	polar := emb.PolarCoordinates(1)
	const trials = 600
	routers := []struct {
		name  string
		route geo.Route
	}{
		{"Euclidean greedy (gets stuck at holes)", func(s, d int) ([]int, error) {
			return geo.GreedyRoute(sub, subPts, s, d)
		}},
		{"tree-metric greedy (guaranteed)", emb.GreedyRoute},
		{"hyperbolic-polar greedy", func(s, d int) ([]int, error) {
			return embedding.GreedyRouteMetric(sub, func(u, v int) float64 {
				return embedding.HyperbolicDistPolar(polar[u], polar[v])
			}, s, d)
		}},
	}
	t := Table{
		Title:   f("Delivery over %d random pairs (n=%d, 3 carved holes)", trials, sub.N()),
		Columns: []string{"router", "delivery ratio", "avg hops"},
	}
	for _, rt := range routers {
		st := geo.Evaluate(stats.NewRand(seed+1), sub.N(), trials, rt.route)
		t.Rows = append(t.Rows, []string{rt.name, f("%.3f", st.Ratio()), f("%.1f", st.AvgHops)})
	}
	return []Table{t}, nil
}

func runFig6(seed int64) ([]Table, error) {
	// Population: 3 individuals per community of the (2,2,3) feature space.
	space := fspace.Fig6Space()
	var profiles []mobility.FeatureProfile
	for g := 0; g < 2; g++ {
		for o := 0; o < 2; o++ {
			for c := 0; c < 3; c++ {
				for k := 0; k < 3; k++ {
					profiles = append(profiles, mobility.FeatureProfile{g, o, c})
				}
			}
		}
	}
	shape := Table{
		Title:   "F-space shape (gender x occupation x nationality = 2x2x3)",
		Columns: []string{"quantity", "value"},
	}
	hyper := space.Graph()
	a, _ := space.ID([]int{0, 0, 0})
	b, _ := space.ID([]int{1, 1, 2})
	routes, err := space.DisjointRoutes(a, b)
	if err != nil {
		return nil, err
	}
	shape.Rows = [][]string{
		{"communities", f("%d", space.N())},
		{"strong links", f("%d", hyper.M())},
		{"diameter (features)", f("%d", len(space.Dims()))},
		{"node-disjoint shortest paths (000 -> 112)", f("%d", len(routes))},
	}
	r := stats.NewRand(seed)
	const trials = 30
	type agg struct {
		delivered, delaySum, copies, forwards int
	}
	results := map[string]*agg{}
	names := []string{}
	for trial := 0; trial < trials; trial++ {
		eg, err := mobility.FeatureContacts(r, mobility.FeatureContactConfig{
			Profiles: profiles, BaseProb: 0.2, Decay: 0.35, Steps: 200,
		})
		if err != nil {
			return nil, err
		}
		src := r.Intn(len(profiles))
		dst := r.Intn(len(profiles))
		if src == dst {
			continue
		}
		grad, err := fspace.NewGradientPolicy(space, profiles, profiles[dst])
		if err != nil {
			return nil, err
		}
		multi, err := fspace.NewMultipathPolicy(space, profiles, profiles[dst])
		if err != nil {
			return nil, err
		}
		policies := []forwarding.Policy{
			forwarding.DirectDelivery{}, forwarding.Epidemic{}, grad, multi,
		}
		for _, p := range policies {
			m, err := forwarding.Simulate(eg, forwarding.Message{Src: src, Dst: dst}, p, 0)
			if err != nil {
				return nil, err
			}
			ag := results[p.Name()]
			if ag == nil {
				ag = &agg{}
				results[p.Name()] = ag
				names = append(names, p.Name())
			}
			ag.copies += m.Copies
			ag.forwards += m.Forwards
			if m.Delivered {
				ag.delivered++
				ag.delaySum += m.DeliveryTime
			}
		}
	}
	comp := Table{
		Title:   f("Delivery over %d random messages on feature-driven contact traces", trials),
		Columns: []string{"policy", "delivered", "avg delay", "avg copies", "avg forwards"},
	}
	for _, name := range names {
		ag := results[name]
		delay := "-"
		if ag.delivered > 0 {
			delay = f("%.1f", float64(ag.delaySum)/float64(ag.delivered))
		}
		comp.Rows = append(comp.Rows, []string{
			name, f("%d/%d", ag.delivered, trials), delay,
			f("%.1f", float64(ag.copies)/float64(trials)),
			f("%.1f", float64(ag.forwards)/float64(trials)),
		})
	}
	return []Table{shape, comp}, nil
}
