package partition

import (
	"structura/internal/async"
)

// ExchangeStats accumulates the ghost-exchange traffic of a sharded run:
// how many boundary values (and bytes) crossed shards, per round and in
// total. Attach with WithExchangeStats; the collector survives partition
// rebuilds under churn, so the totals cover the whole run.
type ExchangeStats struct {
	Rounds         int   // exchange rounds observed (one per kernel round)
	Values         int64 // boundary values shipped, total
	Bytes          int64 // Values x state size
	MaxRoundValues int   // largest single-round exchange
}

// record folds one round's flow matrix into the totals.
func (es *ExchangeStats) record(flows []int32, valueBytes int) {
	es.Rounds++
	total := 0
	for _, f := range flows {
		total += int(f)
	}
	es.Values += int64(total)
	es.Bytes += int64(total) * int64(valueBytes)
	if total > es.MaxRoundValues {
		es.MaxRoundValues = total
	}
}

// ValuesPerRound is the mean boundary values exchanged per round.
func (es *ExchangeStats) ValuesPerRound() float64 {
	if es.Rounds == 0 {
		return 0
	}
	return float64(es.Values) / float64(es.Rounds)
}

// BytesPerRound is the mean bytes exchanged per round.
func (es *ExchangeStats) BytesPerRound() float64 {
	if es.Rounds == 0 {
		return 0
	}
	return float64(es.Bytes) / float64(es.Rounds)
}

// LinkModel prices the ghost exchange over inter-shard links with realistic
// latency: each round, every shard pair that exchanged values draws a delay
// from the async executor's seeded per-link distributions (pure in (seed,
// from, to, round)), and the round barrier waits for the slowest active
// link. Attach with WithLinkModel. The model makes a shard cluster with
// WAN-like latency just a Delay configuration — the same vocabulary the
// event-driven executor uses for per-message delivery.
type LinkModel struct {
	Delay async.Delay // per-link delay distribution
	Seed  uint64      // draw seed; same seed -> same latency trace

	// Accumulated over the run:
	Rounds     int         // rounds with cross-shard traffic
	TotalTicks async.Ticks // sum of per-round slowest-link delays
	MaxRound   async.Ticks // worst single round
}

// record prices one round's flow matrix.
func (lm *LinkModel) record(round int, flows []int32, k int) {
	var worst async.Ticks
	for s := 0; s < k; s++ {
		for t := 0; t < k; t++ {
			if s == t || flows[s*k+t] <= 0 {
				continue
			}
			d := lm.Delay.Draw(lm.Seed, s, t, uint64(round), 0)
			if d > worst {
				worst = d
			}
		}
	}
	if worst > 0 {
		lm.Rounds++
		lm.TotalTicks += worst
		if worst > lm.MaxRound {
			lm.MaxRound = worst
		}
	}
}

// MeanTicks is the mean per-round barrier latency over rounds with traffic.
func (lm *LinkModel) MeanTicks() float64 {
	if lm.Rounds == 0 {
		return 0
	}
	return float64(lm.TotalTicks) / float64(lm.Rounds)
}
