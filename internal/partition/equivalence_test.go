// Package partition_test pins the tentpole claim: sharded execution is
// bit-identical to the unsharded kernel for the real engines (labeling,
// distvec, centrality, layering, hypercube) across shard counts, worker
// counts, kernel modes (full and delta), and fault schedules.
package partition_test

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"structura/internal/centrality"
	"structura/internal/distvec"
	"structura/internal/gen"
	"structura/internal/graph"
	"structura/internal/hypercube"
	"structura/internal/labeling"
	"structura/internal/layering"
	"structura/internal/partition"
	"structura/internal/runtime"
	"structura/internal/sim"
	"structura/internal/stats"
)

// engineOutcome reduces a run to a comparable fingerprint: final labels
// (exact bits for floats), round count, per-round changed counts, error.
type engineOutcome struct {
	labels  string
	rounds  int
	history []int
	err     string
}

func fingerprint(labels fmt.Stringer, st runtime.Stats, err error) engineOutcome {
	out := engineOutcome{rounds: st.Rounds}
	if labels != nil {
		out.labels = labels.String()
	}
	for _, rs := range st.History {
		out.history = append(out.history, rs.Changed)
	}
	if err != nil {
		out.err = err.Error()
	}
	return out
}

type intLabels []int

func (l intLabels) String() string { return fmt.Sprint([]int(l)) }

type floatLabels []float64

func (l floatLabels) String() string {
	out := make([]uint64, len(l))
	for i, f := range l {
		out[i] = math.Float64bits(f)
	}
	return fmt.Sprint(out)
}

func colorLabels(c []labeling.Color) intLabels {
	out := make(intLabels, len(c))
	for i, v := range c {
		out[i] = int(v)
	}
	return out
}

// engines enumerates four of the five engines as closures over shared
// inputs (the hypercube engine builds its own topology; see the dedicated
// test below).
func engines(g *graph.Graph, prio labeling.Priority) map[string]func(opts ...runtime.Option) engineOutcome {
	return map[string]func(opts ...runtime.Option) engineOutcome{
		"labeling/mis": func(opts ...runtime.Option) engineOutcome {
			res, err := labeling.DistributedMIS(g, prio, opts...)
			if err != nil && !errors.Is(err, labeling.ErrUnstable) {
				return engineOutcome{err: err.Error()}
			}
			return fingerprint(colorLabels(res.Colors), runtime.Stats{Rounds: res.Rounds}, err)
		},
		"distvec": func(opts ...runtime.Option) engineOutcome {
			tbl, err := distvec.Compute(g, 0, 4*g.N(), opts...)
			if err != nil && !errors.Is(err, distvec.ErrUnstable) {
				return engineOutcome{err: err.Error()}
			}
			labels := make(intLabels, 0, 2*g.N())
			for v := range tbl.Dist {
				d := tbl.Dist[v]
				if math.IsInf(d, 1) {
					d = -1
				}
				labels = append(labels, int(d*1e6), tbl.NextHop[v])
			}
			return fingerprint(labels, runtime.Stats{Rounds: tbl.Rounds}, err)
		},
		"centrality/pagerank": func(opts ...runtime.Option) engineOutcome {
			res, err := centrality.DistributedPageRank(g, 0.85, 300, 1e-10, opts...)
			if err != nil {
				return engineOutcome{err: err.Error()}
			}
			return fingerprint(floatLabels(res.Scores), res.Stats, nil)
		},
		"layering": func(opts ...runtime.Option) engineOutcome {
			res, err := layering.DistributedNestedLevels(g, opts...)
			if err != nil {
				return engineOutcome{err: err.Error()}
			}
			return fingerprint(intLabels(res.Levels), res.Stats, nil)
		},
	}
}

func outcomesEqual(a, b engineOutcome) bool {
	if a.labels != b.labels || a.rounds != b.rounds || a.err != b.err || len(a.history) != len(b.history) {
		return false
	}
	for i := range a.history {
		if a.history[i] != b.history[i] {
			return false
		}
	}
	return true
}

// shardConfigs pairs shard counts {1,2,4,8} with worker counts, including
// workers below, equal to, and above the shard count.
var shardConfigs = []struct{ k, workers int }{
	{1, 1}, {2, 2}, {4, 1}, {4, 4}, {8, 3},
}

// TestShardedEngineEquivalence: for every engine, shard count, worker count,
// kernel mode, and fault schedule, the partitioned kernel must reproduce the
// unsharded run bit for bit — labels, rounds, per-round changed counts, and
// the failure mode.
func TestShardedEngineEquivalence(t *testing.T) {
	g := gen.SparseErdosRenyi(stats.NewRand(42), 160, 0.03)
	c := g.Freeze()
	prio := labeling.PriorityByID(g.N())

	schedules := map[string]*sim.Schedule{
		"clean": nil,
		"churn": {Horizon: 8, ChurnAdd: 2, ChurnRemove: 2, MsgLoss: 0.05},
		"chaos": {Horizon: 10, ChurnAdd: 1, ChurnRemove: 1, MsgLoss: 0.08,
			CrashProb: 0.01, Downtime: 2, SkewProb: 0.03, MaxSkew: 2},
	}
	strategies := []partition.Strategy{partition.Contiguous, partition.DegreeBalanced}

	for engName, run := range engines(g, prio) {
		for schedName, sch := range schedules {
			for _, seed := range []uint64{1, 7} {
				for _, delta := range []bool{false, true} {
					baseOpts := func() []runtime.Option {
						out := []runtime.Option{runtime.WithParallelism(2)}
						if sch != nil {
							out = append(out, runtime.WithPerturber(sim.NewPerturber(g, seed, *sch)))
						}
						if delta {
							out = append(out, runtime.WithDelta())
						}
						return out
					}
					want := run(baseOpts()...)
					for ci, cfg := range shardConfigs {
						strat := strategies[ci%len(strategies)]
						plan, err := partition.New(c, cfg.k, partition.WithStrategy(strat))
						if err != nil {
							t.Fatalf("partition.New(k=%d): %v", cfg.k, err)
						}
						opts := []runtime.Option{runtime.WithParallelism(cfg.workers), runtime.WithPartition(plan)}
						if sch != nil {
							opts = append(opts, runtime.WithPerturber(sim.NewPerturber(g, seed, *sch)))
						}
						if delta {
							opts = append(opts, runtime.WithDelta())
						}
						got := run(opts...)
						if !outcomesEqual(want, got) {
							t.Errorf("%s/%s/seed%d/delta=%v/k%d/w%d/%v diverged:\n want: rounds=%d err=%q history=%v\n  got: rounds=%d err=%q history=%v\nlabels equal: %v",
								engName, schedName, seed, delta, cfg.k, cfg.workers, strat,
								want.rounds, want.err, want.history,
								got.rounds, got.err, got.history, want.labels == got.labels)
						}
					}
				}
				if sch == nil {
					break // seeds only matter under a schedule
				}
			}
		}
	}
}

// TestShardedHypercubeEquivalence covers the fifth engine, whose topology
// and init differ structurally (faulty nodes, dim-regular graph).
func TestShardedHypercubeEquivalence(t *testing.T) {
	cube, err := hypercube.New(6, []int{3, 17, 40, 41})
	if err != nil {
		t.Fatal(err)
	}
	c := cube.Graph().Freeze()
	for _, delta := range []bool{false, true} {
		base := []runtime.Option{runtime.WithParallelism(2)}
		if delta {
			base = append(base, runtime.WithDelta())
		}
		res, st, err := cube.SafetyLevelsDistributed(base...)
		if err != nil {
			t.Fatal(err)
		}
		want := fingerprint(intLabels(res.Levels), st, nil)
		for _, cfg := range shardConfigs {
			plan, err := partition.New(c, cfg.k)
			if err != nil {
				t.Fatal(err)
			}
			opts := []runtime.Option{runtime.WithParallelism(cfg.workers), runtime.WithPartition(plan)}
			if delta {
				opts = append(opts, runtime.WithDelta())
			}
			sres, sst, err := cube.SafetyLevelsDistributed(opts...)
			if err != nil {
				t.Fatal(err)
			}
			if !outcomesEqual(want, fingerprint(intLabels(sres.Levels), sst, nil)) {
				t.Fatalf("delta=%v k=%d w=%d: hypercube safety levels diverged sharded",
					delta, cfg.k, cfg.workers)
			}
		}
	}
}
