// Package partition splits a frozen graph.CSR into k edge-cut shards for the
// sharded round kernel (runtime.WithPartition): each shard owns a contiguous
// global ID range, holds a local-ID CSR over its owned nodes plus ghost
// replicas of the remote nodes its owned nodes read, and between rounds only
// the boundary values that actually changed travel between shards. The
// partition is semantically invisible — step rules only ever read
// in-neighborhood state, so replicating that state at the cut reproduces the
// unsharded kernel bit for bit (states, rounds, messages, checkpoints) on
// every kernel path.
package partition

import (
	"fmt"
	"sort"

	"structura/internal/graph"
	"structura/internal/runtime"
)

// Strategy selects how ownership boundaries are chosen.
type Strategy int

const (
	// Contiguous gives every shard an equal slice of the node ID space.
	// Right for graphs with uniform degree (ER, UDG); degenerate when IDs
	// correlate with degree.
	Contiguous Strategy = iota
	// DegreeBalanced places boundaries at equal shares of the half-edge
	// prefix sum, so every shard sweeps about the same number of edges per
	// round regardless of degree skew.
	DegreeBalanced
)

// String names the strategy for reports.
func (s Strategy) String() string {
	switch s {
	case Contiguous:
		return "contiguous"
	case DegreeBalanced:
		return "degree-balanced"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Option configures New.
type Option func(*Plan)

// WithStrategy selects the boundary placement strategy (default Contiguous).
func WithStrategy(s Strategy) Option {
	return func(p *Plan) { p.strategy = s }
}

// WithExchangeStats attaches a collector that accumulates per-round ghost
// traffic (values and bytes) across the run, surviving partition rebuilds
// under churn.
func WithExchangeStats(es *ExchangeStats) Option {
	return func(p *Plan) { p.stats = es }
}

// WithLinkModel routes the per-round ghost exchange through an inter-shard
// latency model: every round's exchange is priced as the slowest active link
// (the round barrier waits for it), using the async executor's seeded delay
// distributions. The model accumulates across the run.
func WithLinkModel(lm *LinkModel) Option {
	return func(p *Plan) { p.link = lm }
}

// Plan is an edge-cut partition of one CSR snapshot, implementing
// runtime.Partition. Build with New; pass to the kernel via
// runtime.WithPartition (or the Run convenience wrapper).
type Plan struct {
	g        *graph.CSR
	k        int
	bounds   []int32
	layouts  []*runtime.ShardLayout
	strategy Strategy
	stats    *ExchangeStats
	link     *LinkModel
}

// New partitions g into k edge-cut shards. Requires 1 <= k <= g.N(); every
// shard owns at least one node.
func New(g *graph.CSR, k int, opts ...Option) (*Plan, error) {
	n := g.N()
	if k < 1 || k > n {
		return nil, fmt.Errorf("partition: need 1 <= k <= n, got k=%d n=%d", k, n)
	}
	p := &Plan{g: g, k: k, strategy: Contiguous}
	for _, o := range opts {
		o(p)
	}
	p.bounds = makeBounds(g, k, p.strategy)
	p.layouts = buildLayouts(g, p.bounds)
	return p, nil
}

// makeBounds places the k+1 ownership boundaries. Both strategies guarantee
// strictly increasing bounds (no empty shards).
func makeBounds(g *graph.CSR, k int, st Strategy) []int32 {
	n := g.N()
	bounds := make([]int32, k+1)
	bounds[k] = int32(n)
	if st != DegreeBalanced {
		for s := 1; s < k; s++ {
			bounds[s] = int32(s * n / k)
		}
		// n >= k keeps s*n/k strictly increasing.
		return bounds
	}
	pre := make([]int64, n+1)
	for v := 0; v < n; v++ {
		pre[v+1] = pre[v] + int64(g.Degree(v))
	}
	total := pre[n]
	for s := 1; s < k; s++ {
		target := total * int64(s) / int64(k)
		b := sort.Search(n, func(i int) bool { return pre[i+1] > target })
		// Clamp so every shard (this one and the k-s remaining) is nonempty.
		if min := int(bounds[s-1]) + 1; b < min {
			b = min
		}
		if max := n - (k - s); b > max {
			b = max
		}
		bounds[s] = int32(b)
	}
	return bounds
}

// buildLayouts constructs the per-shard local CSRs, ghost tables, and
// replica lists for the given ownership bounds over g.
func buildLayouts(g *graph.CSR, bounds []int32) []*runtime.ShardLayout {
	k := len(bounds) - 1
	lays := make([]*runtime.ShardLayout, k)
	ghostLists := make([][]int32, k) // per shard, ghost global IDs ascending
	for s := 0; s < k; s++ {
		lays[s] = buildShard(g, bounds, s, &ghostLists[s])
	}
	buildReplicas(bounds, lays, ghostLists)
	return lays
}

// buildShard builds shard s's layout: local forward CSR (owned rows mirror
// the global rows with remote targets renamed to ghost IDs; on undirected
// graphs ghost rows list their owned readers so local InNeighbors works; on
// directed graphs the reverse CSR provides that), the word-aligned ghost
// region, and the local->global table.
func buildShard(g *graph.CSR, bounds []int32, s int, ghostsOut *[]int32) *runtime.ShardLayout {
	lo, hi := int(bounds[s]), int(bounds[s+1])
	own := hi - lo

	// Discover ghosts: remote nodes referenced by owned rows.
	ghostOf := make(map[int32]int32)
	var ghosts []int32
	ownedHalf := 0
	for v := lo; v < hi; v++ {
		row := g.Neighbors(v)
		ownedHalf += len(row)
		for _, w := range row {
			if int(w) < lo || int(w) >= hi {
				if _, ok := ghostOf[w]; !ok {
					ghostOf[w] = 1 // placeholder; local IDs assigned below
					ghosts = append(ghosts, w)
				}
			}
		}
	}
	sort.Slice(ghosts, func(i, j int) bool { return ghosts[i] < ghosts[j] })
	ghostBase := own
	if len(ghosts) > 0 {
		// Word-align the ghost region so owned and ghost bits never share
		// a bitset word in the kernel's frontier sets.
		ghostBase = (own + 63) &^ 63
	}
	nl := ghostBase + len(ghosts)
	for i, gw := range ghosts {
		ghostOf[gw] = int32(ghostBase + i)
	}

	global := make([]int32, nl)
	for v := 0; v < own; v++ {
		global[v] = int32(lo + v)
	}
	for v := own; v < ghostBase; v++ {
		global[v] = -1
	}
	for i, gw := range ghosts {
		global[ghostBase+i] = gw
	}

	// Ghost reader rows exist only on undirected graphs (directed local
	// CSRs get in-neighbors from the reverse sweep over the forward rows).
	var ghostRows [][]int32
	ghostHalf := 0
	if !g.Directed() && len(ghosts) > 0 {
		ghostRows = make([][]int32, len(ghosts))
		for v := lo; v < hi; v++ {
			for _, w := range g.Neighbors(v) {
				if int(w) < lo || int(w) >= hi {
					gi := int(ghostOf[w]) - ghostBase
					ghostRows[gi] = append(ghostRows[gi], int32(v-lo))
					ghostHalf++
				}
			}
		}
	}

	offsets := make([]int32, nl+1)
	targets := make([]int32, ownedHalf+ghostHalf)
	weights := make([]float64, ownedHalf+ghostHalf)
	pos := int32(0)
	for v := 0; v < own; v++ {
		offsets[v] = pos
		gv := lo + v
		row := g.Neighbors(gv)
		wts := g.NeighborWeights(gv)
		for i, w := range row {
			if int(w) >= lo && int(w) < hi {
				targets[pos] = w - int32(lo)
			} else {
				targets[pos] = ghostOf[w]
			}
			weights[pos] = wts[i]
			pos++
		}
	}
	for v := own; v < ghostBase; v++ {
		offsets[v] = pos // padding: empty row
	}
	for i := range ghosts {
		offsets[ghostBase+i] = pos
		if ghostRows != nil {
			for _, r := range ghostRows[i] {
				targets[pos] = r
				weights[pos] = 0
				pos++
			}
		}
	}
	offsets[nl] = pos

	// The local M is informational only (the kernel accounts messages on
	// the global CSR): half-edges/2 on undirected rows, half-edges on
	// directed ones.
	mLocal := int(pos)
	if !g.Directed() {
		mLocal /= 2
	}
	local, err := graph.NewCSR(g.Directed(), mLocal, offsets, targets, weights)
	if err != nil {
		// The arrays above are built to NewCSR's invariants; a failure here
		// is a builder bug, not a caller error.
		panic(fmt.Sprintf("partition: shard %d local CSR invalid: %v", s, err))
	}
	*ghostsOut = ghosts
	return &runtime.ShardLayout{
		Local:     local,
		Own:       own,
		GhostBase: ghostBase,
		Global:    global,
	}
}

// buildReplicas fills every layout's replica table: for each owned node, the
// (shard, slot) list of its ghost copies, ordered by ascending shard.
func buildReplicas(bounds []int32, lays []*runtime.ShardLayout, ghostLists [][]int32) {
	k := len(lays)
	counts := make([][]int32, k)
	for s, lay := range lays {
		counts[s] = make([]int32, lay.Own)
	}
	owner := func(gid int32) int {
		return sort.Search(len(bounds)-1, func(s int) bool { return bounds[s+1] > gid })
	}
	for t := 0; t < k; t++ {
		for _, gw := range ghostLists[t] {
			s := owner(gw)
			counts[s][gw-bounds[s]]++
		}
	}
	cursors := make([][]int32, k)
	for s, lay := range lays {
		off := make([]int32, lay.Own+1)
		for v := 0; v < lay.Own; v++ {
			off[v+1] = off[v] + counts[s][v]
		}
		lay.ReplicaOff = off
		lay.Replicas = make([]runtime.Replica, off[lay.Own])
		cur := make([]int32, lay.Own)
		copy(cur, off[:lay.Own])
		cursors[s] = cur
	}
	// Shards visited in ascending order, so each node's replicas come out
	// shard-ascending.
	for t := 0; t < k; t++ {
		for i, gw := range ghostLists[t] {
			s := owner(gw)
			v := gw - bounds[s]
			lays[s].Replicas[cursors[s][v]] = runtime.Replica{
				Shard: int32(t),
				Slot:  int32(lays[t].GhostBase + i),
			}
			cursors[s][v]++
		}
	}
}

// Bounds implements runtime.Partition.
func (p *Plan) Bounds() []int32 { return p.bounds }

// Layouts implements runtime.Partition.
func (p *Plan) Layouts() []*runtime.ShardLayout { return p.layouts }

// K returns the shard count.
func (p *Plan) K() int { return p.k }

// Rebuild implements runtime.Partition: it derives the plan for a churned
// topology with the same node count, preserving ownership bounds so
// shard-resident state survives without migration. Attached exchange and
// link collectors carry over, accumulating across the churn.
func (p *Plan) Rebuild(fresh *graph.CSR) (runtime.Partition, error) {
	if fresh.N() != p.g.N() {
		return nil, fmt.Errorf("partition: rebuild topology has %d nodes, plan has %d", fresh.N(), p.g.N())
	}
	np := &Plan{
		g:        fresh,
		k:        p.k,
		bounds:   p.bounds,
		strategy: p.strategy,
		stats:    p.stats,
		link:     p.link,
	}
	np.layouts = buildLayouts(fresh, p.bounds)
	return np, nil
}

// OnExchange implements runtime.Partition, feeding the optional collectors.
func (p *Plan) OnExchange(round int, flows []int32, valueBytes int) {
	if p.stats != nil {
		p.stats.record(flows, valueBytes)
	}
	if p.link != nil {
		p.link.record(round, flows, p.k)
	}
}

// PlanStats summarizes the partition's quality: how much of the edge set
// crosses shards, how much state is replicated, and how uneven the per-round
// edge work is.
type PlanStats struct {
	Shards        int
	Nodes         int
	Edges         int
	CutEdges      int     // edges with endpoints on different shards
	CutFraction   float64 // CutEdges / Edges
	Ghosts        int     // ghost replicas summed over shards
	GhostFraction float64 // Ghosts / Nodes
	MinOwned      int
	MaxOwned      int
	Imbalance     float64 // max shard half-edges / mean shard half-edges
}

// Stats computes the partition quality summary in one O(m) pass.
func (p *Plan) Stats() PlanStats {
	st := PlanStats{
		Shards:   p.k,
		Nodes:    p.g.N(),
		Edges:    p.g.M(),
		MinOwned: int(^uint(0) >> 1),
	}
	cutHalf := 0
	totalHalf := 0
	maxHalf := 0
	for s := 0; s < p.k; s++ {
		lo, hi := int(p.bounds[s]), int(p.bounds[s+1])
		own := hi - lo
		if own < st.MinOwned {
			st.MinOwned = own
		}
		if own > st.MaxOwned {
			st.MaxOwned = own
		}
		shardHalf := 0
		for v := lo; v < hi; v++ {
			row := p.g.Neighbors(v)
			shardHalf += len(row)
			for _, w := range row {
				if int(w) < lo || int(w) >= hi {
					cutHalf++
				}
			}
		}
		totalHalf += shardHalf
		if shardHalf > maxHalf {
			maxHalf = shardHalf
		}
		st.Ghosts += p.layouts[s].Ghosts()
	}
	st.CutEdges = cutHalf
	if !p.g.Directed() {
		st.CutEdges /= 2
	}
	if st.Edges > 0 {
		st.CutFraction = float64(st.CutEdges) / float64(st.Edges)
	}
	if st.Nodes > 0 {
		st.GhostFraction = float64(st.Ghosts) / float64(st.Nodes)
	}
	if totalHalf > 0 {
		st.Imbalance = float64(maxHalf) * float64(p.k) / float64(totalHalf)
	} else {
		st.Imbalance = 1
	}
	return st
}

// Run executes a distributed algorithm on the sharded kernel: a convenience
// wrapper equivalent to runtime.RunCSR(g, init, step, opts...,
// runtime.WithPartition(plan)). Bit-identical to the unsharded RunCSR for
// honest step functions (see runtime.WithPartition).
func Run[S any](
	g *graph.CSR,
	plan *Plan,
	init func(v int) S,
	step func(v int, self S, neighbors []S) (S, bool),
	opts ...runtime.Option,
) ([]S, runtime.Stats, error) {
	all := make([]runtime.Option, 0, len(opts)+1)
	all = append(all, opts...)
	all = append(all, runtime.WithPartition(plan))
	return runtime.RunCSR(g, init, step, all...)
}
