package partition_test

import (
	"context"
	"errors"
	"reflect"
	"runtime" // stdlib: GOMAXPROCS
	"testing"

	"structura/internal/gen"
	"structura/internal/graph"
	"structura/internal/partition"
	rt "structura/internal/runtime"
	"structura/internal/stats"
)

// hopInit/hopStep: distance-vector-style process whose state depends on every
// earlier round (same probe the runtime checkpoint tests use).
const hopInf = 1 << 20

func hopInit(v int) int {
	if v == 0 {
		return 0
	}
	return hopInf
}

func hopStep(v int, self int, nbrs []int) (int, bool) {
	if v == 0 {
		return 0, false
	}
	best := hopInf
	for _, d := range nbrs {
		if d+1 < best {
			best = d + 1
		}
	}
	return best, best != self
}

func stripElapsed(h []rt.RoundStats) []rt.RoundStats {
	out := append([]rt.RoundStats(nil), h...)
	for i := range out {
		out[i].Elapsed = 0
	}
	return out
}

// churnPerturber is a deterministic fault timeline: round-keyed drops plus a
// topology swap and a restart at fixed rounds. State derives only from the
// round number, so fast-forward replays identically.
type churnPerturber struct {
	alt *graph.CSR
}

func (p *churnPerturber) BeforeRound(round int, g *graph.CSR) rt.Perturbation {
	var per rt.Perturbation
	if round == 3 && p.alt != nil {
		per.Topology = p.alt
	}
	if round == 4 {
		restart := make([]bool, g.N())
		restart[2] = true
		per.Restart = restart
	}
	if round <= 6 {
		per.Drop = func(from, to int) bool { return (from*31+to*17+round)%5 == 0 }
	}
	return per
}

func (p *churnPerturber) Active(round int) bool { return round <= 6 }

func testGraphPair(t *testing.T) (*graph.CSR, *graph.CSR) {
	t.Helper()
	g := gen.SparseErdosRenyi(stats.NewRand(7), 48, 0.1)
	alt := g.Clone()
	alt.RemoveEdge(0, alt.Neighbors(0)[0])
	if err := alt.AddEdge(5, 40); err != nil && !alt.HasEdge(5, 40) {
		t.Fatal(err)
	}
	return g.Freeze(), alt.Freeze()
}

// TestShardedCrossResume: checkpoints are written in a fully global format,
// so a checkpoint taken by a sharded run must resume on the unsharded kernel
// and vice versa — on the clean and perturbed paths, full and delta modes —
// and land bit-identical to the uninterrupted baseline.
func TestShardedCrossResume(t *testing.T) {
	g, alt := testGraphPair(t)
	const maxRounds = 12
	for _, perturbed := range []bool{false, true} {
		for _, delta := range []bool{false, true} {
			name := map[bool]string{false: "clean", true: "perturbed"}[perturbed] +
				map[bool]string{false: "/full", true: "/delta"}[delta]
			baseOpts := func(plan *partition.Plan) []rt.Option {
				opts := []rt.Option{rt.WithMaxRounds(maxRounds), rt.WithParallelism(2)}
				if perturbed {
					opts = append(opts, rt.WithPerturber(&churnPerturber{alt: alt}))
				}
				if delta {
					opts = append(opts, rt.WithDelta())
				}
				if plan != nil {
					opts = append(opts, rt.WithPartition(plan))
				}
				return opts
			}
			newPlan := func(k int) *partition.Plan {
				plan, err := partition.New(g, k)
				if err != nil {
					t.Fatal(err)
				}
				return plan
			}
			want, wantStats, err := rt.RunCSR(g, hopInit, hopStep, baseOpts(nil)...)
			if err != nil {
				t.Fatalf("%s baseline: %v", name, err)
			}

			// Interrupt a SHARDED run after round 5; last checkpoint at 4.
			var cps []rt.Checkpoint[int]
			ctx, cancel := context.WithCancel(context.Background())
			opts := append(baseOpts(newPlan(4)),
				rt.WithContext(ctx),
				rt.WithCheckpoints(2, func(cp rt.Checkpoint[int]) { cps = append(cps, cp) }),
				rt.WithObserver(func(rs rt.RoundStats) {
					if rs.Round == 5 {
						cancel()
					}
				}),
			)
			_, half, err := rt.RunCSR(g, hopInit, hopStep, opts...)
			cancel()
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("%s cancelled sharded run returned err=%v", name, err)
			}
			if half.Rounds != 5 || len(cps) == 0 || cps[len(cps)-1].Round != 4 {
				t.Fatalf("%s sharded run: rounds=%d, %d checkpoints", name, half.Rounds, len(cps))
			}
			shardedCP := cps[len(cps)-1]

			// The same interruption on the unsharded kernel, for the reverse leg.
			cps = nil
			ctx, cancel = context.WithCancel(context.Background())
			opts = append(baseOpts(nil),
				rt.WithContext(ctx),
				rt.WithCheckpoints(2, func(cp rt.Checkpoint[int]) { cps = append(cps, cp) }),
				rt.WithObserver(func(rs rt.RoundStats) {
					if rs.Round == 5 {
						cancel()
					}
				}),
			)
			_, _, err = rt.RunCSR(g, hopInit, hopStep, opts...)
			cancel()
			if !errors.Is(err, context.Canceled) || len(cps) == 0 {
				t.Fatalf("%s cancelled unsharded run: err=%v, %d checkpoints", name, err, len(cps))
			}
			unshardedCP := cps[len(cps)-1]

			// Sharded and unsharded checkpoints must already agree byte for byte
			// (modulo wall-clock timings).
			shardedCP.Stats.History = stripElapsed(shardedCP.Stats.History)
			unshardedCP.Stats.History = stripElapsed(unshardedCP.Stats.History)
			if !reflect.DeepEqual(shardedCP, unshardedCP) {
				t.Fatalf("%s sharded checkpoint differs from unsharded:\n got %+v\nwant %+v",
					name, shardedCP, unshardedCP)
			}

			// Resume every checkpoint on every executor shape.
			resumes := map[string]*partition.Plan{
				"unsharded": nil, "k2": newPlan(2), "k4": newPlan(4), "k8": newPlan(8),
			}
			for rname, plan := range resumes {
				got, gotStats, err := rt.RunCSR(g, hopInit, hopStep,
					append(baseOpts(plan), rt.WithResume(shardedCP))...)
				if err != nil {
					t.Fatalf("%s resume(%s): %v", name, rname, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s resume(%s) states diverged:\n got %v\nwant %v", name, rname, got, want)
				}
				if !reflect.DeepEqual(stripElapsed(gotStats.History), stripElapsed(wantStats.History)) ||
					gotStats.Messages != wantStats.Messages || gotStats.Stable != wantStats.Stable {
					t.Fatalf("%s resume(%s) stats diverged:\n got %+v\nwant %+v",
						name, rname, gotStats, wantStats)
				}
			}
		}
	}
}

// TestShardedDirected: the sharded kernel on a directed graph (asymmetric
// in/out adjacency exercises the reverse-CSR ghost discovery) must match the
// unsharded kernel in both modes.
func TestShardedDirected(t *testing.T) {
	r := stats.NewRand(11)
	dg := graph.NewDirected(96)
	for i := 0; i < 3*96; i++ {
		u, v := r.Intn(96), r.Intn(96)
		if u != v && !dg.HasEdge(u, v) {
			if err := dg.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Ensure node 0 reaches something so the hop wave propagates.
	if !dg.HasEdge(0, 1) {
		if err := dg.AddEdge(0, 1); err != nil {
			t.Fatal(err)
		}
	}
	c := dg.Freeze()
	for _, delta := range []bool{false, true} {
		base := []rt.Option{rt.WithMaxRounds(30), rt.WithParallelism(2)}
		if delta {
			base = append(base, rt.WithDelta())
		}
		want, wantStats, err := rt.RunCSR(c, hopInit, hopStep, base...)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{2, 4, 8} {
			for _, strat := range []partition.Strategy{partition.Contiguous, partition.DegreeBalanced} {
				plan, err := partition.New(c, k, partition.WithStrategy(strat))
				if err != nil {
					t.Fatal(err)
				}
				got, gotStats, err := rt.RunCSR(c, hopInit, hopStep,
					append(append([]rt.Option(nil), base...), rt.WithPartition(plan))...)
				if err != nil {
					t.Fatalf("delta=%v k=%d %v: %v", delta, k, strat, err)
				}
				if !reflect.DeepEqual(got, want) || gotStats.Rounds != wantStats.Rounds ||
					gotStats.Messages != wantStats.Messages {
					t.Fatalf("delta=%v k=%d %v: directed sharded run diverged", delta, k, strat)
				}
			}
		}
	}
}

// TestShardedDeterminism: the same sharded run repeated under different
// GOMAXPROCS values yields byte-identical states and stats — scheduling
// nondeterminism must not leak into results.
func TestShardedDeterminism(t *testing.T) {
	g, _ := testGraphPair(t)
	plan, err := partition.New(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	run := func() ([]int, rt.Stats) {
		states, st, err := rt.RunCSR(g, hopInit, hopStep,
			rt.WithMaxRounds(20), rt.WithParallelism(4), rt.WithPartition(plan), rt.WithDelta())
		if err != nil {
			t.Fatal(err)
		}
		return states, st
	}
	wantStates, wantStats := run()
	for _, procs := range []int{1, 2, 8} {
		old := runtime.GOMAXPROCS(procs)
		gotStates, gotStats := run()
		runtime.GOMAXPROCS(old)
		if !reflect.DeepEqual(gotStates, wantStates) {
			t.Fatalf("GOMAXPROCS=%d changed the states", procs)
		}
		if gotStats.Rounds != wantStats.Rounds || gotStats.Messages != wantStats.Messages {
			t.Fatalf("GOMAXPROCS=%d changed the stats: %+v vs %+v", procs, gotStats, wantStats)
		}
	}
}

// TestShardedStepPanic: a panicking step must surface the same global node ID
// in the error regardless of sharding.
func TestShardedStepPanic(t *testing.T) {
	g, _ := testGraphPair(t)
	boom := func(v int, self int, nbrs []int) (int, bool) {
		if v == 13 {
			panic("boom")
		}
		return self, false
	}
	_, _, wantErr := rt.RunCSR(g, hopInit, boom, rt.WithMaxRounds(3))
	if wantErr == nil {
		t.Fatal("baseline panic did not surface")
	}
	plan, err := partition.New(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, _, gotErr := rt.RunCSR(g, hopInit, boom,
		rt.WithMaxRounds(3), rt.WithPartition(plan), rt.WithParallelism(3))
	if gotErr == nil || gotErr.Error() != wantErr.Error() {
		t.Fatalf("sharded panic error %q, want %q", gotErr, wantErr)
	}
}
