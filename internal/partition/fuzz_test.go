package partition_test

import (
	"reflect"
	"testing"

	"structura/internal/graph"
	"structura/internal/partition"
	rt "structura/internal/runtime"
)

// FuzzPartition throws arbitrary graphs and shard counts at the planner and
// requires the structural invariants (every edge assigned exactly once,
// local<->global round-trip, ghost/replica symmetry — see checkPlan) plus
// behavioral equivalence: the sharded hop-count run must match the unsharded
// one exactly.
func FuzzPartition(f *testing.F) {
	f.Add([]byte{1, 2, 2, 3, 3, 4, 0, 5}, uint8(2), uint8(16), false)
	f.Add([]byte{0, 1, 1, 2, 7, 3, 3, 0, 5, 6}, uint8(3), uint8(9), true)
	f.Add([]byte{}, uint8(1), uint8(1), false)
	f.Add([]byte{9, 9, 0, 0, 1, 0}, uint8(7), uint8(11), true)
	f.Fuzz(func(t *testing.T, edges []byte, kRaw, nRaw uint8, directed bool) {
		n := int(nRaw)%64 + 1
		var g *graph.Graph
		if directed {
			g = graph.NewDirected(n)
		} else {
			g = graph.New(n)
		}
		for i := 0; i+1 < len(edges) && i < 512; i += 2 {
			u, v := int(edges[i])%n, int(edges[i+1])%n
			if u != v && !g.HasEdge(u, v) {
				if err := g.AddEdge(u, v); err != nil {
					t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
				}
			}
		}
		c := g.Freeze()
		k := int(kRaw)%n + 1
		for _, strat := range []partition.Strategy{partition.Contiguous, partition.DegreeBalanced} {
			plan, err := partition.New(c, k, partition.WithStrategy(strat))
			if err != nil {
				t.Fatalf("New(k=%d, n=%d, %v): %v", k, n, strat, err)
			}
			checkPlan(t, c, plan)
			for _, delta := range []bool{false, true} {
				opts := []rt.Option{rt.WithMaxRounds(2 * n)}
				if delta {
					opts = append(opts, rt.WithDelta())
				}
				want, wantStats, werr := rt.RunCSR(c, hopInit, hopStep, opts...)
				got, gotStats, gerr := rt.RunCSR(c, hopInit, hopStep,
					append(opts, rt.WithPartition(plan), rt.WithParallelism(3))...)
				if (werr == nil) != (gerr == nil) {
					t.Fatalf("k=%d %v delta=%v: errors diverged: %v vs %v", k, strat, delta, werr, gerr)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("k=%d %v delta=%v: states diverged", k, strat, delta)
				}
				if gotStats.Rounds != wantStats.Rounds || gotStats.Messages != wantStats.Messages {
					t.Fatalf("k=%d %v delta=%v: stats diverged: %+v vs %+v",
						k, strat, delta, gotStats, wantStats)
				}
			}
		}
	})
}
