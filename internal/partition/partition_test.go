package partition_test

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"structura/internal/async"
	"structura/internal/gen"
	"structura/internal/graph"
	"structura/internal/partition"
	rt "structura/internal/runtime"
	"structura/internal/stats"
)

// checkPlan verifies the structural invariants every plan must satisfy:
// bounds cover [0,n) with no empty shard, every global half-edge appears in
// exactly one owned local row, local<->global IDs round-trip, the ghost
// region is word-aligned with -1 padding, and the replica tables on owner
// shards agree with the ghost tables on reader shards. Shared with the fuzz
// target.
func checkPlan(t testing.TB, g *graph.CSR, plan *partition.Plan) {
	t.Helper()
	n := g.N()
	bounds := plan.Bounds()
	lays := plan.Layouts()
	k := len(lays)
	if len(bounds) != k+1 || bounds[0] != 0 || int(bounds[k]) != n {
		t.Fatalf("bounds %v do not cover [0,%d)", bounds, n)
	}
	ownedHalfTotal := 0
	globalHalf := 0
	for v := 0; v < n; v++ {
		globalHalf += g.Degree(v)
	}
	for s, lay := range lays {
		lo, hi := int(bounds[s]), int(bounds[s+1])
		if hi <= lo {
			t.Fatalf("shard %d empty: bounds %v", s, bounds)
		}
		own := hi - lo
		if lay.Own != own {
			t.Fatalf("shard %d Own=%d, bounds say %d", s, lay.Own, own)
		}
		if lay.GhostBase%64 != 0 && lay.Ghosts() > 0 {
			t.Fatalf("shard %d GhostBase %d not word-aligned with %d ghosts", s, lay.GhostBase, lay.Ghosts())
		}
		if lay.NLocal() != lay.Local.N() {
			t.Fatalf("shard %d NLocal %d != local CSR n %d", s, lay.NLocal(), lay.Local.N())
		}
		// Local->global table: owned identity-shifted, padding -1, ghosts
		// ascending, remote, and unique.
		for v := 0; v < own; v++ {
			if int(lay.Global[v]) != lo+v {
				t.Fatalf("shard %d owned local %d maps to %d, want %d", s, v, lay.Global[v], lo+v)
			}
		}
		for v := own; v < lay.GhostBase; v++ {
			if lay.Global[v] != -1 {
				t.Fatalf("shard %d padding slot %d maps to %d, want -1", s, v, lay.Global[v])
			}
			if lay.Local.Degree(v) != 0 {
				t.Fatalf("shard %d padding slot %d has degree %d", s, v, lay.Local.Degree(v))
			}
		}
		var prev int32 = -1
		for v := lay.GhostBase; v < lay.NLocal(); v++ {
			gw := lay.Global[v]
			if gw <= prev {
				t.Fatalf("shard %d ghost globals not strictly ascending at slot %d", s, v)
			}
			prev = gw
			if int(gw) >= lo && int(gw) < hi {
				t.Fatalf("shard %d ghost slot %d holds owned node %d", s, v, gw)
			}
		}
		// Owned rows mirror the global rows edge for edge, in order.
		for v := 0; v < own; v++ {
			gv := lo + v
			grow := g.Neighbors(gv)
			lrow := lay.Local.Neighbors(v)
			if len(grow) != len(lrow) {
				t.Fatalf("shard %d node %d row length %d, global %d", s, gv, len(lrow), len(grow))
			}
			gw := g.NeighborWeights(gv)
			lw := lay.Local.NeighborWeights(v)
			for i := range lrow {
				if lay.Global[lrow[i]] != grow[i] {
					t.Fatalf("shard %d node %d edge %d points at global %d, want %d",
						s, gv, i, lay.Global[lrow[i]], grow[i])
				}
				if lw[i] != gw[i] {
					t.Fatalf("shard %d node %d edge %d weight %v, want %v", s, gv, i, lw[i], gw[i])
				}
			}
			ownedHalfTotal += len(lrow)
		}
		// Local in-neighborhoods are what the delta frontier's push rebuild
		// walks. For an owned node they must cover every local reader: all
		// global in-neighbors on undirected graphs (remote ones via ghost
		// rows), the shard-owned ones on directed graphs (remote readers live
		// where this node is a ghost). For a ghost slot: exactly its owned
		// readers on this shard.
		inWant := func(gid int32, ownedOnly bool) []int32 {
			var want []int32
			for _, u := range g.InNeighbors(int(gid)) {
				if !ownedOnly || (int(u) >= lo && int(u) < hi) {
					want = append(want, u)
				}
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			return want
		}
		inGot := func(v int) []int32 {
			lin := lay.Local.InNeighbors(v)
			got := make([]int32, len(lin))
			for i, w := range lin {
				got[i] = lay.Global[w]
			}
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			return got
		}
		for v := 0; v < own; v++ {
			if want, got := inWant(int32(lo+v), g.Directed()), inGot(v); fmt.Sprint(want) != fmt.Sprint(got) {
				t.Fatalf("shard %d node %d in-neighbors %v, want %v", s, lo+v, got, want)
			}
		}
		for v := lay.GhostBase; v < lay.NLocal(); v++ {
			// A ghost's local readers are owned by this shard by construction.
			want := inWant(lay.Global[v], true)
			got := inGot(v)
			if fmt.Sprint(want) != fmt.Sprint(got) {
				t.Fatalf("shard %d ghost %d readers %v, want %v", s, lay.Global[v], got, want)
			}
		}
		// Replica table: each owned node's replicas point at ghost slots that
		// map back to it, shard-ascending.
		if len(lay.ReplicaOff) != own+1 {
			t.Fatalf("shard %d ReplicaOff length %d, want %d", s, len(lay.ReplicaOff), own+1)
		}
		for v := 0; v < own; v++ {
			prevShard := int32(-1)
			for _, rep := range lay.Replicas[lay.ReplicaOff[v]:lay.ReplicaOff[v+1]] {
				if rep.Shard <= prevShard {
					t.Fatalf("shard %d node %d replicas not shard-ascending", s, lo+v)
				}
				prevShard = rep.Shard
				dst := lays[rep.Shard]
				if int(rep.Slot) < dst.GhostBase || int(rep.Slot) >= dst.NLocal() {
					t.Fatalf("shard %d node %d replica slot %d outside ghost region of shard %d",
						s, lo+v, rep.Slot, rep.Shard)
				}
				if int(dst.Global[rep.Slot]) != lo+v {
					t.Fatalf("shard %d node %d replica at shard %d slot %d maps to %d",
						s, lo+v, rep.Shard, rep.Slot, dst.Global[rep.Slot])
				}
			}
		}
	}
	if ownedHalfTotal != globalHalf {
		t.Fatalf("owned rows hold %d half-edges, global graph has %d", ownedHalfTotal, globalHalf)
	}
	// Every ghost is someone's replica: total ghosts == total replicas.
	ghosts, reps := 0, 0
	for _, lay := range lays {
		ghosts += lay.Ghosts()
		reps += len(lay.Replicas)
	}
	if ghosts != reps {
		t.Fatalf("%d ghosts but %d replica entries", ghosts, reps)
	}
}

func TestPlanInvariants(t *testing.T) {
	r := stats.NewRand(3)
	und := gen.SparseErdosRenyi(r, 200, 0.03).Freeze()
	dir := func() *graph.CSR {
		dg := graph.NewDirected(120)
		rr := stats.NewRand(5)
		for i := 0; i < 400; i++ {
			u, v := rr.Intn(120), rr.Intn(120)
			if u != v && !dg.HasEdge(u, v) {
				if err := dg.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
		}
		return dg.Freeze()
	}()
	for _, g := range []*graph.CSR{und, dir} {
		for _, k := range []int{1, 2, 3, 7, 16, 64} {
			for _, strat := range []partition.Strategy{partition.Contiguous, partition.DegreeBalanced} {
				plan, err := partition.New(g, k, partition.WithStrategy(strat))
				if err != nil {
					t.Fatal(err)
				}
				checkPlan(t, g, plan)
			}
		}
	}
	if _, err := partition.New(und, 0); err == nil {
		t.Error("k=0 must be rejected")
	}
	if _, err := partition.New(und, und.N()+1); err == nil {
		t.Error("k>n must be rejected")
	}
}

// TestDegreeBalancedBounds: on a graph with strong degree skew, the
// degree-balanced strategy must spread half-edges far more evenly than
// contiguous splitting.
func TestDegreeBalancedBounds(t *testing.T) {
	// Star-heavy graph: node 0 connects to everyone, the tail is a path.
	g := graph.New(256)
	for v := 1; v < 256; v++ {
		if err := g.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	for v := 1; v < 255; v++ {
		if err := g.AddEdge(v, v+1); err != nil {
			t.Fatal(err)
		}
	}
	c := g.Freeze()
	cont, err := partition.New(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	bal, err := partition.New(c, 4, partition.WithStrategy(partition.DegreeBalanced))
	if err != nil {
		t.Fatal(err)
	}
	checkPlan(t, c, bal)
	if bi, ci := bal.Stats().Imbalance, cont.Stats().Imbalance; bi >= ci {
		t.Errorf("degree-balanced imbalance %.3f not better than contiguous %.3f", bi, ci)
	}
	// The hub shard must shrink to near the clamp floor.
	if b := bal.Bounds(); b[1] > 8 {
		t.Errorf("hub shard owns %d nodes; bounds %v", b[1], b)
	}
}

// TestPlanStats pins the stats on a hand-checkable graph: a cycle of 8 nodes
// split in half has exactly 2 cut edges and 2 ghosts per shard.
func TestPlanStats(t *testing.T) {
	g := graph.New(8)
	for v := 0; v < 8; v++ {
		if err := g.AddEdge(v, (v+1)%8); err != nil {
			t.Fatal(err)
		}
	}
	c := g.Freeze()
	plan, err := partition.New(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkPlan(t, c, plan)
	st := plan.Stats()
	if st.Shards != 2 || st.Nodes != 8 || st.Edges != 8 {
		t.Fatalf("stats header wrong: %+v", st)
	}
	if st.CutEdges != 2 || st.CutFraction != 0.25 {
		t.Errorf("cut: got %d (%.3f), want 2 (0.250)", st.CutEdges, st.CutFraction)
	}
	// Each half reads both endpoints of the two cut edges: 2 ghosts per shard.
	if st.Ghosts != 4 || st.GhostFraction != 0.5 {
		t.Errorf("ghosts: got %d (%.3f), want 4 (0.500)", st.Ghosts, st.GhostFraction)
	}
	if st.MinOwned != 4 || st.MaxOwned != 4 || st.Imbalance != 1 {
		t.Errorf("balance: %+v", st)
	}
}

// TestRebuildPreservesBounds: rebuilding on a churned topology with the same
// node count keeps ownership identical and the layouts valid.
func TestRebuildPreservesBounds(t *testing.T) {
	g := gen.SparseErdosRenyi(stats.NewRand(9), 100, 0.05)
	c := g.Freeze()
	plan, err := partition.New(c, 4, partition.WithStrategy(partition.DegreeBalanced))
	if err != nil {
		t.Fatal(err)
	}
	alt := g.Clone()
	alt.RemoveEdge(0, alt.Neighbors(0)[0])
	if err := alt.AddEdge(2, 97); err != nil && !alt.HasEdge(2, 97) {
		t.Fatal(err)
	}
	fresh := alt.Freeze()
	npAny, err := plan.Rebuild(fresh)
	if err != nil {
		t.Fatal(err)
	}
	np := npAny.(*partition.Plan)
	if fmt.Sprint(np.Bounds()) != fmt.Sprint(plan.Bounds()) {
		t.Fatalf("rebuild moved bounds: %v -> %v", plan.Bounds(), np.Bounds())
	}
	checkPlan(t, fresh, np)
	if _, err := plan.Rebuild(graph.New(50).Freeze()); err == nil {
		t.Error("rebuild with a different node count must fail")
	}
}

// TestExchangeStatsAndLinkModel: collectors attached to a plan observe the
// run's ghost traffic; in delta mode the total exchanged values are bounded
// by the boundary churn, and the link model prices only rounds with traffic.
func TestExchangeStatsAndLinkModel(t *testing.T) {
	g := gen.SparseErdosRenyi(stats.NewRand(21), 120, 0.05).Freeze()
	var es partition.ExchangeStats
	lm := &partition.LinkModel{
		Delay: async.Delay{Kind: async.Uniform, Base: 5, Spread: 3},
		Seed:  99,
	}
	plan, err := partition.New(g, 4,
		partition.WithExchangeStats(&es), partition.WithLinkModel(lm))
	if err != nil {
		t.Fatal(err)
	}
	states, st, err := partition.Run(g, plan, hopInit, hopStep,
		rt.WithMaxRounds(40), rt.WithDelta())
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := rt.RunCSR(g, hopInit, hopStep, rt.WithMaxRounds(40), rt.WithDelta())
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(states) != fmt.Sprint(want) {
		t.Fatal("partition.Run diverged from RunCSR")
	}
	if es.Rounds != st.Rounds {
		t.Errorf("exchange rounds %d, kernel rounds %d", es.Rounds, st.Rounds)
	}
	if es.Values <= 0 || es.Bytes != es.Values*8 {
		t.Errorf("traffic accounting wrong: %+v", es)
	}
	if int64(es.MaxRoundValues) > es.Values || float64(es.MaxRoundValues) < es.ValuesPerRound() {
		t.Errorf("max-round bound violated: %+v", es)
	}
	// Delta exchange ships only changed boundary values: strictly less than
	// replicas x rounds on a run that converges.
	reps := 0
	for _, lay := range plan.Layouts() {
		reps += lay.Ghosts()
	}
	if es.Values >= int64(reps)*int64(st.Rounds) {
		t.Errorf("delta exchange shipped %d values; full exchange would be %d", es.Values, reps*st.Rounds)
	}
	if lm.Rounds == 0 || lm.Rounds > st.Rounds || lm.TotalTicks < async.Ticks(lm.Rounds)*5 {
		t.Errorf("link model accounting wrong: %+v", lm)
	}
	if lm.MeanTicks() < 5 || lm.MeanTicks() > 8 || math.IsNaN(lm.MeanTicks()) {
		t.Errorf("mean ticks %.2f outside [base, base+jitter]", lm.MeanTicks())
	}
	// Same seed -> same latency trace.
	lm2 := &partition.LinkModel{Delay: async.Delay{Kind: async.Uniform, Base: 5, Spread: 3}, Seed: 99}
	plan2, err := partition.New(g, 4, partition.WithLinkModel(lm2))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := partition.Run(g, plan2, hopInit, hopStep,
		rt.WithMaxRounds(40), rt.WithDelta()); err != nil {
		t.Fatal(err)
	}
	if lm2.TotalTicks != lm.TotalTicks || lm2.MaxRound != lm.MaxRound {
		t.Errorf("same seed produced a different latency trace: %+v vs %+v", lm2, lm)
	}
}
