package smallworld

import (
	"math"
	"testing"

	"structura/internal/stats"
)

func TestNewValidation(t *testing.T) {
	r := stats.NewRand(1)
	if _, err := New(r, 1, 2); err == nil {
		t.Error("k < 2 should error")
	}
	if _, err := New(r, 5, -1); err == nil {
		t.Error("negative r should error")
	}
	if _, err := New(nil, 5, 2); err == nil {
		t.Error("nil rng should error")
	}
}

func TestGridGeometry(t *testing.T) {
	r := stats.NewRand(2)
	g, err := New(r, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 16 || g.K() != 4 {
		t.Fatalf("dims wrong: %d, %d", g.N(), g.K())
	}
	if row, col := g.Coord(7); row != 1 || col != 3 {
		t.Errorf("Coord(7) = %d,%d", row, col)
	}
	if g.Dist(0, 15) != 6 {
		t.Errorf("Dist(0,15) = %d, want 6", g.Dist(0, 15))
	}
	if g.Dist(5, 5) != 0 {
		t.Error("self distance")
	}
}

func TestContacts(t *testing.T) {
	r := stats.NewRand(3)
	g, _ := New(r, 3, 2)
	// Corner node 0: two lattice neighbors + 1 long-range.
	c := g.Contacts(0)
	if len(c) != 3 {
		t.Fatalf("corner contacts = %v", c)
	}
	// Center node 4: four lattice neighbors + 1 long-range.
	c = g.Contacts(4)
	if len(c) != 5 {
		t.Fatalf("center contacts = %v", c)
	}
	// Long-range contact is never the node itself.
	for v := 0; v < g.N(); v++ {
		cs := g.Contacts(v)
		if cs[len(cs)-1] == v {
			t.Fatalf("node %d long-range self-link", v)
		}
	}
}

func TestGreedyAlwaysDelivers(t *testing.T) {
	r := stats.NewRand(4)
	g, _ := New(r, 12, 2)
	for trial := 0; trial < 200; trial++ {
		src, dst := r.Intn(g.N()), r.Intn(g.N())
		path, err := g.GreedyRoute(src, dst, 0)
		if err != nil {
			t.Fatalf("route %d->%d: %v", src, dst, err)
		}
		if path[len(path)-1] != dst {
			t.Fatalf("route ends at %d, want %d", path[len(path)-1], dst)
		}
	}
}

func TestGreedyRouteValidation(t *testing.T) {
	r := stats.NewRand(5)
	g, _ := New(r, 4, 2)
	if _, err := g.GreedyRoute(-1, 3, 0); err == nil {
		t.Error("bad src should error")
	}
	if p, err := g.GreedyRoute(3, 3, 0); err != nil || len(p) != 1 {
		t.Error("self route trivial")
	}
}

func TestGreedyMonotoneProgress(t *testing.T) {
	// Lattice links guarantee distance decreases every step.
	r := stats.NewRand(6)
	g, _ := New(r, 10, 1.5)
	for trial := 0; trial < 50; trial++ {
		src, dst := r.Intn(100), r.Intn(100)
		path, err := g.GreedyRoute(src, dst, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(path); i++ {
			if g.Dist(path[i], dst) >= g.Dist(path[i-1], dst) {
				t.Fatalf("no progress at step %d of %v", i, path)
			}
		}
	}
}

func TestInverseSquareExponentStructure(t *testing.T) {
	// Kleinberg's result, the paper's opening example. At laptop sizes the
	// finite-size optimum sits slightly below r = 2 (a well-documented
	// effect; the asymptotic minimum at exactly 2 needs n >> 10^6), so the
	// robust checks are: (a) the useful range r in [0,2] decisively beats
	// overly-local exponents, (b) r = 2 routes in far fewer than k steps
	// (polylog-like), and (c) the optimum over the sweep falls in [0,2].
	rng := stats.NewRand(7)
	const k, trials = 32, 400
	steps := map[float64]float64{}
	for _, r := range []float64{0, 1, 2, 3, 4} {
		var sum float64
		const reps = 3
		for rep := 0; rep < reps; rep++ {
			g, err := New(rng, k, r)
			if err != nil {
				t.Fatal(err)
			}
			avg, err := g.AverageGreedySteps(rng, trials)
			if err != nil {
				t.Fatal(err)
			}
			sum += avg
		}
		steps[r] = sum / reps
	}
	if steps[2] >= steps[3] || steps[2] >= steps[4] {
		t.Errorf("r=2 (%v steps) must beat overly-local r=3 (%v) and r=4 (%v)",
			steps[2], steps[3], steps[4])
	}
	if steps[2] > float64(k) {
		t.Errorf("r=2 steps = %v, want well below k = %d", steps[2], k)
	}
	best, bestR := math.Inf(1), -1.0
	for r, v := range steps {
		if v < best {
			best, bestR = v, r
		}
	}
	if bestR > 2 {
		t.Errorf("optimal exponent = %v, want within the useful range [0,2]", bestR)
	}
}

func TestAverageGreedyStepsValidation(t *testing.T) {
	rng := stats.NewRand(8)
	g, _ := New(rng, 4, 2)
	if _, err := g.AverageGreedySteps(rng, 0); err == nil {
		t.Error("zero trials should error")
	}
	avg, err := g.AverageGreedySteps(rng, 50)
	if err != nil || math.IsNaN(avg) || avg <= 0 {
		t.Errorf("avg = %v, %v", avg, err)
	}
}
