// Package smallworld implements the Kleinberg small-world model the paper
// opens with (§I): a k x k grid where each node has one long-range link
// chosen with probability proportional to distance^-r. When r = 2 (the
// inverse-square distribution), a purely localized greedy algorithm — each
// node knowing only its own links — finds short paths with high
// probability; for other exponents decentralized routing degrades, which
// is the paper's first "success story" of a useful structural property.
package smallworld

import (
	"errors"
	"math"
	"math/rand"
)

// Grid is a k x k lattice with one long-range contact per node.
type Grid struct {
	k         int
	longRange []int // one extra directed contact per node
	r         float64
}

// New builds a k x k small-world grid with long-range exponent r using the
// supplied PRNG. k must be >= 2, r >= 0.
func New(rng *rand.Rand, k int, r float64) (*Grid, error) {
	if k < 2 {
		return nil, errors.New("smallworld: k must be >= 2")
	}
	if r < 0 {
		return nil, errors.New("smallworld: r must be >= 0")
	}
	if rng == nil {
		return nil, errors.New("smallworld: nil rng")
	}
	n := k * k
	g := &Grid{k: k, longRange: make([]int, n), r: r}
	// Per node, sample a long-range target with P(v) ~ dist(u,v)^-r.
	weights := make([]float64, n)
	for u := 0; u < n; u++ {
		var total float64
		for v := 0; v < n; v++ {
			if v == u {
				weights[v] = 0
				continue
			}
			d := float64(g.Dist(u, v))
			weights[v] = math.Pow(d, -r)
			total += weights[v]
		}
		x := rng.Float64() * total
		chosen := -1
		for v := 0; v < n && x >= 0; v++ {
			x -= weights[v]
			if x < 0 {
				chosen = v
			}
		}
		if chosen == -1 {
			chosen = (u + 1) % n // numeric fallback; effectively unreachable
		}
		g.longRange[u] = chosen
	}
	return g, nil
}

// K returns the grid side length.
func (g *Grid) K() int { return g.k }

// N returns the node count, k*k.
func (g *Grid) N() int { return g.k * g.k }

// Coord returns node v's (row, col).
func (g *Grid) Coord(v int) (row, col int) { return v / g.k, v % g.k }

// Dist returns the Manhattan (lattice) distance between u and v.
func (g *Grid) Dist(u, v int) int {
	ur, uc := g.Coord(u)
	vr, vc := g.Coord(v)
	dr, dc := ur-vr, uc-vc
	if dr < 0 {
		dr = -dr
	}
	if dc < 0 {
		dc = -dc
	}
	return dr + dc
}

// Contacts returns v's local grid neighbors plus its long-range contact.
func (g *Grid) Contacts(v int) []int {
	row, col := g.Coord(v)
	var out []int
	if row > 0 {
		out = append(out, v-g.k)
	}
	if row < g.k-1 {
		out = append(out, v+g.k)
	}
	if col > 0 {
		out = append(out, v-1)
	}
	if col < g.k-1 {
		out = append(out, v+1)
	}
	out = append(out, g.longRange[v])
	return out
}

// GreedyRoute runs Kleinberg's decentralized algorithm: forward to the
// contact closest (in lattice distance) to the destination. Local grid
// links guarantee progress, so delivery always succeeds; the interesting
// measure is the hop count. maxSteps bounds runaway walks (0 uses 4*k*k).
func (g *Grid) GreedyRoute(src, dst, maxSteps int) ([]int, error) {
	n := g.N()
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return nil, errors.New("smallworld: src/dst out of range")
	}
	if maxSteps <= 0 {
		maxSteps = 4 * n
	}
	path := []int{src}
	cur := src
	for cur != dst && len(path) <= maxSteps {
		best, bestD := -1, math.MaxInt
		for _, w := range g.Contacts(cur) {
			if d := g.Dist(w, dst); d < bestD {
				best, bestD = w, d
			}
		}
		// A lattice neighbor always strictly reduces distance.
		cur = best
		path = append(path, cur)
	}
	if cur != dst {
		return path, errors.New("smallworld: step limit exceeded")
	}
	return path, nil
}

// AverageGreedySteps routes trials random pairs and returns the mean hop
// count — the quantity whose minimum at r = 2 reproduces Kleinberg's
// result.
func (g *Grid) AverageGreedySteps(rng *rand.Rand, trials int) (float64, error) {
	if trials <= 0 {
		return 0, errors.New("smallworld: trials must be positive")
	}
	var total, count float64
	for t := 0; t < trials; t++ {
		src, dst := rng.Intn(g.N()), rng.Intn(g.N())
		if src == dst {
			continue
		}
		path, err := g.GreedyRoute(src, dst, 0)
		if err != nil {
			return 0, err
		}
		total += float64(len(path) - 1)
		count++
	}
	if count == 0 {
		return 0, nil
	}
	return total / count, nil
}
