package wal

import "errors"

// ErrCrashed is returned by every FaultFS operation at and after the
// injected crash point: the process is "dead", and the only way forward is
// recovery from the durable image.
var ErrCrashed = errors.New("wal: simulated crash")

// ErrShortWrite is returned by a FaultFS write that persisted only a seeded
// prefix of its buffer — the disk-full / partial-IO fault. The log treats
// any append error as fatal (sticky ErrBroken), and recovery truncates at
// the resulting torn frame.
var ErrShortWrite = errors.New("wal: injected short write")

// FaultFS wraps a MemFS and injects disk faults on a deterministic
// schedule: a crash at the k-th mutating operation (counting every Write,
// Sync, Create, Rename, Remove, and SyncDir — so every point between a
// write/sync pair is a crash point), and optional short writes. Reads are
// not crash points. Use Durable to obtain the post-crash image, and
// MemFS.Corrupt for post-fsync bit flips.
type FaultFS struct {
	mem     *MemFS
	seed    uint64
	crashAt int64 // op index that crashes; -1 = never
	shortAt int64 // op index whose Write is cut short; -1 = never
	ops     int64
	crashed bool
}

// NewFaultFS wraps mem with a crash scheduled at op index crashAt
// (-1: never). seed drives the torn-write and lost-dir-op draws of the
// crash image.
func NewFaultFS(mem *MemFS, seed uint64, crashAt int64) *FaultFS {
	return &FaultFS{mem: mem, seed: seed, crashAt: crashAt, shortAt: -1}
}

// ShortWriteAt schedules the write at op index idx to persist only half its
// buffer and fail with ErrShortWrite (the process survives, unlike a crash).
func (f *FaultFS) ShortWriteAt(idx int64) { f.shortAt = idx }

// Ops returns the number of mutating operations performed so far — run a
// workload once fault-free to learn the crash-point space.
func (f *FaultFS) Ops() int64 { return f.ops }

// Crashed reports whether the scheduled crash has fired.
func (f *FaultFS) Crashed() bool { return f.crashed }

// Durable returns the deterministic post-crash filesystem image: what a
// recovery process would find on disk if power were cut at the current
// moment (or at the injected crash, once it has fired).
func (f *FaultFS) Durable() *MemFS { return f.mem.CrashImage(f.seed) }

// step accounts one mutating op and reports whether it must fail with
// ErrCrashed. A crashing write still records its buffer as pending first,
// so the crash image can preserve a torn prefix of it.
func (f *FaultFS) step() bool {
	if f.crashed {
		return true
	}
	idx := f.ops
	f.ops++
	if idx == f.crashAt {
		f.crashed = true
		return true
	}
	return false
}

func (f *FaultFS) MkdirAll(dir string) error {
	if f.crashed {
		return ErrCrashed
	}
	return f.mem.MkdirAll(dir)
}

func (f *FaultFS) Create(name string) (File, error) {
	if f.step() {
		return nil, ErrCrashed
	}
	inner, err := f.mem.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultHandle{fs: f, inner: inner}, nil
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if f.crashed {
		return nil, ErrCrashed
	}
	return f.mem.ReadFile(name)
}

func (f *FaultFS) Rename(oldname, newname string) error {
	if f.step() {
		return ErrCrashed
	}
	return f.mem.Rename(oldname, newname)
}

func (f *FaultFS) Remove(name string) error {
	if f.step() {
		return ErrCrashed
	}
	return f.mem.Remove(name)
}

func (f *FaultFS) List(dir string) ([]string, error) {
	if f.crashed {
		return nil, ErrCrashed
	}
	return f.mem.List(dir)
}

func (f *FaultFS) SyncDir(dir string) error {
	if f.step() {
		return ErrCrashed
	}
	return f.mem.SyncDir(dir)
}

type faultHandle struct {
	fs    *FaultFS
	inner File
}

func (h *faultHandle) Write(p []byte) (int, error) {
	idx := h.fs.ops
	if h.fs.step() {
		// The in-flight buffer reaches the page cache as pending bytes;
		// the crash image keeps a seeded torn prefix of it.
		_, _ = h.inner.Write(p)
		return 0, ErrCrashed
	}
	if idx == h.fs.shortAt {
		n := len(p) / 2
		_, _ = h.inner.Write(p[:n])
		return n, ErrShortWrite
	}
	return h.inner.Write(p)
}

func (h *faultHandle) Sync() error {
	if h.fs.step() {
		return ErrCrashed
	}
	return h.inner.Sync()
}

func (h *faultHandle) Close() error {
	if h.fs.crashed {
		return ErrCrashed
	}
	return h.inner.Close()
}
