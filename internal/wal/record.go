package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Type discriminates mutation-log records. The on-disk byte values are part
// of the durable format and must never be renumbered.
type Type uint8

const (
	// TAddNode appends one isolated node to the graph.
	TAddNode Type = 1
	// TRemoveNode detaches every edge incident to U (the node stays as an
	// isolated vertex, matching graph trimming semantics).
	TRemoveNode Type = 2
	// TAddEdge adds edge (U,V) with Weight, valid from batch From onward
	// (To is -1: the interval is open until a TRemoveEdge closes it).
	TAddEdge Type = 3
	// TRemoveEdge removes edge (U,V), closing its validity interval at To.
	TRemoveEdge Type = 4
	// TWeight sets the weight of existing edge (U,V) to Weight from batch
	// From onward.
	TWeight Type = 5
	// TCommit seals the Count preceding records as committed batch Seq.
	// Records after the last commit marker are discarded by recovery.
	TCommit Type = 6
	// TLabelDelta carries one structure's changed-(node,value) pairs at an
	// epoch publish (see LabelDelta). Label records follow the commit marker
	// of the batch they reflect and are never part of a pending batch.
	TLabelDelta Type = 7
)

// Record is one mutation-log entry. Edge records carry the validity interval
// [From, To) in batch-sequence time units — the on-disk reflection of the
// time-indexed graph: a window [a,b) loads as a range scan over the log
// (see temporal.LoadWindow) instead of a full rebuild.
type Record struct {
	Type   Type
	U, V   int32   // endpoints (TRemoveNode uses U alone)
	Weight float64 // TAddEdge, TWeight
	From   int64   // valid-from batch seq (TAddEdge, TWeight)
	To     int64   // valid-to batch seq (TRemoveEdge; -1 = open on TAddEdge)
	Seq    uint64  // TCommit: batch sequence number
	Count  uint32  // TCommit: records sealed by this marker

	// Label holds the decoded payload of a TLabelDelta record (nil for
	// every other type). Label records ride the same framing and CRC as
	// mutations but are a cache of computation, not history.
	Label *LabelDelta
}

// Canonical payload sizes per type; decode rejects any other length, which
// makes encode∘decode the identity on every decodable byte string (the
// FuzzWALRecord property).
const (
	lenAddNode    = 1
	lenRemoveNode = 1 + 4
	lenAddEdge    = 1 + 4 + 4 + 8 + 8 + 8
	lenRemoveEdge = 1 + 4 + 4 + 8
	lenWeight     = 1 + 4 + 4 + 8 + 8
	lenCommit     = 1 + 8 + 4

	// maxPayload bounds a frame's declared payload length; anything larger
	// is torn or garbage, never a legal record. Label-delta records are
	// variable-length up to maxLabelPayload (labels.go), which dominates.
	maxPayload = maxLabelPayload
)

// frameHeader is the per-record framing: payload length then CRC32C of the
// payload, both little-endian uint32.
const frameHeader = 8

// castagnoli is the CRC32C polynomial table shared by every checksum in the
// durable format (records, snapshots, superblocks, log headers).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Named decode errors. Recovery maps all three to a truncation point; the
// fuzz targets assert no other failure mode exists.
var (
	ErrRecordType = errors.New("wal: unknown record type")
	ErrRecordLen  = errors.New("wal: record payload length does not match its type")
	ErrTorn       = errors.New("wal: torn record")
)

// appendPayload appends r's canonical payload encoding to buf.
func (r Record) appendPayload(buf []byte) []byte {
	buf = append(buf, byte(r.Type))
	switch r.Type {
	case TAddNode:
	case TRemoveNode:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.U))
	case TAddEdge:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.U))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.V))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Weight))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.From))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.To))
	case TRemoveEdge:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.U))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.V))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.To))
	case TWeight:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.U))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.V))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Weight))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.From))
	case TCommit:
		buf = binary.LittleEndian.AppendUint64(buf, r.Seq)
		buf = binary.LittleEndian.AppendUint32(buf, r.Count)
	case TLabelDelta:
		return appendLabelDelta(buf[:len(buf)-1], r.Label)
	default:
		panic(fmt.Sprintf("wal: encoding unknown record type %d", r.Type))
	}
	return buf
}

// DecodeRecord parses one canonical payload. It never panics: arbitrary
// input yields a Record or a named error, and every accepted input
// re-encodes to the same bytes.
func DecodeRecord(p []byte) (Record, error) {
	if len(p) == 0 {
		return Record{}, fmt.Errorf("%w: empty payload", ErrRecordLen)
	}
	var r Record
	r.Type = Type(p[0])
	if r.Type == TLabelDelta {
		d, err := DecodeLabelDelta(p)
		if err != nil {
			return Record{}, err
		}
		r.Label = d
		r.Seq = d.Seq
		return r, nil
	}
	want := 0
	switch r.Type {
	case TAddNode:
		want = lenAddNode
	case TRemoveNode:
		want = lenRemoveNode
	case TAddEdge:
		want = lenAddEdge
	case TRemoveEdge:
		want = lenRemoveEdge
	case TWeight:
		want = lenWeight
	case TCommit:
		want = lenCommit
	default:
		return Record{}, fmt.Errorf("%w: %d", ErrRecordType, p[0])
	}
	if len(p) != want {
		return Record{}, fmt.Errorf("%w: type %d has %d byte(s), want %d", ErrRecordLen, r.Type, len(p), want)
	}
	switch r.Type {
	case TRemoveNode:
		r.U = int32(binary.LittleEndian.Uint32(p[1:]))
	case TAddEdge:
		r.U = int32(binary.LittleEndian.Uint32(p[1:]))
		r.V = int32(binary.LittleEndian.Uint32(p[5:]))
		r.Weight = math.Float64frombits(binary.LittleEndian.Uint64(p[9:]))
		r.From = int64(binary.LittleEndian.Uint64(p[17:]))
		r.To = int64(binary.LittleEndian.Uint64(p[25:]))
	case TRemoveEdge:
		r.U = int32(binary.LittleEndian.Uint32(p[1:]))
		r.V = int32(binary.LittleEndian.Uint32(p[5:]))
		r.To = int64(binary.LittleEndian.Uint64(p[9:]))
	case TWeight:
		r.U = int32(binary.LittleEndian.Uint32(p[1:]))
		r.V = int32(binary.LittleEndian.Uint32(p[5:]))
		r.Weight = math.Float64frombits(binary.LittleEndian.Uint64(p[9:]))
		r.From = int64(binary.LittleEndian.Uint64(p[17:]))
	case TCommit:
		r.Seq = binary.LittleEndian.Uint64(p[1:])
		r.Count = binary.LittleEndian.Uint32(p[9:])
	}
	return r, nil
}

// EncodeRecord returns r's canonical payload (DecodeRecord's inverse).
func EncodeRecord(r Record) []byte { return r.appendPayload(nil) }

// appendFrame appends the framed record — length, CRC32C, payload — to buf.
func appendFrame(buf []byte, r Record) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	buf = r.appendPayload(buf)
	payload := buf[start+frameHeader:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, castagnoli))
	return buf
}

// readFrame decodes one framed record from data. It returns the record and
// the bytes consumed, or ErrTorn (wrapped with the reason) when the frame is
// incomplete, oversized, checksum-corrupt, or undecodable — the signal that
// recovery must truncate here.
func readFrame(data []byte) (Record, int, error) {
	if len(data) < frameHeader {
		return Record{}, 0, fmt.Errorf("%w: %d header byte(s) of %d", ErrTorn, len(data), frameHeader)
	}
	n := binary.LittleEndian.Uint32(data)
	sum := binary.LittleEndian.Uint32(data[4:])
	if n == 0 || n > maxPayload {
		return Record{}, 0, fmt.Errorf("%w: implausible payload length %d", ErrTorn, n)
	}
	if len(data) < frameHeader+int(n) {
		return Record{}, 0, fmt.Errorf("%w: %d payload byte(s) of %d", ErrTorn, len(data)-frameHeader, n)
	}
	payload := data[frameHeader : frameHeader+int(n)]
	if crc32.Checksum(payload, castagnoli) != sum {
		return Record{}, 0, fmt.Errorf("%w: checksum mismatch", ErrTorn)
	}
	r, err := DecodeRecord(payload)
	if err != nil {
		return Record{}, 0, fmt.Errorf("%w: %v", ErrTorn, err)
	}
	return r, frameHeader + int(n), nil
}
