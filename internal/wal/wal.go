// Package wal makes the graph durable: an append-only mutation log with
// CRC32C-checksummed, length-prefixed records, batch-commit markers, a
// configurable fsync policy, and periodic compaction into CSR-codec
// snapshots — a superblock names the live (snapshot, log-suffix) pair, and
// every generation switch goes through atomic renames and directory fsyncs.
// Recovery truncates at the first torn or corrupt record and replays only
// committed batches, so a kill -9 at any point between two filesystem
// operations restores exactly a committed-batch prefix of the history; the
// crash-point sweep in crash_test.go proves that claim at every such point
// under the FaultFS fault injector.
//
// Edge records carry their validity interval in batch-sequence time, which
// makes the log a native time-indexed graph encoding: temporal windows load
// as range scans over the committed suffix (temporal.LoadWindow) instead of
// full rebuilds.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"structura/internal/graph"
)

// SyncPolicy picks when Append calls fsync.
type SyncPolicy int

const (
	// SyncEachBatch fsyncs before Append returns: an acknowledged batch is
	// durable. The default, and the policy every durability claim assumes.
	SyncEachBatch SyncPolicy = iota
	// SyncInterval fsyncs every Options.SyncEvery batches: bounded loss
	// window, amortized fsync cost.
	SyncInterval
	// SyncNone never fsyncs from Append; the OS decides. Recovery still
	// yields a committed-batch prefix — just possibly an older one.
	SyncNone
)

// Options tunes a Log. The zero value is usable: OS filesystem, fsync per
// batch, compaction every 1024 batches.
type Options struct {
	// FS is the filesystem; nil means the real one. Tests inject MemFS or
	// FaultFS here.
	FS FS
	// Sync is the fsync policy (default SyncEachBatch).
	Sync SyncPolicy
	// SyncEvery is the SyncInterval period in batches (default 8).
	SyncEvery int
	// CompactEvery snapshots and truncates the log after this many
	// committed batches (default 1024; negative disables compaction).
	CompactEvery int
}

func (o *Options) setDefaults() {
	if o.FS == nil {
		o.FS = OS()
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 8
	}
	if o.CompactEvery == 0 {
		o.CompactEvery = 1024
	}
}

const superName = "SUPER"

// ErrNoStore is returned by Open when dir holds no initialized store.
var ErrNoStore = errors.New("wal: no store in directory")

// ErrBroken is the sticky state after an append-path disk error: the log
// refuses further appends (the file may end in a torn frame) and the owner
// must re-open the store, which truncates the tail.
var ErrBroken = errors.New("wal: log broken by an earlier write error")

// ErrFenced is returned by Append after MarkFenced: a replica was promoted
// with a higher fencing token, so this store is a deposed primary and its
// writes must be rejected.
var ErrFenced = errors.New("wal: store fenced by a newer primary")

// ErrGenGone is returned by LogChunk when the requested generation has been
// superseded by compaction or restart; the reader must resync from the
// current snapshot.
var ErrGenGone = errors.New("wal: log generation superseded")

// Metrics is a point-in-time snapshot of a Log's counters, safe to read
// concurrently with appends.
type Metrics struct {
	Seq          uint64 // last committed batch sequence
	Records      uint64 // cumulative mutation records (including compacted history)
	Batches      uint64 // batches appended by this process
	Syncs        uint64 // fsync calls issued by Append
	Compactions  uint64 // snapshot+truncate cycles run by this process
	Depth        uint64 // mutation records in the live log suffix
	Gen          uint64 // live log generation
	Fence        uint64 // fencing token this store was opened with
	LabelRecords uint64 // label-delta records appended by this process
	LabelSeq     uint64 // batch seq of the last durable label epoch
	DurableBytes int64  // fsynced byte length of the live log generation
	FsyncTotal   time.Duration
	FsyncMax     time.Duration
}

// Log is the durable side of a mutating graph: the owner appends committed
// mutation batches, the Log keeps an authoritative replica and periodically
// compacts it into a snapshot. A Log is single-writer (the serving layer's
// writer goroutine); Metrics alone may be read concurrently.
type Log struct {
	fsys FS
	dir  string
	opts Options

	g      *graph.Graph // authoritative durable replica
	labels *LabelSet    // durable label replica (nil until first AppendLabels)

	f        File
	snapName string
	logName  string
	snapSeq  uint64
	gen      uint64 // live generation number (increments every newGeneration)
	fence    uint64 // fencing token (immutable while open; Promote bumps it)

	seq           uint64 // last committed batch
	cum           uint64 // cumulative mutation records ever committed
	depth         int    // mutation records in the live log
	batchesInLog  int
	unsyncedBatch int
	broken        error
	buf           []byte // reused frame buffer

	// genMu guards the replication-facing view of the live generation: the
	// in-memory byte mirror of the log file, and the (snapName, logName,
	// gen) triple it belongs to. The single writer takes it briefly per
	// append and across generation swaps; sender goroutines take it to
	// copy chunks.
	genMu sync.Mutex
	live  []byte // byte-exact mirror of the live log file (header + frames)

	fenced        atomic.Bool  // MarkFenced called; Append rejects
	mDurable      atomic.Int64 // fsynced prefix length of live
	mGen          atomic.Uint64
	mLabelRecs    atomic.Uint64
	mLabelSeq     atomic.Uint64
	mSeq, mCum    atomic.Uint64
	mBatches      atomic.Uint64
	mSyncs        atomic.Uint64
	mCompactions  atomic.Uint64
	mDepth        atomic.Uint64
	mFsyncTotalNs atomic.Uint64
	mFsyncMaxNs   atomic.Uint64
}

// Create initializes dir as a fresh store seeded with g (cloned; the
// caller's graph is not retained) at batch sequence 0, and returns the open
// Log. It fails if dir already holds a store.
func Create(dir string, g *graph.Graph, opts Options) (*Log, error) {
	opts.setDefaults()
	fsys := opts.FS
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, err
	}
	if _, err := fsys.ReadFile(path.Join(dir, superName)); err == nil {
		return nil, fmt.Errorf("wal: %s already holds a store (use Open)", dir)
	}
	l := &Log{fsys: fsys, dir: dir, opts: opts, g: g.Clone(), fence: 1}
	if err := l.newGeneration(); err != nil {
		return nil, err
	}
	l.publishMetrics()
	return l, nil
}

// Open recovers the store in dir: it loads the superblock's snapshot,
// replays the committed-batch prefix of the log (truncating at the first
// torn or corrupt record), and starts a fresh generation — so the torn tail,
// if any, is physically discarded. The recovered replica is reachable via
// Graph.
func Open(dir string, opts Options) (*Log, Recovery, error) {
	return openStore(dir, opts, false)
}

// Promote is Open with the fencing token bumped: the caller (a replica
// taking over after primary failure) becomes the new primary, and the old
// primary's stream — carrying the stale token — is rejected everywhere the
// token is checked.
func Promote(dir string, opts Options) (*Log, Recovery, error) {
	return openStore(dir, opts, true)
}

func openStore(dir string, opts Options, bumpFence bool) (*Log, Recovery, error) {
	opts.setDefaults()
	start := time.Now()
	g, rec, err := replayDir(opts.FS, dir, nil)
	if err != nil {
		return nil, rec, err
	}
	l := &Log{
		fsys: opts.FS, dir: dir, opts: opts, g: g,
		seq: rec.Seq, cum: rec.Records,
		gen: rec.Gen, fence: rec.Fence,
		labels: rec.Labels,
	}
	if l.fence == 0 {
		l.fence = 1 // v1 superblocks carry no token
	}
	if bumpFence {
		l.fence++
		rec.Fence = l.fence
	}
	if err := l.newGeneration(); err != nil {
		return nil, rec, err
	}
	rec.RecoveryNs = time.Since(start).Nanoseconds()
	l.publishMetrics()
	return l, rec, nil
}

// OpenOrCreate opens the store in dir if one exists, otherwise creates one
// seeded with g. created reports which path ran.
func OpenOrCreate(dir string, g *graph.Graph, opts Options) (l *Log, rec Recovery, created bool, err error) {
	o := opts
	o.setDefaults()
	if _, rerr := o.FS.ReadFile(path.Join(dir, superName)); rerr != nil {
		if !errors.Is(rerr, os.ErrNotExist) {
			return nil, Recovery{}, false, rerr
		}
		l, err = Create(dir, g, opts)
		return l, Recovery{}, true, err
	}
	l, rec, err = Open(dir, opts)
	return l, rec, false, err
}

// Graph returns the durable replica. The caller must treat it as read-only;
// it advances only through Append.
func (l *Log) Graph() *graph.Graph { return l.g }

// Seq returns the last committed batch sequence.
func (l *Log) Seq() uint64 { return l.seq }

// Dir returns the store directory.
func (l *Log) Dir() string { return l.dir }

// FenceToken returns the fencing token this store was opened with. It is
// immutable for the life of the process; only Promote (a re-open) bumps it.
func (l *Log) FenceToken() uint64 { return l.fence }

// MarkFenced records that a peer with a newer fencing token exists: every
// later Append fails with ErrFenced. Safe from any goroutine (the
// replication client calls it when a replica rejects this primary).
func (l *Log) MarkFenced() { l.fenced.Store(true) }

// Fenced reports whether MarkFenced has been called.
func (l *Log) Fenced() bool { return l.fenced.Load() }

// Metrics returns a consistent-enough snapshot of the log counters; safe
// from any goroutine.
func (l *Log) Metrics() Metrics {
	return Metrics{
		Seq:          l.mSeq.Load(),
		Records:      l.mCum.Load(),
		Batches:      l.mBatches.Load(),
		Syncs:        l.mSyncs.Load(),
		Compactions:  l.mCompactions.Load(),
		Depth:        l.mDepth.Load(),
		Gen:          l.mGen.Load(),
		Fence:        l.fence,
		LabelRecords: l.mLabelRecs.Load(),
		LabelSeq:     l.mLabelSeq.Load(),
		DurableBytes: l.mDurable.Load(),
		FsyncTotal:   time.Duration(l.mFsyncTotalNs.Load()),
		FsyncMax:     time.Duration(l.mFsyncMaxNs.Load()),
	}
}

func (l *Log) publishMetrics() {
	l.mSeq.Store(l.seq)
	l.mCum.Store(l.cum)
	l.mDepth.Store(uint64(l.depth))
}

// Append journals one mutation batch: every record is framed and written,
// sealed by a commit marker, fsynced per policy, and applied to the durable
// replica under the same topological acceptance rule the serving engines
// use (self-loops, duplicate adds, and missing removes are logged but not
// applied — replay makes the same decisions). Edge records are stamped with
// the new batch sequence as their validity bound: adds open at it, removes
// close at it. It returns the committed batch sequence.
//
// Any filesystem error marks the log broken: the batch must be considered
// not durable, and every later Append fails with ErrBroken until the store
// is re-opened (which truncates the torn tail).
func (l *Log) Append(recs []Record) (uint64, error) {
	if l.broken != nil {
		return 0, ErrBroken
	}
	if l.fenced.Load() {
		return 0, ErrFenced
	}
	if len(recs) == 0 {
		return l.seq, nil
	}
	seq := l.seq + 1
	buf := l.buf[:0]
	for i := range recs {
		r := &recs[i]
		switch r.Type {
		case TAddEdge:
			r.From, r.To = int64(seq), -1
		case TRemoveEdge:
			r.From, r.To = 0, int64(seq)
		case TWeight:
			r.From, r.To = int64(seq), 0
		case TCommit:
			return 0, fmt.Errorf("wal: commit records are appended by the log, not callers")
		case TLabelDelta:
			return 0, fmt.Errorf("wal: label records are appended via AppendLabels, not Append")
		}
		buf = appendFrame(buf, *r)
	}
	buf = appendFrame(buf, Record{Type: TCommit, Seq: seq, Count: uint32(len(recs))})
	l.buf = buf[:0]

	if err := l.write(buf); err != nil {
		return 0, fmt.Errorf("wal: append batch %d: %w", seq, err)
	}
	if err := l.maybeSync(); err != nil {
		return 0, fmt.Errorf("wal: fsync batch %d: %w", seq, err)
	}

	// The write is down; commit the batch to the replica.
	for _, r := range recs {
		applyRecord(l.g, r)
	}
	l.seq = seq
	l.cum += uint64(len(recs))
	l.depth += len(recs)
	l.batchesInLog++
	l.mBatches.Add(1)
	l.publishMetrics()

	if l.opts.CompactEvery > 0 && l.batchesInLog >= l.opts.CompactEvery {
		if err := l.compact(); err != nil {
			l.broken = err
			return 0, fmt.Errorf("wal: compact at batch %d: %w", seq, err)
		}
	}
	return seq, nil
}

// write appends buf to the live log file and its in-memory byte mirror
// (the replication sender's source), marking the log broken on error.
func (l *Log) write(buf []byte) error {
	if _, err := l.f.Write(buf); err != nil {
		l.broken = err
		return err
	}
	l.genMu.Lock()
	l.live = append(l.live, buf...)
	l.genMu.Unlock()
	return nil
}

// maybeSync counts one appended batch against the fsync policy and, when
// the policy fires, fsyncs and publishes the new durable offset.
func (l *Log) maybeSync() error {
	l.unsyncedBatch++
	if l.opts.Sync == SyncEachBatch ||
		(l.opts.Sync == SyncInterval && l.unsyncedBatch >= l.opts.SyncEvery) {
		return l.syncNow()
	}
	return nil
}

func (l *Log) syncNow() error {
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		l.broken = err
		return err
	}
	d := uint64(time.Since(start).Nanoseconds())
	l.mSyncs.Add(1)
	l.mFsyncTotalNs.Add(d)
	for {
		cur := l.mFsyncMaxNs.Load()
		if d <= cur || l.mFsyncMaxNs.CompareAndSwap(cur, d) {
			break
		}
	}
	l.unsyncedBatch = 0
	l.genMu.Lock()
	n := int64(len(l.live))
	l.genMu.Unlock()
	l.mDurable.Store(n)
	return nil
}

// AppendLabels journals the label epoch ls as delta records against the
// durable label replica (a full Reset delta the first time), stamped with
// the last committed batch sequence. Label records follow the commit marker
// of the batch they reflect, so a recovered label set can never be newer
// than the recovered topology — the journal-before-publish contract's
// durable half. Returns the number of delta records written.
//
// Labels are a cache of computation: losing an unsynced label suffix only
// costs a localized heal on recovery, never correctness.
func (l *Log) AppendLabels(ls *LabelSet) (int, error) {
	if l.broken != nil {
		return 0, ErrBroken
	}
	if l.fenced.Load() {
		return 0, ErrFenced
	}
	if ls == nil {
		return 0, nil
	}
	cur := ls.Clone()
	cur.Seq = l.seq
	deltas := diffLabels(l.labels, cur)
	if len(deltas) == 0 {
		l.labels = cur
		l.mLabelSeq.Store(cur.Seq)
		return 0, nil
	}
	buf := l.buf[:0]
	for _, d := range deltas {
		buf = appendFrame(buf, Record{Type: TLabelDelta, Label: d})
	}
	l.buf = buf[:0]
	if err := l.write(buf); err != nil {
		return 0, fmt.Errorf("wal: append labels at batch %d: %w", l.seq, err)
	}
	if err := l.maybeSync(); err != nil {
		return 0, fmt.Errorf("wal: fsync labels at batch %d: %w", l.seq, err)
	}
	l.labels = cur
	l.mLabelRecs.Add(uint64(len(deltas)))
	l.mLabelSeq.Store(cur.Seq)
	return len(deltas), nil
}

// Labels returns the durable label replica (nil until the first
// AppendLabels or a recovery that found labels). Read-only for the caller.
func (l *Log) Labels() *LabelSet { return l.labels }

// Close fsyncs and closes the live log file. The store stays openable.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	var err error
	if l.broken == nil {
		err = l.f.Sync()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// applyRecord applies one mutation record to g under the topological
// acceptance rule shared with the serving engines, reporting whether it
// applied. The rule is deterministic, so log replay reconstructs the exact
// replica.
func applyRecord(g *graph.Graph, r Record) bool {
	n := g.N()
	switch r.Type {
	case TAddNode:
		g.AddNode()
		return true
	case TRemoveNode:
		v := int(r.U)
		if v < 0 || v >= n {
			return false
		}
		for _, u := range g.Neighbors(v) {
			g.RemoveEdge(v, u)
			if g.Directed() {
				g.RemoveEdge(u, v)
			}
		}
		return true
	case TAddEdge:
		u, v := int(r.U), int(r.V)
		if u < 0 || u >= n || v < 0 || v >= n || u == v || g.HasEdge(u, v) {
			return false
		}
		return g.AddWeightedEdge(u, v, r.Weight) == nil
	case TRemoveEdge:
		u, v := int(r.U), int(r.V)
		if u < 0 || u >= n || v < 0 || v >= n {
			return false
		}
		return g.RemoveEdge(u, v)
	case TWeight:
		u, v := int(r.U), int(r.V)
		if u < 0 || u >= n || v < 0 || v >= n || !g.HasEdge(u, v) {
			return false
		}
		// The graph has no in-place weight update; remove + re-add is
		// deterministic on both the live and the replay path.
		g.RemoveEdge(u, v)
		return g.AddWeightedEdge(u, v, r.Weight) == nil
	}
	return false
}

// newGeneration compacts the current replica into a fresh (snapshot, empty
// log) pair and atomically repoints the superblock at it. The ordering is
// the crash-safety argument: each artifact is durable (file fsync + dir
// fsync) before anything references it, the superblock swap is an atomic
// rename, and old files are removed only after the new superblock is
// durable — so a crash at any step leaves either the old or the new
// generation fully intact.
func (l *Log) compact() error {
	old := l.f
	if err := l.newGeneration(); err != nil {
		return err
	}
	if old != nil {
		old.Close()
	}
	l.mCompactions.Add(1)
	return nil
}

func (l *Log) newGeneration() error {
	gen := l.gen + 1
	snapName := fmt.Sprintf("snap-%016d.snap", l.seq)
	logName := fmt.Sprintf("wal-%016d.log", l.seq)
	dir := l.dir

	// 1. Snapshot (topology + compacted label epoch): temp, fsync, atomic
	// rename, dir fsync.
	tmp := path.Join(dir, snapName+".tmp")
	if err := writeFileSync(l.fsys, tmp, EncodeSnapshotLabels(l.g, l.seq, l.cum, l.labels)); err != nil {
		return err
	}
	if err := l.fsys.Rename(tmp, path.Join(dir, snapName)); err != nil {
		return err
	}
	if err := l.fsys.SyncDir(dir); err != nil {
		return err
	}

	// 2. Fresh log generation with a durable header.
	header := encodeLogHeader(gen, l.seq, l.cum)
	f, err := l.fsys.Create(path.Join(dir, logName))
	if err != nil {
		return err
	}
	if _, err := f.Write(header); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := l.fsys.SyncDir(dir); err != nil {
		f.Close()
		return err
	}

	// 3. Superblock swap: the generation becomes live here, atomically.
	sb := encodeSuper(superblock{
		snapSeq: l.seq, gen: gen, fence: l.fence,
		snapName: snapName, logName: logName,
	})
	stmp := path.Join(dir, superName+".tmp")
	if err := writeFileSync(l.fsys, stmp, sb); err != nil {
		f.Close()
		return err
	}
	if err := l.fsys.Rename(stmp, path.Join(dir, superName)); err != nil {
		f.Close()
		return err
	}
	if err := l.fsys.SyncDir(dir); err != nil {
		f.Close()
		return err
	}

	// 4. Garbage-collect: anything but the superblock and the live pair is
	// a previous generation or an interrupted temp file.
	if names, lerr := l.fsys.List(dir); lerr == nil {
		for _, name := range names {
			if name == superName || name == snapName || name == logName {
				continue
			}
			if strings.HasPrefix(name, "snap-") || strings.HasPrefix(name, "wal-") ||
				strings.HasSuffix(name, ".tmp") {
				_ = l.fsys.Remove(path.Join(dir, name))
			}
		}
		_ = l.fsys.SyncDir(dir)
	}

	l.f = f
	l.genMu.Lock()
	l.snapName, l.logName = snapName, logName
	l.gen = gen
	l.live = append(l.live[:0], header...)
	l.genMu.Unlock()
	l.mGen.Store(gen)
	l.mDurable.Store(int64(len(header)))
	l.snapSeq = l.seq
	l.depth = 0
	l.batchesInLog = 0
	l.unsyncedBatch = 0
	l.mDepth.Store(0)
	return nil
}

// ---- replication-facing accessors (safe from any goroutine) ----

// ReplState returns the live replication cursor: the current generation and
// its durable (fsynced) byte length, plus the last committed batch seq.
func (l *Log) ReplState() (gen uint64, durable int64, seq uint64) {
	return l.mGen.Load(), l.mDurable.Load(), l.mSeq.Load()
}

// SnapshotBytes returns a copy of the current generation's snapshot file
// along with the generation it anchors — the full-resync payload a freshly
// connected (or gen-lagged) replica mirrors before tailing LogChunk.
func (l *Log) SnapshotBytes() (gen uint64, data []byte, err error) {
	l.genMu.Lock()
	defer l.genMu.Unlock()
	data, err = l.fsys.ReadFile(path.Join(l.dir, l.snapName))
	return l.gen, data, err
}

// LogChunk copies up to max durable bytes of generation gen starting at
// byte offset off. It returns ErrGenGone when gen has been superseded
// (compaction or restart) — the replica must full-resync — and an empty
// slice when the replica is caught up to the durable frontier.
func (l *Log) LogChunk(gen uint64, off int64, max int) ([]byte, error) {
	l.genMu.Lock()
	defer l.genMu.Unlock()
	if gen != l.gen {
		return nil, ErrGenGone
	}
	durable := l.mDurable.Load()
	if off < 0 || off > int64(len(l.live)) {
		return nil, fmt.Errorf("wal: log chunk offset %d out of range [0,%d]", off, len(l.live))
	}
	if off >= durable {
		return nil, nil
	}
	end := off + int64(max)
	if end > durable {
		end = durable
	}
	return append([]byte(nil), l.live[off:end]...), nil
}
