// Package wal makes the graph durable: an append-only mutation log with
// CRC32C-checksummed, length-prefixed records, batch-commit markers, a
// configurable fsync policy, and periodic compaction into CSR-codec
// snapshots — a superblock names the live (snapshot, log-suffix) pair, and
// every generation switch goes through atomic renames and directory fsyncs.
// Recovery truncates at the first torn or corrupt record and replays only
// committed batches, so a kill -9 at any point between two filesystem
// operations restores exactly a committed-batch prefix of the history; the
// crash-point sweep in crash_test.go proves that claim at every such point
// under the FaultFS fault injector.
//
// Edge records carry their validity interval in batch-sequence time, which
// makes the log a native time-indexed graph encoding: temporal windows load
// as range scans over the committed suffix (temporal.LoadWindow) instead of
// full rebuilds.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path"
	"strings"
	"sync/atomic"
	"time"

	"structura/internal/graph"
)

// SyncPolicy picks when Append calls fsync.
type SyncPolicy int

const (
	// SyncEachBatch fsyncs before Append returns: an acknowledged batch is
	// durable. The default, and the policy every durability claim assumes.
	SyncEachBatch SyncPolicy = iota
	// SyncInterval fsyncs every Options.SyncEvery batches: bounded loss
	// window, amortized fsync cost.
	SyncInterval
	// SyncNone never fsyncs from Append; the OS decides. Recovery still
	// yields a committed-batch prefix — just possibly an older one.
	SyncNone
)

// Options tunes a Log. The zero value is usable: OS filesystem, fsync per
// batch, compaction every 1024 batches.
type Options struct {
	// FS is the filesystem; nil means the real one. Tests inject MemFS or
	// FaultFS here.
	FS FS
	// Sync is the fsync policy (default SyncEachBatch).
	Sync SyncPolicy
	// SyncEvery is the SyncInterval period in batches (default 8).
	SyncEvery int
	// CompactEvery snapshots and truncates the log after this many
	// committed batches (default 1024; negative disables compaction).
	CompactEvery int
}

func (o *Options) setDefaults() {
	if o.FS == nil {
		o.FS = OS()
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 8
	}
	if o.CompactEvery == 0 {
		o.CompactEvery = 1024
	}
}

const superName = "SUPER"

// ErrNoStore is returned by Open when dir holds no initialized store.
var ErrNoStore = errors.New("wal: no store in directory")

// ErrBroken is the sticky state after an append-path disk error: the log
// refuses further appends (the file may end in a torn frame) and the owner
// must re-open the store, which truncates the tail.
var ErrBroken = errors.New("wal: log broken by an earlier write error")

// Metrics is a point-in-time snapshot of a Log's counters, safe to read
// concurrently with appends.
type Metrics struct {
	Seq         uint64 // last committed batch sequence
	Records     uint64 // cumulative mutation records (including compacted history)
	Batches     uint64 // batches appended by this process
	Syncs       uint64 // fsync calls issued by Append
	Compactions uint64 // snapshot+truncate cycles run by this process
	Depth       uint64 // mutation records in the live log suffix
	FsyncTotal  time.Duration
	FsyncMax    time.Duration
}

// Log is the durable side of a mutating graph: the owner appends committed
// mutation batches, the Log keeps an authoritative replica and periodically
// compacts it into a snapshot. A Log is single-writer (the serving layer's
// writer goroutine); Metrics alone may be read concurrently.
type Log struct {
	fsys FS
	dir  string
	opts Options

	g *graph.Graph // authoritative durable replica

	f        File
	snapName string
	logName  string
	snapSeq  uint64

	seq           uint64 // last committed batch
	cum           uint64 // cumulative mutation records ever committed
	depth         int    // mutation records in the live log
	batchesInLog  int
	unsyncedBatch int
	broken        error
	buf           []byte // reused frame buffer
	mSeq, mCum    atomic.Uint64
	mBatches      atomic.Uint64
	mSyncs        atomic.Uint64
	mCompactions  atomic.Uint64
	mDepth        atomic.Uint64
	mFsyncTotalNs atomic.Uint64
	mFsyncMaxNs   atomic.Uint64
}

// Create initializes dir as a fresh store seeded with g (cloned; the
// caller's graph is not retained) at batch sequence 0, and returns the open
// Log. It fails if dir already holds a store.
func Create(dir string, g *graph.Graph, opts Options) (*Log, error) {
	opts.setDefaults()
	fsys := opts.FS
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, err
	}
	if _, err := fsys.ReadFile(path.Join(dir, superName)); err == nil {
		return nil, fmt.Errorf("wal: %s already holds a store (use Open)", dir)
	}
	l := &Log{fsys: fsys, dir: dir, opts: opts, g: g.Clone()}
	if err := l.newGeneration(); err != nil {
		return nil, err
	}
	l.publishMetrics()
	return l, nil
}

// Open recovers the store in dir: it loads the superblock's snapshot,
// replays the committed-batch prefix of the log (truncating at the first
// torn or corrupt record), and starts a fresh generation — so the torn tail,
// if any, is physically discarded. The recovered replica is reachable via
// Graph.
func Open(dir string, opts Options) (*Log, Recovery, error) {
	opts.setDefaults()
	g, rec, err := replayDir(opts.FS, dir, nil)
	if err != nil {
		return nil, rec, err
	}
	l := &Log{
		fsys: opts.FS, dir: dir, opts: opts, g: g,
		seq: rec.Seq, cum: rec.Records,
	}
	if err := l.newGeneration(); err != nil {
		return nil, rec, err
	}
	l.publishMetrics()
	return l, rec, nil
}

// OpenOrCreate opens the store in dir if one exists, otherwise creates one
// seeded with g. created reports which path ran.
func OpenOrCreate(dir string, g *graph.Graph, opts Options) (l *Log, rec Recovery, created bool, err error) {
	o := opts
	o.setDefaults()
	if _, rerr := o.FS.ReadFile(path.Join(dir, superName)); rerr != nil {
		if !errors.Is(rerr, os.ErrNotExist) {
			return nil, Recovery{}, false, rerr
		}
		l, err = Create(dir, g, opts)
		return l, Recovery{}, true, err
	}
	l, rec, err = Open(dir, opts)
	return l, rec, false, err
}

// Graph returns the durable replica. The caller must treat it as read-only;
// it advances only through Append.
func (l *Log) Graph() *graph.Graph { return l.g }

// Seq returns the last committed batch sequence.
func (l *Log) Seq() uint64 { return l.seq }

// Dir returns the store directory.
func (l *Log) Dir() string { return l.dir }

// Metrics returns a consistent-enough snapshot of the log counters; safe
// from any goroutine.
func (l *Log) Metrics() Metrics {
	return Metrics{
		Seq:         l.mSeq.Load(),
		Records:     l.mCum.Load(),
		Batches:     l.mBatches.Load(),
		Syncs:       l.mSyncs.Load(),
		Compactions: l.mCompactions.Load(),
		Depth:       l.mDepth.Load(),
		FsyncTotal:  time.Duration(l.mFsyncTotalNs.Load()),
		FsyncMax:    time.Duration(l.mFsyncMaxNs.Load()),
	}
}

func (l *Log) publishMetrics() {
	l.mSeq.Store(l.seq)
	l.mCum.Store(l.cum)
	l.mDepth.Store(uint64(l.depth))
}

// Append journals one mutation batch: every record is framed and written,
// sealed by a commit marker, fsynced per policy, and applied to the durable
// replica under the same topological acceptance rule the serving engines
// use (self-loops, duplicate adds, and missing removes are logged but not
// applied — replay makes the same decisions). Edge records are stamped with
// the new batch sequence as their validity bound: adds open at it, removes
// close at it. It returns the committed batch sequence.
//
// Any filesystem error marks the log broken: the batch must be considered
// not durable, and every later Append fails with ErrBroken until the store
// is re-opened (which truncates the torn tail).
func (l *Log) Append(recs []Record) (uint64, error) {
	if l.broken != nil {
		return 0, ErrBroken
	}
	if len(recs) == 0 {
		return l.seq, nil
	}
	seq := l.seq + 1
	buf := l.buf[:0]
	for i := range recs {
		r := &recs[i]
		switch r.Type {
		case TAddEdge:
			r.From, r.To = int64(seq), -1
		case TRemoveEdge:
			r.From, r.To = 0, int64(seq)
		case TWeight:
			r.From, r.To = int64(seq), 0
		case TCommit:
			return 0, fmt.Errorf("wal: commit records are appended by the log, not callers")
		}
		buf = appendFrame(buf, *r)
	}
	buf = appendFrame(buf, Record{Type: TCommit, Seq: seq, Count: uint32(len(recs))})
	l.buf = buf[:0]

	if _, err := l.f.Write(buf); err != nil {
		l.broken = err
		return 0, fmt.Errorf("wal: append batch %d: %w", seq, err)
	}
	l.unsyncedBatch++
	needSync := l.opts.Sync == SyncEachBatch ||
		(l.opts.Sync == SyncInterval && l.unsyncedBatch >= l.opts.SyncEvery)
	if needSync {
		start := time.Now()
		if err := l.f.Sync(); err != nil {
			l.broken = err
			return 0, fmt.Errorf("wal: fsync batch %d: %w", seq, err)
		}
		d := uint64(time.Since(start).Nanoseconds())
		l.mSyncs.Add(1)
		l.mFsyncTotalNs.Add(d)
		for {
			cur := l.mFsyncMaxNs.Load()
			if d <= cur || l.mFsyncMaxNs.CompareAndSwap(cur, d) {
				break
			}
		}
		l.unsyncedBatch = 0
	}

	// The write is down; commit the batch to the replica.
	for _, r := range recs {
		applyRecord(l.g, r)
	}
	l.seq = seq
	l.cum += uint64(len(recs))
	l.depth += len(recs)
	l.batchesInLog++
	l.mBatches.Add(1)
	l.publishMetrics()

	if l.opts.CompactEvery > 0 && l.batchesInLog >= l.opts.CompactEvery {
		if err := l.compact(); err != nil {
			l.broken = err
			return 0, fmt.Errorf("wal: compact at batch %d: %w", seq, err)
		}
	}
	return seq, nil
}

// Close fsyncs and closes the live log file. The store stays openable.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	var err error
	if l.broken == nil {
		err = l.f.Sync()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// applyRecord applies one mutation record to g under the topological
// acceptance rule shared with the serving engines, reporting whether it
// applied. The rule is deterministic, so log replay reconstructs the exact
// replica.
func applyRecord(g *graph.Graph, r Record) bool {
	n := g.N()
	switch r.Type {
	case TAddNode:
		g.AddNode()
		return true
	case TRemoveNode:
		v := int(r.U)
		if v < 0 || v >= n {
			return false
		}
		for _, u := range g.Neighbors(v) {
			g.RemoveEdge(v, u)
			if g.Directed() {
				g.RemoveEdge(u, v)
			}
		}
		return true
	case TAddEdge:
		u, v := int(r.U), int(r.V)
		if u < 0 || u >= n || v < 0 || v >= n || u == v || g.HasEdge(u, v) {
			return false
		}
		return g.AddWeightedEdge(u, v, r.Weight) == nil
	case TRemoveEdge:
		u, v := int(r.U), int(r.V)
		if u < 0 || u >= n || v < 0 || v >= n {
			return false
		}
		return g.RemoveEdge(u, v)
	case TWeight:
		u, v := int(r.U), int(r.V)
		if u < 0 || u >= n || v < 0 || v >= n || !g.HasEdge(u, v) {
			return false
		}
		// The graph has no in-place weight update; remove + re-add is
		// deterministic on both the live and the replay path.
		g.RemoveEdge(u, v)
		return g.AddWeightedEdge(u, v, r.Weight) == nil
	}
	return false
}

// newGeneration compacts the current replica into a fresh (snapshot, empty
// log) pair and atomically repoints the superblock at it. The ordering is
// the crash-safety argument: each artifact is durable (file fsync + dir
// fsync) before anything references it, the superblock swap is an atomic
// rename, and old files are removed only after the new superblock is
// durable — so a crash at any step leaves either the old or the new
// generation fully intact.
func (l *Log) compact() error {
	old := l.f
	if err := l.newGeneration(); err != nil {
		return err
	}
	if old != nil {
		old.Close()
	}
	l.mCompactions.Add(1)
	return nil
}

func (l *Log) newGeneration() error {
	snapName := fmt.Sprintf("snap-%016d.snap", l.seq)
	logName := fmt.Sprintf("wal-%016d.log", l.seq)
	dir := l.dir

	// 1. Snapshot: temp, fsync, atomic rename, dir fsync.
	tmp := path.Join(dir, snapName+".tmp")
	if err := writeFileSync(l.fsys, tmp, EncodeSnapshot(l.g, l.seq, l.cum)); err != nil {
		return err
	}
	if err := l.fsys.Rename(tmp, path.Join(dir, snapName)); err != nil {
		return err
	}
	if err := l.fsys.SyncDir(dir); err != nil {
		return err
	}

	// 2. Fresh log generation with a durable header.
	f, err := l.fsys.Create(path.Join(dir, logName))
	if err != nil {
		return err
	}
	if _, err := f.Write(encodeLogHeader(l.seq, l.cum)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := l.fsys.SyncDir(dir); err != nil {
		f.Close()
		return err
	}

	// 3. Superblock swap: the generation becomes live here, atomically.
	sb := encodeSuper(superblock{snapSeq: l.seq, snapName: snapName, logName: logName})
	stmp := path.Join(dir, superName+".tmp")
	if err := writeFileSync(l.fsys, stmp, sb); err != nil {
		f.Close()
		return err
	}
	if err := l.fsys.Rename(stmp, path.Join(dir, superName)); err != nil {
		f.Close()
		return err
	}
	if err := l.fsys.SyncDir(dir); err != nil {
		f.Close()
		return err
	}

	// 4. Garbage-collect: anything but the superblock and the live pair is
	// a previous generation or an interrupted temp file.
	if names, lerr := l.fsys.List(dir); lerr == nil {
		for _, name := range names {
			if name == superName || name == snapName || name == logName {
				continue
			}
			if strings.HasPrefix(name, "snap-") || strings.HasPrefix(name, "wal-") ||
				strings.HasSuffix(name, ".tmp") {
				_ = l.fsys.Remove(path.Join(dir, name))
			}
		}
		_ = l.fsys.SyncDir(dir)
	}

	l.f = f
	l.snapName, l.logName = snapName, logName
	l.snapSeq = l.seq
	l.depth = 0
	l.batchesInLog = 0
	l.unsyncedBatch = 0
	l.mDepth.Store(0)
	return nil
}
