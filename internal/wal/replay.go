package wal

import (
	"errors"
	"fmt"
	"os"
	"path"

	"structura/internal/graph"
)

// Recovery reports what Open (or Replay) reconstructed from disk.
type Recovery struct {
	SnapshotSeq uint64 // batch seq of the snapshot replay started from
	Seq         uint64 // last committed batch recovered
	Batches     int    // committed batches replayed from the log suffix
	Records     uint64 // cumulative mutation records in the recovered state
	Replayed    int    // mutation records replayed from the log suffix
	Nodes       int    // node count of the recovered graph
	TruncatedAt int64  // log offset of the first unusable byte (-1: clean tail)
	Reason      string // why the log was truncated there, "" when clean

	Gen   uint64 // generation counter of the recovered superblock
	Fence uint64 // fencing token of the recovered superblock (0: v1 store)

	// Labels is the recovered durable label epoch — snapshot section plus
	// replayed label deltas — or nil when the store never journaled
	// labels. Labels.Seq is the batch the epoch reflects; it can trail Seq
	// (labels are written after their batch's commit marker, so a crash
	// between the two loses only the label suffix).
	Labels        *LabelSet
	LabelRecords  int   // label-delta records replayed from the log suffix
	LabelsIgnored int   // label records skipped (stamped ahead of the durable topology)
	Dirty         []int // nodes mutated after Labels.Seq — heal seeds for a warm start
	RecoveryNs    int64 // wall time Open spent replaying durable state
}

// Truncated reports whether recovery discarded a torn or corrupt tail.
func (r Recovery) Truncated() bool { return r.TruncatedAt >= 0 }

// ErrStopReplay, returned by a Replay callback, stops the scan cleanly —
// the range-scan early exit for windowed loads.
var ErrStopReplay = errors.New("wal: stop replay")

// Replay streams the durable committed history in dir, read-only: first
// every edge of the superblock's snapshot (as synthetic TAddEdge records
// whose From is the snapshot's batch seq — earlier history is compacted
// away), then every *applied* mutation record of each committed batch in
// order, then the batch's TCommit marker. Records of uncommitted or torn
// tails are never surfaced. The callback may return ErrStopReplay to end
// the scan early; any other error aborts and is returned.
func Replay(fsys FS, dir string, fn func(Record) error) (Recovery, error) {
	if fsys == nil {
		fsys = OS()
	}
	_, rec, err := replayDir(fsys, dir, fn)
	return rec, err
}

// replayDir loads the superblock, snapshot, and committed log prefix of
// dir. fn, when non-nil, observes the stream as documented on Replay.
func replayDir(fsys FS, dir string, fn func(Record) error) (*graph.Graph, Recovery, error) {
	rec := Recovery{TruncatedAt: -1}

	sbData, err := fsys.ReadFile(path.Join(dir, superName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, rec, fmt.Errorf("%w: %s", ErrNoStore, dir)
		}
		return nil, rec, err
	}
	sb, err := decodeSuper(sbData)
	if err != nil {
		return nil, rec, err
	}

	snapData, err := fsys.ReadFile(path.Join(dir, sb.snapName))
	if err != nil {
		return nil, rec, fmt.Errorf("%w: superblock names missing snapshot %s: %v", ErrCorrupt, sb.snapName, err)
	}
	g, snapSeq, snapCum, labels, err := DecodeSnapshotLabels(snapData)
	if err != nil {
		return nil, rec, err
	}
	if snapSeq != sb.snapSeq {
		return nil, rec, fmt.Errorf("%w: snapshot %s is batch %d, superblock says %d",
			ErrCorrupt, sb.snapName, snapSeq, sb.snapSeq)
	}
	rec.SnapshotSeq = snapSeq
	rec.Seq = snapSeq
	rec.Records = snapCum
	rec.Gen = sb.gen
	rec.Fence = sb.fence
	rec.Labels = labels

	if fn != nil {
		for _, e := range g.Edges() {
			r := Record{
				Type: TAddEdge, U: int32(e.From), V: int32(e.To),
				Weight: e.Weight, From: int64(snapSeq), To: -1,
			}
			if ferr := fn(r); ferr != nil {
				if errors.Is(ferr, ErrStopReplay) {
					rec.Nodes = g.N()
					return g, rec, nil
				}
				return nil, rec, ferr
			}
		}
	}

	logData, lerr := fsys.ReadFile(path.Join(dir, sb.logName))
	switch {
	case errors.Is(lerr, os.ErrNotExist):
		// The superblock swap is durable before old-generation removal, so
		// a referenced-but-missing log cannot come from a crash: note it
		// and recover from the snapshot alone.
		rec.TruncatedAt = 0
		rec.Reason = "log file missing"
	case lerr != nil:
		return nil, rec, lerr
	default:
		if err := replayLog(logData, g, &rec, fn); err != nil {
			return nil, rec, err
		}
	}
	rec.Nodes = g.N()
	return g, rec, nil
}

// batchTouched records which nodes one committed batch mutated, so the
// warm-start path can heal exactly the suffix the durable labels missed.
type batchTouched struct {
	seq   uint64
	nodes []int32
}

// dirtyAfter flattens the touched sets of every batch newer than labelSeq
// into a deduplicated node list.
func dirtyAfter(touched []batchTouched, labelSeq uint64) []int {
	seen := make(map[int32]struct{})
	var out []int
	for _, bt := range touched {
		if bt.seq <= labelSeq {
			continue
		}
		for _, v := range bt.nodes {
			if _, ok := seen[v]; ok {
				continue
			}
			seen[v] = struct{}{}
			out = append(out, int(v))
		}
	}
	return out
}

// replayLog applies the committed-batch prefix of one log generation to g,
// truncating at the first torn or inconsistent record. Only a bad header or
// a callback error can fail it; everything else is a truncation point.
func replayLog(data []byte, g *graph.Graph, rec *Recovery, fn func(Record) error) error {
	gen, startSeq, startCum, err := decodeLogHeader(data)
	if err != nil {
		// The header is written and fsynced before the superblock ever
		// references the generation; a torn header means the superblock
		// swap itself was interrupted in a way rename atomicity excludes,
		// so treat it as an empty suffix rather than failing recovery.
		rec.TruncatedAt = 0
		rec.Reason = fmt.Sprintf("unreadable log header: %v", err)
		return nil
	}
	if startSeq != rec.SnapshotSeq || startCum != rec.Records || (rec.Gen != 0 && gen != rec.Gen) {
		rec.TruncatedAt = 0
		rec.Reason = fmt.Sprintf("log generation (gen %d, seq %d, cum %d) does not match superblock (gen %d, seq %d, cum %d)",
			gen, startSeq, startCum, rec.Gen, rec.SnapshotSeq, rec.Records)
		return nil
	}

	off := int64(logHeaderLen)
	pending := make([]Record, 0, 64)
	var touched []batchTouched
	var batchNodes []int32
	pendingStart := off
	for int(off) < len(data) {
		r, n, ferr := readFrame(data[off:])
		if ferr != nil {
			rec.TruncatedAt = pendingStart
			rec.Reason = fmt.Sprintf("at offset %d: %v", off, ferr)
			break
		}
		if r.Type == TLabelDelta {
			// Label records live between batches, right after the commit
			// marker of the batch they reflect; one inside a pending batch
			// is stream damage.
			if len(pending) > 0 {
				rec.TruncatedAt = pendingStart
				rec.Reason = fmt.Sprintf("at offset %d: label record inside an uncommitted batch", off)
				break
			}
			// Never let recovered labels run ahead of the durable
			// topology: a delta stamped past the replayed seq is skipped.
			if r.Label.Seq > rec.Seq {
				rec.LabelsIgnored++
			} else {
				if rec.Labels == nil {
					rec.Labels = &LabelSet{}
				}
				if applyLabelDelta(rec.Labels, r.Label) {
					rec.LabelRecords++
				} else {
					rec.LabelsIgnored++
				}
			}
			off += int64(n)
			pendingStart = off
			continue
		}
		if r.Type != TCommit {
			pending = append(pending, r)
			off += int64(n)
			continue
		}
		if r.Seq != rec.Seq+1 || int(r.Count) != len(pending) {
			rec.TruncatedAt = pendingStart
			rec.Reason = fmt.Sprintf("at offset %d: commit marker (seq %d, count %d) does not seal batch %d of %d record(s)",
				off, r.Seq, r.Count, rec.Seq+1, len(pending))
			break
		}
		batchNodes = batchNodes[:0]
		for _, pr := range pending {
			if pr.Type == TRemoveNode && int(pr.U) >= 0 && int(pr.U) < g.N() {
				for _, nb := range g.Neighbors(int(pr.U)) {
					batchNodes = append(batchNodes, int32(nb))
				}
			}
			if applyRecord(g, pr) {
				switch pr.Type {
				case TAddNode:
					batchNodes = append(batchNodes, int32(g.N()-1))
				case TRemoveNode:
					batchNodes = append(batchNodes, pr.U)
				default:
					batchNodes = append(batchNodes, pr.U, pr.V)
				}
				if fn != nil {
					if cerr := fn(pr); cerr != nil {
						if errors.Is(cerr, ErrStopReplay) {
							return nil
						}
						return cerr
					}
				}
			}
		}
		rec.Seq = r.Seq
		rec.Batches++
		rec.Replayed += len(pending)
		rec.Records += uint64(len(pending))
		touched = append(touched, batchTouched{seq: r.Seq, nodes: append([]int32(nil), batchNodes...)})
		pending = pending[:0]
		off += int64(n)
		pendingStart = off
		if fn != nil {
			if cerr := fn(r); cerr != nil {
				if errors.Is(cerr, ErrStopReplay) {
					return nil
				}
				return cerr
			}
		}
	}
	if !rec.Truncated() && len(pending) > 0 {
		rec.TruncatedAt = pendingStart
		rec.Reason = fmt.Sprintf("%d record(s) after the last commit marker", len(pending))
	}
	// A recovered label epoch that cannot describe the recovered graph
	// (node count drifted with no covering Reset delta) is unusable; drop
	// it rather than warm-start from a mismatched array.
	if rec.Labels != nil && rec.Labels.N() != g.N() {
		rec.Labels = nil
		rec.LabelsIgnored += rec.LabelRecords
		rec.LabelRecords = 0
	}
	if rec.Labels != nil {
		rec.Dirty = dirtyAfter(touched, rec.Labels.Seq)
	}
	return nil
}
