package wal

import (
	"errors"
	"fmt"
	"os"
	"path"

	"structura/internal/graph"
)

// Recovery reports what Open (or Replay) reconstructed from disk.
type Recovery struct {
	SnapshotSeq uint64 // batch seq of the snapshot replay started from
	Seq         uint64 // last committed batch recovered
	Batches     int    // committed batches replayed from the log suffix
	Records     uint64 // cumulative mutation records in the recovered state
	Replayed    int    // mutation records replayed from the log suffix
	Nodes       int    // node count of the recovered graph
	TruncatedAt int64  // log offset of the first unusable byte (-1: clean tail)
	Reason      string // why the log was truncated there, "" when clean
}

// Truncated reports whether recovery discarded a torn or corrupt tail.
func (r Recovery) Truncated() bool { return r.TruncatedAt >= 0 }

// ErrStopReplay, returned by a Replay callback, stops the scan cleanly —
// the range-scan early exit for windowed loads.
var ErrStopReplay = errors.New("wal: stop replay")

// Replay streams the durable committed history in dir, read-only: first
// every edge of the superblock's snapshot (as synthetic TAddEdge records
// whose From is the snapshot's batch seq — earlier history is compacted
// away), then every *applied* mutation record of each committed batch in
// order, then the batch's TCommit marker. Records of uncommitted or torn
// tails are never surfaced. The callback may return ErrStopReplay to end
// the scan early; any other error aborts and is returned.
func Replay(fsys FS, dir string, fn func(Record) error) (Recovery, error) {
	if fsys == nil {
		fsys = OS()
	}
	_, rec, err := replayDir(fsys, dir, fn)
	return rec, err
}

// replayDir loads the superblock, snapshot, and committed log prefix of
// dir. fn, when non-nil, observes the stream as documented on Replay.
func replayDir(fsys FS, dir string, fn func(Record) error) (*graph.Graph, Recovery, error) {
	rec := Recovery{TruncatedAt: -1}

	sbData, err := fsys.ReadFile(path.Join(dir, superName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, rec, fmt.Errorf("%w: %s", ErrNoStore, dir)
		}
		return nil, rec, err
	}
	sb, err := decodeSuper(sbData)
	if err != nil {
		return nil, rec, err
	}

	snapData, err := fsys.ReadFile(path.Join(dir, sb.snapName))
	if err != nil {
		return nil, rec, fmt.Errorf("%w: superblock names missing snapshot %s: %v", ErrCorrupt, sb.snapName, err)
	}
	g, snapSeq, snapCum, err := DecodeSnapshot(snapData)
	if err != nil {
		return nil, rec, err
	}
	if snapSeq != sb.snapSeq {
		return nil, rec, fmt.Errorf("%w: snapshot %s is batch %d, superblock says %d",
			ErrCorrupt, sb.snapName, snapSeq, sb.snapSeq)
	}
	rec.SnapshotSeq = snapSeq
	rec.Seq = snapSeq
	rec.Records = snapCum

	if fn != nil {
		for _, e := range g.Edges() {
			r := Record{
				Type: TAddEdge, U: int32(e.From), V: int32(e.To),
				Weight: e.Weight, From: int64(snapSeq), To: -1,
			}
			if ferr := fn(r); ferr != nil {
				if errors.Is(ferr, ErrStopReplay) {
					rec.Nodes = g.N()
					return g, rec, nil
				}
				return nil, rec, ferr
			}
		}
	}

	logData, lerr := fsys.ReadFile(path.Join(dir, sb.logName))
	switch {
	case errors.Is(lerr, os.ErrNotExist):
		// The superblock swap is durable before old-generation removal, so
		// a referenced-but-missing log cannot come from a crash: note it
		// and recover from the snapshot alone.
		rec.TruncatedAt = 0
		rec.Reason = "log file missing"
	case lerr != nil:
		return nil, rec, lerr
	default:
		if err := replayLog(logData, g, &rec, fn); err != nil {
			return nil, rec, err
		}
	}
	rec.Nodes = g.N()
	return g, rec, nil
}

// replayLog applies the committed-batch prefix of one log generation to g,
// truncating at the first torn or inconsistent record. Only a bad header or
// a callback error can fail it; everything else is a truncation point.
func replayLog(data []byte, g *graph.Graph, rec *Recovery, fn func(Record) error) error {
	startSeq, startCum, err := decodeLogHeader(data)
	if err != nil {
		// The header is written and fsynced before the superblock ever
		// references the generation; a torn header means the superblock
		// swap itself was interrupted in a way rename atomicity excludes,
		// so treat it as an empty suffix rather than failing recovery.
		rec.TruncatedAt = 0
		rec.Reason = fmt.Sprintf("unreadable log header: %v", err)
		return nil
	}
	if startSeq != rec.SnapshotSeq || startCum != rec.Records {
		rec.TruncatedAt = 0
		rec.Reason = fmt.Sprintf("log generation (seq %d, cum %d) does not match snapshot (seq %d, cum %d)",
			startSeq, startCum, rec.SnapshotSeq, rec.Records)
		return nil
	}

	off := int64(logHeaderLen)
	pending := make([]Record, 0, 64)
	pendingStart := off
	for int(off) < len(data) {
		r, n, ferr := readFrame(data[off:])
		if ferr != nil {
			rec.TruncatedAt = pendingStart
			rec.Reason = fmt.Sprintf("at offset %d: %v", off, ferr)
			return nil
		}
		if r.Type != TCommit {
			pending = append(pending, r)
			off += int64(n)
			continue
		}
		if r.Seq != rec.Seq+1 || int(r.Count) != len(pending) {
			rec.TruncatedAt = pendingStart
			rec.Reason = fmt.Sprintf("at offset %d: commit marker (seq %d, count %d) does not seal batch %d of %d record(s)",
				off, r.Seq, r.Count, rec.Seq+1, len(pending))
			return nil
		}
		for _, pr := range pending {
			if applyRecord(g, pr) && fn != nil {
				if cerr := fn(pr); cerr != nil {
					if errors.Is(cerr, ErrStopReplay) {
						return nil
					}
					return cerr
				}
			}
		}
		rec.Seq = r.Seq
		rec.Batches++
		rec.Replayed += len(pending)
		rec.Records += uint64(len(pending))
		pending = pending[:0]
		off += int64(n)
		pendingStart = off
		if fn != nil {
			if cerr := fn(r); cerr != nil {
				if errors.Is(cerr, ErrStopReplay) {
					return nil
				}
				return cerr
			}
		}
	}
	if len(pending) > 0 {
		rec.TruncatedAt = pendingStart
		rec.Reason = fmt.Sprintf("%d record(s) after the last commit marker", len(pending))
	}
	return nil
}
