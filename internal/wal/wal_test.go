package wal

import (
	"errors"
	"path"
	"strings"
	"testing"

	"structura/internal/gen"
	"structura/internal/graph"
	"structura/internal/stats"
)

// ringGraph builds a small deterministic seed topology.
func ringGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		_ = g.AddEdge(i, (i+1)%n)
	}
	return g
}

// seededBatches generates b mutation batches over n nodes, mixing adds,
// removes, weight changes, and the occasional node op, deterministically.
func seededBatches(seed int64, n, b, perBatch int) [][]Record {
	r := stats.NewRand(seed)
	out := make([][]Record, b)
	for i := range out {
		batch := make([]Record, perBatch)
		for j := range batch {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			switch r.Intn(10) {
			case 0, 1, 2, 3, 4:
				batch[j] = Record{Type: TAddEdge, U: u, V: v, Weight: 1}
			case 5, 6, 7:
				batch[j] = Record{Type: TRemoveEdge, U: u, V: v}
			case 8:
				batch[j] = Record{Type: TWeight, U: u, V: v, Weight: float64(r.Intn(5)) + 0.5}
			default:
				batch[j] = Record{Type: TRemoveNode, U: u}
			}
		}
		out[i] = batch
	}
	return out
}

func TestCreateAppendReopenRoundTrip(t *testing.T) {
	for _, compactEvery := range []int{-1, 3} {
		fsys := NewMemFS()
		opts := Options{FS: fsys, CompactEvery: compactEvery}
		l, err := Create("d", ringGraph(12), opts)
		if err != nil {
			t.Fatal(err)
		}
		batches := seededBatches(1, 12, 10, 5)
		for i, b := range batches {
			seq, err := l.Append(b)
			if err != nil {
				t.Fatal(err)
			}
			if seq != uint64(i+1) {
				t.Fatalf("batch %d got seq %d", i, seq)
			}
		}
		wantHash := GraphHash(l.Graph())
		wantSeq := l.Seq()
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		l2, rec, err := Open("d", opts)
		if err != nil {
			t.Fatalf("compactEvery=%d: %v", compactEvery, err)
		}
		if rec.Truncated() {
			t.Fatalf("clean shutdown recovered with truncation: %+v", rec)
		}
		if rec.Seq != wantSeq {
			t.Fatalf("recovered seq %d, want %d", rec.Seq, wantSeq)
		}
		if rec.Records != uint64(10*5) {
			t.Fatalf("recovered %d cumulative records, want 50", rec.Records)
		}
		if got := GraphHash(l2.Graph()); got != wantHash {
			t.Fatalf("recovered graph hash %x, want %x", got, wantHash)
		}
		// The recovered log accepts further appends.
		if _, err := l2.Append([]Record{{Type: TAddEdge, U: 0, V: 6, Weight: 1}}); err != nil {
			t.Fatal(err)
		}
		if l2.Seq() != wantSeq+1 {
			t.Fatalf("post-recovery append got seq %d", l2.Seq())
		}
		l2.Close()
	}
}

func TestOpenOrCreate(t *testing.T) {
	fsys := NewMemFS()
	opts := Options{FS: fsys}
	l, _, created, err := OpenOrCreate("d", ringGraph(4), opts)
	if err != nil || !created {
		t.Fatalf("first OpenOrCreate: created=%v err=%v", created, err)
	}
	if _, err := l.Append([]Record{{Type: TAddEdge, U: 0, V: 2, Weight: 1}}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, rec, created, err := OpenOrCreate("d", ringGraph(4), opts)
	if err != nil || created {
		t.Fatalf("second OpenOrCreate: created=%v err=%v", created, err)
	}
	if rec.Seq != 1 || !l2.Graph().HasEdge(0, 2) {
		t.Fatalf("recovery lost the appended edge: %+v", rec)
	}
	l2.Close()

	if _, err := Create("d", ringGraph(4), opts); err == nil {
		t.Fatal("Create over an existing store must fail")
	}
	if _, _, err := Open("nosuch", opts); !errors.Is(err, ErrNoStore) {
		t.Fatalf("Open of empty dir: got %v, want ErrNoStore", err)
	}
}

func TestAppendStampsValidity(t *testing.T) {
	fsys := NewMemFS()
	l, err := Create("d", graph.New(4), Options{FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]Record{{Type: TAddEdge, U: 0, V: 1, Weight: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]Record{{Type: TRemoveEdge, U: 0, V: 1}}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	var adds, removes []Record
	if _, err := Replay(fsys, "d", func(r Record) error {
		switch r.Type {
		case TAddEdge:
			adds = append(adds, r)
		case TRemoveEdge:
			removes = append(removes, r)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(adds) != 1 || adds[0].From != 1 || adds[0].To != -1 {
		t.Fatalf("add record not stamped with batch seq: %+v", adds)
	}
	if len(removes) != 1 || removes[0].To != 2 {
		t.Fatalf("remove record not stamped with batch seq: %+v", removes)
	}
}

func TestCompactionKeepsOneGeneration(t *testing.T) {
	fsys := NewMemFS()
	l, err := Create("d", ringGraph(10), Options{FS: fsys, CompactEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range seededBatches(7, 10, 9, 4) {
		if _, err := l.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Metrics().Compactions; got != 4 {
		t.Fatalf("9 batches at CompactEvery=2: %d compactions, want 4", got)
	}
	names, _ := fsys.List("d")
	var snaps, logs int
	for _, n := range names {
		switch {
		case strings.HasPrefix(n, "snap-"):
			snaps++
		case strings.HasPrefix(n, "wal-"):
			logs++
		case n != superName:
			t.Fatalf("unexpected file %q", n)
		}
	}
	if snaps != 1 || logs != 1 {
		t.Fatalf("dir holds %d snapshot(s), %d log(s); want 1 and 1: %v", snaps, logs, names)
	}
	if l.Metrics().Depth != 4 {
		t.Fatalf("depth %d after compaction at batch 8 of 9, want one 4-record batch", l.Metrics().Depth)
	}
	l.Close()
}

func TestSyncPolicies(t *testing.T) {
	batch := []Record{{Type: TAddEdge, U: 0, V: 2, Weight: 1}}
	perBatch := func(p SyncPolicy, every int) uint64 {
		fsys := NewMemFS()
		l, err := Create("d", ringGraph(6), Options{FS: fsys, Sync: p, SyncEvery: every, CompactEvery: -1})
		if err != nil {
			t.Fatal(err)
		}
		before := l.Metrics().Syncs
		for i := 0; i < 6; i++ {
			rec := batch
			rec[0].V = int32(2 + i%3)
			if _, err := l.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		l.Close()
		return l.Metrics().Syncs - before
	}
	if got := perBatch(SyncEachBatch, 0); got != 6 {
		t.Fatalf("SyncEachBatch: %d syncs for 6 batches", got)
	}
	if got := perBatch(SyncInterval, 3); got != 2 {
		t.Fatalf("SyncInterval(3): %d syncs for 6 batches, want 2", got)
	}
	if got := perBatch(SyncNone, 0); got != 0 {
		t.Fatalf("SyncNone: %d syncs, want 0", got)
	}
}

func TestShortWriteBreaksLogAndRecoveryTruncates(t *testing.T) {
	mem := NewMemFS()
	fsys := NewFaultFS(mem, 11, -1)
	l, err := Create("d", ringGraph(8), Options{FS: fsys, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]Record{{Type: TAddEdge, U: 0, V: 2, Weight: 1}}); err != nil {
		t.Fatal(err)
	}
	fsys.ShortWriteAt(fsys.Ops()) // the next write is cut short
	if _, err := l.Append([]Record{{Type: TAddEdge, U: 0, V: 3, Weight: 1}}); !errors.Is(err, ErrShortWrite) {
		t.Fatalf("short write surfaced as %v", err)
	}
	if _, err := l.Append([]Record{{Type: TAddEdge, U: 0, V: 4, Weight: 1}}); !errors.Is(err, ErrBroken) {
		t.Fatalf("append after failure: got %v, want ErrBroken", err)
	}
	// Recovery from the same filesystem truncates the torn batch.
	l2, rec, err := Open("d", Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Truncated() {
		t.Fatalf("expected truncation, got %+v", rec)
	}
	if rec.Seq != 1 || !l2.Graph().HasEdge(0, 2) || l2.Graph().HasEdge(0, 3) {
		t.Fatalf("recovered wrong prefix: %+v", rec)
	}
	l2.Close()
}

func TestPostFsyncBitFlipTruncatesAtCorruptRecord(t *testing.T) {
	fsys := NewMemFS()
	l, err := Create("d", ringGraph(8), Options{FS: fsys, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := l.Append([]Record{{Type: TAddEdge, U: 0, V: int32(2 + i), Weight: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	logName := l.logName
	// Flip a durable bit in the third batch's region of the log.
	synced := fsys.SyncedLen(path.Join("d", logName))
	batchBytes := (synced - logHeaderLen) / 4
	off := logHeaderLen + 2*batchBytes + batchBytes/2
	if !fsys.Corrupt(path.Join("d", logName), off, 0x40) {
		t.Fatalf("corrupt offset %d of %d out of range", off, synced)
	}
	l2, rec, err := Open("d", Options{FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Truncated() || rec.Seq != 2 {
		t.Fatalf("bit flip in batch 3: recovered %+v, want truncation at seq 2", rec)
	}
	g := l2.Graph()
	if !g.HasEdge(0, 2) || !g.HasEdge(0, 3) || g.HasEdge(0, 4) || g.HasEdge(0, 5) {
		t.Fatal("recovered graph is not the 2-batch prefix")
	}
	l2.Close()
}

func TestCorruptSnapshotAndSuperblockAreNamedErrors(t *testing.T) {
	fsys := NewMemFS()
	l, err := Create("d", ringGraph(8), Options{FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	snapPath := path.Join("d", l.snapName)

	flip := func(name string, off int) {
		if !fsys.Corrupt(name, off, 0x01) {
			t.Fatalf("corrupt %s@%d failed", name, off)
		}
	}
	flip(snapPath, 30)
	if _, _, err := Open("d", Options{FS: fsys}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt snapshot: got %v, want ErrCorrupt", err)
	}
	flip(snapPath, 30) // restore
	flip(path.Join("d", superName), 8)
	if _, _, err := Open("d", Options{FS: fsys}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt superblock: got %v, want ErrCorrupt", err)
	}
}

func TestGraphAndCSRHashAgree(t *testing.T) {
	r := stats.NewRand(5)
	g := gen.SparseErdosRenyi(r, 200, 0.03)
	if GraphHash(g) != CSRHash(g.Freeze()) {
		t.Fatal("GraphHash and CSRHash disagree on the same topology")
	}
	h := GraphHash(g)
	_ = g.AddEdge(0, 199)
	if GraphHash(g) == h {
		t.Fatal("hash did not move after a mutation")
	}
	g.RemoveEdge(0, 199)
	if GraphHash(g) != h {
		t.Fatal("hash not restored after undo")
	}
}

func TestSnapshotRoundTripPreservesTopology(t *testing.T) {
	r := stats.NewRand(9)
	g := gen.SparseErdosRenyi(r, 300, 0.02)
	got, seq, cum, err := DecodeSnapshot(EncodeSnapshot(g, 42, 17))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 || cum != 17 {
		t.Fatalf("provenance (%d,%d), want (42,17)", seq, cum)
	}
	if GraphHash(got) != GraphHash(g) {
		t.Fatal("snapshot round trip changed the topology")
	}
}

func TestSaveLoadGraphOSFilesystem(t *testing.T) {
	dir := t.TempDir()
	g := ringGraph(20)
	p := path.Join(dir, "g.snap")
	if err := SaveGraph(p, g); err != nil {
		t.Fatal(err)
	}
	got, err := LoadGraph(p)
	if err != nil {
		t.Fatal(err)
	}
	if GraphHash(got) != GraphHash(g) {
		t.Fatal("SaveGraph/LoadGraph round trip changed the topology")
	}
}

func TestLogLifecycleOnOSFilesystem(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, ringGraph(16), Options{CompactEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range seededBatches(3, 16, 8, 4) {
		if _, err := l.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	want := GraphHash(l.Graph())
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.Seq != 8 || GraphHash(l2.Graph()) != want {
		t.Fatalf("OS recovery: %+v", rec)
	}
}
