package wal

import "path"

// StoreInfo is a read-only description of a store directory — what
// `structura replicate -status` prints and what a restarting replica uses
// to resume mirroring without replaying through a full Open.
type StoreInfo struct {
	Dir      string
	Gen      uint64
	Fence    uint64
	SnapSeq  uint64
	SnapName string
	LogName  string
	LogBytes int64 // bytes of the live log generation on disk

	Seq          uint64 // last committed batch recoverable
	Records      uint64 // cumulative mutation records recoverable
	Nodes        int
	LabelSeq     uint64 // batch seq of the recoverable label epoch (0: none)
	HasLabels    bool
	Truncated    bool
	TruncateNote string
}

// Inspect reads dir without mutating it: superblock, snapshot provenance,
// and a committed-prefix replay to report exactly what a recovery would
// reconstruct.
func Inspect(fsys FS, dir string) (StoreInfo, error) {
	if fsys == nil {
		fsys = OS()
	}
	info := StoreInfo{Dir: dir}
	g, rec, err := replayDir(fsys, dir, nil)
	if err != nil {
		return info, err
	}
	sbData, err := fsys.ReadFile(path.Join(dir, superName))
	if err != nil {
		return info, err
	}
	sb, err := decodeSuper(sbData)
	if err != nil {
		return info, err
	}
	info.Gen = sb.gen
	info.Fence = sb.fence
	info.SnapSeq = sb.snapSeq
	info.SnapName = sb.snapName
	info.LogName = sb.logName
	if logData, lerr := fsys.ReadFile(path.Join(dir, sb.logName)); lerr == nil {
		info.LogBytes = int64(len(logData))
	}
	info.Seq = rec.Seq
	info.Records = rec.Records
	info.Nodes = g.N()
	info.HasLabels = rec.Labels != nil
	if rec.Labels != nil {
		info.LabelSeq = rec.Labels.Seq
	}
	info.Truncated = rec.Truncated()
	info.TruncateNote = rec.Reason
	return info, nil
}
