package wal

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func sampleRecords() []Record {
	return []Record{
		{Type: TAddNode},
		{Type: TRemoveNode, U: 7},
		{Type: TAddEdge, U: 1, V: 2, Weight: 2.5, From: 3, To: -1},
		{Type: TRemoveEdge, U: 1, V: 2, To: 9},
		{Type: TWeight, U: 4, V: 5, Weight: 0.25, From: 6},
		{Type: TCommit, Seq: 12, Count: 4},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for _, r := range sampleRecords() {
		p := EncodeRecord(r)
		got, err := DecodeRecord(p)
		if err != nil {
			t.Fatalf("decode %v: %v", r, err)
		}
		if got != r {
			t.Fatalf("round trip: got %+v, want %+v", got, r)
		}
		// Canonical: re-encoding the decoded record reproduces the bytes.
		if !bytes.Equal(EncodeRecord(got), p) {
			t.Fatalf("re-encode of %+v differs", r)
		}
	}
}

func TestRecordNaNWeightRoundTrips(t *testing.T) {
	r := Record{Type: TWeight, U: 1, V: 2, Weight: math.NaN(), From: 1}
	got, err := DecodeRecord(EncodeRecord(r))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(EncodeRecord(got), EncodeRecord(r)) {
		t.Fatal("NaN weight did not round-trip bit-exactly")
	}
}

func TestDecodeRecordErrors(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, ErrRecordLen},
		{"unknown type", []byte{99}, ErrRecordType},
		{"zero type", []byte{0}, ErrRecordType},
		{"short add-edge", EncodeRecord(Record{Type: TAddEdge})[:10], ErrRecordLen},
		{"long commit", append(EncodeRecord(Record{Type: TCommit}), 0), ErrRecordLen},
	}
	for _, tc := range cases {
		if _, err := DecodeRecord(tc.in); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestReadFrameTornCases(t *testing.T) {
	full := appendFrame(nil, Record{Type: TAddEdge, U: 1, V: 2, Weight: 1, From: 1, To: -1})

	if r, n, err := readFrame(full); err != nil || n != len(full) || r.Type != TAddEdge {
		t.Fatalf("clean frame: r=%+v n=%d err=%v", r, n, err)
	}
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := readFrame(full[:cut]); !errors.Is(err, ErrTorn) {
			t.Fatalf("prefix of %d byte(s): got %v, want ErrTorn", cut, err)
		}
	}
	// Flip one payload bit: CRC must catch it.
	for i := frameHeader; i < len(full); i++ {
		bad := append([]byte(nil), full...)
		bad[i] ^= 0x10
		if _, _, err := readFrame(bad); !errors.Is(err, ErrTorn) {
			t.Fatalf("bit flip at %d: got %v, want ErrTorn", i, err)
		}
	}
	// Implausible length field.
	bad := append([]byte(nil), full...)
	bad[0], bad[1], bad[2], bad[3] = 0xff, 0xff, 0xff, 0x7f
	if _, _, err := readFrame(bad); !errors.Is(err, ErrTorn) {
		t.Fatalf("oversize length: got %v, want ErrTorn", err)
	}
}
