package wal

import (
	"encoding/binary"
	"fmt"
	"math"
)

// LabelKind discriminates which served structure a label-delta record
// updates. The on-disk byte values are part of the durable format.
type LabelKind uint8

const (
	// LabelRoute is the distance-vector pair (dist, next) toward Dest.
	LabelRoute LabelKind = 0
	// LabelMIS is the independent-set membership bit.
	LabelMIS LabelKind = 1
	// LabelCDS is the backbone membership bit.
	LabelCDS LabelKind = 2
)

// LabelSet is one complete label epoch as the log persists it: every label
// array the serving layer publishes, stamped with the batch sequence of the
// topology it was computed over. Labels are a cache of computation, not
// history — losing them only costs a recompute — so they ride the same log
// as deltas and are folded into the snapshot at compaction.
type LabelSet struct {
	Seq  uint64 // batch seq of the topology these labels reflect
	Dest int    // destination the route labels point toward

	Dist []float64 // hop distance toward Dest; +Inf unreachable
	Next []int32   // next hop; -1 at Dest and when unreachable
	MIS  []bool    // independent-set membership

	HasCDS bool
	CDS    []bool // backbone membership; nil when not maintained
}

// N returns the label array length (0 for a nil set).
func (ls *LabelSet) N() int {
	if ls == nil {
		return 0
	}
	return len(ls.Dist)
}

// Clone deep-copies the set.
func (ls *LabelSet) Clone() *LabelSet {
	if ls == nil {
		return nil
	}
	out := &LabelSet{Seq: ls.Seq, Dest: ls.Dest, HasCDS: ls.HasCDS}
	out.Dist = append([]float64(nil), ls.Dist...)
	out.Next = append([]int32(nil), ls.Next...)
	out.MIS = append([]bool(nil), ls.MIS...)
	if ls.CDS != nil {
		out.CDS = append([]bool(nil), ls.CDS...)
	}
	return out
}

// LabelDelta is one label-delta record: the changed (node, value) pairs of
// one structure at one epoch publish. A Reset delta reinitializes the whole
// structure before applying its entries (the first delta of a fresh log, or
// a structure whose array length changed); an Absent CDS delta retires the
// backbone entirely.
type LabelDelta struct {
	Kind   LabelKind
	Reset  bool
	Absent bool   // LabelCDS only: backbone no longer maintained
	Seq    uint64 // batch seq of the topology the labels reflect
	N      uint32 // full label-array length (sanity + sizing on Reset)
	Dest   int32  // LabelRoute only; 0 otherwise

	Nodes []int32
	Dists []float64 // LabelRoute, parallel to Nodes
	Nexts []int32   // LabelRoute, parallel to Nodes
	Bits  []bool    // LabelMIS / LabelCDS, parallel to Nodes
}

// Label-delta codec constants. The payload is versioned independently of
// the frame format so the entry layout can evolve without renumbering the
// record type.
const (
	labelDeltaVer = 1

	labelDeltaHeader = 1 + 1 + 1 + 1 + 8 + 4 + 4 + 4 // type, ver, kind, flags, seq, n, dest, count
	labelRouteEntry  = 4 + 8 + 4
	labelBitEntry    = 4 + 1

	// maxLabelEntries bounds one record; larger change sets are chunked.
	maxLabelEntries = 4096

	// maxLabelPayload is the plausibility bound readFrame enforces on
	// label-delta frames.
	maxLabelPayload = labelDeltaHeader + maxLabelEntries*labelRouteEntry

	labelFlagReset  = 1 << 0
	labelFlagAbsent = 1 << 1

	// maxLabelN caps the node count a Reset delta may allocate for —
	// well past the 10M-node scale target, well short of an OOM from a
	// hostile length claim.
	maxLabelN = 1 << 28
)

func (d *LabelDelta) entries() int {
	if d.Kind == LabelRoute {
		return len(d.Nodes)
	}
	return len(d.Nodes)
}

// appendLabelDelta appends d's canonical payload encoding to buf.
func appendLabelDelta(buf []byte, d *LabelDelta) []byte {
	buf = append(buf, byte(TLabelDelta), labelDeltaVer, byte(d.Kind))
	var flags byte
	if d.Reset {
		flags |= labelFlagReset
	}
	if d.Absent {
		flags |= labelFlagAbsent
	}
	buf = append(buf, flags)
	buf = binary.LittleEndian.AppendUint64(buf, d.Seq)
	buf = binary.LittleEndian.AppendUint32(buf, d.N)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(d.Dest))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(d.Nodes)))
	if d.Kind == LabelRoute {
		for i, v := range d.Nodes {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(d.Dists[i]))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(d.Nexts[i]))
		}
		return buf
	}
	for i, v := range d.Nodes {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
		if d.Bits[i] {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

// EncodeLabelDelta returns d's canonical payload (DecodeLabelDelta's
// inverse), including the leading record-type byte.
func EncodeLabelDelta(d *LabelDelta) []byte { return appendLabelDelta(nil, d) }

// DecodeLabelDelta parses one label-delta payload. It never panics:
// arbitrary input yields a delta or a named error, every accepted input
// re-encodes to the same bytes, and boolean entry bytes must be exactly 0
// or 1 (so the encoding stays canonical).
func DecodeLabelDelta(p []byte) (*LabelDelta, error) {
	if len(p) < labelDeltaHeader {
		return nil, fmt.Errorf("%w: label delta has %d byte(s), want >= %d", ErrRecordLen, len(p), labelDeltaHeader)
	}
	if Type(p[0]) != TLabelDelta {
		return nil, fmt.Errorf("%w: label delta starts with type %d", ErrRecordType, p[0])
	}
	if p[1] != labelDeltaVer {
		return nil, fmt.Errorf("%w: label delta version %d (want %d)", ErrRecordType, p[1], labelDeltaVer)
	}
	d := &LabelDelta{Kind: LabelKind(p[2])}
	if d.Kind > LabelCDS {
		return nil, fmt.Errorf("%w: label kind %d", ErrRecordType, p[2])
	}
	flags := p[3]
	if flags&^(byte(labelFlagReset|labelFlagAbsent)) != 0 {
		return nil, fmt.Errorf("%w: label delta flags %#x", ErrRecordType, flags)
	}
	d.Reset = flags&labelFlagReset != 0
	d.Absent = flags&labelFlagAbsent != 0
	if d.Absent && d.Kind != LabelCDS {
		return nil, fmt.Errorf("%w: absent flag on label kind %d", ErrRecordType, d.Kind)
	}
	d.Seq = binary.LittleEndian.Uint64(p[4:])
	d.N = binary.LittleEndian.Uint32(p[12:])
	d.Dest = int32(binary.LittleEndian.Uint32(p[16:]))
	count := int(binary.LittleEndian.Uint32(p[20:]))
	if count > maxLabelEntries {
		return nil, fmt.Errorf("%w: label delta claims %d entries (max %d)", ErrRecordLen, count, maxLabelEntries)
	}
	entry := labelBitEntry
	if d.Kind == LabelRoute {
		entry = labelRouteEntry
	}
	if len(p) != labelDeltaHeader+count*entry {
		return nil, fmt.Errorf("%w: label delta has %d byte(s), want %d for %d entries",
			ErrRecordLen, len(p), labelDeltaHeader+count*entry, count)
	}
	off := labelDeltaHeader
	d.Nodes = make([]int32, count)
	if d.Kind == LabelRoute {
		d.Dists = make([]float64, count)
		d.Nexts = make([]int32, count)
		for i := 0; i < count; i++ {
			d.Nodes[i] = int32(binary.LittleEndian.Uint32(p[off:]))
			d.Dists[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[off+4:]))
			d.Nexts[i] = int32(binary.LittleEndian.Uint32(p[off+12:]))
			off += labelRouteEntry
		}
		return d, nil
	}
	d.Bits = make([]bool, count)
	for i := 0; i < count; i++ {
		d.Nodes[i] = int32(binary.LittleEndian.Uint32(p[off:]))
		switch p[off+4] {
		case 0:
		case 1:
			d.Bits[i] = true
		default:
			return nil, fmt.Errorf("%w: label bit byte %d", ErrRecordLen, p[off+4])
		}
		off += labelBitEntry
	}
	return d, nil
}

// applyLabelDelta folds one delta into ls, allocating arrays on Reset. It
// is defensive against arbitrary decoded input: out-of-range nodes are
// skipped, and a delta whose N disagrees with the current arrays (absent a
// Reset) is rejected. It reports whether the delta applied.
func applyLabelDelta(ls *LabelSet, d *LabelDelta) bool {
	n := int(d.N)
	if n > maxLabelN {
		return false
	}
	switch d.Kind {
	case LabelRoute:
		if d.Reset || len(ls.Dist) != n {
			if !d.Reset {
				return false
			}
			ls.Dist = make([]float64, n)
			ls.Next = make([]int32, n)
			for i := range ls.Dist {
				ls.Dist[i] = math.Inf(1)
				ls.Next[i] = -1
			}
		}
		ls.Dest = int(d.Dest)
		for i, v := range d.Nodes {
			if v < 0 || int(v) >= n {
				continue
			}
			ls.Dist[v] = d.Dists[i]
			ls.Next[v] = d.Nexts[i]
		}
	case LabelMIS:
		if d.Reset || len(ls.MIS) != n {
			if !d.Reset {
				return false
			}
			ls.MIS = make([]bool, n)
		}
		for i, v := range d.Nodes {
			if v < 0 || int(v) >= n {
				continue
			}
			ls.MIS[v] = d.Bits[i]
		}
	case LabelCDS:
		if d.Absent {
			ls.HasCDS = false
			ls.CDS = nil
			break
		}
		if d.Reset || len(ls.CDS) != n {
			if !d.Reset {
				return false
			}
			ls.CDS = make([]bool, n)
		}
		ls.HasCDS = true
		for i, v := range d.Nodes {
			if v < 0 || int(v) >= n {
				continue
			}
			ls.CDS[v] = d.Bits[i]
		}
	default:
		return false
	}
	if d.Seq > ls.Seq {
		ls.Seq = d.Seq
	}
	return true
}

// chunkNodes splits count entries into maxLabelEntries-sized [lo,hi) spans.
func chunkNodes(count int, fn func(lo, hi int)) {
	for lo := 0; lo < count; lo += maxLabelEntries {
		hi := lo + maxLabelEntries
		if hi > count {
			hi = count
		}
		fn(lo, hi)
	}
}

// diffLabels computes the delta records that carry prev to cur. A nil prev,
// a length change, or a destination change yields full Reset deltas. The
// returned deltas are in canonical node-ascending order, chunked at
// maxLabelEntries entries each.
func diffLabels(prev, cur *LabelSet) []*LabelDelta {
	var out []*LabelDelta
	n := cur.N()
	emitRoute := func(nodes []int32, reset bool) {
		chunkNodes(len(nodes), func(lo, hi int) {
			d := &LabelDelta{
				Kind: LabelRoute, Reset: reset && lo == 0, Seq: cur.Seq,
				N: uint32(n), Dest: int32(cur.Dest),
				Nodes: nodes[lo:hi],
				Dists: make([]float64, hi-lo),
				Nexts: make([]int32, hi-lo),
			}
			for i, v := range d.Nodes {
				d.Dists[i] = cur.Dist[v]
				d.Nexts[i] = cur.Next[v]
			}
			out = append(out, d)
		})
	}
	emitBits := func(kind LabelKind, bits []bool, nodes []int32, reset bool) {
		chunkNodes(len(nodes), func(lo, hi int) {
			d := &LabelDelta{
				Kind: kind, Reset: reset && lo == 0, Seq: cur.Seq,
				N: uint32(n), Nodes: nodes[lo:hi], Bits: make([]bool, hi-lo),
			}
			for i, v := range d.Nodes {
				d.Bits[i] = bits[v]
			}
			out = append(out, d)
		})
	}
	allNodes := func() []int32 {
		nodes := make([]int32, n)
		for i := range nodes {
			nodes[i] = int32(i)
		}
		return nodes
	}

	routeReset := prev == nil || len(prev.Dist) != n || prev.Dest != cur.Dest
	if routeReset {
		nodes := allNodes()
		if len(nodes) > 0 {
			emitRoute(nodes, true)
		} else {
			out = append(out, &LabelDelta{Kind: LabelRoute, Reset: true, Seq: cur.Seq, N: 0, Dest: int32(cur.Dest)})
		}
	} else {
		var nodes []int32
		for v := 0; v < n; v++ {
			if cur.Dist[v] != prev.Dist[v] || cur.Next[v] != prev.Next[v] ||
				(math.IsNaN(cur.Dist[v]) != math.IsNaN(prev.Dist[v])) {
				nodes = append(nodes, int32(v))
			}
		}
		if len(nodes) > 0 {
			emitRoute(nodes, false)
		}
	}

	misReset := prev == nil || len(prev.MIS) != len(cur.MIS)
	if misReset {
		emitBits(LabelMIS, cur.MIS, allNodes()[:len(cur.MIS)], true)
	} else {
		var nodes []int32
		for v := range cur.MIS {
			if cur.MIS[v] != prev.MIS[v] {
				nodes = append(nodes, int32(v))
			}
		}
		if len(nodes) > 0 {
			emitBits(LabelMIS, cur.MIS, nodes, false)
		}
	}

	switch {
	case cur.HasCDS && (prev == nil || !prev.HasCDS || len(prev.CDS) != len(cur.CDS)):
		emitBits(LabelCDS, cur.CDS, allNodes()[:len(cur.CDS)], true)
	case cur.HasCDS:
		var nodes []int32
		for v := range cur.CDS {
			if cur.CDS[v] != prev.CDS[v] {
				nodes = append(nodes, int32(v))
			}
		}
		if len(nodes) > 0 {
			emitBits(LabelCDS, cur.CDS, nodes, false)
		}
	case prev != nil && prev.HasCDS:
		out = append(out, &LabelDelta{Kind: LabelCDS, Absent: true, Seq: cur.Seq, N: uint32(n)})
	}
	return out
}
