package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"math"
	"sort"

	"structura/internal/graph"
)

// ErrCorrupt wraps every durable-format decode failure outside the record
// framing: corrupt superblocks, snapshots, and log headers. These files are
// fsynced before anything references them, so (unlike a torn log tail) a
// checksum mismatch here means real damage, not an interrupted write.
var ErrCorrupt = errors.New("wal: corrupt durable file")

const (
	snapMagic  = "STSN"
	snapVer    = 1
	superMagic = "STSB"
	superVer   = 1
	logMagic   = "STWL"
	logVer     = 1

	// logHeaderLen frames a log generation: magic, version, the batch seq
	// and cumulative record count the generation starts from, and a CRC.
	logHeaderLen = 4 + 2 + 8 + 8 + 4
)

// EncodeSnapshot serializes g with its provenance: seq is the batch
// sequence the snapshot reflects, cum the cumulative mutation-record count
// consumed to reach it. Layout: magic, version, seq, cum, directed, n, m,
// the edge list (u, v, weight — each undirected edge once), and a trailing
// CRC32C over everything before it.
func EncodeSnapshot(g *graph.Graph, seq, cum uint64) []byte {
	edges := g.Edges()
	buf := make([]byte, 0, 4+2+8+8+1+4+8+16*len(edges)+4)
	buf = append(buf, snapMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, snapVer)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint64(buf, cum)
	if g.Directed() {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(g.N()))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(edges)))
	for _, e := range edges {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.From))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.To))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Weight))
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
}

// DecodeSnapshot is EncodeSnapshot's inverse. Any truncation, checksum
// mismatch, or malformed edge yields an error wrapping ErrCorrupt; it never
// panics and never returns a partially-built graph.
func DecodeSnapshot(data []byte) (g *graph.Graph, seq, cum uint64, err error) {
	const head = 4 + 2 + 8 + 8 + 1 + 4 + 8
	if len(data) < head+4 {
		return nil, 0, 0, fmt.Errorf("%w: snapshot has %d byte(s)", ErrCorrupt, len(data))
	}
	if string(data[:4]) != snapMagic {
		return nil, 0, 0, fmt.Errorf("%w: snapshot magic %q", ErrCorrupt, data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != snapVer {
		return nil, 0, 0, fmt.Errorf("%w: snapshot version %d (want %d)", ErrCorrupt, v, snapVer)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail) {
		return nil, 0, 0, fmt.Errorf("%w: snapshot checksum mismatch", ErrCorrupt)
	}
	seq = binary.LittleEndian.Uint64(data[6:])
	cum = binary.LittleEndian.Uint64(data[14:])
	directed := data[22] != 0
	n := int(binary.LittleEndian.Uint32(data[23:]))
	m := binary.LittleEndian.Uint64(data[27:])
	if uint64(len(body)-head) != 16*m {
		return nil, 0, 0, fmt.Errorf("%w: snapshot claims %d edge(s) in %d byte(s)", ErrCorrupt, m, len(body)-head)
	}
	if directed {
		g = graph.NewDirected(n)
	} else {
		g = graph.New(n)
	}
	off := head
	for i := uint64(0); i < m; i++ {
		u := int(int32(binary.LittleEndian.Uint32(data[off:])))
		v := int(int32(binary.LittleEndian.Uint32(data[off+4:])))
		w := math.Float64frombits(binary.LittleEndian.Uint64(data[off+8:]))
		off += 16
		if aerr := g.AddWeightedEdge(u, v, w); aerr != nil {
			return nil, 0, 0, fmt.Errorf("%w: snapshot edge (%d,%d): %v", ErrCorrupt, u, v, aerr)
		}
	}
	return g, seq, cum, nil
}

// SaveGraph writes g to path through the snapshot codec, atomically: a temp
// file is written, fsynced, and renamed over the target. The file is
// readable by LoadGraph and usable as a server boot image.
func SaveGraph(path string, g *graph.Graph) error {
	return saveGraphFS(OS(), path, g)
}

func saveGraphFS(fsys FS, path string, g *graph.Graph) error {
	tmp := path + ".tmp"
	if err := writeFileSync(fsys, tmp, EncodeSnapshot(g, 0, 0)); err != nil {
		return err
	}
	return fsys.Rename(tmp, path)
}

// LoadGraph reads a snapshot-codec graph file written by SaveGraph (or a
// live snapshot from a WAL data dir).
func LoadGraph(path string) (*graph.Graph, error) {
	data, err := OS().ReadFile(path)
	if err != nil {
		return nil, err
	}
	g, _, _, err := DecodeSnapshot(data)
	return g, err
}

// writeFileSync creates name, writes data, and fsyncs it (the caller still
// owns the namespace barrier via Rename/SyncDir).
func writeFileSync(fsys FS, name string, data []byte) error {
	f, err := fsys.Create(name)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ---- superblock ----

// superblock names the live (snapshot, log) generation pair. It is tiny and
// rewritten atomically (temp + rename), so recovery sees either the old or
// the new generation, never a mix.
type superblock struct {
	snapSeq  uint64
	snapName string
	logName  string
}

func encodeSuper(sb superblock) []byte {
	buf := make([]byte, 0, 4+2+8+2+len(sb.snapName)+2+len(sb.logName)+4)
	buf = append(buf, superMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, superVer)
	buf = binary.LittleEndian.AppendUint64(buf, sb.snapSeq)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(sb.snapName)))
	buf = append(buf, sb.snapName...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(sb.logName)))
	buf = append(buf, sb.logName...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
}

func decodeSuper(data []byte) (superblock, error) {
	var sb superblock
	if len(data) < 4+2+8+2+2+4 {
		return sb, fmt.Errorf("%w: superblock has %d byte(s)", ErrCorrupt, len(data))
	}
	if string(data[:4]) != superMagic {
		return sb, fmt.Errorf("%w: superblock magic %q", ErrCorrupt, data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != superVer {
		return sb, fmt.Errorf("%w: superblock version %d (want %d)", ErrCorrupt, v, superVer)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail) {
		return sb, fmt.Errorf("%w: superblock checksum mismatch", ErrCorrupt)
	}
	sb.snapSeq = binary.LittleEndian.Uint64(data[6:])
	off := 14
	read := func() (string, bool) {
		if off+2 > len(body) {
			return "", false
		}
		n := int(binary.LittleEndian.Uint16(body[off:]))
		off += 2
		if off+n > len(body) {
			return "", false
		}
		s := string(body[off : off+n])
		off += n
		return s, true
	}
	var ok bool
	if sb.snapName, ok = read(); !ok {
		return sb, fmt.Errorf("%w: superblock snapshot name truncated", ErrCorrupt)
	}
	if sb.logName, ok = read(); !ok {
		return sb, fmt.Errorf("%w: superblock log name truncated", ErrCorrupt)
	}
	return sb, nil
}

// ---- log generation header ----

func encodeLogHeader(startSeq, startCum uint64) []byte {
	buf := make([]byte, 0, logHeaderLen)
	buf = append(buf, logMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, logVer)
	buf = binary.LittleEndian.AppendUint64(buf, startSeq)
	buf = binary.LittleEndian.AppendUint64(buf, startCum)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
}

func decodeLogHeader(data []byte) (startSeq, startCum uint64, err error) {
	if len(data) < logHeaderLen {
		return 0, 0, fmt.Errorf("%w: log header has %d byte(s)", ErrCorrupt, len(data))
	}
	h := data[:logHeaderLen]
	if string(h[:4]) != logMagic {
		return 0, 0, fmt.Errorf("%w: log magic %q", ErrCorrupt, h[:4])
	}
	if v := binary.LittleEndian.Uint16(h[4:]); v != logVer {
		return 0, 0, fmt.Errorf("%w: log version %d (want %d)", ErrCorrupt, v, logVer)
	}
	if crc32.Checksum(h[:logHeaderLen-4], castagnoli) != binary.LittleEndian.Uint32(h[logHeaderLen-4:]) {
		return 0, 0, fmt.Errorf("%w: log header checksum mismatch", ErrCorrupt)
	}
	return binary.LittleEndian.Uint64(h[6:]), binary.LittleEndian.Uint64(h[14:]), nil
}

// ---- topology hashing ----

// GraphHash returns an order-insensitive FNV-1a hash of g's topology and
// weights: two graphs hash equal iff they have the same node count,
// directedness, and multiset of weighted edges, regardless of adjacency
// ordering. CSRHash computes the same value from a frozen snapshot, so an
// epoch can be compared against an independently replayed mutation prefix.
func GraphHash(g *graph.Graph) uint64 {
	return hashEdges(g.N(), g.Directed(), g.Edges())
}

// CSRHash is GraphHash over a frozen CSR snapshot.
func CSRHash(c *graph.CSR) uint64 {
	edges := make([]graph.Edge, 0, c.M())
	n := c.N()
	for u := 0; u < n; u++ {
		ws := c.NeighborWeights(u)
		for i, v := range c.Neighbors(u) {
			if c.Directed() || u < int(v) {
				edges = append(edges, graph.Edge{From: u, To: int(v), Weight: ws[i]})
			}
		}
	}
	return hashEdges(n, c.Directed(), edges)
}

func hashEdges(n int, directed bool, edges []graph.Edge) uint64 {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		if edges[i].To != edges[j].To {
			return edges[i].To < edges[j].To
		}
		return edges[i].Weight < edges[j].Weight
	})
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	put(uint64(n))
	if directed {
		put(1)
	} else {
		put(0)
	}
	for _, e := range edges {
		put(uint64(e.From))
		put(uint64(e.To))
		put(math.Float64bits(e.Weight))
	}
	return h.Sum64()
}
