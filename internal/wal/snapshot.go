package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"math"
	"sort"

	"structura/internal/graph"
)

// ErrCorrupt wraps every durable-format decode failure outside the record
// framing: corrupt superblocks, snapshots, and log headers. These files are
// fsynced before anything references them, so (unlike a torn log tail) a
// checksum mismatch here means real damage, not an interrupted write.
var ErrCorrupt = errors.New("wal: corrupt durable file")

const (
	snapMagic = "STSN"
	// snapVer 2 appends an optional label section (the durable label
	// epoch compacted out of the log) after the edge list; v1 snapshots
	// still decode, with no labels.
	snapVer    = 2
	snapVer1   = 1
	superMagic = "STSB"
	// superVer 2 adds the generation counter and fencing token; v1
	// superblocks still decode with gen = fence = 0.
	superVer   = 2
	superVer1  = 1
	logMagic   = "STWL"
	// logVer 2 adds the generation number, making (gen, byte offset) a
	// globally unique position in the store's log stream — the resume
	// cursor the replication protocol acks.
	logVer = 2

	// LogHeaderLen frames a log generation: magic, version, generation,
	// the batch seq and cumulative record count the generation starts
	// from, and a CRC. Exported so the replica can validate a streamed
	// log prefix before trusting resume offsets into it.
	LogHeaderLen = 4 + 2 + 8 + 8 + 8 + 4
	logHeaderLen = LogHeaderLen
)

// EncodeSnapshot serializes g with its provenance: seq is the batch
// sequence the snapshot reflects, cum the cumulative mutation-record count
// consumed to reach it. Layout: magic, version, seq, cum, directed, n, m,
// the edge list (u, v, weight — each undirected edge once), an optional
// label section, and a trailing CRC32C over everything before it.
func EncodeSnapshot(g *graph.Graph, seq, cum uint64) []byte {
	return EncodeSnapshotLabels(g, seq, cum, nil)
}

// EncodeSnapshotLabels is EncodeSnapshot plus the durable label epoch
// compacted into the image (nil labels → an empty label section).
func EncodeSnapshotLabels(g *graph.Graph, seq, cum uint64, ls *LabelSet) []byte {
	edges := g.Edges()
	buf := make([]byte, 0, 4+2+8+8+1+4+8+16*len(edges)+labelSectionSize(ls)+4)
	buf = append(buf, snapMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, snapVer)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint64(buf, cum)
	if g.Directed() {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(g.N()))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(edges)))
	for _, e := range edges {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.From))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.To))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Weight))
	}
	buf = appendLabelSection(buf, ls)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
}

func labelSectionSize(ls *LabelSet) int {
	if ls == nil {
		return 1
	}
	n := ls.N()
	return 1 + 8 + 4 + 4 + n*12 + (n+7)/8 + 1 + (n+7)/8
}

// appendLabelSection serializes ls: a presence byte, then seq, dest, n,
// dist (f64×n), next (i32×n), the MIS bitset, a CDS presence byte, and the
// CDS bitset when present.
func appendLabelSection(buf []byte, ls *LabelSet) []byte {
	if ls == nil {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	n := ls.N()
	buf = binary.LittleEndian.AppendUint64(buf, ls.Seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ls.Dest))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	for _, d := range ls.Dist {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(d))
	}
	for _, nx := range ls.Next {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(nx))
	}
	buf = appendBitset(buf, ls.MIS)
	if ls.HasCDS {
		buf = append(buf, 1)
		buf = appendBitset(buf, ls.CDS)
	} else {
		buf = append(buf, 0)
	}
	return buf
}

func appendBitset(buf []byte, bits []bool) []byte {
	var b byte
	for i, v := range bits {
		if v {
			b |= 1 << (i % 8)
		}
		if i%8 == 7 {
			buf = append(buf, b)
			b = 0
		}
	}
	if len(bits)%8 != 0 {
		buf = append(buf, b)
	}
	return buf
}

func decodeBitset(data []byte, n int) ([]bool, []byte, error) {
	need := (n + 7) / 8
	if len(data) < need {
		return nil, nil, fmt.Errorf("%w: label bitset has %d byte(s), want %d", ErrCorrupt, len(data), need)
	}
	bits := make([]bool, n)
	for i := range bits {
		bits[i] = data[i/8]&(1<<(i%8)) != 0
	}
	return bits, data[need:], nil
}

// decodeLabelSection parses the label section (everything between the edge
// list and the CRC). A v1 snapshot passes an empty slice and gets nil.
func decodeLabelSection(data []byte) (*LabelSet, error) {
	if len(data) == 0 {
		return nil, nil // v1: no section
	}
	if data[0] == 0 {
		if len(data) != 1 {
			return nil, fmt.Errorf("%w: %d byte(s) after empty label section", ErrCorrupt, len(data)-1)
		}
		return nil, nil
	}
	data = data[1:]
	if len(data) < 16 {
		return nil, fmt.Errorf("%w: label section header has %d byte(s)", ErrCorrupt, len(data))
	}
	ls := &LabelSet{
		Seq:  binary.LittleEndian.Uint64(data),
		Dest: int(int32(binary.LittleEndian.Uint32(data[8:]))),
	}
	n := int(binary.LittleEndian.Uint32(data[12:]))
	data = data[16:]
	if n < 0 || len(data) < n*12 {
		return nil, fmt.Errorf("%w: label section claims %d node(s) in %d byte(s)", ErrCorrupt, n, len(data))
	}
	ls.Dist = make([]float64, n)
	ls.Next = make([]int32, n)
	for i := 0; i < n; i++ {
		ls.Dist[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	data = data[n*8:]
	for i := 0; i < n; i++ {
		ls.Next[i] = int32(binary.LittleEndian.Uint32(data[i*4:]))
	}
	data = data[n*4:]
	var err error
	if ls.MIS, data, err = decodeBitset(data, n); err != nil {
		return nil, err
	}
	if len(data) < 1 {
		return nil, fmt.Errorf("%w: label section missing CDS flag", ErrCorrupt)
	}
	hasCDS := data[0]
	data = data[1:]
	if hasCDS == 1 {
		ls.HasCDS = true
		if ls.CDS, data, err = decodeBitset(data, n); err != nil {
			return nil, err
		}
	} else if hasCDS != 0 {
		return nil, fmt.Errorf("%w: label section CDS flag %d", ErrCorrupt, hasCDS)
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("%w: %d byte(s) after label section", ErrCorrupt, len(data))
	}
	return ls, nil
}

// DecodeSnapshot is EncodeSnapshot's inverse (labels, if any, dropped).
func DecodeSnapshot(data []byte) (g *graph.Graph, seq, cum uint64, err error) {
	g, seq, cum, _, err = DecodeSnapshotLabels(data)
	return g, seq, cum, err
}

// DecodeSnapshotLabels is EncodeSnapshotLabels's inverse. Any truncation,
// checksum mismatch, or malformed edge yields an error wrapping ErrCorrupt;
// it never panics and never returns a partially-built graph. v1 snapshots
// (no label section) decode with nil labels.
func DecodeSnapshotLabels(data []byte) (g *graph.Graph, seq, cum uint64, ls *LabelSet, err error) {
	const head = 4 + 2 + 8 + 8 + 1 + 4 + 8
	if len(data) < head+4 {
		return nil, 0, 0, nil, fmt.Errorf("%w: snapshot has %d byte(s)", ErrCorrupt, len(data))
	}
	if string(data[:4]) != snapMagic {
		return nil, 0, 0, nil, fmt.Errorf("%w: snapshot magic %q", ErrCorrupt, data[:4])
	}
	ver := binary.LittleEndian.Uint16(data[4:])
	if ver != snapVer && ver != snapVer1 {
		return nil, 0, 0, nil, fmt.Errorf("%w: snapshot version %d (want %d)", ErrCorrupt, ver, snapVer)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail) {
		return nil, 0, 0, nil, fmt.Errorf("%w: snapshot checksum mismatch", ErrCorrupt)
	}
	seq = binary.LittleEndian.Uint64(data[6:])
	cum = binary.LittleEndian.Uint64(data[14:])
	directed := data[22] != 0
	n := int(binary.LittleEndian.Uint32(data[23:]))
	m := binary.LittleEndian.Uint64(data[27:])
	edgeBytes := uint64(len(body) - head)
	if ver == snapVer1 {
		if edgeBytes != 16*m {
			return nil, 0, 0, nil, fmt.Errorf("%w: snapshot claims %d edge(s) in %d byte(s)", ErrCorrupt, m, edgeBytes)
		}
	} else if edgeBytes < 16*m {
		return nil, 0, 0, nil, fmt.Errorf("%w: snapshot claims %d edge(s) in %d byte(s)", ErrCorrupt, m, edgeBytes)
	}
	// Bulk-build through the two-pass arena loader: snapshot decode is the
	// recovery hot path, and per-edge appends were its dominant cost.
	g, err = graph.FromEdges(n, directed, int(m), func(i int) (int, int, float64) {
		off := head + 16*i
		return int(int32(binary.LittleEndian.Uint32(data[off:]))),
			int(int32(binary.LittleEndian.Uint32(data[off+4:]))),
			math.Float64frombits(binary.LittleEndian.Uint64(data[off+8:]))
	})
	if err != nil {
		return nil, 0, 0, nil, fmt.Errorf("%w: snapshot edges: %v", ErrCorrupt, err)
	}
	off := head + 16*int(m)
	if ver >= snapVer {
		if ls, err = decodeLabelSection(body[off:]); err != nil {
			return nil, 0, 0, nil, err
		}
	}
	return g, seq, cum, ls, nil
}

// SaveGraph writes g to path through the snapshot codec, atomically: a temp
// file is written, fsynced, and renamed over the target. The file is
// readable by LoadGraph and usable as a server boot image.
func SaveGraph(path string, g *graph.Graph) error {
	return saveGraphFS(OS(), path, g)
}

func saveGraphFS(fsys FS, path string, g *graph.Graph) error {
	tmp := path + ".tmp"
	if err := writeFileSync(fsys, tmp, EncodeSnapshot(g, 0, 0)); err != nil {
		return err
	}
	return fsys.Rename(tmp, path)
}

// LoadGraph reads a snapshot-codec graph file written by SaveGraph (or a
// live snapshot from a WAL data dir).
func LoadGraph(path string) (*graph.Graph, error) {
	data, err := OS().ReadFile(path)
	if err != nil {
		return nil, err
	}
	g, _, _, err := DecodeSnapshot(data)
	return g, err
}

// writeFileSync creates name, writes data, and fsyncs it (the caller still
// owns the namespace barrier via Rename/SyncDir).
func writeFileSync(fsys FS, name string, data []byte) error {
	f, err := fsys.Create(name)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ---- superblock ----

// superblock names the live (snapshot, log) generation pair. It is tiny and
// rewritten atomically (temp + rename), so recovery sees either the old or
// the new generation, never a mix. gen counts generation swaps across the
// store's whole life; fence is the fencing token a promoted replica bumps
// so a deposed primary's stream is rejected.
type superblock struct {
	snapSeq  uint64
	gen      uint64
	fence    uint64
	snapName string
	logName  string
}

func encodeSuper(sb superblock) []byte {
	buf := make([]byte, 0, 4+2+8+8+8+2+len(sb.snapName)+2+len(sb.logName)+4)
	buf = append(buf, superMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, superVer)
	buf = binary.LittleEndian.AppendUint64(buf, sb.snapSeq)
	buf = binary.LittleEndian.AppendUint64(buf, sb.gen)
	buf = binary.LittleEndian.AppendUint64(buf, sb.fence)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(sb.snapName)))
	buf = append(buf, sb.snapName...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(sb.logName)))
	buf = append(buf, sb.logName...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
}

func decodeSuper(data []byte) (superblock, error) {
	var sb superblock
	if len(data) < 4+2+8+2+2+4 {
		return sb, fmt.Errorf("%w: superblock has %d byte(s)", ErrCorrupt, len(data))
	}
	if string(data[:4]) != superMagic {
		return sb, fmt.Errorf("%w: superblock magic %q", ErrCorrupt, data[:4])
	}
	ver := binary.LittleEndian.Uint16(data[4:])
	if ver != superVer && ver != superVer1 {
		return sb, fmt.Errorf("%w: superblock version %d (want %d)", ErrCorrupt, ver, superVer)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail) {
		return sb, fmt.Errorf("%w: superblock checksum mismatch", ErrCorrupt)
	}
	sb.snapSeq = binary.LittleEndian.Uint64(data[6:])
	off := 14
	if ver == superVer {
		if len(body) < off+16 {
			return sb, fmt.Errorf("%w: superblock gen/fence truncated", ErrCorrupt)
		}
		sb.gen = binary.LittleEndian.Uint64(body[off:])
		sb.fence = binary.LittleEndian.Uint64(body[off+8:])
		off += 16
	}
	read := func() (string, bool) {
		if off+2 > len(body) {
			return "", false
		}
		n := int(binary.LittleEndian.Uint16(body[off:]))
		off += 2
		if off+n > len(body) {
			return "", false
		}
		s := string(body[off : off+n])
		off += n
		return s, true
	}
	var ok bool
	if sb.snapName, ok = read(); !ok {
		return sb, fmt.Errorf("%w: superblock snapshot name truncated", ErrCorrupt)
	}
	if sb.logName, ok = read(); !ok {
		return sb, fmt.Errorf("%w: superblock log name truncated", ErrCorrupt)
	}
	return sb, nil
}

// ---- log generation header ----

func encodeLogHeader(gen, startSeq, startCum uint64) []byte {
	buf := make([]byte, 0, logHeaderLen)
	buf = append(buf, logMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, logVer)
	buf = binary.LittleEndian.AppendUint64(buf, gen)
	buf = binary.LittleEndian.AppendUint64(buf, startSeq)
	buf = binary.LittleEndian.AppendUint64(buf, startCum)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
}

func decodeLogHeader(data []byte) (gen, startSeq, startCum uint64, err error) {
	if len(data) < logHeaderLen {
		return 0, 0, 0, fmt.Errorf("%w: log header has %d byte(s)", ErrCorrupt, len(data))
	}
	h := data[:logHeaderLen]
	if string(h[:4]) != logMagic {
		return 0, 0, 0, fmt.Errorf("%w: log magic %q", ErrCorrupt, h[:4])
	}
	if v := binary.LittleEndian.Uint16(h[4:]); v != logVer {
		return 0, 0, 0, fmt.Errorf("%w: log version %d (want %d)", ErrCorrupt, v, logVer)
	}
	if crc32.Checksum(h[:logHeaderLen-4], castagnoli) != binary.LittleEndian.Uint32(h[logHeaderLen-4:]) {
		return 0, 0, 0, fmt.Errorf("%w: log header checksum mismatch", ErrCorrupt)
	}
	return binary.LittleEndian.Uint64(h[6:]), binary.LittleEndian.Uint64(h[14:]), binary.LittleEndian.Uint64(h[22:]), nil
}

// CheckLogHeader validates a streamed log-generation header and returns its
// provenance — the replica's guard before trusting a resume offset into a
// generation it is mirroring byte-for-byte.
func CheckLogHeader(data []byte) (gen, startSeq, startCum uint64, err error) {
	return decodeLogHeader(data)
}

// ---- topology hashing ----

// GraphHash returns an order-insensitive FNV-1a hash of g's topology and
// weights: two graphs hash equal iff they have the same node count,
// directedness, and multiset of weighted edges, regardless of adjacency
// ordering. CSRHash computes the same value from a frozen snapshot, so an
// epoch can be compared against an independently replayed mutation prefix.
func GraphHash(g *graph.Graph) uint64 {
	return hashEdges(g.N(), g.Directed(), g.Edges())
}

// CSRHash is GraphHash over a frozen CSR snapshot.
func CSRHash(c *graph.CSR) uint64 {
	edges := make([]graph.Edge, 0, c.M())
	n := c.N()
	for u := 0; u < n; u++ {
		ws := c.NeighborWeights(u)
		for i, v := range c.Neighbors(u) {
			if c.Directed() || u < int(v) {
				edges = append(edges, graph.Edge{From: u, To: int(v), Weight: ws[i]})
			}
		}
	}
	return hashEdges(n, c.Directed(), edges)
}

func hashEdges(n int, directed bool, edges []graph.Edge) uint64 {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		if edges[i].To != edges[j].To {
			return edges[i].To < edges[j].To
		}
		return edges[i].Weight < edges[j].Weight
	})
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	put(uint64(n))
	if directed {
		put(1)
	} else {
		put(0)
	}
	for _, e := range edges {
		put(uint64(e.From))
		put(uint64(e.To))
		put(math.Float64bits(e.Weight))
	}
	return h.Sum64()
}
