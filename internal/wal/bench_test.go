package wal

import (
	"path/filepath"
	"testing"
)

// BenchmarkWALIngest prices the journal's write path on the real
// filesystem, one fsync policy per sub-benchmark: one op appends a
// 64-record batch. records/sec is the ingest ceiling the serving layer
// inherits, fsync-ns/batch the amortized durability tax — the spread
// between the policies is the number the -fsync flag trades on.
func BenchmarkWALIngest(b *testing.B) {
	const (
		batchSize = 64
		nodes     = 4096
	)
	policies := []struct {
		name string
		opts Options
	}{
		{"fsync=batch", Options{Sync: SyncEachBatch}},
		{"fsync=interval8", Options{Sync: SyncInterval, SyncEvery: 8}},
		{"fsync=none", Options{Sync: SyncNone}},
	}
	for _, pol := range policies {
		b.Run(pol.name, func(b *testing.B) {
			l, err := Create(filepath.Join(b.TempDir(), "store"), ringGraph(nodes), pol.opts)
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()

			// Deterministic LCG edge stream; duplicate adds still pay the
			// full journaling cost, matching the serving ingest path.
			rng := uint64(1)
			next := func() int32 {
				rng = rng*6364136223846793005 + 1442695040888963407
				return int32((rng >> 33) % nodes)
			}
			batch := make([]Record, batchSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range batch {
					u, v := next(), next()
					if u == v {
						v = (v + 1) % nodes
					}
					batch[j] = Record{Type: TAddEdge, U: u, V: v, Weight: 1}
				}
				if _, err := l.Append(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			m := l.Metrics()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(batchSize*b.N)/sec, "records/sec")
			}
			b.ReportMetric(float64(m.FsyncTotal.Nanoseconds())/float64(b.N), "fsync-ns/batch")
		})
	}
}
