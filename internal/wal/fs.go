package wal

import (
	"fmt"
	"io"
	"os"
	"path"
	"path/filepath"
	"sort"
	"sync"
)

// File is the write side of a durable file: sequential writes, an fsync
// barrier, and close. The WAL only ever appends — no seeks — which keeps
// the crash model of MemFS exact.
type File interface {
	io.Writer
	// Sync blocks until every byte written so far is durable.
	Sync() error
	Close() error
}

// FS is the filesystem slice the WAL needs. OS() is the real thing;
// NewMemFS is the crash-simulable in-memory implementation FaultFS wraps.
// The contract mirrors POSIX durability: file writes become durable on
// File.Sync, and namespace changes (create, rename, remove) become durable
// on SyncDir of the containing directory.
type FS interface {
	MkdirAll(dir string) error
	// Create opens name for writing, truncating any existing content.
	Create(name string) (File, error)
	// ReadFile returns the full content of name, or an error satisfying
	// IsNotExist semantics via os.ErrNotExist when the file is absent.
	ReadFile(name string) ([]byte, error)
	Rename(oldname, newname string) error
	Remove(name string) error
	// List returns the sorted names (not full paths) of the files in dir.
	List(dir string) ([]string, error)
	// SyncDir makes all namespace changes under dir durable.
	SyncDir(dir string) error
}

// ---- OS filesystem ----

type osFS struct{}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) Create(name string) (File, error) { return os.Create(name) }

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) List(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// ---- In-memory filesystem with explicit durability tracking ----

// memFile is one file's content split at the durability barrier: synced
// bytes survive any crash; pending bytes survive only up to a seeded torn
// prefix (see MemFS.CrashImage).
type memFile struct {
	synced  []byte
	pending []byte
}

func (f *memFile) content() []byte {
	out := make([]byte, 0, len(f.synced)+len(f.pending))
	out = append(out, f.synced...)
	return append(out, f.pending...)
}

// dirOp is one namespace change pending a SyncDir.
type dirOp struct {
	kind byte // 'c' create, 'r' rename, 'd' remove
	a, b string
	f    *memFile // create: the file object, so partial-replay rebinds it
}

// MemFS is an in-memory FS that models POSIX crash semantics precisely:
// per-file synced-vs-pending content, and a journal of namespace operations
// that only SyncDir makes durable. CrashImage derives the deterministic
// post-crash filesystem a recovery run sees.
type MemFS struct {
	mu      sync.Mutex
	files   map[string]*memFile // live (process-visible) namespace
	durable map[string]*memFile // namespace as of the last SyncDir
	journal []dirOp             // namespace ops since the last SyncDir
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: map[string]*memFile{}, durable: map[string]*memFile{}}
}

func (m *MemFS) MkdirAll(dir string) error { return nil }

func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = path.Clean(name)
	f := &memFile{}
	m.files[name] = f
	m.journal = append(m.journal, dirOp{kind: 'c', a: name, f: f})
	return &memHandle{fs: m, f: f}, nil
}

func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[path.Clean(name)]
	if !ok {
		return nil, fmt.Errorf("memfs: %s: %w", name, os.ErrNotExist)
	}
	return f.content(), nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	oldname, newname = path.Clean(oldname), path.Clean(newname)
	f, ok := m.files[oldname]
	if !ok {
		return fmt.Errorf("memfs: rename %s: %w", oldname, os.ErrNotExist)
	}
	m.files[newname] = f
	delete(m.files, oldname)
	m.journal = append(m.journal, dirOp{kind: 'r', a: oldname, b: newname})
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = path.Clean(name)
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("memfs: remove %s: %w", name, os.ErrNotExist)
	}
	delete(m.files, name)
	m.journal = append(m.journal, dirOp{kind: 'd', a: name})
	return nil
}

func (m *MemFS) List(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	dir = path.Clean(dir)
	var names []string
	for name := range m.files {
		if path.Dir(name) == dir {
			names = append(names, filepath.Base(name))
		}
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.commitNamespace()
	return nil
}

func (m *MemFS) commitNamespace() {
	m.durable = make(map[string]*memFile, len(m.files))
	for name, f := range m.files {
		m.durable[name] = f
	}
	m.journal = nil
}

// Corrupt flips the bits of mask into the durable (synced) content of name
// at byte offset off — the post-fsync bit-flip fault. It reports whether
// the offset was in range.
func (m *MemFS) Corrupt(name string, off int, mask byte) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[path.Clean(name)]
	if !ok || off < 0 || off >= len(f.synced) {
		return false
	}
	f.synced[off] ^= mask
	return true
}

// SyncedLen returns how many bytes of name are durable (0 if absent).
func (m *MemFS) SyncedLen(name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.files[path.Clean(name)]; ok {
		return len(f.synced)
	}
	return 0
}

// CrashImage derives the filesystem state a recovery run observes after a
// power cut now, deterministically from seed: the durable namespace plus a
// seeded prefix of the pending namespace journal (ordered metadata
// journaling), and for every surviving file its synced bytes plus a seeded
// torn prefix of its unsynced tail. The image is fully synced — recovery
// mutations start from a clean barrier.
func (m *MemFS) CrashImage(seed uint64) *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	rng := splitmix{state: seed}

	ns := make(map[string]*memFile, len(m.durable))
	for name, f := range m.durable {
		ns[name] = f
	}
	keep := 0
	if len(m.journal) > 0 {
		keep = int(rng.next() % uint64(len(m.journal)+1))
	}
	for _, op := range m.journal[:keep] {
		switch op.kind {
		case 'c':
			ns[op.a] = op.f
		case 'r':
			if f, ok := ns[op.a]; ok {
				ns[op.b] = f
				delete(ns, op.a)
			}
		case 'd':
			delete(ns, op.a)
		}
	}

	img := NewMemFS()
	// Deterministic iteration: sort surviving names before drawing torn
	// prefixes, so one seed always yields one image.
	names := make([]string, 0, len(ns))
	for name := range ns {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := ns[name]
		data := append([]byte(nil), f.synced...)
		if len(f.pending) > 0 {
			data = append(data, f.pending[:int(rng.next()%uint64(len(f.pending)+1))]...)
		}
		img.files[name] = &memFile{synced: data}
	}
	img.commitNamespace()
	return img
}

type memHandle struct {
	fs *MemFS
	f  *memFile
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.f.pending = append(h.f.pending, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.f.synced = append(h.f.synced, h.f.pending...)
	h.f.pending = nil
	return nil
}

func (h *memHandle) Close() error { return nil }

// splitmix is the splitmix64 generator: tiny, seeded, and stateless enough
// for deterministic fault schedules.
type splitmix struct{ state uint64 }

func (s *splitmix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
