package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"path"
	"strings"
)

// Mirror is the cold half of a replica: a byte-accurate copy of a primary's
// store directory, fed from the replication stream. The primary ships its
// snapshot on connect (or whenever generations diverge) and then raw durable
// log bytes by offset; the Mirror writes them down with the same durability
// discipline the primary uses, so at every instant the directory is a store
// wal.Open — or wal.Promote, at failover — can recover. The Mirror never
// interprets frames beyond integrity checks; the live (in-memory) half of
// the replica is the Applier.
type Mirror struct {
	fsys FS
	dir  string

	gen     uint64
	fence   uint64
	snapSeq uint64

	snapName string
	logName  string
	f        File
	off      int64 // durable mirrored byte length of the live log generation
}

// ErrStaleChunk reports an Append at an offset the mirror has not reached:
// the stream skipped bytes, so the replica must re-request from Durable().
var ErrStaleChunk = errors.New("wal: chunk offset beyond mirrored prefix")

// OpenMirror opens (or initializes) a mirror directory. An existing mirror
// resumes at its verified durable prefix: the mirrored log is scanned for
// whole frames and any torn tail from a mid-write crash is discarded, so
// the offset reported to the primary never claims bytes that did not
// survive. A directory with no superblock starts empty at generation 0 —
// the first InstallSnapshot seeds it.
func OpenMirror(dir string, opts Options) (*Mirror, error) {
	opts.setDefaults()
	m := &Mirror{fsys: opts.FS, dir: dir}
	if err := m.fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: mirror dir: %w", err)
	}
	raw, err := m.fsys.ReadFile(path.Join(dir, superName))
	if err != nil {
		return m, nil // fresh mirror: nothing to resume
	}
	sb, err := decodeSuper(raw)
	if err != nil {
		return m, nil // unreadable superblock: treat as fresh, resync seeds it
	}
	m.gen, m.fence, m.snapSeq = sb.gen, sb.fence, sb.snapSeq
	m.snapName, m.logName = sb.snapName, sb.logName

	data, err := m.fsys.ReadFile(path.Join(dir, sb.logName))
	if err != nil {
		data = nil
	}
	keep := streamPrefix(data, m.gen)
	f, err := m.fsys.Create(path.Join(dir, sb.logName))
	if err != nil {
		return nil, fmt.Errorf("wal: mirror log: %w", err)
	}
	if keep > 0 {
		if _, err := f.Write(data[:keep]); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: mirror log rewrite: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: mirror log sync: %w", err)
	}
	m.f, m.off = f, keep
	return m, nil
}

// streamPrefix returns the length of the longest valid prefix of a log
// generation's byte stream: a header for gen followed by whole checksummed
// frames. A torn or corrupt tail is excluded; a bad header yields 0.
func streamPrefix(data []byte, gen uint64) int64 {
	hgen, _, _, err := decodeLogHeader(data)
	if err != nil || (gen != 0 && hgen != gen) {
		return 0
	}
	off := logHeaderLen
	for off < len(data) {
		n, complete, err := frameLen(data[off:])
		if err != nil || !complete {
			break
		}
		payload := data[off+frameHeader : off+n]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[off+4:]) {
			break
		}
		off += n
	}
	return int64(off)
}

// State returns the mirror's replication cursor: the generation it holds,
// the fence it recorded, and the durable byte offset it can resume from.
func (m *Mirror) State() (gen, fence uint64, off int64) { return m.gen, m.fence, m.off }

// Durable returns the fsynced byte length of the mirrored live generation.
func (m *Mirror) Durable() int64 { return m.off }

// SnapSeq returns the batch seq of the mirrored snapshot.
func (m *Mirror) SnapSeq() uint64 { return m.snapSeq }

// InstallSnapshot replaces the mirror's contents with a full-resync
// payload: the primary's snapshot file for generation gen under fencing
// token fence. The snapshot is decoded first — a corrupt payload is
// rejected before anything touches disk — then written with the store's
// swap discipline (snapshot durable, empty log durable, superblock rename
// last), so a crash at any point leaves either the old mirror or the new
// one, never a mix. Log bytes restart at offset 0; the generation's header
// arrives as the first streamed bytes.
func (m *Mirror) InstallSnapshot(gen, fence uint64, snap []byte) error {
	_, seq, _, _, err := DecodeSnapshotLabels(snap)
	if err != nil {
		return fmt.Errorf("wal: mirror snapshot: %w", err)
	}
	snapName := fmt.Sprintf("snap-%016d.snap", seq)
	logName := fmt.Sprintf("wal-%016d.log", seq)

	tmp := path.Join(m.dir, snapName+".tmp")
	if err := writeFileSync(m.fsys, tmp, snap); err != nil {
		return err
	}
	if err := m.fsys.Rename(tmp, path.Join(m.dir, snapName)); err != nil {
		return err
	}
	if err := m.fsys.SyncDir(m.dir); err != nil {
		return err
	}

	f, err := m.fsys.Create(path.Join(m.dir, logName))
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := m.fsys.SyncDir(m.dir); err != nil {
		f.Close()
		return err
	}

	sb := encodeSuper(superblock{
		snapSeq: seq, gen: gen, fence: fence,
		snapName: snapName, logName: logName,
	})
	stmp := path.Join(m.dir, superName+".tmp")
	if err := writeFileSync(m.fsys, stmp, sb); err != nil {
		f.Close()
		return err
	}
	if err := m.fsys.Rename(stmp, path.Join(m.dir, superName)); err != nil {
		f.Close()
		return err
	}
	if err := m.fsys.SyncDir(m.dir); err != nil {
		f.Close()
		return err
	}

	// Garbage-collect superseded generations and interrupted temp files.
	if names, lerr := m.fsys.List(m.dir); lerr == nil {
		for _, name := range names {
			if name == superName || name == snapName || name == logName {
				continue
			}
			if strings.HasPrefix(name, "snap-") || strings.HasPrefix(name, "wal-") ||
				strings.HasSuffix(name, ".tmp") {
				_ = m.fsys.Remove(path.Join(m.dir, name))
			}
		}
		_ = m.fsys.SyncDir(m.dir)
	}

	if m.f != nil {
		m.f.Close()
	}
	m.f = f
	m.gen, m.fence, m.snapSeq = gen, fence, seq
	m.snapName, m.logName = snapName, logName
	m.off = 0
	return nil
}

// Append mirrors durable log bytes at offset off and fsyncs them before
// returning, so an ack sent after Append can never claim bytes a crash
// would lose. Chunks the mirror already holds are ignored (the stream may
// resend across a reconnect); a chunk beyond the mirrored prefix is
// ErrStaleChunk and the replica must re-request from Durable().
func (m *Mirror) Append(off int64, data []byte) error {
	if m.f == nil {
		return errors.New("wal: mirror has no generation installed")
	}
	if off+int64(len(data)) <= m.off {
		return nil // duplicate resend
	}
	if off > m.off {
		return fmt.Errorf("%w: chunk at %d, mirrored through %d", ErrStaleChunk, off, m.off)
	}
	data = data[m.off-off:] // overlap: keep only the new suffix
	if len(data) == 0 {
		return nil
	}
	if _, err := m.f.Write(data); err != nil {
		return fmt.Errorf("wal: mirror append: %w", err)
	}
	if err := m.f.Sync(); err != nil {
		return fmt.Errorf("wal: mirror sync: %w", err)
	}
	m.off += int64(len(data))
	return nil
}

// SnapshotData returns the mirrored snapshot file's bytes, or nil for a
// mirror with no generation installed yet.
func (m *Mirror) SnapshotData() ([]byte, error) {
	if m.snapName == "" {
		return nil, nil
	}
	return m.fsys.ReadFile(path.Join(m.dir, m.snapName))
}

// LogData returns the mirrored live generation's bytes through the durable
// offset — the replay source for rebuilding an in-memory view on restart.
func (m *Mirror) LogData() ([]byte, error) {
	if m.logName == "" {
		return nil, nil
	}
	data, err := m.fsys.ReadFile(path.Join(m.dir, m.logName))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) > m.off {
		data = data[:m.off]
	}
	return data, nil
}

// Close releases the mirror's file handle. The directory remains a
// recoverable store; reopen with OpenMirror to resume, or hand it to
// wal.Promote to take over as primary.
func (m *Mirror) Close() error {
	if m.f == nil {
		return nil
	}
	err := m.f.Close()
	m.f = nil
	return err
}
