package wal

import (
	"bytes"
	"errors"
	"path"
	"testing"
)

// FuzzWALRecord pins the record codec's two safety properties: DecodeRecord
// never panics on arbitrary bytes (failures are the named ErrRecordType /
// ErrRecordLen), and every accepted payload re-encodes to the identical
// byte string — the canonical-form guarantee recovery's truncation logic
// relies on.
func FuzzWALRecord(f *testing.F) {
	for _, r := range []Record{
		{Type: TAddNode},
		{Type: TRemoveNode, U: 3},
		{Type: TAddEdge, U: 1, V: 2, Weight: 1.5, From: 7, To: -1},
		{Type: TRemoveEdge, U: 1, V: 2, To: 9},
		{Type: TWeight, U: 0, V: 5, Weight: 2.25, From: 11},
		{Type: TCommit, Seq: 42, Count: 3},
	} {
		f.Add(EncodeRecord(r))
	}
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{7, 1, 2, 3})
	f.Add([]byte{3, 1, 0, 0, 0, 2}) // truncated TAddEdge
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeRecord(data)
		if err != nil {
			if !errors.Is(err, ErrRecordType) && !errors.Is(err, ErrRecordLen) {
				t.Fatalf("unnamed decode error: %v", err)
			}
			return
		}
		if got := EncodeRecord(r); !bytes.Equal(got, data) {
			t.Fatalf("decode∘encode is not the identity:\n in  %x\n out %x", data, got)
		}
	})
}

// FuzzLabelDelta pins the label-delta codec's safety properties: every byte
// string — and every prefix of it — either decodes or fails with a named
// error, never panics; every accepted input re-encodes to the identical
// bytes (canonical form); and applying an accepted delta to a label set
// never panics regardless of node indices or claimed lengths.
func FuzzLabelDelta(f *testing.F) {
	seeds := []*LabelDelta{
		{Kind: LabelRoute, Reset: true, Seq: 3, N: 4, Dest: 1,
			Nodes: []int32{0, 1, 2, 3}, Dists: []float64{0, 1, 2, 3}, Nexts: []int32{-1, 0, 1, 2}},
		{Kind: LabelMIS, Seq: 5, N: 8, Nodes: []int32{2, 7}, Bits: []bool{true, false}},
		{Kind: LabelCDS, Reset: true, Seq: 9, N: 3, Nodes: []int32{1}, Bits: []bool{true}},
		{Kind: LabelCDS, Absent: true, Seq: 11, N: 3, Nodes: []int32{}},
	}
	for _, d := range seeds {
		f.Add(EncodeLabelDelta(d))
	}
	f.Add([]byte{})
	f.Add([]byte{byte(TLabelDelta)})
	f.Add([]byte{byte(TLabelDelta), labelDeltaVer, 0, 0})
	f.Add([]byte{byte(TLabelDelta), labelDeltaVer, 3, 0, 0, 0, 0, 0, 0, 0, 0, 0}) // bad kind
	f.Fuzz(func(t *testing.T, data []byte) {
		// The prefix property: truncation at any byte is a clean error or
		// a (shorter) valid delta, never a panic. Large inputs sample
		// prefixes to stay out of O(n²).
		step := 1
		if len(data) > 256 {
			step = 13
		}
		for cut := len(data); cut >= 0; cut -= step {
			p := data[:cut]
			d, err := DecodeLabelDelta(p)
			if err != nil {
				if !errors.Is(err, ErrRecordType) && !errors.Is(err, ErrRecordLen) {
					t.Fatalf("unnamed decode error at prefix %d: %v", cut, err)
				}
				continue
			}
			if got := EncodeLabelDelta(d); !bytes.Equal(got, p) {
				t.Fatalf("decode∘encode is not the identity at prefix %d:\n in  %x\n out %x", cut, p, got)
			}
			// Applying an accepted delta must be safe for any node indices
			// (the claimed N is capped here only to bound allocation).
			if d.N <= 1<<16 {
				ls := &LabelSet{}
				applyLabelDelta(ls, d)
				applyLabelDelta(ls, d)
			}
		}
	})
}

// FuzzRecover splices arbitrary bytes in as the body of an otherwise valid
// store's log generation and requires recovery to hold its contract: Open
// never panics and never fails (the superblock and snapshot are intact, so
// the worst legal outcome is truncating the whole log suffix), the result
// is a committed-batch prefix consistent with the snapshot, and recovery is
// deterministic — two opens of the same image agree, and re-opening the
// rewritten store reproduces the same state with a clean tail.
func FuzzRecover(f *testing.F) {
	committed := appendFrame(nil, Record{Type: TAddEdge, U: 0, V: 2, Weight: 1, From: 1, To: -1})
	committed = appendFrame(committed, Record{Type: TCommit, Seq: 1, Count: 1})
	f.Add([]byte{})
	f.Add(append([]byte{}, committed...))
	f.Add(committed[:len(committed)-3])                              // torn commit marker
	f.Add(append(append([]byte{}, committed...), 0xff, 0, 0x13))     // committed batch + garbage tail
	f.Add(appendFrame(nil, Record{Type: TCommit, Seq: 9, Count: 0})) // commit from the future
	f.Add(appendFrame(nil, Record{Type: TAddNode}))                  // record never sealed
	f.Fuzz(func(t *testing.T, body []byte) {
		fsys := NewMemFS()
		l, err := Create("d", ringGraph(4), Options{FS: fsys, CompactEvery: -1})
		if err != nil {
			t.Fatal(err)
		}
		logName := l.logName
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		// Replace the log body, keeping the generation header valid.
		data, err := fsys.ReadFile(path.Join("d", logName))
		if err != nil {
			t.Fatal(err)
		}
		hdr := append([]byte{}, data[:logHeaderLen]...)
		fh, err := fsys.Create(path.Join("d", logName))
		if err != nil {
			t.Fatal(err)
		}
		for _, chunk := range [][]byte{hdr, body} {
			if _, err := fh.Write(chunk); err != nil {
				t.Fatal(err)
			}
		}
		if err := fh.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := fh.Close(); err != nil {
			t.Fatal(err)
		}
		if err := fsys.SyncDir("d"); err != nil {
			t.Fatal(err)
		}

		img1, img2 := fsys.CrashImage(0), fsys.CrashImage(0)
		l1, rec1, err := Open("d", Options{FS: img1, CompactEvery: -1})
		if err != nil {
			t.Fatalf("open with fuzzed log body: %v", err)
		}
		if rec1.SnapshotSeq != 0 {
			t.Fatalf("snapshot seq %d, want 0", rec1.SnapshotSeq)
		}
		if rec1.Batches != int(rec1.Seq) {
			t.Fatalf("recovered %d batch(es) but seq advanced to %d", rec1.Batches, rec1.Seq)
		}
		if rec1.Nodes < 4 || l1.Graph().N() != rec1.Nodes {
			t.Fatalf("recovered %d node(s) (graph has %d), want >= the 4 seeded", rec1.Nodes, l1.Graph().N())
		}
		h1 := GraphHash(l1.Graph())

		// Same image, independent open: recovery is deterministic.
		l2, rec2, err := Open("d", Options{FS: img2, CompactEvery: -1})
		if err != nil {
			t.Fatal(err)
		}
		if rec2.Seq != rec1.Seq || GraphHash(l2.Graph()) != h1 {
			t.Fatalf("recovery diverged: seq %d/%d", rec1.Seq, rec2.Seq)
		}
		l2.Close()

		// The first open rewrote a fresh generation; reopening it must
		// reproduce the state exactly, now with nothing left to truncate.
		if err := l1.Close(); err != nil {
			t.Fatal(err)
		}
		l3, rec3, err := Open("d", Options{FS: img1, CompactEvery: -1})
		if err != nil {
			t.Fatalf("reopen after generation rewrite: %v", err)
		}
		defer l3.Close()
		if rec3.Seq != rec1.Seq || GraphHash(l3.Graph()) != h1 {
			t.Fatalf("rewritten store diverged: seq %d, want %d", rec3.Seq, rec1.Seq)
		}
		if rec3.Truncated() {
			t.Fatalf("rewritten store still has a torn tail: %s", rec3.Reason)
		}
	})
}
