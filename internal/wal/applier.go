package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"structura/internal/graph"
)

// Applier consumes a WAL byte stream incrementally — the replica's live
// half of recovery. Feed it arbitrary prefixes of a log generation's frame
// stream (everything after the header) and it applies committed batches and
// label deltas exactly as replayLog would, buffering partial frames until
// the rest arrives. Because the replicated stream is a byte-for-byte prefix
// of the primary's durable log, a mid-frame cut is always "need more
// bytes", never damage; a CRC or framing violation means the stream itself
// is corrupt and the owner must resync.
type Applier struct {
	G      *graph.Graph
	Labels *LabelSet

	Seq     uint64 // last committed batch applied
	Batches int    // committed batches applied
	Records uint64 // mutation records applied
	Ignored int    // label deltas skipped (stamped ahead of topology, or unusable)

	// OnCommit, when set, observes every committed batch seq as it
	// applies — the replica's staleness clock.
	OnCommit func(seq uint64)

	pending []Record
	touched []batchTouched
	buf     []byte
}

// NewApplier starts an applier over a recovered base state: g and labels
// come from the snapshot (labels may be nil), seq is the batch the base
// reflects.
func NewApplier(g *graph.Graph, labels *LabelSet, seq uint64) *Applier {
	return &Applier{G: g, Labels: labels, Seq: seq}
}

// Buffered returns how many bytes of an incomplete trailing frame are
// waiting for the rest of the stream.
func (a *Applier) Buffered() int { return len(a.buf) }

// Feed consumes p: every complete frame is parsed and applied, a trailing
// partial frame is buffered for the next call. Any framing or checksum
// violation fails the whole stream (the caller resyncs from a snapshot).
func (a *Applier) Feed(p []byte) error {
	a.buf = append(a.buf, p...)
	off := 0
	for {
		n, complete, err := frameLen(a.buf[off:])
		if err != nil {
			return fmt.Errorf("wal: replicated stream: %w", err)
		}
		if !complete {
			break
		}
		r, _, err := readFrame(a.buf[off : off+n])
		if err != nil {
			return fmt.Errorf("wal: replicated stream: %w", err)
		}
		if aerr := a.apply(r); aerr != nil {
			return aerr
		}
		off += n
	}
	a.buf = append(a.buf[:0], a.buf[off:]...)
	return nil
}

// frameLen inspects a frame header without decoding the payload: it
// returns the full frame length and whether data holds all of it. Only an
// implausible declared length is an error — short data just isn't complete
// yet.
func frameLen(data []byte) (n int, complete bool, err error) {
	if len(data) < frameHeader {
		return 0, false, nil
	}
	pl := binary.LittleEndian.Uint32(data)
	if pl == 0 || pl > maxPayload {
		return 0, false, fmt.Errorf("%w: implausible payload length %d", ErrTorn, pl)
	}
	n = frameHeader + int(pl)
	return n, len(data) >= n, nil
}

func (a *Applier) apply(r Record) error {
	switch r.Type {
	case TLabelDelta:
		if len(a.pending) > 0 {
			return fmt.Errorf("%w: label record inside an uncommitted batch", ErrTorn)
		}
		if r.Label.Seq > a.Seq {
			a.Ignored++
			return nil
		}
		if a.Labels == nil {
			a.Labels = &LabelSet{}
		}
		if !applyLabelDelta(a.Labels, r.Label) {
			a.Ignored++
			return nil
		}
		a.pruneTouched()
		return nil
	case TCommit:
		if r.Seq != a.Seq+1 || int(r.Count) != len(a.pending) {
			return fmt.Errorf("%w: commit marker (seq %d, count %d) does not seal batch %d of %d record(s)",
				ErrTorn, r.Seq, r.Count, a.Seq+1, len(a.pending))
		}
		var nodes []int32
		for _, pr := range a.pending {
			if pr.Type == TRemoveNode && int(pr.U) >= 0 && int(pr.U) < a.G.N() {
				for _, nb := range a.G.Neighbors(int(pr.U)) {
					nodes = append(nodes, int32(nb))
				}
			}
			if applyRecord(a.G, pr) {
				switch pr.Type {
				case TAddNode:
					nodes = append(nodes, int32(a.G.N()-1))
				case TRemoveNode:
					nodes = append(nodes, pr.U)
				default:
					nodes = append(nodes, pr.U, pr.V)
				}
			}
		}
		a.Seq = r.Seq
		a.Batches++
		a.Records += uint64(len(a.pending))
		a.touched = append(a.touched, batchTouched{seq: r.Seq, nodes: nodes})
		a.pending = a.pending[:0]
		if a.OnCommit != nil {
			a.OnCommit(r.Seq)
		}
		return nil
	default:
		a.pending = append(a.pending, r)
		return nil
	}
}

// pruneTouched drops touched sets already covered by the label epoch, so
// the dirty backlog stays bounded by the label lag, not the uptime.
func (a *Applier) pruneTouched() {
	if a.Labels == nil {
		return
	}
	keep := a.touched[:0]
	for _, bt := range a.touched {
		if bt.seq > a.Labels.Seq {
			keep = append(keep, bt)
		}
	}
	a.touched = keep
}

// Dirty returns the nodes mutated by batches the label epoch has not yet
// covered — the heal seeds a promotion must sweep before serving
// authoritative answers.
func (a *Applier) Dirty() []int {
	if a.Labels == nil {
		return nil
	}
	return dirtyAfter(a.touched, a.Labels.Seq)
}

// UsableLabels reports whether the applied label epoch can describe the
// applied graph (present and length-matched).
func (a *Applier) UsableLabels() bool {
	return a.Labels != nil && a.Labels.N() == a.G.N()
}

// VerifyStream checks that data is a well-formed log-generation prefix:
// a valid header for generation gen, followed by whole frames (a trailing
// partial frame is fine). Used by tests and the replica's restart path.
func VerifyStream(data []byte, gen uint64) error {
	hgen, _, _, err := decodeLogHeader(data)
	if err != nil {
		return err
	}
	if gen != 0 && hgen != gen {
		return fmt.Errorf("%w: stream header gen %d, want %d", ErrCorrupt, hgen, gen)
	}
	off := logHeaderLen
	for off < len(data) {
		n, complete, err := frameLen(data[off:])
		if err != nil || !complete {
			return nil // trailing partial frame: a valid stream prefix
		}
		payload := data[off+frameHeader : off+n]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[off+4:]) {
			return fmt.Errorf("%w: frame checksum mismatch at offset %d", ErrCorrupt, off)
		}
		off += n
	}
	return nil
}
