package wal

import (
	"bytes"
	"math"
	"path"
	"reflect"
	"testing"

	"structura/internal/stats"
)

// randLabels builds a deterministic pseudo-random label set over n nodes.
func randLabels(seed int64, n int, hasCDS bool) *LabelSet {
	r := stats.NewRand(seed)
	ls := &LabelSet{Dest: r.Intn(n), HasCDS: hasCDS}
	ls.Dist = make([]float64, n)
	ls.Next = make([]int32, n)
	ls.MIS = make([]bool, n)
	for i := 0; i < n; i++ {
		if r.Intn(10) == 0 {
			ls.Dist[i] = math.Inf(1)
			ls.Next[i] = -1
		} else {
			ls.Dist[i] = float64(r.Intn(20))
			ls.Next[i] = int32(r.Intn(n))
		}
		ls.MIS[i] = r.Intn(3) == 0
	}
	if hasCDS {
		ls.CDS = make([]bool, n)
		for i := range ls.CDS {
			ls.CDS[i] = r.Intn(4) == 0
		}
	}
	return ls
}

// mutateLabels flips a seeded fraction of cur's entries in place.
func mutateLabels(seed int64, ls *LabelSet, changes int) {
	r := stats.NewRand(seed)
	n := ls.N()
	for i := 0; i < changes; i++ {
		v := r.Intn(n)
		switch r.Intn(3) {
		case 0:
			ls.Dist[v] = float64(r.Intn(30))
			ls.Next[v] = int32(r.Intn(n))
		case 1:
			ls.MIS[v] = !ls.MIS[v]
		case 2:
			if ls.HasCDS {
				ls.CDS[v] = !ls.CDS[v]
			}
		}
	}
}

func labelsEqual(a, b *LabelSet) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Dest != b.Dest || a.HasCDS != b.HasCDS || a.N() != b.N() {
		return false
	}
	for i := range a.Dist {
		if a.Next[i] != b.Next[i] || a.MIS[i] != b.MIS[i] {
			return false
		}
		if a.Dist[i] != b.Dist[i] && !(math.IsNaN(a.Dist[i]) && math.IsNaN(b.Dist[i])) {
			return false
		}
	}
	if a.HasCDS && !reflect.DeepEqual(a.CDS, b.CDS) {
		return false
	}
	return true
}

func TestLabelDeltaRoundTrip(t *testing.T) {
	deltas := []*LabelDelta{
		{Kind: LabelRoute, Reset: true, Seq: 7, N: 4, Dest: 2,
			Nodes: []int32{0, 1, 2, 3}, Dists: []float64{1, 0, math.Inf(1), 2}, Nexts: []int32{1, -1, -1, 0}},
		{Kind: LabelMIS, Seq: 9, N: 4, Nodes: []int32{2}, Bits: []bool{true}},
		{Kind: LabelCDS, Reset: true, Seq: 3, N: 5, Nodes: []int32{0, 4}, Bits: []bool{true, false}},
		{Kind: LabelCDS, Absent: true, Seq: 11, N: 5, Nodes: []int32{}},
		{Kind: LabelRoute, Seq: 0, N: 0, Nodes: []int32{}, Dists: []float64{}, Nexts: []int32{}},
	}
	for i, d := range deltas {
		enc := EncodeLabelDelta(d)
		got, err := DecodeLabelDelta(enc)
		if err != nil {
			t.Fatalf("delta %d: decode: %v", i, err)
		}
		if got.Kind != d.Kind || got.Reset != d.Reset || got.Absent != d.Absent ||
			got.Seq != d.Seq || got.N != d.N || got.Dest != d.Dest || len(got.Nodes) != len(d.Nodes) {
			t.Fatalf("delta %d: round trip changed header: %+v vs %+v", i, got, d)
		}
		if !bytes.Equal(EncodeLabelDelta(got), enc) {
			t.Fatalf("delta %d: re-encode is not the identity", i)
		}
	}
	// Label deltas also flow through the generic record codec.
	r := Record{Type: TLabelDelta, Label: deltas[0]}
	rr, err := DecodeRecord(EncodeRecord(r))
	if err != nil {
		t.Fatalf("record codec: %v", err)
	}
	if rr.Label == nil || rr.Label.Kind != LabelRoute || rr.Label.Seq != 7 {
		t.Fatalf("record codec lost the delta: %+v", rr.Label)
	}
}

// TestDiffApplyLabels drives diffLabels/applyLabelDelta through seeded label
// histories: applying the diff to the previous epoch must reproduce the
// next, including the nil→full and CDS appear/disappear transitions.
func TestDiffApplyLabels(t *testing.T) {
	const n = 64
	var prev *LabelSet
	applied := &LabelSet{}
	cur := randLabels(1, n, true)
	for step := 0; step < 12; step++ {
		cur.Seq = uint64(step + 1)
		switch step {
		case 5: // CDS retires
			cur.HasCDS = false
			cur.CDS = nil
		case 8: // CDS returns
			cur.HasCDS = true
			cur.CDS = make([]bool, n)
			cur.CDS[3] = true
		default:
			if step > 0 {
				mutateLabels(int64(step), cur, 10)
			}
		}
		deltas := diffLabels(prev, cur)
		for _, d := range deltas {
			// Deltas must survive their own codec before applying.
			dd, err := DecodeLabelDelta(EncodeLabelDelta(d))
			if err != nil {
				t.Fatalf("step %d: delta codec: %v", step, err)
			}
			if !applyLabelDelta(applied, dd) {
				t.Fatalf("step %d: delta did not apply: %+v", step, dd)
			}
		}
		if !labelsEqual(applied, cur) {
			t.Fatalf("step %d: applied diff diverged from target", step)
		}
		if len(deltas) > 0 && applied.Seq != cur.Seq {
			t.Fatalf("step %d: applied seq %d, want %d", step, applied.Seq, cur.Seq)
		}
		prev = cur.Clone()
	}
	// No-op diff is empty.
	if d := diffLabels(prev, prev.Clone()); len(d) != 0 {
		t.Fatalf("identical sets produced %d delta(s)", len(d))
	}
}

func TestSnapshotLabelSection(t *testing.T) {
	g := ringGraph(10)
	ls := randLabels(3, 10, true)
	ls.Seq = 17
	data := EncodeSnapshotLabels(g, 17, 40, ls)
	g2, seq, cum, ls2, err := DecodeSnapshotLabels(data)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 17 || cum != 40 || GraphHash(g2) != GraphHash(g) {
		t.Fatalf("snapshot provenance or topology diverged (seq %d cum %d)", seq, cum)
	}
	if ls2 == nil || ls2.Seq != 17 || !labelsEqual(ls, ls2) {
		t.Fatalf("label section did not round trip")
	}
	// Nil labels: empty section, decodes to nil.
	_, _, _, lsNil, err := DecodeSnapshotLabels(EncodeSnapshotLabels(g, 1, 2, nil))
	if err != nil || lsNil != nil {
		t.Fatalf("empty label section: ls=%v err=%v", lsNil, err)
	}
}

// TestAppendLabelsRecover journals batches interleaved with label epochs and
// requires Open to reconstruct the exact label set with an empty dirty set,
// both from the live log and across a compaction (snapshot-embedded labels).
func TestAppendLabelsRecover(t *testing.T) {
	for _, compactEvery := range []int{-1, 4} {
		fsys := NewMemFS()
		l, err := Create("d", ringGraph(32), Options{FS: fsys, CompactEvery: compactEvery})
		if err != nil {
			t.Fatal(err)
		}
		ls := randLabels(7, 32, true)
		for i, batch := range seededBatches(11, 32, 10, 4) {
			if _, err := l.Append(batch); err != nil {
				t.Fatal(err)
			}
			mutateLabels(int64(i), ls, 6)
			if _, err := l.AppendLabels(ls); err != nil {
				t.Fatal(err)
			}
		}
		want := l.Labels()
		wantHash := GraphHash(l.Graph())
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		l2, rec, err := Open("d", Options{FS: fsys.CrashImage(0), CompactEvery: compactEvery})
		if err != nil {
			t.Fatal(err)
		}
		if GraphHash(l2.Graph()) != wantHash {
			t.Fatalf("compactEvery=%d: recovered topology diverged", compactEvery)
		}
		if rec.Labels == nil || !labelsEqual(rec.Labels, want) || rec.Labels.Seq != want.Seq {
			t.Fatalf("compactEvery=%d: recovered labels diverged (got seq %v, want %d)",
				compactEvery, rec.Labels, want.Seq)
		}
		if len(rec.Dirty) != 0 {
			t.Fatalf("compactEvery=%d: %d dirty node(s) on a label-current store", compactEvery, len(rec.Dirty))
		}
		if rec.RecoveryNs <= 0 {
			t.Fatalf("recovery time not measured")
		}
		l2.Close()
	}
}

// TestLabelLagDirty crashes with the label epoch trailing the topology by
// two batches and requires recovery to report exactly the trailing batches'
// nodes as dirty.
func TestLabelLagDirty(t *testing.T) {
	fsys := NewMemFS()
	l, err := Create("d", ringGraph(16), Options{FS: fsys, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	ls := randLabels(5, 16, false)
	if _, err := l.Append([]Record{{Type: TAddEdge, U: 0, V: 5, Weight: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendLabels(ls); err != nil {
		t.Fatal(err)
	}
	// Two batches after the last label epoch.
	if _, err := l.Append([]Record{{Type: TAddEdge, U: 2, V: 9, Weight: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]Record{{Type: TRemoveEdge, U: 0, V: 1}}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	_, rec, err := Open("d", Options{FS: fsys.CrashImage(0), CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Labels == nil || rec.Labels.Seq != 1 {
		t.Fatalf("labels: %+v, want epoch at seq 1", rec.Labels)
	}
	want := map[int]bool{2: true, 9: true, 0: true, 1: true}
	if len(rec.Dirty) != len(want) {
		t.Fatalf("dirty %v, want the 4 trailing endpoints", rec.Dirty)
	}
	for _, v := range rec.Dirty {
		if !want[v] {
			t.Fatalf("dirty %v contains unexpected node %d", rec.Dirty, v)
		}
	}
}

// TestLabelsNeverAheadOfTopology hand-builds a log whose label delta is
// stamped past the last committed batch — the byte pattern a crash between
// "labels computed" and "batch committed" could never produce, but damage
// could — and requires recovery to skip it.
func TestLabelsNeverAheadOfTopology(t *testing.T) {
	fsys := NewMemFS()
	l, err := Create("d", ringGraph(8), Options{FS: fsys, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]Record{{Type: TAddEdge, U: 0, V: 3, Weight: 1}}); err != nil {
		t.Fatal(err)
	}
	logName := l.logName
	l.Close()

	// Append a label delta claiming seq 5 (> committed seq 1) directly.
	img := fsys.CrashImage(0)
	data, err := img.ReadFile(path.Join("d", logName))
	if err != nil {
		t.Fatal(err)
	}
	rogue := appendFrame(nil, Record{Type: TLabelDelta, Label: &LabelDelta{
		Kind: LabelMIS, Reset: true, Seq: 5, N: 8,
		Nodes: []int32{0}, Bits: []bool{true},
	}})
	f, err := img.Create(path.Join("d", logName))
	if err != nil {
		t.Fatal(err)
	}
	f.Write(data)
	f.Write(rogue)
	f.Sync()
	f.Close()
	img.SyncDir("d")

	_, rec, err := Open("d", Options{FS: img, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 1 {
		t.Fatalf("recovered seq %d, want 1", rec.Seq)
	}
	if rec.Labels != nil {
		t.Fatalf("future-stamped label delta was applied: %+v", rec.Labels)
	}
	if rec.LabelsIgnored != 1 {
		t.Fatalf("LabelsIgnored = %d, want 1", rec.LabelsIgnored)
	}
}

// TestApplierStreamChunks feeds a primary's live log to an Applier in
// adversarially-sized chunks (1 byte at a time included) and requires the
// applied state to match the primary byte-for-byte semantics.
func TestApplierStreamChunks(t *testing.T) {
	fsys := NewMemFS()
	l, err := Create("d", ringGraph(24), Options{FS: fsys, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	ls := randLabels(2, 24, true)
	for i, batch := range seededBatches(3, 24, 8, 5) {
		if _, err := l.Append(batch); err != nil {
			t.Fatal(err)
		}
		mutateLabels(int64(i+40), ls, 4)
		if _, err := l.AppendLabels(ls); err != nil {
			t.Fatal(err)
		}
	}
	gen, durable, seq := l.ReplState()
	if gen == 0 || durable <= int64(LogHeaderLen) || seq != 8 {
		t.Fatalf("repl state gen=%d durable=%d seq=%d", gen, durable, seq)
	}

	// The snapshot seeds the applier; the log suffix streams in chunks.
	sgen, snapData, err := l.SnapshotBytes()
	if err != nil || sgen != gen {
		t.Fatalf("snapshot bytes: gen=%d err=%v", sgen, err)
	}
	g0, snapSeq, _, ls0, err := DecodeSnapshotLabels(snapData)
	if err != nil {
		t.Fatal(err)
	}
	a := NewApplier(g0, ls0, snapSeq)

	var stream []byte
	for off := int64(0); off < durable; {
		chunk, err := l.LogChunk(gen, off, 37)
		if err != nil {
			t.Fatal(err)
		}
		if len(chunk) == 0 {
			t.Fatalf("empty chunk at offset %d < durable %d", off, durable)
		}
		stream = append(stream, chunk...)
		off += int64(len(chunk))
	}
	if err := VerifyStream(stream, gen); err != nil {
		t.Fatal(err)
	}
	body := stream[LogHeaderLen:]
	sm := splitmix{state: 99}
	for off := 0; off < len(body); {
		n := int(sm.next()%16) + 1
		if off+n > len(body) {
			n = len(body) - off
		}
		if err := a.Feed(body[off : off+n]); err != nil {
			t.Fatalf("feed at %d: %v", off, err)
		}
		off += n
	}
	if a.Buffered() != 0 {
		t.Fatalf("%d byte(s) left buffered after a complete stream", a.Buffered())
	}
	if a.Seq != l.Seq() || GraphHash(a.G) != GraphHash(l.Graph()) {
		t.Fatalf("applied stream diverged: seq %d vs %d", a.Seq, l.Seq())
	}
	if !a.UsableLabels() || !labelsEqual(a.Labels, l.Labels()) {
		t.Fatalf("applied labels diverged")
	}
	if d := a.Dirty(); len(d) != 0 {
		t.Fatalf("dirty %v on a label-current stream", d)
	}
	l.Close()
}

// TestLogChunkGenGone requires LogChunk to refuse superseded generations so
// a replica resyncs instead of splicing streams.
func TestLogChunkGenGone(t *testing.T) {
	fsys := NewMemFS()
	l, err := Create("d", ringGraph(8), Options{FS: fsys, CompactEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	gen0, _, _ := l.ReplState()
	for _, batch := range seededBatches(9, 8, 4, 2) {
		if _, err := l.Append(batch); err != nil {
			t.Fatal(err)
		}
	}
	gen1, _, _ := l.ReplState()
	if gen1 <= gen0 {
		t.Fatalf("compaction did not advance the generation: %d -> %d", gen0, gen1)
	}
	if _, err := l.LogChunk(gen0, int64(LogHeaderLen), 100); err != ErrGenGone {
		t.Fatalf("LogChunk(stale gen) = %v, want ErrGenGone", err)
	}
	l.Close()
}

// TestPromoteFencing: Promote bumps the fencing token durably, and a
// MarkFenced store rejects all appends.
func TestPromoteFencing(t *testing.T) {
	fsys := NewMemFS()
	l, err := Create("d", ringGraph(4), Options{FS: fsys, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if l.FenceToken() != 1 {
		t.Fatalf("fresh store fence %d, want 1", l.FenceToken())
	}
	l.Close()

	img := fsys.CrashImage(0)
	p, rec, err := Promote("d", Options{FS: img, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if p.FenceToken() != 2 || rec.Fence != 2 {
		t.Fatalf("promoted fence %d (rec %d), want 2", p.FenceToken(), rec.Fence)
	}
	p.Close()

	// The bump is durable: a plain re-open sees it.
	l2, rec2, err := Open("d", Options{FS: img.CrashImage(0), CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	_ = rec2
	if l2.FenceToken() != 2 {
		t.Fatalf("reopened fence %d, want 2", l2.FenceToken())
	}
	l2.MarkFenced()
	if _, err := l2.Append([]Record{{Type: TAddEdge, U: 0, V: 2, Weight: 1}}); err != ErrFenced {
		t.Fatalf("append on fenced store = %v, want ErrFenced", err)
	}
	if _, err := l2.AppendLabels(&LabelSet{}); err != ErrFenced {
		t.Fatalf("label append on fenced store = %v, want ErrFenced", err)
	}
	l2.Close()
}
