package wal

import (
	"errors"
	"fmt"
	"testing"

	"structura/internal/heal"
)

// crashWorkload is one deterministic ingest run: seed topology plus a fixed
// batch sequence, with compaction enabled so generation switches fall
// inside the crash-point space.
type crashWorkload struct {
	nodes     int
	batches   [][]Record
	compact   int
	syncP     SyncPolicy
	syncEvery int
}

func defaultWorkload() crashWorkload {
	return crashWorkload{nodes: 14, batches: seededBatches(21, 14, 12, 4), compact: 4, syncP: SyncEachBatch}
}

// runIngest drives the workload against fsys. It returns the per-seq graph
// hashes of every committed batch (index 0 = initial state), the seq of the
// last batch whose Append returned before the crash (what the caller was
// told is durable), and whether the run crashed.
func runIngest(t *testing.T, fsys FS, w crashWorkload) (hashes []uint64, acked uint64, crashed bool) {
	t.Helper()
	l, err := Create("d", ringGraph(w.nodes), Options{
		FS: fsys, CompactEvery: w.compact, Sync: w.syncP, SyncEvery: w.syncEvery,
	})
	if err != nil {
		if errors.Is(err, ErrCrashed) {
			return nil, 0, true
		}
		t.Fatalf("create: %v", err)
	}
	hashes = append(hashes, GraphHash(l.Graph()))
	for _, b := range w.batches {
		seq, err := l.Append(b)
		if err != nil {
			if errors.Is(err, ErrCrashed) {
				return hashes, acked, true
			}
			t.Fatalf("append: %v", err)
		}
		hashes = append(hashes, GraphHash(l.Graph()))
		acked = seq
	}
	if err := l.Close(); err != nil {
		if errors.Is(err, ErrCrashed) {
			return hashes, acked, true
		}
		t.Fatalf("close: %v", err)
	}
	return hashes, acked, false
}

// Durability floor: with SyncEachBatch, Append acks a batch only after its
// fsync returns, so the acked set at the moment of a crash is exactly the
// batches whose Append returned — runIngest's `acked` value. The sweep
// therefore needs no op-level bookkeeping: recovery must restore at least
// `acked` and at most the full committed history.

// TestCrashPointSweep is the tentpole property test: for EVERY injected
// crash point between consecutive filesystem operations in a seeded ingest
// run (including the ones inside compaction's rename dance), recovery from
// the deterministic durable image yields exactly a committed-batch prefix —
// the recovered graph hash equals the hash the live run had after that
// batch — no torn batch is ever visible, recovery never loses an
// acknowledged (fsynced) batch, and the structures rebuilt over the
// recovered topology pass a full heal.Supervisor invariant sweep.
func TestCrashPointSweep(t *testing.T) {
	w := defaultWorkload()

	// Fault-free reference run: committed hashes and the op-count of the
	// crash-point space.
	refFS := NewFaultFS(NewMemFS(), 1, -1)
	refHashes, refAcked, crashed := runIngest(t, refFS, w)
	if crashed || refAcked != uint64(len(w.batches)) {
		t.Fatalf("reference run: acked %d of %d", refAcked, len(w.batches))
	}
	totalOps := refFS.Ops()
	if totalOps < 50 {
		t.Fatalf("workload exercises only %d op(s); too small for a sweep", totalOps)
	}

	for k := int64(0); k < totalOps; k++ {
		for _, imageSeed := range []uint64{1, 2, 3} {
			k, imageSeed := k, imageSeed
			t.Run(fmt.Sprintf("crash-op-%d-img-%d", k, imageSeed), func(t *testing.T) {
				fsys := NewFaultFS(NewMemFS(), imageSeed, k)
				_, acked, crashed := runIngest(t, fsys, w)
				if !crashed {
					t.Fatalf("crash at op %d never fired", k)
				}
				img := fsys.Durable()
				l, rec, err := Open("d", Options{FS: img})
				if err != nil {
					// Before the very first superblock is durable there is
					// no store yet — the only point at which recovery may
					// decline, and only with the named error.
					if errors.Is(err, ErrNoStore) && acked == 0 {
						return
					}
					t.Fatalf("recovery after crash at op %d: %v", k, err)
				}
				defer l.Close()

				// Exactly a committed-batch prefix…
				if rec.Seq >= uint64(len(refHashes)) {
					t.Fatalf("recovered seq %d beyond committed history %d", rec.Seq, len(refHashes)-1)
				}
				if got, want := GraphHash(l.Graph()), refHashes[rec.Seq]; got != want {
					t.Fatalf("recovered graph at seq %d hashes %x, want %x", rec.Seq, got, want)
				}
				// …and never behind what Append acknowledged (per-batch fsync).
				if rec.Seq < acked {
					t.Fatalf("recovery lost acknowledged batch(es): recovered seq %d < acked %d", rec.Seq, acked)
				}

				// The recovered store must accept writes again.
				if _, err := l.Append([]Record{{Type: TAddEdge, U: 0, V: int32(w.nodes / 2), Weight: 1}}); err != nil {
					t.Fatalf("append after recovery: %v", err)
				}

				// Structures rebuilt over the recovered topology hold every
				// registered invariant.
				mis, err := heal.NewMISEngineOver(l.Graph().Clone())
				if err != nil {
					t.Fatalf("mis engine over recovered graph: %v", err)
				}
				if bad := (&heal.Supervisor{Engine: mis}).Sweep(); len(bad) > 0 {
					t.Fatalf("invariant sweep after recovery: %v", bad[0])
				}
				dv, err := heal.NewDistVecEngineOver(l.Graph().Clone(), 0)
				if err != nil {
					t.Fatalf("distvec engine over recovered graph: %v", err)
				}
				if bad := (&heal.Supervisor{Engine: dv}).Sweep(); len(bad) > 0 {
					t.Fatalf("distvec sweep after recovery: %v", bad[0])
				}
			})
		}
	}
}

// TestCrashPointSweepRelaxedPolicies runs the same sweep under the interval
// and no-fsync policies: the acked-batch lower bound no longer holds (loss
// windows are the policy's contract), but recovery must still be exactly a
// committed-batch prefix with working appends afterwards.
func TestCrashPointSweepRelaxedPolicies(t *testing.T) {
	for _, pol := range []struct {
		name  string
		w     crashWorkload
		every int64
	}{
		{"interval", crashWorkload{nodes: 14, batches: seededBatches(22, 14, 10, 4), compact: 5, syncP: SyncInterval, syncEvery: 3}, 2},
		{"none", crashWorkload{nodes: 14, batches: seededBatches(23, 14, 10, 4), compact: 5, syncP: SyncNone}, 2},
	} {
		t.Run(pol.name, func(t *testing.T) {
			refFS := NewFaultFS(NewMemFS(), 1, -1)
			refHashes, _, _ := runIngest(t, refFS, pol.w)
			totalOps := refFS.Ops()
			for k := int64(0); k < totalOps; k += pol.every {
				fsys := NewFaultFS(NewMemFS(), uint64(k)+7, k)
				_, acked, crashed := runIngest(t, fsys, pol.w)
				if !crashed {
					t.Fatalf("crash at op %d never fired", k)
				}
				l, rec, err := Open("d", Options{FS: fsys.Durable()})
				if err != nil {
					if errors.Is(err, ErrNoStore) && acked == 0 {
						continue
					}
					t.Fatalf("recovery after crash at op %d: %v", k, err)
				}
				if rec.Seq >= uint64(len(refHashes)) {
					t.Fatalf("crash op %d: recovered seq %d beyond history", k, rec.Seq)
				}
				if got, want := GraphHash(l.Graph()), refHashes[rec.Seq]; got != want {
					t.Fatalf("crash op %d: recovered seq %d hashes %x, want %x", k, rec.Seq, got, want)
				}
				if _, err := l.Append([]Record{{Type: TAddEdge, U: 1, V: 5, Weight: 1}}); err != nil {
					t.Fatalf("crash op %d: append after recovery: %v", k, err)
				}
				l.Close()
			}
		})
	}
}

// TestDoubleCrashDuringRecovery injects a second crash inside the recovery
// path itself (Open rewrites a fresh generation) and checks that a third,
// clean recovery still lands on a committed prefix: recovery is idempotent
// under repeated failure.
func TestDoubleCrashDuringRecovery(t *testing.T) {
	w := defaultWorkload()
	refFS := NewFaultFS(NewMemFS(), 1, -1)
	refHashes, _, _ := runIngest(t, refFS, w)

	// First crash: mid-run, after some batches.
	firstFS := NewFaultFS(NewMemFS(), 5, refFS.Ops()/2)
	_, _, crashed := runIngest(t, firstFS, w)
	if !crashed {
		t.Fatal("first crash never fired")
	}
	img1 := firstFS.Durable()

	// Count recovery's own op space, then sweep a second crash across it.
	probe := NewFaultFS(cloneMemFS(img1), 6, -1)
	if _, _, err := Open("d", Options{FS: probe}); err != nil {
		t.Fatalf("probe recovery failed: %v", err)
	}
	for k := int64(0); k < probe.Ops(); k++ {
		fs2 := NewFaultFS(cloneMemFS(img1), uint64(k)+100, k)
		if l, _, err := Open("d", Options{FS: fs2}); err == nil {
			l.Close()
		} else if !errors.Is(err, ErrCrashed) {
			t.Fatalf("second crash at op %d: unexpected error %v", k, err)
		}
		l3, rec, err := Open("d", Options{FS: fs2.Durable()})
		if err != nil {
			t.Fatalf("third recovery after double crash at op %d: %v", k, err)
		}
		if rec.Seq >= uint64(len(refHashes)) || GraphHash(l3.Graph()) != refHashes[rec.Seq] {
			t.Fatalf("double crash at op %d: recovered seq %d is not a committed prefix", k, rec.Seq)
		}
		l3.Close()
	}
}

// cloneMemFS deep-copies a MemFS image so each sweep iteration starts from
// the same durable bytes.
func cloneMemFS(m *MemFS) *MemFS {
	return m.CrashImage(0) // fully-synced image: CrashImage of a synced FS is a deep copy
}
