// Package fspace implements the domain remapping of §III-C (Fig. 6): a
// routing process in a highly mobile, unstructured contact space (M-space)
// is converted into one in a static, structured feature space (F-space)
// represented as a generalized hypercube. Every combination of social
// features is one F-space node (a community of people with common features
// and the most frequent contacts); two nodes are linked iff they differ in
// exactly one feature — the strong links. The hypercube supports
// shortest-path routing and node-disjoint multipath routing.
package fspace

import (
	"errors"
	"fmt"

	"structura/internal/forwarding"
	"structura/internal/graph"
	"structura/internal/mobility"
)

// Space is a generalized hypercube over feature dimensions Dims; node IDs
// are mixed-radix encodings of feature vectors.
type Space struct {
	dims  []int
	n     int
	strid []int // mixed-radix strides
}

// NewSpace builds a feature space with the given per-feature cardinalities
// (each >= 2).
func NewSpace(dims []int) (*Space, error) {
	if len(dims) == 0 {
		return nil, errors.New("fspace: need at least one feature")
	}
	n := 1
	strid := make([]int, len(dims))
	for i := len(dims) - 1; i >= 0; i-- {
		if dims[i] < 2 {
			return nil, fmt.Errorf("fspace: feature %d cardinality %d < 2", i, dims[i])
		}
		strid[i] = n
		n *= dims[i]
	}
	return &Space{dims: append([]int(nil), dims...), n: n, strid: strid}, nil
}

// Fig6Space returns the paper's Fig. 6 example: gender (2) x occupation (2)
// x nationality (3), a 12-node 3-D generalized hypercube.
func Fig6Space() *Space {
	s, err := NewSpace([]int{2, 2, 3})
	if err != nil {
		panic(err) // unreachable: constants are valid
	}
	return s
}

// N returns the number of F-space nodes.
func (s *Space) N() int { return s.n }

// Dims returns the feature cardinalities.
func (s *Space) Dims() []int { return append([]int(nil), s.dims...) }

// ID encodes a feature vector as a node ID.
func (s *Space) ID(coords []int) (int, error) {
	if len(coords) != len(s.dims) {
		return 0, fmt.Errorf("fspace: %d coordinates for %d features", len(coords), len(s.dims))
	}
	id := 0
	for i, c := range coords {
		if c < 0 || c >= s.dims[i] {
			return 0, fmt.Errorf("fspace: feature %d value %d out of range [0,%d)", i, c, s.dims[i])
		}
		id += c * s.strid[i]
	}
	return id, nil
}

// Coords decodes a node ID into its feature vector.
func (s *Space) Coords(id int) ([]int, error) {
	if id < 0 || id >= s.n {
		return nil, fmt.Errorf("fspace: id %d out of range [0,%d)", id, s.n)
	}
	out := make([]int, len(s.dims))
	for i := range s.dims {
		out[i] = (id / s.strid[i]) % s.dims[i]
	}
	return out, nil
}

// ProfileID maps a mobility.FeatureProfile to its F-space node.
func (s *Space) ProfileID(p mobility.FeatureProfile) (int, error) {
	return s.ID([]int(p))
}

// FeatureDistance returns the number of differing features between two
// F-space nodes (the hypercube hop distance).
func (s *Space) FeatureDistance(a, b int) (int, error) {
	ca, err := s.Coords(a)
	if err != nil {
		return 0, err
	}
	cb, err := s.Coords(b)
	if err != nil {
		return 0, err
	}
	d := 0
	for i := range ca {
		if ca[i] != cb[i] {
			d++
		}
	}
	return d, nil
}

// Graph materializes the generalized hypercube: an edge wherever two nodes
// differ in exactly one feature.
func (s *Space) Graph() *graph.Graph {
	g := graph.New(s.n)
	for id := 0; id < s.n; id++ {
		coords, _ := s.Coords(id)
		for i, di := range s.dims {
			for v := coords[i] + 1; v < di; v++ {
				other := id + (v-coords[i])*s.strid[i]
				_ = g.AddEdge(id, other)
			}
		}
	}
	return g
}

// ShortestRoute returns a shortest F-space path from a to b, correcting
// differing features in ascending index order. Its length equals
// FeatureDistance(a, b).
func (s *Space) ShortestRoute(a, b int) ([]int, error) {
	ca, err := s.Coords(a)
	if err != nil {
		return nil, err
	}
	cb, err := s.Coords(b)
	if err != nil {
		return nil, err
	}
	path := []int{a}
	cur := append([]int(nil), ca...)
	for i := range cur {
		if cur[i] != cb[i] {
			cur[i] = cb[i]
			id, _ := s.ID(cur)
			path = append(path, id)
		}
	}
	return path, nil
}

// DisjointRoutes returns d node-disjoint shortest paths from a to b, where
// d = FeatureDistance(a, b): the classic rotation construction — path k
// corrects the differing features in cyclic order starting with the k-th.
// All intermediate nodes across the returned paths are distinct.
func (s *Space) DisjointRoutes(a, b int) ([][]int, error) {
	ca, err := s.Coords(a)
	if err != nil {
		return nil, err
	}
	cb, err := s.Coords(b)
	if err != nil {
		return nil, err
	}
	var diff []int
	for i := range ca {
		if ca[i] != cb[i] {
			diff = append(diff, i)
		}
	}
	if len(diff) == 0 {
		return [][]int{{a}}, nil
	}
	routes := make([][]int, 0, len(diff))
	for k := range diff {
		cur := append([]int(nil), ca...)
		path := []int{a}
		for j := 0; j < len(diff); j++ {
			i := diff[(k+j)%len(diff)]
			cur[i] = cb[i]
			id, _ := s.ID(cur)
			path = append(path, id)
		}
		routes = append(routes, path)
	}
	return routes, nil
}

// GradientPolicy is the F-space single-copy routing policy over an M-space
// contact trace: the copy is handed to a contacted peer whose community is
// strictly closer to the destination community in feature distance. This
// is the "routing in F-space" of Fig. 6 executed over physical contacts.
type GradientPolicy struct {
	Space    *Space
	Profiles []mobility.FeatureProfile // per-individual profiles
	DstNode  int                       // destination community
}

// NewGradientPolicy validates and builds the policy; dstProfile is the
// destination individual's profile.
func NewGradientPolicy(s *Space, profiles []mobility.FeatureProfile, dstProfile mobility.FeatureProfile) (*GradientPolicy, error) {
	dst, err := s.ProfileID(dstProfile)
	if err != nil {
		return nil, err
	}
	for i, p := range profiles {
		if _, err := s.ProfileID(p); err != nil {
			return nil, fmt.Errorf("fspace: profile %d: %w", i, err)
		}
	}
	return &GradientPolicy{Space: s, Profiles: profiles, DstNode: dst}, nil
}

// Name implements forwarding.Policy.
func (*GradientPolicy) Name() string { return "fspace-gradient" }

// Decide implements forwarding.Policy.
func (p *GradientPolicy) Decide(_ *forwarding.Env, carrier, peer int) forwarding.Decision {
	cNode, err1 := p.Space.ProfileID(p.Profiles[carrier])
	pNode, err2 := p.Space.ProfileID(p.Profiles[peer])
	if err1 != nil || err2 != nil {
		return forwarding.Decision{}
	}
	dc, _ := p.Space.FeatureDistance(cNode, p.DstNode)
	dp, _ := p.Space.FeatureDistance(pNode, p.DstNode)
	if dp < dc {
		return forwarding.Decision{Replicate: true, Drop: true}
	}
	return forwarding.Decision{}
}

// MultipathPolicy replicates along every node-disjoint F-space path: a
// carrier hands a copy to any peer whose community is strictly closer to
// the destination, keeping its own copy — bounded flooding guided by the
// hypercube, the multi-path variant Fig. 6 motivates.
type MultipathPolicy struct {
	GradientPolicy
}

// NewMultipathPolicy builds the multipath variant.
func NewMultipathPolicy(s *Space, profiles []mobility.FeatureProfile, dstProfile mobility.FeatureProfile) (*MultipathPolicy, error) {
	g, err := NewGradientPolicy(s, profiles, dstProfile)
	if err != nil {
		return nil, err
	}
	return &MultipathPolicy{GradientPolicy: *g}, nil
}

// Name implements forwarding.Policy.
func (*MultipathPolicy) Name() string { return "fspace-multipath" }

// Decide implements forwarding.Policy.
func (p *MultipathPolicy) Decide(env *forwarding.Env, carrier, peer int) forwarding.Decision {
	d := p.GradientPolicy.Decide(env, carrier, peer)
	d.Drop = false // keep the copy: replicate along all descending paths
	return d
}
