package fspace_test

import (
	"fmt"

	"structura/internal/fspace"
)

// The paper's Fig. 6: the 2x2x3 feature space supports node-disjoint
// multipath routing between communities.
func ExampleSpace_DisjointRoutes() {
	space := fspace.Fig6Space()
	a, _ := space.ID([]int{0, 0, 0})
	b, _ := space.ID([]int{1, 1, 2})
	routes, err := space.DisjointRoutes(a, b)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("disjoint shortest paths:", len(routes))
	for _, r := range routes {
		fmt.Println(r)
	}
	// Output:
	// disjoint shortest paths: 3
	// [0 6 9 11]
	// [0 3 5 11]
	// [0 2 8 11]
}
