package fspace

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// spaceSpec generates arbitrary feature spaces with 1-4 dimensions of
// cardinality 2-4 (keeping N manageable).
type spaceSpec struct {
	Dims []int
}

// Generate implements quick.Generator.
func (spaceSpec) Generate(r *rand.Rand, _ int) reflect.Value {
	k := 1 + r.Intn(4)
	dims := make([]int, k)
	for i := range dims {
		dims[i] = 2 + r.Intn(3)
	}
	return reflect.ValueOf(spaceSpec{Dims: dims})
}

// Property: ID/Coords round-trip on every node of every space.
func TestQuickIDCoordsRoundTrip(t *testing.T) {
	f := func(spec spaceSpec) bool {
		s, err := NewSpace(spec.Dims)
		if err != nil {
			return false
		}
		for id := 0; id < s.N(); id++ {
			coords, err := s.Coords(id)
			if err != nil {
				return false
			}
			back, err := s.ID(coords)
			if err != nil || back != id {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the generalized hypercube has exactly N*sum(d_i-1)/2 edges and
// feature distance equals BFS distance for random pairs.
func TestQuickHypercubeShape(t *testing.T) {
	f := func(spec spaceSpec, aRaw, bRaw uint16) bool {
		s, err := NewSpace(spec.Dims)
		if err != nil {
			return false
		}
		g := s.Graph()
		degSum := 0
		for _, d := range spec.Dims {
			degSum += d - 1
		}
		if g.M() != s.N()*degSum/2 {
			return false
		}
		a := int(aRaw) % s.N()
		b := int(bRaw) % s.N()
		fd, err := s.FeatureDistance(a, b)
		if err != nil {
			return false
		}
		dist, _, _ := g.BFS(a)
		return dist[b] == fd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: DisjointRoutes returns FeatureDistance(a,b) shortest paths with
// pairwise-disjoint intermediates on every space and pair.
func TestQuickDisjointRoutes(t *testing.T) {
	f := func(spec spaceSpec, aRaw, bRaw uint16) bool {
		s, err := NewSpace(spec.Dims)
		if err != nil {
			return false
		}
		a := int(aRaw) % s.N()
		b := int(bRaw) % s.N()
		fd, _ := s.FeatureDistance(a, b)
		routes, err := s.DisjointRoutes(a, b)
		if err != nil {
			return false
		}
		if a == b {
			return len(routes) == 1 && len(routes[0]) == 1
		}
		if len(routes) != fd {
			return false
		}
		g := s.Graph()
		seen := map[int]bool{}
		for _, route := range routes {
			if len(route) != fd+1 || route[0] != a || route[len(route)-1] != b {
				return false
			}
			for i := 1; i < len(route); i++ {
				if !g.HasEdge(route[i-1], route[i]) {
					return false
				}
			}
			for _, v := range route[1 : len(route)-1] {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
