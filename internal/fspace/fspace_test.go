package fspace

import (
	"testing"

	"structura/internal/forwarding"
	"structura/internal/mobility"
	"structura/internal/stats"
)

func TestNewSpaceValidation(t *testing.T) {
	if _, err := NewSpace(nil); err == nil {
		t.Error("no features should error")
	}
	if _, err := NewSpace([]int{2, 1}); err == nil {
		t.Error("cardinality < 2 should error")
	}
}

func TestFig6SpaceShape(t *testing.T) {
	s := Fig6Space()
	if s.N() != 12 {
		t.Fatalf("N = %d, want 12 (2x2x3)", s.N())
	}
	g := s.Graph()
	// Each node has sum(d_i - 1) = 1+1+2 = 4 neighbors: M = 12*4/2 = 24.
	if g.M() != 24 {
		t.Errorf("M = %d, want 24", g.M())
	}
	for v := 0; v < 12; v++ {
		if g.Degree(v) != 4 {
			t.Errorf("degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
	dims := s.Dims()
	if len(dims) != 3 || dims[2] != 3 {
		t.Errorf("Dims = %v", dims)
	}
}

func TestIDCoordsRoundTrip(t *testing.T) {
	s := Fig6Space()
	for id := 0; id < s.N(); id++ {
		coords, err := s.Coords(id)
		if err != nil {
			t.Fatal(err)
		}
		back, err := s.ID(coords)
		if err != nil {
			t.Fatal(err)
		}
		if back != id {
			t.Fatalf("round trip %d -> %v -> %d", id, coords, back)
		}
	}
	if _, err := s.Coords(-1); err == nil {
		t.Error("bad id should error")
	}
	if _, err := s.ID([]int{0, 0}); err == nil {
		t.Error("wrong arity should error")
	}
	if _, err := s.ID([]int{0, 0, 9}); err == nil {
		t.Error("out-of-range coordinate should error")
	}
}

func TestHypercubeEdgesDifferInOneFeature(t *testing.T) {
	s := Fig6Space()
	g := s.Graph()
	for _, e := range g.Edges() {
		d, err := s.FeatureDistance(e.From, e.To)
		if err != nil {
			t.Fatal(err)
		}
		if d != 1 {
			t.Fatalf("edge %v has feature distance %d, want 1", e, d)
		}
	}
}

func TestShortestRoute(t *testing.T) {
	s := Fig6Space()
	a, _ := s.ID([]int{0, 0, 0})
	b, _ := s.ID([]int{1, 1, 2})
	path, err := s.ShortestRoute(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 4 { // distance 3 => 4 nodes
		t.Fatalf("path = %v, want 4 nodes", path)
	}
	g := s.Graph()
	for i := 1; i < len(path); i++ {
		if !g.HasEdge(path[i-1], path[i]) {
			t.Fatalf("path step %d-%d is not a hypercube edge", path[i-1], path[i])
		}
	}
	if path[0] != a || path[len(path)-1] != b {
		t.Error("endpoints wrong")
	}
	// Self route.
	self, err := s.ShortestRoute(a, a)
	if err != nil || len(self) != 1 {
		t.Errorf("self route = %v, %v", self, err)
	}
}

func TestDisjointRoutes(t *testing.T) {
	s := Fig6Space()
	a, _ := s.ID([]int{0, 0, 0})
	b, _ := s.ID([]int{1, 1, 2})
	routes, err := s.DisjointRoutes(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 3 {
		t.Fatalf("want 3 disjoint routes for distance 3, got %d", len(routes))
	}
	g := s.Graph()
	seen := map[int]int{}
	for ri, route := range routes {
		if route[0] != a || route[len(route)-1] != b {
			t.Fatalf("route %d endpoints wrong: %v", ri, route)
		}
		if len(route) != 4 {
			t.Fatalf("route %d not shortest: %v", ri, route)
		}
		for i := 1; i < len(route); i++ {
			if !g.HasEdge(route[i-1], route[i]) {
				t.Fatalf("route %d step %d invalid", ri, i)
			}
		}
		for _, v := range route[1 : len(route)-1] {
			seen[v]++
		}
	}
	for v, c := range seen {
		if c > 1 {
			t.Fatalf("intermediate node %d shared by %d routes", v, c)
		}
	}
	// Distance-0 case.
	selfRoutes, err := s.DisjointRoutes(a, a)
	if err != nil || len(selfRoutes) != 1 || len(selfRoutes[0]) != 1 {
		t.Errorf("self disjoint routes = %v, %v", selfRoutes, err)
	}
}

// fig6Population builds several individuals per community and a
// feature-driven contact trace.
func fig6Population(t *testing.T, seed int64, perCommunity, steps int) ([]mobility.FeatureProfile, *Space, int, int) {
	t.Helper()
	s := Fig6Space()
	var profiles []mobility.FeatureProfile
	for g := 0; g < 2; g++ {
		for o := 0; o < 2; o++ {
			for c := 0; c < 3; c++ {
				for k := 0; k < perCommunity; k++ {
					profiles = append(profiles, mobility.FeatureProfile{g, o, c})
				}
			}
		}
	}
	// src: first individual of community (0,0,0); dst: last of (1,1,2).
	return profiles, s, 0, len(profiles) - 1
}

func TestGradientPolicyDelivery(t *testing.T) {
	profiles, s, src, dst := fig6Population(t, 1, 3, 0)
	r := stats.NewRand(2)
	eg, err := mobility.FeatureContacts(r, mobility.FeatureContactConfig{
		Profiles: profiles, BaseProb: 0.25, Decay: 0.35, Steps: 250,
	})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := NewGradientPolicy(s, profiles, profiles[dst])
	if err != nil {
		t.Fatal(err)
	}
	m, err := forwarding.Simulate(eg, forwarding.Message{Src: src, Dst: dst}, pol, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Delivered {
		t.Fatal("gradient routing should deliver on a dense feature trace")
	}
	if m.Copies != 1 {
		t.Errorf("single-copy policy peaked at %d copies", m.Copies)
	}
	// Epidemic is the lower bound on delay; gradient must not beat it.
	me, err := forwarding.Simulate(eg, forwarding.Message{Src: src, Dst: dst}, forwarding.Epidemic{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.DeliveryTime < me.DeliveryTime {
		t.Errorf("gradient (%d) cannot beat epidemic (%d)", m.DeliveryTime, me.DeliveryTime)
	}
}

func TestMultipathPolicyDelivery(t *testing.T) {
	profiles, s, src, dst := fig6Population(t, 3, 3, 0)
	r := stats.NewRand(4)
	eg, err := mobility.FeatureContacts(r, mobility.FeatureContactConfig{
		Profiles: profiles, BaseProb: 0.25, Decay: 0.35, Steps: 250,
	})
	if err != nil {
		t.Fatal(err)
	}
	single, err := NewGradientPolicy(s, profiles, profiles[dst])
	if err != nil {
		t.Fatal(err)
	}
	multi, err := NewMultipathPolicy(s, profiles, profiles[dst])
	if err != nil {
		t.Fatal(err)
	}
	msg := forwarding.Message{Src: src, Dst: dst}
	ms, err := forwarding.Simulate(eg, msg, single, 0)
	if err != nil {
		t.Fatal(err)
	}
	mm, err := forwarding.Simulate(eg, msg, multi, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !mm.Delivered {
		t.Fatal("multipath should deliver")
	}
	if ms.Delivered && mm.DeliveryTime > ms.DeliveryTime {
		t.Errorf("multipath (%d) should not be slower than single-path (%d)", mm.DeliveryTime, ms.DeliveryTime)
	}
	if mm.Copies < ms.Copies {
		t.Errorf("multipath copies %d < single %d", mm.Copies, ms.Copies)
	}
}

func TestGradientPolicyValidation(t *testing.T) {
	s := Fig6Space()
	if _, err := NewGradientPolicy(s, nil, mobility.FeatureProfile{9, 9, 9}); err == nil {
		t.Error("bad dst profile should error")
	}
	if _, err := NewGradientPolicy(s, []mobility.FeatureProfile{{0}}, mobility.FeatureProfile{0, 0, 0}); err == nil {
		t.Error("bad member profile should error")
	}
	if _, err := NewMultipathPolicy(s, nil, mobility.FeatureProfile{0}); err == nil {
		t.Error("multipath with bad dst should error")
	}
}

func TestFeatureDistanceMatchesBFS(t *testing.T) {
	s := Fig6Space()
	g := s.Graph()
	for src := 0; src < s.N(); src++ {
		dist, _, _ := g.BFS(src)
		for v := 0; v < s.N(); v++ {
			fd, err := s.FeatureDistance(src, v)
			if err != nil {
				t.Fatal(err)
			}
			if dist[v] != fd {
				t.Fatalf("BFS dist %d != feature distance %d for %d->%d", dist[v], fd, src, v)
			}
		}
	}
}
