// Package geo provides the 2-D Euclidean substrate of §II-A and §III-C:
// point sets, unit-disk neighborhoods, hole carving, and greedy geographic
// routing including its failure mode (getting stuck at a local minimum at a
// non-convex hole, Fig. 5a).
package geo

import (
	"errors"
	"math"
	"math/rand"

	"structura/internal/graph"
)

// Point is a 2-D location.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// RandomPoints places n points uniformly in the w x h rectangle.
func RandomPoints(r *rand.Rand, n int, w, h float64) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: r.Float64() * w, Y: r.Float64() * h}
	}
	return pts
}

// Hole is a circular forbidden region used to carve non-convex voids out of
// a deployment (the paper's Fig. 5a shows three such holes).
type Hole struct {
	Center Point
	Radius float64
}

// Inside reports whether p falls in the hole.
func (h Hole) Inside(p Point) bool {
	return h.Center.Dist(p) < h.Radius
}

// CarveHoles removes the points inside any hole, returning the survivors
// and their original indices.
func CarveHoles(pts []Point, holes []Hole) (kept []Point, idx []int) {
	for i, p := range pts {
		inHole := false
		for _, h := range holes {
			if h.Inside(p) {
				inHole = true
				break
			}
		}
		if !inHole {
			kept = append(kept, p)
			idx = append(idx, i)
		}
	}
	return kept, idx
}

// UnitDiskGraph connects every pair of points within radius of each other —
// the intersection graph of unit disks of §II-A.
func UnitDiskGraph(pts []Point, radius float64) *graph.Graph {
	g := graph.New(len(pts))
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].Dist(pts[j]) <= radius {
				_ = g.AddEdge(i, j)
			}
		}
	}
	return g
}

// ErrStuck is returned by GreedyRoute when greedy forwarding reaches a local
// minimum: no neighbor is closer to the destination than the current node.
var ErrStuck = errors.New("geo: greedy routing stuck at a local minimum")

// GreedyRoute forwards greedily from src to dst in g, always moving to the
// neighbor geographically closest to dst and strictly closer than the
// current node. It returns the node path, or ErrStuck (with the partial
// path) when it hits a local minimum — the failure the remapping of §III-C
// repairs.
func GreedyRoute(g *graph.Graph, pts []Point, src, dst int) ([]int, error) {
	if src < 0 || src >= len(pts) || dst < 0 || dst >= len(pts) {
		return nil, errors.New("geo: src/dst out of range")
	}
	path := []int{src}
	cur := src
	for cur != dst {
		best := -1
		bestD := pts[cur].Dist(pts[dst])
		g.EachNeighbor(cur, func(w int, _ float64) {
			if d := pts[w].Dist(pts[dst]); d < bestD {
				best, bestD = w, d
			}
		})
		if best == -1 {
			return path, ErrStuck
		}
		cur = best
		path = append(path, cur)
	}
	return path, nil
}

// DeliveryStats aggregates the outcome of routing many pairs.
type DeliveryStats struct {
	Attempts  int
	Delivered int
	Stuck     int
	AvgHops   float64 // over delivered routes
}

// Ratio returns Delivered/Attempts (0 when no attempts).
func (s DeliveryStats) Ratio() float64 {
	if s.Attempts == 0 {
		return 0
	}
	return float64(s.Delivered) / float64(s.Attempts)
}

// Route is the signature shared by greedy routers (Euclidean or remapped).
type Route func(src, dst int) ([]int, error)

// Evaluate routes trials random connected (src, dst) pairs with route and
// tallies delivery statistics. Pairs are drawn uniformly with src != dst.
func Evaluate(r *rand.Rand, n, trials int, route Route) DeliveryStats {
	var s DeliveryStats
	var hops int
	for t := 0; t < trials; t++ {
		src, dst := r.Intn(n), r.Intn(n)
		if src == dst {
			continue
		}
		s.Attempts++
		path, err := route(src, dst)
		if err != nil {
			s.Stuck++
			continue
		}
		s.Delivered++
		hops += len(path) - 1
	}
	if s.Delivered > 0 {
		s.AvgHops = float64(hops) / float64(s.Delivered)
	}
	return s
}
