package geo

import (
	"errors"
	"math"
	"testing"

	"structura/internal/stats"
)

func TestDist(t *testing.T) {
	if d := (Point{0, 0}).Dist(Point{3, 4}); d != 5 {
		t.Errorf("Dist = %v, want 5", d)
	}
	if d := (Point{1, 1}).Dist(Point{1, 1}); d != 0 {
		t.Errorf("Dist = %v, want 0", d)
	}
}

func TestRandomPointsInBounds(t *testing.T) {
	r := stats.NewRand(1)
	pts := RandomPoints(r, 500, 10, 20)
	if len(pts) != 500 {
		t.Fatalf("len = %d", len(pts))
	}
	for _, p := range pts {
		if p.X < 0 || p.X > 10 || p.Y < 0 || p.Y > 20 {
			t.Fatalf("point %v out of bounds", p)
		}
	}
}

func TestHoleAndCarve(t *testing.T) {
	h := Hole{Center: Point{5, 5}, Radius: 2}
	if !h.Inside(Point{5, 6}) || h.Inside(Point{5, 8}) {
		t.Error("Inside wrong")
	}
	pts := []Point{{5, 5}, {0, 0}, {5, 6.5}, {9, 9}}
	kept, idx := CarveHoles(pts, []Hole{h})
	if len(kept) != 2 || idx[0] != 1 || idx[1] != 3 {
		t.Errorf("kept %v idx %v", kept, idx)
	}
	if kept2, _ := CarveHoles(pts, nil); len(kept2) != 4 {
		t.Error("no holes should keep everything")
	}
}

func TestUnitDiskGraph(t *testing.T) {
	pts := []Point{{0, 0}, {0.5, 0}, {2, 0}}
	g := UnitDiskGraph(pts, 1)
	if !g.HasEdge(0, 1) {
		t.Error("points within radius must connect")
	}
	if g.HasEdge(0, 2) {
		t.Error("far points must not connect")
	}
	if g.M() != 1 {
		t.Errorf("M = %d, want 1", g.M())
	}
}

func TestGreedyRouteStraightLine(t *testing.T) {
	pts := []Point{{0, 0}, {1, 0}, {2, 0}, {3, 0}}
	g := UnitDiskGraph(pts, 1.1)
	path, err := GreedyRoute(g, pts, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestGreedyRouteSelf(t *testing.T) {
	pts := []Point{{0, 0}}
	g := UnitDiskGraph(pts, 1)
	path, err := GreedyRoute(g, pts, 0, 0)
	if err != nil || len(path) != 1 {
		t.Errorf("self route = %v, %v", path, err)
	}
	if _, err := GreedyRoute(g, pts, 0, 5); err == nil {
		t.Error("out-of-range dst should error")
	}
}

func TestGreedyRouteStuckAtConcaveHole(t *testing.T) {
	// A "C"-shaped wall: source on the right of the opening, destination
	// left; greedy walks into the dead end.
	//
	//   d . . w
	//       . w   <- wall of nodes with a gap that dead-ends
	//   s . . w
	pts := []Point{
		{3, 1},         // 0: source side entry
		{2, 1}, {1, 1}, // 1,2: corridor into the pocket
		{0, 2},  // 3: pocket end (local minimum)
		{-3, 2}, // 4: destination, unreachable except around, but
		// the only link out of the pocket goes backwards.
		{4, 4}, {4, 0}, // 5,6: detour nodes connected around the wall
	}
	g := UnitDiskGraph(pts, 1.5)
	// Ensure the detour exists: connect 0-6-5-4 manually with long links.
	_ = g.AddEdge(0, 6)
	_ = g.AddEdge(6, 5)
	_ = g.AddEdge(5, 4)
	path, err := GreedyRoute(g, pts, 0, 4)
	if !errors.Is(err, ErrStuck) {
		t.Fatalf("want ErrStuck, got path=%v err=%v", path, err)
	}
	if len(path) == 0 || path[0] != 0 {
		t.Errorf("partial path should start at src: %v", path)
	}
	// The stuck node must be a true local minimum.
	last := path[len(path)-1]
	dLast := pts[last].Dist(pts[4])
	g.EachNeighbor(last, func(w int, _ float64) {
		if pts[w].Dist(pts[4]) < dLast {
			t.Errorf("node %d has a closer neighbor %d; not a local minimum", last, w)
		}
	})
}

func TestDeliveryStatsRatio(t *testing.T) {
	s := DeliveryStats{Attempts: 4, Delivered: 3}
	if s.Ratio() != 0.75 {
		t.Errorf("Ratio = %v", s.Ratio())
	}
	if (DeliveryStats{}).Ratio() != 0 {
		t.Error("empty ratio should be 0")
	}
}

func TestEvaluate(t *testing.T) {
	r := stats.NewRand(2)
	pts := RandomPoints(r, 60, 10, 10)
	g := UnitDiskGraph(pts, 3)
	s := Evaluate(r, len(pts), 200, func(src, dst int) ([]int, error) {
		return GreedyRoute(g, pts, src, dst)
	})
	if s.Attempts == 0 {
		t.Fatal("no attempts")
	}
	if s.Delivered+s.Stuck != s.Attempts {
		t.Errorf("delivered %d + stuck %d != attempts %d", s.Delivered, s.Stuck, s.Attempts)
	}
	if s.Delivered > 0 && s.AvgHops <= 0 {
		t.Error("AvgHops should be positive when something was delivered")
	}
	// Dense graph on a small field: most routes should succeed.
	if s.Ratio() < 0.5 {
		t.Errorf("delivery ratio %v suspiciously low for dense UDG", s.Ratio())
	}
}

func TestGreedyDistanceMonotoneProperty(t *testing.T) {
	// Along any successful greedy path the distance to dst strictly falls.
	r := stats.NewRand(3)
	pts := RandomPoints(r, 80, 10, 10)
	g := UnitDiskGraph(pts, 2.5)
	for trial := 0; trial < 100; trial++ {
		src, dst := r.Intn(len(pts)), r.Intn(len(pts))
		if src == dst {
			continue
		}
		path, err := GreedyRoute(g, pts, src, dst)
		if err != nil {
			continue
		}
		for i := 1; i < len(path); i++ {
			d0 := pts[path[i-1]].Dist(pts[dst])
			d1 := pts[path[i]].Dist(pts[dst])
			if d1 >= d0 {
				t.Fatalf("distance did not decrease at hop %d of %v", i, path)
			}
		}
		if math.IsNaN(float64(len(path))) {
			t.Fatal("unreachable")
		}
	}
}
