package distvec

import (
	"errors"
	"fmt"
	"math"

	"structura/internal/graph"
)

// This file implements the paper's first §IV-C "front": a hybrid
// centralized-and-distributed method in which a central controller offers
// "guidance" to a distributed protocol. Following [31] (central control
// over distributed routing), the controller does not replace the
// distributed computation — it reshapes what the distributed computation
// sees, either by reassigning link weights or by inserting fake nodes and
// links into an augmented topology, so that plain distance-vector
// convergence lands on the centrally chosen routes.

// SteerByWeights returns a reweighted copy of g on which distance-vector
// routing toward dest converges to exactly the given parent pointers
// (parent[dest] must be -1; every other reachable node's parent edge must
// exist and the parents must form an arborescence toward dest). Desired
// edges get weight 1; every other edge gets a weight larger than any
// possible tree path, so the distributed protocol has a unique optimum.
func SteerByWeights(g *graph.Graph, dest int, parent []int) (*graph.Graph, error) {
	n := g.N()
	if dest < 0 || dest >= n {
		return nil, errors.New("distvec: dest out of range")
	}
	if len(parent) != n {
		return nil, fmt.Errorf("distvec: %d parents for %d nodes", len(parent), n)
	}
	if parent[dest] != -1 {
		return nil, errors.New("distvec: destination must have parent -1")
	}
	// Validate arborescence: following parents from any node must reach
	// dest without cycles.
	for v := 0; v < n; v++ {
		if parent[v] == -1 {
			continue
		}
		seen := 0
		for cur := v; cur != dest; cur = parent[cur] {
			if parent[cur] < 0 || parent[cur] >= n {
				return nil, fmt.Errorf("distvec: node %d has no path to dest via parents", v)
			}
			if !g.HasEdge(cur, parent[cur]) {
				return nil, fmt.Errorf("distvec: desired edge (%d,%d) not in graph", cur, parent[cur])
			}
			if seen++; seen > n {
				return nil, errors.New("distvec: parent pointers contain a cycle")
			}
		}
	}
	heavy := float64(n + 1)
	out := graph.New(n)
	for _, e := range g.Edges() {
		w := heavy
		if parent[e.From] == e.To || parent[e.To] == e.From {
			w = 1
		}
		if err := out.AddWeightedEdge(e.From, e.To, w); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// FakeAugmentation describes the result of SteerByFakeNodes: the augmented
// graph contains the original nodes 0..n-1 plus one fake node per forced
// entry. FakeOf maps each forced node v to its fake neighbor, and RealHop
// maps each fake back to the physical next hop it stands for.
type FakeAugmentation struct {
	Graph   *graph.Graph
	FakeOf  map[int]int
	RealHop map[int]int
}

// SteerByFakeNodes realizes the [31]-style augmentation the paper quotes
// ("it inserts fake nodes and links to create an augmented topology for a
// distributed solution"): for every forced pair (v -> u), a fake node f is
// attached to v with an arbitrarily cheap virtual link and an equally
// cheap virtual link toward the destination. The distributed computation
// then prefers v -> f; physically, the virtual link (v, f) is installed on
// v's real interface toward u, so the converged forwarding realizes
// (v -> u). Weights of the original links are untouched — only fake
// elements are added, exactly the augmented-topology trick of [31].
func SteerByFakeNodes(g *graph.Graph, dest int, forced map[int]int) (*FakeAugmentation, error) {
	n := g.N()
	if dest < 0 || dest >= n {
		return nil, errors.New("distvec: dest out of range")
	}
	aug := g.Clone()
	const eps = 1e-3
	fakes := make(map[int]int, len(forced))
	real := make(map[int]int, len(forced))
	for v, u := range forced {
		if v < 0 || v >= n || u < 0 || u >= n {
			return nil, errors.New("distvec: forced pair out of range")
		}
		if v == dest {
			return nil, errors.New("distvec: cannot force the destination")
		}
		if !g.HasEdge(v, u) {
			return nil, fmt.Errorf("distvec: forced next hop (%d,%d) is not a link", v, u)
		}
		f := aug.AddNode()
		fakes[v] = f
		real[f] = u
		if err := aug.AddWeightedEdge(v, f, eps); err != nil {
			return nil, err
		}
		if err := aug.AddWeightedEdge(f, dest, eps); err != nil {
			return nil, err
		}
	}
	return &FakeAugmentation{Graph: aug, FakeOf: fakes, RealHop: real}, nil
}

// NextHopsRealized checks which forced pairs the converged table honors:
// for each forced (v -> u), v must next-hop onto its fake (which is
// physically installed on the (v, u) interface).
func (a *FakeAugmentation) NextHopsRealized(t *Table, forced map[int]int) error {
	for v, u := range forced {
		if v >= len(t.NextHop) {
			return fmt.Errorf("distvec: forced node %d outside table", v)
		}
		if math.IsInf(t.Dist[v], 1) {
			return fmt.Errorf("distvec: forced node %d unreachable", v)
		}
		hop := t.NextHop[v]
		if hop == u {
			continue // converged onto the physical link directly
		}
		if a.RealHop[hop] != u || a.FakeOf[v] != hop {
			return fmt.Errorf("distvec: node %d converged to next hop %d, want %d (or its fake)", v, hop, u)
		}
	}
	return nil
}
