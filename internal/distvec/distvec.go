// Package distvec implements the distance-vector (distributed Bellman-Ford)
// dynamic labeling of §IV-B: every node repeatedly re-labels itself with
// its estimated distance to a destination, converging over many rounds —
// the paper's canonical example of a dynamic label with slow convergence,
// including the re-convergence churn after a link failure.
package distvec

import (
	"errors"
	"math"

	"structura/internal/graph"
	"structura/internal/runtime"
)

// ErrUnstable reports a run that exhausted its round budget before the
// labels stabilized (negative cycle, count-to-infinity after a partition,
// or maxRounds too small).
//
// Unstable-return contract (shared with labeling.ErrUnstable and
// hypercube.ErrUnstable): the accompanying result is non-nil and carries
// the partial labels as of the last executed round, so fault-injection
// harnesses can inspect the stale state instead of losing it.
var ErrUnstable = errors.New("distvec: did not converge (negative cycle or maxRounds too small)")

// Table holds the converged labels toward one destination.
type Table struct {
	Dest    int
	Dist    []float64 // +Inf when unreachable
	NextHop []int     // -1 at the destination and for unreachable nodes
	Rounds  int       // synchronous rounds until stable
}

type dvState struct {
	dist float64
	next int
}

// Compute runs synchronous distance-vector rounds on g toward dest until
// the labels stabilize. Edge weights are the link costs. Extra kernel
// options (observers, parallelism) are passed through to runtime.Run.
func Compute(g *graph.Graph, dest, maxRounds int, opts ...runtime.Option) (*Table, error) {
	if dest < 0 || dest >= g.N() {
		return nil, errors.New("distvec: destination out of range")
	}
	if maxRounds <= 0 {
		maxRounds = 4 * g.N()
	}
	// Freeze once: the step reads each node's incident weights and neighbor
	// IDs through zero-copy CSR views, which are in adjacency order —
	// exactly the order of the neighbor-state slice the kernel passes in.
	csr := g.Freeze()
	states, stats, err := runtime.RunCSR(csr,
		func(v int) dvState {
			if v == dest {
				return dvState{dist: 0, next: -1}
			}
			return dvState{dist: math.Inf(1), next: -1}
		},
		func(v int, self dvState, nbrs []dvState) (dvState, bool) {
			if v == dest {
				return self, false
			}
			weights := csr.NeighborWeights(v)
			ids := csr.Neighbors(v)
			best := dvState{dist: math.Inf(1), next: -1}
			for i, nb := range nbrs {
				if d := nb.dist + weights[i]; d < best.dist {
					best = dvState{dist: d, next: int(ids[i])}
				}
			}
			if best.dist != self.dist || best.next != self.next {
				return best, true
			}
			return self, false
		}, append([]runtime.Option{runtime.WithMaxRounds(maxRounds)}, opts...)...)
	if err != nil {
		return nil, err
	}
	t := &Table{Dest: dest, Dist: make([]float64, g.N()), NextHop: make([]int, g.N()), Rounds: stats.Rounds}
	for v, s := range states {
		t.Dist[v] = s.dist
		t.NextHop[v] = s.next
	}
	if !stats.Stable {
		return t, ErrUnstable
	}
	// The final no-change round does not count as work.
	t.Rounds = stats.Rounds - 1
	return t, nil
}

// Route follows the next-hop labels from src to the table's destination.
func (t *Table) Route(src int) ([]int, error) {
	if src < 0 || src >= len(t.Dist) {
		return nil, errors.New("distvec: src out of range")
	}
	if math.IsInf(t.Dist[src], 1) {
		return nil, errors.New("distvec: unreachable")
	}
	path := []int{src}
	for cur := src; cur != t.Dest; {
		cur = t.NextHop[cur]
		if cur < 0 || len(path) > len(t.Dist) {
			return path, errors.New("distvec: broken next-hop chain")
		}
		path = append(path, cur)
	}
	return path, nil
}

// ReconvergeAfterFailure removes link (u,v) from g and recomputes the
// table, reporting the new table and how many nodes changed their distance
// label — the churn the paper attributes to dynamic labels. The input
// graph is not modified.
func ReconvergeAfterFailure(g *graph.Graph, old *Table, u, v, maxRounds int) (*Table, int, error) {
	work := g.Clone()
	if !work.RemoveEdge(u, v) {
		return nil, 0, errors.New("distvec: link does not exist")
	}
	nt, err := Compute(work, old.Dest, maxRounds)
	if err != nil {
		return nil, 0, err
	}
	changed := 0
	for i := range nt.Dist {
		if nt.Dist[i] != old.Dist[i] {
			changed++
		}
	}
	return nt, changed, nil
}
