package distvec

import (
	"math"
	"testing"

	"structura/internal/gen"
	"structura/internal/graph"
	"structura/internal/stats"
)

func TestComputeOnPath(t *testing.T) {
	g := gen.Path(5)
	tab, err := Compute(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 5; v++ {
		if tab.Dist[v] != float64(v) {
			t.Errorf("dist[%d] = %v, want %d", v, tab.Dist[v], v)
		}
	}
	// Convergence takes about diameter rounds.
	if tab.Rounds < 4 || tab.Rounds > 6 {
		t.Errorf("rounds = %d, want ~4 (diameter)", tab.Rounds)
	}
	path, err := tab.Route(4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 3, 2, 1, 0}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("route = %v, want %v", path, want)
		}
	}
}

func TestComputeWeighted(t *testing.T) {
	g := graph.New(3)
	_ = g.AddWeightedEdge(0, 1, 1)
	_ = g.AddWeightedEdge(1, 2, 1)
	_ = g.AddWeightedEdge(0, 2, 5)
	tab, err := Compute(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Dist[2] != 2 {
		t.Errorf("dist[2] = %v, want 2 via node 1", tab.Dist[2])
	}
	if tab.NextHop[2] != 1 {
		t.Errorf("nexthop[2] = %d, want 1", tab.NextHop[2])
	}
}

func TestComputeMatchesDijkstra(t *testing.T) {
	r := stats.NewRand(1)
	for trial := 0; trial < 20; trial++ {
		n := 5 + r.Intn(30)
		g := graph.New(n)
		for k := 0; k < n*3; k++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				_ = g.AddWeightedEdge(u, v, float64(1+r.Intn(9)))
			}
		}
		tab, err := Compute(g, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := g.Dijkstra(0)
		for v := 0; v < n; v++ {
			if tab.Dist[v] != want[v] && !(math.IsInf(tab.Dist[v], 1) && math.IsInf(want[v], 1)) {
				t.Fatalf("trial %d node %d: DV %v vs Dijkstra %v", trial, v, tab.Dist[v], want[v])
			}
		}
	}
}

func TestComputeValidation(t *testing.T) {
	g := gen.Path(3)
	if _, err := Compute(g, 9, 0); err == nil {
		t.Error("bad destination should error")
	}
	tab, _ := Compute(g, 0, 0)
	if _, err := tab.Route(-1); err == nil {
		t.Error("bad src should error")
	}
}

func TestUnreachable(t *testing.T) {
	g := graph.New(4)
	_ = g.AddEdge(0, 1)
	tab, err := Compute(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(tab.Dist[2], 1) {
		t.Errorf("isolated node dist = %v, want +Inf", tab.Dist[2])
	}
	if _, err := tab.Route(2); err == nil {
		t.Error("routing from unreachable node should error")
	}
}

func TestReconvergeAfterFailure(t *testing.T) {
	// Ring: failing one link forces the far side to re-route the long way.
	g := gen.Ring(8)
	tab, err := Compute(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	nt, changed, err := ReconvergeAfterFailure(g, tab, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if changed == 0 {
		t.Fatal("failure on a used link must change some labels")
	}
	// Node 1 now routes the long way: distance 7.
	if nt.Dist[1] != 7 {
		t.Errorf("dist[1] after failure = %v, want 7", nt.Dist[1])
	}
	if _, _, err := ReconvergeAfterFailure(g, tab, 0, 5, 0); err == nil {
		t.Error("removing a non-existent link should error")
	}
	// Original graph untouched.
	if !g.HasEdge(0, 1) {
		t.Error("input graph must not be modified")
	}
}

func TestConvergenceRoundsScaleWithDiameter(t *testing.T) {
	// The paper's point: distance-vector convergence is slow — rounds grow
	// with the network diameter.
	short, err := Compute(gen.Path(8), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	long, err := Compute(gen.Path(64), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if long.Rounds <= short.Rounds {
		t.Errorf("rounds: path64 %d <= path8 %d; must grow with diameter", long.Rounds, short.Rounds)
	}
	if long.Rounds < 60 {
		t.Errorf("path64 rounds = %d, want ~diameter", long.Rounds)
	}
}
