package distvec

import (
	"context"
	"errors"
	"math"
	"sort"

	"structura/internal/graph"
)

// Maintainer is the maintenance face of the distance-vector labels: instead
// of recomputing the table from scratch after every topology change, it
// keeps hop counts toward one destination consistent under edge churn using
// the classic count-to-infinity mitigations — split horizon with poisoned
// reverse (a node never adopts a route through a neighbor that routes
// through it) and a hop-count ceiling at n (anything counting past every
// possible simple path is declared unreachable). Repairs spread as frontier
// relaxation sweeps from the disturbed nodes, under an explicit budget, so
// a supervisor can measure locality and escalate to a BFS rebuild when a
// partition makes the vector count toward the ceiling.
type Maintainer struct {
	g    *graph.Graph
	dest int
	dist []float64 // hop estimate; +Inf = unreachable
	next []int     // next hop toward dest; -1 at dest and when unreachable
}

// NewMaintainer builds the maintainer over a clone of g (the caller's graph
// is never mutated) with labels initialized to true BFS hop counts.
func NewMaintainer(g *graph.Graph, dest int) (*Maintainer, error) {
	if g.Directed() {
		return nil, errors.New("distvec: maintainer needs an undirected support")
	}
	if dest < 0 || dest >= g.N() {
		return nil, errors.New("distvec: destination out of range")
	}
	m := &Maintainer{
		g:    g.Clone(),
		dest: dest,
		dist: make([]float64, g.N()),
		next: make([]int, g.N()),
	}
	m.Recompute()
	return m, nil
}

// NewMaintainerFromLabels builds the maintainer over a clone of g with the
// labels seeded from a recovered epoch instead of a BFS rebuild — the
// warm-start path, where durable (dist, next) arrays are already consistent
// with g up to a known dirty set the caller heals afterwards. The arrays
// are copied; only their lengths are validated here (consistency is the
// supervisor's job: run CheckLocal over the dirty set, or Inconsistent over
// everything for a full audit).
func NewMaintainerFromLabels(g *graph.Graph, dest int, dist []float64, next []int) (*Maintainer, error) {
	if g.Directed() {
		return nil, errors.New("distvec: maintainer needs an undirected support")
	}
	if dest < 0 || dest >= g.N() {
		return nil, errors.New("distvec: destination out of range")
	}
	if len(dist) != g.N() || len(next) != g.N() {
		return nil, errors.New("distvec: label arrays do not match the graph")
	}
	return &Maintainer{
		g:    g.Clone(),
		dest: dest,
		dist: append([]float64(nil), dist...),
		next: append([]int(nil), next...),
	}, nil
}

// Dest returns the destination node.
func (m *Maintainer) Dest() int { return m.dest }

// Graph returns a copy of the live support graph.
func (m *Maintainer) Graph() *graph.Graph { return m.g.Clone() }

// Dist returns a copy of the current hop labels.
func (m *Maintainer) Dist() []float64 { return append([]float64(nil), m.dist...) }

// NextHops returns a copy of the current next-hop labels: next[v] is the
// neighbor v forwards through toward the destination, -1 at the destination
// and for unreachable nodes. Paired with Dist these are the route labels a
// serving layer publishes per epoch.
func (m *Maintainer) NextHops() []int { return append([]int(nil), m.next...) }

// AddEdge inserts support edge (u,v) and returns the nodes whose labels the
// change may have invalidated. The labels themselves are not updated —
// detection and repair are the supervisor's moves.
func (m *Maintainer) AddEdge(u, v int) ([]int, error) {
	if err := m.g.AddEdge(u, v); err != nil {
		return nil, err
	}
	return []int{u, v}, nil
}

// RemoveEdge deletes support edge (u,v). Each endpoint that was routing
// over the lost edge is poisoned on the spot — label +Inf, no next hop — so
// its stale finite estimate cannot keep circulating while the repair
// frontier catches up (the poisoned-reverse discipline's first move).
func (m *Maintainer) RemoveEdge(u, v int) ([]int, error) {
	if !m.g.RemoveEdge(u, v) {
		return nil, errors.New("distvec: edge does not exist")
	}
	if m.next[u] == v {
		m.dist[u] = math.Inf(1)
		m.next[u] = -1
	}
	if m.next[v] == u {
		m.dist[v] = math.Inf(1)
		m.next[v] = -1
	}
	return []int{u, v}, nil
}

// offer is the label neighbor w advertises to x under split horizon with
// poisoned reverse: its own estimate, except poisoned to +Inf when w's
// route goes through x.
func (m *Maintainer) offer(w, x int) float64 {
	if m.next[w] == x {
		return math.Inf(1)
	}
	return m.dist[w]
}

// settle recomputes x's label from its neighbors' poisoned advertisements,
// applying the hop ceiling, and reports whether it changed.
func (m *Maintainer) settle(x int) bool {
	if x == m.dest {
		changed := m.dist[x] != 0 || m.next[x] != -1
		m.dist[x], m.next[x] = 0, -1
		return changed
	}
	best, hop := math.Inf(1), -1
	m.g.EachNeighbor(x, func(w int, _ float64) {
		if d := m.offer(w, x) + 1; d < best {
			best, hop = d, w
		}
	})
	if best >= float64(m.g.N()) {
		best, hop = math.Inf(1), -1 // counted past every simple path
	}
	if best == m.dist[x] && hop == m.next[x] {
		return false
	}
	m.dist[x], m.next[x] = best, hop
	return true
}

// Inconsistent returns, among the candidate nodes, those whose (label,
// next hop) pair disagrees with what settle would compute from the
// neighbors' poisoned advertisements — the local detector. Pass an event's
// endpoints and their neighbors. Checking the next hop, not just the label,
// is what makes the detector complete: a node can hold a correct label
// while its stale next hop still points into a poisoned region, and that
// stale pointer poisons the node's own advertisement back into the region,
// hiding a real route behind a value-only check. At the (dist, next) fixed
// point every hop chain descends by one to the destination, so labels equal
// BFS hop counts and local consistency everywhere is global correctness.
func (m *Maintainer) Inconsistent(candidates []int) []int {
	var out []int
	seen := make(map[int]bool, len(candidates))
	for _, x := range candidates {
		if x < 0 || x >= m.g.N() || seen[x] {
			continue
		}
		seen[x] = true
		if x == m.dest {
			if m.dist[x] != 0 || m.next[x] != -1 {
				out = append(out, x)
			}
			continue
		}
		best, hop := math.Inf(1), -1
		m.g.EachNeighbor(x, func(w int, _ float64) {
			if d := m.offer(w, x) + 1; d < best {
				best, hop = d, w
			}
		})
		if best >= float64(m.g.N()) {
			best, hop = math.Inf(1), -1
		}
		if best != m.dist[x] || hop != m.next[x] {
			out = append(out, x)
		}
	}
	sort.Ints(out)
	return out
}

// Repair runs frontier relaxation sweeps from the seed nodes: every sweep
// settles the current frontier synchronously and enqueues the neighbors of
// every node whose label changed. It stops when the frontier drains (ok),
// or when it would exceed maxRounds sweeps or maxTouched distinct nodes
// (not ok — the caller escalates to Recompute). A partition drives labels
// up toward the hop ceiling one sweep at a time, which is exactly the
// bounded count-to-infinity the budget converts into an escalation.
func (m *Maintainer) Repair(seeds []int, maxRounds, maxTouched int) (touched []int, rounds int, ok bool) {
	touched, rounds, ok, _ = m.RepairContext(nil, seeds, maxRounds, maxTouched)
	return touched, rounds, ok
}

// RepairContext is Repair with a cancellation context threaded through the
// sweep loop (mirroring runtime.WithContext): the context is checked before
// every sweep, and a repair interrupted mid-cascade stops where it is and
// returns ctx.Err() with ok == false. A cancelled repair is NOT a budget
// exhaustion — the caller should abort (e.g. a server shutting down must not
// escalate to a full recompute it would also have to abandon), which is why
// the error is surfaced separately from ok. A nil ctx disables the checks.
func (m *Maintainer) RepairContext(ctx context.Context, seeds []int, maxRounds, maxTouched int) (touched []int, rounds int, ok bool, err error) {
	frontier := make([]int, 0, len(seeds))
	inFrontier := make(map[int]bool, len(seeds))
	push := func(x int) {
		if x >= 0 && x < m.g.N() && !inFrontier[x] {
			inFrontier[x] = true
			frontier = append(frontier, x)
		}
	}
	for _, s := range seeds {
		push(s)
	}
	touchedSet := make(map[int]bool)
	for len(frontier) > 0 {
		if ctx != nil {
			select {
			case <-ctx.Done():
				return sortedKeys(touchedSet), rounds, false, ctx.Err()
			default:
			}
		}
		if maxRounds > 0 && rounds >= maxRounds {
			return sortedKeys(touchedSet), rounds, false, nil
		}
		rounds++
		cur := frontier
		frontier = nil
		inFrontier = make(map[int]bool)
		sort.Ints(cur) // deterministic sweep order
		for _, x := range cur {
			if !touchedSet[x] {
				if maxTouched > 0 && len(touchedSet) >= maxTouched {
					return sortedKeys(touchedSet), rounds, false, nil
				}
				touchedSet[x] = true
			}
			if m.settle(x) {
				push(x) // re-check against next sweep's neighborhood
				m.g.EachNeighbor(x, func(w int, _ float64) { push(w) })
			}
		}
	}
	return sortedKeys(touchedSet), rounds, true, nil
}

// Recompute rebuilds the labels from a BFS — the full-recompute escalation.
// Its cost, charged as one sweep per BFS level, is what localized repair is
// measured against. Next hops are assigned the way settle breaks ties (the
// first one-level-closer neighbor in adjacency order), not the BFS discovery
// parent: the two can disagree, and a recomputed table whose hops fail the
// engine's own local detector would re-trigger repair on perfectly good
// distances.
func (m *Maintainer) Recompute() int {
	n := m.g.N()
	for v := 0; v < n; v++ {
		m.dist[v] = math.Inf(1)
		m.next[v] = -1
	}
	m.dist[m.dest] = 0
	queue := []int{m.dest}
	depth := 0
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		m.g.EachNeighbor(v, func(w int, _ float64) {
			if math.IsInf(m.dist[w], 1) {
				m.dist[w] = m.dist[v] + 1
				queue = append(queue, w)
			}
		})
		if d := int(m.dist[v]); d > depth {
			depth = d
		}
	}
	for v := 0; v < n; v++ {
		if v == m.dest || math.IsInf(m.dist[v], 1) {
			continue
		}
		hop := -1
		m.g.EachNeighbor(v, func(w int, _ float64) {
			if hop == -1 && m.dist[w] == m.dist[v]-1 {
				hop = w
			}
		})
		m.next[v] = hop
	}
	return depth + 1
}

func sortedKeys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
