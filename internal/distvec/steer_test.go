package distvec

import (
	"testing"

	"structura/internal/gen"
	"structura/internal/graph"
	"structura/internal/stats"
)

func TestSteerByWeightsOnRing(t *testing.T) {
	// Force every ring node to route clockwise toward 0 even though the
	// counterclockwise path is just as short in hops.
	n := 8
	g := gen.Ring(n)
	parent := make([]int, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		parent[v] = v - 1
	}
	steered, err := SteerByWeights(g, 0, parent)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Compute(steered, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < n; v++ {
		if tab.NextHop[v] != parent[v] {
			t.Fatalf("node %d converged to %d, want %d", v, tab.NextHop[v], parent[v])
		}
	}
	// Node n-1 pays the full clockwise path rather than one hop.
	if tab.Dist[n-1] != float64(n-1) {
		t.Errorf("dist[%d] = %v, want %d", n-1, tab.Dist[n-1], n-1)
	}
}

func TestSteerByWeightsRandomArborescence(t *testing.T) {
	r := stats.NewRand(1)
	for trial := 0; trial < 10; trial++ {
		g := gen.ErdosRenyi(r, 30, 0.15)
		if !g.Connected() {
			continue
		}
		// Random BFS-ish arborescence: take the BFS tree of a random root
		// relabeled to dest 0... simplest: use BFS parents from 0.
		_, parent, _ := g.BFS(0)
		steered, err := SteerByWeights(g, 0, parent)
		if err != nil {
			t.Fatal(err)
		}
		tab, err := Compute(steered, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		for v := 1; v < g.N(); v++ {
			if tab.NextHop[v] != parent[v] {
				t.Fatalf("trial %d: node %d hop %d, want %d", trial, v, tab.NextHop[v], parent[v])
			}
		}
	}
}

func TestSteerByWeightsValidation(t *testing.T) {
	g := gen.Ring(4)
	if _, err := SteerByWeights(g, 9, []int{-1, 0, 1, 2}); err == nil {
		t.Error("bad dest should error")
	}
	if _, err := SteerByWeights(g, 0, []int{-1, 0}); err == nil {
		t.Error("short parents should error")
	}
	if _, err := SteerByWeights(g, 0, []int{0, 0, 1, 2}); err == nil {
		t.Error("dest with a parent should error")
	}
	if _, err := SteerByWeights(g, 0, []int{-1, 2, 1, 2}); err == nil {
		t.Error("parent cycle should error")
	}
	if _, err := SteerByWeights(g, 0, []int{-1, 3, 1, 0}); err == nil {
		t.Error("non-edge parent should error")
	}
}

func TestSteerByFakeNodes(t *testing.T) {
	// Diamond: 1 can reach 0 directly (weight 1) or via 2 (2 hops). Force
	// 1 -> 2 with a fake node behind 2.
	g := graph.New(3)
	_ = g.AddWeightedEdge(1, 0, 1)
	_ = g.AddWeightedEdge(1, 2, 1)
	_ = g.AddWeightedEdge(2, 0, 1)
	forced := map[int]int{1: 2}
	aug, err := SteerByFakeNodes(g, 0, forced)
	if err != nil {
		t.Fatal(err)
	}
	if aug.Graph.N() != 4 {
		t.Fatalf("augmented n = %d, want 4 (one fake)", aug.Graph.N())
	}
	tab, err := Compute(aug.Graph, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := aug.NextHopsRealized(tab, forced); err != nil {
		t.Fatal(err)
	}
	if tab.NextHop[1] != aug.FakeOf[1] {
		t.Fatalf("node 1 should route onto its fake %d, got %d", aug.FakeOf[1], tab.NextHop[1])
	}
	// Unforced baseline: 1 would go straight to 0.
	base, err := Compute(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if base.NextHop[1] != 0 {
		t.Fatalf("baseline next hop = %d, want 0", base.NextHop[1])
	}
}

func TestSteerByFakeNodesValidation(t *testing.T) {
	g := gen.Ring(4)
	if _, err := SteerByFakeNodes(g, 9, nil); err == nil {
		t.Error("bad dest should error")
	}
	if _, err := SteerByFakeNodes(g, 0, map[int]int{0: 1}); err == nil {
		t.Error("forcing the destination should error")
	}
	if _, err := SteerByFakeNodes(g, 0, map[int]int{1: 3}); err == nil {
		t.Error("forcing a non-link should error")
	}
	if _, err := SteerByFakeNodes(g, 0, map[int]int{9: 1}); err == nil {
		t.Error("out-of-range forced node should error")
	}
}

func TestNextHopsRealizedErrors(t *testing.T) {
	g := gen.Path(3)
	tab, _ := Compute(g, 0, 0)
	aug := &FakeAugmentation{FakeOf: map[int]int{}, RealHop: map[int]int{}}
	if err := aug.NextHopsRealized(tab, map[int]int{2: 0}); err == nil {
		t.Error("wrong next hop should be reported")
	}
	if err := aug.NextHopsRealized(tab, map[int]int{9: 0}); err == nil {
		t.Error("out-of-table node should be reported")
	}
	if err := aug.NextHopsRealized(tab, map[int]int{2: 1}); err != nil {
		t.Errorf("correct hop reported as violation: %v", err)
	}
}
