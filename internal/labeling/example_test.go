package labeling_test

import (
	"fmt"

	"structura/internal/labeling"
)

// The paper's Fig. 8 walkthrough: marking, pruning, MIS, and the
// neighbor-designated dominating set on the six-node example.
func ExampleMarkCDS() {
	g := labeling.Fig8Graph() // A=0 ... F=5
	prio := labeling.PriorityByID(6)
	letters := func(ids []int) string {
		s := ""
		for _, v := range ids {
			s += string(rune('A' + v))
		}
		return s
	}

	marked := labeling.MarkCDS(g)
	fmt.Println("marked:", letters(labeling.Members(marked, labeling.Black)))

	pruned, _ := labeling.PruneCDS(g, marked, prio)
	fmt.Println("pruned:", letters(labeling.Members(pruned, labeling.Black)))

	mis, _ := labeling.DistributedMIS(g, prio)
	fmt.Println("MIS:   ", letters(labeling.Members(mis.Colors, labeling.Black)))

	ds, _ := labeling.NeighborDesignatedDS(g, prio)
	fmt.Println("DS:    ", letters(labeling.Members(ds, labeling.Black)))
	// Output:
	// marked: BCDEF
	// pruned: BCD
	// MIS:    ABE
	// DS:     ABC
}
