package labeling

import (
	"math"
	"testing"
	"testing/quick"

	"structura/internal/gen"
	"structura/internal/graph"
	"structura/internal/stats"
)

const (
	nodeA = iota
	nodeB
	nodeC
	nodeD
	nodeE
	nodeF
)

func sameMembers(t *testing.T, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("members = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("members = %v, want %v", got, want)
		}
	}
}

func TestFig8Marking(t *testing.T) {
	// "In Fig. 8, all nodes except A are labeled black."
	g := Fig8Graph()
	colors := MarkCDS(g)
	sameMembers(t, Members(colors, Black), []int{nodeB, nodeC, nodeD, nodeE, nodeF})
	if colors[nodeA] != White {
		t.Error("A must stay white (its neighbors C and D are connected)")
	}
	// The marked set must be a CDS.
	if !IsCDS(g, SetOf(Members(colors, Black))) {
		t.Error("marked set must be a CDS")
	}
}

func TestFig8Pruning(t *testing.T) {
	// "B, C, and D are three black nodes remained after the trimming."
	g := Fig8Graph()
	colors := MarkCDS(g)
	pruned, err := PruneCDS(g, colors, PriorityByID(6))
	if err != nil {
		t.Fatal(err)
	}
	sameMembers(t, Members(pruned, Black), []int{nodeB, nodeC, nodeD})
	if !IsCDS(g, SetOf(Members(pruned, Black))) {
		t.Error("pruned set must still be a CDS")
	}
}

func TestFig8MIS(t *testing.T) {
	// "A and B are colored black [in round 1]... The final MIS is A, B,
	// and E, all colored black."
	g := Fig8Graph()
	res, err := DistributedMIS(g, PriorityByID(6))
	if err != nil {
		t.Fatal(err)
	}
	sameMembers(t, Members(res.Colors, Black), []int{nodeA, nodeB, nodeE})
	if !IsMIS(g, SetOf(Members(res.Colors, Black))) {
		t.Error("result must be an MIS")
	}
	// Everyone else ends Gray.
	sameMembers(t, Members(res.Colors, Gray), []int{nodeC, nodeD, nodeF})
	if res.Rounds < 2 {
		t.Errorf("rounds = %d; E can only win after C,D,F retire", res.Rounds)
	}
}

func TestFig8NeighborDesignated(t *testing.T) {
	// "A, B, and C are selected as DS (but not a CDS or an IS)."
	g := Fig8Graph()
	colors, err := NeighborDesignatedDS(g, PriorityByID(6))
	if err != nil {
		t.Fatal(err)
	}
	ds := Members(colors, Black)
	sameMembers(t, ds, []int{nodeA, nodeB, nodeC})
	set := SetOf(ds)
	if !IsDominatingSet(g, set) {
		t.Error("selected set must dominate")
	}
	if IsCDS(g, set) {
		t.Error("paper: the selected set is NOT a CDS")
	}
	if IsIndependent(g, set) {
		t.Error("paper: the selected set is NOT an IS")
	}
}

func TestPriorityValidation(t *testing.T) {
	g := Fig8Graph()
	if _, err := PruneCDS(g, MarkCDS(g), Priority{1, 2}); err == nil {
		t.Error("short priorities should error")
	}
	if _, err := PruneCDS(g, []Color{Black}, PriorityByID(6)); err == nil {
		t.Error("short colors should error")
	}
	if _, err := DistributedMIS(g, Priority{1, 1, 2, 3, 4, 5}); err == nil {
		t.Error("duplicate priorities should error")
	}
	if _, err := NeighborDesignatedDS(g, Priority{1}); err == nil {
		t.Error("short priorities should error")
	}
}

func TestMarkCDSOnRandomUDGStyleGraphs(t *testing.T) {
	r := stats.NewRand(1)
	for trial := 0; trial < 20; trial++ {
		g := gen.ErdosRenyi(r, 40, 0.15)
		if !g.Connected() {
			continue
		}
		colors := MarkCDS(g)
		black := SetOf(Members(colors, Black))
		if len(black) == 0 {
			// Complete-ish graph: no node has unconnected neighbors; the
			// graph itself is its own dominating clique. Skip.
			continue
		}
		if !IsCDS(g, black) {
			t.Fatalf("trial %d: marking did not produce a CDS", trial)
		}
		pruned, err := PruneCDS(g, colors, PriorityByID(40))
		if err != nil {
			t.Fatal(err)
		}
		pb := SetOf(Members(pruned, Black))
		if len(pb) > len(black) {
			t.Fatal("pruning cannot grow the set")
		}
		if !IsCDS(g, pb) {
			t.Fatalf("trial %d: pruned set is not a CDS", trial)
		}
	}
}

func TestDistributedMISProperties(t *testing.T) {
	r := stats.NewRand(2)
	for trial := 0; trial < 20; trial++ {
		g := gen.ErdosRenyi(r, 60, 0.08)
		prio := make(Priority, 60)
		perm := r.Perm(60)
		for i, p := range perm {
			prio[i] = float64(p)
		}
		res, err := DistributedMIS(g, prio)
		if err != nil {
			t.Fatal(err)
		}
		if !IsMIS(g, SetOf(Members(res.Colors, Black))) {
			t.Fatalf("trial %d: not an MIS", trial)
		}
		// No White left.
		if len(Members(res.Colors, White)) != 0 {
			t.Fatal("white nodes remain")
		}
	}
}

func TestMISRoundsLogarithmic(t *testing.T) {
	// With random priorities, rounds should grow like O(log n): compare
	// n=64 vs n=4096 — rounds should grow far slower than n.
	r := stats.NewRand(3)
	rounds := map[int]int{}
	for _, n := range []int{64, 1024} {
		g := gen.ErdosRenyi(r, n, 4/float64(n)) // constant average degree
		prio := make(Priority, n)
		perm := r.Perm(n)
		for i, p := range perm {
			prio[i] = float64(p)
		}
		res, err := DistributedMIS(g, prio)
		if err != nil {
			t.Fatal(err)
		}
		rounds[n] = res.Rounds
	}
	if rounds[1024] > 8*rounds[64] {
		t.Errorf("rounds grew too fast: %v", rounds)
	}
	if rounds[1024] > 4*int(math.Log2(1024)) {
		t.Errorf("rounds %d >> O(log n) expectation", rounds[1024])
	}
}

func TestNeighborDesignatedIsAlwaysDS(t *testing.T) {
	r := stats.NewRand(4)
	for trial := 0; trial < 20; trial++ {
		g := gen.ErdosRenyi(r, 50, 0.1)
		colors, err := NeighborDesignatedDS(g, PriorityByID(50))
		if err != nil {
			t.Fatal(err)
		}
		if !IsDominatingSet(g, SetOf(Members(colors, Black))) {
			t.Fatalf("trial %d: neighbor-designated set must dominate", trial)
		}
	}
}

func TestValidityCheckersOnKnownSets(t *testing.T) {
	g := gen.Star(5)
	if !IsDominatingSet(g, map[int]bool{0: true}) {
		t.Error("star center dominates")
	}
	if IsDominatingSet(g, map[int]bool{1: true}) {
		t.Error("one leaf does not dominate")
	}
	if !IsMIS(g, map[int]bool{0: true}) {
		t.Error("{center} is an MIS of the star")
	}
	leaves := map[int]bool{1: true, 2: true, 3: true, 4: true}
	if !IsMIS(g, leaves) {
		t.Error("all leaves form an MIS")
	}
	if !IsCDS(g, map[int]bool{0: true}) {
		t.Error("{center} is a CDS")
	}
	if IsIndependent(g, map[int]bool{0: true, 1: true}) {
		t.Error("center+leaf are adjacent")
	}
	if !IsConnectedSet(g, map[int]bool{}) {
		t.Error("empty set is vacuously connected")
	}
}

func TestMembersAndSetOf(t *testing.T) {
	colors := []Color{Black, White, Black, Gray}
	sameMembers(t, Members(colors, Black), []int{0, 2})
	set := SetOf([]int{3, 1})
	if !set[3] || !set[1] || set[0] {
		t.Errorf("SetOf = %v", set)
	}
}

// --- dynamic MIS ---------------------------------------------------------

func TestDynamicMISInvariantUnderChurn(t *testing.T) {
	r := stats.NewRand(5)
	g := gen.ErdosRenyi(r, 50, 0.08)
	d, err := NewDynamicMIS(g, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 300; step++ {
		u, v := r.Intn(50), r.Intn(50)
		if u == v {
			continue
		}
		if d.Graph().HasEdge(u, v) {
			if _, err := d.RemoveEdge(u, v); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := d.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.Verify(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

func TestDynamicMISConstantAdjustments(t *testing.T) {
	// [30]: expected O(1) adjustments per update with random priorities.
	r := stats.NewRand(6)
	g := gen.ErdosRenyi(r, 300, 0.03)
	d, err := NewDynamicMIS(g, r)
	if err != nil {
		t.Fatal(err)
	}
	var total, updates int
	for step := 0; step < 500; step++ {
		u, v := r.Intn(300), r.Intn(300)
		if u == v {
			continue
		}
		var flips int
		if d.Graph().HasEdge(u, v) {
			flips, err = d.RemoveEdge(u, v)
		} else {
			flips, err = d.AddEdge(u, v)
		}
		if err != nil {
			t.Fatal(err)
		}
		total += flips
		updates++
	}
	avg := float64(total) / float64(updates)
	if avg > 3 {
		t.Errorf("average adjustments per update = %v, want O(1) (small constant)", avg)
	}
}

func TestDynamicMISErrors(t *testing.T) {
	r := stats.NewRand(7)
	if _, err := NewDynamicMIS(graph.NewDirected(3), r); err == nil {
		t.Error("directed graph should error")
	}
	d, err := NewDynamicMIS(graph.New(3), r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.RemoveEdge(0, 1); err == nil {
		t.Error("removing a missing edge should error")
	}
	if _, err := d.AddEdge(0, 9); err == nil {
		t.Error("out-of-range edge should error")
	}
	if d.InMIS(-1) {
		t.Error("out-of-range InMIS should be false")
	}
	// All-isolated graph: everyone is in the MIS.
	if got := d.Members(); len(got) != 3 {
		t.Errorf("isolated nodes must all be members, got %v", got)
	}
}

func TestDynamicMISEdgeSemantics(t *testing.T) {
	r := stats.NewRand(8)
	d, err := NewDynamicMIS(graph.New(2), r)
	if err != nil {
		t.Fatal(err)
	}
	// Initially both isolated: both in MIS. Adding the edge must evict
	// exactly the lower-priority one (1 flip).
	flips, err := d.AddEdge(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if flips != 1 {
		t.Errorf("flips = %d, want 1", flips)
	}
	if len(d.Members()) != 1 {
		t.Errorf("members = %v, want exactly one", d.Members())
	}
	// Removing it must bring the evicted node back.
	flips, err = d.RemoveEdge(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if flips != 1 || len(d.Members()) != 2 {
		t.Errorf("after removal: flips=%d members=%v", flips, d.Members())
	}
}

func TestQuickPruneCDSValidity(t *testing.T) {
	// Property: on any connected graph where marking yields a CDS, pruning
	// keeps it a CDS under arbitrary distinct priorities.
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%30) + 5
		r := stats.NewRand(seed)
		g := gen.ErdosRenyi(r, n, 0.15)
		if !g.Connected() {
			return true
		}
		colors := MarkCDS(g)
		black := SetOf(Members(colors, Black))
		if len(black) == 0 || !IsCDS(g, black) {
			return true // complete-ish graph: nothing marked
		}
		prio := make(Priority, n)
		for i, p := range r.Perm(n) {
			prio[i] = float64(p)
		}
		pruned, err := PruneCDS(g, colors, prio)
		if err != nil {
			return false
		}
		return IsCDS(g, SetOf(Members(pruned, Black)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
