package labeling

import (
	"testing"

	"structura/internal/gen"
	"structura/internal/geo"
	"structura/internal/graph"
	"structura/internal/stats"
)

func TestCDSFromMISProducesCDS(t *testing.T) {
	r := stats.NewRand(1)
	for trial := 0; trial < 20; trial++ {
		g := gen.ErdosRenyi(r, 50, 0.1)
		if !g.Connected() {
			continue
		}
		prio := make(Priority, 50)
		for i, p := range r.Perm(50) {
			prio[i] = float64(p)
		}
		cds, mis, err := CDSFromMIS(g, prio)
		if err != nil {
			t.Fatal(err)
		}
		if !IsCDS(g, SetOf(cds)) {
			t.Fatalf("trial %d: result is not a CDS", trial)
		}
		if !IsMIS(g, SetOf(mis)) {
			t.Fatalf("trial %d: base set is not an MIS", trial)
		}
		// Every MIS node survives into the CDS.
		set := SetOf(cds)
		for _, v := range mis {
			if !set[v] {
				t.Fatalf("MIS node %d missing from CDS", v)
			}
		}
		// Gateways are bounded: at most 2 per merge, fewer merges than MIS
		// components.
		if len(cds) > 3*len(mis) {
			t.Fatalf("CDS size %d > 3x MIS size %d", len(cds), len(mis))
		}
	}
}

func TestCDSFromMISEdgeCases(t *testing.T) {
	// Star: MIS could be the center alone (center has top priority).
	star := gen.Star(5)
	cds, mis, err := CDSFromMIS(star, PriorityByID(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(mis) != 1 || mis[0] != 0 || len(cds) != 1 {
		t.Errorf("star: cds %v mis %v, want both {center}", cds, mis)
	}
	if _, _, err := CDSFromMIS(graph.New(3), PriorityByID(3)); err == nil {
		t.Error("disconnected graph should error")
	}
	single := graph.New(1)
	cds1, _, err := CDSFromMIS(single, PriorityByID(1))
	if err != nil || len(cds1) != 1 {
		t.Errorf("singleton: %v, %v", cds1, err)
	}
}

func TestMinimumCDSBruteForce(t *testing.T) {
	// Path 0-1-2-3-4: minimum CDS is the interior {1,2,3}.
	mcds, err := MinimumCDSBruteForce(gen.Path(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(mcds) != 3 {
		t.Errorf("path min CDS = %v, want size 3", mcds)
	}
	// Star: {center}.
	mcds, err = MinimumCDSBruteForce(gen.Star(6))
	if err != nil || len(mcds) != 1 {
		t.Errorf("star min CDS = %v, %v", mcds, err)
	}
	if _, err := MinimumCDSBruteForce(gen.Path(25)); err == nil {
		t.Error("large graph should be rejected")
	}
	if _, err := MinimumCDSBruteForce(graph.New(3)); err == nil {
		t.Error("disconnected should error")
	}
	if s, err := MinimumCDSBruteForce(graph.New(1)); err != nil || len(s) != 0 {
		t.Errorf("singleton min CDS = %v, %v", s, err)
	}
}

func TestFootnote2BoundOnUDGs(t *testing.T) {
	// Footnote 2: "In a unit disk graph... no MIS can be more than five
	// times minimum CDS." Verify on small random UDGs with brute-forced
	// minimum CDS.
	r := stats.NewRand(2)
	checked := 0
	for trial := 0; trial < 40 && checked < 12; trial++ {
		pts := geo.RandomPoints(r, 11, 4, 4)
		g := geo.UnitDiskGraph(pts, 1.8)
		if !g.Connected() || g.M() == 0 {
			continue
		}
		checked++
		prio := make(Priority, g.N())
		for i, p := range r.Perm(g.N()) {
			prio[i] = float64(p)
		}
		res, err := DistributedMIS(g, prio)
		if err != nil {
			t.Fatal(err)
		}
		mis := Members(res.Colors, Black)
		mcds, err := MinimumCDSBruteForce(g)
		if err != nil {
			t.Fatal(err)
		}
		bound := 5 * len(mcds)
		if len(mcds) == 0 {
			bound = 1 // complete graph: any single node dominates
		}
		if len(mis) > bound {
			t.Fatalf("trial %d: |MIS| = %d > 5 x |minCDS| = %d", trial, len(mis), bound)
		}
	}
	if checked < 5 {
		t.Fatalf("only %d connected instances; loosen the generator", checked)
	}
}

func TestCDSFromMISOnUDG(t *testing.T) {
	// The construction the footnote describes, end to end on a UDG.
	r := stats.NewRand(3)
	pts := geo.RandomPoints(r, 80, 10, 10)
	g := geo.UnitDiskGraph(pts, 2.5)
	if !g.Connected() {
		t.Skip("disconnected draw")
	}
	prio := make(Priority, g.N())
	for i, p := range r.Perm(g.N()) {
		prio[i] = float64(p)
	}
	cds, mis, err := CDSFromMIS(g, prio)
	if err != nil {
		t.Fatal(err)
	}
	if !IsCDS(g, SetOf(cds)) {
		t.Fatal("not a CDS")
	}
	if len(cds) >= g.N()/2 {
		t.Errorf("CDS size %d of %d nodes; should be a small backbone", len(cds), g.N())
	}
	_ = mis
}
