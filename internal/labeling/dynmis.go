package labeling

import (
	"errors"
	"math/rand"
	"sort"

	"structura/internal/graph"
)

// DynamicMIS maintains the lexicographically-first MIS (by random node
// priorities) of a changing graph, the setting of [30]: although building
// an MIS from scratch needs Theta(log n) rounds, a single topology change
// costs only O(1) adjustments in expectation when priorities are random.
//
// Membership is the unique fixed point of: v is in the MIS iff no
// higher-priority neighbor is in the MIS.
type DynamicMIS struct {
	g    *graph.Graph
	prio []float64
	in   []bool
}

// NewDynamicMIS computes the initial greedy MIS of g under random
// priorities drawn from r.
func NewDynamicMIS(g *graph.Graph, r *rand.Rand) (*DynamicMIS, error) {
	if g.Directed() {
		return nil, errors.New("labeling: dynamic MIS needs an undirected graph")
	}
	d := &DynamicMIS{
		g:    g.Clone(),
		prio: make([]float64, g.N()),
		in:   make([]bool, g.N()),
	}
	for i := range d.prio {
		d.prio[i] = r.Float64()
	}
	d.rebuildAll()
	return d, nil
}

func (d *DynamicMIS) rebuildAll() {
	order := make([]int, d.g.N())
	for i := range order {
		order[i] = i
	}
	// Greedy by descending priority.
	sort.Slice(order, func(i, j int) bool { return d.prio[order[i]] > d.prio[order[j]] })
	for i := range d.in {
		d.in[i] = false
	}
	for _, v := range order {
		ok := true
		d.g.EachNeighbor(v, func(w int, _ float64) {
			if d.in[w] {
				ok = false
			}
		})
		d.in[v] = ok
	}
}

// InMIS reports whether v is currently in the MIS.
func (d *DynamicMIS) InMIS(v int) bool {
	return v >= 0 && v < len(d.in) && d.in[v]
}

// Members returns the sorted MIS membership.
func (d *DynamicMIS) Members() []int {
	var out []int
	for v, in := range d.in {
		if in {
			out = append(out, v)
		}
	}
	return out
}

// Graph exposes (a copy of) the maintained graph for verification.
func (d *DynamicMIS) Graph() *graph.Graph { return d.g.Clone() }

// AddEdge inserts edge (u,v) and restores the MIS invariant, returning the
// number of membership flips (the "adjustments" of [30]).
func (d *DynamicMIS) AddEdge(u, v int) (int, error) {
	if err := d.g.AddEdge(u, v); err != nil {
		return 0, err
	}
	return d.repair(u, v), nil
}

// RemoveEdge deletes edge (u,v) and restores the invariant, returning the
// number of membership flips. Removing a missing edge is an error.
func (d *DynamicMIS) RemoveEdge(u, v int) (int, error) {
	if !d.g.RemoveEdge(u, v) {
		return 0, errors.New("labeling: edge does not exist")
	}
	return d.repair(u, v), nil
}

// repair re-establishes the fixed point starting from the endpoints of the
// changed edge, cascading only through affected nodes, and returns the
// number of flips.
func (d *DynamicMIS) repair(u, v int) int {
	flips := 0
	work := []int{u, v}
	inWork := map[int]bool{u: true, v: true}
	for len(work) > 0 {
		// Pop the highest-priority pending node: its correct state depends
		// only on higher-priority nodes, which are already settled.
		bi := 0
		for i := 1; i < len(work); i++ {
			if d.prio[work[i]] > d.prio[work[bi]] {
				bi = i
			}
		}
		x := work[bi]
		work[bi] = work[len(work)-1]
		work = work[:len(work)-1]
		delete(inWork, x)

		should := true
		d.g.EachNeighbor(x, func(w int, _ float64) {
			if d.in[w] && d.prio[w] > d.prio[x] {
				should = false
			}
		})
		if should == d.in[x] {
			continue
		}
		d.in[x] = should
		flips++
		// Lower-priority neighbors may now need to change.
		d.g.EachNeighbor(x, func(w int, _ float64) {
			if d.prio[w] < d.prio[x] && !inWork[w] {
				inWork[w] = true
				work = append(work, w)
			}
		})
	}
	return flips
}

// Verify checks the MIS fixed point; it returns the first violated node.
func (d *DynamicMIS) Verify() error {
	for v := range d.in {
		should := true
		d.g.EachNeighbor(v, func(w int, _ float64) {
			if d.in[w] && d.prio[w] > d.prio[v] {
				should = false
			}
		})
		if should != d.in[v] {
			return errors.New("labeling: dynamic MIS invariant violated")
		}
	}
	if !IsMIS(d.g, SetOf(d.Members())) {
		return errors.New("labeling: maintained set is not an MIS")
	}
	return nil
}
