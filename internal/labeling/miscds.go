package labeling

import (
	"errors"
	"sort"

	"structura/internal/graph"
)

// CDSFromMIS implements the construction of the paper's footnote 2: "MIS
// is frequently used to construct a minimal CDS using a small number of
// gateways to connect nodes in MIS." Any two nearest MIS nodes of a
// connected graph are at most three hops apart, so gateway nodes on those
// short paths suffice to stitch the independent set into a connected
// dominating set.
//
// The function computes the distributed MIS under prio, then greedily
// merges MIS components by adding the (at most two) intermediate nodes of
// a shortest connecting path, preferring 2-hop connections. It returns the
// CDS members and the MIS it grew from.
func CDSFromMIS(g *graph.Graph, prio Priority) (cds, mis []int, err error) {
	if !g.Connected() {
		return nil, nil, errors.New("labeling: CDS requires a connected graph")
	}
	res, err := DistributedMIS(g, prio)
	if err != nil {
		return nil, nil, err
	}
	mis = Members(res.Colors, Black)
	if len(mis) <= 1 {
		return append([]int(nil), mis...), mis, nil
	}
	inCDS := make(map[int]bool, len(mis))
	for _, v := range mis {
		inCDS[v] = true
	}
	csr := g.Freeze()
	// Union-find over current CDS-connectivity (members adjacent in g).
	parent := map[int]int{}
	var find func(x int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	rebuild := func() {
		parent = map[int]int{}
		for v := range inCDS {
			parent[v] = v
		}
		for v := range inCDS {
			for _, w := range csr.Neighbors(v) {
				if inCDS[int(w)] {
					union(v, int(w))
				}
			}
		}
	}
	components := func() int {
		roots := map[int]bool{}
		for v := range inCDS {
			roots[find(v)] = true
		}
		return len(roots)
	}
	rebuild()
	for components() > 1 {
		// Find the best merge: a pair of CDS nodes in different components
		// connected by a 2-hop (one gateway) or 3-hop (two gateways) path.
		type merge struct {
			gateways []int
			a, b     int
		}
		var best *merge
		consider := func(m merge) {
			if best == nil || len(m.gateways) < len(best.gateways) {
				best = &m
			}
		}
		members := make([]int, 0, len(inCDS))
		for v := range inCDS {
			members = append(members, v)
		}
		sort.Ints(members) // determinism
		for _, a := range members {
			if best != nil && len(best.gateways) == 1 {
				break
			}
			for _, x32 := range csr.Neighbors(a) {
				x := int(x32)
				if inCDS[x] {
					continue
				}
				for _, y32 := range csr.Neighbors(x) {
					y := int(y32)
					if inCDS[y] && find(y) != find(a) {
						consider(merge{gateways: []int{x}, a: a, b: y})
					}
					if inCDS[y] || y == a {
						continue
					}
					for _, z32 := range csr.Neighbors(y) {
						z := int(z32)
						if inCDS[z] && find(z) != find(a) {
							consider(merge{gateways: []int{x, y}, a: a, b: z})
						}
					}
				}
			}
		}
		if best == nil {
			return nil, nil, errors.New("labeling: internal: could not connect MIS components")
		}
		for _, gw := range best.gateways {
			inCDS[gw] = true
		}
		rebuild()
	}
	cds = make([]int, 0, len(inCDS))
	for v := range inCDS {
		cds = append(cds, v)
	}
	sort.Ints(cds)
	return cds, mis, nil
}

// MinimumCDSBruteForce finds a minimum connected dominating set by
// exhaustive search — exponential, for verification on small graphs only
// (n <= 20 or so). It returns nil for graphs dominated by a single vertex
// of a disconnected graph edge case; the empty set is returned when n <= 1.
func MinimumCDSBruteForce(g *graph.Graph) ([]int, error) {
	n := g.N()
	if n > 20 {
		return nil, errors.New("labeling: brute force limited to n <= 20")
	}
	if !g.Connected() {
		return nil, errors.New("labeling: CDS requires a connected graph")
	}
	if n <= 1 {
		return []int{}, nil
	}
	for size := 1; size <= n; size++ {
		if set := searchCDS(g, size); set != nil {
			return set, nil
		}
	}
	return nil, errors.New("labeling: internal: no CDS found")
}

func searchCDS(g *graph.Graph, size int) []int {
	n := g.N()
	idx := make([]int, size)
	for i := range idx {
		idx[i] = i
	}
	for {
		set := map[int]bool{}
		for _, v := range idx {
			set[v] = true
		}
		if IsCDS(g, set) {
			out := append([]int(nil), idx...)
			return out
		}
		// Next combination.
		i := size - 1
		for i >= 0 && idx[i] == n-size+i {
			i--
		}
		if i < 0 {
			return nil
		}
		idx[i]++
		for j := i + 1; j < size; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
