package labeling

import (
	"testing"

	"structura/internal/gen"
	"structura/internal/graph"
	"structura/internal/stats"
)

func TestChurnMISStaticZeroLagMatchesDistributed(t *testing.T) {
	r := stats.NewRand(1)
	for trial := 0; trial < 10; trial++ {
		g := gen.ErdosRenyi(r, 40, 0.1)
		prio := make(Priority, 40)
		for i, p := range r.Perm(40) {
			prio[i] = float64(p)
		}
		want, err := DistributedMIS(g, prio)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ChurnMIS([]*graph.Graph{g}, prio, make([]int, 40), 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Violations) != 0 || len(got.Unfinished) != 0 {
			t.Fatalf("static zero-lag produced violations: %+v", got)
		}
		for v := range want.Colors {
			if want.Colors[v] != got.Colors[v] {
				t.Fatalf("trial %d node %d: %v vs %v", trial, v, want.Colors[v], got.Colors[v])
			}
		}
	}
}

func TestStaleColorsAloneAreHarmless(t *testing.T) {
	// The monotonicity insight: on a STATIC topology, even heavy Hello
	// delays cannot create independence violations — an old view only
	// under-approximates, it never invents a missing blocker.
	r := stats.NewRand(2)
	for trial := 0; trial < 20; trial++ {
		g := gen.ErdosRenyi(r, 40, 0.15)
		prio := make(Priority, 40)
		for i, p := range r.Perm(40) {
			prio[i] = float64(p)
		}
		lag := make([]int, 40)
		for i := range lag {
			lag[i] = r.Intn(5)
		}
		// Static topology: one snapshot, but lagging views of it are the
		// same graph — only colors evolve, and those are read fresh.
		res, err := ChurnMIS([]*graph.Graph{g}, prio, lag, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("trial %d: static topology produced violations %v", trial, res.Violations)
		}
	}
}

// churnScenario builds a sparse start graph and a schedule that densifies
// it over the first few rounds — mobility bringing nodes into range.
func churnScenario(r interface {
	Intn(int) int
}, n, extra int) []*graph.Graph {
	g0 := graph.New(n)
	for v := 1; v < n; v++ {
		_ = g0.AddEdge(v, r.Intn(v))
	}
	snapshots := []*graph.Graph{g0}
	cur := g0
	for k := 0; k < extra; k++ {
		next := cur.Clone()
		for j := 0; j < 8; j++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v && !next.HasEdge(u, v) {
				_ = next.AddEdge(u, v)
			}
		}
		snapshots = append(snapshots, next)
		cur = next
	}
	return snapshots
}

func TestChurnMISProducesViolations(t *testing.T) {
	// Stale NEIGHBORHOODS under mobility are the real §IV-C problem: the
	// election must go observably wrong in some trials.
	r := stats.NewRand(3)
	violated := 0
	for trial := 0; trial < 30; trial++ {
		snapshots := churnScenario(r, 40, 4)
		prio := make(Priority, 40)
		for i, p := range r.Perm(40) {
			prio[i] = float64(p)
		}
		lag := make([]int, 40)
		for i := range lag {
			lag[i] = 1 + r.Intn(3)
		}
		res, err := ChurnMIS(snapshots, prio, lag, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations)+len(res.Unfinished) > 0 {
			violated++
		}
	}
	if violated == 0 {
		t.Error("churn + lag never caused a violation across 30 trials; the simulation is vacuous")
	}
}

func TestRepairMISRestoresValidity(t *testing.T) {
	r := stats.NewRand(4)
	repaired := 0
	for trial := 0; trial < 20; trial++ {
		snapshots := churnScenario(r, 50, 5)
		final := snapshots[len(snapshots)-1]
		prio := make(Priority, 50)
		for i, p := range r.Perm(50) {
			prio[i] = float64(p)
		}
		lag := make([]int, 50)
		for i := range lag {
			lag[i] = 1 + r.Intn(3)
		}
		res, err := ChurnMIS(snapshots, prio, lag, 0)
		if err != nil {
			t.Fatal(err)
		}
		fixed, changes, err := RepairMIS(final, prio, res.Colors)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !IsMIS(final, SetOf(Members(fixed, Black))) {
			t.Fatalf("trial %d: repair left an invalid MIS", trial)
		}
		if len(res.Violations) > 0 {
			repaired++
			if changes == 0 {
				t.Fatalf("trial %d: violations existed but repair made no changes", trial)
			}
		}
	}
	if repaired == 0 {
		t.Error("no trial exercised the repair path")
	}
}

func TestChurnMISValidation(t *testing.T) {
	g := gen.Path(3)
	prio := PriorityByID(3)
	if _, err := ChurnMIS(nil, prio, []int{0, 0, 0}, 0); err == nil {
		t.Error("no snapshots should error")
	}
	if _, err := ChurnMIS([]*graph.Graph{g, gen.Path(4)}, prio, []int{0, 0, 0}, 0); err == nil {
		t.Error("mismatched snapshots should error")
	}
	if _, err := ChurnMIS([]*graph.Graph{g}, prio, []int{0}, 0); err == nil {
		t.Error("lag length mismatch should error")
	}
	if _, err := ChurnMIS([]*graph.Graph{g}, prio, []int{0, -1, 0}, 0); err == nil {
		t.Error("negative lag should error")
	}
	if _, err := ChurnMIS([]*graph.Graph{g}, Priority{1, 1, 2}, []int{0, 0, 0}, 0); err == nil {
		t.Error("bad priorities should error")
	}
	if _, _, err := RepairMIS(g, prio, []Color{Black}); err == nil {
		t.Error("colors length mismatch should error")
	}
	if _, _, err := RepairMIS(g, Priority{1}, nil); err == nil {
		t.Error("bad priorities should error")
	}
}
