package labeling

import (
	"errors"

	"structura/internal/graph"
)

// The paper (§IV-C): "Mobility will create another serious problem: view
// inconsistency. In a mobile application, both neighborhood information
// exchanges ... and asynchronous Hello message exchanges cause delays,
// which will generate inconsistent neighborhood and location information."
//
// This file makes the problem concrete. Note that stale *colors* alone
// cannot break the MIS election on a static graph — the three-color
// process is monotone (Gray and Black are absorbing), so an old view is
// always a safe under-approximation. The damage comes from stale
// *neighborhoods* while the topology changes: a node elects itself Black
// using a neighbor list that does not yet include a newly arrived Black
// neighbor. ChurnMIS simulates exactly that, and RepairMIS restores a
// valid MIS with local label changes.

// ChurnMISResult reports an election run under topology churn with lagging
// neighborhood views.
type ChurnMISResult struct {
	Colors     []Color
	Rounds     int
	Violations [][2]int // adjacent black pairs in the final topology
	Unfinished []int    // white nodes left over in the final topology
	BlackRound []int    // round (1-based) each node turned Black; 0 = never
}

// ChurnMIS runs the three-color MIS election over an evolving topology:
// snapshots[r] is the true graph during round r (the last snapshot repeats
// once the schedule is exhausted), while node v makes its round-r decision
// using the neighbor list of snapshots[r-lag[v]] (clamped to 0) — its
// Hello-delayed view. Violations are judged against the final topology.
// All snapshots must have the same node count.
func ChurnMIS(snapshots []*graph.Graph, prio Priority, lag []int, maxRounds int) (ChurnMISResult, error) {
	if len(snapshots) == 0 {
		return ChurnMISResult{}, errors.New("labeling: no snapshots")
	}
	n := snapshots[0].N()
	for _, s := range snapshots {
		if s.N() != n {
			return ChurnMISResult{}, errors.New("labeling: snapshot node counts differ")
		}
	}
	if err := prio.validate(n); err != nil {
		return ChurnMISResult{}, err
	}
	if len(lag) != n {
		return ChurnMISResult{}, errors.New("labeling: lag length mismatch")
	}
	for _, l := range lag {
		if l < 0 {
			return ChurnMISResult{}, errors.New("labeling: negative lag")
		}
	}
	if maxRounds <= 0 {
		maxRounds = 4*n + 4
	}
	snapAt := func(r int) *graph.Graph {
		if r < 0 {
			r = 0
		}
		if r >= len(snapshots) {
			r = len(snapshots) - 1
		}
		return snapshots[r]
	}
	cur := make([]Color, n)
	res := ChurnMISResult{BlackRound: make([]int, n)}
	for round := 0; round < maxRounds; round++ {
		next := append([]Color(nil), cur...)
		changed := false
		for v := 0; v < n; v++ {
			if cur[v] != White {
				continue
			}
			view := snapAt(round - lag[v]) // stale neighbor list
			blackNeighbor := false
			localMax := true
			view.EachNeighbor(v, func(w int, _ float64) {
				switch cur[w] {
				case Black:
					blackNeighbor = true
				case White:
					if prio[w] > prio[v] {
						localMax = false
					}
				}
			})
			if blackNeighbor {
				next[v] = Gray
				changed = true
			} else if localMax {
				next[v] = Black
				res.BlackRound[v] = round + 1
				changed = true
			}
		}
		cur = next
		res.Rounds = round + 1
		if !changed {
			break
		}
	}
	res.Colors = cur
	final := snapshots[len(snapshots)-1]
	for _, e := range final.Edges() {
		if cur[e.From] == Black && cur[e.To] == Black {
			res.Violations = append(res.Violations, [2]int{e.From, e.To})
		}
	}
	for v, c := range cur {
		if c != White {
			continue
		}
		// White is a maximality violation only if no final neighbor is
		// Black.
		dominated := false
		final.EachNeighbor(v, func(w int, _ float64) {
			if cur[w] == Black {
				dominated = true
			}
		})
		if !dominated {
			res.Unfinished = append(res.Unfinished, v)
		}
	}
	return res, nil
}

// RepairMIS restores a valid MIS on g from an inconsistent election
// outcome using only local steps, returning the repaired colors and the
// number of label changes — the price of view inconsistency. Independence
// violations demote the lower-priority black; orphaned grays return to
// white; consistent local rounds then finish the election.
func RepairMIS(g *graph.Graph, prio Priority, colors []Color) ([]Color, int, error) {
	n := g.N()
	if err := prio.validate(n); err != nil {
		return nil, 0, err
	}
	if len(colors) != n {
		return nil, 0, errors.New("labeling: colors length mismatch")
	}
	out := append([]Color(nil), colors...)
	changes := 0
	for _, e := range g.Edges() {
		if out[e.From] == Black && out[e.To] == Black {
			loser := e.From
			if prio[e.To] < prio[e.From] {
				loser = e.To
			}
			out[loser] = White
			changes++
		}
	}
	for v := 0; v < n; v++ {
		if out[v] != Gray {
			continue
		}
		sponsored := false
		g.EachNeighbor(v, func(w int, _ float64) {
			if out[w] == Black {
				sponsored = true
			}
		})
		if !sponsored {
			out[v] = White
			changes++
		}
	}
	for round := 0; round < 4*n+4; round++ {
		changed := false
		next := append([]Color(nil), out...)
		for v := 0; v < n; v++ {
			if out[v] != White {
				continue
			}
			blackNeighbor := false
			localMax := true
			g.EachNeighbor(v, func(w int, _ float64) {
				switch out[w] {
				case Black:
					blackNeighbor = true
				case White:
					if prio[w] > prio[v] {
						localMax = false
					}
				}
			})
			if blackNeighbor {
				next[v] = Gray
				changes++
				changed = true
			} else if localMax {
				next[v] = Black
				changes++
				changed = true
			}
		}
		out = next
		if !changed {
			break
		}
	}
	if !IsMIS(g, SetOf(Members(out, Black))) {
		return nil, 0, errors.New("labeling: repair failed to restore an MIS")
	}
	return out, changes, nil
}
