package labeling

import (
	"math/rand"
	"sort"
	"testing"

	"structura/internal/gen"
	"structura/internal/graph"
)

// pickDominatedMISNode finds an MIS node all of whose neighbors are
// dominated by at least one OTHER MIS node — the adversarial deletion
// target: removing it must not strand any neighbor, so the repair cascade
// has to re-establish the fixed point across the whole neighborhood.
func pickDominatedMISNode(d *DynamicMIS) int {
	g := d.Graph()
	for _, m := range d.Members() {
		allCovered := true
		deg := 0
		g.EachNeighbor(m, func(w int, _ float64) {
			deg++
			covered := false
			g.EachNeighbor(w, func(x int, _ float64) {
				if x != m && d.InMIS(x) {
					covered = true
				}
			})
			if !covered {
				allCovered = false
			}
		})
		if deg > 0 && allCovered {
			return m
		}
	}
	return -1
}

// TestDynamicMISAdversarialDeletion deletes an MIS node (edge by edge, in
// descending neighbor-priority order — the order that maximizes repair
// cascades) whose neighbors are all dominated by other MIS nodes, verifying
// the fixed point after every single removal.
func TestDynamicMISAdversarialDeletion(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	g := gen.SparseErdosRenyi(r, 48, 0.15)
	d, err := NewDynamicMIS(g, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Verify(); err != nil {
		t.Fatalf("initial MIS invalid: %v", err)
	}
	m := pickDominatedMISNode(d)
	if m < 0 {
		t.Fatal("no MIS node with fully-dominated neighborhood; grow the test graph")
	}
	// Collect m's neighbors and sort them by descending priority so each
	// removal exposes the highest-priority candidate first.
	type nb struct {
		v    int
		prio float64
	}
	var nbrs []nb
	d.Graph().EachNeighbor(m, func(w int, _ float64) {
		nbrs = append(nbrs, nb{v: w, prio: d.prio[w]})
	})
	sort.Slice(nbrs, func(i, j int) bool { return nbrs[i].prio > nbrs[j].prio })
	for i, w := range nbrs {
		if _, err := d.RemoveEdge(m, w.v); err != nil {
			t.Fatalf("removal %d (%d,%d): %v", i, m, w.v, err)
		}
		if err := d.Verify(); err != nil {
			t.Fatalf("invariant broken after removing edge (%d,%d): %v", m, w.v, err)
		}
	}
	// Fully deleted: m is isolated, and an isolated node is always in the
	// MIS.
	if !d.InMIS(m) {
		t.Errorf("isolated node %d must be an MIS member", m)
	}
}

// TestDynamicMISRemovalReelection removes the single edge dominating a
// non-member: that neighbor must flip in, and the flip must be counted.
func TestDynamicMISRemovalReelection(t *testing.T) {
	// Star: hub 0 with 4 leaves. Rig priorities so the hub wins.
	g := graph.New(5)
	for leaf := 1; leaf < 5; leaf++ {
		if err := g.AddEdge(0, leaf); err != nil {
			t.Fatal(err)
		}
	}
	r := rand.New(rand.NewSource(1))
	d, err := NewDynamicMIS(g, r)
	if err != nil {
		t.Fatal(err)
	}
	d.prio[0] = 2.0 // strictly above every leaf's [0,1) draw
	d.rebuildAll()
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
	if !d.InMIS(0) || d.InMIS(1) {
		t.Fatalf("rigged star MIS wrong: members %v", d.Members())
	}
	flips, err := d.RemoveEdge(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if flips != 1 {
		t.Errorf("expected exactly one flip (leaf 1 re-elected), got %d", flips)
	}
	if !d.InMIS(1) {
		t.Error("leaf 1 lost its only dominator and must join the MIS")
	}
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestDynamicMISChurnSoak drives a long deterministic add/remove churn
// sequence, verifying the fixed point after every mutation.
func TestDynamicMISChurnSoak(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	g := gen.SparseErdosRenyi(r, 32, 0.12)
	d, err := NewDynamicMIS(g, r)
	if err != nil {
		t.Fatal(err)
	}
	n := 32
	for i := 0; i < 400; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		if d.Graph().HasEdge(u, v) {
			if _, err := d.RemoveEdge(u, v); err != nil {
				t.Fatalf("step %d remove (%d,%d): %v", i, u, v, err)
			}
		} else {
			if _, err := d.AddEdge(u, v); err != nil {
				t.Fatalf("step %d add (%d,%d): %v", i, u, v, err)
			}
		}
		if err := d.Verify(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}
