// Package labeling implements the static labeling schemes of §IV-A: the
// Wu–Dai localized connected-dominating-set marking with pruning [22], the
// three-color distributed maximal-independent-set computation, and the
// one-round neighbor-designated dominating set — plus validity checkers and
// the Fig. 8 example on which the paper walks through all three.
package labeling

import (
	"errors"
	"fmt"
	"sort"

	"structura/internal/graph"
	"structura/internal/runtime"
)

// Color is a node label in the paper's three-color scheme.
type Color int

// Colors used by the labeling processes.
const (
	White Color = iota
	Gray
	Black
)

// Priority orders nodes; higher values win local competitions. Values must
// be distinct (the paper's distinct-ID symmetry breaking).
type Priority []float64

// PriorityByID gives lower IDs higher priority — the p(A) > p(B) > ...
// convention used in the paper's examples.
func PriorityByID(n int) Priority {
	p := make(Priority, n)
	for i := range p {
		p[i] = float64(n - i)
	}
	return p
}

func (p Priority) validate(n int) error {
	if len(p) != n {
		return fmt.Errorf("labeling: %d priorities for %d nodes", len(p), n)
	}
	seen := make(map[float64]bool, n)
	for _, v := range p {
		if seen[v] {
			return errors.New("labeling: priorities must be distinct")
		}
		seen[v] = true
	}
	return nil
}

// MarkCDS runs the Wu–Dai marking process: a node colors itself Black iff
// it has two neighbors that are not connected to each other. All black
// nodes form a CDS of a connected graph (with at least one such node).
// This is a localized rule using 2-hop information only.
func MarkCDS(g *graph.Graph) []Color {
	n := g.N()
	c := g.Freeze()
	colors := make([]Color, n)
	for v := 0; v < n; v++ {
		nbrs := c.Neighbors(v)
		found := false
		for i := 0; i < len(nbrs) && !found; i++ {
			for j := i + 1; j < len(nbrs); j++ {
				if !c.HasEdge(int(nbrs[i]), int(nbrs[j])) {
					found = true
					break
				}
			}
		}
		if found {
			colors[v] = Black
		}
	}
	return colors
}

// PruneCDS applies the generalized Wu–Dai pruning (Rule k) the paper
// describes: a black node v reverts to White if its open neighborhood is
// covered by a *connected set* of higher-priority black nodes drawn from
// v's 2-hop neighborhood. Conditions are evaluated against the original
// marking, so the result is order-independent; priorities guarantee that
// simultaneous pruning preserves the CDS property.
func PruneCDS(g *graph.Graph, colors []Color, prio Priority) ([]Color, error) {
	n := g.N()
	if len(colors) != n {
		return nil, errors.New("labeling: colors length mismatch")
	}
	if err := prio.validate(n); err != nil {
		return nil, err
	}
	c := g.Freeze()
	out := append([]Color(nil), colors...)
	for v := 0; v < n; v++ {
		if colors[v] != Black {
			continue
		}
		// Candidate coverers: higher-priority black nodes within 2 hops.
		twoHop := make(map[int]bool)
		for _, u := range c.Neighbors(v) {
			if int(u) != v {
				twoHop[int(u)] = true
			}
			for _, w := range c.Neighbors(int(u)) {
				if int(w) != v {
					twoHop[int(w)] = true
				}
			}
		}
		var cand []int
		for u := range twoHop {
			if colors[u] == Black && prio[u] > prio[v] {
				cand = append(cand, u)
			}
		}
		if len(cand) == 0 {
			continue
		}
		// Connected components of the induced candidate subgraph; a single
		// component must cover N(v).
		candSet := make(map[int]bool, len(cand))
		for _, u := range cand {
			candSet[u] = true
		}
		visited := make(map[int]bool, len(cand))
		pruned := false
		for _, start := range cand {
			if visited[start] || pruned {
				continue
			}
			comp := []int{start}
			visited[start] = true
			for qi := 0; qi < len(comp); qi++ {
				for _, w := range c.Neighbors(comp[qi]) {
					if candSet[int(w)] && !visited[int(w)] {
						visited[int(w)] = true
						comp = append(comp, int(w))
					}
				}
			}
			cover := make(map[int]bool, 4*len(comp))
			for _, u := range comp {
				cover[u] = true
				for _, w := range c.Neighbors(u) {
					cover[int(w)] = true
				}
			}
			ok := true
			for _, w := range c.Neighbors(v) {
				if !cover[int(w)] {
					ok = false
					break
				}
			}
			if ok {
				pruned = true
			}
		}
		if pruned {
			out[v] = White
		}
	}
	return out, nil
}

// MISResult reports a distributed MIS computation.
type MISResult struct {
	Colors []Color
	Rounds int
}

// ErrUnstable reports a kernel run that exhausted its round budget without
// quiescing.
//
// Unstable-return contract (shared with distvec.ErrUnstable and
// hypercube.ErrUnstable): the accompanying result is non-nil and carries
// the partial labels as of the last executed round, so fault-injection
// harnesses can inspect the stale state instead of losing it.
var ErrUnstable = errors.New("labeling: MIS did not stabilize")

// DistributedMIS runs the paper's three-color clusterhead election: per
// round, every White node that is the local priority maximum among its
// White neighbors turns Black; White neighbors of Black nodes turn Gray.
// With random priorities this takes O(log n) rounds with high probability.
// Extra kernel options (observers, parallelism) are passed through to
// runtime.Run.
func DistributedMIS(g *graph.Graph, prio Priority, opts ...runtime.Option) (MISResult, error) {
	n := g.N()
	if err := prio.validate(n); err != nil {
		return MISResult{}, err
	}
	type state struct {
		color Color
		prio  float64
	}
	states, stats, err := runtime.Run(g,
		func(v int) state { return state{color: White, prio: prio[v]} },
		func(v int, self state, nbrs []state) (state, bool) {
			if self.color != White {
				return self, false
			}
			// Gray takes precedence: a black neighbor retires this node.
			for _, nb := range nbrs {
				if nb.color == Black {
					self.color = Gray
					return self, true
				}
			}
			localMax := true
			for _, nb := range nbrs {
				if nb.color == White && nb.prio > self.prio {
					localMax = false
					break
				}
			}
			if localMax {
				self.color = Black
				return self, true
			}
			return self, false
		}, append([]runtime.Option{runtime.WithMaxRounds(4*n + 4)}, opts...)...)
	if err != nil {
		return MISResult{}, err
	}
	colors := make([]Color, n)
	for v, s := range states {
		colors[v] = s.color
	}
	if !stats.Stable {
		// Return the partial labels with the error: fault-injection
		// harnesses inspect them to name the violated invariant.
		return MISResult{Colors: colors, Rounds: stats.Rounds}, ErrUnstable
	}
	// The final no-change round does not count as work.
	return MISResult{Colors: colors, Rounds: stats.Rounds - 1}, nil
}

// NeighborDesignatedDS runs the one-round neighbor-designated election:
// every node selects the highest-priority node of its closed neighborhood;
// every selected node turns Black. The black nodes form a dominating set
// (not necessarily connected or independent).
func NeighborDesignatedDS(g *graph.Graph, prio Priority) ([]Color, error) {
	n := g.N()
	if err := prio.validate(n); err != nil {
		return nil, err
	}
	colors := make([]Color, n)
	for v := 0; v < n; v++ {
		best := v
		g.EachNeighbor(v, func(w int, _ float64) {
			if prio[w] > prio[best] {
				best = w
			}
		})
		colors[best] = Black
	}
	return colors, nil
}

// Members returns the sorted IDs holding the given color.
func Members(colors []Color, c Color) []int {
	var out []int
	for v, cv := range colors {
		if cv == c {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// IsDominatingSet reports whether set dominates g: every node outside has a
// neighbor inside.
func IsDominatingSet(g *graph.Graph, set map[int]bool) bool {
	for v := 0; v < g.N(); v++ {
		if set[v] {
			continue
		}
		dominated := false
		g.EachNeighbor(v, func(w int, _ float64) {
			if set[w] {
				dominated = true
			}
		})
		if !dominated {
			return false
		}
	}
	return true
}

// IsConnectedSet reports whether the induced subgraph on set is connected
// (vacuously true for size <= 1).
func IsConnectedSet(g *graph.Graph, set map[int]bool) bool {
	sub, _ := g.Subgraph(set)
	return sub.Connected()
}

// IsCDS reports whether set is a connected dominating set.
func IsCDS(g *graph.Graph, set map[int]bool) bool {
	return IsDominatingSet(g, set) && IsConnectedSet(g, set)
}

// IsIndependent reports whether no two members of set are adjacent.
func IsIndependent(g *graph.Graph, set map[int]bool) bool {
	for v := range set {
		adjacent := false
		g.EachNeighbor(v, func(w int, _ float64) {
			if set[w] {
				adjacent = true
			}
		})
		if adjacent {
			return false
		}
	}
	return true
}

// IsMIS reports whether set is a maximal independent set: independent, and
// every non-member has a member neighbor (equivalently, independent +
// dominating).
func IsMIS(g *graph.Graph, set map[int]bool) bool {
	return IsIndependent(g, set) && IsDominatingSet(g, set)
}

// SetOf converts a member list into a set.
func SetOf(members []int) map[int]bool {
	out := make(map[int]bool, len(members))
	for _, v := range members {
		out[v] = true
	}
	return out
}

// Fig8Graph returns the static-labeling example of the paper's Fig. 8:
// nodes A=0..F=5 with edges A-C, A-D, C-D, B-D, B-F, C-E, C-F, D-E, E-F.
// On this graph, with p(A) > p(B) > ... priorities, the paper's three
// walkthroughs hold exactly: marking blackens everyone but A; pruning
// leaves the CDS {B, C, D}; the MIS election picks A and B in round one
// and ends with {A, B, E}; and neighbor designation selects {A, B, C},
// which is a DS but neither connected nor independent.
func Fig8Graph() *graph.Graph {
	g := graph.New(6)
	edges := [][2]int{
		{0, 2}, {0, 3}, {2, 3}, {1, 3}, {1, 5}, {2, 4}, {2, 5}, {3, 4}, {4, 5},
	}
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			panic(err) // unreachable: constants are in range
		}
	}
	return g
}
