package labeling

import (
	"context"
	"errors"
	"sort"

	"structura/internal/graph"
)

// This file holds the maintenance face of the MIS election: instead of
// re-running the O(log n)-round distributed election after every topology
// change, a supervisor keeps the priority-greedy membership at its fixed
// point — v is in the MIS iff no higher-priority neighbor is — by cascading
// re-elections outward from the nodes a change actually disturbed. This is
// the DynamicMIS discipline generalized to arbitrary seed sets and a
// bounded budget, so callers can cap how far a repair may spread and
// escalate to a full rebuild when the cascade would not stay local.

// GreedyMIS computes the priority-greedy MIS membership of g: the unique
// fixed point of "v is in iff no higher-priority neighbor is in". It equals
// the stable outcome of the three-color distributed election under the same
// priorities.
func GreedyMIS(g *graph.Graph, prio Priority) ([]bool, error) {
	n := g.N()
	if err := prio.validate(n); err != nil {
		return nil, err
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return prio[order[i]] > prio[order[j]] })
	in := make([]bool, n)
	for _, v := range order {
		ok := true
		g.EachNeighbor(v, func(w int, _ float64) {
			if in[w] {
				ok = false
			}
		})
		in[v] = ok
	}
	return in, nil
}

// MISFixedPointViolations returns, among the candidate nodes, those whose
// membership disagrees with the greedy fixed point rule — the local
// detector a supervisor runs over the nodes a churn event dirtied (pass a
// node and its neighbors to cover both election directions).
func MISFixedPointViolations(g *graph.Graph, in []bool, prio Priority, candidates []int) []int {
	var out []int
	seen := make(map[int]bool, len(candidates))
	for _, v := range candidates {
		if v < 0 || v >= g.N() || seen[v] {
			continue
		}
		seen[v] = true
		should := true
		g.EachNeighbor(v, func(w int, _ float64) {
			if in[w] && prio[w] > prio[v] {
				should = false
			}
		})
		if should != in[v] {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// MaintainMIS restores the greedy fixed point by cascading from the seed
// nodes, mutating `in` in place. Nodes are settled in descending priority
// order — a node's correct membership depends only on higher-priority
// nodes, which are already final — and only lower-priority neighbors of a
// flipped node are re-enqueued, so a repair touches exactly the nodes the
// disturbance can reach.
//
// maxTouched (<= 0 for unbounded) caps the number of distinct nodes
// examined. When the cascade would exceed it, MaintainMIS stops and returns
// ok == false with `in` mid-repair; the caller must escalate to a full
// rebuild (GreedyMIS). touched lists the distinct nodes examined, flips
// counts membership changes.
func MaintainMIS(g *graph.Graph, in []bool, prio Priority, seeds []int, maxTouched int) (touched []int, flips int, ok bool) {
	touched, flips, ok, _ = MaintainMISContext(nil, g, in, prio, seeds, maxTouched)
	return touched, flips, ok
}

// MaintainMISContext is MaintainMIS with a cancellation context threaded
// through the cascade (mirroring runtime.WithContext): the context is
// checked before each node is settled, and a cancelled repair stops where it
// is, returning ctx.Err() with ok == false. Cancellation is distinct from
// budget exhaustion — a caller shutting down should abort rather than
// escalate to the full rebuild it would also abandon. A nil ctx disables
// the checks.
func MaintainMISContext(ctx context.Context, g *graph.Graph, in []bool, prio Priority, seeds []int, maxTouched int) (touched []int, flips int, ok bool, err error) {
	if len(in) != g.N() {
		return nil, 0, false, nil
	}
	work := make([]int, 0, len(seeds))
	inWork := make(map[int]bool, len(seeds))
	for _, s := range seeds {
		if s >= 0 && s < g.N() && !inWork[s] {
			inWork[s] = true
			work = append(work, s)
		}
	}
	for len(work) > 0 {
		if ctx != nil {
			select {
			case <-ctx.Done():
				sort.Ints(touched)
				return touched, flips, false, ctx.Err()
			default:
			}
		}
		// Pop the highest-priority pending node.
		bi := 0
		for i := 1; i < len(work); i++ {
			if prio[work[i]] > prio[work[bi]] {
				bi = i
			}
		}
		x := work[bi]
		work[bi] = work[len(work)-1]
		work = work[:len(work)-1]
		delete(inWork, x)

		if maxTouched > 0 && len(touched) >= maxTouched {
			return touched, flips, false, nil
		}
		touched = append(touched, x)

		should := true
		g.EachNeighbor(x, func(w int, _ float64) {
			if in[w] && prio[w] > prio[x] {
				should = false
			}
		})
		if should == in[x] {
			continue
		}
		in[x] = should
		flips++
		g.EachNeighbor(x, func(w int, _ float64) {
			if prio[w] < prio[x] && !inWork[w] {
				inWork[w] = true
				work = append(work, w)
			}
		})
	}
	sort.Ints(touched)
	return touched, flips, true, nil
}

// ErrNotMIS reports a membership slice that fails the MIS property.
var ErrNotMIS = errors.New("labeling: membership is not a maximal independent set")

// VerifyMIS checks that `in` is a maximal independent set of g.
func VerifyMIS(g *graph.Graph, in []bool) error {
	if len(in) != g.N() {
		return ErrNotMIS
	}
	set := make(map[int]bool)
	for v, b := range in {
		if b {
			set[v] = true
		}
	}
	if !IsMIS(g, set) {
		return ErrNotMIS
	}
	return nil
}
