// Package maxflow implements the height-based max-flow construction the
// paper cites in §III-B as the second application of man-made layering:
// link orientations are "dynamically calculated and adjusted by the heights
// of each node... while maintaining the destination-oriented DAG structure"
// — the push-relabel family. A Dinic implementation serves as an
// independent baseline for cross-checking.
package maxflow

import (
	"errors"
	"fmt"
)

// Network is a flow network over nodes 0..N-1 with directed capacities.
type Network struct {
	n     int
	heads [][]int // adjacency as arc indices
	to    []int
	cap   []int64
}

// NewNetwork returns an empty flow network with n nodes.
func NewNetwork(n int) (*Network, error) {
	if n < 2 {
		return nil, errors.New("maxflow: need at least source and sink")
	}
	return &Network{n: n, heads: make([][]int, n)}, nil
}

// N returns the node count.
func (nw *Network) N() int { return nw.n }

// AddArc adds a directed arc u->v with the given capacity (and a paired
// reverse arc of capacity 0 for the residual graph).
func (nw *Network) AddArc(u, v int, capacity int64) error {
	if u < 0 || u >= nw.n || v < 0 || v >= nw.n {
		return fmt.Errorf("maxflow: arc (%d,%d) out of range", u, v)
	}
	if u == v {
		return errors.New("maxflow: self-arc")
	}
	if capacity < 0 {
		return errors.New("maxflow: negative capacity")
	}
	nw.heads[u] = append(nw.heads[u], len(nw.to))
	nw.to = append(nw.to, v)
	nw.cap = append(nw.cap, capacity)
	nw.heads[v] = append(nw.heads[v], len(nw.to))
	nw.to = append(nw.to, u)
	nw.cap = append(nw.cap, 0)
	return nil
}

func (nw *Network) clone() *Network {
	c := &Network{n: nw.n, heads: make([][]int, nw.n)}
	for v, h := range nw.heads {
		c.heads[v] = append([]int(nil), h...)
	}
	c.to = append([]int(nil), nw.to...)
	c.cap = append([]int64(nil), nw.cap...)
	return c
}

// Result carries a computed maximum flow.
type Result struct {
	Value    int64
	Heights  []int   // final node heights (push-relabel only; nil for Dinic)
	Residual []int64 // final residual capacities, parallel to the arc list
}

// PushRelabel computes the max flow from src to sink with the
// highest-label-free push-relabel algorithm. The returned heights are the
// final node labels: they orient every residual link downhill toward the
// sink region, the destination-oriented-DAG view of §III-B.
func (nw *Network) PushRelabel(src, sink int) (Result, error) {
	if err := nw.checkEnds(src, sink); err != nil {
		return Result{}, err
	}
	g := nw.clone()
	n := g.n
	height := make([]int, n)
	excess := make([]int64, n)
	height[src] = n
	// Saturate source arcs.
	for _, a := range g.heads[src] {
		if a%2 == 0 && g.cap[a] > 0 {
			v := g.to[a]
			excess[v] += g.cap[a]
			excess[src] -= g.cap[a]
			g.cap[a^1] += g.cap[a]
			g.cap[a] = 0
		}
	}
	// Active nodes bucketed by height for highest-label selection.
	active := make([][]int, 2*n+1)
	inQueue := make([]bool, n)
	highest := 0
	push := func(v int) {
		if v != src && v != sink && excess[v] > 0 && !inQueue[v] {
			inQueue[v] = true
			h := height[v]
			active[h] = append(active[h], v)
			if h > highest {
				highest = h
			}
		}
	}
	for v := 0; v < n; v++ {
		push(v)
	}
	for highest >= 0 {
		if len(active[highest]) == 0 {
			highest--
			continue
		}
		v := active[highest][len(active[highest])-1]
		active[highest] = active[highest][:len(active[highest])-1]
		inQueue[v] = false
		// Discharge v.
		for excess[v] > 0 {
			pushed := false
			for _, a := range g.heads[v] {
				if g.cap[a] <= 0 || g.to[a] == v {
					continue
				}
				w := g.to[a]
				if height[v] != height[w]+1 {
					continue
				}
				d := excess[v]
				if g.cap[a] < d {
					d = g.cap[a]
				}
				g.cap[a] -= d
				g.cap[a^1] += d
				excess[v] -= d
				excess[w] += d
				push(w)
				pushed = true
				if excess[v] == 0 {
					break
				}
			}
			if excess[v] == 0 {
				break
			}
			if !pushed {
				// Relabel: rise just above the lowest admissible neighbor.
				minH := 2 * n
				for _, a := range g.heads[v] {
					if g.cap[a] > 0 && height[g.to[a]] < minH {
						minH = height[g.to[a]]
					}
				}
				if minH >= 2*n {
					break // no residual arcs; excess is stuck (shouldn't happen)
				}
				height[v] = minH + 1
				if height[v] > 2*n {
					height[v] = 2 * n
				}
			}
		}
		if excess[v] > 0 {
			push(v)
		}
	}
	return Result{Value: excess[sink], Heights: height, Residual: g.cap}, nil
}

// Dinic computes the max flow with Dinic's layered BFS + blocking flow —
// the independent baseline.
func (nw *Network) Dinic(src, sink int) (Result, error) {
	if err := nw.checkEnds(src, sink); err != nil {
		return Result{}, err
	}
	g := nw.clone()
	n := g.n
	level := make([]int, n)
	iter := make([]int, n)
	var bfs func() bool
	bfs = func() bool {
		for i := range level {
			level[i] = -1
		}
		level[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, a := range g.heads[v] {
				if g.cap[a] > 0 && level[g.to[a]] == -1 {
					level[g.to[a]] = level[v] + 1
					queue = append(queue, g.to[a])
				}
			}
		}
		return level[sink] >= 0
	}
	var dfs func(v int, f int64) int64
	dfs = func(v int, f int64) int64 {
		if v == sink {
			return f
		}
		for ; iter[v] < len(g.heads[v]); iter[v]++ {
			a := g.heads[v][iter[v]]
			w := g.to[a]
			if g.cap[a] > 0 && level[w] == level[v]+1 {
				d := f
				if g.cap[a] < d {
					d = g.cap[a]
				}
				if got := dfs(w, d); got > 0 {
					g.cap[a] -= got
					g.cap[a^1] += got
					return got
				}
			}
		}
		return 0
	}
	var flow int64
	const inf = int64(1) << 62
	for bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := dfs(src, inf)
			if f == 0 {
				break
			}
			flow += f
		}
	}
	return Result{Value: flow}, nil
}

func (nw *Network) checkEnds(src, sink int) error {
	if src < 0 || src >= nw.n || sink < 0 || sink >= nw.n {
		return errors.New("maxflow: src/sink out of range")
	}
	if src == sink {
		return errors.New("maxflow: src == sink")
	}
	return nil
}

// VerifyHeightOrientation checks the §III-B invariant on a finished
// push-relabel run: for every residual (capacity > 0) arc u->v,
// height(u) <= height(v) + 1 — no residual arc jumps downhill by more than
// one level, which is exactly what keeps the height orientation a valid
// layered (destination-oriented) structure toward the sink side.
func (nw *Network) VerifyHeightOrientation(res Result) error {
	if res.Heights == nil || res.Residual == nil {
		return errors.New("maxflow: result carries no heights/residual")
	}
	if len(res.Residual) != len(nw.to) {
		return errors.New("maxflow: residual size mismatch")
	}
	for a := range nw.to {
		if res.Residual[a] <= 0 {
			continue
		}
		u, v := nw.to[a^1], nw.to[a] // tail of arc a is the head of its pair
		if res.Heights[u] > res.Heights[v]+1 {
			return fmt.Errorf("maxflow: residual arc %d->%d violates heights %d > %d+1",
				u, v, res.Heights[u], res.Heights[v])
		}
	}
	return nil
}

// VerifyFlow checks that a push-relabel result is a feasible flow of the
// stated value: per-arc flows (original capacity minus residual) respect
// capacities, pair up antisymmetrically with their reverse arcs, conserve
// mass at every internal node, and push exactly Value out of src and into
// sink.
func (nw *Network) VerifyFlow(res Result, src, sink int) error {
	if err := nw.checkEnds(src, sink); err != nil {
		return err
	}
	if res.Residual == nil || len(res.Residual) != len(nw.cap) {
		return errors.New("maxflow: result carries no usable residual")
	}
	net := make([]int64, nw.n) // net outflow per node
	for a := 0; a < len(nw.to); a += 2 {
		flow := nw.cap[a] - res.Residual[a] // forward arc flow
		back := nw.cap[a+1] - res.Residual[a+1]
		if flow+back != 0 {
			return fmt.Errorf("maxflow: arc pair %d flow %d and reverse %d not antisymmetric", a, flow, back)
		}
		if flow < 0 || flow > nw.cap[a] {
			return fmt.Errorf("maxflow: arc %d flow %d outside [0,%d]", a, flow, nw.cap[a])
		}
		tail, head := nw.to[a+1], nw.to[a]
		net[tail] += flow
		net[head] -= flow
	}
	for v := 0; v < nw.n; v++ {
		switch v {
		case src:
			if net[v] != res.Value {
				return fmt.Errorf("maxflow: source pushes %d, value says %d", net[v], res.Value)
			}
		case sink:
			if net[v] != -res.Value {
				return fmt.Errorf("maxflow: sink absorbs %d, value says %d", -net[v], res.Value)
			}
		default:
			if net[v] != 0 {
				return fmt.Errorf("maxflow: node %d violates conservation by %d", v, net[v])
			}
		}
	}
	return nil
}
